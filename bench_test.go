package logan

// One benchmark per table and figure of the paper's evaluation. Each
// invokes the same runner as cmd/logan-bench at the reduced quick scale,
// so `go test -bench=.` regenerates every experiment; use
// `go run ./cmd/logan-bench` for the full default scale. Custom metrics
// report the reproduction's key quantities alongside ns/op.

import (
	"testing"

	"logan/internal/bench"
	"logan/internal/perfmodel"
	"logan/internal/seq"
	"logan/internal/xdrop"
)

func benchScale() bench.Scale { return bench.QuickScale() }

// BenchmarkTableI regenerates the parallelism ablation (paper Table I).
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunTableI(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SpeedupIntra, "intra-speedup")
		b.ReportMetric(res.SpeedupInter, "inter-speedup")
	}
}

// BenchmarkTableII regenerates LOGAN vs SeqAn (paper Table II / Fig. 8).
func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunTableII(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(last.Base/last.GPU1, "speedup-1gpu")
		b.ReportMetric(last.Base/last.GPUAll, "speedup-6gpu")
		b.ReportMetric(res.PeakGCUPS, "peakGCUPS")
	}
}

// BenchmarkTableIII regenerates LOGAN vs ksw2 (paper Table III / Fig. 9).
func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunTableIII(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(last.Base/last.GPU1, "speedup-1gpu")
		b.ReportMetric(last.Base/last.GPUAll, "speedup-8gpu")
	}
}

// BenchmarkTableIV regenerates BELLA E. coli (paper Table IV / Fig. 10).
func BenchmarkTableIV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunTableIV(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(last.Base/last.GPU1, "speedup-1gpu")
		b.ReportMetric(float64(res.CrossoverX), "crossoverX")
	}
}

// BenchmarkTableV regenerates BELLA C. elegans (paper Table V / Fig. 11).
func BenchmarkTableV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunTableV(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(last.Base/last.GPU1, "speedup-1gpu")
		b.ReportMetric(last.Base/last.GPUAll, "speedup-6gpu")
	}
}

// BenchmarkFig12 regenerates the GPU-comparator GCUPS scaling (Fig. 12).
func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig12(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Logan[0], "logan-1gpu-GCUPS")
		b.ReportMetric(res.CUDASW[0], "cudasw-1gpu-GCUPS")
		b.ReportMetric(res.Manymap, "manymap-GCUPS")
	}
}

// BenchmarkFig13 regenerates the Roofline analysis (Fig. 13).
func BenchmarkFig13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig13(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Report.AchievedGIPS, "warpGIPS")
		b.ReportMetric(res.Report.OI, "OI")
		b.ReportMetric(res.Report.CeilingFraction, "ceiling-frac")
	}
}

// BenchmarkKernelCPU measures the real serial X-drop throughput on this
// host (the engine under every experiment).
func BenchmarkKernelCPU(b *testing.B) {
	scale := benchScale()
	pairs := scale.PairSet()
	sc := xdrop.DefaultScoring()
	b.ResetTimer()
	var cells int64
	for i := 0; i < b.N; i++ {
		_, stats, err := xdrop.ExtendBatch(pairs, sc, 100, 0)
		if err != nil {
			b.Fatal(err)
		}
		cells += stats.Cells
	}
	b.ReportMetric(perfmodel.GCUPS(cells, b.Elapsed()), "hostGCUPS")
}

// BenchmarkKernelGPUBackend measures the public GPU-backend path end to
// end (simulation wall time, not modeled time).
func BenchmarkKernelGPUBackend(b *testing.B) {
	scale := benchScale()
	raw := scale.PairSet()
	pairs := make([]Pair, len(raw))
	for i, p := range raw {
		pairs[i] = Pair{Query: []byte(p.Query), Target: []byte(p.Target),
			SeedQ: p.SeedQPos, SeedT: p.SeedTPos, SeedLen: p.SeedLen}
	}
	opt := DefaultOptions(100)
	opt.Backend = GPU
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Align(pairs, opt); err != nil {
			b.Fatal(err)
		}
	}
	_ = seq.Alphabet
}
