package xdrop

import (
	"fmt"
	"sync"

	"logan/internal/seq"
	"logan/internal/simd"
)

// Workspace is the reusable scratch of one X-drop lane: the three rolling
// anti-diagonal buffers of Extend and the reversal staging of ExtendSeed.
// A Workspace makes repeated extensions allocation-free once the buffers
// have grown to the workload's sequence lengths. It is not safe for
// concurrent use; give each worker goroutine its own (see Pool).
type Workspace struct {
	d0, d1, d2 []int32
	rt         seq.Seq // reversed target, grown one base per anti-diagonal
	revQ, revT seq.Seq

	// Vector-kernel scratch: the int16 anti-diagonal buffers and the
	// compare-blend table specialized to the batch's (match, mismatch)
	// pair (see ExtendVector).
	v0, v1, v2            []int16
	tab                   *simd.BlendTable
	tabMatch, tabMismatch int16
}

// NewWorkspace returns an empty workspace; buffers grow on first use.
func NewWorkspace() *Workspace { return &Workspace{} }

// wsPool backs the package-level Extend/ExtendSeed entry points so that
// one-shot callers still reuse scratch across calls.
var wsPool = sync.Pool{New: func() any { return NewWorkspace() }}

// diag returns *p resized to n int32s, growing the backing array only when
// the workload outgrows it.
func (w *Workspace) diag(p *[]int32, n int) []int32 {
	if cap(*p) < n {
		*p = make([]int32, n)
	}
	return (*p)[:n]
}

// diag16 is diag for the vector kernel's int16 buffers.
func (w *Workspace) diag16(p *[]int16, n int) []int16 {
	if cap(*p) < n {
		*p = make([]int16, n)
	}
	return (*p)[:n]
}

// ExtendSeed is the workspace form of the package-level ExtendSeed: the
// left-extension reversals are staged into the workspace instead of freshly
// allocated, and both extensions run on the workspace's anti-diagonal
// buffers.
func (w *Workspace) ExtendSeed(q, t seq.Seq, qPos, tPos, seedLen int, sc Scoring, x int32) (SeedResult, error) {
	return w.ExtendSeedKernel(q, t, qPos, tPos, seedLen, sc, x, KernelScalar)
}

// ExtendSeedKernel is ExtendSeed with the extension kernel chosen by the
// caller — the per-pair entry point of the batch-level kernel selection
// (SelectKernel). Results are bit-identical across kernels; forcing one
// is how the benchmarks and the fallback tests compare them.
func (w *Workspace) ExtendSeedKernel(q, t seq.Seq, qPos, tPos, seedLen int, sc Scoring, x int32, k Kernel) (SeedResult, error) {
	if err := sc.Validate(); err != nil {
		return SeedResult{}, err
	}
	// qPos > len(q)-seedLen rather than qPos+seedLen > len(q): the sum can
	// overflow for adversarial positions (e.g. MaxInt from a JSON payload),
	// which would pass the check and panic on the slice below.
	if qPos < 0 || tPos < 0 || seedLen <= 0 || qPos > len(q)-seedLen || tPos > len(t)-seedLen {
		return SeedResult{}, fmt.Errorf("xdrop: seed (%d,%d,len %d) outside sequences (%d, %d)",
			qPos, tPos, seedLen, len(q), len(t))
	}
	w.revQ = seq.AppendReverse(w.revQ[:0], q[:qPos])
	w.revT = seq.AppendReverse(w.revT[:0], t[:tPos])
	r := SeedResult{SeedLen: seedLen}
	if k == KernelVector {
		r.Left = w.ExtendVector(w.revQ, w.revT, sc, x)
		r.Right = w.ExtendVector(q.Sub(qPos+seedLen, len(q)), t.Sub(tPos+seedLen, len(t)), sc, x)
	} else {
		r.Left = w.Extend(w.revQ, w.revT, sc, x)
		r.Right = w.Extend(q.Sub(qPos+seedLen, len(q)), t.Sub(tPos+seedLen, len(t)), sc, x)
	}
	r.Score = r.Left.Score + r.Right.Score + int32(seedLen)*sc.Match
	r.QBegin = qPos - r.Left.QueryEnd
	r.TBegin = tPos - r.Left.TargetEnd
	r.QEnd = qPos + seedLen + r.Right.QueryEnd
	r.TEnd = tPos + seedLen + r.Right.TargetEnd
	return r, nil
}

// Extend is the workspace form of the package-level Extend. Scores, extents
// and work counters are bit-identical to it on every input.
//
// The anti-diagonal buffers are sentinel-padded: each stored diagonal keeps
// a NegInf cell immediately before its first and after its last surviving
// cell, so the interior cell update needs no range checks — out-of-band
// sources read the sentinel and are re-pruned by the X-drop threshold. Only
// the matrix-border cells i=0 and j=0 (at most two per anti-diagonal) are
// special-cased, because they have no substitution source.
func (w *Workspace) Extend(q, t seq.Seq, sc Scoring, x int32) Result {
	m, n := len(q), len(t)
	res := Result{}
	if m == 0 || n == 0 || x < 0 {
		return res
	}

	// An anti-diagonal holds at most min(m,n)+1 cells, plus one sentinel
	// slot on each side.
	bufLen := min(m, n) + 3
	a1 := w.diag(&w.d0, bufLen)
	a2 := w.diag(&w.d1, bufLen)
	a3 := w.diag(&w.d2, bufLen)

	// rt mirrors t in reverse base order so the inner loop reads both
	// sequences in forward direction: cell (i, j=d-i) compares q[i-1]
	// against rt[n-d+i]. It is filled one base per anti-diagonal, so only
	// the explored prefix of t is ever touched.
	if cap(w.rt) < n {
		w.rt = make(seq.Seq, n)
	}
	rt := w.rt[:n]

	// Cell i of the diagonal stored in a_k lives at a_k[i-org_k]; the
	// sentinels bracket the surviving cells.
	var org1, org2, org3 int

	// d = 0 holds only S(0,0) = 0, bracketed by sentinels.
	best := int32(0)
	bestI, bestJ := 0, 0
	org2 = -1
	a2[0], a2[1], a2[2] = NegInf, 0, NegInf
	res.AntiDiags = 1
	res.Cells = 1
	res.SumBand = 1
	res.MaxBand = 1

	match, mismatch, gap := sc.Match, sc.Mismatch, sc.Gap

	// Band bounds for the upcoming anti-diagonal (inclusive i range).
	lo, hi := 0, 1

	for d := 1; d <= m+n; d++ {
		if d <= n {
			rt[n-d] = t[d-1]
		}
		// Clip to the matrix.
		if lo < d-n {
			lo = d - n
		}
		if hi > d {
			hi = d
		}
		if hi > m {
			hi = m
		}
		if lo > hi {
			break
		}
		width := hi - lo + 1
		org1 = lo - 1
		threshold := best - x
		newBest := best
		newBI, newBJ := bestI, bestJ

		// Matrix border i = 0 (cell (0,d)): reachable only by a gap from
		// (0,d-1). lo == 0 implies d <= n, so the cell exists.
		if lo == 0 {
			s := a2[-org2] + gap
			if s < threshold {
				s = NegInf
			} else if s > newBest {
				newBest, newBI, newBJ = s, 0, d
			}
			a1[1] = s
		}
		// Interior cells: i >= 1 and j = d-i >= 1. All three sources are
		// inside the sentinel-bracketed span of their buffers, so the loop
		// is free of range checks; NegInf is MinInt32/2, so NegInf+score
		// stays far below threshold and is re-pruned.
		uLo := max(lo, 1)
		uHi := min(hi, d-1)
		if uLo <= uHi {
			kn := uHi - uLo + 1
			d3 := a3[uLo-1-org3:][:kn]
			d2 := a2[uLo-org2:][:kn]
			out := a1[uLo-org1:][:kn]
			qs := q[uLo-1:][:kn]
			ts := rt[n-d+uLo:][:kn]
			// a2[uLo-1-org2 .. ] trails d2 by one slot, so the "up" gap
			// source is carried in a register instead of re-loaded.
			up := a2[uLo-1-org2]
			bestK := -1
			for k := 0; k < kn; k++ {
				add := mismatch
				if qs[k] == ts[k] {
					add = match
				}
				s := d3[k] + add
				cur := d2[k]
				g := up
				if cur > g {
					g = cur
				}
				up = cur
				if g += gap; g > s {
					s = g
				}
				// s > newBest implies s >= threshold (x >= 0), so the two
				// tests are independent and the clamp compiles to a
				// conditional move.
				if s > newBest {
					newBest = s
					bestK = k
				}
				if s < threshold {
					s = NegInf
				}
				out[k] = s
			}
			if bestK >= 0 {
				newBI = uLo + bestK
				newBJ = d - uLo - bestK
			}
		}

		// Matrix border j = 0 (cell (d,0)): reachable only by a gap from
		// (d-1,0). hi == d implies d <= m. Processed after the interior so
		// that ties keep the smallest-i cell, like the pre-refactor code.
		if hi == d {
			s := a2[d-1-org2] + gap
			if s < threshold {
				s = NegInf
			} else if s > newBest {
				newBest, newBI, newBJ = s, d, 0
			}
			a1[d-org1] = s
		}

		res.Cells += int64(width)
		res.SumBand += int64(width)
		res.AntiDiags++
		if width > res.MaxBand {
			res.MaxBand = width
		}
		best = newBest
		bestI, bestJ = newBI, newBJ

		// Trim pruned cells from both ends (Alg. 1 lines 10-15). Cells of
		// this diagonal occupy buffer slots 1..width.
		first, last := 0, width-1
		for first <= last && a1[first+1] == NegInf {
			first++
		}
		for last >= first && a1[last+1] == NegInf {
			last--
		}
		if first > last {
			break // band empty: X-drop termination
		}
		// Plant the sentinels around the survivors, rotate the buffers and
		// open the next band one wider at the top, per the anti-diagonal
		// geometry.
		a1[first] = NegInf
		a1[last+2] = NegInf
		a3, a2, a1 = a2, a1, a3
		org3, org2 = org2, org1
		hi = lo + last + 1
		lo = lo + first
	}

	res.Score = best
	res.QueryEnd = bestI
	res.TargetEnd = bestJ
	return res
}
