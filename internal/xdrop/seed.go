package xdrop

import "logan/internal/seq"

// SeedResult is the outcome of a seed-and-extend alignment: the seed is
// assumed exact, the left and right extensions are X-drop extensions away
// from it (paper Fig. 5), and the combined score and extents describe the
// full alignment.
type SeedResult struct {
	Left, Right  Result
	SeedLen      int
	Score        int32 // Left.Score + Right.Score + SeedLen*Match
	QBegin, QEnd int   // aligned query interval [QBegin, QEnd)
	TBegin, TEnd int   // aligned target interval [TBegin, TEnd)
}

// Cells returns the total DP cells updated by both extensions.
func (r SeedResult) Cells() int64 { return r.Left.Cells + r.Right.Cells }

// ExtendSeed splits the pair at the seed (paper Fig. 5) and extends in both
// directions. The left extension aligns the reversed prefixes so that its
// inner loop walks memory forward — the same transformation LOGAN applies
// for coalescing (paper Fig. 6); here it also keeps the semantics of
// "extend leftwards from the seed start".
func ExtendSeed(q, t seq.Seq, qPos, tPos, seedLen int, sc Scoring, x int32) (SeedResult, error) {
	w := wsPool.Get().(*Workspace)
	r, err := w.ExtendSeed(q, t, qPos, tPos, seedLen, sc, x)
	wsPool.Put(w)
	return r, err
}
