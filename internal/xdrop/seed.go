package xdrop

import (
	"fmt"

	"logan/internal/seq"
)

// SeedResult is the outcome of a seed-and-extend alignment: the seed is
// assumed exact, the left and right extensions are X-drop extensions away
// from it (paper Fig. 5), and the combined score and extents describe the
// full alignment.
type SeedResult struct {
	Left, Right  Result
	SeedLen      int
	Score        int32 // Left.Score + Right.Score + SeedLen*Match
	QBegin, QEnd int   // aligned query interval [QBegin, QEnd)
	TBegin, TEnd int   // aligned target interval [TBegin, TEnd)
}

// Cells returns the total DP cells updated by both extensions.
func (r SeedResult) Cells() int64 { return r.Left.Cells + r.Right.Cells }

// ExtendSeed splits the pair at the seed (paper Fig. 5) and extends in both
// directions. The left extension aligns the reversed prefixes so that its
// inner loop walks memory forward — the same transformation LOGAN applies
// for coalescing (paper Fig. 6); here it also keeps the semantics of
// "extend leftwards from the seed start".
func ExtendSeed(q, t seq.Seq, qPos, tPos, seedLen int, sc Scoring, x int32) (SeedResult, error) {
	if err := sc.Validate(); err != nil {
		return SeedResult{}, err
	}
	if qPos < 0 || tPos < 0 || seedLen <= 0 || qPos+seedLen > len(q) || tPos+seedLen > len(t) {
		return SeedResult{}, fmt.Errorf("xdrop: seed (%d,%d,len %d) outside sequences (%d, %d)",
			qPos, tPos, seedLen, len(q), len(t))
	}
	r := SeedResult{SeedLen: seedLen}
	r.Left = Extend(q.Sub(0, qPos).Reverse(), t.Sub(0, tPos).Reverse(), sc, x)
	r.Right = Extend(q.Sub(qPos+seedLen, len(q)), t.Sub(tPos+seedLen, len(t)), sc, x)
	r.Score = r.Left.Score + r.Right.Score + int32(seedLen)*sc.Match
	r.QBegin = qPos - r.Left.QueryEnd
	r.TBegin = tPos - r.Left.TargetEnd
	r.QEnd = qPos + seedLen + r.Right.QueryEnd
	r.TEnd = tPos + seedLen + r.Right.TargetEnd
	return r, nil
}
