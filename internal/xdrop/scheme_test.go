package xdrop

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"logan/internal/seq"
)

func schemePairs(t *testing.T, n int) []seq.Pair {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	return seq.RandPairSet(rng, seq.PairSetOptions{
		N: n, MinLen: 120, MaxLen: 350, ErrorRate: 0.15, SeedLen: 17,
	})
}

func TestSchemeValidate(t *testing.T) {
	if err := LinearScheme(DefaultScoring()).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := LinearScheme(Scoring{}).Validate(); err == nil {
		t.Fatal("zero linear scheme accepted")
	}
	if err := AffineScheme(AffineScoring{Match: 1, Mismatch: -1, GapOpen: -2, GapExtend: -1}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := AffineScheme(AffineScoring{}).Validate(); err == nil {
		t.Fatal("zero affine scheme accepted")
	}
	if err := MatrixScheme(Blosum62(-6)).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := MatrixScheme(nil).Validate(); err == nil {
		t.Fatal("nil matrix scheme accepted")
	}
	if err := (Scheme{Kind: 99}).Validate(); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

// TestExtendSeedAffineIdentical: on identical sequences the affine
// seed-and-extend must score len*match and span both sequences — no gap
// is ever opened.
func TestExtendSeedAffineIdentical(t *testing.T) {
	s := seq.MustNew("ACGTACGTACGTACGTACGT")
	sc := AffineScoring{Match: 1, Mismatch: -1, GapOpen: -2, GapExtend: -1}
	r, err := ExtendSeedAffine(s, s, 8, 8, 5, sc, 30)
	if err != nil {
		t.Fatal(err)
	}
	if r.Score != int32(len(s)) || r.QBegin != 0 || r.QEnd != len(s) || r.TBegin != 0 || r.TEnd != len(s) {
		t.Fatalf("identical: %+v", r)
	}
}

// TestExtendSeedAffineReducesToLinear: with GapOpen = 0 the Gotoh
// recurrence degenerates to the linear scheme, so scores must equal
// ExtendSeed's on every pair.
func TestExtendSeedAffineReducesToLinear(t *testing.T) {
	sc := AffineScoring{Match: 1, Mismatch: -1, GapOpen: 0, GapExtend: -1}
	lin := Scoring{Match: 1, Mismatch: -1, Gap: -1}
	for i, p := range schemePairs(t, 24) {
		aff, err := ExtendSeedAffine(p.Query, p.Target, p.SeedQPos, p.SeedTPos, p.SeedLen, sc, 50)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := ExtendSeed(p.Query, p.Target, p.SeedQPos, p.SeedTPos, p.SeedLen, lin, 50)
		if err != nil {
			t.Fatal(err)
		}
		if aff.Score != ref.Score {
			t.Fatalf("pair %d: affine(open=0) %d != linear %d", i, aff.Score, ref.Score)
		}
	}
}

// TestExtendSeedAffineBounds mirrors the linear path's overflow-safe seed
// validation.
func TestExtendSeedAffineBounds(t *testing.T) {
	s := seq.MustNew("ACGTACGT")
	sc := AffineScoring{Match: 1, Mismatch: -1, GapOpen: -2, GapExtend: -1}
	for _, tc := range [][3]int{{7, 0, 4}, {0, 7, 4}, {-1, 0, 4}, {0, 0, 0}, {1 << 62, 0, 4}} {
		if _, err := ExtendSeedAffine(s, s, tc[0], tc[1], tc[2], sc, 10); err == nil {
			t.Fatalf("seed %v accepted", tc)
		}
	}
	if _, err := ExtendSeedAffine(s, s, 0, 0, 4, AffineScoring{}, 10); err == nil {
		t.Fatal("invalid scheme accepted")
	}
}

// TestPoolSchemeBatchesMatchOracles: the pooled batch path must be
// bit-identical to the single-pair oracles for every scheme family, on
// the same shared pool.
func TestPoolSchemeBatchesMatchOracles(t *testing.T) {
	pairs := schemePairs(t, 32)
	results := make([]SeedResult, len(pairs))
	p := NewPool(3)
	defer p.Close()
	const x = 40

	aff := AffineScoring{Match: 1, Mismatch: -1, GapOpen: -3, GapExtend: -1}
	if _, err := p.ExtendBatchScheme(context.Background(), pairs, results, AffineScheme(aff), x); err != nil {
		t.Fatal(err)
	}
	for i, pr := range pairs {
		want, err := ExtendSeedAffine(pr.Query, pr.Target, pr.SeedQPos, pr.SeedTPos, pr.SeedLen, aff, x)
		if err != nil {
			t.Fatal(err)
		}
		if results[i] != want {
			t.Fatalf("affine pair %d: pooled %+v != oracle %+v", i, results[i], want)
		}
	}

	m := Blosum62(-6) // DNA letters are all in the amino alphabet
	if _, err := p.ExtendBatchScheme(context.Background(), pairs, results, MatrixScheme(m), x); err != nil {
		t.Fatal(err)
	}
	for i, pr := range pairs {
		want, err := ExtendSeedMatrix(pr.Query, pr.Target, pr.SeedQPos, pr.SeedTPos, pr.SeedLen, m, x)
		if err != nil {
			t.Fatal(err)
		}
		if results[i] != want {
			t.Fatalf("matrix pair %d: pooled %+v != oracle %+v", i, results[i], want)
		}
	}

	lin := DefaultScoring()
	if _, err := p.ExtendBatchScheme(context.Background(), pairs, results, LinearScheme(lin), x); err != nil {
		t.Fatal(err)
	}
	for i, pr := range pairs {
		want, err := ExtendSeed(pr.Query, pr.Target, pr.SeedQPos, pr.SeedTPos, pr.SeedLen, lin, x)
		if err != nil {
			t.Fatal(err)
		}
		if results[i] != want {
			t.Fatalf("linear pair %d: pooled %+v != oracle %+v", i, results[i], want)
		}
	}
}

// TestPoolContextCanceled: a canceled context fails the batch with the
// context's error, before or during execution.
func TestPoolContextCanceled(t *testing.T) {
	pairs := schemePairs(t, 8)
	results := make([]SeedResult, len(pairs))
	p := NewPool(2)
	defer p.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := p.ExtendBatchScheme(ctx, pairs, results, LinearScheme(DefaultScoring()), 30)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v, want context.Canceled", err)
	}
}
