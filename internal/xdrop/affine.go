package xdrop

// Affine-gap X-drop extension. SeqAn's extendSeed supports affine gap
// costs alongside the linear scheme LOGAN ports to the GPU; this file
// completes the algorithm family for the CPU engine. The anti-diagonal
// band machinery is identical — the recurrence carries the Gotoh E/F
// matrices through the same three-buffer rotation.

import (
	"fmt"

	"logan/internal/seq"
)

// AffineScoring is a Gotoh-style scheme: a gap of length l costs
// GapOpen + l*GapExtend (both negative).
type AffineScoring struct {
	Match     int32
	Mismatch  int32
	GapOpen   int32 // charged once per gap, on top of the first extend
	GapExtend int32 // charged per gap base
}

// Validate rejects non-sensible schemes.
func (s AffineScoring) Validate() error {
	if s.Match <= 0 {
		return fmt.Errorf("xdrop: affine match %d must be positive", s.Match)
	}
	if s.Mismatch >= 0 || s.GapOpen > 0 || s.GapExtend >= 0 {
		return fmt.Errorf("xdrop: affine penalties must be negative (mismatch %d, open %d, extend %d)",
			s.Mismatch, s.GapOpen, s.GapExtend)
	}
	return nil
}

// ExtendSeedAffine is seed-and-extend under affine gaps: the Gotoh
// analogue of ExtendSeed. The pair is split at the seed, both sides are
// extended with ExtendAffine (left over the reversed prefixes, as in
// Fig. 5), and the seed — an exact k-mer match from the overlapper —
// contributes seedLen*Match, exactly as in the linear path.
func ExtendSeedAffine(q, t seq.Seq, qPos, tPos, seedLen int, sc AffineScoring, x int32) (SeedResult, error) {
	w := wsPool.Get().(*Workspace)
	r, err := w.ExtendSeedAffine(q, t, qPos, tPos, seedLen, sc, x)
	wsPool.Put(w)
	return r, err
}

// ExtendSeedAffine is the workspace form of the package-level
// ExtendSeedAffine: the left-extension reversals are staged into the
// workspace's buffers instead of freshly allocated, which is what keeps
// the pooled affine batch path allocation-lean per pair. (The Gotoh
// recurrence itself still allocates its rolling rows inside
// ExtendAffine.)
func (w *Workspace) ExtendSeedAffine(q, t seq.Seq, qPos, tPos, seedLen int, sc AffineScoring, x int32) (SeedResult, error) {
	if err := sc.Validate(); err != nil {
		return SeedResult{}, err
	}
	// qPos > len(q)-seedLen rather than qPos+seedLen > len(q): the sum can
	// overflow for adversarial positions; see Workspace.ExtendSeed.
	if qPos < 0 || tPos < 0 || seedLen <= 0 || qPos > len(q)-seedLen || tPos > len(t)-seedLen {
		return SeedResult{}, fmt.Errorf("xdrop: seed (%d,%d,len %d) outside sequences (%d, %d)",
			qPos, tPos, seedLen, len(q), len(t))
	}
	w.revQ = seq.AppendReverse(w.revQ[:0], q[:qPos])
	w.revT = seq.AppendReverse(w.revT[:0], t[:tPos])
	r := SeedResult{SeedLen: seedLen}
	var err error
	r.Left, err = ExtendAffine(w.revQ, w.revT, sc, x)
	if err != nil {
		return SeedResult{}, err
	}
	r.Right, err = ExtendAffine(q.Sub(qPos+seedLen, len(q)), t.Sub(tPos+seedLen, len(t)), sc, x)
	if err != nil {
		return SeedResult{}, err
	}
	r.Score = r.Left.Score + r.Right.Score + int32(seedLen)*sc.Match
	r.QBegin = qPos - r.Left.QueryEnd
	r.TBegin = tPos - r.Left.TargetEnd
	r.QEnd = qPos + seedLen + r.Right.QueryEnd
	r.TEnd = tPos + seedLen + r.Right.TargetEnd
	return r, nil
}

// ExtendAffine computes the highest-scoring semi-global prefix alignment
// under affine gaps with X-drop pruning, in the same anti-diagonal
// three-buffer formulation as Extend. H is the match-ending state, E the
// gap-in-target state (horizontal), F the gap-in-query state (vertical);
// pruning and band trimming operate on H.
func ExtendAffine(q, t seq.Seq, sc AffineScoring, x int32) (Result, error) {
	if err := sc.Validate(); err != nil {
		return Result{}, err
	}
	m, n := len(q), len(t)
	res := Result{}
	if m == 0 || n == 0 || x < 0 {
		return res, nil
	}

	type row struct {
		h, e, f []int32
		lo      int
	}
	mk := func(w int) row {
		return row{h: make([]int32, w), e: make([]int32, w), f: make([]int32, w)}
	}
	width0 := min(m, n) + 2
	cur, prev, prev2 := mk(width0), mk(width0), mk(width0)
	get := func(a []int32, lo, i int, n int) int32 {
		if i < lo || i >= lo+n {
			return NegInf
		}
		return a[i-lo]
	}

	// d = 0: H(0,0) = 0.
	prev.h[0], prev.e[0], prev.f[0] = 0, NegInf, NegInf
	prevLen := 1
	prev2Len := 0
	best := int32(0)
	bestI, bestJ := 0, 0
	res.AntiDiags, res.Cells, res.SumBand, res.MaxBand = 1, 1, 1, 1

	lo, hi := 0, 1
	for d := 1; d <= m+n; d++ {
		if lo < d-n {
			lo = d - n
		}
		if mh := min(d, m); hi > mh {
			hi = mh
		}
		if lo > hi {
			break
		}
		width := hi - lo + 1
		if cap(cur.h) < width {
			cur = mk(width)
		} else {
			cur.h = cur.h[:width]
			cur.e = cur.e[:width]
			cur.f = cur.f[:width]
		}
		cur.lo = lo
		threshold := best - x
		newBest := best
		nbI, nbJ := bestI, bestJ

		for i := lo; i <= hi; i++ {
			j := d - i
			// E: gap in target — from the left neighbor (i, j-1) on d-1.
			e := NegInf
			if j >= 1 {
				he := get(prev.h, prev.lo, i, prevLen)
				if he > NegInf {
					e = he + sc.GapOpen + sc.GapExtend
				}
				if ee := get(prev.e, prev.lo, i, prevLen); ee > NegInf && ee+sc.GapExtend > e {
					e = ee + sc.GapExtend
				}
			}
			// F: gap in query — from above (i-1, j) on d-1.
			f := NegInf
			if i >= 1 {
				hf := get(prev.h, prev.lo, i-1, prevLen)
				if hf > NegInf {
					f = hf + sc.GapOpen + sc.GapExtend
				}
				if ff := get(prev.f, prev.lo, i-1, prevLen); ff > NegInf && ff+sc.GapExtend > f {
					f = ff + sc.GapExtend
				}
			}
			// H: diagonal from (i-1, j-1) on d-2, or close a gap.
			h := NegInf
			if i >= 1 && j >= 1 {
				if hd := get(prev2.h, prev2.lo, i-1, prev2Len); hd > NegInf {
					if q[i-1] == t[j-1] {
						h = hd + sc.Match
					} else {
						h = hd + sc.Mismatch
					}
				}
			}
			if e > h {
				h = e
			}
			if f > h {
				h = f
			}
			// X-drop on H; E/F follow (a pruned cell ends all states).
			if h < threshold {
				h, e, f = NegInf, NegInf, NegInf
			} else if h > newBest {
				newBest = h
				nbI, nbJ = i, j
			}
			cur.h[i-lo], cur.e[i-lo], cur.f[i-lo] = h, e, f
		}
		res.Cells += int64(width)
		res.SumBand += int64(width)
		res.AntiDiags++
		if width > res.MaxBand {
			res.MaxBand = width
		}
		best = newBest
		bestI, bestJ = nbI, nbJ

		first, last := 0, width-1
		for first <= last && cur.h[first] == NegInf {
			first++
		}
		for last >= first && cur.h[last] == NegInf {
			last--
		}
		if first > last {
			break
		}
		// Rotate, keeping the trimmed bounds logically (storage intact).
		trimmed := row{
			h: cur.h[first : last+1], e: cur.e[first : last+1], f: cur.f[first : last+1],
			lo: cur.lo + first,
		}
		prev2, prev, cur = prev, trimmed, row{h: prev2.h[:0], e: prev2.e[:0], f: prev2.f[:0]}
		prev2Len = prevLen
		prevLen = last - first + 1
		lo = prev.lo
		hi = prev.lo + prevLen
	}
	res.Score = best
	res.QueryEnd = bestI
	res.TargetEnd = bestJ
	return res, nil
}
