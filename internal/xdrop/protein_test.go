package xdrop

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestBlosum62Properties(t *testing.T) {
	m := Blosum62(-6)
	// Symmetry: a substitution matrix must be symmetric.
	ab := m.Alphabet()
	for i := 0; i < len(ab); i++ {
		for j := 0; j < len(ab); j++ {
			if m.Score(ab[i], ab[j]) != m.Score(ab[j], ab[i]) {
				t.Fatalf("asymmetry at %c/%c", ab[i], ab[j])
			}
		}
	}
	// Known values.
	known := map[[2]byte]int32{
		{'W', 'W'}: 11, {'C', 'C'}: 9, {'A', 'A'}: 4, {'P', 'P'}: 7,
		{'A', 'R'}: -1, {'W', 'C'}: -2, {'I', 'L'}: 2, {'D', 'E'}: 2,
	}
	for k, want := range known {
		if got := m.Score(k[0], k[1]); got != want {
			t.Errorf("BLOSUM62[%c][%c] = %d, want %d", k[0], k[1], got, want)
		}
	}
	// Diagonal dominates its row (self-substitution is always best for
	// the standard residues).
	for i := 0; i < 20; i++ {
		diag := m.Score(ab[i], ab[i])
		for j := 0; j < 20; j++ {
			if j != i && m.Score(ab[i], ab[j]) >= diag {
				t.Errorf("BLOSUM62 %c row: off-diagonal %c >= diagonal", ab[i], ab[j])
			}
		}
	}
	// Lower-case residues map to the same index.
	if m.Score('a', 'A') != m.Score('A', 'A') {
		t.Error("lower-case residue not folded")
	}
}

func TestNewMatrixValidation(t *testing.T) {
	if _, err := NewMatrix("m", "", nil, -1); err == nil {
		t.Error("accepted empty alphabet")
	}
	if _, err := NewMatrix("m", "AB", [][]int8{{1, 0}}, -1); err == nil {
		t.Error("accepted wrong row count")
	}
	if _, err := NewMatrix("m", "AB", [][]int8{{1}, {0, 1}}, -1); err == nil {
		t.Error("accepted ragged rows")
	}
	if _, err := NewMatrix("m", "AB", [][]int8{{1, 0}, {0, 1}}, 1); err == nil {
		t.Error("accepted non-negative gap")
	}
}

func TestExtendMatrixIdenticalProtein(t *testing.T) {
	m := Blosum62(-6)
	p := []byte("MKVLAAGICWQRSTNDEHYF")
	r, err := ExtendMatrix(p, p, m, 100)
	if err != nil {
		t.Fatal(err)
	}
	var want int32
	for _, c := range p {
		want += m.Score(c, c)
	}
	if r.Score != want {
		t.Fatalf("identical protein score %d, want %d (sum of diagonal)", r.Score, want)
	}
	if r.QueryEnd != len(p) || r.TargetEnd != len(p) {
		t.Fatalf("ends (%d,%d)", r.QueryEnd, r.TargetEnd)
	}
}

func TestExtendMatrixValidation(t *testing.T) {
	m := Blosum62(-6)
	if _, err := ExtendMatrix([]byte("MKV1"), []byte("MKV"), m, 10); err == nil {
		t.Error("accepted invalid residue")
	}
	if _, err := ExtendMatrix([]byte("MKV"), []byte("MO"), m, 10); err == nil {
		t.Error("accepted residue O outside alphabet")
	}
	// qPos+seedLen overflows int; the bounds check must not wrap.
	if _, err := ExtendSeedMatrix([]byte("MKVL"), []byte("MKVL"), math.MaxInt-1, 0, 3, m, 10); err == nil {
		t.Error("accepted overflowing seed position")
	}
}

// exhaustiveMatrix is the unpruned oracle for matrix scoring.
func exhaustiveMatrix(q, t []byte, m *Matrix) int32 {
	ml, n := len(q), len(t)
	prev := make([]int32, n+1)
	cur := make([]int32, n+1)
	var best int32
	for j := 0; j <= n; j++ {
		prev[j] = int32(j) * m.Gap
	}
	for i := 1; i <= ml; i++ {
		cur[0] = int32(i) * m.Gap
		for j := 1; j <= n; j++ {
			s := prev[j-1] + m.Score(q[i-1], t[j-1])
			if v := prev[j] + m.Gap; v > s {
				s = v
			}
			if v := cur[j-1] + m.Gap; v > s {
				s = v
			}
			cur[j] = s
			if s > best {
				best = s
			}
		}
		prev, cur = cur, prev
	}
	return best
}

func randProtein(rng *rand.Rand, n int) []byte {
	const residues = "ARNDCQEGHILKMFPSTWYV"
	out := make([]byte, n)
	for i := range out {
		out[i] = residues[rng.Intn(len(residues))]
	}
	return out
}

func TestExtendMatrixMatchesExhaustive(t *testing.T) {
	m := Blosum62(-6)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		q := randProtein(rng, 1+rng.Intn(40))
		tt := randProtein(rng, 1+rng.Intn(40))
		got, err := ExtendMatrix(q, tt, m, 1<<28)
		if err != nil {
			t.Fatal(err)
		}
		want := exhaustiveMatrix(q, tt, m)
		if got.Score != want {
			t.Fatalf("trial %d: xdrop(inf)=%d exhaustive=%d\nq=%s\nt=%s", trial, got.Score, want, q, tt)
		}
	}
}

func TestExtendMatrixMonotoneInX(t *testing.T) {
	m := Blosum62(-6)
	rng := rand.New(rand.NewSource(2))
	q := randProtein(rng, 200)
	// Homolog: ~30% substitutions.
	h := append([]byte(nil), q...)
	for i := range h {
		if rng.Float64() < 0.3 {
			h[i] = randProtein(rng, 1)[0]
		}
	}
	prev := int32(-1 << 30)
	for _, x := range []int32{0, 10, 50, 200, 1 << 20} {
		r, err := ExtendMatrix(q, h, m, x)
		if err != nil {
			t.Fatal(err)
		}
		if r.Score < prev {
			t.Fatalf("score decreased at x=%d: %d < %d", x, r.Score, prev)
		}
		prev = r.Score
	}
}

func TestExtendSeedMatrixProtein(t *testing.T) {
	m := Blosum62(-6)
	rng := rand.New(rand.NewSource(3))
	q := randProtein(rng, 300)
	h := append([]byte(nil), q...)
	for i := range h {
		if rng.Float64() < 0.25 {
			h[i] = randProtein(rng, 1)[0]
		}
	}
	// Conserved seed region.
	copy(h[150:160], q[150:160])
	r, err := ExtendSeedMatrix(q, h, 150, 150, 10, m, 60)
	if err != nil {
		t.Fatal(err)
	}
	var seedScore int32
	for k := 0; k < 10; k++ {
		seedScore += m.Score(q[150+k], h[150+k])
	}
	if r.Score != r.Left.Score+r.Right.Score+seedScore {
		t.Fatalf("combined %d != parts %d+%d+%d", r.Score, r.Left.Score, r.Right.Score, seedScore)
	}
	if r.QBegin > 150 || r.QEnd < 160 {
		t.Fatalf("alignment does not span the seed: [%d,%d)", r.QBegin, r.QEnd)
	}
	// Unrelated proteins with a planted seed should extend almost
	// nowhere past it at small X.
	u := randProtein(rng, 300)
	copy(u[150:160], q[150:160])
	ru, err := ExtendSeedMatrix(q, u, 150, 150, 10, m, 15)
	if err != nil {
		t.Fatal(err)
	}
	if ru.Score >= r.Score {
		t.Fatalf("unrelated score %d >= homolog score %d", ru.Score, r.Score)
	}
	if _, err := ExtendSeedMatrix(q, h, 295, 150, 10, m, 15); err == nil {
		t.Error("accepted out-of-range protein seed")
	}
}

func TestFormatMatrix(t *testing.T) {
	out := FormatMatrix(Blosum62(-6))
	if !strings.Contains(out, "11") {
		t.Error("formatted matrix missing W-W=11")
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 25 {
		t.Error("formatted matrix row count")
	}
}
