package xdrop

import (
	"math/rand"
	"testing"

	"logan/internal/seq"
)

func affineDefault() AffineScoring {
	return AffineScoring{Match: 2, Mismatch: -4, GapOpen: -4, GapExtend: -2}
}

// affineOracle is the exhaustive Gotoh semi-global prefix optimum.
func affineOracle(q, t seq.Seq, sc AffineScoring) int32 {
	m, n := len(q), len(t)
	if m == 0 || n == 0 {
		return 0
	}
	hPrev := make([]int32, n+1)
	ePrev := make([]int32, n+1)
	hCur := make([]int32, n+1)
	eCur := make([]int32, n+1)
	var best int32
	hPrev[0] = 0
	ePrev[0] = NegInf
	for j := 1; j <= n; j++ {
		hPrev[j] = sc.GapOpen + int32(j)*sc.GapExtend
		ePrev[j] = hPrev[j]
	}
	for i := 1; i <= m; i++ {
		hCur[0] = sc.GapOpen + int32(i)*sc.GapExtend
		eCur[0] = NegInf
		f := hCur[0]
		for j := 1; j <= n; j++ {
			e := hPrev[j] + sc.GapOpen + sc.GapExtend
			if v := ePrev[j] + sc.GapExtend; v > e {
				e = v
			}
			// note: e here is the vertical state (gap in query), tracked
			// per column; f is horizontal within the row.
			nf := hCur[j-1] + sc.GapOpen + sc.GapExtend
			if v := f + sc.GapExtend; v > nf {
				nf = v
			}
			f = nf
			h := hPrev[j-1]
			if q[i-1] == t[j-1] {
				h += sc.Match
			} else {
				h += sc.Mismatch
			}
			if e > h {
				h = e
			}
			if f > h {
				h = f
			}
			hCur[j] = h
			eCur[j] = e
			if h > best {
				best = h
			}
		}
		hPrev, hCur = hCur, hPrev
		ePrev, eCur = eCur, ePrev
	}
	return best
}

func TestAffineValidate(t *testing.T) {
	if err := affineDefault().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []AffineScoring{
		{Match: 0, Mismatch: -1, GapOpen: -1, GapExtend: -1},
		{Match: 1, Mismatch: 1, GapOpen: -1, GapExtend: -1},
		{Match: 1, Mismatch: -1, GapOpen: 1, GapExtend: -1},
		{Match: 1, Mismatch: -1, GapOpen: -1, GapExtend: 0},
	}
	for _, sc := range bad {
		if err := sc.Validate(); err == nil {
			t.Errorf("accepted %+v", sc)
		}
	}
}

func TestExtendAffineIdentical(t *testing.T) {
	s := seq.MustNew("ACGTACGTACGTACGT")
	r, err := ExtendAffine(s, s, affineDefault(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if r.Score != 2*int32(len(s)) {
		t.Fatalf("identical affine score %d, want %d", r.Score, 2*len(s))
	}
}

func TestExtendAffineMatchesOracleLargeX(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sc := affineDefault()
	for trial := 0; trial < 60; trial++ {
		q := seq.RandSeq(rng, 1+rng.Intn(40))
		tt := seq.RandSeq(rng, 1+rng.Intn(40))
		r, err := ExtendAffine(q, tt, sc, 1<<28)
		if err != nil {
			t.Fatal(err)
		}
		want := affineOracle(q, tt, sc)
		if r.Score != want {
			t.Fatalf("trial %d: affine xdrop(inf)=%d oracle=%d\nq=%s\nt=%s",
				trial, r.Score, want, q, tt)
		}
	}
}

func TestExtendAffineBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sc := affineDefault()
	for trial := 0; trial < 40; trial++ {
		q := seq.RandSeq(rng, 1+rng.Intn(60))
		tt := seq.RandSeq(rng, 1+rng.Intn(60))
		x := int32(rng.Intn(100))
		r, err := ExtendAffine(q, tt, sc, x)
		if err != nil {
			t.Fatal(err)
		}
		if r.Score > affineOracle(q, tt, sc) {
			t.Fatalf("pruned affine %d beats oracle", r.Score)
		}
		if r.Score < 0 {
			t.Fatalf("negative affine score %d", r.Score)
		}
	}
}

func TestExtendAffineGapStructure(t *testing.T) {
	// One long gap must beat two short ones under affine costs: compare a
	// target with a single 4-base deletion against one with two 2-base
	// deletions. Both have identical linear-gap scores; affine prefers
	// the contiguous gap by one GapOpen.
	q := seq.MustNew("ACGTACGTAAGGCCTTACGTACGT")
	single := seq.MustNew("ACGTACGTCCTTACGTACGT") // drops AAGG (one gap of 4)
	double := seq.MustNew("ACGTACGTGGTTACGTACGT") // drops AA and CC (two gaps of 2)
	sc := affineDefault()
	rs, err := ExtendAffine(q, single, sc, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := ExtendAffine(q, double, sc, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Score <= rd.Score {
		t.Fatalf("single gap %d should beat split gaps %d under affine costs", rs.Score, rd.Score)
	}
}

func TestExtendAffineDivergentPrunes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	q := seq.RandSeq(rng, 2000)
	tt := seq.RandSeq(rng, 2000)
	r, err := ExtendAffine(q, tt, affineDefault(), 30)
	if err != nil {
		t.Fatal(err)
	}
	full := int64(len(q)) * int64(len(tt))
	if r.Cells > full/20 {
		t.Fatalf("divergent affine explored %d of %d cells", r.Cells, full)
	}
}

func TestExtendAffineEmpty(t *testing.T) {
	s := seq.MustNew("ACGT")
	r, err := ExtendAffine(nil, s, affineDefault(), 10)
	if err != nil || r.Score != 0 {
		t.Fatalf("empty affine: %+v, %v", r, err)
	}
}
