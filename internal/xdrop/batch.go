package xdrop

import (
	"context"
	"runtime"

	"logan/internal/seq"
)

// BatchStats summarizes the DP work of a batch of seed extensions, the
// inputs to the CPU time model and the GCUPS metric.
type BatchStats struct {
	Pairs     int
	Cells     int64
	AntiDiags int64
	MaxBand   int
	SumBand   int64 // over all anti-diagonals of all pairs
	// Kernel is the extension kernel the batch ran on, chosen once per
	// batch from its config key (see SelectKernel).
	Kernel Kernel
}

// MeanBand returns the average anti-diagonal width across the batch.
func (s BatchStats) MeanBand() float64 {
	if s.AntiDiags == 0 {
		return 0
	}
	return float64(s.SumBand) / float64(s.AntiDiags)
}

// Accumulate folds a single seed-extension result into the stats.
func (s *BatchStats) Accumulate(r SeedResult) {
	s.Pairs++
	s.Cells += r.Cells()
	s.AntiDiags += int64(r.Left.AntiDiags + r.Right.AntiDiags)
	s.SumBand += r.Left.SumBand + r.Right.SumBand
	if r.Left.MaxBand > s.MaxBand {
		s.MaxBand = r.Left.MaxBand
	}
	if r.Right.MaxBand > s.MaxBand {
		s.MaxBand = r.Right.MaxBand
	}
}

// ExtendBatch aligns every pair with ExtendSeed in parallel over `workers`
// goroutines (0 = GOMAXPROCS). This mirrors BELLA's use of SeqAn under
// OpenMP: one independent pairwise alignment per CPU thread (paper §V).
// Results are positionally aligned with the input; the error of the first
// failing pair (invalid seed) is returned with a nil result slice.
func ExtendBatch(pairs []seq.Pair, sc Scoring, x int32, workers int) ([]SeedResult, BatchStats, error) {
	return ExtendBatchContext(context.Background(), pairs, sc, x, workers)
}

// ExtendBatchContext is ExtendBatch under a context: the pool's workers
// check ctx per pair, so a canceled batch stops promptly and returns the
// context's error.
func ExtendBatchContext(ctx context.Context, pairs []seq.Pair, sc Scoring, x int32, workers int) ([]SeedResult, BatchStats, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pairs) && len(pairs) > 0 {
		workers = len(pairs)
	}
	p := NewPool(workers)
	defer p.Close()
	results := make([]SeedResult, len(pairs))
	stats, err := p.ExtendBatchScheme(ctx, pairs, results, LinearScheme(sc), x)
	if err != nil {
		return nil, BatchStats{}, err
	}
	return results, stats, nil
}
