package xdrop

import (
	"math/rand"
	"testing"

	"logan/internal/seq"
)

// TestExtendMatchesReference differentially checks the sentinel-padded
// workspace kernel against the pre-engine implementation over a spread of
// lengths, error rates, X values and scoring schemes: every field of the
// result must be bit-identical.
func TestExtendMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	w := NewWorkspace()
	schemes := []Scoring{
		DefaultScoring(),
		{Match: 2, Mismatch: -3, Gap: -2},
		{Match: 5, Mismatch: -4, Gap: -11},
	}
	for trial := 0; trial < 300; trial++ {
		m := 1 + rng.Intn(120)
		n := 1 + rng.Intn(120)
		q := seq.RandSeq(rng, m)
		var tt seq.Seq
		if rng.Intn(2) == 0 {
			tt = seq.RandSeq(rng, n)
		} else {
			tt = seq.Mutate(rng, q, seq.UniformProfile(rng.Float64()*0.4))
		}
		sc := schemes[rng.Intn(len(schemes))]
		x := int32(rng.Intn(60))
		want := ExtendReference(q, tt, sc, x)
		got := w.Extend(q, tt, sc, x)
		if got != want {
			t.Fatalf("trial %d (m=%d n=%d x=%d sc=%+v):\n got %+v\nwant %+v",
				trial, m, len(tt), x, sc, got, want)
		}
	}
}

// TestPoolMatchesExtendBatch checks the persistent pool against the
// one-shot batch path, including reuse across batches.
func TestPoolMatchesExtendBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pairs := seq.RandPairSet(rng, seq.PairSetOptions{
		N: 40, MinLen: 80, MaxLen: 300, ErrorRate: 0.2, SeedLen: 13,
	})
	sc := DefaultScoring()
	want, wantStats, err := ExtendBatch(pairs, sc, 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(3)
	defer p.Close()
	results := make([]SeedResult, len(pairs))
	for rep := 0; rep < 3; rep++ {
		stats, err := p.ExtendBatch(pairs, results, sc, 50)
		if err != nil {
			t.Fatal(err)
		}
		if stats != wantStats {
			t.Fatalf("rep %d: stats %+v != %+v", rep, stats, wantStats)
		}
		for i := range want {
			if results[i] != want[i] {
				t.Fatalf("rep %d pair %d: %+v != %+v", rep, i, results[i], want[i])
			}
		}
	}
}

// TestPoolReportsLowestErrorIndex checks the deterministic error choice.
func TestPoolReportsLowestErrorIndex(t *testing.T) {
	good := seq.MustNew("ACGTACGTACGT")
	pairs := []seq.Pair{
		{Query: good, Target: good, SeedQPos: 0, SeedTPos: 0, SeedLen: 4},
		{Query: good, Target: good, SeedQPos: 99, SeedTPos: 0, SeedLen: 4},
		{Query: good, Target: good, SeedQPos: 0, SeedTPos: 99, SeedLen: 4},
	}
	p := NewPool(2)
	defer p.Close()
	results := make([]SeedResult, len(pairs))
	if _, err := p.ExtendBatch(pairs, results, DefaultScoring(), 10); err == nil {
		t.Fatal("pool accepted out-of-range seeds")
	}
}

// TestPoolEmptyBatch checks the zero-work fast path.
func TestPoolEmptyBatch(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	if stats, err := p.ExtendBatch(nil, nil, DefaultScoring(), 10); err != nil || stats != (BatchStats{}) {
		t.Fatalf("empty batch: %+v %v", stats, err)
	}
}

// TestPoolClosedSubmit checks that batches after Close fail cleanly
// instead of panicking, and that Close is idempotent.
func TestPoolClosedSubmit(t *testing.T) {
	p := NewPool(2)
	p.Close()
	p.Close()
	good := seq.MustNew("ACGTACGT")
	pairs := []seq.Pair{{Query: good, Target: good, SeedQPos: 0, SeedTPos: 0, SeedLen: 4}}
	if _, err := p.ExtendBatch(pairs, make([]SeedResult, 1), DefaultScoring(), 10); err != ErrPoolClosed {
		t.Fatalf("submit after close: %v", err)
	}
}
