package xdrop

// Scheme generalizes the engine's scoring over the three families the
// repository implements: the paper's linear DNA scheme (the only one the
// GPU kernel speaks, §III), Gotoh affine gaps (affine.go), and residue
// substitution matrices (protein.go, the §VIII future-work item). A Scheme
// is the batch-level carrier: one value parameterizes a whole pool batch,
// the way core.Config parameterizes a GPU batch.

import (
	"fmt"

	"logan/internal/seq"
)

// SchemeKind enumerates the scoring families. The zero value is
// SchemeLinear, so legacy configs that only populate a linear Scoring
// keep meaning what they always meant.
type SchemeKind uint8

const (
	// SchemeLinear is the paper's scheme: per-base match/mismatch and a
	// linear gap penalty, over the DNA alphabet.
	SchemeLinear SchemeKind = iota
	// SchemeAffine is Gotoh scoring: GapOpen + l*GapExtend per gap.
	SchemeAffine
	// SchemeMatrix scores substitutions by a residue matrix (e.g.
	// BLOSUM62) with a linear gap penalty.
	SchemeMatrix
)

// String names the family ("linear", "affine", "matrix").
func (k SchemeKind) String() string {
	switch k {
	case SchemeLinear:
		return "linear"
	case SchemeAffine:
		return "affine"
	case SchemeMatrix:
		return "matrix"
	default:
		return fmt.Sprintf("scheme(%d)", uint8(k))
	}
}

// Scheme is a tagged union over the scoring families: Kind selects which
// of the three payload fields is live.
type Scheme struct {
	Kind   SchemeKind
	Linear Scoring       // live when Kind == SchemeLinear
	Affine AffineScoring // live when Kind == SchemeAffine
	Matrix *Matrix       // live when Kind == SchemeMatrix
}

// LinearScheme wraps a linear scoring scheme.
func LinearScheme(s Scoring) Scheme { return Scheme{Kind: SchemeLinear, Linear: s} }

// AffineScheme wraps a Gotoh affine-gap scheme.
func AffineScheme(s AffineScoring) Scheme { return Scheme{Kind: SchemeAffine, Affine: s} }

// MatrixScheme wraps a substitution-matrix scheme.
func MatrixScheme(m *Matrix) Scheme { return Scheme{Kind: SchemeMatrix, Matrix: m} }

// Validate rejects schemes whose live payload is nonsensical.
func (s Scheme) Validate() error {
	switch s.Kind {
	case SchemeLinear:
		return s.Linear.Validate()
	case SchemeAffine:
		return s.Affine.Validate()
	case SchemeMatrix:
		if s.Matrix == nil {
			return fmt.Errorf("xdrop: matrix scheme with nil matrix")
		}
		return nil
	default:
		return fmt.Errorf("xdrop: unknown scheme kind %d", s.Kind)
	}
}

// ExtendSeedScheme runs one seed-and-extend under the scheme: the
// single-pair dispatch the pooled batch path fans out over. Every family
// stages through the workspace (reversal buffers; the linear family also
// reuses its rolling anti-diagonals). The affine and matrix paths are
// score-identical to the ExtendSeedAffine/ExtendSeedMatrix oracles the
// batch paths are differentially tested against, with one batch-path
// contract: matrix-mode sequences must already be validated against the
// matrix alphabet (the engine validates at ingest, the coalescer at
// admission) — an unvalidated unknown residue scores as the matrix
// minimum instead of erroring.
func (w *Workspace) ExtendSeedScheme(q, t seq.Seq, qPos, tPos, seedLen int, sch Scheme, x int32) (SeedResult, error) {
	switch sch.Kind {
	case SchemeLinear:
		return w.ExtendSeed(q, t, qPos, tPos, seedLen, sch.Linear, x)
	case SchemeAffine:
		return w.ExtendSeedAffine(q, t, qPos, tPos, seedLen, sch.Affine, x)
	case SchemeMatrix:
		return w.extendSeedMatrix(q, t, qPos, tPos, seedLen, sch.Matrix, x)
	default:
		return SeedResult{}, fmt.Errorf("xdrop: unknown scheme kind %d", sch.Kind)
	}
}
