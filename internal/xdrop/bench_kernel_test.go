package xdrop

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"logan/internal/ksw2"
	"logan/internal/seq"
)

// kernelRegimes are the band-width regimes of the kernel comparison: X
// controls how wide the surviving band grows on a 15%-divergent pair, so
// the sweep moves the kernels from latency-bound narrow bands (where the
// 8-lane blocks barely fill) to throughput-bound wide ones.
var kernelRegimes = []struct {
	name string
	x    int32
}{
	{"narrow_x25", 25},
	{"medium_x100", 100},
	{"wide_x400", 400},
	{"xwide_x1600", 1600},
}

// BenchmarkKernel compares the three interior kernels — the scalar int32
// anti-diagonal loop, the 8-lane int16 vector kernel, and the
// ksw2-striped affine kernel (the minimap2 corner of the design space) —
// on one 2000-base extension per band regime. The cells/ns metric is the
// comparable number; ns/op is not, because the kernels explore different
// cell counts (ksw2 under Z-drop especially).
func BenchmarkKernel(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	q, t := benchPair(rng, 2000)
	sc := DefaultScoring()
	w := NewWorkspace()
	for _, reg := range kernelRegimes {
		b.Run(fmt.Sprintf("scalar/%s", reg.name), func(b *testing.B) {
			b.ReportAllocs()
			var cells int64
			for i := 0; i < b.N; i++ {
				cells += w.Extend(q, t, sc, reg.x).Cells
			}
			b.ReportMetric(float64(cells)/float64(b.Elapsed().Nanoseconds()), "cells/ns")
		})
		b.Run(fmt.Sprintf("vector/%s", reg.name), func(b *testing.B) {
			b.ReportAllocs()
			var cells int64
			for i := 0; i < b.N; i++ {
				cells += w.ExtendVector(q, t, sc, reg.x).Cells
			}
			b.ReportMetric(float64(cells)/float64(b.Elapsed().Nanoseconds()), "cells/ns")
		})
		b.Run(fmt.Sprintf("ksw2/%s", reg.name), func(b *testing.B) {
			p := ksw2.MinimapParams(reg.x)
			b.ReportAllocs()
			var cells int64
			for i := 0; i < b.N; i++ {
				cells += ksw2.ExtendZ(q, t, p).Cells
			}
			b.ReportMetric(float64(cells)/float64(b.Elapsed().Nanoseconds()), "cells/ns")
		})
	}
}

// BenchmarkPoolKernel10k is the batch-level acceptance comparison: the
// 10k-pair BELLA-style workload on a reused pool, once per kernel forced
// via ExtendBatchKernel. The vector/scalar cells/ns ratio is the speedup
// the bench-smoke artifact (BENCH_kernel.json) records.
func BenchmarkPoolKernel10k(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	pairs := seq.RandPairSet(rng, seq.PairSetOptions{
		N: 10000, MinLen: 200, MaxLen: 600, ErrorRate: 0.15, SeedLen: 17,
	})
	results := make([]SeedResult, len(pairs))
	sch := LinearScheme(DefaultScoring())
	p := NewPool(0)
	defer p.Close()
	for _, k := range []Kernel{KernelScalar, KernelVector} {
		b.Run(k.String(), func(b *testing.B) {
			b.ReportAllocs()
			var cells int64
			for i := 0; i < b.N; i++ {
				st, err := p.ExtendBatchKernel(context.Background(), pairs, results, sch, 100, k)
				if err != nil {
					b.Fatal(err)
				}
				cells += st.Cells
			}
			b.ReportMetric(float64(cells)/float64(b.Elapsed().Nanoseconds()), "cells/ns")
		})
	}
}
