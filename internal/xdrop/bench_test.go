package xdrop

import (
	"math/rand"
	"testing"

	"logan/internal/seq"
)

// benchPair builds one mutated pair of the given length with a centered
// seed, the shape of a BELLA overlap candidate.
func benchPair(rng *rand.Rand, n int) (q, t seq.Seq) {
	q = seq.RandSeq(rng, n)
	t = seq.Mutate(rng, q, seq.UniformProfile(0.15))
	return q, t
}

// BenchmarkExtend measures the serial X-drop kernel on one extension.
func BenchmarkExtend(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	q, t := benchPair(rng, 2000)
	sc := DefaultScoring()
	w := NewWorkspace()
	b.ReportAllocs()
	b.ResetTimer()
	var cells int64
	for i := 0; i < b.N; i++ {
		r := w.Extend(q, t, sc, 100)
		cells += r.Cells
	}
	b.ReportMetric(float64(cells)/float64(b.Elapsed().Nanoseconds()), "cells/ns")
}

// BenchmarkExtendSeedWorkspace measures the full seed-and-extend path on a
// reused workspace (the engine's per-pair hot path).
func BenchmarkExtendSeedWorkspace(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	q, t := benchPair(rng, 2000)
	sc := DefaultScoring()
	w := NewWorkspace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.ExtendSeed(q, t, 1000, 1000, 17, sc, 100); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtendReference measures the pre-engine kernel on the same
// extension, quantifying the sentinel-padded rewrite.
func BenchmarkExtendReference(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	q, t := benchPair(rng, 2000)
	sc := DefaultScoring()
	b.ReportAllocs()
	b.ResetTimer()
	var cells int64
	for i := 0; i < b.N; i++ {
		r := ExtendReference(q, t, sc, 100)
		cells += r.Cells
	}
	b.ReportMetric(float64(cells)/float64(b.Elapsed().Nanoseconds()), "cells/ns")
}
