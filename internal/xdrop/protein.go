package xdrop

// Protein-alignment support: the paper's §VIII names extending LOGAN "to
// support protein alignment" as future work; this file implements it for
// the CPU engine. The X-drop recurrence is unchanged — only the
// match/mismatch constant is replaced by a substitution-matrix lookup
// (BLOSUM62 by default), with linear gaps as elsewhere in the repository.

import (
	"fmt"
	"strings"

	"logan/internal/seq"
)

// AminoAlphabet is the residue order of NCBI substitution matrices.
const AminoAlphabet = "ARNDCQEGHILKMFPSTWYVBZX*"

// Matrix is a residue substitution matrix plus a linear gap penalty.
type Matrix struct {
	Name     string
	Gap      int32
	alphabet string
	index    [256]int8 // byte -> residue index; -1 = invalid
	scores   [24][24]int8
	maxAbs   int32 // largest |entry|, for score-overflow budgeting
}

// NewMatrix builds a Matrix over the given alphabet (<= 24 symbols) from
// a dense score table in alphabet order.
func NewMatrix(name, alphabet string, scores [][]int8, gap int32) (*Matrix, error) {
	n := len(alphabet)
	if n == 0 || n > 24 {
		return nil, fmt.Errorf("xdrop: alphabet size %d outside [1,24]", n)
	}
	if len(scores) != n {
		return nil, fmt.Errorf("xdrop: score table has %d rows, want %d", len(scores), n)
	}
	if gap >= 0 {
		return nil, fmt.Errorf("xdrop: gap penalty %d must be negative", gap)
	}
	m := &Matrix{Name: name, Gap: gap, alphabet: alphabet}
	for i := range m.index {
		m.index[i] = -1
	}
	for i := 0; i < n; i++ {
		c := alphabet[i]
		m.index[c] = int8(i)
		if c >= 'A' && c <= 'Z' {
			m.index[c|0x20] = int8(i)
		}
		if len(scores[i]) != n {
			return nil, fmt.Errorf("xdrop: score row %d has %d entries, want %d", i, len(scores[i]), n)
		}
		for j := 0; j < n; j++ {
			m.scores[i][j] = scores[i][j]
			abs := int32(scores[i][j])
			if abs < 0 {
				abs = -abs
			}
			if abs > m.maxAbs {
				m.maxAbs = abs
			}
		}
	}
	return m, nil
}

// MaxAbsScore returns the largest magnitude among the matrix entries
// (e.g. 11 for BLOSUM62), the per-substitution bound callers use to
// budget against int32 score overflow on long sequences.
func (m *Matrix) MaxAbsScore() int32 { return m.maxAbs }

// Score returns the substitution score of residues a and b. Unknown
// residues score as the matrix minimum.
func (m *Matrix) Score(a, b byte) int32 {
	ia, ib := m.index[a], m.index[b]
	if ia < 0 || ib < 0 {
		return -4
	}
	return int32(m.scores[ia][ib])
}

// ValidSeq reports whether every byte of s is in the matrix alphabet.
func (m *Matrix) ValidSeq(s []byte) bool {
	for _, c := range s {
		if m.index[c] < 0 {
			return false
		}
	}
	return true
}

// Alphabet returns the residue order.
func (m *Matrix) Alphabet() string { return m.alphabet }

// blosum62 is the standard NCBI BLOSUM62 table in AminoAlphabet order.
var blosum62 = [24][24]int8{
	{4, -1, -2, -2, 0, -1, -1, 0, -2, -1, -1, -1, -1, -2, -1, 1, 0, -3, -2, 0, -2, -1, 0, -4},
	{-1, 5, 0, -2, -3, 1, 0, -2, 0, -3, -2, 2, -1, -3, -2, -1, -1, -3, -2, -3, -1, 0, -1, -4},
	{-2, 0, 6, 1, -3, 0, 0, 0, 1, -3, -3, 0, -2, -3, -2, 1, 0, -4, -2, -3, 3, 0, -1, -4},
	{-2, -2, 1, 6, -3, 0, 2, -1, -1, -3, -4, -1, -3, -3, -1, 0, -1, -4, -3, -3, 4, 1, -1, -4},
	{0, -3, -3, -3, 9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1, -3, -3, -2, -4},
	{-1, 1, 0, 0, -3, 5, 2, -2, 0, -3, -2, 1, 0, -3, -1, 0, -1, -2, -1, -2, 0, 3, -1, -4},
	{-1, 0, 0, 2, -4, 2, 5, -2, 0, -3, -3, 1, -2, -3, -1, 0, -1, -3, -2, -2, 1, 4, -1, -4},
	{0, -2, 0, -1, -3, -2, -2, 6, -2, -4, -4, -2, -3, -3, -2, 0, -2, -2, -3, -3, -1, -2, -1, -4},
	{-2, 0, 1, -1, -3, 0, 0, -2, 8, -3, -3, -1, -2, -1, -2, -1, -2, -2, 2, -3, 0, 0, -1, -4},
	{-1, -3, -3, -3, -1, -3, -3, -4, -3, 4, 2, -3, 1, 0, -3, -2, -1, -3, -1, 3, -3, -3, -1, -4},
	{-1, -2, -3, -4, -1, -2, -3, -4, -3, 2, 4, -2, 2, 0, -3, -2, -1, -2, -1, 1, -4, -3, -1, -4},
	{-1, 2, 0, -1, -3, 1, 1, -2, -1, -3, -2, 5, -1, -3, -1, 0, -1, -3, -2, -2, 0, 1, -1, -4},
	{-1, -1, -2, -3, -1, 0, -2, -3, -2, 1, 2, -1, 5, 0, -2, -1, -1, -1, -1, 1, -3, -1, -1, -4},
	{-2, -3, -3, -3, -2, -3, -3, -3, -1, 0, 0, -3, 0, 6, -4, -2, -2, 1, 3, -1, -3, -3, -1, -4},
	{-1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4, 7, -1, -1, -4, -3, -2, -2, -1, -2, -4},
	{1, -1, 1, 0, -1, 0, 0, 0, -1, -2, -2, 0, -1, -2, -1, 4, 1, -3, -2, -2, 0, 0, 0, -4},
	{0, -1, 0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1, 1, 5, -2, -2, 0, -1, -1, 0, -4},
	{-3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1, 1, -4, -3, -2, 11, 2, -3, -4, -3, -2, -4},
	{-2, -2, -2, -3, -2, -1, -2, -3, 2, -1, -1, -2, -1, 3, -3, -2, -2, 2, 7, -1, -3, -2, -1, -4},
	{0, -3, -3, -3, -1, -2, -2, -3, -3, 3, 1, -2, 1, -1, -2, -2, 0, -3, -1, 4, -3, -2, -1, -4},
	{-2, -1, 3, 4, -3, 0, 1, -1, 0, -3, -4, 0, -3, -3, -2, 0, -1, -4, -3, -3, 4, 1, -1, -4},
	{-1, 0, 0, 1, -3, 3, 4, -2, 0, -3, -3, 1, -1, -3, -1, 0, -1, -3, -2, -2, 1, 4, -1, -4},
	{0, -1, -1, -1, -2, -1, -1, -1, -1, -1, -1, -1, -1, -1, -2, 0, 0, -2, -1, -1, -1, -1, -1, -4},
	{-4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, 1},
}

// Blosum62 returns the BLOSUM62 matrix with the given linear gap penalty
// (a common choice pairs BLOSUM62 with gap -6 under linear gaps).
func Blosum62(gap int32) *Matrix {
	rows := make([][]int8, 24)
	for i := range rows {
		rows[i] = blosum62[i][:]
	}
	m, err := NewMatrix("BLOSUM62", AminoAlphabet, rows, gap)
	if err != nil {
		panic(err) // static table; cannot fail
	}
	return m
}

// ExtendMatrix is Extend generalized to substitution-matrix scoring: the
// highest-scoring semi-global alignment of prefixes of q and t under the
// matrix and its linear gap penalty, with X-drop pruning. Sequences are
// validated against the matrix alphabet.
func ExtendMatrix(q, t []byte, m *Matrix, x int32) (Result, error) {
	if !m.ValidSeq(q) || !m.ValidSeq(t) {
		return Result{}, fmt.Errorf("xdrop: sequence contains residues outside the %s alphabet", m.Name)
	}
	return extendMatrix(q, t, m, x), nil
}

func extendMatrix(q, t []byte, m *Matrix, x int32) Result {
	mlen, n := len(q), len(t)
	res := Result{}
	if mlen == 0 || n == 0 || x < 0 {
		return res
	}
	cap0 := min(mlen, n) + 2
	a1 := make([]int32, 0, cap0)
	a2 := make([]int32, 0, cap0)
	a3 := make([]int32, 0, cap0)
	var lo1, lo2, lo3 int

	best := int32(0)
	bestI, bestJ := 0, 0
	a2 = append(a2, 0)
	lo2 = 0
	res.AntiDiags = 1
	res.Cells = 1
	res.SumBand = 1
	res.MaxBand = 1

	lo, hi := 0, 1
	for d := 1; d <= mlen+n; d++ {
		if lo < d-n {
			lo = d - n
		}
		if mh := min(d, mlen); hi > mh {
			hi = mh
		}
		if lo > hi {
			break
		}
		width := hi - lo + 1
		if cap(a1) < width {
			a1 = make([]int32, width)
		} else {
			a1 = a1[:width]
		}
		lo1 = lo
		hi2 := lo2 + len(a2) - 1
		hi3 := lo3 + len(a3) - 1
		threshold := best - x
		newBest := best
		newBI, newBJ := bestI, bestJ
		for i := lo; i <= hi; i++ {
			j := d - i
			s := NegInf
			if i >= 1 && j >= 1 && i-1 >= lo3 && i-1 <= hi3 {
				if prev := a3[i-1-lo3]; prev > NegInf {
					s = prev + m.Score(q[i-1], t[j-1])
				}
			}
			g := NegInf
			if j >= 1 && i >= lo2 && i <= hi2 {
				g = a2[i-lo2]
			}
			if i >= 1 && i-1 >= lo2 && i-1 <= hi2 {
				if v := a2[i-1-lo2]; v > g {
					g = v
				}
			}
			if g > NegInf && g+m.Gap > s {
				s = g + m.Gap
			}
			if s < threshold {
				s = NegInf
			} else if s > newBest {
				newBest = s
				newBI, newBJ = i, j
			}
			a1[i-lo] = s
		}
		res.Cells += int64(width)
		res.SumBand += int64(width)
		res.AntiDiags++
		if width > res.MaxBand {
			res.MaxBand = width
		}
		best = newBest
		bestI, bestJ = newBI, newBJ

		first, last := 0, width-1
		for first <= last && a1[first] == NegInf {
			first++
		}
		for last >= first && a1[last] == NegInf {
			last--
		}
		if first > last {
			break
		}
		lo = lo1 + first
		hi = lo1 + last + 1
		a3, a2, a1 = a2, a1[first:last+1], a3[:0]
		lo3 = lo2
		lo2 = lo1 + first
	}
	res.Score = best
	res.QueryEnd = bestI
	res.TargetEnd = bestJ
	return res
}

// ExtendSeedMatrix is seed-and-extend under a substitution matrix: the
// protein analogue of ExtendSeed, scoring the seed region explicitly
// (protein seeds are rarely exact matches, so the seed contributes its
// actual matrix score, not length x match).
func ExtendSeedMatrix(q, t []byte, qPos, tPos, seedLen int, m *Matrix, x int32) (SeedResult, error) {
	if !m.ValidSeq(q) || !m.ValidSeq(t) {
		return SeedResult{}, fmt.Errorf("xdrop: sequence contains residues outside the %s alphabet", m.Name)
	}
	w := wsPool.Get().(*Workspace)
	r, err := w.extendSeedMatrix(q, t, qPos, tPos, seedLen, m, x)
	wsPool.Put(w)
	return r, err
}

// extendSeedMatrix is the workspace form of ExtendSeedMatrix, without
// the alphabet scan: the batch path validates sequences once at
// admission (the engine's ingest, plus the coalescer's), so re-scanning
// every byte per extension would be pure overhead. Callers own the
// validation contract — an unknown residue slipping through scores as
// the matrix minimum instead of erroring. Reversals stage into the
// workspace buffers.
func (w *Workspace) extendSeedMatrix(q, t []byte, qPos, tPos, seedLen int, m *Matrix, x int32) (SeedResult, error) {
	// Overflow-safe bounds (qPos+seedLen can wrap); see Workspace.ExtendSeed.
	if qPos < 0 || tPos < 0 || seedLen <= 0 || qPos > len(q)-seedLen || tPos > len(t)-seedLen {
		return SeedResult{}, fmt.Errorf("xdrop: seed (%d,%d,len %d) outside sequences (%d, %d)",
			qPos, tPos, seedLen, len(q), len(t))
	}
	w.revQ = seq.AppendReverse(w.revQ[:0], q[:qPos])
	w.revT = seq.AppendReverse(w.revT[:0], t[:tPos])
	r := SeedResult{SeedLen: seedLen}
	r.Left = extendMatrix(w.revQ, w.revT, m, x)
	r.Right = extendMatrix(q[qPos+seedLen:], t[tPos+seedLen:], m, x)
	var seedScore int32
	for k := 0; k < seedLen; k++ {
		seedScore += m.Score(q[qPos+k], t[tPos+k])
	}
	r.Score = r.Left.Score + r.Right.Score + seedScore
	r.QBegin = qPos - r.Left.QueryEnd
	r.TBegin = tPos - r.Left.TargetEnd
	r.QEnd = qPos + seedLen + r.Right.QueryEnd
	r.TEnd = tPos + seedLen + r.Right.TargetEnd
	return r, nil
}

// FormatMatrix renders the matrix as the classic NCBI text table, mainly
// for documentation and debugging.
func FormatMatrix(m *Matrix) string {
	var b strings.Builder
	b.WriteString("  ")
	for i := 0; i < len(m.alphabet); i++ {
		fmt.Fprintf(&b, "%3c", m.alphabet[i])
	}
	b.WriteString("\n")
	for i := 0; i < len(m.alphabet); i++ {
		fmt.Fprintf(&b, "%c ", m.alphabet[i])
		for j := 0; j < len(m.alphabet); j++ {
			fmt.Fprintf(&b, "%3d", m.scores[i][j])
		}
		b.WriteString("\n")
	}
	return b.String()
}
