//go:build amd64

package xdrop

import "logan/internal/simd"

// vectorRowBlocks dispatches the 8-lane block kernel to the SSE2 assembly
// implementation (vector_row_amd64.s). SSE2 is part of the amd64 baseline,
// so no runtime feature detection is needed. The match/mismatch lane adds
// are taken from the blend table's all-ones and all-zeros entries; the
// assembly rebuilds the broadcast vectors itself, which is cheaper than
// one 4 KiB table per scheme and identical in effect.
func vectorRowBlocks(d3, d2m1, out []int16, qs, ts []byte, blocks int, tab *simd.BlendTable, gw, tw int) int {
	return vectorRowBlocksSSE(d3, d2m1, out, qs, ts, blocks,
		int(tab[255][0]), int(tab[0][0]), gw, tw, int(negInf16))
}

// vectorRowBlocksSSE is implemented in vector_row_amd64.s. It processes
// blocks*8 interior cells of one anti-diagonal with SSE2 128-bit integer
// instructions — the real form of the 8×int16 lane model that
// internal/simd emulates — and returns the maximum stored (post-clamp)
// value. It is bit-identical to vectorRowBlocksPortable on every input
// (pinned by TestVectorRowBlocksSSE and the kernel fuzz target).
//
//go:noescape
func vectorRowBlocksSSE(d3, d2m1, out []int16, qs, ts []byte, blocks, match, mism, gw, tw, ninf int) int
