package xdrop

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"logan/internal/seq"
)

func TestScoringValidate(t *testing.T) {
	if err := DefaultScoring().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Scoring{
		{Match: 0, Mismatch: -1, Gap: -1},
		{Match: 1, Mismatch: 1, Gap: -1},
		{Match: 1, Mismatch: -1, Gap: 0},
	}
	for _, sc := range bad {
		if err := sc.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", sc)
		}
	}
}

func TestExtendIdenticalSequences(t *testing.T) {
	sc := DefaultScoring()
	s := seq.MustNew("ACGTACGTACGTACGT")
	r := Extend(s, s, sc, 10)
	if r.Score != int32(len(s)) {
		t.Fatalf("identical extend score = %d, want %d", r.Score, len(s))
	}
	if r.QueryEnd != len(s) || r.TargetEnd != len(s) {
		t.Fatalf("ends = (%d,%d), want (%d,%d)", r.QueryEnd, r.TargetEnd, len(s), len(s))
	}
}

func TestExtendEmptyInputs(t *testing.T) {
	sc := DefaultScoring()
	s := seq.MustNew("ACGT")
	for _, tc := range []struct{ q, t seq.Seq }{
		{nil, s}, {s, nil}, {nil, nil},
	} {
		r := Extend(tc.q, tc.t, sc, 10)
		if r.Score != 0 || r.QueryEnd != 0 || r.TargetEnd != 0 {
			t.Fatalf("empty extend = %+v, want zero result", r)
		}
	}
}

func TestExtendDivergentTerminatesEarly(t *testing.T) {
	// Two unrelated sequences: X-drop must abandon the search after a
	// small number of anti-diagonals instead of filling the matrix.
	rng := rand.New(rand.NewSource(1))
	q := seq.RandSeq(rng, 4000)
	tt := seq.RandSeq(rng, 4000)
	r := Extend(q, tt, DefaultScoring(), 20)
	full := int64(len(q)) * int64(len(tt))
	if r.Cells > full/10 {
		t.Fatalf("divergent pair explored %d cells, want far fewer than %d", r.Cells, full)
	}
	// And a related pair at the same X must explore far fewer cells per
	// anti-diagonal than the divergent one wastes before terminating.
	rel := seq.Mutate(rng, q, seq.UniformProfile(0.15))
	related := Extend(q, rel, DefaultScoring(), 20)
	if related.AntiDiags < 10*r.AntiDiags/9 && r.AntiDiags > related.AntiDiags {
		t.Fatalf("divergent pair ran longer (%d anti-diags) than related pair (%d)", r.AntiDiags, related.AntiDiags)
	}
}

func TestExtendMatchesExhaustiveLargeX(t *testing.T) {
	// With x large enough that nothing is pruned, the X-drop search must
	// find the exact optimum of the semi-global prefix DP.
	rng := rand.New(rand.NewSource(2))
	sc := DefaultScoring()
	for trial := 0; trial < 60; trial++ {
		m, n := 1+rng.Intn(40), 1+rng.Intn(40)
		q := seq.RandSeq(rng, m)
		tt := seq.RandSeq(rng, n)
		got := Extend(q, tt, sc, 1<<28)
		want := ExtendExhaustive(q, tt, sc)
		if got.Score != want.Score {
			t.Fatalf("trial %d: xdrop(inf)=%d, exhaustive=%d\nq=%s\nt=%s",
				trial, got.Score, want.Score, q, tt)
		}
	}
}

func TestExtendMonotonicInX(t *testing.T) {
	// A larger X never decreases the score: pruning only removes options.
	rng := rand.New(rand.NewSource(3))
	sc := DefaultScoring()
	for trial := 0; trial < 30; trial++ {
		base := seq.RandSeq(rng, 200)
		mut := seq.Mutate(rng, base, seq.UniformProfile(0.2))
		prev := int32(-1)
		for _, x := range []int32{0, 2, 5, 10, 25, 50, 100, 1 << 20} {
			r := Extend(base, mut, sc, x)
			if r.Score < prev {
				t.Fatalf("trial %d: score decreased from %d to %d at x=%d", trial, prev, r.Score, x)
			}
			prev = r.Score
		}
	}
}

func TestExtendScoreUpperBound(t *testing.T) {
	// Property: any X-drop score is bounded by the exhaustive optimum and
	// by match * min(m, n).
	rng := rand.New(rand.NewSource(4))
	sc := DefaultScoring()
	f := func(seed int64, xRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		m, n := 1+r.Intn(30), 1+r.Intn(30)
		q := seq.RandSeq(r, m)
		tt := seq.RandSeq(r, n)
		x := int32(xRaw)
		got := Extend(q, tt, sc, x)
		exact := ExtendExhaustive(q, tt, sc)
		limit := int32(min(m, n)) * sc.Match
		return got.Score <= exact.Score && got.Score <= limit && got.Score >= 0
	}
	_ = rng
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestExtendSymmetry(t *testing.T) {
	// Swapping query and target transposes the DP; with a symmetric
	// scheme the score must be identical.
	rng := rand.New(rand.NewSource(5))
	sc := DefaultScoring()
	for trial := 0; trial < 40; trial++ {
		q := seq.RandSeq(rng, 1+rng.Intn(60))
		tt := seq.RandSeq(rng, 1+rng.Intn(60))
		a := Extend(q, tt, sc, 15)
		b := Extend(tt, q, sc, 15)
		if a.Score != b.Score {
			t.Fatalf("asymmetric scores %d vs %d\nq=%s\nt=%s", a.Score, b.Score, q, tt)
		}
	}
}

func TestExtendEndsAreConsistent(t *testing.T) {
	// The reported end positions must reproduce the reported score when
	// the prefix pair is re-aligned exhaustively.
	rng := rand.New(rand.NewSource(6))
	sc := DefaultScoring()
	for trial := 0; trial < 30; trial++ {
		base := seq.RandSeq(rng, 150)
		mut := seq.Mutate(rng, base, seq.UniformProfile(0.1))
		r := Extend(base, mut, sc, 30)
		if r.QueryEnd == 0 && r.TargetEnd == 0 {
			if r.Score != 0 {
				t.Fatalf("zero ends but score %d", r.Score)
			}
			continue
		}
		sub := ExtendExhaustive(base[:r.QueryEnd], mut[:r.TargetEnd], sc)
		if sub.Score < r.Score {
			t.Fatalf("prefix (%d,%d) exhaustive score %d < reported %d",
				r.QueryEnd, r.TargetEnd, sub.Score, r.Score)
		}
	}
}

func TestExtendBandNarrowsWithSmallX(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := seq.RandSeq(rng, 2000)
	mut := seq.Mutate(rng, base, seq.UniformProfile(0.15))
	sc := DefaultScoring()
	small := Extend(base, mut, sc, 10)
	large := Extend(base, mut, sc, 500)
	if small.MaxBand >= large.MaxBand {
		t.Fatalf("band did not grow with X: %d (X=10) vs %d (X=500)", small.MaxBand, large.MaxBand)
	}
	if small.Cells >= large.Cells {
		t.Fatalf("cells did not grow with X: %d vs %d", small.Cells, large.Cells)
	}
}

func TestExtendWorkCountersConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	q := seq.RandSeq(rng, 300)
	tt := seq.Mutate(rng, q, seq.UniformProfile(0.1))
	r := Extend(q, tt, DefaultScoring(), 50)
	if r.Cells != r.SumBand {
		t.Fatalf("cells %d != sum of band widths %d", r.Cells, r.SumBand)
	}
	if int64(r.MaxBand)*int64(r.AntiDiags) < r.Cells {
		t.Fatalf("MaxBand*AntiDiags=%d < Cells=%d", int64(r.MaxBand)*int64(r.AntiDiags), r.Cells)
	}
}

func TestExtendSeedCombination(t *testing.T) {
	sc := DefaultScoring()
	rng := rand.New(rand.NewSource(9))
	base := seq.RandSeq(rng, 400)
	pairs := seq.RandPairSet(rng, seq.PairSetOptions{N: 20, MinLen: 200, MaxLen: 400, ErrorRate: 0.1, SeedLen: 17})
	_ = base
	for _, p := range pairs {
		r, err := ExtendSeed(p.Query, p.Target, p.SeedQPos, p.SeedTPos, p.SeedLen, sc, 50)
		if err != nil {
			t.Fatal(err)
		}
		wantScore := r.Left.Score + r.Right.Score + int32(p.SeedLen)*sc.Match
		if r.Score != wantScore {
			t.Fatalf("combined score %d != %d", r.Score, wantScore)
		}
		if r.QBegin > p.SeedQPos || r.QEnd < p.SeedQPos+p.SeedLen {
			t.Fatalf("alignment [%d,%d) does not cover seed at %d", r.QBegin, r.QEnd, p.SeedQPos)
		}
		if r.QBegin < 0 || r.QEnd > len(p.Query) || r.TBegin < 0 || r.TEnd > len(p.Target) {
			t.Fatalf("extent outside sequences: %+v", r)
		}
	}
}

func TestExtendSeedValidation(t *testing.T) {
	s := seq.MustNew("ACGTACGTAC")
	sc := DefaultScoring()
	cases := []struct{ qp, tp, l int }{
		{-1, 0, 3}, {0, -1, 3}, {0, 0, 0}, {8, 0, 3}, {0, 8, 3},
		// qp+l and tp+l overflow int; the bounds check must not wrap.
		{math.MaxInt - 1, 0, 3}, {0, math.MaxInt - 1, 3},
	}
	for _, c := range cases {
		if _, err := ExtendSeed(s, s, c.qp, c.tp, c.l, sc, 10); err == nil {
			t.Errorf("ExtendSeed accepted seed (%d,%d,%d)", c.qp, c.tp, c.l)
		}
	}
	if _, err := ExtendSeed(s, s, 0, 0, 3, Scoring{Match: 0, Mismatch: -1, Gap: -1}, 10); err == nil {
		t.Error("ExtendSeed accepted invalid scoring")
	}
}

func TestExtendSeedAtEdges(t *testing.T) {
	// Seed flush against sequence boundaries: one of the extensions is
	// empty and must contribute zero.
	sc := DefaultScoring()
	s := seq.MustNew("ACGTACGTACGTACGT")
	r, err := ExtendSeed(s, s, 0, 0, 4, sc, 10)
	if err != nil {
		t.Fatal(err)
	}
	if r.Left.Score != 0 || r.Left.Cells != 0 {
		t.Fatalf("left extension at edge = %+v, want empty", r.Left)
	}
	if r.Score != int32(len(s)) {
		t.Fatalf("score = %d, want %d", r.Score, len(s))
	}
	r, err = ExtendSeed(s, s, len(s)-4, len(s)-4, 4, sc, 10)
	if err != nil {
		t.Fatal(err)
	}
	if r.Right.Score != 0 {
		t.Fatalf("right extension at edge = %+v, want empty", r.Right)
	}
}

func TestExtendBatchMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	pairs := seq.RandPairSet(rng, seq.PairSetOptions{N: 64, MinLen: 100, MaxLen: 300, ErrorRate: 0.15, SeedLen: 17})
	sc := DefaultScoring()
	parallel, stats, err := ExtendBatch(pairs, sc, 30, 8)
	if err != nil {
		t.Fatal(err)
	}
	serial, _, err := ExtendBatch(pairs, sc, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pairs {
		if parallel[i].Score != serial[i].Score {
			t.Fatalf("pair %d: parallel score %d != serial %d", i, parallel[i].Score, serial[i].Score)
		}
	}
	if stats.Pairs != 64 || stats.Cells <= 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.MeanBand() <= 0 || float64(stats.MaxBand) < stats.MeanBand() {
		t.Fatalf("band stats inconsistent: %+v", stats)
	}
}

func TestExtendBatchEmptyAndErrors(t *testing.T) {
	sc := DefaultScoring()
	res, stats, err := ExtendBatch(nil, sc, 10, 4)
	if err != nil || len(res) != 0 || stats.Pairs != 0 {
		t.Fatalf("empty batch: res=%v stats=%+v err=%v", res, stats, err)
	}
	bad := []seq.Pair{{Query: seq.MustNew("ACGT"), Target: seq.MustNew("ACGT"), SeedQPos: 3, SeedTPos: 0, SeedLen: 4}}
	if _, _, err := ExtendBatch(bad, sc, 10, 2); err == nil {
		t.Fatal("batch accepted out-of-range seed")
	}
}

func TestNoExplorationPastTermination(t *testing.T) {
	// After the score drops by more than X with no recovery possible, the
	// anti-diagonal count must stay near the drop point.
	sc := DefaultScoring()
	q := append(seq.MustNew("ACGTACGTACGTACGTACGT"), seq.MustNew("TTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTTT")...)
	tt := append(seq.MustNew("ACGTACGTACGTACGTACGT"), seq.MustNew("GGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGG")...)
	r := Extend(q, tt, sc, 5)
	if r.Score != 20 {
		t.Fatalf("score = %d, want 20 (the shared prefix)", r.Score)
	}
	if r.AntiDiags > 60 {
		t.Fatalf("explored %d anti-diagonals past a hard divergence", r.AntiDiags)
	}
}

func BenchmarkExtendRelated(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	base := seq.RandSeq(rng, 5000)
	mut := seq.Mutate(rng, base, seq.PacBioProfile(0.15))
	sc := DefaultScoring()
	b.ResetTimer()
	var cells int64
	for i := 0; i < b.N; i++ {
		r := Extend(base, mut, sc, 100)
		cells += r.Cells
	}
	b.ReportMetric(float64(cells)/b.Elapsed().Seconds()/1e9, "GCUPS")
}

func BenchmarkExtendDivergent(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	q := seq.RandSeq(rng, 5000)
	tt := seq.RandSeq(rng, 5000)
	sc := DefaultScoring()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Extend(q, tt, sc, 100)
	}
}
