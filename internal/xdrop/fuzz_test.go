package xdrop

import (
	"testing"

	"logan/internal/seq"
)

// sanitizeDNA maps arbitrary bytes onto the ACGT alphabet.
func sanitizeDNA(raw []byte) seq.Seq {
	out := make(seq.Seq, len(raw))
	for i, b := range raw {
		out[i] = seq.Alphabet[int(b)%4]
	}
	return out
}

// FuzzExtend hammers the X-drop core with arbitrary sequences and X
// values, checking the structural invariants that must hold for any
// input: score bounds, end positions inside the matrix, work counters
// consistent, and never exceeding the exhaustive optimum.
func FuzzExtend(f *testing.F) {
	f.Add([]byte("ACGTACGT"), []byte("ACGAACGT"), int32(10))
	f.Add([]byte(""), []byte("A"), int32(0))
	f.Add([]byte("TTTTTTTT"), []byte("AAAAAAAA"), int32(3))
	f.Add([]byte("ACACACACACAC"), []byte("CACACACACACA"), int32(100))
	f.Fuzz(func(t *testing.T, qRaw, tRaw []byte, x int32) {
		if len(qRaw) > 300 || len(tRaw) > 300 {
			return
		}
		if x < 0 {
			x = -x
		}
		if x > 1<<20 {
			x %= 1 << 20
		}
		q := sanitizeDNA(qRaw)
		tt := sanitizeDNA(tRaw)
		sc := DefaultScoring()
		r := Extend(q, tt, sc, x)
		if r.Score < 0 {
			t.Fatalf("negative score %d", r.Score)
		}
		if r.QueryEnd < 0 || r.QueryEnd > len(q) || r.TargetEnd < 0 || r.TargetEnd > len(tt) {
			t.Fatalf("ends (%d,%d) outside matrix (%d,%d)", r.QueryEnd, r.TargetEnd, len(q), len(tt))
		}
		if r.Score > int32(min(len(q), len(tt))) {
			t.Fatalf("score %d exceeds min length", r.Score)
		}
		if r.Cells != r.SumBand {
			t.Fatalf("cells %d != band sum %d", r.Cells, r.SumBand)
		}
		if len(q) > 0 && len(tt) > 0 && len(q) <= 64 && len(tt) <= 64 {
			exact := ExtendExhaustive(q, tt, sc)
			if r.Score > exact.Score {
				t.Fatalf("pruned score %d beats exhaustive %d", r.Score, exact.Score)
			}
		}
	})
}

// FuzzExtendVectorDifferential pins the vector kernel bit-identical to
// the reference scalar implementation: same score, same end cell, same
// work counters, on arbitrary sequences under arbitrary eligible
// scoring. The fuzzed parameters deliberately reach the envelope edges —
// match weights up to VectorMaxScore drive long extensions across the
// int16 rebase threshold, and X values above VectorMaxX exercise the
// scalar fallback path inside ExtendVector.
func FuzzExtendVectorDifferential(f *testing.F) {
	f.Add([]byte("ACGTACGT"), []byte("ACGAACGT"), int32(10), uint8(1), uint8(1), uint8(1))
	f.Add([]byte("ACACACACACAC"), []byte("CACACACACACA"), int32(100), uint8(255), uint8(1), uint8(1))
	f.Add([]byte("TTTTTTTT"), []byte("TTTTTTTT"), VectorMaxX, uint8(255), uint8(255), uint8(255))
	f.Add([]byte("GGGGCCCC"), []byte("GGGGCCCC"), VectorMaxX+1, uint8(2), uint8(3), uint8(4))
	ws := NewWorkspace()
	f.Fuzz(func(t *testing.T, qRaw, tRaw []byte, x int32, mRaw, mmRaw, gRaw uint8) {
		if len(qRaw) > 300 || len(tRaw) > 300 {
			return
		}
		if x < 0 {
			x = -x
		}
		// Keep a tail of the range beyond VectorMaxX so the fallback
		// branch stays covered.
		if x > 2*VectorMaxX {
			x %= 2 * VectorMaxX
		}
		q := sanitizeDNA(qRaw)
		tt := sanitizeDNA(tRaw)
		sc := Scoring{
			Match:    int32(mRaw)%VectorMaxScore + 1,
			Mismatch: -int32(mmRaw)%VectorMaxScore - 1,
			Gap:      -int32(gRaw)%VectorMaxScore - 1,
		}
		want := ExtendReference(q, tt, sc, x)
		got := ws.ExtendVector(q, tt, sc, x)
		if got != want {
			t.Fatalf("vector %+v != reference %+v (sc %+v x %d)", got, want, sc, x)
		}
	})
}

// FuzzExtendMatrix does the same for the protein path.
func FuzzExtendMatrix(f *testing.F) {
	f.Add([]byte("MKVL"), []byte("MKVL"), int32(20))
	f.Add([]byte("W"), []byte("W"), int32(0))
	m := Blosum62(-6)
	const residues = "ARNDCQEGHILKMFPSTWYV"
	f.Fuzz(func(t *testing.T, qRaw, tRaw []byte, x int32) {
		if len(qRaw) > 200 || len(tRaw) > 200 {
			return
		}
		if x < 0 {
			x = -x
		}
		x %= 1 << 16
		q := make([]byte, len(qRaw))
		for i, b := range qRaw {
			q[i] = residues[int(b)%len(residues)]
		}
		tt := make([]byte, len(tRaw))
		for i, b := range tRaw {
			tt[i] = residues[int(b)%len(residues)]
		}
		r, err := ExtendMatrix(q, tt, m, x)
		if err != nil {
			t.Fatalf("sanitized protein rejected: %v", err)
		}
		if r.Score < 0 {
			t.Fatalf("negative protein score %d", r.Score)
		}
		if r.QueryEnd > len(q) || r.TargetEnd > len(tt) {
			t.Fatal("protein ends outside matrix")
		}
		// 11 is the largest BLOSUM62 entry (W/W).
		if r.Score > 11*int32(min(len(q), len(tt))) {
			t.Fatalf("score %d exceeds matrix maximum", r.Score)
		}
	})
}
