package xdrop

import (
	"encoding/binary"

	"logan/internal/seq"
	"logan/internal/simd"
)

// The vector kernel's int16 working range. Band-local scores are stored
// rebased (score - base) so they fit int16 lanes: the rebase fires between
// anti-diagonals once the local best crosses vectorRebaseAt, which keeps
// every live lane inside [best-x, best+match] ⊂ (negInf16Guard, 32767)
// with margin — saturation can therefore never touch a live score, which
// is what keeps the kernel bit-identical to the int32 scalar path.
const (
	// negInf16 is the pruned-lane sentinel. It is far enough from the
	// int16 edge that sentinel + score never wraps, and far enough below
	// any reachable threshold (>= -vectorMaxX after a rebase) that a
	// sentinel-sourced cell is always re-pruned.
	negInf16 int16 = -29000
	// negInf16Guard separates live lanes from sentinel lanes during the
	// rebase sweep: live values stay strictly above it, sentinels below.
	negInf16Guard int16 = negInf16 / 2
	// vectorRebaseAt triggers the between-diagonal rebase sweep.
	vectorRebaseAt int16 = 16384
	// VectorMaxX is the widest X-drop threshold the vector kernel
	// accepts: beyond it the band's dynamic range (x + match) approaches
	// the int16 span and the scalar kernel takes over.
	VectorMaxX int32 = 8192
	// VectorMaxScore bounds |match|, |mismatch| and |gap| for the vector
	// path; larger parameters (legal in the scalar engine) fall back.
	VectorMaxScore int32 = 255
)

// VectorEligible reports whether the 8-lane int16 kernel can run this
// linear scoring configuration bit-identically: parameter magnitudes must
// fit the rebased int16 range and x must leave saturation headroom. The
// kernel-selection layer (SelectKernel, chosen once per batch) consults
// this; ExtendVector also re-checks and falls back to the scalar kernel,
// so a direct call is safe for any validated input.
func VectorEligible(sc Scoring, x int32) bool {
	return x >= 0 && x <= VectorMaxX &&
		sc.Match > 0 && sc.Match <= VectorMaxScore &&
		sc.Mismatch < 0 && sc.Mismatch >= -VectorMaxScore &&
		sc.Gap < 0 && sc.Gap >= -VectorMaxScore
}

// blendTab returns the workspace's cached compare-blend table for this
// (match, mismatch) pair, building it on first use. Batches share a
// scoring configuration, so the steady state is one pointer compare.
func (w *Workspace) blendTab(match, mismatch int16) *simd.BlendTable {
	if w.tab == nil || w.tabMatch != match || w.tabMismatch != mismatch {
		w.tab = simd.NewBlendTable(match, mismatch)
		w.tabMatch, w.tabMismatch = match, mismatch
	}
	return w.tab
}

// ExtendVector is the 8-wide int16 lane-block form of Workspace.Extend:
// scores, extents and work counters are bit-identical to the scalar
// kernel (and so to ExtendReference) on every input. Inputs outside the
// vector envelope (VectorEligible) fall back to the scalar kernel.
//
// Per 8-cell block the interior update is branch-lean: the match/mismatch
// substitution add is one simd.EqMask64 SWAR compare over two 8-byte
// sequence words plus one 16-byte load from the batch-specialized
// compare-blend table (simd.BlendTable), replacing eight data-dependent
// byte compares — the one unpredictable branch of the scalar loop. The
// gap sources are the diagonal's int16 loads with the "up" value carried
// in a register (the lane shift falls out of the anti-diagonal memory
// layout), and the three-way max, X-drop clamp and best tracking run per
// lane in the fused block loop. Score-offset rebasing (see the constants
// above) keeps lane values exact in int16, so no saturating clamp can
// ever touch a live score.
func (w *Workspace) ExtendVector(q, t seq.Seq, sc Scoring, x int32) Result {
	if !VectorEligible(sc, x) {
		return w.Extend(q, t, sc, x)
	}
	m, n := len(q), len(t)
	res := Result{}
	if m == 0 || n == 0 {
		return res
	}

	// An anti-diagonal holds at most min(m,n)+1 cells, plus one sentinel
	// slot on each side (geometry shared with the scalar kernel).
	bufLen := min(m, n) + 3
	a1 := w.diag16(&w.v0, bufLen)
	a2 := w.diag16(&w.v1, bufLen)
	a3 := w.diag16(&w.v2, bufLen)

	// rt mirrors t in reverse base order so both sequences are read
	// forward (and 8 bytes at a time) in the block loop.
	if cap(w.rt) < n {
		w.rt = make(seq.Seq, n)
	}
	rt := w.rt[:n]

	match16, mismatch16, gap16 := int16(sc.Match), int16(sc.Mismatch), int16(sc.Gap)
	x16 := int16(x)
	tab := w.blendTab(match16, mismatch16)

	// Scores are carried rebased: true score = base + lane value.
	var base int32

	var org1, org2, org3 int
	best := int16(0)
	bestI, bestJ := 0, 0
	org2 = -1
	a2[0], a2[1], a2[2] = negInf16, 0, negInf16
	res.AntiDiags = 1
	res.Cells = 1
	res.SumBand = 1
	res.MaxBand = 1

	lo, hi := 0, 1

	for d := 1; d <= m+n; d++ {
		if d <= n {
			rt[n-d] = t[d-1]
		}
		if lo < d-n {
			lo = d - n
		}
		if hi > d {
			hi = d
		}
		if hi > m {
			hi = m
		}
		if lo > hi {
			break
		}

		// Rebase between diagonals once the local best nears the rebase
		// mark: subtract it from every live lane of the two carried
		// diagonals so the upcoming scores stay centered near zero.
		if best >= vectorRebaseAt {
			delta := best
			rebase16(a2, delta)
			rebase16(a3, delta)
			base += int32(delta)
			best = 0
		}

		width := hi - lo + 1
		org1 = lo - 1
		threshold := best - x16
		newBest := best
		newBI, newBJ := bestI, bestJ

		// Matrix border i = 0 (cell (0,d)), as in the scalar kernel.
		if lo == 0 {
			s := a2[-org2] + gap16
			if s < threshold {
				s = negInf16
			} else if s > newBest {
				newBest, newBI, newBJ = s, 0, d
			}
			a1[1] = s
		}

		// Interior cells in 8-lane blocks, scalar tail for the remainder.
		uLo := max(lo, 1)
		uHi := min(hi, d-1)
		if uLo <= uHi {
			kn := uHi - uLo + 1
			nb, bk := vectorRow(
				a3[uLo-1-org3:][:kn],
				a2[uLo-1-org2:][:kn+1],
				a1[uLo-org1:][:kn],
				q[uLo-1:][:kn],
				rt[n-d+uLo:][:kn],
				tab,
				int(gap16), int(threshold), int(newBest))
			newBest = int16(nb)
			if bk >= 0 {
				newBI = uLo + bk
				newBJ = d - uLo - bk
			}
		}

		// Matrix border j = 0 (cell (d,0)), after the interior so ties
		// keep the smallest-i cell.
		if hi == d {
			s := a2[d-1-org2] + gap16
			if s < threshold {
				s = negInf16
			} else if s > newBest {
				newBest, newBI, newBJ = s, d, 0
			}
			a1[d-org1] = s
		}

		res.Cells += int64(width)
		res.SumBand += int64(width)
		res.AntiDiags++
		if width > res.MaxBand {
			res.MaxBand = width
		}
		best = newBest
		bestI, bestJ = newBI, newBJ

		// Trim pruned cells from both ends; cells occupy slots 1..width.
		first, last := 0, width-1
		for first <= last && a1[first+1] == negInf16 {
			first++
		}
		for last >= first && a1[last+1] == negInf16 {
			last--
		}
		if first > last {
			break // band empty: X-drop termination
		}
		a1[first] = negInf16
		a1[last+2] = negInf16
		a3, a2, a1 = a2, a1, a3
		org3, org2 = org2, org1
		hi = lo + last + 1
		lo = lo + first
	}

	res.Score = base + int32(best)
	res.QueryEnd = bestI
	res.TargetEnd = bestJ
	return res
}

// vectorRow computes the interior cells of one anti-diagonal: d3 holds
// the substitution sources and out receives the new diagonal (both of
// length kn), d2m1 holds the gap sources of the previous diagonal shifted
// one cell down (length kn+1: the "up" source of cell k is d2m1[k], the
// "left" source is d2m1[k+1] — the lane shift of the classic striped
// kernel falls out of the anti-diagonal memory layout as two overlapping
// loads), and qs/ts are the forward-read sequence spans. It returns the
// updated running best and the index of the last strict improvement (-1
// if none), preserving the scalar kernel's tie-breaking scan order
// exactly.
//
// Full 8-lane blocks go through vectorRowBlocks (SSE2 assembly on amd64,
// the portable lane loop elsewhere), which tracks only the running
// maximum — not its position. The running max updates only on strict
// increase, so its final update happened at the FIRST cell holding the
// row maximum; that cell's stored value is unclamped (nb > nbIn >= best-x
// means it cleared the X-drop threshold), so the position is recovered by
// a post-scan that runs only on rows that improve the best.
func vectorRow(d3, d2m1, out []int16, qs, ts seq.Seq, tab *simd.BlendTable, gw, tw, nb int) (int, int) {
	kn := len(out)
	nbIn := nb
	blocks := kn / simd.Lanes
	if blocks > 0 {
		if rm := vectorRowBlocks(d3, d2m1, out, qs, ts, blocks, tab, gw, tw); rm > nb {
			nb = rm
		}
	}
	// Scalar tail for the remaining kn mod 8 cells; the blend table's
	// all-ones and all-zeros entries supply the match/mismatch adds.
	if k := blocks * simd.Lanes; k < kn {
		nw := int(negInf16)
		up := int(d2m1[k])
		for ; k < kn; k++ {
			add := int(tab[0][0])
			if qs[k] == ts[k] {
				add = int(tab[255][0])
			}
			c := int(d2m1[k+1])
			g := up
			if c > g {
				g = c
			}
			up = c
			s := int(d3[k]) + add
			if g+gw > s {
				s = g + gw
			}
			if s > nb {
				nb = s
			}
			if s < tw {
				s = nw
			}
			out[k] = int16(s)
		}
	}
	bk := -1
	if nb > nbIn {
		for i := range out {
			if int(out[i]) == nb {
				bk = i
				break
			}
		}
	}
	return nb, bk
}

// vectorRowBlocksPortable is the pure-Go form of the 8-lane block kernel:
// the reference for the amd64 assembly (pinned bit-identical by test and
// fuzz differentials) and the implementation on every other architecture.
// It processes blocks*8 cells and returns the maximum stored value —
// pruned cells store negInf16, so they can never win. The match/mismatch
// substitution add is one simd.EqMask64 SWAR compare over two 8-byte
// sequence words plus one 16-byte load from the batch-specialized
// compare-blend table. All lane arithmetic runs in full-width registers
// (loads sign-extend, stores truncate): values are exact in int16 range
// by the rebase invariant, and 16-bit ALU ops would hit
// length-changing-prefix stalls on x86.
func vectorRowBlocksPortable(d3, d2m1, out []int16, qs, ts []byte, blocks int, tab *simd.BlendTable, gw, tw int) int {
	kn := blocks * simd.Lanes
	d3 = d3[:kn]
	d2m1 = d2m1[:kn+1]
	out = out[:kn]
	qs = qs[:kn]
	ts = ts[:kn]
	nw := int(negInf16)
	rm := nw
	up := int(d2m1[0])
	for k := 0; k+simd.Lanes <= kn; k += simd.Lanes {
		av := &tab[simd.EqMask64(
			binary.LittleEndian.Uint64(qs[k:]),
			binary.LittleEndian.Uint64(ts[k:]))]
		d3b := (*[simd.Lanes]int16)(d3[k:])
		d2b := (*[simd.Lanes + 1]int16)(d2m1[k:])
		ob := (*[simd.Lanes]int16)(out[k:])
		for l := 0; l < simd.Lanes; l++ {
			c := int(d2b[l+1])
			g := up
			if c > g {
				g = c
			}
			up = c
			s := int(d3b[l]) + int(av[l])
			if g+gw > s {
				s = g + gw
			}
			if s < tw {
				s = nw
			}
			if s > rm {
				rm = s
			}
			ob[l] = int16(s)
		}
	}
	return rm
}

// rebase16 subtracts delta from every live lane of a carried diagonal,
// leaving sentinels untouched. The sweep runs over the whole buffer (the
// live span is sentinel-bracketed inside it); it fires at most once per
// vectorRebaseAt score gained, so its cost amortizes to nothing.
func rebase16(a []int16, delta int16) {
	for i := range a {
		if a[i] > negInf16Guard {
			a[i] -= delta
		}
	}
}
