package xdrop

import "logan/internal/seq"

// ExtendReference is the pre-engine implementation of Extend, kept
// verbatim as a differential oracle: Workspace.Extend must reproduce its
// scores, extents and work counters bit for bit on every input (see
// TestExtendMatchesReference), and the benchmarks compare against it to
// quantify the kernel rewrite. It allocates its anti-diagonal buffers per
// call and pays range-checked edge handling per anti-diagonal.
func ExtendReference(q, t seq.Seq, sc Scoring, x int32) Result {
	m, n := len(q), len(t)
	res := Result{}
	if m == 0 || n == 0 || x < 0 {
		return res
	}

	// a3 = anti-diagonal d-2, a2 = d-1, a1 = d, with lo* the i-index of
	// the first stored cell of each buffer.
	cap0 := min(m, n) + 2
	a1 := make([]int32, 0, cap0)
	a2 := make([]int32, 0, cap0)
	a3 := make([]int32, 0, cap0)
	var lo1, lo2, lo3 int

	// d = 0 holds only S(0,0) = 0.
	best := int32(0)
	bestI, bestJ := 0, 0
	a2 = append(a2, 0)
	lo2 = 0
	res.AntiDiags = 1
	res.Cells = 1
	res.SumBand = 1
	res.MaxBand = 1

	// Band bounds for the upcoming anti-diagonal (inclusive i range).
	lo, hi := 0, 1

	for d := 1; d <= m+n; d++ {
		// Clip to the matrix.
		if lo < d-n {
			lo = d - n
		}
		if hi > min(d, m) {
			hi = min(d, m)
		}
		if lo > hi {
			break
		}
		width := hi - lo + 1
		if cap(a1) < width {
			a1 = make([]int32, width)
		} else {
			a1 = a1[:width]
		}
		lo1 = lo

		hi2 := lo2 + len(a2) - 1
		hi3 := lo3 + len(a3) - 1
		threshold := best - x

		newBest := best
		newBI, newBJ := bestI, bestJ

		// Generic cell update with full range checks, used at the band
		// edges where some of the three sources fall outside their
		// buffers.
		edgeCell := func(i int) {
			j := d - i
			s := NegInf
			if i >= 1 && j >= 1 && i-1 >= lo3 && i-1 <= hi3 {
				prev := a3[i-1-lo3]
				if prev > NegInf {
					if q[i-1] == t[j-1] {
						s = prev + sc.Match
					} else {
						s = prev + sc.Mismatch
					}
				}
			}
			g := NegInf
			if j >= 1 && i >= lo2 && i <= hi2 {
				g = a2[i-lo2]
			}
			if i >= 1 && i-1 >= lo2 && i-1 <= hi2 {
				if v := a2[i-1-lo2]; v > g {
					g = v
				}
			}
			if g > NegInf && g+sc.Gap > s {
				s = g + sc.Gap
			}
			if s < threshold {
				s = NegInf
			} else if s > newBest {
				newBest = s
				newBI, newBJ = i, j
			}
			a1[i-lo] = s
		}

		// Core range: all three sources in bounds, i>=1, j>=1. In the
		// core the NegInf guards are unnecessary: NegInf is MinInt32/2,
		// so NegInf+score stays far below threshold and is re-pruned.
		coreLo := max(lo, 1, lo2+1, lo3+1)
		coreHi := min(hi, d-1, hi2, hi3+1)

		if coreLo > coreHi {
			for i := lo; i <= hi; i++ {
				edgeCell(i)
			}
		} else {
			for i := lo; i < coreLo; i++ {
				edgeCell(i)
			}
			match, mismatch, gap := sc.Match, sc.Mismatch, sc.Gap
			off3 := coreLo - 1 - lo3
			off2 := coreLo - lo2
			k1 := coreHi - coreLo
			d3 := a3[off3 : off3+k1+1 : off3+k1+1]
			d2 := a2[off2 : off2+k1+1 : off2+k1+1]
			u2 := a2[off2-1 : off2+k1 : off2+k1]
			out := a1[coreLo-lo : coreLo-lo+k1+1 : coreLo-lo+k1+1]
			qs := q[coreLo-1 : coreLo+k1 : coreLo+k1]
			// j = d-i runs downward as i rises: t index is d-i-1.
			for k := 0; k <= k1; k++ {
				i := coreLo + k
				s := d3[k]
				if qs[k] == t[d-i-1] {
					s += match
				} else {
					s += mismatch
				}
				g := d2[k]
				if v := u2[k]; v > g {
					g = v
				}
				if g += gap; g > s {
					s = g
				}
				if s < threshold {
					s = NegInf
				} else if s > newBest {
					newBest = s
					newBI, newBJ = i, d-i
				}
				out[k] = s
			}
			for i := coreHi + 1; i <= hi; i++ {
				edgeCell(i)
			}
		}
		res.Cells += int64(width)
		res.SumBand += int64(width)
		res.AntiDiags++
		if width > res.MaxBand {
			res.MaxBand = width
		}
		best = newBest
		bestI, bestJ = newBI, newBJ

		// Trim pruned cells from both ends (Alg. 1 lines 10-15).
		first, last := 0, width-1
		for first <= last && a1[first] == NegInf {
			first++
		}
		for last >= first && a1[last] == NegInf {
			last--
		}
		if first > last {
			break // band empty: X-drop termination
		}
		// Next band: one wider at the top, per the anti-diagonal geometry.
		lo = lo1 + first
		hi = lo1 + last + 1
		// Rotate buffers: a3 <- a2, a2 <- trimmed a1.
		a3, a2, a1 = a2, a1[first:last+1], a3[:0]
		lo3 = lo2
		lo2 = lo1 + first
	}

	res.Score = best
	res.QueryEnd = bestI
	res.TargetEnd = bestJ
	return res
}
