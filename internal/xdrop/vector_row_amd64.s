// SSE2 implementation of the 8-lane anti-diagonal block kernel. See
// vectorRowBlocksPortable (extend_vector.go) for the reference semantics
// this must reproduce bit-for-bit, and vector_row_amd64.go for the Go
// declaration.
//
// Per 8-cell block:
//
//	eq    = PCMPEQB(q bytes, t bytes)          byte 0xFF where equal
//	mask  = PUNPCKLBW(eq, eq)                  widened to 8 words
//	av    = (mask & match8) | (~mask & mism8)  substitution adds
//	sub   = d3 + av                            PADDW, exact by rebase
//	g     = PMAXSW(up, left) + gap8            two overlapping loads of
//	                                           d2m1 replace the lane shift
//	s     = PMAXSW(sub, g)
//	prune = PCMPGTW(thr8, s)                   s < threshold, strict
//	s'    = (prune & ninf8) | (~prune & s)
//	rowmax= PMAXSW(rowmax, s')                 pruned lanes hold ninf
//
// All adds use wrapping PADDW: the rebase invariant keeps live lanes in
// (-8193, 16638) and sentinel-sourced lanes above -29256, so no int16
// overflow is reachable (asserted by the fuzz differential).

#include "textflag.h"

// func vectorRowBlocksSSE(d3, d2m1, out []int16, qs, ts []byte, blocks, match, mism, gw, tw, ninf int) int
TEXT ·vectorRowBlocksSSE(SB), NOSPLIT, $0-176
	MOVQ d3_base+0(FP), SI
	MOVQ d2m1_base+24(FP), DI
	MOVQ out_base+48(FP), R8
	MOVQ qs_base+72(FP), R9
	MOVQ ts_base+96(FP), R10
	MOVQ blocks+120(FP), CX

	// Broadcast the five int16 parameters into X8..X12.
	MOVQ   match+128(FP), AX
	MOVQ   AX, X8
	PSHUFLW $0x00, X8, X8
	PUNPCKLQDQ X8, X8 // X8 = match in every lane
	MOVQ   mism+136(FP), AX
	MOVQ   AX, X9
	PSHUFLW $0x00, X9, X9
	PUNPCKLQDQ X9, X9 // X9 = mismatch
	MOVQ   gw+144(FP), AX
	MOVQ   AX, X10
	PSHUFLW $0x00, X10, X10
	PUNPCKLQDQ X10, X10 // X10 = gap
	MOVQ   tw+152(FP), AX
	MOVQ   AX, X11
	PSHUFLW $0x00, X11, X11
	PUNPCKLQDQ X11, X11 // X11 = threshold
	MOVQ   ninf+160(FP), AX
	MOVQ   AX, X12
	PSHUFLW $0x00, X12, X12
	PUNPCKLQDQ X12, X12 // X12 = negInf16

	MOVO X12, X13 // X13 = running row maximum, seeded with negInf16
	XORQ R11, R11 // byte offset into the int16 rows (16 per block)
	XORQ R12, R12 // byte offset into the sequence rows (8 per block)

loop:
	// Substitution adds from the sequence bytes.
	MOVQ (R9)(R12*1), X0 // 8 query bases
	MOVQ (R10)(R12*1), X1 // 8 target bases
	PCMPEQB X1, X0       // byte equality mask
	PUNPCKLBW X0, X0     // widen: word l = 0xFFFF iff bases l equal
	MOVO  X0, X2
	PAND  X8, X2 // mask & match
	PANDN X9, X0 // ^mask & mismatch
	POR   X2, X0 // X0 = av

	MOVOU (SI)(R11*1), X3 // d3 diagonal sources
	PADDW X0, X3          // X3 = d3 + av

	// Gap sources: up lanes are d2m1[k..k+7], left lanes d2m1[k+1..k+8].
	MOVOU  (DI)(R11*1), X4
	MOVOU  2(DI)(R11*1), X5
	PMAXSW X5, X4
	PADDW  X10, X4 // X4 = max(up, left) + gap
	PMAXSW X4, X3  // X3 = cell score s

	// X-drop prune: lanes strictly below threshold become negInf16.
	MOVO    X11, X6
	PCMPGTW X3, X6 // X6 = 0xFFFF where threshold > s
	MOVO    X6, X7
	PANDN   X3, X6  // ^prune & s
	PAND    X12, X7 // prune & negInf16
	POR     X7, X6  // X6 = clamped s

	MOVOU  X6, (R8)(R11*1)
	PMAXSW X6, X13

	ADDQ $16, R11
	ADDQ $8, R12
	DECQ CX
	JNZ  loop

	// Horizontal maximum of X13 into AX (sign-extended).
	PSHUFD  $0x4E, X13, X0
	PMAXSW  X0, X13
	PSHUFD  $0xB1, X13, X0
	PMAXSW  X0, X13
	PSHUFLW $0xB1, X13, X0
	PMAXSW  X0, X13
	PEXTRW  $0, X13, AX
	MOVWQSX AX, AX
	MOVQ    AX, ret+168(FP)
	RET
