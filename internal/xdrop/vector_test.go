package xdrop

import (
	"math/rand"
	"testing"

	"logan/internal/seq"
)

// TestExtendVectorMatchesReference pins the vector kernel bit-identical to
// ExtendReference (and therefore to the scalar Workspace.Extend) across
// lengths, X values and scoring schemes inside the vector envelope.
func TestExtendVectorMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	w := NewWorkspace()
	schemes := []Scoring{
		DefaultScoring(),
		{Match: 2, Mismatch: -3, Gap: -4},
		{Match: 5, Mismatch: -1, Gap: -2},
		{Match: 255, Mismatch: -255, Gap: -255},
	}
	xs := []int32{0, 1, 5, 25, 100, 1000, VectorMaxX}
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(300)
		m := 1 + rng.Intn(300)
		q := seq.RandSeq(rng, n)
		tt := seq.Mutate(rng, seq.RandSeq(rng, m), seq.UniformProfile(0.2))
		sc := schemes[trial%len(schemes)]
		x := xs[trial%len(xs)]
		want := ExtendReference(q, tt, sc, x)
		got := w.ExtendVector(q, tt, sc, x)
		if got != want {
			t.Fatalf("trial %d (lens %d/%d, sc %+v, x %d):\n got %+v\nwant %+v",
				trial, n, m, sc, x, got, want)
		}
	}
}

// TestExtendVectorRebase drives the local best far past the int16 range so
// the score-offset rebase must fire (repeatedly), and checks exactness.
func TestExtendVectorRebase(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	w := NewWorkspace()
	// 2000 identical bases at match=255: final score 510000, ~31 rebases.
	q := seq.RandSeq(rng, 2000)
	tt := append(seq.Seq(nil), q...)
	sc := Scoring{Match: 255, Mismatch: -255, Gap: -255}
	want := ExtendReference(q, tt, sc, 500)
	got := w.ExtendVector(q, tt, sc, 500)
	if got != want {
		t.Fatalf("rebase run: got %+v want %+v", got, want)
	}
	if got.Score != 510000 {
		t.Fatalf("perfect-match score %d, want 510000", got.Score)
	}

	// A noisy long pair near the saturation boundary: match large enough
	// that scores cross vectorRebaseAt many times.
	tt = seq.Mutate(rng, q, seq.UniformProfile(0.1))
	sc = Scoring{Match: 200, Mismatch: -150, Gap: -180}
	for _, x := range []int32{500, VectorMaxX} {
		want := ExtendReference(q, tt, sc, x)
		got := w.ExtendVector(q, tt, sc, x)
		if got != want {
			t.Fatalf("noisy rebase run x=%d: got %+v want %+v", x, got, want)
		}
	}
}

// TestExtendVectorFallback checks that inputs outside the vector envelope
// are executed (exactly) by the scalar fallback rather than rejected.
func TestExtendVectorFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	w := NewWorkspace()
	q := seq.RandSeq(rng, 400)
	tt := seq.Mutate(rng, q, seq.UniformProfile(0.15))
	for _, tc := range []struct {
		name string
		sc   Scoring
		x    int32
	}{
		{"x too wide", DefaultScoring(), VectorMaxX + 1},
		{"match too large", Scoring{Match: 300, Mismatch: -1, Gap: -1}, 100},
		{"gap too large", Scoring{Match: 1, Mismatch: -1, Gap: -300}, 100},
	} {
		if VectorEligible(tc.sc, tc.x) {
			t.Fatalf("%s: unexpectedly eligible", tc.name)
		}
		want := ExtendReference(q, tt, tc.sc, tc.x)
		got := w.ExtendVector(q, tt, tc.sc, tc.x)
		if got != want {
			t.Fatalf("%s: fallback got %+v want %+v", tc.name, got, want)
		}
	}
}
