package xdrop

// Kernel identifies which interior-loop implementation a batch's seed
// extensions run on. Selection happens once per merged batch, keyed by
// the batch's scheme and X-drop threshold (the coalescer's config key),
// so the per-cell loops carry no mode branches — the AnySeq-style
// specialize-at-batch-prep discipline applied to kernel dispatch.
type Kernel uint8

const (
	// KernelScalar is the int32 anti-diagonal kernel (Workspace.Extend):
	// every scheme family runs on it, and it is the fallback when a
	// linear configuration exceeds the vector envelope.
	KernelScalar Kernel = iota
	// KernelVector is the 8-wide int16 lane kernel (ExtendVector): SSE2
	// assembly on amd64, the portable lane loop elsewhere. Linear DNA
	// configurations inside the vector envelope only.
	KernelVector
)

// String names the kernel variant as exported on /metrics and /statz.
func (k Kernel) String() string {
	if k == KernelVector {
		return "vector"
	}
	return "scalar"
}

// SelectKernel picks the kernel for one merged batch: linear DNA schemes
// inside the vector envelope (VectorEligible) get the vector fast path,
// everything else — affine, matrix, out-of-envelope linear — keeps the
// scalar kernel. Both kernels are bit-identical on every input, so the
// choice affects throughput only.
func SelectKernel(sch Scheme, x int32) Kernel {
	if sch.Kind == SchemeLinear && VectorEligible(sch.Linear, x) {
		return KernelVector
	}
	return KernelScalar
}
