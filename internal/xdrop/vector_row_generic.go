//go:build !amd64

package xdrop

import "logan/internal/simd"

// vectorRowBlocks runs the portable 8-lane block kernel on architectures
// without an assembly implementation.
func vectorRowBlocks(d3, d2m1, out []int16, qs, ts []byte, blocks int, tab *simd.BlendTable, gw, tw int) int {
	return vectorRowBlocksPortable(d3, d2m1, out, qs, ts, blocks, tab, gw, tw)
}
