package xdrop

import "logan/internal/seq"

// Result reports one X-drop extension: the best semi-global prefix score,
// where it was achieved, and the work the dynamic program performed. The
// work counters feed the experiment harness (cells -> GCUPS and CPU time
// models) and the band statistics drive LOGAN's thread scheduling.
type Result struct {
	Score     int32 // best alignment score seen (>= 0)
	QueryEnd  int   // query prefix length achieving Score
	TargetEnd int   // target prefix length achieving Score
	Cells     int64 // DP cells updated
	AntiDiags int   // anti-diagonal iterations executed
	MaxBand   int   // widest anti-diagonal encountered
	SumBand   int64 // sum of anti-diagonal widths (SumBand/AntiDiags = mean)
}

// Extend computes the highest-scoring semi-global alignment between
// prefixes of q and t (paper §III-A), pruning the search with the X-drop
// rule: any cell whose score falls more than x below the running best is
// set to -inf and the band shrinks past it. Extension stops when the band
// empties or the matrix is exhausted.
//
// The implementation keeps only three anti-diagonals (current, previous,
// two-prior) exactly as Figure 1 prescribes, so memory is O(band), not
// O(mn). The buffers come from a pooled Workspace; hold a Workspace of
// your own (see Pool) to make repeated extensions allocation-free.
func Extend(q, t seq.Seq, sc Scoring, x int32) Result {
	w := wsPool.Get().(*Workspace)
	r := w.Extend(q, t, sc, x)
	wsPool.Put(w)
	return r
}

// ExtendExhaustive computes the same objective with no pruning: the exact
// maximum semi-global prefix score by filling the full m x n dynamic
// program. It is quadratic and exists as the oracle for tests and for the
// "full DP" comparisons; Extend(q, t, sc, x) with sufficiently large x must
// return exactly this score.
func ExtendExhaustive(q, t seq.Seq, sc Scoring) Result {
	m, n := len(q), len(t)
	res := Result{}
	if m == 0 || n == 0 {
		return res
	}
	prev := make([]int32, n+1)
	cur := make([]int32, n+1)
	best := int32(0)
	bi, bj := 0, 0
	for j := 0; j <= n; j++ {
		prev[j] = int32(j) * sc.Gap
	}
	for i := 1; i <= m; i++ {
		cur[0] = int32(i) * sc.Gap
		for j := 1; j <= n; j++ {
			s := prev[j-1]
			if q[i-1] == t[j-1] {
				s += sc.Match
			} else {
				s += sc.Mismatch
			}
			if v := prev[j] + sc.Gap; v > s {
				s = v
			}
			if v := cur[j-1] + sc.Gap; v > s {
				s = v
			}
			cur[j] = s
			if s > best {
				best, bi, bj = s, i, j
			}
		}
		prev, cur = cur, prev
	}
	res.Score = best
	res.QueryEnd = bi
	res.TargetEnd = bj
	res.Cells = int64(m) * int64(n)
	res.AntiDiags = m + n + 1
	res.MaxBand = min(m, n) + 1
	return res
}
