// Package xdrop implements the X-drop pairwise alignment algorithm of
// Zhang, Schwartz, Wagner and Miller (J. Comp. Biol. 2000) in the
// anti-diagonal, three-buffer formulation that SeqAn ships and that LOGAN
// ports to the GPU (paper §III). The serial implementation here is the
// correctness oracle for every other aligner in the repository, and the
// batch runner is the "SeqAn on 168 threads" baseline of Table II.
package xdrop

import (
	"fmt"
	"math"
)

// NegInf is the pruned-cell sentinel. It is far enough from MinInt32 that
// adding scores to it cannot wrap around.
const NegInf int32 = math.MinInt32 / 2

// Scoring is a linear-gap scoring scheme. LOGAN and BELLA use +1/-1/-1;
// Zhang et al. prove X-drop optimality guarantees for schemes of this form.
type Scoring struct {
	Match    int32 // reward for a base match (> 0)
	Mismatch int32 // penalty for a substitution (< 0)
	Gap      int32 // penalty for an insertion or deletion (< 0)
}

// DefaultScoring returns the +1/-1/-1 scheme used throughout the paper's
// evaluation.
func DefaultScoring() Scoring { return Scoring{Match: 1, Mismatch: -1, Gap: -1} }

// Validate rejects schemes that break the algorithm's assumptions.
func (s Scoring) Validate() error {
	if s.Match <= 0 {
		return fmt.Errorf("xdrop: match score %d must be positive", s.Match)
	}
	if s.Mismatch >= 0 || s.Gap >= 0 {
		return fmt.Errorf("xdrop: mismatch %d and gap %d must be negative", s.Mismatch, s.Gap)
	}
	return nil
}
