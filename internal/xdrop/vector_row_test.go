package xdrop

import (
	"math/rand"
	"testing"

	"logan/internal/simd"
)

// TestVectorRowBlocks pins the active block kernel (SSE2 assembly on
// amd64) bit-identical to vectorRowBlocksPortable over randomized rows:
// sentinel-laden inputs, values at the rebased range edges, thresholds
// that prune everything or nothing. Both the stored diagonal and the
// returned row maximum must agree exactly.
func TestVectorRowBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 500; trial++ {
		blocks := 1 + rng.Intn(8)
		kn := blocks * simd.Lanes
		extra := rng.Intn(simd.Lanes) // slack beyond the processed span
		d3 := randRow(rng, kn+extra)
		d2m1 := randRow(rng, kn+1+extra)
		qs := make([]byte, kn+extra)
		ts := make([]byte, kn+extra)
		for i := range qs {
			qs[i] = "ACGT"[rng.Intn(4)]
			ts[i] = "ACGT"[rng.Intn(4)]
			if rng.Intn(2) == 0 {
				ts[i] = qs[i]
			}
		}
		match := int16(1 + rng.Intn(255))
		mismatch := int16(-1 - rng.Intn(255))
		gw := -1 - rng.Intn(255)
		tw := -8192 + rng.Intn(2*8192)
		tab := simd.NewBlendTable(match, mismatch)

		outA := make([]int16, kn+extra)
		outP := make([]int16, kn+extra)
		rmA := vectorRowBlocks(d3, d2m1, outA, qs, ts, blocks, tab, gw, tw)
		rmP := vectorRowBlocksPortable(d3, d2m1, outP, qs, ts, blocks, tab, gw, tw)
		if rmA != rmP {
			t.Fatalf("trial %d: rowmax %d != portable %d", trial, rmA, rmP)
		}
		for i := range outA {
			if outA[i] != outP[i] {
				t.Fatalf("trial %d: out[%d] = %d != portable %d", trial, i, outA[i], outP[i])
			}
		}
	}
}

// randRow fills a diagonal with a mix of live rebased-range values and
// negInf16 sentinels, the two populations the kernel must keep apart.
func randRow(rng *rand.Rand, n int) []int16 {
	row := make([]int16, n)
	for i := range row {
		if rng.Intn(5) == 0 {
			row[i] = negInf16
		} else {
			row[i] = int16(-8192 + rng.Intn(8192+16638))
		}
	}
	return row
}
