package xdrop

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"logan/internal/seq"
)

// ErrPoolClosed reports a batch submitted to a closed Pool.
var ErrPoolClosed = errors.New("xdrop: pool is closed")

// Pool is a persistent team of CPU alignment workers. Each worker owns a
// Workspace, so batch after batch runs without goroutine spin-up or DP
// buffer allocation — the reusable-thread-buffer discipline of minimap2
// applied to the SeqAn-style OpenMP loop the paper benchmarks against.
//
// A Pool is safe for concurrent use: batches submitted from multiple
// goroutines interleave across the workers. Batches are per-call
// parameterized: the same pool serves linear, affine and matrix batches
// concurrently (ExtendBatchScheme), the request-scoped execution model of
// the v2 public API.
type Pool struct {
	workers int
	jobs    chan *poolJob
	// mu guards closed and the job-channel sends: submissions hold the
	// read side, Close takes the write side, so a close can never race a
	// blocked send (in-flight batches always finish).
	mu     sync.RWMutex
	closed bool
}

// poolJob is one batch traversing the pool: workers claim pair indices
// from the shared cursor until the batch is exhausted or the batch's
// context is canceled.
type poolJob struct {
	ctx     context.Context
	pairs   []seq.Pair
	results []SeedResult
	sch     Scheme
	x       int32
	kernel  Kernel
	cursor  atomic.Int64
	wg      sync.WaitGroup

	errMu  sync.Mutex
	err    error
	errIdx int
}

// NewPool starts a pool of `workers` goroutines (0 = GOMAXPROCS).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers, jobs: make(chan *poolJob)}
	for i := 0; i < workers; i++ {
		go func() {
			ws := NewWorkspace()
			for j := range p.jobs {
				j.run(ws)
				j.wg.Done()
			}
		}()
	}
	return p
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// Close stops the workers once in-flight batches drain. Later submissions
// fail with ErrPoolClosed.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.closed {
		p.closed = true
		close(p.jobs)
	}
}

// fail records an error for the batch, keeping the lowest-index one so the
// report is deterministic. Cancellation records with index -1 and
// therefore wins over per-pair errors.
func (j *poolJob) fail(idx int, err error) {
	j.errMu.Lock()
	if j.err == nil || idx < j.errIdx {
		j.err, j.errIdx = err, idx
	}
	j.errMu.Unlock()
}

func (j *poolJob) run(ws *Workspace) {
	for {
		// Cancellation check per pair: a canceled batch stops claiming
		// work after the in-flight extensions finish, so Align(ctx, ...)
		// returns promptly mid-batch instead of draining it.
		if j.ctx != nil {
			if err := j.ctx.Err(); err != nil {
				j.fail(-1, err)
				return
			}
		}
		idx := int(j.cursor.Add(1)) - 1
		if idx >= len(j.pairs) {
			return
		}
		p := &j.pairs[idx]
		var r SeedResult
		var err error
		// The kernel was chosen once at batch submission (SelectKernel), so
		// this is the only variant branch the batch ever takes — the per-cell
		// loops themselves are mode-free.
		if j.kernel == KernelVector {
			r, err = ws.ExtendSeedKernel(p.Query, p.Target, p.SeedQPos, p.SeedTPos, p.SeedLen, j.sch.Linear, j.x, KernelVector)
		} else {
			r, err = ws.ExtendSeedScheme(p.Query, p.Target, p.SeedQPos, p.SeedTPos, p.SeedLen, j.sch, j.x)
		}
		if err != nil {
			j.fail(idx, err)
			continue
		}
		j.results[idx] = r
	}
}

// ExtendBatch aligns every pair into results (len(results) must equal
// len(pairs)) under linear scoring, reusing the pool's workers and their
// workspaces. On error (the lowest-index invalid seed) the surviving
// entries of results are still valid but the batch must be considered
// failed.
func (p *Pool) ExtendBatch(pairs []seq.Pair, results []SeedResult, sc Scoring, x int32) (BatchStats, error) {
	return p.ExtendBatchScheme(context.Background(), pairs, results, LinearScheme(sc), x)
}

// ExtendBatchScheme is ExtendBatch generalized over the scoring families
// and a context: linear batches run on the per-worker workspaces as
// before, affine and matrix batches fan the single-pair kernels
// (ExtendSeedAffine, ExtendSeedMatrix) across the same workers. A
// canceled ctx stops the batch after the in-flight pairs finish and
// returns the context's error.
//
// The extension kernel is chosen once per batch from the batch's config
// key (SelectKernel on scheme + X): eligible linear batches run the
// vector kernel, everything else the scalar one. The choice is recorded
// in the returned BatchStats.Kernel.
func (p *Pool) ExtendBatchScheme(ctx context.Context, pairs []seq.Pair, results []SeedResult, sch Scheme, x int32) (BatchStats, error) {
	return p.ExtendBatchKernel(ctx, pairs, results, sch, x, SelectKernel(sch, x))
}

// ExtendBatchKernel is ExtendBatchScheme with the kernel forced by the
// caller instead of selected from the config key. Non-linear schemes
// always run scalar regardless of k (the vector kernel only implements
// linear scoring); an ineligible linear config handed KernelVector falls
// back per pair inside ExtendVector. Scores are bit-identical across
// kernels — this entry point exists for benchmarks and differential
// tests.
func (p *Pool) ExtendBatchKernel(ctx context.Context, pairs []seq.Pair, results []SeedResult, sch Scheme, x int32, k Kernel) (BatchStats, error) {
	if len(results) != len(pairs) {
		panic("xdrop: results length does not match pairs")
	}
	if err := sch.Validate(); err != nil {
		return BatchStats{}, err
	}
	if sch.Kind != SchemeLinear {
		k = KernelScalar
	}
	// An empty batch runs no kernel, so it reports the zero stats
	// (Kernel: scalar zero value) rather than the would-be selection.
	if len(pairs) == 0 {
		return BatchStats{}, nil
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return BatchStats{}, err
		}
	}
	j := &poolJob{ctx: ctx, pairs: pairs, results: results, sch: sch, x: x, kernel: k}
	fan := min(p.workers, len(pairs))
	j.wg.Add(fan)
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return BatchStats{}, ErrPoolClosed
	}
	for i := 0; i < fan; i++ {
		p.jobs <- j
	}
	p.mu.RUnlock()
	j.wg.Wait()
	if j.err != nil {
		return BatchStats{}, j.err
	}
	var stats BatchStats
	stats.Kernel = k
	for i := range results {
		stats.Accumulate(results[i])
	}
	return stats, nil
}
