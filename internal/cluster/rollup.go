package cluster

import (
	"sort"

	"logan/internal/telemetry"
)

// MergeSnapshots folds each worker's pushed telemetry snapshot into the
// local (router) snapshot, tagging every imported series with a
// worker="<name>" label: the cluster-wide /metrics rollup. Families that
// exist on both sides merge series-wise; worker-only families are
// appended whole. The local snapshot is not mutated.
//
// Worker series that already carry a worker label (a worker scraping
// another worker would be a deployment error, not a case to support) are
// imported as-is, never double-labeled.
func MergeSnapshots(local *telemetry.Snapshot, workers map[string]*telemetry.Snapshot) *telemetry.Snapshot {
	out := &telemetry.Snapshot{Families: make([]telemetry.FamilySnapshot, len(local.Families))}
	copy(out.Families, local.Families)
	byName := make(map[string]int, len(out.Families))
	for i, f := range out.Families {
		byName[f.Name] = i
	}

	// Deterministic rollup order: scrapes diff cleanly.
	names := make([]string, 0, len(workers))
	for name := range workers {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		snap := workers[name]
		for _, wf := range snap.Families {
			series := make([]telemetry.SeriesSnapshot, 0, len(wf.Series))
			for _, ss := range wf.Series {
				series = append(series, labelSeries(ss, name))
			}
			if i, ok := byName[wf.Name]; ok {
				// Copy-on-write: out.Families may still alias local's
				// Series slice.
				merged := out.Families[i]
				merged.Series = append(append([]telemetry.SeriesSnapshot(nil), merged.Series...), series...)
				out.Families[i] = merged
				continue
			}
			byName[wf.Name] = len(out.Families)
			out.Families = append(out.Families, telemetry.FamilySnapshot{
				Name: wf.Name, Help: wf.Help, Kind: wf.Kind, Bounds: wf.Bounds,
				Series: series,
			})
		}
	}
	return out
}

// labelSeries returns ss with worker=<name> prepended to its label set.
func labelSeries(ss telemetry.SeriesSnapshot, worker string) telemetry.SeriesSnapshot {
	for _, l := range ss.Labels {
		if l.Key == "worker" {
			return ss
		}
	}
	labels := make([]telemetry.Label, 0, len(ss.Labels)+1)
	labels = append(labels, telemetry.L("worker", worker))
	labels = append(labels, ss.Labels...)
	ss.Labels = labels
	return ss
}
