package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"logan"
	"logan/internal/genome"
	"logan/internal/seq"
	"logan/internal/telemetry"
)

// testFasta builds a deterministic read set with real overlaps.
func testFasta(t testing.TB, seed int64, genomeLen int) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := genome.Synthetic(rng, "t", genome.SyntheticOptions{Length: genomeLen, RepeatFrac: 0.03, RepeatLen: 1200})
	rs := genome.Simulate(rng, g, genome.SimOptions{Coverage: 5, MinLen: 900, MaxLen: 2000, ErrorRate: 0.12})
	var buf bytes.Buffer
	if err := seq.WriteFasta(&buf, rs.Records()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// testRouter boots a router on a temp WAL and serves its worker API.
func testRouter(t *testing.T, mut func(*RouterOptions)) (*Router, *httptest.Server) {
	t.Helper()
	opt := RouterOptions{
		QueuePath: filepath.Join(t.TempDir(), "jobs.wal"),
		LeaseTTL:  80 * time.Millisecond,
		Registry:  telemetry.NewRegistry(),
	}
	if mut != nil {
		mut(&opt)
	}
	r, err := NewRouter(opt)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(r.Handler())
	t.Cleanup(func() {
		srv.Close()
		r.Close()
	})
	return r, srv
}

// submitBytes submits fasta under cfg and returns the accepted status.
func submitBytes(t *testing.T, r *Router, fasta []byte, key string) JobStatus {
	t.Helper()
	st, replayed, err := r.Submit(Submission{
		Config:         logan.DefaultOverlapConfig(5, 0.12, 15),
		Open:           func() (io.ReadCloser, error) { return io.NopCloser(bytes.NewReader(fasta)), nil },
		IdempotencyKey: key,
	})
	if err != nil {
		t.Fatal(err)
	}
	if replayed {
		t.Fatal("fresh submission reported replayed")
	}
	return st
}

// fakeWorker drives the worker protocol by hand, without an engine.
type fakeWorker struct {
	t    *testing.T
	url  string
	id   string
	name string
}

func registerFake(t *testing.T, url, name string) *fakeWorker {
	t.Helper()
	f := &fakeWorker{t: t, url: url, name: name}
	resp := f.post("/cluster/register", registerRequest{Name: name, Backend: "cpu"}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register: %s", resp.Status)
	}
	var out registerResponse
	json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	f.id = out.WorkerID
	return f
}

func (f *fakeWorker) post(path string, body any, hdr map[string]string) *http.Response {
	f.t.Helper()
	var rd io.Reader
	if b, ok := body.([]byte); ok {
		rd = bytes.NewReader(b)
	} else if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			f.t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(http.MethodPost, f.url+path, rd)
	if err != nil {
		f.t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		f.t.Fatal(err)
	}
	return resp
}

// lease long-polls one job; ok=false on an empty poll.
func (f *fakeWorker) lease(waitMs int64) (spec *Spec, jobID, lease string, ok bool) {
	f.t.Helper()
	resp := f.post("/cluster/poll", map[string]any{"workerId": f.id, "waitMs": waitMs}, nil)
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent {
		return nil, "", "", false
	}
	if resp.StatusCode != http.StatusOK {
		f.t.Fatalf("poll: %s", resp.Status)
	}
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		f.t.Fatal(err)
	}
	spec, err = UnmarshalSpec(payload)
	if err != nil {
		f.t.Fatal(err)
	}
	return spec, resp.Header.Get("X-Logan-Job-Id"), resp.Header.Get("X-Logan-Lease"), true
}

func (f *fakeWorker) complete(jobID, lease string, paf []byte) int {
	resp := f.post("/cluster/jobs/"+jobID+"/complete", paf, map[string]string{
		"X-Logan-Lease":     lease,
		"X-Logan-Worker-Id": f.id,
		"X-Logan-Overlaps":  "1",
	})
	resp.Body.Close()
	return resp.StatusCode
}

func TestSpecRoundtrip(t *testing.T) {
	in := &Spec{
		ID:             NewID(),
		Tenant:         "acme",
		IdempotencyKey: "retry-7",
		Config:         ConfigFromOverlap(logan.DefaultOverlapConfig(6, 0.15, 21)),
		Fasta:          []byte(">r1\nACGT\n"),
	}
	b, err := in.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	out, err := UnmarshalSpec(b)
	if err != nil {
		t.Fatal(err)
	}
	if out.ID != in.ID || out.Tenant != in.Tenant || out.IdempotencyKey != in.IdempotencyKey {
		t.Fatalf("roundtrip mangled identity: %+v", out)
	}
	if out.Config != in.Config {
		t.Fatalf("roundtrip mangled config: %+v vs %+v", out.Config, in.Config)
	}
	if !bytes.Equal(out.Fasta, in.Fasta) {
		t.Fatalf("roundtrip mangled fasta: %q", out.Fasta)
	}
	// The reconstructed executable config must match a direct default.
	want := logan.DefaultOverlapConfig(6, 0.15, 21)
	got := out.Config.Overlap()
	if ConfigFromOverlap(got) != ConfigFromOverlap(want) || got.Scoring != want.Scoring {
		t.Fatalf("Overlap() reconstruction drifted:\n got %+v\nwant %+v", got, want)
	}
	if _, err := UnmarshalSpec(b[:3]); err == nil {
		t.Fatal("truncated spec decoded")
	}
}

func TestRouterLeaseLifecycle(t *testing.T) {
	r, srv := testRouter(t, nil)
	st := submitBytes(t, r, []byte(">r1\nACGT\n"), "")
	if st.State != StateQueued {
		t.Fatalf("state %q after submit", st.State)
	}

	w := registerFake(t, srv.URL, "w1")
	spec, jobID, lease, ok := w.lease(1000)
	if !ok || jobID != st.ID {
		t.Fatalf("lease: ok=%v job=%q want %q", ok, jobID, st.ID)
	}
	if string(spec.Fasta) != ">r1\nACGT\n" {
		t.Fatalf("leased fasta %q", spec.Fasta)
	}
	if got, _ := r.Status(jobID); got.State != StateRunning || got.Worker != "w1" {
		t.Fatalf("running status %+v", got)
	}

	if code := w.complete(jobID, "bogus-lease", []byte("x")); code != http.StatusConflict {
		t.Fatalf("stale-lease complete returned %d, want 409", code)
	}
	if code := w.complete(jobID, lease, []byte("paf-bytes\n")); code != http.StatusOK {
		t.Fatalf("complete returned %d", code)
	}
	paf, got, ok := r.PAF(jobID)
	if !ok || got.State != StateDone || string(paf) != "paf-bytes\n" {
		t.Fatalf("PAF after complete: ok=%v st=%+v paf=%q", ok, got, paf)
	}
	// A duplicate completion (network retry) is idempotent, not a 409.
	if code := w.complete(jobID, lease, []byte("paf-bytes\n")); code != http.StatusOK {
		t.Fatalf("retried complete returned %d, want 200", code)
	}
	if r.wal.Pending() != 0 {
		t.Fatalf("WAL still holds %d records after ack", r.wal.Pending())
	}
}

func TestLeaseExpiryRequeues(t *testing.T) {
	r, srv := testRouter(t, func(o *RouterOptions) {
		o.LeaseTTL = 50 * time.Millisecond
		// Registration must outlive many expired leases: a worker that
		// leases-and-dies repeatedly is still registered, just useless.
		o.WorkerTTL = 30 * time.Second
		o.MaxRequeues = 2
	})
	st := submitBytes(t, r, []byte(">r\nAC\n"), "")
	dead := registerFake(t, srv.URL, "dead")
	if _, id, _, ok := dead.lease(1000); !ok || id != st.ID {
		t.Fatal("dead worker failed to lease")
	}
	// The dead worker never extends: the job must requeue and go to the
	// survivor with requeues=1.
	survivor := registerFake(t, srv.URL, "survivor")
	_, id, lease, ok := survivor.lease(2000)
	if !ok || id != st.ID {
		t.Fatalf("survivor lease: ok=%v id=%q", ok, id)
	}
	got, _ := r.Status(id)
	if got.Requeues != 1 || got.Worker != "survivor" {
		t.Fatalf("after requeue: %+v", got)
	}
	if code := survivor.complete(id, lease, []byte("ok\n")); code != http.StatusOK {
		t.Fatalf("survivor complete: %d", code)
	}

	// Exhaustion: a job that keeps dying fails terminally after
	// MaxRequeues retries.
	st2 := submitBytes(t, r, []byte(">r2\nAC\n"), "")
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, _, ok := dead.lease(500); !ok {
			// Empty poll: either terminal already, or between requeues.
			if got, _ := r.Status(st2.ID); got.State == StateFailed {
				break
			}
		}
		if time.Now().After(deadline) {
			got, _ := r.Status(st2.ID)
			t.Fatalf("job never exhausted its retry budget: %+v", got)
		}
	}
	got2, _ := r.Status(st2.ID)
	if got2.State != StateFailed || got2.Requeues != 3 || !strings.Contains(got2.Error, "gave up") {
		t.Fatalf("exhausted job: %+v", got2)
	}
}

func TestIdempotencyKeyDedupes(t *testing.T) {
	r, _ := testRouter(t, nil)
	st := submitBytes(t, r, []byte(">r\nAC\n"), "client-retry-1")
	again, replayed, err := r.Submit(Submission{
		Config:         logan.DefaultOverlapConfig(5, 0.12, 15),
		Open:           func() (io.ReadCloser, error) { return io.NopCloser(bytes.NewReader([]byte(">other\nGG\n"))), nil },
		IdempotencyKey: "client-retry-1",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !replayed || again.ID != st.ID {
		t.Fatalf("retry created a second job: replayed=%v id=%q want %q", replayed, again.ID, st.ID)
	}
	if q, _ := r.counts(); q != 1 {
		t.Fatalf("queue holds %d jobs, want 1", q)
	}
}

func TestWALReplayAcrossRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	reg := telemetry.NewRegistry()
	r1, err := NewRouter(RouterOptions{QueuePath: path, Registry: reg, LeaseTTL: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	fasta := []byte(">r1\nACGTACGT\n")
	st := submitBytes(t, r1, fasta, "replay-key")
	r1.Close()

	r2, err := NewRouter(RouterOptions{QueuePath: path, Registry: telemetry.NewRegistry(), LeaseTTL: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	got, ok := r2.Status(st.ID)
	if !ok || got.State != StateQueued {
		t.Fatalf("replayed job: ok=%v %+v", ok, got)
	}
	// Identity survives: the idempotency key still dedupes after restart.
	again, replayed, err := r2.Submit(Submission{
		Config:         logan.DefaultOverlapConfig(5, 0.12, 15),
		Open:           func() (io.ReadCloser, error) { return io.NopCloser(bytes.NewReader(fasta)), nil },
		IdempotencyKey: "replay-key",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !replayed || again.ID != st.ID {
		t.Fatalf("post-restart retry: replayed=%v id=%q want %q", replayed, again.ID, st.ID)
	}
	// And the leased spec carries the original payload.
	srv := httptest.NewServer(r2.Handler())
	defer srv.Close()
	w := registerFake(t, srv.URL, "w1")
	spec, id, _, ok := w.lease(1000)
	if !ok || id != st.ID || !bytes.Equal(spec.Fasta, fasta) {
		t.Fatalf("replayed lease: ok=%v id=%q fasta=%q", ok, id, spec.Fasta)
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	r, srv := testRouter(t, nil)
	// Queued: canceled jobs are forgotten and never leased.
	st := submitBytes(t, r, []byte(">a\nAC\n"), "")
	if !r.Cancel(st.ID) {
		t.Fatal("cancel of queued job failed")
	}
	if _, ok := r.Status(st.ID); ok {
		t.Fatal("canceled job still visible")
	}
	w := registerFake(t, srv.URL, "w1")
	if _, _, _, ok := w.lease(100); ok {
		t.Fatal("canceled job was leased")
	}
	// Running: the executing worker learns on its next extend.
	st2 := submitBytes(t, r, []byte(">b\nAC\n"), "")
	_, id, lease, ok := w.lease(1000)
	if !ok || id != st2.ID {
		t.Fatal("lease of second job failed")
	}
	r.Cancel(st2.ID)
	// The canceled job is forgotten, so the worker's next extend sees a
	// stale-lease 409 — its signal to abort without publishing.
	resp := w.post("/cluster/jobs/"+id+"/extend", extendRequest{WorkerID: w.id, Lease: lease}, nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("extend after cancel: %s, want 409", resp.Status)
	}
	if code := w.complete(id, lease, []byte("late\n")); code != http.StatusConflict {
		t.Fatalf("complete after cancel: %d, want 409", code)
	}
}

func TestRouterAuthToken(t *testing.T) {
	_, srv := testRouter(t, func(o *RouterOptions) { o.Token = "s3cret" })
	resp, err := http.Post(srv.URL+"/cluster/register", "application/json",
		strings.NewReader(`{"name":"w1"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("tokenless register: %s, want 401", resp.Status)
	}
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/cluster/register", strings.NewReader(`{"name":"w1"}`))
	req.Header.Set("X-Logan-Cluster-Token", "s3cret")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("tokened register: %s", resp2.Status)
	}
}

// TestWorkerExecutesJob runs the real Worker client against the router
// and checks the served PAF is byte-identical to a direct engine run.
func TestWorkerExecutesJob(t *testing.T) {
	eng, err := logan.NewAligner(logan.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ov, err := logan.NewOverlapper(eng, logan.OverlapperOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fasta := testFasta(t, 42, 30000)
	cfg := logan.DefaultOverlapConfig(5, 0.12, 15)

	res, err := ov.RunFasta(context.Background(), bytes.NewReader(fasta), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := logan.WritePAF(&want, res.Records); err != nil {
		t.Fatal(err)
	}

	r, srv := testRouter(t, func(o *RouterOptions) { o.LeaseTTL = 200 * time.Millisecond })
	wk, err := NewWorker(WorkerOptions{
		RouterURL:  srv.URL,
		Name:       "w1",
		Overlapper: ov,
		Backend:    "cpu",
		Registry:   telemetry.NewRegistry(),
		PollWait:   200 * time.Millisecond,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); wk.Run(ctx) }()
	defer func() { cancel(); <-done }()

	st, replayed, err := r.Submit(Submission{
		Config: cfg,
		Open:   func() (io.ReadCloser, error) { return io.NopCloser(bytes.NewReader(fasta)), nil },
	})
	if err != nil || replayed {
		t.Fatalf("submit: %v replayed=%v", err, replayed)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		got, ok := r.Status(st.ID)
		if !ok {
			t.Fatal("job vanished")
		}
		if TerminalState(got.State) {
			if got.State != StateDone {
				t.Fatalf("job finished %q: %s", got.State, got.Error)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck: %+v", got)
		}
		time.Sleep(20 * time.Millisecond)
	}
	paf, got, _ := r.PAF(st.ID)
	if !bytes.Equal(paf, want.Bytes()) {
		t.Fatalf("cluster PAF differs from direct run: %d vs %d bytes", len(paf), want.Len())
	}
	if got.Worker != "w1" || got.Overlaps != len(res.Records) {
		t.Fatalf("completion metadata: %+v", got)
	}
}

func TestMergeSnapshots(t *testing.T) {
	localReg := telemetry.NewRegistry()
	localReg.Counter("logan_jobs_submitted_total", "h").Add(3)
	wReg := telemetry.NewRegistry()
	wReg.Counter("logan_align_requests_total", "h", telemetry.L("backend", "cpu")).Add(7)
	wReg.Counter("logan_jobs_submitted_total", "h").Add(1)

	merged := MergeSnapshots(localReg.Snapshot(), map[string]*telemetry.Snapshot{
		"w2": wReg.Snapshot(),
	})
	if v := merged.Value("logan_jobs_submitted_total"); v != 3 {
		t.Fatalf("local series clobbered: %v", v)
	}
	if v := merged.Value("logan_jobs_submitted_total", telemetry.L("worker", "w2")); v != 1 {
		t.Fatalf("worker series missing from shared family: %v", v)
	}
	if v := merged.Value("logan_align_requests_total", telemetry.L("worker", "w2"), telemetry.L("backend", "cpu")); v != 7 {
		t.Fatalf("worker-only family missing: %v", v)
	}
	var text bytes.Buffer
	if err := merged.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), `worker="w2"`) {
		t.Fatalf("rollup text lacks worker label:\n%s", text.String())
	}
	// The local snapshot must not have been mutated.
	if n := len(localReg.Snapshot().Families); n != 1 {
		t.Fatalf("local registry grew: %d families", n)
	}
}

func TestRouterReadyNeedsWorker(t *testing.T) {
	r, srv := testRouter(t, nil)
	if r.Ready() {
		t.Fatal("workerless router reports ready")
	}
	registerFake(t, srv.URL, "w1")
	if !r.Ready() {
		t.Fatal("router with a registered worker reports not ready")
	}
	ws := r.Workers()
	if len(ws) != 1 || ws[0].Name != "w1" || ws[0].Backend != "cpu" {
		t.Fatalf("workers: %+v", ws)
	}
}

func TestSubmitLimits(t *testing.T) {
	r, _ := testRouter(t, func(o *RouterOptions) { o.MaxJobBytes = 16 })
	_, _, err := r.Submit(Submission{
		Config: logan.DefaultOverlapConfig(5, 0.12, 15),
		Open: func() (io.ReadCloser, error) {
			return io.NopCloser(strings.NewReader(fmt.Sprintf(">r\n%s\n", strings.Repeat("A", 64)))), nil
		},
	})
	if err == nil || !strings.Contains(err.Error(), "byte limit") {
		t.Fatalf("oversized submit: %v", err)
	}
}
