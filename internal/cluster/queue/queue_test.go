package queue

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openT(t *testing.T, path string) (*WAL, []Record) {
	t.Helper()
	w, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w, recs
}

func TestReplayPendingInOrder(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	w, recs := openT(t, path)
	if len(recs) != 0 {
		t.Fatalf("fresh log replayed %d records", len(recs))
	}
	for i := range 3 {
		if err := w.Append(fmt.Sprintf("job-%d", i), []byte{byte(i), 0xAA}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Ack("job-1"); err != nil {
		t.Fatal(err)
	}
	if got := w.Pending(); got != 2 {
		t.Fatalf("Pending = %d, want 2", got)
	}
	w.Close()

	_, recs = openT(t, path)
	if len(recs) != 2 || recs[0].ID != "job-0" || recs[1].ID != "job-2" {
		t.Fatalf("replayed %+v, want job-0 then job-2", recs)
	}
	if !bytes.Equal(recs[0].Payload, []byte{0, 0xAA}) || !bytes.Equal(recs[1].Payload, []byte{2, 0xAA}) {
		t.Fatalf("replayed payloads %v", recs)
	}
}

func TestTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	w, _ := openT(t, path)
	if err := w.Append("whole", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := w.Append("torn", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	w.Close()

	// Chop bytes off the final frame: a crash mid-write.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	w2, recs := openT(t, path)
	if len(recs) != 1 || recs[0].ID != "whole" {
		t.Fatalf("after torn tail replayed %+v, want just %q", recs, "whole")
	}
	// The log must be writable again after the truncating recovery.
	if err := w2.Append("next", []byte("x")); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	_, recs = openT(t, path)
	if len(recs) != 2 {
		t.Fatalf("post-recovery append lost: %+v", recs)
	}
}

func TestCorruptFrameStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	w, _ := openT(t, path)
	if err := w.Append("good", []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := w.Append("bad", []byte("b")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF // flip a CRC byte of the last frame
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, recs := openT(t, path)
	if len(recs) != 1 || recs[0].ID != "good" {
		t.Fatalf("after CRC corruption replayed %+v, want just %q", recs, "good")
	}
}

func TestOpenCompacts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	w, _ := openT(t, path)
	big := bytes.Repeat([]byte("x"), 1<<16)
	for i := range 8 {
		id := fmt.Sprintf("j%d", i)
		if err := w.Append(id, big); err != nil {
			t.Fatal(err)
		}
		if err := w.Ack(id); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Append("live", []byte("small")); err != nil {
		t.Fatal(err)
	}
	w.Close()
	w2, recs := openT(t, path)
	if len(recs) != 1 || recs[0].ID != "live" {
		t.Fatalf("replayed %+v, want just live", recs)
	}
	size, err := w2.sizeForTest()
	if err != nil {
		t.Fatal(err)
	}
	if size > 1<<12 {
		t.Fatalf("compacted log is %d bytes; acked history survived the rewrite", size)
	}
}

func TestAckSelfCompacts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	w, _ := openT(t, path)
	payload := bytes.Repeat([]byte("y"), 1<<12)
	for i := range compactEvery + 8 {
		id := fmt.Sprintf("j%d", i)
		if err := w.Append(id, payload); err != nil {
			t.Fatal(err)
		}
		if err := w.Ack(id); err != nil {
			t.Fatal(err)
		}
	}
	size, err := w.sizeForTest()
	if err != nil {
		t.Fatal(err)
	}
	// Without self-compaction the file would hold >compactEvery dead
	// 4KiB payloads; after it, only the post-compaction tail remains.
	if size > int64(compactEvery)*int64(len(payload))/2 {
		t.Fatalf("log is %d bytes after %d acks; self-compaction never fired", size, compactEvery+8)
	}
}

func TestDuplicateAndUnknown(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.wal")
	w, _ := openT(t, path)
	if err := w.Append("a", nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Append("a", nil); err == nil {
		t.Fatal("duplicate Append succeeded")
	}
	if err := w.Ack("never-enqueued"); err != nil {
		t.Fatalf("unknown Ack: %v", err)
	}
	w.Close()
	if err := w.Append("b", nil); err != ErrClosed {
		t.Fatalf("Append after Close: %v, want ErrClosed", err)
	}
}
