// Package queue is the router tier's durable write-ahead job queue: an
// append-only file of enqueue and ack records that survives process
// crashes and restarts. Every accepted job is fsynced to the log before
// the client sees its 202, and every completion is fsynced before the
// result is acknowledged to the worker, so the set of jobs that exist
// but have not finished — the pending set — is always reconstructible
// from the file alone.
//
// The log knows nothing about leases or workers: leases are soft state
// that a router restart is allowed to lose (an expired lease just
// requeues the job), so only the two durable transitions — "this job
// exists" and "this job is finished" — hit the disk.
//
// On-disk format, little-endian, one frame per record:
//
//	'E' | len(id) u16 | id | len(payload) u32 | payload | crc32 u32
//	'A' | len(id) u16 | id |                    crc32 u32
//
// The CRC covers everything before it in the frame. A torn final frame
// (crash mid-write) fails the CRC or runs short; Open truncates the file
// back to the last whole frame and carries on — an enqueue whose fsync
// never completed was never acknowledged to anyone, so dropping it is
// correct. Open also compacts: the surviving pending set is rewritten to
// a fresh file (temp + rename), so acked history never accumulates
// across restarts, and Ack self-compacts once enough dead records pile
// up in a long-running process.
package queue

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// Record is one pending job: its identifier and the opaque payload the
// enqueuer stored (the cluster layer's serialized job spec).
type Record struct {
	ID      string
	Payload []byte
}

// frame type tags.
const (
	tagEnqueue = 'E'
	tagAck     = 'A'
)

// limits guarding the decoder against corrupt length fields: an ID is a
// short token, a payload is at most one job's FASTA plus a small header.
const (
	maxIDLen      = 1 << 10
	maxPayloadLen = 1 << 30
)

// compactEvery is the ack count that triggers inline self-compaction:
// frequent enough that the file stays near the live set's size, rare
// enough that the rewrite cost never shows up in steady-state latency.
const compactEvery = 256

// WAL is the durable queue. All methods are safe for concurrent use.
type WAL struct {
	mu      sync.Mutex
	path    string
	f       *os.File
	pending map[string][]byte // id -> payload, the live set
	order   []string          // enqueue order of the live set
	acked   int               // acks since the last compaction
	closed  bool
}

// ErrClosed reports an operation on a closed WAL.
var ErrClosed = errors.New("queue: closed")

// Open reads the log at path (creating it if absent), reconstructs the
// pending set, compacts the file down to exactly that set, and returns
// the WAL ready for appends plus the pending records in enqueue order.
func Open(path string) (*WAL, []Record, error) {
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, nil, fmt.Errorf("queue: open %s: %w", path, err)
	}
	w := &WAL{path: path, pending: make(map[string][]byte)}
	w.replay(data)
	// Rewrite the surviving set to a fresh file: acked and torn records
	// do not outlive a restart, and the rename is the atomicity barrier.
	if err := w.rewriteLocked(); err != nil {
		return nil, nil, err
	}
	recs := make([]Record, 0, len(w.order))
	for _, id := range w.order {
		recs = append(recs, Record{ID: id, Payload: w.pending[id]})
	}
	return w, recs, nil
}

// replay decodes frames until EOF or the first torn/corrupt frame,
// folding them into the pending set.
func (w *WAL) replay(data []byte) {
	off := 0
	for off < len(data) {
		n, tag, id, payload := decodeFrame(data[off:])
		if n == 0 {
			break // torn or corrupt tail: everything before it is good
		}
		off += n
		switch tag {
		case tagEnqueue:
			if _, dup := w.pending[id]; !dup {
				w.pending[id] = payload
				w.order = append(w.order, id)
			}
		case tagAck:
			if _, ok := w.pending[id]; ok {
				delete(w.pending, id)
				for i, oid := range w.order {
					if oid == id {
						w.order = append(w.order[:i], w.order[i+1:]...)
						break
					}
				}
			}
		}
	}
}

// decodeFrame parses one frame from b, returning its total length (0 on
// a torn or corrupt frame), its tag, id and payload. The payload slice
// is copied: the caller's buffer does not pin the whole log.
func decodeFrame(b []byte) (n int, tag byte, id string, payload []byte) {
	if len(b) < 3 {
		return 0, 0, "", nil
	}
	tag = b[0]
	if tag != tagEnqueue && tag != tagAck {
		return 0, 0, "", nil
	}
	idLen := int(binary.LittleEndian.Uint16(b[1:3]))
	if idLen == 0 || idLen > maxIDLen {
		return 0, 0, "", nil
	}
	off := 3
	if len(b) < off+idLen {
		return 0, 0, "", nil
	}
	id = string(b[off : off+idLen])
	off += idLen
	if tag == tagEnqueue {
		if len(b) < off+4 {
			return 0, 0, "", nil
		}
		payLen := int(binary.LittleEndian.Uint32(b[off : off+4]))
		if payLen > maxPayloadLen {
			return 0, 0, "", nil
		}
		off += 4
		if len(b) < off+payLen {
			return 0, 0, "", nil
		}
		payload = append([]byte(nil), b[off:off+payLen]...)
		off += payLen
	}
	if len(b) < off+4 {
		return 0, 0, "", nil
	}
	if binary.LittleEndian.Uint32(b[off:off+4]) != crc32.ChecksumIEEE(b[:off]) {
		return 0, 0, "", nil
	}
	return off + 4, tag, id, payload
}

// appendFrame encodes one frame onto buf.
func appendFrame(buf []byte, tag byte, id string, payload []byte) []byte {
	start := len(buf)
	buf = append(buf, tag)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(id)))
	buf = append(buf, id...)
	if tag == tagEnqueue {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
		buf = append(buf, payload...)
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[start:]))
}

// rewriteLocked writes the pending set to a temp file, fsyncs it, and
// renames it over the log. Caller holds mu (or is Open, pre-publish).
func (w *WAL) rewriteLocked() error {
	tmp := w.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("queue: compact %s: %w", w.path, err)
	}
	var buf []byte
	for _, id := range w.order {
		buf = appendFrame(buf, tagEnqueue, id, w.pending[id])
	}
	if _, err := f.Write(buf); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("queue: compact %s: %w", w.path, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("queue: compact %s: %w", w.path, err)
	}
	if err := os.Rename(tmp, w.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("queue: compact %s: %w", w.path, err)
	}
	nf, err := os.OpenFile(w.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("queue: reopen %s: %w", w.path, err)
	}
	if w.f != nil {
		w.f.Close()
	}
	w.f = nf
	w.acked = 0
	return nil
}

// Append durably enqueues (id, payload): the frame is written and
// fsynced before Append returns, so a crash after it cannot lose the
// job. Duplicate IDs are rejected — enqueue idempotency lives a layer
// up, keyed by client idempotency keys, not here.
func (w *WAL) Append(id string, payload []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if _, dup := w.pending[id]; dup {
		return fmt.Errorf("queue: duplicate id %q", id)
	}
	if err := w.writeLocked(appendFrame(nil, tagEnqueue, id, payload)); err != nil {
		return err
	}
	w.pending[id] = append([]byte(nil), payload...)
	w.order = append(w.order, id)
	return nil
}

// Ack durably marks id finished (completed, failed terminally, or
// canceled): after the fsync the job will not replay on restart.
// Unknown IDs are a no-op — an ack raced by a compaction that already
// dropped the record must not fail the caller.
func (w *WAL) Ack(id string) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if _, ok := w.pending[id]; !ok {
		return nil
	}
	if err := w.writeLocked(appendFrame(nil, tagAck, id, nil)); err != nil {
		return err
	}
	delete(w.pending, id)
	for i, oid := range w.order {
		if oid == id {
			w.order = append(w.order[:i], w.order[i+1:]...)
			break
		}
	}
	w.acked++
	if w.acked >= compactEvery && w.acked > len(w.pending) {
		return w.rewriteLocked()
	}
	return nil
}

// writeLocked appends the frame bytes and fsyncs.
func (w *WAL) writeLocked(frame []byte) error {
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("queue: write %s: %w", w.path, err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("queue: sync %s: %w", w.path, err)
	}
	return nil
}

// Pending returns the number of live (enqueued, unacked) records.
func (w *WAL) Pending() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.pending)
}

// Close releases the file handle. Pending records stay on disk for the
// next Open.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if w.f != nil {
		return w.f.Close()
	}
	return nil
}

// sizeForTest reports the current log file size (test hook for the
// compaction assertions).
func (w *WAL) sizeForTest() (int64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	fi, err := os.Stat(w.path)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

var _ io.Closer = (*WAL)(nil)
