package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"logan"
	"logan/internal/telemetry"
)

// WorkerOptions configures a cluster worker.
type WorkerOptions struct {
	// RouterURL is the router's base URL (e.g. http://router:8080); the
	// worker talks to RouterURL/cluster/*.
	RouterURL string
	// Name is the worker's cluster identity and its worker="..." label
	// in the metrics rollup. Must be label-safe ([A-Za-z0-9_.-]+).
	Name string
	// Token is the shared cluster secret, if the router requires one.
	Token string
	// Overlapper executes leased jobs on the local engine (required).
	Overlapper *logan.Overlapper
	// Backend names the local engine backend in capability reports.
	Backend string
	// CellsPS is the worker's advertised throughput estimate
	// (cells/second); zero omits the report.
	CellsPS float64
	// Registry, when non-nil, is snapshotted into each heartbeat so the
	// router can roll this worker's series into the cluster /metrics.
	Registry *telemetry.Registry
	// Client overrides the HTTP client (tests); nil uses a client with
	// no overall timeout (long-polls hold connections open).
	Client *http.Client
	// PollWait is the long-poll duration per work request (default 10s,
	// capped router-side at 30s).
	PollWait time.Duration
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// Worker is the cluster client that pulls leased jobs from a router and
// executes them on the local engine. Run drives it; Kill is the test
// hook that simulates abrupt death.
type Worker struct {
	opt    WorkerOptions
	client *http.Client

	mu        sync.Mutex
	id        string
	leaseTTL  time.Duration
	beatEvery time.Duration
	killCancl []context.CancelFunc

	killed chan struct{}
	kill   sync.Once
}

// NewWorker validates opt and returns an idle worker; call Run to serve.
func NewWorker(opt WorkerOptions) (*Worker, error) {
	if opt.RouterURL == "" || opt.Overlapper == nil {
		return nil, errors.New("cluster: WorkerOptions needs RouterURL and Overlapper")
	}
	if !workerNameRE.MatchString(opt.Name) {
		return nil, fmt.Errorf("cluster: worker name %q is not label-safe", opt.Name)
	}
	if opt.PollWait <= 0 {
		opt.PollWait = 10 * time.Second
	}
	c := opt.Client
	if c == nil {
		c = &http.Client{}
	}
	return &Worker{opt: opt, client: c, killed: make(chan struct{})}, nil
}

// Kill simulates SIGKILL: every in-flight execution stops and the worker
// never contacts the router again — no release, no fail report, no
// heartbeat. The router must discover the death by lease expiry. Run
// returns after Kill.
func (w *Worker) Kill() {
	w.kill.Do(func() {
		close(w.killed)
		w.mu.Lock()
		for _, cancel := range w.killCancl {
			cancel()
		}
		w.mu.Unlock()
	})
}

// logf emits an operational log line, if a sink is configured.
func (w *Worker) logf(format string, args ...any) {
	if w.opt.Logf != nil {
		w.opt.Logf(format, args...)
	}
}

// Run registers with the router and serves leased jobs until ctx is
// canceled (graceful: the in-flight job is released back to the queue)
// or Kill is called (abrupt: the router finds out via lease expiry).
func (w *Worker) Run(ctx context.Context) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	w.mu.Lock()
	w.killCancl = append(w.killCancl, cancel)
	w.mu.Unlock()

	if err := w.register(ctx); err != nil {
		return err
	}
	hbCtx, hbCancel := context.WithCancel(ctx)
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		w.heartbeatLoop(hbCtx)
	}()
	defer hbWG.Wait()
	defer hbCancel() // LIFO: cancel fires before the Wait above

	for {
		if err := ctx.Err(); err != nil {
			return nil
		}
		spec, jobID, lease, ok, err := w.poll(ctx)
		if err != nil {
			if ctx.Err() != nil || w.isKilled() {
				return nil
			}
			var re *reregisterError
			if errors.As(err, &re) {
				// The router forgot us (restart or missed heartbeats);
				// re-register and carry on.
				if err := w.register(ctx); err != nil {
					return err
				}
				continue
			}
			w.logf("worker %s: poll: %v", w.opt.Name, err)
			if !sleepCtx(ctx, time.Second) {
				return nil
			}
			continue
		}
		if !ok {
			continue // long-poll timed out empty
		}
		w.execute(ctx, spec, jobID, lease)
	}
}

// reregisterError marks a 410 from the router: this worker ID is gone.
type reregisterError struct{}

func (*reregisterError) Error() string { return "router no longer knows this worker" }

// sleepCtx sleeps d or until ctx cancels; false means canceled.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

func (w *Worker) isKilled() bool {
	select {
	case <-w.killed:
		return true
	default:
		return false
	}
}

// do issues one JSON-in request to the router, honoring the kill switch.
func (w *Worker) do(ctx context.Context, path string, body any, hdr map[string]string) (*http.Response, error) {
	if w.isKilled() {
		return nil, errors.New("cluster: worker killed")
	}
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return nil, err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.opt.RouterURL+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if w.opt.Token != "" {
		req.Header.Set("X-Logan-Cluster-Token", w.opt.Token)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	return w.client.Do(req)
}

// httpErr drains and formats a non-2xx response.
func httpErr(resp *http.Response) error {
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	return fmt.Errorf("router returned %s: %s", resp.Status, bytes.TrimSpace(b))
}

// register announces the worker and adopts the router's lease/heartbeat
// cadence, retrying until the router answers or ctx cancels.
func (w *Worker) register(ctx context.Context) error {
	req := registerRequest{Name: w.opt.Name, Backend: w.opt.Backend, CellsPS: w.opt.CellsPS}
	for {
		resp, err := w.do(ctx, "/cluster/register", req, nil)
		if err == nil && resp.StatusCode == http.StatusOK {
			var out registerResponse
			err = json.NewDecoder(resp.Body).Decode(&out)
			resp.Body.Close()
			if err != nil {
				return err
			}
			w.mu.Lock()
			w.id = out.WorkerID
			w.leaseTTL = time.Duration(out.LeaseTTLMs) * time.Millisecond
			w.beatEvery = max(time.Duration(out.HeartbeatMs)*time.Millisecond, 10*time.Millisecond)
			w.mu.Unlock()
			w.logf("worker %s: registered as %s (lease TTL %v)", w.opt.Name, out.WorkerID, w.leaseTTL)
			return nil
		}
		if err == nil {
			err = httpErr(resp)
			resp.Body.Close()
			// 4xx is a configuration error (bad name, bad token) that a
			// retry cannot fix.
			if resp.StatusCode >= 400 && resp.StatusCode < 500 {
				return fmt.Errorf("cluster: register: %w", err)
			}
		}
		if ctx.Err() != nil || w.isKilled() {
			return ctx.Err()
		}
		w.logf("worker %s: register: %v (retrying)", w.opt.Name, err)
		if !sleepCtx(ctx, time.Second) {
			return ctx.Err()
		}
	}
}

// workerID reads the current registration.
func (w *Worker) workerID() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.id
}

// heartbeatLoop pushes liveness plus the local telemetry snapshot at the
// router-assigned cadence.
func (w *Worker) heartbeatLoop(ctx context.Context) {
	w.mu.Lock()
	every := w.beatEvery
	w.mu.Unlock()
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		hb := heartbeatRequest{WorkerID: w.workerID(), CellsPS: w.opt.CellsPS}
		if w.opt.Registry != nil {
			hb.Snapshot = w.opt.Registry.Snapshot()
		}
		resp, err := w.do(ctx, "/cluster/heartbeat", hb, nil)
		if err != nil {
			continue
		}
		resp.Body.Close()
	}
}

// poll long-polls the router for one leased job. ok=false means the
// poll returned empty.
func (w *Worker) poll(ctx context.Context) (spec *Spec, jobID, lease string, ok bool, err error) {
	body := struct {
		WorkerID string `json:"workerId"`
		WaitMs   int64  `json:"waitMs"`
	}{w.workerID(), w.opt.PollWait.Milliseconds()}
	resp, err := w.do(ctx, "/cluster/poll", body, nil)
	if err != nil {
		return nil, "", "", false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNoContent:
		return nil, "", "", false, nil
	case http.StatusGone:
		return nil, "", "", false, &reregisterError{}
	case http.StatusOK:
	default:
		return nil, "", "", false, httpErr(resp)
	}
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", "", false, err
	}
	spec, err = UnmarshalSpec(payload)
	if err != nil {
		return nil, "", "", false, err
	}
	jobID = resp.Header.Get("X-Logan-Job-Id")
	lease = resp.Header.Get("X-Logan-Lease")
	if ttlMs, _ := strconv.ParseInt(resp.Header.Get("X-Logan-Lease-Ttl-Ms"), 10, 64); ttlMs > 0 {
		w.mu.Lock()
		w.leaseTTL = time.Duration(ttlMs) * time.Millisecond
		w.mu.Unlock()
	}
	return spec, jobID, lease, true, nil
}

// execute runs one leased job: the overlap pipeline on the local engine,
// a lease-extension loop at TTL/3 publishing progress, and the final
// complete (or fail) report. Errors are reported to the router, never
// returned — the worker keeps serving.
func (w *Worker) execute(ctx context.Context, spec *Spec, jobID, lease string) {
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var pmu sync.Mutex
	var prog Progress
	cfg := spec.Config.Overlap()
	cfg.OnProgress = func(u logan.OverlapProgress) {
		pmu.Lock()
		prog.FromOverlap(u)
		pmu.Unlock()
	}

	w.mu.Lock()
	ttl := w.leaseTTL
	w.mu.Unlock()
	extendEvery := max(ttl/3, 10*time.Millisecond)

	// canceledByRouter distinguishes "the router took the job away"
	// (stale lease or client cancel: vanish silently) from a local error
	// (report it).
	var canceledByRouter bool
	var extWG sync.WaitGroup
	extWG.Add(1)
	go func() {
		defer extWG.Done()
		t := time.NewTicker(extendEvery)
		defer t.Stop()
		for {
			select {
			case <-runCtx.Done():
				return
			case <-t.C:
			}
			pmu.Lock()
			p := prog
			pmu.Unlock()
			resp, err := w.do(runCtx, "/cluster/jobs/"+jobID+"/extend",
				extendRequest{WorkerID: w.workerID(), Lease: lease, Progress: p}, nil)
			if err != nil {
				continue // transient; the lease survives a missed beat or two
			}
			switch resp.StatusCode {
			case http.StatusOK:
				var out extendResponse
				json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				if out.Canceled {
					pmu.Lock()
					canceledByRouter = true
					pmu.Unlock()
					cancel()
					return
				}
			case http.StatusConflict:
				// Superseded: the lease expired and the job belongs to
				// someone else now. Abort; publishing would double-execute.
				resp.Body.Close()
				pmu.Lock()
				canceledByRouter = true
				pmu.Unlock()
				cancel()
				return
			default:
				resp.Body.Close()
			}
		}
	}()

	res, runErr := w.opt.Overlapper.RunFasta(runCtx, bytes.NewReader(spec.Fasta), cfg)
	cancel()
	extWG.Wait()

	pmu.Lock()
	routerCanceled := canceledByRouter
	pmu.Unlock()
	if w.isKilled() || routerCanceled {
		return
	}

	if runErr != nil {
		fr := failRequest{WorkerID: w.workerID(), Lease: lease, Error: runErr.Error()}
		// A graceful shutdown mid-job releases the job for another
		// worker; a genuine execution error is terminal.
		if errors.Is(runErr, context.Canceled) && ctx.Err() != nil {
			fr.Requeue = true
			fr.Error = "worker shutting down"
			// ctx is dead; report over a fresh, short-lived context.
			rctx, rcancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer rcancel()
			ctx = rctx
		}
		w.logf("worker %s: job %s: %s (requeue=%v)", w.opt.Name, jobID, fr.Error, fr.Requeue)
		if resp, err := w.do(ctx, "/cluster/jobs/"+jobID+"/fail", fr, nil); err == nil {
			resp.Body.Close()
		}
		return
	}

	var buf bytes.Buffer
	if err := logan.WritePAF(&buf, res.Records); err != nil {
		if resp, ferr := w.do(ctx, "/cluster/jobs/"+jobID+"/fail",
			failRequest{WorkerID: w.workerID(), Lease: lease, Error: err.Error()}, nil); ferr == nil {
			resp.Body.Close()
		}
		return
	}
	hdr := map[string]string{
		"X-Logan-Lease":     lease,
		"X-Logan-Worker-Id": w.workerID(),
		"X-Logan-Overlaps":  strconv.Itoa(len(res.Records)),
		"X-Logan-Reads":     strconv.Itoa(res.Stats.Reads),
		"X-Logan-Cells":     strconv.FormatInt(res.Stats.Cells, 10),
	}
	resp, err := w.doBytes(ctx, "/cluster/jobs/"+jobID+"/complete", buf.Bytes(), hdr)
	if err != nil {
		w.logf("worker %s: job %s: complete: %v", w.opt.Name, jobID, err)
		return
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusConflict {
		w.logf("worker %s: job %s: completion rejected (stale lease)", w.opt.Name, jobID)
	} else {
		w.logf("worker %s: job %s: done (%d overlaps, %d PAF bytes)", w.opt.Name, jobID, len(res.Records), buf.Len())
	}
}

// doBytes issues one raw-body POST, honoring the kill switch.
func (w *Worker) doBytes(ctx context.Context, path string, body []byte, hdr map[string]string) (*http.Response, error) {
	if w.isKilled() {
		return nil, errors.New("cluster: worker killed")
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.opt.RouterURL+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if w.opt.Token != "" {
		req.Header.Set("X-Logan-Cluster-Token", w.opt.Token)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	return w.client.Do(req)
}
