// Package cluster is the distributed scale-out layer: a router tier
// that admits overlap jobs, persists them to a durable write-ahead
// queue, and hands them to a fleet of alignment workers under expiring
// leases — plus the worker client that registers, heartbeats, pulls
// work, executes it on its local engine, and streams results back.
//
// The package also defines the JobStore interface the serve layer's
// /jobs handlers program against: the single-node in-memory store and
// the cluster Router are interchangeable behind it, so non-cluster
// operation is the degenerate single-node case, not a separate code
// path.
//
// Dataflow of one clustered job:
//
//	client ── POST /jobs ──▶ router: admit (auth/quota) ─▶ WAL fsync ─▶ queued
//	worker ── poll ─────────▶ lease (token, TTL) ─▶ execute on local engine
//	worker ── extend ───────▶ lease renewed, progress published
//	worker ── complete ─────▶ PAF stored, WAL ack fsync ─▶ done
//	 (no extend before TTL) ─▶ lease expires ─▶ requeued for another worker
//
// Job IDs are idempotent: a requeued job re-executes under the same ID,
// and a completion carrying a stale lease token is rejected, so a slow
// worker racing its own replacement can never double-publish a result.
package cluster

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"logan"
)

// Admission-control errors shared by both JobStore implementations; the
// HTTP layer maps them to 429.
var (
	// ErrStoreFull reports a store whose every retained job is still
	// live: nothing can be evicted to make room.
	ErrStoreFull = errors.New("cluster: job store full of live jobs")
	// ErrBusy reports an exhausted byte budget (buffered uploads or
	// queued job specs).
	ErrBusy = errors.New("cluster: job byte budget exhausted")
)

// JobConfig is the serializable subset of logan.OverlapConfig that the
// serve-layer jobs API exposes: the numeric pipeline parameters. The
// scoring scheme is always the paper's +1/-1/-1 linear family (the only
// one the overlap pipeline validates), so it does not travel.
type JobConfig struct {
	K          int     `json:"k"`
	Coverage   float64 `json:"coverage"`
	ErrorRate  float64 `json:"errorRate"`
	X          int32   `json:"x"`
	BinWidth   int     `json:"binWidth"`
	MinShared  int     `json:"minShared"`
	MaxSeeds   int     `json:"maxSeeds"`
	Delta      float64 `json:"delta"`
	MinOverlap int     `json:"minOverlap"`
	BatchPairs int     `json:"batchPairs"`
	Workers    int     `json:"workers"`
}

// ConfigFromOverlap projects an overlap configuration onto the wire
// form, dropping the non-serializable hooks (OnProgress, Traceback).
func ConfigFromOverlap(c logan.OverlapConfig) JobConfig {
	return JobConfig{
		K: c.K, Coverage: c.Coverage, ErrorRate: c.ErrorRate, X: c.X,
		BinWidth: c.BinWidth, MinShared: c.MinShared, MaxSeeds: c.MaxSeeds,
		Delta: c.Delta, MinOverlap: c.MinOverlap, BatchPairs: c.BatchPairs,
		Workers: c.Workers,
	}
}

// Overlap reconstructs the executable configuration on the worker side.
func (c JobConfig) Overlap() logan.OverlapConfig {
	cov, er := c.Coverage, c.ErrorRate
	if cov == 0 {
		cov = 6
	}
	if er == 0 {
		er = 0.15
	}
	out := logan.DefaultOverlapConfig(cov, er, c.X)
	if c.K != 0 {
		out.K = c.K
	}
	if c.BinWidth != 0 {
		out.BinWidth = c.BinWidth
	}
	if c.MinShared != 0 {
		out.MinShared = c.MinShared
	}
	if c.MaxSeeds != 0 {
		out.MaxSeeds = c.MaxSeeds
	}
	if c.Delta != 0 {
		out.Delta = c.Delta
	}
	out.MinOverlap = c.MinOverlap
	out.BatchPairs = c.BatchPairs
	out.Workers = c.Workers
	return out
}

// Spec is the self-contained, durable description of one job: what the
// WAL stores and what a lease hands to a worker. The FASTA rides along
// raw — a worker needs nothing but the spec to execute.
type Spec struct {
	ID             string    `json:"id"`
	Tenant         string    `json:"tenant,omitempty"`
	IdempotencyKey string    `json:"idempotencyKey,omitempty"`
	Config         JobConfig `json:"config"`
	Fasta          []byte    `json:"-"`
}

// maxSpecHeader bounds the JSON header of a decoded spec; any real
// header is a few hundred bytes.
const maxSpecHeader = 1 << 20

// Marshal frames the spec as a 4-byte little-endian JSON-header length,
// the header, then the raw FASTA bytes — one codec for the WAL payload
// and the lease HTTP body.
func (s *Spec) Marshal() ([]byte, error) {
	hdr, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("cluster: marshal spec: %w", err)
	}
	out := make([]byte, 0, 4+len(hdr)+len(s.Fasta))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(hdr)))
	out = append(out, hdr...)
	return append(out, s.Fasta...), nil
}

// UnmarshalSpec decodes a framed spec. The FASTA slice aliases b.
func UnmarshalSpec(b []byte) (*Spec, error) {
	if len(b) < 4 {
		return nil, errors.New("cluster: spec too short")
	}
	hlen := int(binary.LittleEndian.Uint32(b))
	if hlen <= 0 || hlen > maxSpecHeader || len(b) < 4+hlen {
		return nil, fmt.Errorf("cluster: spec header length %d invalid", hlen)
	}
	var s Spec
	if err := json.Unmarshal(b[4:4+hlen], &s); err != nil {
		return nil, fmt.Errorf("cluster: unmarshal spec: %w", err)
	}
	s.Fasta = b[4+hlen:]
	return &s, nil
}

// Progress is the wire form of a job's pipeline progress, pushed by the
// executing worker with each lease extension.
type Progress struct {
	Stage           string `json:"stage"`
	ReadsParsed     int64  `json:"readsParsed"`
	ReliableKmers   int64  `json:"reliableKmers"`
	CandidatePairs  int64  `json:"candidatePairs"`
	ExtensionsDone  int64  `json:"extensionsDone"`
	ExtensionsTotal int64  `json:"extensionsTotal"`
	Overlaps        int64  `json:"overlaps"`
	Shed            int64  `json:"shed"`
	Retries         int64  `json:"retries"`
}

// FromOverlap folds a pipeline progress snapshot into the wire form.
func (p *Progress) FromOverlap(u logan.OverlapProgress) {
	p.Stage = string(u.Stage)
	p.ReadsParsed = int64(u.ReadsParsed)
	p.ReliableKmers = int64(u.ReliableKmers)
	p.CandidatePairs = int64(u.CandidatePairs)
	p.ExtensionsDone = int64(u.ExtensionsDone)
	p.ExtensionsTotal = int64(u.ExtensionsTotal)
	p.Overlaps = int64(u.Overlaps)
	p.Shed = u.Shed
	p.Retries = u.Retries
}

// Job states shared by both stores.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// TerminalState reports whether a job in the given state can never
// change again.
func TerminalState(s string) bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// JobStatus is one job's externally visible state, identical in shape
// for the single-node store and the cluster router (Worker and Requeues
// stay zero on a single node).
type JobStatus struct {
	ID       string
	State    string
	Error    string
	Progress Progress
	// Overlaps/Reads/Cells/PAFBytes summarize a finished job.
	Overlaps int
	Reads    int
	Cells    int64
	PAFBytes int
	// Worker names the node executing (or having executed) the job;
	// Requeues counts lease-expiry or shutdown retries it survived.
	Worker   string
	Requeues int
	Created  time.Time
	Started  time.Time
	Finished time.Time
}

// Submission is one POST /jobs, resolved by the HTTP layer: the
// authenticated tenant, the validated configuration, and a one-shot
// opener for the FASTA source. BufBytes is the source's already
// buffered upload size (0 for lazily opened server-side paths).
type Submission struct {
	Tenant   *logan.Tenant
	Config   logan.OverlapConfig
	Open     func() (io.ReadCloser, error)
	BufBytes int64
	// IdempotencyKey, when non-empty, dedupes client retries: a
	// submission whose key matches a retained job returns that job's
	// status (replayed=true) instead of creating a second job.
	IdempotencyKey string
}

// JobStore is the serve layer's contract for the async jobs subsystem.
// The in-memory single-node store and the cluster Router both implement
// it; the /jobs HTTP handlers are written against nothing else.
type JobStore interface {
	// Submit admits one job. replayed reports an idempotency-key hit
	// (the returned status is the original job's). Admission rejections
	// wrap ErrStoreFull or ErrBusy.
	Submit(sub Submission) (st JobStatus, replayed bool, err error)
	// Status reports the job's current state.
	Status(id string) (JobStatus, bool)
	// PAF returns the finished job's serialized result along with its
	// status; a job that is not done returns its status and a nil slice.
	PAF(id string) ([]byte, JobStatus, bool)
	// Cancel aborts the job if live and forgets it either way; false
	// means the ID was unknown.
	Cancel(id string) bool
	// RetryAfter projects when a shed submission should retry.
	RetryAfter() time.Duration
	// Ready reports whether the store can make progress on accepted
	// jobs (a router with no registered workers is not ready).
	Ready() bool
	// Close cancels live work and releases resources.
	Close()
}

// NewID returns a 16-hex-character random identifier, used for job IDs,
// worker IDs and lease tokens alike.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(err) // crypto/rand failure is unrecoverable
	}
	return hex.EncodeToString(b[:])
}

// TenantName renders a tenant for attribution; the nil (unmetered)
// tenant reads as anonymous.
func TenantName(t *logan.Tenant) string {
	if t == nil {
		return "anonymous"
	}
	return t.Name()
}
