package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"sync"
	"time"

	"logan/internal/cluster/queue"
	"logan/internal/telemetry"
)

// RouterOptions tunes the router tier. The zero value of every field
// but QueuePath selects a production default.
type RouterOptions struct {
	// QueuePath is the write-ahead queue file. Required: durability is
	// the point of the router.
	QueuePath string
	// LeaseTTL is how long a worker may hold a job without extending
	// its lease before the job requeues (default 10s). Workers extend
	// at TTL/3, so a dead worker delays its job by at most one TTL.
	LeaseTTL time.Duration
	// WorkerTTL is how long a registered worker may go without a
	// heartbeat before it is dropped from the registry and the
	// readiness/rollup views (default 3x LeaseTTL).
	WorkerTTL time.Duration
	// MaxRequeues bounds lease-expiry retries per job before it fails
	// terminally (default 3): a job that kills every worker it lands on
	// must not circulate forever.
	MaxRequeues int
	// MaxJobs bounds retained job records (default 64); terminal jobs
	// evict oldest-first to make room, a store full of live jobs sheds.
	MaxJobs int
	// MaxJobBytes bounds one job's FASTA (default 64 MiB) — the router
	// buffers the whole spec for the WAL.
	MaxJobBytes int64
	// PendingBytes bounds the aggregate spec bytes of non-terminal jobs
	// (default 256 MiB); ResultBytes bounds the aggregate retained PAF
	// bytes (default 256 MiB, oldest terminal jobs evicted).
	PendingBytes int64
	ResultBytes  int64
	// Token, when set, is the shared secret workers must present in
	// X-Logan-Cluster-Token; empty leaves the worker API open (trusted
	// network).
	Token string
	// Registry receives the router's instruments (required).
	Registry *telemetry.Registry
}

func (o *RouterOptions) defaults() {
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 10 * time.Second
	}
	if o.WorkerTTL <= 0 {
		o.WorkerTTL = 3 * o.LeaseTTL
	}
	if o.MaxRequeues <= 0 {
		o.MaxRequeues = 3
	}
	if o.MaxJobs <= 0 {
		o.MaxJobs = 64
	}
	if o.MaxJobBytes <= 0 {
		o.MaxJobBytes = 64 << 20
	}
	if o.PendingBytes <= 0 {
		o.PendingBytes = 256 << 20
	}
	if o.ResultBytes <= 0 {
		o.ResultBytes = 256 << 20
	}
}

// workerNameRE constrains worker names to label-safe characters: the
// name becomes the worker="..." label on every rolled-up metric series.
var workerNameRE = regexp.MustCompile(`^[A-Za-z0-9_.-]+$`)

// rjob is one routed job. All fields are guarded by Router.mu.
type rjob struct {
	spec     *Spec
	payload  []byte // framed spec, as stored in the WAL
	state    string
	err      string
	worker   string // executing (or last) worker name
	leaseID  string // current lease token; "" when not leased
	leaseExp time.Time
	requeues int
	progress Progress
	paf      []byte
	overlaps int
	reads    int
	cells    int64
	created  time.Time
	started  time.Time
	finished time.Time
	// canceled marks a DELETE on a leased job: the executing worker
	// learns at its next extend and aborts.
	canceled bool
}

// workerState is one registered worker.
type workerState struct {
	id       string
	name     string
	backend  string
	cellsPS  float64 // worker-reported throughput estimate
	seen     time.Time
	joined   time.Time
	snapshot *telemetry.Snapshot // latest pushed registry snapshot
	done     int64
	failed   int64
}

// routerTelemetry are the router's instruments. The logan_jobs_* names
// deliberately match the single-node store's, so the /statz jobs block
// and dashboards read the same series in both modes.
type routerTelemetry struct {
	submitted, completed, failed, canceled, rejected *telemetry.Counter
	pafBytes                                         *telemetry.Counter
	avgDuration                                      *telemetry.Gauge
	requeues, expired, replayedWAL, idemHits         *telemetry.Counter
	staleLeases                                      *telemetry.Counter
}

// Router is the front tier's job store: durable admission, leased
// dispatch to registered workers, lease-expiry requeue, and the
// cluster-wide telemetry rollup. It implements JobStore.
type Router struct {
	opt RouterOptions
	wal *queue.WAL
	t   routerTelemetry

	mu      sync.Mutex
	jobs    map[string]*rjob
	order   []string // insertion order, for eviction
	idem    map[string]string
	pending []string // queued job IDs, FIFO
	workers map[string]*workerState
	wake    chan struct{} // closed+replaced when work arrives
	closed  bool

	pendingBytes int64
	resultBytes  int64
	done         chan struct{}
	loopWG       sync.WaitGroup
}

// NewRouter opens (or creates) the write-ahead queue at opt.QueuePath,
// replays every pending job back into the queued state, and starts the
// lease-expiry loop.
func NewRouter(opt RouterOptions) (*Router, error) {
	if opt.QueuePath == "" {
		return nil, errors.New("cluster: RouterOptions.QueuePath is required")
	}
	if opt.Registry == nil {
		return nil, errors.New("cluster: RouterOptions.Registry is required")
	}
	opt.defaults()
	wal, recs, err := queue.Open(opt.QueuePath)
	if err != nil {
		return nil, err
	}
	r := &Router{
		opt:     opt,
		wal:     wal,
		jobs:    make(map[string]*rjob),
		idem:    make(map[string]string),
		workers: make(map[string]*workerState),
		wake:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	reg := opt.Registry
	r.t = routerTelemetry{
		submitted:   reg.Counter("logan_jobs_submitted_total", "Overlap jobs accepted by POST /jobs."),
		completed:   reg.Counter("logan_jobs_completed_total", "Overlap jobs that finished successfully."),
		failed:      reg.Counter("logan_jobs_failed_total", "Overlap jobs that finished with an error."),
		canceled:    reg.Counter("logan_jobs_canceled_total", "Overlap jobs canceled by DELETE or shutdown."),
		rejected:    reg.Counter("logan_jobs_rejected_total", "Job submissions shed by admission control (HTTP 429)."),
		pafBytes:    reg.Counter("logan_jobs_paf_bytes_total", "Serialized PAF bytes produced by completed jobs."),
		avgDuration: reg.Gauge("logan_jobs_duration_seconds_avg", "EWMA wall time of finished jobs (the Retry-After drain estimate)."),
		requeues:    reg.Counter("logan_cluster_requeues_total", "Jobs requeued after a lease expired or a worker released them."),
		expired:     reg.Counter("logan_cluster_lease_expired_total", "Leases that expired without completion."),
		replayedWAL: reg.Counter("logan_cluster_wal_replayed_total", "Jobs replayed from the write-ahead queue at startup."),
		idemHits:    reg.Counter("logan_jobs_idempotent_replays_total", "Submissions deduplicated onto an existing job by Idempotency-Key."),
		staleLeases: reg.Counter("logan_cluster_stale_lease_total", "Worker reports rejected for carrying a superseded lease token."),
	}
	reg.GaugeFunc("logan_cluster_workers", "Live registered workers.", func() float64 {
		return float64(len(r.Workers()))
	})
	reg.GaugeFunc("logan_jobs_queued", "Jobs waiting for a worker lease.", func() float64 {
		q, _ := r.counts()
		return float64(q)
	})
	reg.GaugeFunc("logan_jobs_running", "Jobs currently leased to a worker.", func() float64 {
		_, run := r.counts()
		return float64(run)
	})
	reg.GaugeFunc("logan_cluster_queue_depth", "Pending records in the write-ahead queue.", func() float64 {
		return float64(wal.Pending())
	})

	// Replay: every unacked record becomes a queued job again. The spec
	// carries tenant attribution and the idempotency key, so client
	// retries keep deduplicating across the restart.
	for _, rec := range recs {
		spec, err := UnmarshalSpec(rec.Payload)
		if err != nil || spec.ID != rec.ID {
			// A record the WAL's CRC accepted but the codec rejects is a
			// version-skew bug, not recoverable data; drop it durably.
			wal.Ack(rec.ID)
			continue
		}
		j := &rjob{spec: spec, payload: rec.Payload, state: StateQueued, created: time.Now()}
		r.jobs[spec.ID] = j
		r.order = append(r.order, spec.ID)
		r.pending = append(r.pending, spec.ID)
		r.pendingBytes += int64(len(rec.Payload))
		if spec.IdempotencyKey != "" {
			r.idem[spec.IdempotencyKey] = spec.ID
		}
		r.t.replayedWAL.Inc()
	}

	r.loopWG.Add(1)
	go r.expiryLoop()
	return r, nil
}

// expiryLoop requeues jobs whose lease lapsed and forgets workers whose
// heartbeats stopped.
func (r *Router) expiryLoop() {
	defer r.loopWG.Done()
	tick := max(r.opt.LeaseTTL/4, 10*time.Millisecond)
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-r.done:
			return
		case <-t.C:
			r.expire(time.Now())
		}
	}
}

// expire is one sweep of the expiry loop.
func (r *Router) expire(now time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for id, j := range r.jobs {
		if j.state != StateRunning || now.Before(j.leaseExp) {
			continue
		}
		r.t.expired.Inc()
		r.requeueLocked(id, j, fmt.Sprintf("lease expired on worker %q", j.worker))
	}
	for id, w := range r.workers {
		if now.Sub(w.seen) > r.opt.WorkerTTL {
			delete(r.workers, id)
		}
	}
}

// requeueLocked returns a running job to the queue, or fails it once it
// has exhausted its retry budget. Caller holds mu.
func (r *Router) requeueLocked(id string, j *rjob, cause string) {
	j.leaseID = ""
	j.requeues++
	if j.requeues > r.opt.MaxRequeues {
		j.state = StateFailed
		j.err = fmt.Sprintf("gave up after %d requeues: %s", j.requeues-1, cause)
		j.finished = time.Now()
		r.finishAccountingLocked(j)
		r.t.failed.Inc()
		return
	}
	j.state = StateQueued
	j.progress = Progress{}
	r.pending = append(r.pending, id)
	r.t.requeues.Inc()
	r.wakeLocked()
}

// finishAccountingLocked releases a job's pending-byte reservation and
// acks its WAL record: it will never execute again. Caller holds mu.
func (r *Router) finishAccountingLocked(j *rjob) {
	if j.payload != nil {
		r.pendingBytes -= int64(len(j.payload))
		j.payload = nil
	}
	r.wal.Ack(j.spec.ID)
}

// wakeLocked signals blocked pollers that the queue may have work.
func (r *Router) wakeLocked() {
	close(r.wake)
	r.wake = make(chan struct{})
}

// Submit implements JobStore: read the FASTA source in full, frame the
// spec, fsync it to the WAL, and queue the job. The 202 a client sees
// implies the job survives a router crash.
func (r *Router) Submit(sub Submission) (JobStatus, bool, error) {
	if sub.IdempotencyKey != "" {
		r.mu.Lock()
		if id, ok := r.idem[sub.IdempotencyKey]; ok {
			j := r.jobs[id]
			st := r.statusLocked(id, j)
			r.mu.Unlock()
			r.t.idemHits.Inc()
			return st, true, nil
		}
		r.mu.Unlock()
	}

	src, err := sub.Open()
	if err != nil {
		return JobStatus{}, false, err
	}
	fasta, err := io.ReadAll(io.LimitReader(src, r.opt.MaxJobBytes+1))
	src.Close()
	if err != nil {
		return JobStatus{}, false, err
	}
	if int64(len(fasta)) > r.opt.MaxJobBytes {
		return JobStatus{}, false, fmt.Errorf("cluster: job FASTA exceeds the %d-byte limit", r.opt.MaxJobBytes)
	}
	spec := &Spec{
		ID:             NewID(),
		Tenant:         TenantName(sub.Tenant),
		IdempotencyKey: sub.IdempotencyKey,
		Config:         ConfigFromOverlap(sub.Config),
		Fasta:          fasta,
	}
	payload, err := spec.Marshal()
	if err != nil {
		return JobStatus{}, false, err
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return JobStatus{}, false, errors.New("cluster: router closed")
	}
	// Re-check idempotency under the lock: two concurrent retries with
	// the same key must still collapse onto one job.
	if sub.IdempotencyKey != "" {
		if id, ok := r.idem[sub.IdempotencyKey]; ok {
			r.t.idemHits.Inc()
			return r.statusLocked(id, r.jobs[id]), true, nil
		}
	}
	if r.pendingBytes+int64(len(payload)) > r.opt.PendingBytes {
		r.t.rejected.Inc()
		return JobStatus{}, false, ErrBusy
	}
	if len(r.jobs) >= r.opt.MaxJobs && !r.evictLocked() {
		r.t.rejected.Inc()
		return JobStatus{}, false, ErrStoreFull
	}
	if err := r.wal.Append(spec.ID, payload); err != nil {
		return JobStatus{}, false, err
	}
	j := &rjob{spec: spec, payload: payload, state: StateQueued, created: time.Now()}
	r.jobs[spec.ID] = j
	r.order = append(r.order, spec.ID)
	r.pending = append(r.pending, spec.ID)
	r.pendingBytes += int64(len(payload))
	if spec.IdempotencyKey != "" {
		r.idem[spec.IdempotencyKey] = spec.ID
	}
	r.t.submitted.Inc()
	r.wakeLocked()
	return r.statusLocked(spec.ID, j), false, nil
}

// evictLocked drops the oldest terminal job to make room; false means
// every retained job is live. Caller holds mu.
func (r *Router) evictLocked() bool {
	for i, id := range r.order {
		j := r.jobs[id]
		if !TerminalState(j.state) {
			continue
		}
		r.dropLocked(i, id, j)
		return true
	}
	return false
}

// dropLocked removes job at order index i from every map. Caller holds mu.
func (r *Router) dropLocked(i int, id string, j *rjob) {
	delete(r.jobs, id)
	r.order = append(r.order[:i], r.order[i+1:]...)
	if j.spec.IdempotencyKey != "" {
		delete(r.idem, j.spec.IdempotencyKey)
	}
	r.resultBytes -= int64(len(j.paf))
}

// trimResultsLocked evicts oldest terminal jobs (sparing keep) until
// retained PAF bytes fit the budget. Caller holds mu.
func (r *Router) trimResultsLocked(keep string) {
	for i := 0; i < len(r.order) && r.resultBytes > r.opt.ResultBytes; {
		id := r.order[i]
		j := r.jobs[id]
		if id == keep || !TerminalState(j.state) || len(j.paf) == 0 {
			i++
			continue
		}
		r.dropLocked(i, id, j)
	}
}

// statusLocked snapshots a job. Caller holds mu.
func (r *Router) statusLocked(id string, j *rjob) JobStatus {
	if j == nil {
		return JobStatus{ID: id}
	}
	return JobStatus{
		ID: id, State: j.state, Error: j.err, Progress: j.progress,
		Overlaps: j.overlaps, Reads: j.reads, Cells: j.cells,
		PAFBytes: len(j.paf), Worker: j.worker, Requeues: j.requeues,
		Created: j.created, Started: j.started, Finished: j.finished,
	}
}

// Status implements JobStore.
func (r *Router) Status(id string) (JobStatus, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return r.statusLocked(id, j), true
}

// PAF implements JobStore.
func (r *Router) PAF(id string) ([]byte, JobStatus, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	if !ok {
		return nil, JobStatus{}, false
	}
	st := r.statusLocked(id, j)
	if j.state != StateDone {
		return nil, st, true
	}
	return j.paf, st, true
}

// Cancel implements JobStore: the job is forgotten immediately (404
// from here on); a leased run learns at its next extend and aborts.
func (r *Router) Cancel(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	if !ok {
		return false
	}
	for i, oid := range r.order {
		if oid == id {
			r.dropLocked(i, id, j)
			break
		}
	}
	if !TerminalState(j.state) {
		j.state = StateCanceled
		j.canceled = true
		r.finishAccountingLocked(j)
		r.t.canceled.Inc()
	}
	return true
}

// jobDurationAlpha weights the finished-job wall-time EWMA behind
// Retry-After.
const jobDurationAlpha = 0.3

// RetryAfter implements JobStore: average job duration spread over the
// queue ahead of a new submission and the live worker count.
func (r *Router) RetryAfter() time.Duration {
	avg := r.t.avgDuration.Value()
	if avg <= 0 {
		return time.Second
	}
	q, run := r.counts()
	workers := max(len(r.Workers()), 1)
	d := time.Duration(avg * float64(q+run+1) / float64(workers) * float64(time.Second))
	return min(max(d, time.Second), time.Minute)
}

// Ready implements JobStore: a router with no live worker would accept
// jobs it cannot run.
func (r *Router) Ready() bool { return len(r.Workers()) > 0 }

// counts reports queued/running jobs.
func (r *Router) counts() (queued, running int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, j := range r.jobs {
		switch j.state {
		case StateQueued:
			queued++
		case StateRunning:
			running++
		}
	}
	return queued, running
}

// Close implements JobStore: stop the expiry loop and release the WAL.
// Queued and running jobs stay in the log for the next router.
func (r *Router) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	close(r.done)
	r.wakeLocked()
	r.mu.Unlock()
	r.loopWG.Wait()
	r.wal.Close()
}

// WorkerInfo is one registered worker's public state, for /statz.
type WorkerInfo struct {
	Name      string
	Backend   string
	CellsPS   float64
	LastSeen  time.Time
	Joined    time.Time
	Completed int64
	Failed    int64
	Leases    int
}

// Workers lists live workers (heartbeat within WorkerTTL).
func (r *Router) Workers() []WorkerInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := time.Now()
	leases := map[string]int{}
	for _, j := range r.jobs {
		if j.state == StateRunning {
			leases[j.worker]++
		}
	}
	var out []WorkerInfo
	for _, w := range r.workers {
		if now.Sub(w.seen) > r.opt.WorkerTTL {
			continue
		}
		out = append(out, WorkerInfo{
			Name: w.name, Backend: w.backend, CellsPS: w.cellsPS,
			LastSeen: w.seen, Joined: w.joined,
			Completed: w.done, Failed: w.failed, Leases: leases[w.name],
		})
	}
	return out
}

// WorkerSnapshots returns the latest telemetry snapshot each live
// worker pushed, keyed by worker name — the input to the /metrics
// rollup.
func (r *Router) WorkerSnapshots() map[string]*telemetry.Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	now := time.Now()
	out := map[string]*telemetry.Snapshot{}
	for _, w := range r.workers {
		if w.snapshot != nil && now.Sub(w.seen) <= r.opt.WorkerTTL {
			out[w.name] = w.snapshot
		}
	}
	return out
}

// --- worker-facing HTTP API --------------------------------------------

// Wire types of the worker protocol.
type registerRequest struct {
	Name    string  `json:"name"`
	Backend string  `json:"backend"`
	CellsPS float64 `json:"cellsPerSec,omitempty"`
}

type registerResponse struct {
	WorkerID    string `json:"workerId"`
	LeaseTTLMs  int64  `json:"leaseTtlMs"`
	HeartbeatMs int64  `json:"heartbeatMs"`
}

type heartbeatRequest struct {
	WorkerID string  `json:"workerId"`
	CellsPS  float64 `json:"cellsPerSec,omitempty"`
	// Snapshot is the worker's whole telemetry registry; the router
	// re-labels it with worker=<name> in the cluster rollup.
	Snapshot *telemetry.Snapshot `json:"snapshot,omitempty"`
}

type extendRequest struct {
	WorkerID string   `json:"workerId"`
	Lease    string   `json:"lease"`
	Progress Progress `json:"progress"`
}

type extendResponse struct {
	Canceled bool `json:"canceled"`
}

type failRequest struct {
	WorkerID string `json:"workerId"`
	Lease    string `json:"lease"`
	Error    string `json:"error"`
	// Requeue asks for the job back on the queue (graceful worker
	// shutdown) instead of a terminal failure (execution error).
	Requeue bool `json:"requeue"`
}

// Handler returns the worker-facing API, to be mounted under /cluster/.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /cluster/register", r.auth(r.handleRegister))
	mux.HandleFunc("POST /cluster/heartbeat", r.auth(r.handleHeartbeat))
	mux.HandleFunc("POST /cluster/poll", r.auth(r.handlePoll))
	mux.HandleFunc("POST /cluster/jobs/{id}/extend", r.auth(r.handleExtend))
	mux.HandleFunc("POST /cluster/jobs/{id}/complete", r.auth(r.handleComplete))
	mux.HandleFunc("POST /cluster/jobs/{id}/fail", r.auth(r.handleFail))
	return mux
}

// auth gates a handler on the shared cluster token, when one is set.
func (r *Router) auth(h http.HandlerFunc) http.HandlerFunc {
	if r.opt.Token == "" {
		return h
	}
	return func(w http.ResponseWriter, req *http.Request) {
		if req.Header.Get("X-Logan-Cluster-Token") != r.opt.Token {
			http.Error(w, "bad cluster token", http.StatusUnauthorized)
			return
		}
		h(w, req)
	}
}

// decodeJSON reads one JSON document into dst, bounded.
func decodeJSON(w http.ResponseWriter, req *http.Request, dst any, limit int64) bool {
	if err := json.NewDecoder(http.MaxBytesReader(w, req.Body, limit)).Decode(dst); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func (r *Router) handleRegister(w http.ResponseWriter, req *http.Request) {
	var in registerRequest
	if !decodeJSON(w, req, &in, 1<<20) {
		return
	}
	if !workerNameRE.MatchString(in.Name) {
		http.Error(w, fmt.Sprintf("worker name %q is not label-safe (want %s)", in.Name, workerNameRE), http.StatusBadRequest)
		return
	}
	ws := &workerState{
		id: NewID(), name: in.Name, backend: in.Backend, cellsPS: in.CellsPS,
		seen: time.Now(), joined: time.Now(),
	}
	r.mu.Lock()
	// A re-registering worker (restart, missed heartbeats) replaces its
	// previous incarnation; the old ID's leases expire on their own.
	for id, old := range r.workers {
		if old.name == in.Name {
			delete(r.workers, id)
		}
	}
	r.workers[ws.id] = ws
	r.mu.Unlock()
	writeJSON(w, registerResponse{
		WorkerID:    ws.id,
		LeaseTTLMs:  r.opt.LeaseTTL.Milliseconds(),
		HeartbeatMs: (r.opt.WorkerTTL / 3).Milliseconds(),
	})
}

func (r *Router) handleHeartbeat(w http.ResponseWriter, req *http.Request) {
	var in heartbeatRequest
	if !decodeJSON(w, req, &in, 8<<20) {
		return
	}
	r.mu.Lock()
	ws, ok := r.workers[in.WorkerID]
	if ok {
		ws.seen = time.Now()
		if in.CellsPS > 0 {
			ws.cellsPS = in.CellsPS
		}
		if in.Snapshot != nil {
			ws.snapshot = in.Snapshot
		}
	}
	r.mu.Unlock()
	if !ok {
		// Tell the worker to re-register (router restarted, or the
		// worker was declared dead); 410 distinguishes "you are unknown"
		// from a malformed request.
		http.Error(w, "unknown worker", http.StatusGone)
		return
	}
	writeJSON(w, struct{}{})
}

// pollWaitLimit caps a long-poll request.
const pollWaitLimit = 30 * time.Second

func (r *Router) handlePoll(w http.ResponseWriter, req *http.Request) {
	var in struct {
		WorkerID string `json:"workerId"`
		WaitMs   int64  `json:"waitMs"`
	}
	if !decodeJSON(w, req, &in, 1<<20) {
		return
	}
	wait := min(time.Duration(in.WaitMs)*time.Millisecond, pollWaitLimit)
	deadline := time.Now().Add(wait)
	for {
		r.mu.Lock()
		ws, known := r.workers[in.WorkerID]
		if !known {
			r.mu.Unlock()
			http.Error(w, "unknown worker", http.StatusGone)
			return
		}
		ws.seen = time.Now()
		if j, id, lease := r.leaseLocked(ws.name); j != nil {
			payload := j.payload
			ttl := r.opt.LeaseTTL
			r.mu.Unlock()
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set("X-Logan-Job-Id", id)
			w.Header().Set("X-Logan-Lease", lease)
			w.Header().Set("X-Logan-Lease-Ttl-Ms", strconv.FormatInt(ttl.Milliseconds(), 10))
			w.Write(payload)
			return
		}
		wake := r.wake
		closed := r.closed
		r.mu.Unlock()
		remain := time.Until(deadline)
		if closed || remain <= 0 {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		timer := time.NewTimer(remain)
		select {
		case <-wake:
		case <-timer.C:
		case <-req.Context().Done():
			timer.Stop()
			return
		}
		timer.Stop()
	}
}

// leaseLocked pops the next queued job and leases it to the named
// worker. Caller holds mu.
func (r *Router) leaseLocked(workerName string) (*rjob, string, string) {
	for len(r.pending) > 0 {
		id := r.pending[0]
		r.pending = r.pending[1:]
		j, ok := r.jobs[id]
		if !ok || j.state != StateQueued {
			continue // canceled or superseded while queued
		}
		j.state = StateRunning
		j.worker = workerName
		j.leaseID = NewID()
		j.leaseExp = time.Now().Add(r.opt.LeaseTTL)
		if j.started.IsZero() {
			j.started = time.Now()
		}
		return j, id, j.leaseID
	}
	return nil, "", ""
}

// leaseCheckLocked validates that (id, lease) names the current lease.
// It returns the job when valid. Caller holds mu.
func (r *Router) leaseCheckLocked(id, lease string) (*rjob, bool) {
	j, ok := r.jobs[id]
	if !ok || j.leaseID == "" || j.leaseID != lease {
		return j, false
	}
	return j, true
}

func (r *Router) handleExtend(w http.ResponseWriter, req *http.Request) {
	var in extendRequest
	if !decodeJSON(w, req, &in, 1<<20) {
		return
	}
	id := req.PathValue("id")
	r.mu.Lock()
	j, ok := r.leaseCheckLocked(id, in.Lease)
	if !ok {
		r.mu.Unlock()
		r.t.staleLeases.Inc()
		http.Error(w, "stale lease", http.StatusConflict)
		return
	}
	if ws := r.workers[in.WorkerID]; ws != nil {
		ws.seen = time.Now()
	}
	if j.canceled || j.state != StateRunning {
		r.mu.Unlock()
		writeJSON(w, extendResponse{Canceled: true})
		return
	}
	j.leaseExp = time.Now().Add(r.opt.LeaseTTL)
	j.progress = in.Progress
	r.mu.Unlock()
	writeJSON(w, extendResponse{})
}

func (r *Router) handleComplete(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	lease := req.Header.Get("X-Logan-Lease")
	paf, err := io.ReadAll(http.MaxBytesReader(w, req.Body, r.opt.ResultBytes))
	if err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	overlaps, _ := strconv.Atoi(req.Header.Get("X-Logan-Overlaps"))
	reads, _ := strconv.Atoi(req.Header.Get("X-Logan-Reads"))
	cells, _ := strconv.ParseInt(req.Header.Get("X-Logan-Cells"), 10, 64)

	r.mu.Lock()
	j, ok := r.leaseCheckLocked(id, lease)
	if !ok {
		done := j != nil && j.state == StateDone
		r.mu.Unlock()
		if done {
			// The job finished under another lease (or this is a network
			// retry of an accepted completion): idempotent OK — the work
			// must not be reported as failed to a worker that did it.
			writeJSON(w, struct{}{})
			return
		}
		r.t.staleLeases.Inc()
		http.Error(w, "stale lease", http.StatusConflict)
		return
	}
	j.state = StateDone
	j.leaseID = ""
	j.paf = paf
	j.overlaps = overlaps
	j.reads = reads
	j.cells = cells
	j.finished = time.Now()
	if !j.started.IsZero() {
		r.t.avgDuration.ObserveEWMA(j.finished.Sub(j.started).Seconds(), jobDurationAlpha)
	}
	if ws := r.workers[req.Header.Get("X-Logan-Worker-Id")]; ws != nil {
		ws.seen = time.Now()
		ws.done++
	}
	r.resultBytes += int64(len(paf))
	r.finishAccountingLocked(j)
	r.t.completed.Inc()
	r.t.pafBytes.Add(float64(len(paf)))
	r.trimResultsLocked(id)
	r.mu.Unlock()
	writeJSON(w, struct{}{})
}

func (r *Router) handleFail(w http.ResponseWriter, req *http.Request) {
	var in failRequest
	if !decodeJSON(w, req, &in, 1<<20) {
		return
	}
	id := req.PathValue("id")
	r.mu.Lock()
	j, ok := r.leaseCheckLocked(id, in.Lease)
	if !ok {
		r.mu.Unlock()
		r.t.staleLeases.Inc()
		http.Error(w, "stale lease", http.StatusConflict)
		return
	}
	if ws := r.workers[in.WorkerID]; ws != nil {
		ws.seen = time.Now()
		ws.failed++
	}
	if in.Requeue {
		r.requeueLocked(id, j, fmt.Sprintf("released by worker %q: %s", j.worker, in.Error))
	} else {
		j.state = StateFailed
		j.leaseID = ""
		j.err = in.Error
		j.finished = time.Now()
		r.finishAccountingLocked(j)
		r.t.failed.Inc()
	}
	r.mu.Unlock()
	writeJSON(w, struct{}{})
}

// writeJSON renders v with a 200.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

var _ JobStore = (*Router)(nil)
