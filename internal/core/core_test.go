package core

import (
	"math/rand"
	"testing"

	"logan/internal/cuda"
	"logan/internal/perfmodel"
	"logan/internal/seq"
	"logan/internal/xdrop"
)

func testPairs(t *testing.T, n, minLen, maxLen int, seed int64) []seq.Pair {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	return seq.RandPairSet(rng, seq.PairSetOptions{
		N: n, MinLen: minLen, MaxLen: maxLen, ErrorRate: 0.15, SeedLen: 17, FracRelated: 0.8,
	})
}

// TestGPUMatchesSerialXdrop is the reproduction's core correctness claim:
// the simulated-GPU kernel produces bit-identical scores, end positions and
// cell counts to the serial SeqAn-style reference on the same pairs, for
// every X (paper: "equivalent accuracy").
func TestGPUMatchesSerialXdrop(t *testing.T) {
	pairs := testPairs(t, 40, 150, 600, 1)
	dev := cuda.MustV100()
	for _, x := range []int32{0, 5, 20, 100, 1000} {
		cfg := DefaultConfig(x)
		got, err := AlignBatch(dev, pairs, cfg)
		if err != nil {
			t.Fatalf("X=%d: %v", x, err)
		}
		want, _, err := xdrop.ExtendBatch(pairs, cfg.Scoring, x, 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := range pairs {
			g, w := got.Results[i], want[i]
			if g.Score != w.Score {
				t.Fatalf("X=%d pair %d: gpu score %d != cpu %d", x, i, g.Score, w.Score)
			}
			if g.QBegin != w.QBegin || g.QEnd != w.QEnd || g.TBegin != w.TBegin || g.TEnd != w.TEnd {
				t.Fatalf("X=%d pair %d: extents gpu [%d,%d)x[%d,%d) != cpu [%d,%d)x[%d,%d)",
					x, i, g.QBegin, g.QEnd, g.TBegin, g.TEnd, w.QBegin, w.QEnd, w.TBegin, w.TEnd)
			}
			if g.Cells() != w.Cells() {
				t.Fatalf("X=%d pair %d: gpu cells %d != cpu %d", x, i, g.Cells(), w.Cells())
			}
			if g.Left.MaxBand != w.Left.MaxBand || g.Right.MaxBand != w.Right.MaxBand {
				t.Fatalf("X=%d pair %d: band stats diverge", x, i)
			}
		}
	}
}

func TestThreadsForX(t *testing.T) {
	cases := map[int32]int{1: 32, 10: 32, 100: 128, 128: 128, 129: 160, 500: 512, 1000: 1024, 5000: 1024}
	for x, want := range cases {
		if got := ThreadsForX(x); got != want {
			t.Errorf("ThreadsForX(%d) = %d, want %d", x, got, want)
		}
		if got := ThreadsForX(x); got%32 != 0 {
			t.Errorf("ThreadsForX(%d) = %d not warp-aligned", x, got)
		}
	}
}

func TestBandAlloc(t *testing.T) {
	if got := BandAlloc(100, 10000, 0); got != 203+DefaultBandSlack {
		t.Errorf("BandAlloc(100) = %d, want %d", got, 203+DefaultBandSlack)
	}
	if got := BandAlloc(5000, 300, 0); got != 302 {
		t.Errorf("BandAlloc capped by sequence = %d, want 302", got)
	}
	if got := BandAlloc(0, 0, -1000); got < 4 {
		t.Errorf("BandAlloc floor = %d", got)
	}
}

func TestBandStaysWithinReservation(t *testing.T) {
	// With the default slack, observed bands stay inside the HBM
	// reservation for realistic workloads (no overflow reallocation).
	pairs := testPairs(t, 30, 100, 800, 2)
	dev := cuda.MustV100()
	for _, x := range []int32{5, 50, 300} {
		res, err := AlignBatch(dev, pairs, DefaultConfig(x))
		if err != nil {
			t.Fatal(err)
		}
		alloc := BandAlloc(x, 800, 0)
		for i, r := range res.Results {
			if r.Left.MaxBand > alloc || r.Right.MaxBand > alloc {
				t.Fatalf("X=%d pair %d: band %d/%d exceeds reservation %d",
					x, i, r.Left.MaxBand, r.Right.MaxBand, alloc)
			}
		}
	}
}

func TestBandOverflowIsGraceful(t *testing.T) {
	// Force a tiny reservation: the kernel must grow host-side and still
	// produce bit-identical scores.
	pairs := testPairs(t, 10, 200, 400, 21)
	dev := cuda.MustV100()
	cfg := DefaultConfig(100)
	cfg.BandAllocSlack = -195 // reservation of 2X+3-195 = 8 cells
	res, err := AlignBatch(dev, pairs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, _, _ := xdrop.ExtendBatch(pairs, cfg.Scoring, cfg.X, 0)
	for i := range pairs {
		if res.Results[i].Score != want[i].Score {
			t.Fatalf("overflowed band changed score at pair %d: %d != %d",
				i, res.Results[i].Score, want[i].Score)
		}
	}
}

func TestAlignBatchValidation(t *testing.T) {
	dev := cuda.MustV100()
	if _, err := AlignBatch(dev, nil, DefaultConfig(10)); err != nil {
		t.Fatalf("empty batch errored: %v", err)
	}
	bad := []seq.Pair{{Query: seq.MustNew("ACGT"), Target: seq.MustNew("ACGT"), SeedQPos: 2, SeedTPos: 0, SeedLen: 4}}
	if _, err := AlignBatch(dev, bad, DefaultConfig(10)); err == nil {
		t.Fatal("accepted out-of-range seed")
	}
	cfg := DefaultConfig(10)
	cfg.Scoring.Match = 0
	if _, err := AlignBatch(dev, testPairs(t, 1, 50, 60, 3), cfg); err == nil {
		t.Fatal("accepted invalid scoring")
	}
	if _, err := AlignBatch(dev, testPairs(t, 1, 50, 60, 3), Config{Scoring: xdrop.DefaultScoring(), X: -1}); err == nil {
		t.Fatal("accepted negative X")
	}
}

func TestMemoryChunking(t *testing.T) {
	// Shrink HBM so the batch cannot fit at once; results must still be
	// identical and the chunk count > 1.
	pairs := testPairs(t, 24, 200, 400, 4)
	spec := cuda.TeslaV100()
	spec.HBMBytes = 48 << 10 // 48 KB forces several chunks
	dev, err := cuda.NewDevice(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := AlignBatch(dev, pairs, DefaultConfig(50))
	if err != nil {
		t.Fatal(err)
	}
	if res.Chunks < 2 {
		t.Fatalf("expected multiple chunks, got %d", res.Chunks)
	}
	want, _, _ := xdrop.ExtendBatch(pairs, xdrop.DefaultScoring(), 50, 0)
	for i := range pairs {
		if res.Results[i].Score != want[i].Score {
			t.Fatalf("chunked pair %d: %d != %d", i, res.Results[i].Score, want[i].Score)
		}
	}
	if dev.Allocated() != 0 {
		t.Fatalf("leaked %d bytes of device memory", dev.Allocated())
	}
}

func TestMemoryTooSmall(t *testing.T) {
	spec := cuda.TeslaV100()
	spec.HBMBytes = 1 << 10
	dev, _ := cuda.NewDevice(spec)
	if _, err := AlignBatch(dev, testPairs(t, 2, 300, 400, 5), DefaultConfig(100)); err == nil {
		t.Fatal("expected failure when a single pair cannot fit")
	}
}

func TestDeviceTimeAndStats(t *testing.T) {
	pairs := testPairs(t, 16, 150, 400, 6)
	dev := cuda.MustV100()
	dev.Timer = perfmodel.NewV100Timer()
	res, err := AlignBatch(dev, pairs, DefaultConfig(100))
	if err != nil {
		t.Fatal(err)
	}
	if res.DeviceTime <= 0 {
		t.Fatal("modeled device time is zero with a timer installed")
	}
	if res.Launches != 2 || res.Chunks != 1 {
		t.Fatalf("launches=%d chunks=%d, want 2/1", res.Launches, res.Chunks)
	}
	if res.Stats.WarpInstrs == 0 || res.Stats.Reductions == 0 || res.Stats.Iterations == 0 {
		t.Fatalf("kernel stats incomplete: %+v", res.Stats)
	}
	if res.TransferBytes == 0 {
		t.Fatal("no transfer bytes accounted")
	}
	if res.Cells == 0 {
		t.Fatal("no cells accounted")
	}
	// Warp fill should be meaningfully below 1 at X=100 (band narrower
	// than a full warp multiple at the edges).
	if f := res.Stats.Iter.MeanWarpFill(); f <= 0 || f > 1 {
		t.Fatalf("warp fill %v outside (0,1]", f)
	}
}

func TestSchedulingEffectOnStats(t *testing.T) {
	// Oversized blocks must not change results but should waste issue
	// slots (lower lane utilization == same lane ops, same warp instrs?
	// no: more threads per segment means fewer segments but same ceil
	// behaviour; the observable contract is identical results).
	pairs := testPairs(t, 8, 150, 300, 7)
	dev := cuda.MustV100()
	cfgAuto := DefaultConfig(20)
	cfgBig := DefaultConfig(20)
	cfgBig.ThreadsPerBlock = 1024
	a, err := AlignBatch(dev, pairs, cfgAuto)
	if err != nil {
		t.Fatal(err)
	}
	b, err := AlignBatch(dev, pairs, cfgBig)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pairs {
		if a.Results[i].Score != b.Results[i].Score {
			t.Fatalf("thread count changed scores at pair %d", i)
		}
	}
	if a.Stats.Block != ThreadsForX(20) || b.Stats.Block != 1024 {
		t.Fatalf("block sizes: %d, %d", a.Stats.Block, b.Stats.Block)
	}
}

func TestUnrelatedPairsTerminateCheaply(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	unrelated := seq.RandPairSet(rng, seq.PairSetOptions{
		N: 10, MinLen: 2000, MaxLen: 3000, ErrorRate: 0, SeedLen: 17, FracRelated: 0.001,
	})
	related := seq.RandPairSet(rng, seq.PairSetOptions{
		N: 10, MinLen: 2000, MaxLen: 3000, ErrorRate: 0.15, SeedLen: 17,
	})
	dev := cuda.MustV100()
	// The paper's claim: spurious candidate pairs are eliminated without
	// paying the quadratic cost. Compare explored cells against the full
	// m*n matrices.
	ru, err := AlignBatch(dev, unrelated, DefaultConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	var full int64
	for _, p := range unrelated {
		full += int64(len(p.Query)) * int64(len(p.Target))
	}
	if ru.Cells > full/20 {
		t.Fatalf("unrelated pairs explored %d cells, want << %d (full matrices)", ru.Cells, full)
	}
	// Related pairs must reach deep into the matrix: their per-pair
	// anti-diagonal count should far exceed the unrelated pairs'.
	rr, err := AlignBatch(dev, related, DefaultConfig(10))
	if err != nil {
		t.Fatal(err)
	}
	var ruDiags, rrDiags int64
	for i := range ru.Results {
		ruDiags += int64(ru.Results[i].Left.AntiDiags + ru.Results[i].Right.AntiDiags)
	}
	for i := range rr.Results {
		rrDiags += int64(rr.Results[i].Left.AntiDiags + rr.Results[i].Right.AntiDiags)
	}
	if rrDiags <= ruDiags {
		t.Fatalf("related pairs advanced %d anti-diagonals vs %d for unrelated; expected deeper progress", rrDiags, ruDiags)
	}
}

func BenchmarkAlignBatchGPU(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	pairs := seq.RandPairSet(rng, seq.PairSetOptions{N: 32, MinLen: 1000, MaxLen: 2000, ErrorRate: 0.15, SeedLen: 17})
	dev := cuda.MustV100()
	dev.Timer = perfmodel.NewV100Timer()
	cfg := DefaultConfig(100)
	b.ResetTimer()
	var cells int64
	for i := 0; i < b.N; i++ {
		res, err := AlignBatch(dev, pairs, cfg)
		if err != nil {
			b.Fatal(err)
		}
		cells += res.Cells
	}
	b.ReportMetric(float64(cells)/b.Elapsed().Seconds()/1e9, "hostGCUPS")
}
