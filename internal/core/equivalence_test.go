package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"logan/internal/cuda"
	"logan/internal/seq"
	"logan/internal/xdrop"
)

// TestGPUEquivalenceRandomScoring is the strongest equivalence property:
// for arbitrary valid scoring schemes, X values, lengths and error rates,
// the simulated-GPU kernel must match the serial reference exactly.
func TestGPUEquivalenceRandomScoring(t *testing.T) {
	dev := cuda.MustV100()
	f := func(seed int64, matchRaw, misRaw, gapRaw, xRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		sc := xdrop.Scoring{
			Match:    int32(matchRaw%4) + 1,
			Mismatch: -(int32(misRaw%4) + 1),
			Gap:      -(int32(gapRaw%4) + 1),
		}
		x := int32(xRaw)
		u := uint64(seed)
		pairs := seq.RandPairSet(rng, seq.PairSetOptions{
			N: 3, MinLen: 40, MaxLen: 250,
			ErrorRate: float64(u%30) / 100, SeedLen: 9,
			SeedPosFrac: 0.1 + float64(u%80)/100,
		})
		cfg := Config{Scoring: sc, X: x}
		gpu, err := AlignBatch(dev, pairs, cfg)
		if err != nil {
			return false
		}
		cpu, _, err := xdrop.ExtendBatch(pairs, sc, x, 1)
		if err != nil {
			return false
		}
		for i := range pairs {
			g, c := gpu.Results[i], cpu[i]
			if g.Score != c.Score || g.QEnd != c.QEnd || g.TEnd != c.TEnd ||
				g.Cells() != c.Cells() || g.Left.AntiDiags != c.Left.AntiDiags {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestGPUEquivalenceExtremeShapes covers the degenerate geometries:
// seeds flush against either end, single-base extensions, and wildly
// asymmetric pair lengths.
func TestGPUEquivalenceExtremeShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	dev := cuda.MustV100()
	sc := xdrop.DefaultScoring()
	mk := func(qLen, tLen, qPos, tPos, seedLen int) seq.Pair {
		q := seq.RandSeq(rng, qLen)
		tt := seq.RandSeq(rng, tLen)
		copy(tt[tPos:tPos+seedLen], q[qPos:qPos+seedLen])
		return seq.Pair{Query: q, Target: tt, SeedQPos: qPos, SeedTPos: tPos, SeedLen: seedLen}
	}
	pairs := []seq.Pair{
		mk(100, 100, 0, 0, 10),    // seed at both starts
		mk(100, 100, 90, 90, 10),  // seed at both ends
		mk(100, 100, 0, 90, 10),   // opposite corners
		mk(11, 2000, 0, 1000, 11), // whole query is the seed
		mk(2000, 12, 1000, 0, 12), // whole target is the seed
		mk(1500, 30, 700, 10, 15), // extreme asymmetry
	}
	for _, x := range []int32{0, 1, 7, 100} {
		gpu, err := AlignBatch(dev, pairs, Config{Scoring: sc, X: x})
		if err != nil {
			t.Fatalf("X=%d: %v", x, err)
		}
		cpu, _, err := xdrop.ExtendBatch(pairs, sc, x, 1)
		if err != nil {
			t.Fatal(err)
		}
		for i := range pairs {
			if gpu.Results[i].Score != cpu[i].Score {
				t.Fatalf("X=%d pair %d: gpu %d != cpu %d", x, i, gpu.Results[i].Score, cpu[i].Score)
			}
			if gpu.Results[i].QBegin != cpu[i].QBegin || gpu.Results[i].TEnd != cpu[i].TEnd {
				t.Fatalf("X=%d pair %d: extents differ", x, i)
			}
		}
	}
}

// TestAblationVariantsPreserveScores: the design-ablation switches change
// only the execution accounting, never the algorithm.
func TestAblationVariantsPreserveScores(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pairs := seq.RandPairSet(rng, seq.PairSetOptions{
		N: 12, MinLen: 150, MaxLen: 500, ErrorRate: 0.15, SeedLen: 17, SeedPosFrac: 0.5,
	})
	dev := cuda.MustV100()
	base, err := AlignBatch(dev, pairs, DefaultConfig(60))
	if err != nil {
		t.Fatal(err)
	}
	for _, variant := range []func(*Config){
		func(c *Config) { c.SharedMemAntidiags = true },
		func(c *Config) { c.NoQueryReversal = true },
		func(c *Config) { c.ThreadsPerBlock = 1024 },
		func(c *Config) { c.ThreadsPerBlock = 32 },
	} {
		cfg := DefaultConfig(60)
		variant(&cfg)
		res, err := AlignBatch(dev, pairs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := range pairs {
			if res.Results[i].Score != base.Results[i].Score {
				t.Fatalf("variant %+v changed score at pair %d", cfg, i)
			}
		}
	}
	// The shared-memory variant must actually reduce DRAM-bound reuse
	// traffic and collapse occupancy.
	cfg := DefaultConfig(60)
	cfg.SharedMemAntidiags = true
	shared, err := AlignBatch(dev, pairs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if shared.Stats.ReuseReadBytes >= base.Stats.ReuseReadBytes {
		t.Fatal("shared-memory variant did not reduce global reuse traffic")
	}
	if shared.Stats.Occupancy.BlocksPerSM >= base.Stats.Occupancy.BlocksPerSM {
		t.Fatalf("shared-memory occupancy %d not below HBM variant %d",
			shared.Stats.Occupancy.BlocksPerSM, base.Stats.Occupancy.BlocksPerSM)
	}
	// The no-reversal variant must inflate streaming traffic.
	cfg = DefaultConfig(60)
	cfg.NoQueryReversal = true
	norev, err := AlignBatch(dev, pairs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if norev.Stats.StreamReadBytes <= base.Stats.StreamReadBytes {
		t.Fatal("uncoalesced variant did not inflate streaming traffic")
	}
}
