package core

import (
	"math"

	"logan/internal/cuda"
	"logan/internal/xdrop"
)

const negInf int32 = math.MinInt32 / 2

// extResult is the device-side outcome of one extension (one block).
type extResult struct {
	score      int32
	qEnd, tEnd int32
	cells      int64
	antiDiags  int32
	maxBand    int32
	sumBand    int64
	overflow   bool // band outgrew the HBM reservation (should not happen)
}

// extKernelOpts carries the design-ablation switches into the kernel.
type extKernelOpts struct {
	sharedAntidiags bool // anti-diagonals in shared memory, not HBM
	uncoalescedSeq  bool // sequence reads against the memory direction
}

// extendOnBlock runs one X-drop extension inside a simulated GPU block,
// writing the rolling anti-diagonals into the block's HBM scratch region
// (three buffers of bandAlloc cells each). The DP is semantically identical
// to xdrop.Extend; what differs is the execution shape: cells are updated
// in segments of blockDim lanes (paper Fig. 3), the anti-diagonal maximum
// comes from an in-warp reduction (Alg. 2), and every step is accounted on
// the BlockCtx.
//
// q and t are raw base bytes; for left extensions the caller has already
// reversed them (paper Figs. 5-6), which is also why every sequence read
// here is coalesced (unless the ablation switch says otherwise).
func extendOnBlock(b *cuda.BlockCtx, q, t []byte, sc xdrop.Scoring, x int32, scratch []int32, bandAlloc int, opts extKernelOpts) extResult {
	res := extResult{}
	m, n := len(q), len(t)
	if m == 0 || n == 0 || x < 0 {
		return res
	}

	// Three rolling anti-diagonal buffers carved from the block's HBM
	// scratch region. base*: the i-index stored at region offset 0.
	// v*lo/v*hi: the valid (un-pruned) i range; empty when vlo > vhi.
	region := [3][]int32{}
	if len(scratch) >= 3*bandAlloc {
		region[0] = scratch[0:bandAlloc]
		region[1] = scratch[bandAlloc : 2*bandAlloc]
		region[2] = scratch[2*bandAlloc : 3*bandAlloc]
	} else {
		// Defensive fallback; flagged so tests catch sizing bugs.
		res.overflow = true
		region[0] = make([]int32, bandAlloc)
		region[1] = make([]int32, bandAlloc)
		region[2] = make([]int32, bandAlloc)
	}
	cur, prev, prev2 := 0, 1, 2 // rotating region indices

	// Anti-diagonal 0: S(0,0) = 0.
	region[prev][0] = 0
	base2, v2lo, v2hi := 0, 0, 0
	base3, v3lo, v3hi := 0, 0, -1 // empty
	best := int32(0)
	bestI, bestJ := int32(0), int32(0)
	res.antiDiags = 1
	res.cells = 1
	res.sumBand = 1
	res.maxBand = 1

	// Compulsory sequence traffic: each block streams its pair once.
	b.GlobalRead(cuda.TrafficStream, int64(m+n), true)

	lo, hi := 0, 1
	threads := b.Threads()
	for d := 1; d <= m+n; d++ {
		if lo < d-n {
			lo = d - n
		}
		if mh := min(d, m); hi > mh {
			hi = mh
		}
		if lo > hi {
			break
		}
		width := hi - lo + 1
		if width > len(region[cur]) {
			// Band outgrew its reservation: grow host-side and flag.
			res.overflow = true
			region[cur] = make([]int32, width)
		}
		a1 := region[cur][:width]
		a2 := region[prev]
		a3 := region[prev2]
		threshold := best - x

		newBest := best
		newBI, newBJ := bestI, bestJ
		for i := lo; i <= hi; i++ {
			j := d - i
			s := negInf
			if i >= 1 && j >= 1 && i-1 >= v3lo && i-1 <= v3hi {
				p := a3[i-1-base3]
				if p > negInf {
					if q[i-1] == t[j-1] {
						s = p + sc.Match
					} else {
						s = p + sc.Mismatch
					}
				}
			}
			g := negInf
			if j >= 1 && i >= v2lo && i <= v2hi {
				g = a2[i-base2]
			}
			if i >= 1 && i-1 >= v2lo && i-1 <= v2hi {
				if v := a2[i-1-base2]; v > g {
					g = v
				}
			}
			if g > negInf && g+sc.Gap > s {
				s = g + sc.Gap
			}
			if s < threshold {
				s = negInf
			} else if s > newBest {
				newBest = s
				newBI, newBJ = int32(i), int32(j)
			}
			a1[i-lo] = s
		}

		// Accounting: segment sweeps (Fig. 3), rolling-buffer traffic,
		// the Alg. 2 reduction, and the barrier. Traffic is charged per
		// segment: each segment issues one dependent round of global
		// accesses (anti-diagonal reads, sequence window, result write),
		// which is what exposes memory latency when occupancy cannot
		// hide it — the single-thread row of Table I.
		for off := 0; off < width; off += threads {
			active := min(threads, width-off)
			b.Step(active, CellOps)
			if !opts.sharedAntidiags {
				b.GlobalRead(cuda.TrafficReuse, int64(8*active), true)  // a2 twice, a3 once (amortized)
				b.GlobalWrite(cuda.TrafficReuse, int64(4*active), true) // a1
			}
			if opts.uncoalescedSeq {
				// Backward reads fetch one 32B sector per lane; sector
				// fetches have no spatial reuse for L2 to exploit, so
				// they count as streaming traffic (the Fig. 6 penalty).
				b.GlobalRead(cuda.TrafficStream, int64(2*active), false)
			} else {
				b.GlobalRead(cuda.TrafficReuse, int64(2*active), true) // sequence windows
			}
		}
		b.ReduceMax32(a1)
		b.Sync()

		res.cells += int64(width)
		res.sumBand += int64(width)
		res.antiDiags++
		if int32(width) > res.maxBand {
			res.maxBand = int32(width)
		}
		best = newBest
		bestI, bestJ = newBI, newBJ

		// Band trim (Alg. 1 lines 10-15).
		first, last := 0, width-1
		for first <= last && a1[first] == negInf {
			first++
		}
		for last >= first && a1[last] == negInf {
			last--
		}
		if first > last {
			break // X-drop termination
		}

		// Rotate: current becomes previous; the old prev2 region is
		// overwritten next iteration.
		base3, v3lo, v3hi = base2, v2lo, v2hi
		base2, v2lo, v2hi = lo, lo+first, lo+last
		prev2, prev, cur = prev, cur, prev2
		lo, hi = v2lo, v2hi+1
	}

	footprint := 2 * int64(res.maxBand) // sequence windows
	if !opts.sharedAntidiags {
		footprint += int64(3 * 4 * int(res.maxBand))
	}
	b.DeclareReuseFootprint(footprint)
	res.score = best
	res.qEnd, res.tEnd = bestI, bestJ
	return res
}
