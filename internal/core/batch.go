package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"logan/internal/cuda"
	"logan/internal/seq"
	"logan/internal/xdrop"
)

// ErrUnsupportedScheme reports a non-linear scoring mode submitted to the
// GPU kernel. The simulated device code reproduces the paper's kernel,
// which hard-wires linear DNA scoring (§VIII names protein alignment as
// future work); affine and substitution-matrix batches must run on the
// CPU engine, which the hybrid scheduler arranges automatically.
var ErrUnsupportedScheme = errors.New("core: scoring scheme not supported by the GPU kernel (linear DNA only; affine and matrix modes run on the CPU engine)")

// BatchResult is the outcome of aligning a batch on one simulated GPU.
type BatchResult struct {
	// Results are positionally aligned with the input pairs and carry the
	// same structure the CPU baseline produces — scores are bit-identical
	// to xdrop.ExtendBatch on the same input.
	Results []xdrop.SeedResult
	// Stats merges the accounting of every kernel launch in the batch.
	Stats cuda.KernelStats
	// Cells is the total DP cells updated on the device.
	Cells int64
	// DeviceTime is the modeled GPU-side time: transfers and the two
	// extension-stream kernels composed on the device timeline.
	DeviceTime time.Duration
	// TransferBytes counts host<->device traffic.
	TransferBytes int64
	// Launches is the number of kernel launches (2 per memory chunk).
	Launches int
	// Chunks is how many sub-batches the HBM capacity forced.
	Chunks int
}

// extension field layout in the device result buffer.
const extFields = 8

// AlignBatch aligns all pairs on the device with the LOGAN kernel:
// seed-split into left/right extension tasks, sequences staged into device
// memory, the two extension grids launched on separate streams (paper
// §IV-B), and results collected back. If the batch does not fit device
// memory it is processed in chunks, as LOGAN's host code does for the
// C. elegans-scale workloads.
func AlignBatch(dev *cuda.Device, pairs []seq.Pair, cfg Config) (BatchResult, error) {
	return AlignBatchContext(context.Background(), dev, pairs, cfg)
}

// AlignBatchContext is AlignBatch under a context: a canceled ctx stops
// the batch at the next memory-chunk boundary (the kernel itself is not
// interruptible, matching real device launches) and returns the context's
// error.
func AlignBatchContext(ctx context.Context, dev *cuda.Device, pairs []seq.Pair, cfg Config) (BatchResult, error) {
	out := BatchResult{}
	if cfg.Mode != xdrop.SchemeLinear {
		return out, fmt.Errorf("%w (got %v)", ErrUnsupportedScheme, cfg.Mode)
	}
	if err := cfg.Scoring.Validate(); err != nil {
		return out, err
	}
	if cfg.X < 0 {
		return out, fmt.Errorf("core: negative X %d", cfg.X)
	}
	if len(pairs) == 0 {
		return out, nil
	}
	for i := range pairs {
		p := &pairs[i]
		// SeedQPos > len-SeedLen rather than SeedQPos+SeedLen > len: the
		// sum can overflow for adversarial positions, which would pass the
		// check and panic in the kernel.
		if p.SeedQPos < 0 || p.SeedTPos < 0 || p.SeedLen <= 0 ||
			p.SeedQPos > len(p.Query)-p.SeedLen || p.SeedTPos > len(p.Target)-p.SeedLen {
			return out, fmt.Errorf("core: pair %d: seed (%d,%d,len %d) outside sequences (%d,%d)",
				i, p.SeedQPos, p.SeedTPos, p.SeedLen, len(p.Query), len(p.Target))
		}
	}

	threads := cfg.ThreadsPerBlock
	if threads <= 0 {
		threads = ThreadsForX(cfg.X)
	}

	out.Results = make([]xdrop.SeedResult, len(pairs))
	dev.ResetTimeline()
	left := dev.NewStream()
	right := dev.NewStream()

	// Per-pair device footprint: staged sequences + 3 anti-diagonal
	// buffers per extension + the result records.
	maxExtLen := 0
	var maxPairBytes int64
	for i := range pairs {
		p := &pairs[i]
		for _, l := range []int{p.SeedQPos, p.SeedTPos, len(p.Query) - p.SeedQPos - p.SeedLen, len(p.Target) - p.SeedTPos - p.SeedLen} {
			if l > maxExtLen {
				maxExtLen = l
			}
		}
		if b := int64(len(p.Query) + len(p.Target)); b > maxPairBytes {
			maxPairBytes = b
		}
	}
	bandAlloc := BandAlloc(cfg.X, maxExtLen, cfg.BandAllocSlack)
	// Conservative per-pair footprint (worst pair), so a chunk sized from
	// it always fits the remaining capacity.
	perPair := maxPairBytes + // staged bases
		2*3*int64(bandAlloc)*4 + // anti-diagonals, both extensions
		2*extFields*8 // result records
	free := dev.Spec.HBMBytes - dev.Allocated()
	chunkPairs := int(free * 9 / 10 / max64(perPair, 1))
	if chunkPairs < 1 {
		return out, fmt.Errorf("core: device memory cannot hold a single pair (footprint %d bytes)", perPair)
	}

	for start := 0; start < len(pairs); start += chunkPairs {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return out, err
			}
		}
		end := min(start+chunkPairs, len(pairs))
		if err := alignChunk(dev, left, right, pairs[start:end], out.Results[start:end], cfg, threads, bandAlloc, &out); err != nil {
			return out, err
		}
		out.Chunks++
	}
	out.DeviceTime = cuda.SyncAll(left, right)
	for i := range out.Results {
		out.Cells += out.Results[i].Cells()
	}
	return out, nil
}

// hostScratch is the reusable host-side staging of one extension side:
// the sequence arena, its offset tables and the result records. Pooled so
// that repeated batches on a long-lived device stage without allocating.
type hostScratch struct {
	arena                  []byte
	qOff, qLen, tOff, tLen []int32
	hostRes                []int64
	exts                   []extResult
}

var scratchPool = sync.Pool{New: func() any { return new(hostScratch) }}

// growInt32 returns *p resized to n, reusing the backing array when wide
// enough.
func growInt32(p *[]int32, n int) []int32 {
	if cap(*p) < n {
		*p = make([]int32, n)
	}
	return (*p)[:n]
}

// alignChunk stages one memory-sized chunk and runs the two extension
// grids.
func alignChunk(dev *cuda.Device, left, right *cuda.Stream, pairs []seq.Pair, results []xdrop.SeedResult,
	cfg Config, threads, bandAlloc int, out *BatchResult) error {
	n := len(pairs)

	// Host-side staging: left extensions reversed (Figs. 5-6), then right
	// extensions, all in one arena per side with offset tables.
	stage := func(sc *hostScratch, leftSide bool) {
		sc.qOff = growInt32(&sc.qOff, n)
		sc.qLen = growInt32(&sc.qLen, n)
		sc.tOff = growInt32(&sc.tOff, n)
		sc.tLen = growInt32(&sc.tLen, n)
		total := 0
		for i := range pairs {
			p := &pairs[i]
			if leftSide {
				total += p.SeedQPos + p.SeedTPos
			} else {
				total += len(p.Query) + len(p.Target) - 2*p.SeedLen - p.SeedQPos - p.SeedTPos
			}
		}
		if cap(sc.arena) < total {
			sc.arena = make([]byte, 0, total)
		}
		arena := sc.arena[:0]
		for i := range pairs {
			p := &pairs[i]
			var q, t seq.Seq
			if leftSide {
				q = p.Query.Sub(0, p.SeedQPos)
				t = p.Target.Sub(0, p.SeedTPos)
			} else {
				q = p.Query.Sub(p.SeedQPos+p.SeedLen, len(p.Query))
				t = p.Target.Sub(p.SeedTPos+p.SeedLen, len(p.Target))
			}
			sc.qOff[i], sc.qLen[i] = int32(len(arena)), int32(len(q))
			if leftSide {
				arena = seq.AppendReverse(arena, q)
			} else {
				arena = append(arena, q...)
			}
			sc.tOff[i], sc.tLen[i] = int32(len(arena)), int32(len(t))
			if leftSide {
				arena = seq.AppendReverse(arena, t)
			} else {
				arena = append(arena, t...)
			}
		}
		sc.arena = arena
	}

	runSide := func(sc *hostScratch, stream *cuda.Stream, leftSide bool) error {
		stage(sc, leftSide)
		arena, off := sc.arena, sc
		name := "logan-right-ext"
		if leftSide {
			name = "logan-left-ext"
		}
		opts := extKernelOpts{
			sharedAntidiags: cfg.SharedMemAntidiags,
			// Without the Fig. 6 reversal, the left extension's streams
			// run against the memory direction.
			uncoalescedSeq: cfg.NoQueryReversal && leftSide,
		}
		sharedBytes := 0
		if cfg.SharedMemAntidiags {
			// Worst-case per-block reservation (§IV-B): collapses SM
			// residency to one block.
			sharedBytes = 60 << 10
		}
		seqBuf, err := cuda.Alloc[byte](dev, max(len(arena), 1))
		if err != nil {
			return fmt.Errorf("core: %s sequences: %w", name, err)
		}
		defer seqBuf.Free()
		scratch, err := cuda.Alloc[int32](dev, n*3*bandAlloc)
		if err != nil {
			return fmt.Errorf("core: %s anti-diagonals: %w", name, err)
		}
		defer scratch.Free()
		resBuf, err := cuda.Alloc[int64](dev, n*extFields)
		if err != nil {
			return fmt.Errorf("core: %s results: %w", name, err)
		}
		defer resBuf.Free()

		cuda.MemcpyHtoD(stream, seqBuf, arena)
		out.TransferBytes += int64(len(arena))

		seqData := seqBuf.Data()
		scratchData := scratch.Data()
		resData := resBuf.Data()
		stats, err := stream.LaunchAsync(cuda.LaunchConfig{
			Name: name, Grid: n, Block: threads, Shared: sharedBytes,
		}, func(b *cuda.BlockCtx) {
			i := b.BlockIdx
			q := seqData[off.qOff[i] : off.qOff[i]+off.qLen[i]]
			t := seqData[off.tOff[i] : off.tOff[i]+off.tLen[i]]
			r := extendOnBlock(b, q, t, cfg.Scoring, cfg.X, scratchData[i*3*bandAlloc:(i+1)*3*bandAlloc], bandAlloc, opts)
			rec := resData[i*extFields : (i+1)*extFields]
			rec[0] = int64(r.score)
			rec[1] = int64(r.qEnd)
			rec[2] = int64(r.tEnd)
			rec[3] = r.cells
			rec[4] = int64(r.antiDiags)
			rec[5] = int64(r.maxBand)
			rec[6] = r.sumBand
			if r.overflow {
				rec[7] = 1
			}
			b.GlobalWrite(cuda.TrafficStream, extFields*8, true)
		})
		if err != nil {
			return err
		}
		out.Stats.Accumulate(stats)
		out.Launches++

		if cap(sc.hostRes) < n*extFields {
			sc.hostRes = make([]int64, n*extFields)
		}
		hostRes := sc.hostRes[:n*extFields]
		cuda.MemcpyDtoH(stream, hostRes, resBuf)
		out.TransferBytes += int64(n * extFields * 8)

		if cap(sc.exts) < n {
			sc.exts = make([]extResult, n)
		}
		exts := sc.exts[:n]
		for i := range exts {
			rec := hostRes[i*extFields : (i+1)*extFields]
			exts[i] = extResult{
				score: int32(rec[0]), qEnd: int32(rec[1]), tEnd: int32(rec[2]),
				cells: rec[3], antiDiags: int32(rec[4]), maxBand: int32(rec[5]),
				sumBand: rec[6], overflow: rec[7] != 0,
			}
		}
		sc.exts = exts
		return nil
	}

	// The two sides run on their own streams; kernels contend for the
	// compute engine in the model, transfers for the copy engine. Each
	// side's staging scratch is pooled and returned once the results have
	// been merged.
	ls := scratchPool.Get().(*hostScratch)
	rs := scratchPool.Get().(*hostScratch)
	defer scratchPool.Put(ls)
	defer scratchPool.Put(rs)
	if err := runSide(ls, left, true); err != nil {
		return err
	}
	if err := runSide(rs, right, false); err != nil {
		return err
	}

	for i := range pairs {
		p := &pairs[i]
		l, r := ls.exts[i], rs.exts[i]
		sr := xdrop.SeedResult{
			Left:    toXdropResult(l),
			Right:   toXdropResult(r),
			SeedLen: p.SeedLen,
		}
		sr.Score = sr.Left.Score + sr.Right.Score + int32(p.SeedLen)*cfg.Scoring.Match
		sr.QBegin = p.SeedQPos - sr.Left.QueryEnd
		sr.TBegin = p.SeedTPos - sr.Left.TargetEnd
		sr.QEnd = p.SeedQPos + p.SeedLen + sr.Right.QueryEnd
		sr.TEnd = p.SeedTPos + p.SeedLen + sr.Right.TargetEnd
		results[i] = sr
	}
	return nil
}

func toXdropResult(e extResult) xdrop.Result {
	return xdrop.Result{
		Score:     e.score,
		QueryEnd:  int(e.qEnd),
		TargetEnd: int(e.tEnd),
		Cells:     e.cells,
		AntiDiags: int(e.antiDiags),
		MaxBand:   int(e.maxBand),
		SumBand:   e.sumBand,
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
