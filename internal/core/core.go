// Package core is LOGAN itself: the paper's GPU X-drop alignment kernel and
// its host-side batching pipeline, implemented on the simulated CUDA device
// of internal/cuda.
//
// The design follows §IV of the paper exactly:
//
//   - Intra-sequence parallelism: each anti-diagonal is computed by the
//     block's threads in segments of blockDim lanes (Fig. 3), the
//     anti-diagonal maximum is found with an in-warp parallel reduction
//     (Alg. 2), and only three rolling anti-diagonals are kept.
//   - Inter-sequence parallelism: one GPU block per alignment extension
//     (Fig. 4); the grid size is the batch size.
//   - The three anti-diagonal buffers live in device HBM, not shared
//     memory, so SM residency is not capped at one block (§IV-B).
//   - Each pair is split at the seed into a left extension (both prefixes
//     reversed, which also linearizes memory access — Figs. 5 and 6) and a
//     right extension, dispatched on two device streams.
//   - The number of threads per block is scheduled from X, since the band
//     width is proportional to X (§IV-B).
//
// Scores are bit-identical to the serial reference internal/xdrop — the
// reproduction's "equivalent accuracy" guarantee — and every launch's work
// is counted by the simulator for the performance model.
package core

import (
	"logan/internal/cuda"
	"logan/internal/xdrop"
)

// CellOps is the INT32 lane-operation cost of one DP cell update in the
// kernel inner loop (Alg. 2): two sequence loads, the comparison, the
// three-way max with two additions, the X-drop test, and the store.
// Together with the per-anti-diagonal reduction and partial-warp fill
// this yields ~35-40 effective lane-ops per cell, which puts the V100
// compute ceiling at the paper's measured ~181 GCUPS (calibrated against
// Table III's X=5000 row; see EXPERIMENTS.md).
const CellOps = 22

// Config parameterizes a LOGAN batch run.
type Config struct {
	// Scoring is the linear scheme, live when Mode is SchemeLinear (the
	// zero value) — the only family the GPU kernel implements, exactly as
	// in the paper's device code.
	Scoring xdrop.Scoring
	// Mode selects the scoring family. Non-linear modes (SchemeAffine,
	// SchemeMatrix) are CPU-engine-only: the paper names protein support
	// as future work (§VIII) and its kernel hard-wires linear DNA
	// scoring, so AlignBatch rejects them with ErrUnsupportedScheme and
	// the hybrid scheduler routes them to CPU shards.
	//
	// Mode/Affine/Matrix are deliberately flat fields rather than an
	// embedded xdrop.Scheme: the zero value must keep meaning "linear
	// with the Scoring field" so the many internal Config{Scoring: …}
	// literals (bench, kernel and scheduler code) stay valid. The cost is
	// that a new family must extend both this struct and xdrop.Scheme;
	// Scheme() passes unknown Modes through so a missed arm fails
	// validation instead of silently running linear.
	Mode xdrop.SchemeKind
	// Affine is the Gotoh scheme, live when Mode is SchemeAffine.
	Affine xdrop.AffineScoring
	// Matrix is the substitution matrix, live when Mode is SchemeMatrix.
	Matrix *xdrop.Matrix
	X      int32
	// ThreadsPerBlock overrides the X-proportional schedule when > 0.
	ThreadsPerBlock int
	// BandAllocSlack pads the per-alignment anti-diagonal allocation;
	// zero selects DefaultBandSlack, negative values shrink the
	// reservation (exercising the kernel's graceful overflow path).
	BandAllocSlack int

	// SharedMemAntidiags is the design ablation the paper argues against
	// in §IV-B: keep the three anti-diagonals in shared memory, reserving
	// a worst-case 60 KB per block. Results are identical; occupancy
	// collapses to one block per SM and inter-sequence parallelism with
	// it.
	SharedMemAntidiags bool
	// NoQueryReversal is the Fig. 6 ablation: left extensions read the
	// query backwards, so their sequence accesses are uncoalesced (8x
	// sector traffic). Results are identical; memory traffic is not.
	NoQueryReversal bool
}

// PeakCellRate returns the device's DP-cell throughput ceiling in
// cells/second: every INT32 lane busy at base clock, divided by the
// per-cell lane-operation cost of the kernel inner loop (~320 GCUPS for
// the Tesla V100 — the ideal-utilization bound above the paper's ~181
// GCUPS measured peak, which pays reduction and partial-warp overheads;
// see the adapted ceiling in internal/roofline). Note this is modeled
// device time, a different clock from the host-wall priors the hybrid
// scheduler seeds with (perfmodel.LocalSimGPUThroughput) — the backend
// tests assert the two stay orders of magnitude apart so the units are
// never conflated.
func PeakCellRate(spec cuda.DeviceSpec) float64 {
	return float64(spec.INT32Lanes()) * spec.BaseClockGHz * 1e9 / CellOps
}

// DefaultBandSlack covers the band's score-fluctuation transient: `best`
// is only updated between anti-diagonals and interior cells are never
// re-pruned, so the band runs wider than the asymptotic 2X by a margin
// that depends on the error bursts of the pair (~tens of cells at 15%
// error). Overflowing the reservation is handled gracefully by the
// kernel, so this is a performance knob, not a correctness bound.
const DefaultBandSlack = 64

// DefaultConfig returns the paper's configuration: +1/-1/-1 scoring and
// thread count scheduled from X.
func DefaultConfig(x int32) Config {
	return Config{Scoring: xdrop.DefaultScoring(), X: x}
}

// Scheme assembles the generalized scoring scheme the Config selects,
// the batch-level carrier the CPU pool executes. An unknown Mode is
// passed through rather than defaulting to linear, so a future family
// that misses an arm here fails Scheme.Validate instead of silently
// running the wrong recurrence.
func (c Config) Scheme() xdrop.Scheme {
	switch c.Mode {
	case xdrop.SchemeLinear:
		return xdrop.LinearScheme(c.Scoring)
	case xdrop.SchemeAffine:
		return xdrop.AffineScheme(c.Affine)
	case xdrop.SchemeMatrix:
		return xdrop.MatrixScheme(c.Matrix)
	default:
		return xdrop.Scheme{Kind: c.Mode}
	}
}

// ThreadsForX returns the block size LOGAN schedules for a given X: the
// band width is proportional to X (with unit gap penalties the band cannot
// exceed 2X+3 cells), so blocks get the next multiple of the warp size
// with a floor of one warp and the device's 1024-thread ceiling (§IV-B).
// Scheduling fewer threads at small X avoids stalled lanes and shrinks the
// shared-memory reduction footprint.
func ThreadsForX(x int32) int {
	t := int(x)
	if t < 32 {
		t = 32
	}
	if t > 1024 {
		t = 1024
	}
	return (t + 31) &^ 31
}

// BandAlloc returns the per-extension anti-diagonal buffer length (in
// cells) reserved in HBM: the asymptotic X-drop band 2X+3 plus slack,
// capped by the longest possible anti-diagonal of the extension. A slack
// of zero selects DefaultBandSlack.
func BandAlloc(x int32, maxExtLen, slack int) int {
	if slack == 0 {
		slack = DefaultBandSlack
	}
	b := int(2*x) + 3 + slack
	if maxExtLen+2 < b {
		b = maxExtLen + 2
	}
	if b < 4 {
		b = 4
	}
	return b
}
