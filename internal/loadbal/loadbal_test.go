package loadbal

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"logan/internal/core"
	"logan/internal/cuda"
	"logan/internal/seq"
	"logan/internal/xdrop"
)

func makePairs(seed int64, n int) []seq.Pair {
	rng := rand.New(rand.NewSource(seed))
	return seq.RandPairSet(rng, seq.PairSetOptions{
		N: n, MinLen: 100, MaxLen: 700, ErrorRate: 0.15, SeedLen: 17,
	})
}

func TestPartitionCompleteness(t *testing.T) {
	f := func(nRaw uint8, gRaw uint8, strat bool) bool {
		n := int(nRaw)%100 + 1
		g := int(gRaw)%8 + 1
		pairs := makePairs(int64(nRaw)*31+int64(gRaw), n)
		s := ByLength
		if strat {
			s = RoundRobin
		}
		buckets := Partition(pairs, g, s)
		if len(buckets) != g {
			return false
		}
		seen := make(map[int]bool)
		for _, b := range buckets {
			for _, idx := range b {
				if idx < 0 || idx >= n || seen[idx] {
					return false
				}
				seen[idx] = true
			}
		}
		return len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPartitionBalanceByLength(t *testing.T) {
	// Pathological mix: a few giants and many small reads. LPT must beat
	// round-robin's worst bucket.
	rng := rand.New(rand.NewSource(7))
	var pairs []seq.Pair
	for i := 0; i < 6; i++ {
		pairs = append(pairs, seq.Pair{
			Query: seq.RandSeq(rng, 8000), Target: seq.RandSeq(rng, 8000),
			SeedQPos: 100, SeedTPos: 100, SeedLen: 17, ID: i,
		})
	}
	for i := 0; i < 60; i++ {
		pairs = append(pairs, seq.Pair{
			Query: seq.RandSeq(rng, 200), Target: seq.RandSeq(rng, 200),
			SeedQPos: 50, SeedTPos: 50, SeedLen: 17, ID: 6 + i,
		})
	}
	weightOf := func(buckets [][]int) (maxW int64) {
		for _, b := range buckets {
			var w int64
			for _, idx := range b {
				w += int64(len(pairs[idx].Query) + len(pairs[idx].Target))
			}
			if w > maxW {
				maxW = w
			}
		}
		return maxW
	}
	lpt := weightOf(Partition(pairs, 6, ByLength))
	rr := weightOf(Partition(pairs, 6, RoundRobin))
	if lpt > rr {
		t.Fatalf("LPT worst bucket %d heavier than round-robin %d", lpt, rr)
	}
	// LPT should be near-perfect here: each giant on its own device.
	var total int64
	for i := range pairs {
		total += int64(len(pairs[i].Query) + len(pairs[i].Target))
	}
	if float64(lpt) > 1.25*float64(total)/6 {
		t.Fatalf("LPT imbalance: worst %d vs mean %d", lpt, total/6)
	}
}

func TestMultiGPUMatchesSingle(t *testing.T) {
	pairs := makePairs(1, 30)
	cfg := core.DefaultConfig(50)

	single := cuda.MustV100()
	want, err := core.AlignBatch(single, pairs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []int{1, 2, 4} {
		pool, err := NewV100Pool(g)
		if err != nil {
			t.Fatal(err)
		}
		got, err := pool.Align(pairs, cfg, ByLength)
		if err != nil {
			t.Fatal(err)
		}
		for i := range pairs {
			if got.Results[i].Score != want.Results[i].Score {
				t.Fatalf("g=%d pair %d: %d != %d", g, i, got.Results[i].Score, want.Results[i].Score)
			}
			if got.Results[i].QEnd != want.Results[i].QEnd {
				t.Fatalf("g=%d pair %d: extent mismatch", g, i)
			}
		}
		if got.Cells != want.Cells {
			t.Fatalf("g=%d: cells %d != %d", g, got.Cells, want.Cells)
		}
	}
}

func TestMultiGPUScalesDeviceTime(t *testing.T) {
	pairs := makePairs(2, 64)
	cfg := core.DefaultConfig(100)
	t1pool, _ := NewV100Pool(1)
	t4pool, _ := NewV100Pool(4)
	r1, err := t1pool.Align(pairs, cfg, ByLength)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := t4pool.Align(pairs, cfg, ByLength)
	if err != nil {
		t.Fatal(err)
	}
	if r4.DeviceTime >= r1.DeviceTime {
		t.Fatalf("4-GPU device time %v not faster than 1-GPU %v", r4.DeviceTime, r1.DeviceTime)
	}
	// Total time includes per-GPU setup: the gap between total and device
	// time must grow with the pool (the paper's load-balancing overhead).
	oh1 := r1.TotalTime - r1.DeviceTime
	oh4 := r4.TotalTime - r4.DeviceTime
	if oh4 <= oh1 {
		t.Fatalf("4-GPU host overhead %v not larger than 1-GPU %v", oh4, oh1)
	}
	if r1.Imbalance < 0.999 || r1.Imbalance > 1.001 {
		t.Fatalf("single-device imbalance = %v, want 1", r1.Imbalance)
	}
	if r4.Imbalance < 1.0-1e-9 {
		t.Fatalf("imbalance %v < 1", r4.Imbalance)
	}
}

func TestPoolValidation(t *testing.T) {
	if _, err := NewV100Pool(0); err == nil {
		t.Error("accepted empty pool")
	}
	pool, _ := NewV100Pool(2)
	if _, err := pool.Align(nil, core.DefaultConfig(10), ByLength); err != nil {
		t.Errorf("empty batch: %v", err)
	}
	empty := &Pool{}
	if _, err := empty.Align(makePairs(3, 2), core.DefaultConfig(10), ByLength); err == nil {
		t.Error("accepted pool with no devices")
	}
}

func TestMoreGPUsThanPairs(t *testing.T) {
	pairs := makePairs(4, 3)
	pool, _ := NewV100Pool(6)
	res, err := pool.Align(pairs, core.DefaultConfig(20), ByLength)
	if err != nil {
		t.Fatal(err)
	}
	want, _, _ := xdrop.ExtendBatch(pairs, xdrop.DefaultScoring(), 20, 0)
	for i := range pairs {
		if res.Results[i].Score != want[i].Score {
			t.Fatalf("pair %d mismatch", i)
		}
	}
}

func TestImbalanceOfEdgeCases(t *testing.T) {
	if got := ImbalanceOf(nil, nil); got != 1 {
		t.Fatalf("empty imbalance = %v", got)
	}
	if got := ImbalanceOf([]int64{0, 0}, [][]int{{0}, {1}}); got != 1 {
		t.Fatalf("zero-weight imbalance = %v", got)
	}
	w := []int64{10, 10, 10, 30}
	buckets := [][]int{{0, 1, 2}, {3}}
	// loads 30/30, mean 30 -> 1.0
	if got := ImbalanceOf(w, buckets); got != 1 {
		t.Fatalf("balanced = %v", got)
	}
	skewed := [][]int{{0}, {1, 2, 3}}
	// loads 10/50, mean 30 -> 50/30
	if got := ImbalanceOf(w, skewed); got < 1.66 || got > 1.67 {
		t.Fatalf("skewed = %v", got)
	}
}

func TestAlignRoundRobinStrategy(t *testing.T) {
	pairs := makePairs(9, 12)
	pool, err := NewV100Pool(3)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := pool.Align(pairs, core.DefaultConfig(25), RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	pool2, _ := NewV100Pool(3)
	lpt, err := pool2.Align(pairs, core.DefaultConfig(25), ByLength)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pairs {
		if rr.Results[i].Score != lpt.Results[i].Score {
			t.Fatalf("strategy changed scores at pair %d", i)
		}
	}
}

// TestPartitionExactlyOnceProperty is the satellite coverage for the
// partitioner: for arbitrary weight vectors, bucket counts (including more
// buckets than items) and capacity vectors (including unusable workers),
// every index must land in exactly one bucket, under both strategies.
func TestPartitionExactlyOnceProperty(t *testing.T) {
	f := func(wRaw []uint16, gRaw uint8, capsRaw []int8, strat bool) bool {
		weights := make([]int64, len(wRaw))
		for i, w := range wRaw {
			weights[i] = int64(w)
		}
		g := int(gRaw)%12 + 1
		caps := make([]float64, g)
		for i := range caps {
			if i < len(capsRaw) {
				caps[i] = float64(capsRaw[i]) // may be zero or negative
			} else {
				caps[i] = 1
			}
		}
		s := ByLength
		if strat {
			s = RoundRobin
		}
		for _, buckets := range [][][]int{
			PartitionWeights(weights, g, s),
			PartitionCapacities(weights, caps, s),
		} {
			if len(buckets) != g {
				return false
			}
			seen := make(map[int]bool)
			for _, b := range buckets {
				for _, idx := range b {
					if idx < 0 || idx >= len(weights) || seen[idx] {
						return false
					}
					seen[idx] = true
				}
			}
			if len(seen) != len(weights) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPartitionEdgeCases pins the explicit boundary shapes the property
// test might not draw: empty batches, more buckets than items, and a
// single bucket.
func TestPartitionEdgeCases(t *testing.T) {
	for _, s := range []Strategy{ByLength, RoundRobin} {
		if got := Partition(nil, 4, s); len(got) != 4 {
			t.Fatalf("strat %v: empty batch buckets %v", s, got)
		}
		pairs := makePairs(11, 3)
		buckets := Partition(pairs, 8, s)
		if len(buckets) != 8 {
			t.Fatalf("strat %v: %d buckets", s, len(buckets))
		}
		seen := map[int]int{}
		nonEmpty := 0
		for _, b := range buckets {
			if len(b) > 0 {
				nonEmpty++
			}
			for _, idx := range b {
				seen[idx]++
			}
		}
		for idx, c := range seen {
			if c != 1 {
				t.Fatalf("strat %v: index %d assigned %d times", s, idx, c)
			}
		}
		if len(seen) != 3 || nonEmpty > 3 {
			t.Fatalf("strat %v: %d indices over %d buckets", s, len(seen), nonEmpty)
		}
		one := Partition(pairs, 1, s)
		if len(one) != 1 || len(one[0]) != 3 {
			t.Fatalf("strat %v: single bucket got %v", s, one)
		}
	}
}

// TestPartitionCapacitiesSkew: a worker with 3x the throughput must
// receive roughly 3x the weight under the heterogeneous LPT split.
func TestPartitionCapacitiesSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	weights := make([]int64, 400)
	for i := range weights {
		weights[i] = int64(rng.Intn(900) + 100)
	}
	buckets := PartitionCapacities(weights, []float64{3, 1}, ByLength)
	var w0, w1 int64
	for _, idx := range buckets[0] {
		w0 += weights[idx]
	}
	for _, idx := range buckets[1] {
		w1 += weights[idx]
	}
	ratio := float64(w0) / float64(w1)
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("capacity-3 worker holds %d vs %d (ratio %.2f, want ~3)", w0, w1, ratio)
	}
	// Unusable workers receive nothing; all work lands on the live one.
	buckets = PartitionCapacities(weights, []float64{0, 1, -2}, ByLength)
	if len(buckets[0]) != 0 || len(buckets[2]) != 0 || len(buckets[1]) != len(weights) {
		t.Fatalf("dead workers received work: %d/%d/%d", len(buckets[0]), len(buckets[1]), len(buckets[2]))
	}
	// All-dead capacity vectors degrade to an equal split, never drop work.
	buckets = PartitionCapacities(weights, []float64{0, 0}, RoundRobin)
	if len(buckets[0])+len(buckets[1]) != len(weights) {
		t.Fatal("all-dead capacities dropped work")
	}
	// RoundRobin deals item counts proportionally to capacity: a 9:1
	// split must not starve the slow worker (regression: the first
	// implementation handed it zero items).
	buckets = PartitionCapacities(weights, []float64{9, 1}, RoundRobin)
	if n := len(buckets[1]); n < len(weights)/20 || n > len(weights)/5 {
		t.Fatalf("capacity-1 worker got %d of %d items under 9:1 round-robin", n, len(weights))
	}
}

// TestPartitionNoBucketsPanics: items with zero buckets cannot satisfy
// the exactly-once contract; the partitioner must refuse loudly instead
// of silently dropping the batch.
func TestPartitionNoBucketsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PartitionCapacities with items but no buckets did not panic")
		}
	}()
	PartitionCapacities([]int64{1, 2}, nil, ByLength)
}

// TestAlignDeviceBounds: the per-device primitive must reject indexes
// outside the pool.
func TestAlignDeviceBounds(t *testing.T) {
	pool, err := NewV100Pool(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pool.AlignDevice(2, makePairs(5, 2), core.DefaultConfig(20)); err == nil {
		t.Fatal("accepted out-of-range device")
	}
	if _, err := pool.AlignDevice(-1, makePairs(5, 2), core.DefaultConfig(20)); err == nil {
		t.Fatal("accepted negative device")
	}
}

// TestPoolConcurrentBatches drives one pool from several goroutines; with
// per-device locks this interleaves shards across devices, and under
// -race it vets the pool's concurrent staging and merge paths.
func TestPoolConcurrentBatches(t *testing.T) {
	pool, err := NewV100Pool(2)
	if err != nil {
		t.Fatal(err)
	}
	pairs := makePairs(21, 24)
	cfg := core.DefaultConfig(40)
	want, err := pool.Align(pairs, cfg, ByLength)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := pool.Align(pairs, cfg, ByLength)
			if err != nil {
				t.Error(err)
				return
			}
			for i := range pairs {
				if got.Results[i] != want.Results[i] {
					t.Errorf("concurrent result diverged at %d", i)
					return
				}
			}
			if got.DeviceTime != want.DeviceTime {
				t.Errorf("DeviceTime not stable: %v vs %v", got.DeviceTime, want.DeviceTime)
			}
		}()
	}
	wg.Wait()
}

// TestPartitionCapacitiesExclusion pins the negative-capacity contract:
// excluded buckets receive nothing even when every estimate has degraded
// to zero (the all-zero fallback must only resurrect zero-capacity
// buckets), and a fully-excluded vector still satisfies exactly-once.
func TestPartitionCapacitiesExclusion(t *testing.T) {
	weights := []int64{5, 4, 3, 2, 1}
	for _, strat := range []Strategy{ByLength, RoundRobin} {
		buckets := PartitionCapacities(weights, []float64{0, -1, 0}, strat)
		if len(buckets[1]) != 0 {
			t.Fatalf("strategy %v: excluded bucket resurrected by the all-zero fallback: %v", strat, buckets)
		}
		if len(buckets[0])+len(buckets[2]) != len(weights) {
			t.Fatalf("strategy %v: work dropped: %v", strat, buckets)
		}
		// Fully excluded (caller bug): equal split, never dropped work.
		all := PartitionCapacities(weights, []float64{-1, -1}, strat)
		if len(all[0])+len(all[1]) != len(weights) {
			t.Fatalf("strategy %v: fully-excluded vector dropped work: %v", strat, all)
		}
	}
}
