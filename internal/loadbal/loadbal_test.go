package loadbal

import (
	"math/rand"
	"testing"
	"testing/quick"

	"logan/internal/core"
	"logan/internal/cuda"
	"logan/internal/seq"
	"logan/internal/xdrop"
)

func makePairs(seed int64, n int) []seq.Pair {
	rng := rand.New(rand.NewSource(seed))
	return seq.RandPairSet(rng, seq.PairSetOptions{
		N: n, MinLen: 100, MaxLen: 700, ErrorRate: 0.15, SeedLen: 17,
	})
}

func TestPartitionCompleteness(t *testing.T) {
	f := func(nRaw uint8, gRaw uint8, strat bool) bool {
		n := int(nRaw)%100 + 1
		g := int(gRaw)%8 + 1
		pairs := makePairs(int64(nRaw)*31+int64(gRaw), n)
		s := ByLength
		if strat {
			s = RoundRobin
		}
		buckets := Partition(pairs, g, s)
		if len(buckets) != g {
			return false
		}
		seen := make(map[int]bool)
		for _, b := range buckets {
			for _, idx := range b {
				if idx < 0 || idx >= n || seen[idx] {
					return false
				}
				seen[idx] = true
			}
		}
		return len(seen) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPartitionBalanceByLength(t *testing.T) {
	// Pathological mix: a few giants and many small reads. LPT must beat
	// round-robin's worst bucket.
	rng := rand.New(rand.NewSource(7))
	var pairs []seq.Pair
	for i := 0; i < 6; i++ {
		pairs = append(pairs, seq.Pair{
			Query: seq.RandSeq(rng, 8000), Target: seq.RandSeq(rng, 8000),
			SeedQPos: 100, SeedTPos: 100, SeedLen: 17, ID: i,
		})
	}
	for i := 0; i < 60; i++ {
		pairs = append(pairs, seq.Pair{
			Query: seq.RandSeq(rng, 200), Target: seq.RandSeq(rng, 200),
			SeedQPos: 50, SeedTPos: 50, SeedLen: 17, ID: 6 + i,
		})
	}
	weightOf := func(buckets [][]int) (maxW int64) {
		for _, b := range buckets {
			var w int64
			for _, idx := range b {
				w += int64(len(pairs[idx].Query) + len(pairs[idx].Target))
			}
			if w > maxW {
				maxW = w
			}
		}
		return maxW
	}
	lpt := weightOf(Partition(pairs, 6, ByLength))
	rr := weightOf(Partition(pairs, 6, RoundRobin))
	if lpt > rr {
		t.Fatalf("LPT worst bucket %d heavier than round-robin %d", lpt, rr)
	}
	// LPT should be near-perfect here: each giant on its own device.
	var total int64
	for i := range pairs {
		total += int64(len(pairs[i].Query) + len(pairs[i].Target))
	}
	if float64(lpt) > 1.25*float64(total)/6 {
		t.Fatalf("LPT imbalance: worst %d vs mean %d", lpt, total/6)
	}
}

func TestMultiGPUMatchesSingle(t *testing.T) {
	pairs := makePairs(1, 30)
	cfg := core.DefaultConfig(50)

	single := cuda.MustV100()
	want, err := core.AlignBatch(single, pairs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range []int{1, 2, 4} {
		pool, err := NewV100Pool(g)
		if err != nil {
			t.Fatal(err)
		}
		got, err := pool.Align(pairs, cfg, ByLength)
		if err != nil {
			t.Fatal(err)
		}
		for i := range pairs {
			if got.Results[i].Score != want.Results[i].Score {
				t.Fatalf("g=%d pair %d: %d != %d", g, i, got.Results[i].Score, want.Results[i].Score)
			}
			if got.Results[i].QEnd != want.Results[i].QEnd {
				t.Fatalf("g=%d pair %d: extent mismatch", g, i)
			}
		}
		if got.Cells != want.Cells {
			t.Fatalf("g=%d: cells %d != %d", g, got.Cells, want.Cells)
		}
	}
}

func TestMultiGPUScalesDeviceTime(t *testing.T) {
	pairs := makePairs(2, 64)
	cfg := core.DefaultConfig(100)
	t1pool, _ := NewV100Pool(1)
	t4pool, _ := NewV100Pool(4)
	r1, err := t1pool.Align(pairs, cfg, ByLength)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := t4pool.Align(pairs, cfg, ByLength)
	if err != nil {
		t.Fatal(err)
	}
	if r4.DeviceTime >= r1.DeviceTime {
		t.Fatalf("4-GPU device time %v not faster than 1-GPU %v", r4.DeviceTime, r1.DeviceTime)
	}
	// Total time includes per-GPU setup: the gap between total and device
	// time must grow with the pool (the paper's load-balancing overhead).
	oh1 := r1.TotalTime - r1.DeviceTime
	oh4 := r4.TotalTime - r4.DeviceTime
	if oh4 <= oh1 {
		t.Fatalf("4-GPU host overhead %v not larger than 1-GPU %v", oh4, oh1)
	}
	if r1.Imbalance < 0.999 || r1.Imbalance > 1.001 {
		t.Fatalf("single-device imbalance = %v, want 1", r1.Imbalance)
	}
	if r4.Imbalance < 1.0-1e-9 {
		t.Fatalf("imbalance %v < 1", r4.Imbalance)
	}
}

func TestPoolValidation(t *testing.T) {
	if _, err := NewV100Pool(0); err == nil {
		t.Error("accepted empty pool")
	}
	pool, _ := NewV100Pool(2)
	if _, err := pool.Align(nil, core.DefaultConfig(10), ByLength); err != nil {
		t.Errorf("empty batch: %v", err)
	}
	empty := &Pool{}
	if _, err := empty.Align(makePairs(3, 2), core.DefaultConfig(10), ByLength); err == nil {
		t.Error("accepted pool with no devices")
	}
}

func TestMoreGPUsThanPairs(t *testing.T) {
	pairs := makePairs(4, 3)
	pool, _ := NewV100Pool(6)
	res, err := pool.Align(pairs, core.DefaultConfig(20), ByLength)
	if err != nil {
		t.Fatal(err)
	}
	want, _, _ := xdrop.ExtendBatch(pairs, xdrop.DefaultScoring(), 20, 0)
	for i := range pairs {
		if res.Results[i].Score != want[i].Score {
			t.Fatalf("pair %d mismatch", i)
		}
	}
}

func TestImbalanceOfEdgeCases(t *testing.T) {
	if got := ImbalanceOf(nil, nil); got != 1 {
		t.Fatalf("empty imbalance = %v", got)
	}
	if got := ImbalanceOf([]int64{0, 0}, [][]int{{0}, {1}}); got != 1 {
		t.Fatalf("zero-weight imbalance = %v", got)
	}
	w := []int64{10, 10, 10, 30}
	buckets := [][]int{{0, 1, 2}, {3}}
	// loads 30/30, mean 30 -> 1.0
	if got := ImbalanceOf(w, buckets); got != 1 {
		t.Fatalf("balanced = %v", got)
	}
	skewed := [][]int{{0}, {1, 2, 3}}
	// loads 10/50, mean 30 -> 50/30
	if got := ImbalanceOf(w, skewed); got < 1.66 || got > 1.67 {
		t.Fatalf("skewed = %v", got)
	}
}

func TestAlignRoundRobinStrategy(t *testing.T) {
	pairs := makePairs(9, 12)
	pool, err := NewV100Pool(3)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := pool.Align(pairs, core.DefaultConfig(25), RoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	pool2, _ := NewV100Pool(3)
	lpt, err := pool2.Align(pairs, core.DefaultConfig(25), ByLength)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pairs {
		if rr.Results[i].Score != lpt.Results[i].Score {
			t.Fatalf("strategy changed scores at pair %d", i)
		}
	}
}
