package loadbal

import (
	"math/rand"
	"testing"
)

// BenchmarkPartitionLPT measures the load balancer's partition cost at
// the paper's 100K-pair workload size — the "load balancing overhead" the
// paper's future work wants to shrink.
func BenchmarkPartitionLPT(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	weights := make([]int64, 100000)
	for i := range weights {
		weights[i] = int64(5000 + rng.Intn(10000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buckets := PartitionWeights(weights, 6, ByLength)
		if len(buckets) != 6 {
			b.Fatal("bad partition")
		}
	}
}

// BenchmarkPartitionRoundRobin is the ablation counterpart.
func BenchmarkPartitionRoundRobin(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	weights := make([]int64, 100000)
	for i := range weights {
		weights[i] = int64(5000 + rng.Intn(10000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PartitionWeights(weights, 6, RoundRobin)
	}
}
