// Package loadbal implements LOGAN's multi-GPU load balancer (paper §IV-C,
// Fig. 7): the host divides the alignment batch across devices, weighting
// by sequence length so each GPU receives a comparable amount of DP work,
// launches every device's batch, and collects the results. The modeled
// completion time is the slowest device plus the per-GPU setup overhead —
// the overhead that makes the paper's multi-GPU scaling sub-linear at
// small X.
//
// Beyond the paper's equal-device split, PartitionCapacities generalizes
// the length-weighted LPT assignment to workers of unequal throughput
// (e.g. a CPU pool sharing a batch with a set of GPUs), the core of the
// hybrid scheduler in internal/backend.
package loadbal

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"logan/internal/core"
	"logan/internal/cuda"
	"logan/internal/perfmodel"
	"logan/internal/seq"
	"logan/internal/xdrop"
)

// TestHookAlignStart, when non-nil, is invoked at the start of every
// Pool.Align/AlignInto call, after the call has entered the pool but
// before any device work. Tests use it to prove that concurrent batches
// enter the pool simultaneously (no engine-wide mutex) and interleave on
// per-device locks. Must only be set while no batches are in flight.
var TestHookAlignStart func()

// subPool recycles the per-device sub-batch staging across Align calls, so
// a long-lived Pool serves batch after batch without reallocating it. The
// slices are cleared before pooling so they don't pin caller sequences.
var subPool = sync.Pool{New: func() any { return new([]seq.Pair) }}

// Pool is a set of simulated devices acting as one multi-GPU node.
//
// Ownership is per device, not per pool: each device has its own lock, so
// two concurrent batches interleave across the devices (batch A on device
// 0 while batch B is on device 1) instead of serializing on the pool.
// Devices must not be mutated after the first Align/AlignDevice call.
type Pool struct {
	Devices []*cuda.Device
	Host    perfmodel.HostModel

	lockInit sync.Once
	devLocks []sync.Mutex
}

// NewV100Pool builds a pool of n Tesla V100s with the calibrated timer
// installed, mirroring the paper's 6- and 8-GPU test nodes.
func NewV100Pool(n int) (*Pool, error) {
	if n <= 0 {
		return nil, fmt.Errorf("loadbal: pool size %d must be positive", n)
	}
	p := &Pool{Host: perfmodel.DefaultHostModel()}
	for i := 0; i < n; i++ {
		d, err := cuda.NewDevice(cuda.TeslaV100())
		if err != nil {
			return nil, err
		}
		d.Timer = perfmodel.NewV100Timer()
		p.Devices = append(p.Devices, d)
	}
	return p, nil
}

// lock returns the mutex owning device d.
func (p *Pool) lock(d int) *sync.Mutex {
	p.lockInit.Do(func() { p.devLocks = make([]sync.Mutex, len(p.Devices)) })
	return &p.devLocks[d]
}

// Result is the outcome of a multi-GPU batch.
type Result struct {
	Results   []xdrop.SeedResult // in input order
	PerDevice []core.BatchResult
	// DeviceTime is the modeled GPU completion time: the slowest device.
	DeviceTime time.Duration
	// TotalTime adds the host-side prep, per-GPU setup and collection.
	TotalTime time.Duration
	// PartitionTime is the host time spent deciding the split (the
	// Partition call), separated out so callers can attribute scheduling
	// overhead apart from kernel work.
	PartitionTime time.Duration
	Cells         int64
	// Imbalance is maxDeviceWork/meanDeviceWork in cells (1.0 = perfect).
	Imbalance float64
}

// Strategy selects how pairs are divided across devices.
type Strategy int

const (
	// ByLength is LOGAN's scheme: greedy longest-processing-time
	// assignment weighted by sequence length.
	ByLength Strategy = iota
	// RoundRobin is the naive count-based split, kept as the ablation
	// baseline for the load-balancing design point.
	RoundRobin
)

// Partition splits pair indices across n buckets under the given strategy.
// Every index appears in exactly one bucket.
func Partition(pairs []seq.Pair, n int, strat Strategy) [][]int {
	return PartitionWeights(PairWeights(pairs, nil), n, strat)
}

// PairWeights returns the DP-work proxy LOGAN partitions on — the summed
// sequence length of each pair — reusing dst's backing array when it has
// capacity (existing contents are overwritten).
func PairWeights(pairs []seq.Pair, dst []int64) []int64 {
	if cap(dst) < len(pairs) {
		dst = make([]int64, len(pairs))
	}
	dst = dst[:len(pairs)]
	for i := range pairs {
		dst[i] = int64(len(pairs[i].Query) + len(pairs[i].Target))
	}
	return dst
}

// PartitionWeights is the weight-level core of Partition, also used by the
// experiment harness to evaluate balance quality at full workload scale
// without materializing sequences. All buckets have equal capacity.
func PartitionWeights(weights []int64, n int, strat Strategy) [][]int {
	return PartitionCapacities(weights, equalCaps(n), strat)
}

func equalCaps(n int) []float64 {
	caps := make([]float64, n)
	for i := range caps {
		caps[i] = 1
	}
	return caps
}

// PartitionCapacities splits item indices across len(caps) buckets whose
// relative throughputs are caps[i] (cells/second, or any consistent unit).
// Every index appears in exactly one bucket.
//
// ByLength generalizes LOGAN's LPT greedy to heterogeneous workers: items
// are assigned heaviest-first to the bucket that would finish its load
// soonest, i.e. minimizing (load_b + w) / caps_b. With equal capacities
// this reduces exactly to the paper's scheme. RoundRobin deals items out
// proportionally to capacity (a worker with twice the throughput receives
// roughly twice the items), degenerating to the naive count split when
// capacities are equal.
//
// Capacity semantics distinguish "no estimate" from "excluded": a zero
// capacity marks a bucket with a degenerate estimate — it receives no
// items unless every positive capacity is absent, in which case the
// zero-capacity buckets are treated as equal so no work is dropped. A
// strictly negative capacity excludes the bucket: it never receives
// items, not even under the all-zero fallback — the hybrid scheduler
// uses this to keep non-linear batches off the GPU kernels, so a
// degraded estimate can never resurrect an excluded worker. The one
// exception preserves the exactly-once contract: if every bucket is
// excluded while items remain (a caller bug — the hybrid guards against
// it before partitioning), all buckets are treated as equal rather than
// dropping the batch. A nonempty item set with no buckets at all panics.
func PartitionCapacities(weights []int64, caps []float64, strat Strategy) [][]int {
	n := len(caps)
	buckets := make([][]int, n)
	if n == 0 {
		if len(weights) > 0 {
			panic("loadbal: PartitionCapacities with items but no buckets")
		}
		return buckets
	}
	usable := make([]int, 0, n)
	for b, c := range caps {
		if c > 0 {
			usable = append(usable, b)
		}
	}
	if len(usable) == 0 {
		// Degenerate estimates: fall back to an equal split among the
		// zero-capacity (non-excluded) buckets only.
		caps = append([]float64(nil), caps...)
		for b, c := range caps {
			if c == 0 {
				caps[b] = 1
				usable = append(usable, b)
			}
		}
	}
	if len(usable) == 0 {
		// Every bucket excluded: equal split rather than dropped work.
		caps = equalCaps(n)
		for b := range buckets {
			usable = append(usable, b)
		}
	}
	switch strat {
	case RoundRobin:
		// Smooth weighted round-robin: item i goes to the usable bucket
		// with the largest deficit between its capacity share of the
		// first i+1 items and what it has already received. With equal
		// capacities this is exactly the naive i-mod-n deal.
		var total float64
		for _, b := range usable {
			total += caps[b]
		}
		assigned := make([]float64, n)
		for i := range weights {
			target := usable[0]
			bestDeficit := caps[target]/total*float64(i+1) - assigned[target]
			for _, b := range usable[1:] {
				if d := caps[b]/total*float64(i+1) - assigned[b]; d > bestDeficit {
					target, bestDeficit = b, d
				}
			}
			buckets[target] = append(buckets[target], i)
			assigned[target]++
		}
	default: // ByLength: LPT greedy on normalized completion time
		type item struct {
			idx    int
			weight int64
		}
		items := make([]item, len(weights))
		for i, w := range weights {
			items[i] = item{idx: i, weight: w}
		}
		sort.Slice(items, func(a, b int) bool {
			if items[a].weight != items[b].weight {
				return items[a].weight > items[b].weight
			}
			return items[a].idx < items[b].idx
		})
		loads := make([]int64, n)
		for _, it := range items {
			best := usable[0]
			bestT := (float64(loads[best]) + float64(it.weight)) / caps[best]
			for _, b := range usable[1:] {
				if t := (float64(loads[b]) + float64(it.weight)) / caps[b]; t < bestT {
					best, bestT = b, t
				}
			}
			buckets[best] = append(buckets[best], it.idx)
			loads[best] += it.weight
		}
		// Keep input order within a bucket (helps locality and makes the
		// run deterministic).
		for b := range buckets {
			sort.Ints(buckets[b])
		}
	}
	return buckets
}

// ImbalanceOf evaluates a partition: max bucket weight over mean bucket
// weight (1.0 = perfect).
func ImbalanceOf(weights []int64, buckets [][]int) float64 {
	var total, maxW int64
	for _, b := range buckets {
		var w int64
		for _, idx := range b {
			w += weights[idx]
		}
		total += w
		if w > maxW {
			maxW = w
		}
	}
	if total == 0 || len(buckets) == 0 {
		return 1
	}
	mean := float64(total) / float64(len(buckets))
	return float64(maxW) / mean
}

// AlignDevice runs one sub-batch on device d alone, serialized on that
// device's lock (never on the pool). It is the per-device primitive the
// hybrid scheduler in internal/backend composes with a CPU shard.
func (p *Pool) AlignDevice(d int, pairs []seq.Pair, cfg core.Config) (core.BatchResult, error) {
	return p.AlignDeviceContext(context.Background(), d, pairs, cfg)
}

// AlignDeviceContext is AlignDevice under a context, forwarded to the
// device batch so cancellation takes effect at chunk boundaries.
func (p *Pool) AlignDeviceContext(ctx context.Context, d int, pairs []seq.Pair, cfg core.Config) (core.BatchResult, error) {
	if d < 0 || d >= len(p.Devices) {
		return core.BatchResult{}, fmt.Errorf("loadbal: device %d outside pool of %d", d, len(p.Devices))
	}
	mu := p.lock(d)
	mu.Lock()
	defer mu.Unlock()
	return core.AlignBatchContext(ctx, p.Devices[d], pairs, cfg)
}

// Align runs the batch across the pool's devices and merges the results in
// input order.
func (p *Pool) Align(pairs []seq.Pair, cfg core.Config, strat Strategy) (Result, error) {
	return p.AlignIntoContext(context.Background(), nil, pairs, cfg, strat)
}

// AlignInto is Align writing the merged results into dst when it has
// capacity, so a long-lived caller can keep the steady state free of
// result allocations. The per-device shards run concurrently, each
// serialized only on its own device's lock: independent batches submitted
// by different goroutines interleave across devices instead of queueing
// behind one pool-wide mutex.
func (p *Pool) AlignInto(dst []xdrop.SeedResult, pairs []seq.Pair, cfg core.Config, strat Strategy) (Result, error) {
	return p.AlignIntoContext(context.Background(), dst, pairs, cfg, strat)
}

// AlignIntoContext is AlignInto under a context: every device shard
// forwards ctx, so a canceled batch stops at the shards' next chunk
// boundaries.
func (p *Pool) AlignIntoContext(ctx context.Context, dst []xdrop.SeedResult, pairs []seq.Pair, cfg core.Config, strat Strategy) (Result, error) {
	if hook := TestHookAlignStart; hook != nil {
		hook()
	}
	out := Result{}
	if len(p.Devices) == 0 {
		return out, fmt.Errorf("loadbal: empty pool")
	}
	if len(pairs) == 0 {
		return out, nil
	}
	partStart := time.Now()
	buckets := Partition(pairs, len(p.Devices), strat)
	out.PartitionTime = time.Since(partStart)
	if cap(dst) < len(pairs) {
		dst = make([]xdrop.SeedResult, len(pairs))
	}
	out.Results = dst[:len(pairs)]
	out.PerDevice = make([]core.BatchResult, len(p.Devices))

	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	for d, bucket := range buckets {
		if len(bucket) == 0 {
			continue
		}
		wg.Add(1)
		go func(d int, bucket []int) {
			defer wg.Done()
			subp := subPool.Get().(*[]seq.Pair)
			defer func() {
				clear((*subp)[:cap(*subp)])
				subPool.Put(subp)
			}()
			if cap(*subp) < len(bucket) {
				*subp = make([]seq.Pair, len(bucket))
			}
			sub := (*subp)[:len(bucket)]
			*subp = sub
			for k, idx := range bucket {
				sub[k] = pairs[idx]
			}
			res, err := p.AlignDeviceContext(ctx, d, sub, cfg)
			if err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("loadbal: device %d: %w", d, err)
				}
				errMu.Unlock()
				return
			}
			for k, idx := range bucket {
				out.Results[idx] = res.Results[k]
			}
			out.PerDevice[d] = res
		}(d, bucket)
	}
	wg.Wait()
	if firstErr != nil {
		return out, firstErr
	}

	var maxCells int64
	for d := range out.PerDevice {
		res := &out.PerDevice[d]
		out.Cells += res.Cells
		if res.DeviceTime > out.DeviceTime {
			out.DeviceTime = res.DeviceTime
		}
		if res.Cells > maxCells {
			maxCells = res.Cells
		}
	}
	if mean := float64(out.Cells) / float64(len(p.Devices)); mean > 0 {
		out.Imbalance = float64(maxCells) / mean
	}
	out.TotalTime = p.Host.PrepTime(len(pairs)) +
		p.Host.SetupTime(len(p.Devices)) +
		out.DeviceTime +
		p.Host.CollectTime(len(pairs))
	return out, nil
}
