// Package loadbal implements LOGAN's multi-GPU load balancer (paper §IV-C,
// Fig. 7): the host divides the alignment batch across devices, weighting
// by sequence length so each GPU receives a comparable amount of DP work,
// launches every device's batch, and collects the results. The modeled
// completion time is the slowest device plus the per-GPU setup overhead —
// the overhead that makes the paper's multi-GPU scaling sub-linear at
// small X.
package loadbal

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"logan/internal/core"
	"logan/internal/cuda"
	"logan/internal/perfmodel"
	"logan/internal/seq"
	"logan/internal/xdrop"
)

// subPool recycles the per-device sub-batch staging across Align calls, so
// a long-lived Pool serves batch after batch without reallocating it. The
// slices are cleared before pooling so they don't pin caller sequences.
var subPool = sync.Pool{New: func() any { return new([]seq.Pair) }}

// Pool is a set of simulated devices acting as one multi-GPU node.
type Pool struct {
	Devices []*cuda.Device
	Host    perfmodel.HostModel
}

// NewV100Pool builds a pool of n Tesla V100s with the calibrated timer
// installed, mirroring the paper's 6- and 8-GPU test nodes.
func NewV100Pool(n int) (*Pool, error) {
	if n <= 0 {
		return nil, fmt.Errorf("loadbal: pool size %d must be positive", n)
	}
	p := &Pool{Host: perfmodel.DefaultHostModel()}
	for i := 0; i < n; i++ {
		d, err := cuda.NewDevice(cuda.TeslaV100())
		if err != nil {
			return nil, err
		}
		d.Timer = perfmodel.NewV100Timer()
		p.Devices = append(p.Devices, d)
	}
	return p, nil
}

// Result is the outcome of a multi-GPU batch.
type Result struct {
	Results   []xdrop.SeedResult // in input order
	PerDevice []core.BatchResult
	// DeviceTime is the modeled GPU completion time: the slowest device.
	DeviceTime time.Duration
	// TotalTime adds the host-side prep, per-GPU setup and collection.
	TotalTime time.Duration
	Cells     int64
	// Imbalance is maxDeviceWork/meanDeviceWork in cells (1.0 = perfect).
	Imbalance float64
}

// Strategy selects how pairs are divided across devices.
type Strategy int

const (
	// ByLength is LOGAN's scheme: greedy longest-processing-time
	// assignment weighted by sequence length.
	ByLength Strategy = iota
	// RoundRobin is the naive count-based split, kept as the ablation
	// baseline for the load-balancing design point.
	RoundRobin
)

// Partition splits pair indices across n buckets under the given strategy.
// Every index appears in exactly one bucket.
func Partition(pairs []seq.Pair, n int, strat Strategy) [][]int {
	weights := make([]int64, len(pairs))
	for i := range pairs {
		weights[i] = int64(len(pairs[i].Query) + len(pairs[i].Target))
	}
	return PartitionWeights(weights, n, strat)
}

// PartitionWeights is the weight-level core of Partition, also used by the
// experiment harness to evaluate balance quality at full workload scale
// without materializing sequences.
func PartitionWeights(weights []int64, n int, strat Strategy) [][]int {
	buckets := make([][]int, n)
	switch strat {
	case RoundRobin:
		for i := range weights {
			b := i % n
			buckets[b] = append(buckets[b], i)
		}
	default: // ByLength: LPT greedy on weight
		type item struct {
			idx    int
			weight int64
		}
		items := make([]item, len(weights))
		for i, w := range weights {
			items[i] = item{idx: i, weight: w}
		}
		sort.Slice(items, func(a, b int) bool {
			if items[a].weight != items[b].weight {
				return items[a].weight > items[b].weight
			}
			return items[a].idx < items[b].idx
		})
		loads := make([]int64, n)
		for _, it := range items {
			b := 0
			for k := 1; k < n; k++ {
				if loads[k] < loads[b] {
					b = k
				}
			}
			buckets[b] = append(buckets[b], it.idx)
			loads[b] += it.weight
		}
		// Keep input order within a bucket (helps locality and makes the
		// run deterministic).
		for b := range buckets {
			sort.Ints(buckets[b])
		}
	}
	return buckets
}

// ImbalanceOf evaluates a partition: max bucket weight over mean bucket
// weight (1.0 = perfect).
func ImbalanceOf(weights []int64, buckets [][]int) float64 {
	var total, maxW int64
	for _, b := range buckets {
		var w int64
		for _, idx := range b {
			w += weights[idx]
		}
		total += w
		if w > maxW {
			maxW = w
		}
	}
	if total == 0 || len(buckets) == 0 {
		return 1
	}
	mean := float64(total) / float64(len(buckets))
	return float64(maxW) / mean
}

// Align runs the batch across the pool's devices and merges the results in
// input order.
func (p *Pool) Align(pairs []seq.Pair, cfg core.Config, strat Strategy) (Result, error) {
	out := Result{}
	if len(p.Devices) == 0 {
		return out, fmt.Errorf("loadbal: empty pool")
	}
	if len(pairs) == 0 {
		return out, nil
	}
	buckets := Partition(pairs, len(p.Devices), strat)
	out.Results = make([]xdrop.SeedResult, len(pairs))
	out.PerDevice = make([]core.BatchResult, len(p.Devices))

	var maxCells int64
	subp := subPool.Get().(*[]seq.Pair)
	defer func() {
		clear((*subp)[:cap(*subp)])
		subPool.Put(subp)
	}()
	for d, bucket := range buckets {
		if len(bucket) == 0 {
			continue
		}
		if cap(*subp) < len(bucket) {
			*subp = make([]seq.Pair, len(bucket))
		}
		sub := (*subp)[:len(bucket)]
		*subp = sub
		for k, idx := range bucket {
			sub[k] = pairs[idx]
		}
		res, err := core.AlignBatch(p.Devices[d], sub, cfg)
		if err != nil {
			return out, fmt.Errorf("loadbal: device %d: %w", d, err)
		}
		for k, idx := range bucket {
			out.Results[idx] = res.Results[k]
		}
		out.PerDevice[d] = res
		out.Cells += res.Cells
		if res.DeviceTime > out.DeviceTime {
			out.DeviceTime = res.DeviceTime
		}
		if res.Cells > maxCells {
			maxCells = res.Cells
		}
	}
	if mean := float64(out.Cells) / float64(len(p.Devices)); mean > 0 {
		out.Imbalance = float64(maxCells) / mean
	}
	out.TotalTime = p.Host.PrepTime(len(pairs)) +
		p.Host.SetupTime(len(p.Devices)) +
		out.DeviceTime +
		p.Host.CollectTime(len(pairs))
	return out, nil
}
