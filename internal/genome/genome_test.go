package genome

import (
	"math/rand"
	"testing"

	"logan/internal/seq"
)

func TestSynthetic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := Synthetic(rng, "g", SyntheticOptions{Length: 50000})
	if len(g.Seq) != 50000 {
		t.Fatalf("genome length %d", len(g.Seq))
	}
	gc := seq.GC(g.Seq)
	if gc < 0.45 || gc > 0.55 {
		t.Fatalf("GC %v far from 0.5 for uniform genome", gc)
	}
}

func TestSyntheticRepeats(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := Synthetic(rng, "rep", SyntheticOptions{Length: 50000, RepeatFrac: 0.2, RepeatLen: 1000})
	// Repeats create exact duplicated k-mers: count distinct 31-mers and
	// expect fewer than a repeat-free genome of the same size.
	plain := Synthetic(rand.New(rand.NewSource(3)), "plain", SyntheticOptions{Length: 50000})
	c := seq.MustKmerCodec(31)
	distinct := func(s seq.Seq) int {
		set := map[seq.Kmer]bool{}
		for _, k := range c.Scan(nil, s, true) {
			set[k.Kmer] = true
		}
		return len(set)
	}
	if d, p := distinct(g.Seq), distinct(plain.Seq); d >= p {
		t.Fatalf("repeat genome has %d distinct 31-mers, plain has %d", d, p)
	}
}

func TestSimulateCoverageAndLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := Synthetic(rng, "g", SyntheticOptions{Length: 100000})
	rs := Simulate(rng, g, SimOptions{Coverage: 5, MinLen: 1000, MaxLen: 3000, ErrorRate: 0.1})
	var bases int64
	for _, r := range rs.Reads {
		winLen := r.End - r.Start
		if winLen < 1000 || winLen > 3000 {
			t.Fatalf("window length %d outside range", winLen)
		}
		// Mutated read length stays within ~10% of the window.
		if float64(len(r.Seq)) < 0.85*float64(winLen) || float64(len(r.Seq)) > 1.15*float64(winLen) {
			t.Fatalf("read length %d vs window %d", len(r.Seq), winLen)
		}
		bases += int64(winLen)
	}
	cov := float64(bases) / float64(len(g.Seq))
	if cov < 5 || cov > 5.5 {
		t.Fatalf("achieved coverage %v, want ~5", cov)
	}
	// Roughly half the reads should be reverse-complemented.
	rc := 0
	for _, r := range rs.Reads {
		if r.RC {
			rc++
		}
	}
	frac := float64(rc) / float64(len(rs.Reads))
	if frac < 0.3 || frac > 0.7 {
		t.Fatalf("RC fraction %v", frac)
	}
}

func TestSimulateStranded(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := Synthetic(rng, "g", SyntheticOptions{Length: 20000})
	rs := Simulate(rng, g, SimOptions{Coverage: 2, MinLen: 500, MaxLen: 1000, Stranded: true})
	for _, r := range rs.Reads {
		if r.RC {
			t.Fatal("stranded simulation produced an RC read")
		}
	}
}

func TestReadFidelity(t *testing.T) {
	// With zero error the read must equal the genomic window (possibly
	// reverse-complemented).
	rng := rand.New(rand.NewSource(6))
	g := Synthetic(rng, "g", SyntheticOptions{Length: 30000})
	rs := Simulate(rng, g, SimOptions{Coverage: 1, MinLen: 800, MaxLen: 900, ErrorRate: 0})
	for _, r := range rs.Reads {
		window := g.Seq.Sub(r.Start, r.End)
		if r.RC {
			window = window.RevComp()
		}
		if string(r.Seq) != string(window) {
			t.Fatalf("zero-error read %d differs from its window", r.ID)
		}
	}
}

func TestTrueOverlaps(t *testing.T) {
	g := Genome{Name: "toy", Seq: seq.MustNew("ACGTACGTACGTACGTACGT")}
	rs := ReadSet{Genome: g, Reads: []Read{
		{ID: 0, Start: 0, End: 10},
		{ID: 1, Start: 5, End: 15},
		{ID: 2, Start: 12, End: 20},
		{ID: 3, Start: 0, End: 20},
	}}
	ov := rs.TrueOverlaps(3)
	want := map[[2]int]int{
		{0, 1}: 5, {0, 3}: 10, {1, 2}: 3, {1, 3}: 10, {2, 3}: 8,
	}
	if len(ov) != len(want) {
		t.Fatalf("got %d overlaps %v, want %d", len(ov), ov, len(want))
	}
	for _, o := range ov {
		if want[[2]int{o.I, o.J}] != o.Overlap {
			t.Fatalf("overlap %+v unexpected", o)
		}
	}
	// Raising the threshold drops the 3-base overlap.
	if got := rs.TrueOverlaps(4); len(got) != 4 {
		t.Fatalf("minOverlap=4: %d overlaps", len(got))
	}
}

func TestPresets(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, p := range []Preset{EColiSim(), CElegansSim()} {
		if p.PaperAlignments <= 0 {
			t.Fatalf("%s: missing paper alignment count", p.Name)
		}
		if p.Name == "" || p.GenomeLen <= 0 {
			t.Fatalf("bad preset %+v", p)
		}
	}
	small := Preset{Name: "tiny", GenomeLen: 20000, Coverage: 3, MinLen: 500, MaxLen: 900, ErrorRate: 0.1}
	rs := small.Build(rng)
	if len(rs.Reads) < 40 {
		t.Fatalf("tiny preset produced %d reads", len(rs.Reads))
	}
	if len(rs.TrueOverlaps(200)) == 0 {
		t.Fatal("no true overlaps at coverage 3")
	}
}

func TestRecordsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := Synthetic(rng, "g", SyntheticOptions{Length: 20000})
	rs := Simulate(rng, g, SimOptions{Coverage: 1, MinLen: 500, MaxLen: 800, ErrorRate: 0.05})
	recs := rs.Records()
	if len(recs) != len(rs.Reads) {
		t.Fatalf("records %d != reads %d", len(recs), len(rs.Reads))
	}
	for i, rec := range recs {
		if rec.Name != rs.Reads[i].Name() {
			t.Fatalf("record %d name %q != %q", i, rec.Name, rs.Reads[i].Name())
		}
		if len(rec.Seq) != len(rs.Reads[i].Seq) {
			t.Fatalf("record %d length mismatch", i)
		}
	}
	back := FromRecords(recs)
	if len(back.Reads) != len(rs.Reads) {
		t.Fatalf("FromRecords %d reads", len(back.Reads))
	}
	for i := range back.Reads {
		if string(back.Reads[i].Seq) != string(rs.Reads[i].Seq) {
			t.Fatalf("read %d sequence changed", i)
		}
		if back.Reads[i].Start != 0 || back.Reads[i].End != 0 {
			t.Fatal("FromRecords must not invent provenance")
		}
	}
}

func TestReadName(t *testing.T) {
	fwd := Read{ID: 3, Start: 10, End: 50}
	if fwd.Name() != "read3_10_50+" {
		t.Fatalf("name = %q", fwd.Name())
	}
	rc := Read{ID: 4, Start: 5, End: 25, RC: true}
	if rc.Name() != "read4_5_25-" {
		t.Fatalf("rc name = %q", rc.Name())
	}
}

func TestSimulatePanics(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := Synthetic(rng, "g", SyntheticOptions{Length: 1000})
	for name, opt := range map[string]SimOptions{
		"zero min":     {Coverage: 1, MinLen: 0, MaxLen: 10},
		"inverted":     {Coverage: 1, MinLen: 100, MaxLen: 50},
		"reads>genome": {Coverage: 1, MinLen: 2000, MaxLen: 3000},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			Simulate(rng, g, opt)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero-length genome: no panic")
			}
		}()
		Synthetic(rng, "bad", SyntheticOptions{Length: 0})
	}()
}
