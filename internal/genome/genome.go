// Package genome simulates the inputs of the paper's BELLA experiments:
// synthetic genomes, long reads sampled from them with a PacBio-like error
// channel, and the ground-truth overlap relation that lets the harness
// report recall and precision — the "equivalent accuracy" side of the
// reproduction that the paper asserts qualitatively.
//
// The E. coli and C. elegans data sets of Tables IV/V are replaced by
// scaled presets (the real data is not redistributable and full-scale runs
// exceed a laptop); the per-experiment scale factors are recorded in
// EXPERIMENTS.md.
package genome

import (
	"fmt"
	"math/rand"
	"sort"

	"logan/internal/seq"
)

// Genome is a reference sequence reads are sampled from.
type Genome struct {
	Name string
	Seq  seq.Seq
}

// SyntheticOptions controls genome generation.
type SyntheticOptions struct {
	Length     int     // bases
	RepeatFrac float64 // fraction of the genome covered by duplicated segments
	RepeatLen  int     // length of each duplicated segment (default 2000)
}

// Synthetic generates a random genome. RepeatFrac > 0 copies segments to
// random positions, planting the genomic repeats that make overlap
// detection produce false positives — the misalignment scenario the
// paper's §III uses to motivate X-drop (and BELLA's filtering).
func Synthetic(rng *rand.Rand, name string, opt SyntheticOptions) Genome {
	if opt.Length <= 0 {
		panic("genome: non-positive length")
	}
	g := Genome{Name: name, Seq: seq.RandSeq(rng, opt.Length)}
	if opt.RepeatFrac > 0 {
		rl := opt.RepeatLen
		if rl <= 0 {
			rl = 2000
		}
		if rl > opt.Length/4 {
			rl = opt.Length / 4
		}
		if rl > 0 {
			copies := int(float64(opt.Length) * opt.RepeatFrac / float64(rl))
			for c := 0; c < copies; c++ {
				src := rng.Intn(opt.Length - rl)
				dst := rng.Intn(opt.Length - rl)
				copy(g.Seq[dst:dst+rl], g.Seq[src:src+rl])
			}
		}
	}
	return g
}

// Read is a long read with its provenance: either sampled from a
// simulated genome (Start/End/RC set) or loaded from external data
// (Label carries the original record name).
type Read struct {
	ID    int
	Seq   seq.Seq
	Start int  // genomic start of the sampled window
	End   int  // genomic end (exclusive)
	RC    bool // sampled from the reverse strand
	// Label is the external record name for reads loaded from FASTA/FASTQ
	// input; simulated reads leave it empty and Name derives one from the
	// provenance instead.
	Label string
}

// Name returns the read's identifier: the external Label when present,
// otherwise a FASTA-style name encoding the simulated provenance.
func (r Read) Name() string {
	if r.Label != "" {
		return r.Label
	}
	strand := "+"
	if r.RC {
		strand = "-"
	}
	return fmt.Sprintf("read%d_%d_%d%s", r.ID, r.Start, r.End, strand)
}

// ReadSet is a simulated sequencing run over one genome.
type ReadSet struct {
	Genome Genome
	Reads  []Read
	Error  seq.ErrorProfile
}

// SimOptions controls read simulation.
type SimOptions struct {
	Coverage  float64 // mean sequencing depth
	MinLen    int     // minimum read length
	MaxLen    int     // maximum read length
	ErrorRate float64 // total per-base error rate
	Stranded  bool    // if true, all reads come from the forward strand
}

// Simulate samples reads uniformly from the genome until the requested
// coverage is reached. Read lengths are uniform in [MinLen, MaxLen]; each
// read passes through the PacBio-profile error channel; half the reads are
// reverse-complemented unless Stranded.
func Simulate(rng *rand.Rand, g Genome, opt SimOptions) ReadSet {
	if opt.MinLen <= 0 || opt.MaxLen < opt.MinLen {
		panic("genome: invalid read length range")
	}
	if opt.MaxLen >= len(g.Seq) {
		panic("genome: reads longer than genome")
	}
	prof := seq.PacBioProfile(opt.ErrorRate)
	rs := ReadSet{Genome: g, Error: prof}
	var sampled int64
	target := int64(opt.Coverage * float64(len(g.Seq)))
	for id := 0; sampled < target; id++ {
		ln := opt.MinLen
		if opt.MaxLen > opt.MinLen {
			ln += rng.Intn(opt.MaxLen - opt.MinLen + 1)
		}
		start := rng.Intn(len(g.Seq) - ln)
		window := g.Seq.Sub(start, start+ln)
		r := Read{ID: id, Start: start, End: start + ln}
		if !opt.Stranded && rng.Intn(2) == 1 {
			r.RC = true
			window = window.RevComp()
		}
		r.Seq = seq.Mutate(rng, window, prof)
		rs.Reads = append(rs.Reads, r)
		sampled += int64(ln)
	}
	return rs
}

// Records converts the read set into FASTA records (provenance encoded in
// the names), for export to standard tools.
func (rs ReadSet) Records() []seq.Record {
	recs := make([]seq.Record, len(rs.Reads))
	for i, r := range rs.Reads {
		recs[i] = seq.Record{Name: r.Name(), Seq: r.Seq}
	}
	return recs
}

// FromRecords builds a read set from plain FASTA records (no genomic
// provenance: Start/End are zero and ground-truth evaluation is
// unavailable, but the record names are preserved as Labels). This is the
// path for running the pipeline on external data.
func FromRecords(recs []seq.Record) ReadSet {
	rs := ReadSet{}
	for i, rec := range recs {
		rs.Reads = append(rs.Reads, Read{ID: i, Seq: rec.Seq, Label: rec.Name})
	}
	return rs
}

// OverlapTruth is one ground-truth overlapping read pair (I < J).
type OverlapTruth struct {
	I, J    int // read indices
	Overlap int // genomic overlap length in bases
}

// TrueOverlaps returns every read pair whose genomic windows overlap by at
// least minOverlap bases, sorted by (I, J). This is the gold standard for
// recall/precision.
func (rs ReadSet) TrueOverlaps(minOverlap int) []OverlapTruth {
	type iv struct{ start, end, idx int }
	ivs := make([]iv, len(rs.Reads))
	for i, r := range rs.Reads {
		ivs[i] = iv{r.Start, r.End, i}
	}
	sort.Slice(ivs, func(a, b int) bool { return ivs[a].start < ivs[b].start })
	var out []OverlapTruth
	for a := 0; a < len(ivs); a++ {
		for b := a + 1; b < len(ivs); b++ {
			if ivs[b].start >= ivs[a].end-minOverlap+1 {
				break
			}
			ov := min(ivs[a].end, ivs[b].end) - ivs[b].start
			if ov >= minOverlap {
				i, j := ivs[a].idx, ivs[b].idx
				if i > j {
					i, j = j, i
				}
				out = append(out, OverlapTruth{I: i, J: j, Overlap: ov})
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].I != out[b].I {
			return out[a].I < out[b].I
		}
		return out[a].J < out[b].J
	})
	return out
}

// Preset describes a scaled stand-in for one of the paper's data sets.
type Preset struct {
	Name       string
	GenomeLen  int
	Coverage   float64
	MinLen     int
	MaxLen     int
	ErrorRate  float64
	RepeatFrac float64
	// PaperAlignments is the alignment count of the original data set
	// (1.82M for E. coli, 235M for C. elegans), used by the harness to
	// scale modeled pipeline times.
	PaperAlignments int64
}

// EColiSim is the scaled stand-in for the paper's real E. coli data set
// (1.82M alignments at full scale).
func EColiSim() Preset {
	return Preset{
		Name: "ecoli-sim", GenomeLen: 120_000, Coverage: 6,
		MinLen: 1500, MaxLen: 4500, ErrorRate: 0.15, RepeatFrac: 0.02,
		PaperAlignments: 1_820_000,
	}
}

// CElegansSim is the scaled stand-in for the paper's synthetic C. elegans
// data set (235M alignments at full scale).
func CElegansSim() Preset {
	return Preset{
		Name: "celegans-sim", GenomeLen: 400_000, Coverage: 8,
		MinLen: 1500, MaxLen: 4500, ErrorRate: 0.15, RepeatFrac: 0.05,
		PaperAlignments: 235_000_000,
	}
}

// Build materializes a preset into a read set.
func (p Preset) Build(rng *rand.Rand) ReadSet {
	g := Synthetic(rng, p.Name, SyntheticOptions{Length: p.GenomeLen, RepeatFrac: p.RepeatFrac})
	return Simulate(rng, g, SimOptions{
		Coverage: p.Coverage, MinLen: p.MinLen, MaxLen: p.MaxLen, ErrorRate: p.ErrorRate,
	})
}
