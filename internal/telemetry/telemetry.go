// Package telemetry is the repository's dependency-free metrics spine: a
// registry of counters, gauges and bounded-bucket latency histograms plus
// a lightweight per-request trace context, shared by every layer of the
// serving stack (engine, backends, coalescer, overlap pipeline, HTTP
// front end). One registry is the single source of truth behind both the
// Prometheus-text GET /metrics endpoint and the JSON /statz view in
// cmd/logan-serve, so the two can never disagree.
//
// Design constraints, in order:
//
//   - Observation is lock-free on the hot path: counters and gauges are
//     single atomics, histogram observation is two atomic adds plus a
//     branchless-ish bucket scan over a small fixed bound slice. No
//     allocation ever happens on observe.
//   - Registration is get-or-create and idempotent: asking for the same
//     (name, labels) series returns the same instrument, so independent
//     layers can share series without plumbing pointers around.
//   - Rendering and snapshotting are rare-path: they take the registry
//     lock, read every atomic once, and hand back an immutable Snapshot
//     that both the Prometheus writer and JSON views consume.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind is the metric family type, following the Prometheus data model.
type Kind int

// The supported metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// Label is one name="value" pair of a series. Series identity is the
// metric name plus the ordered label set.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing float64. The float representation
// keeps one instrument type for both event counts and accumulated
// seconds; integral values render without a decimal point.
type Counter struct {
	bits atomic.Uint64
}

// Add increments the counter by v (v must be >= 0; negative deltas are
// ignored rather than corrupting monotonicity).
func (c *Counter) Add(v float64) {
	if v < 0 || v != v { // negative or NaN
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is an instantaneous float64 value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// ObserveEWMA folds a sample into the gauge as an exponentially weighted
// moving average with the given alpha in (0, 1]. The first sample (gauge
// still exactly zero) is stored directly so the average does not have to
// climb out of the zero well.
func (g *Gauge) ObserveEWMA(sample, alpha float64) {
	if sample != sample { // NaN
		return
	}
	for {
		old := g.bits.Load()
		cur := math.Float64frombits(old)
		next := sample
		if cur != 0 {
			next = cur + alpha*(sample-cur)
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// Histogram is a fixed-bound bucket latency histogram: observations are
// counted into the first bucket whose upper bound is >= the value
// (seconds), with an implicit +Inf bucket, plus a running sum and count.
// Bucket counts are non-cumulative internally and cumulated at render
// time, which keeps Observe to two atomic adds.
type Histogram struct {
	bounds []float64 // sorted upper bounds, excluding +Inf
	counts []atomic.Int64
	sumNS  atomic.Int64 // sum in nanoseconds-as-int64 of seconds*1e9
	count  atomic.Int64
}

// Observe records one value in seconds.
func (h *Histogram) Observe(seconds float64) {
	if seconds != seconds || seconds < 0 {
		return
	}
	i := sort.SearchFloat64s(h.bounds, seconds)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNS.Add(int64(seconds * 1e9))
}

// Count returns the number of observations so far.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values in seconds.
func (h *Histogram) Sum() float64 { return float64(h.sumNS.Load()) / 1e9 }

// DefaultLatencyBounds are the stage-latency bucket bounds in seconds:
// 100µs to 10s, roughly exponential, 16 buckets plus +Inf. They cover
// everything from a sub-millisecond coalescer queue wait to a multi-
// second large-X kernel batch.
func DefaultLatencyBounds() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
		0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}

// series is one registered instrument: its identity and its storage
// (exactly one of counter/gauge/gaugeFn/hist is non-nil).
type series struct {
	labels  []Label
	key     string
	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

// family groups every series of one metric name under a single kind and
// help string, the Prometheus invariant (# TYPE appears once per name).
type family struct {
	name   string
	help   string
	kind   Kind
	order  []*series
	byKey  map[string]*series
	bounds []float64 // histogram families: shared bucket bounds
}

// Registry is a set of metric families. Get-or-create registration is
// concurrency-safe; observation on returned instruments is lock-free.
// The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

// labelKey renders the series identity of a label set.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	k := ""
	for _, l := range labels {
		k += l.Key + "\x00" + l.Value + "\x00"
	}
	return k
}

// lookup returns the family and series for (name, labels), creating
// either as needed. kind and help apply only on first creation of the
// family; a kind mismatch on an existing family panics — it is a
// programming error that would corrupt the exposition format.
func (r *Registry) lookup(name, help string, kind Kind, labels []Label, bounds []float64) *series {
	key := labelKey(labels)

	r.mu.RLock()
	f := r.byName[name]
	if f != nil {
		s := f.byKey[key]
		if s != nil && f.kind == kind {
			r.mu.RUnlock()
			return s
		}
	}
	r.mu.RUnlock()

	r.mu.Lock()
	defer r.mu.Unlock()
	f = r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, byKey: map[string]*series{}, bounds: bounds}
		r.byName[name] = f
		r.families = append(r.families, f)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q re-registered as %v, was %v", name, kind, f.kind))
	}
	s := f.byKey[key]
	if s == nil {
		s = &series{labels: append([]Label(nil), labels...), key: key}
		switch kind {
		case KindCounter:
			s.counter = &Counter{}
		case KindGauge:
			s.gauge = &Gauge{}
		case KindHistogram:
			b := f.bounds
			if b == nil {
				b = bounds
				f.bounds = b
			}
			s.hist = &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
		}
		f.byKey[key] = s
		f.order = append(f.order, s)
	}
	return s
}

// Counter returns the counter series (name, labels), registering it on
// first use with the given help text.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.lookup(name, help, KindCounter, labels, nil).counter
}

// Gauge returns the gauge series (name, labels), registering it on first
// use with the given help text.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.lookup(name, help, KindGauge, labels, nil)
	if s.gauge == nil {
		panic(fmt.Sprintf("telemetry: gauge %q already registered as a gauge func", name))
	}
	return s.gauge
}

// GaugeFunc registers a gauge series whose value is computed by fn at
// snapshot time — the natural shape for queue-depth style gauges whose
// truth lives behind someone else's mutex. Re-registering the same series
// replaces the function (the latest owner wins).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.lookup(name, help, KindGauge, labels, nil)
	r.mu.Lock()
	s.gauge = nil
	s.gaugeFn = fn
	r.mu.Unlock()
}

// Histogram returns the histogram series (name, labels), registering it
// on first use with the given bucket upper bounds (nil selects
// DefaultLatencyBounds). All series of one histogram family share the
// first registration's bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBounds()
	}
	return r.lookup(name, help, KindHistogram, labels, bounds).hist
}
