package telemetry

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "help")
	c.Inc()
	c.Add(2.5)
	c.Add(-1) // ignored: counters are monotonic
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter value %v, want 3.5", got)
	}
	if again := r.Counter("x_total", "other help"); again != c {
		t.Fatal("re-registration must return the same counter")
	}

	g := r.Gauge("g", "help")
	g.Set(7)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge value %v, want 7", got)
	}
	g.ObserveEWMA(1, 0.5)
	if got := g.Value(); got != 4 {
		t.Fatalf("EWMA value %v, want 4", got)
	}
	var first Gauge
	first.ObserveEWMA(10, 0.1)
	if got := first.Value(); got != 10 {
		t.Fatalf("first EWMA sample %v, want 10 (stored directly)", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "help", []float64{0.01, 0.1, 1})
	h.Observe(0.005) // bucket le=0.01
	h.Observe(0.01)  // le boundary: still le=0.01
	h.Observe(0.05)  // le=0.1
	h.Observe(5)     // +Inf only
	h.Observe(-1)    // ignored
	snap := r.Snapshot()
	ss := snap.find("lat_seconds")
	if ss == nil {
		t.Fatal("series missing from snapshot")
	}
	want := []int64{2, 3, 3}
	for i, w := range want {
		if ss.BucketCounts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (cumulative)", i, ss.BucketCounts[i], w)
		}
	}
	if ss.Count != 4 {
		t.Fatalf("count %d, want 4", ss.Count)
	}
	if ss.Sum < 5.0 || ss.Sum > 5.1 {
		t.Fatalf("sum %v, want ~5.065", ss.Sum)
	}
}

func TestSnapshotLookups(t *testing.T) {
	r := NewRegistry()
	r.Counter("req_total", "h", L("route", "align")).Add(3)
	r.Counter("req_total", "h", L("route", "jobs")).Add(4)
	r.GaugeFunc("depth", "h", func() float64 { return 9 })
	snap := r.Snapshot()
	if got := snap.Int("req_total", L("route", "align")); got != 3 {
		t.Fatalf("labeled lookup %d, want 3", got)
	}
	if got := snap.Value("depth"); got != 9 {
		t.Fatalf("gauge func %v, want 9", got)
	}
	if got := snap.Value("missing"); got != 0 {
		t.Fatalf("missing series %v, want 0", got)
	}
	series := snap.Series("req_total")
	if len(series) != 2 {
		t.Fatalf("series count %d, want 2", len(series))
	}
	if series[1].LabelValue("route") != "jobs" {
		t.Fatalf("series order/labels wrong: %+v", series)
	}
}

func TestWriteTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "a counter", L("k", `v"quote\slash`)).Inc()
	r.Gauge("b", "a gauge").Set(1.5)
	h := r.Histogram("h_seconds", "a histogram", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(2)
	var sb strings.Builder
	if err := r.Snapshot().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE a_total counter",
		`a_total{k="v\"quote\\slash"} 1`,
		"# TYPE b gauge",
		"b 1.5",
		"# TYPE h_seconds histogram",
		`h_seconds_bucket{le="0.1"} 1`,
		`h_seconds_bucket{le="1"} 1`,
		`h_seconds_bucket{le="+Inf"} 2`,
		"h_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// One TYPE line per family, even with multiple series.
	r.Counter("a_total", "a counter", L("k", "w")).Inc()
	sb.Reset()
	if err := r.Snapshot().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(sb.String(), "# TYPE a_total "); got != 1 {
		t.Fatalf("TYPE a_total appears %d times, want 1", got)
	}
}

func TestStagesAndTrace(t *testing.T) {
	r := NewRegistry()
	st := NewStages(r, "stage_seconds", "per-stage latency")
	st.Observe(StageKernel, 50*time.Millisecond)

	tr := st.StartTrace()
	tr.Observe(StageAdmit, time.Millisecond)
	tr.Step(StageScatter)
	if n := len(tr.Spans()); n != 2 {
		t.Fatalf("spans %d, want 2", n)
	}

	// Nil traces are inert at every call site.
	var nilTr *Trace
	nilTr.Observe(StageAdmit, time.Millisecond)
	nilTr.Step(StageKernel)
	if nilTr.Spans() != nil {
		t.Fatal("nil trace must have no spans")
	}

	ctx := WithTrace(context.Background(), tr)
	if TraceFrom(ctx) != tr {
		t.Fatal("TraceFrom must round-trip")
	}
	if TraceFrom(context.Background()) != nil {
		t.Fatal("TraceFrom on a bare context must be nil")
	}

	snap := r.Snapshot()
	if got := snap.find("stage_seconds", L("stage", StageAdmit)).Count; got != 1 {
		t.Fatalf("admit count %d, want 1", got)
	}
	if got := snap.find("stage_seconds", L("stage", StageKernel)).Count; got != 1 {
		t.Fatalf("kernel count %d, want 1", got)
	}
}

// TestConcurrentObserve hammers one registry from many goroutines under
// -race: registration races, counter adds, histogram observes and
// snapshots must all be safe and nothing may be lost.
func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	const workers, each = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r.Counter("c_total", "h").Inc()
				r.Counter("labeled_total", "h", L("w", fmt.Sprint(w%2))).Inc()
				r.Histogram("h_seconds", "h", nil).Observe(0.001)
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	snap := r.Snapshot()
	if got := snap.Int("c_total"); got != workers*each {
		t.Fatalf("c_total %d, want %d", got, workers*each)
	}
	if got := snap.Int("labeled_total", L("w", "0")) + snap.Int("labeled_total", L("w", "1")); got != workers*each {
		t.Fatalf("labeled_total %d, want %d", got, workers*each)
	}
	if got := snap.find("h_seconds").Count; got != workers*each {
		t.Fatalf("histogram count %d, want %d", got, workers*each)
	}
}
