package telemetry

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// SeriesSnapshot is one series' state at snapshot time.
type SeriesSnapshot struct {
	Labels []Label
	// Value is the counter total or gauge value (unused for histograms).
	Value float64
	// BucketCounts are the cumulative per-bucket counts (one per bound,
	// +Inf excluded: the +Inf count equals Count). Histograms only.
	BucketCounts []int64
	// Sum and Count are the histogram's running sum (seconds) and
	// observation count.
	Sum   float64
	Count int64
}

// FamilySnapshot is one metric family's state at snapshot time.
type FamilySnapshot struct {
	Name   string
	Help   string
	Kind   Kind
	Bounds []float64 // histogram families: bucket upper bounds
	Series []SeriesSnapshot
}

// Snapshot is an immutable copy of a Registry's state: every series read
// exactly once under the registry lock, so one Snapshot backs both the
// /metrics text and the /statz JSON of the same scrape with the same
// numbers — the consistency fix for views that used to re-read live
// counters field by field while the flusher mutated them.
type Snapshot struct {
	Families []FamilySnapshot
}

// Snapshot reads every registered series once and returns the copy.
// Gauge funcs are evaluated inside the registry lock; keep them fast.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	snap := &Snapshot{Families: make([]FamilySnapshot, 0, len(r.families))}
	for _, f := range r.families {
		fs := FamilySnapshot{Name: f.name, Help: f.help, Kind: f.kind, Bounds: f.bounds}
		for _, s := range f.order {
			ss := SeriesSnapshot{Labels: s.labels}
			switch {
			case s.counter != nil:
				ss.Value = s.counter.Value()
			case s.gaugeFn != nil:
				ss.Value = s.gaugeFn()
			case s.gauge != nil:
				ss.Value = s.gauge.Value()
			case s.hist != nil:
				ss.BucketCounts = make([]int64, len(s.hist.bounds))
				var cum int64
				for i := range s.hist.bounds {
					cum += s.hist.counts[i].Load()
					ss.BucketCounts[i] = cum
				}
				ss.Count = s.hist.count.Load()
				ss.Sum = s.hist.Sum()
			}
			fs.Series = append(fs.Series, ss)
		}
		snap.Families = append(snap.Families, fs)
	}
	return snap
}

// find returns the series snapshot for (name, labels), or nil.
func (s *Snapshot) find(name string, labels ...Label) *SeriesSnapshot {
	key := labelKey(labels)
	for i := range s.Families {
		f := &s.Families[i]
		if f.Name != name {
			continue
		}
		for j := range f.Series {
			if labelKey(f.Series[j].Labels) == key {
				return &f.Series[j]
			}
		}
	}
	return nil
}

// Value returns the counter/gauge value of (name, labels), or 0 when the
// series does not exist in this snapshot.
func (s *Snapshot) Value(name string, labels ...Label) float64 {
	if ss := s.find(name, labels...); ss != nil {
		return ss.Value
	}
	return 0
}

// Int returns Value truncated to int64 — the natural accessor for event
// counters in JSON views.
func (s *Snapshot) Int(name string, labels ...Label) int64 {
	return int64(s.Value(name, labels...))
}

// Series returns every series of the named family (nil when absent),
// letting JSON views enumerate label sets such as per-backend breakdowns.
func (s *Snapshot) Series(name string) []SeriesSnapshot {
	for i := range s.Families {
		if s.Families[i].Name == name {
			return s.Families[i].Series
		}
	}
	return nil
}

// LabelValue returns the value of key in the series' label set ("" when
// absent).
func (ss *SeriesSnapshot) LabelValue(key string) string {
	for _, l := range ss.Labels {
		if l.Key == key {
			return l.Value
		}
	}
	return ""
}

// formatValue renders a sample value in Prometheus text form: integral
// values without an exponent or trailing zeros, everything else in Go's
// shortest round-trip form.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// writeLabels renders {k="v",...} including the extra label (used for
// histogram "le"), or nothing when both are empty.
func writeLabels(w io.Writer, labels []Label, extraKey, extraVal string) {
	if len(labels) == 0 && extraKey == "" {
		return
	}
	sep := ""
	io.WriteString(w, "{")
	for _, l := range labels {
		fmt.Fprintf(w, `%s%s="%s"`, sep, l.Key, escapeLabel(l.Value))
		sep = ","
	}
	if extraKey != "" {
		fmt.Fprintf(w, `%s%s="%s"`, sep, extraKey, extraVal)
	}
	io.WriteString(w, "}")
}

// WriteText renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): one HELP/TYPE header per family, cumulative
// histogram buckets with an explicit +Inf, and _sum/_count series.
func (s *Snapshot) WriteText(w io.Writer) error {
	bw := &errWriter{w: w}
	for i := range s.Families {
		f := &s.Families[i]
		if f.Help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.Name, strings.ReplaceAll(f.Help, "\n", " "))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.Name, f.Kind)
		for j := range f.Series {
			ss := &f.Series[j]
			if f.Kind == KindHistogram {
				for bi, bound := range f.Bounds {
					io.WriteString(bw, f.Name+"_bucket")
					writeLabels(bw, ss.Labels, "le", formatValue(bound))
					fmt.Fprintf(bw, " %d\n", ss.BucketCounts[bi])
				}
				io.WriteString(bw, f.Name+"_bucket")
				writeLabels(bw, ss.Labels, "le", "+Inf")
				fmt.Fprintf(bw, " %d\n", ss.Count)
				io.WriteString(bw, f.Name+"_sum")
				writeLabels(bw, ss.Labels, "", "")
				fmt.Fprintf(bw, " %s\n", formatValue(ss.Sum))
				io.WriteString(bw, f.Name+"_count")
				writeLabels(bw, ss.Labels, "", "")
				fmt.Fprintf(bw, " %d\n", ss.Count)
				continue
			}
			io.WriteString(bw, f.Name)
			writeLabels(bw, ss.Labels, "", "")
			fmt.Fprintf(bw, " %s\n", formatValue(ss.Value))
		}
	}
	return bw.err
}

// errWriter latches the first write error so WriteText needs no error
// check per line.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return len(p), nil
	}
	n, err := e.w.Write(p)
	if err != nil {
		e.err = err
	}
	return n, err
}
