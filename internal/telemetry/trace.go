package telemetry

import (
	"context"
	"time"
)

// The canonical pipeline stages a request (or merged batch) passes
// through on the serve path. Every layer observes its own stage into the
// shared stage-latency histogram family; a request-scoped Trace
// additionally collects the spans it personally experienced.
const (
	// StageAdmit is request admission: decode, validation, per-pair
	// ingest/conversion — everything before the work may queue.
	StageAdmit = "admit"
	// StageCoalesceWait is the time a request spent queued in the
	// coalescer before its merged batch flushed.
	StageCoalesceWait = "coalesce_wait"
	// StagePartition is the scheduler split of a batch across backend
	// workers (capacity estimation, LPT partition, shard gather).
	StagePartition = "partition"
	// StageKernel is backend execution: the X-drop kernel work itself.
	StageKernel = "kernel"
	// StageScatter is result conversion and distribution back to the
	// per-request callers.
	StageScatter = "scatter"
	// StageShed marks the rejection point of a shed (429) request: not
	// part of the happy-path pipeline (and so absent from StageNames),
	// it closes the trace of a rejected request so the X-Logan-Trace
	// header shows where admission control stopped it.
	StageShed = "shed"
)

// StageNames lists the canonical stages in pipeline order.
func StageNames() []string {
	return []string{StageAdmit, StageCoalesceWait, StagePartition, StageKernel, StageScatter}
}

// Stages is the per-stage latency histogram family of one registry:
// get-or-create views over `name{stage="..."}` series. Layers share one
// family by constructing Stages over the same registry with the same
// metric name.
type Stages struct {
	reg  *Registry
	name string
	help string
	// hot path: the five canonical stages resolved once at construction;
	// other stage names fall back to a registry lookup.
	admit, wait, partition, kernel, scatter *Histogram
}

// NewStages binds (and on first use registers) the stage-latency
// histogram family `name` in r, pre-resolving the canonical stages.
func NewStages(r *Registry, name, help string) *Stages {
	s := &Stages{reg: r, name: name, help: help}
	s.admit = r.Histogram(name, help, nil, L("stage", StageAdmit))
	s.wait = r.Histogram(name, help, nil, L("stage", StageCoalesceWait))
	s.partition = r.Histogram(name, help, nil, L("stage", StagePartition))
	s.kernel = r.Histogram(name, help, nil, L("stage", StageKernel))
	s.scatter = r.Histogram(name, help, nil, L("stage", StageScatter))
	return s
}

// hist resolves a stage's histogram.
func (s *Stages) hist(stage string) *Histogram {
	switch stage {
	case StageAdmit:
		return s.admit
	case StageCoalesceWait:
		return s.wait
	case StagePartition:
		return s.partition
	case StageKernel:
		return s.kernel
	case StageScatter:
		return s.scatter
	default:
		return s.reg.Histogram(s.name, s.help, nil, L("stage", stage))
	}
}

// Observe records one stage duration into the family.
func (s *Stages) Observe(stage string, d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.hist(stage).Observe(d.Seconds())
}

// Span is one recorded stage duration of a Trace.
type Span struct {
	Stage string
	D     time.Duration
}

// Trace is a per-request trace context: it observes stage durations into
// the shared Stages family and keeps the request's own spans for
// rendering (e.g. an X-Logan-Trace response header). A Trace is owned by
// one request; spans recorded for it by another goroutine (the coalescer
// flusher stamping queue wait and batch stages) happen strictly before
// the result is delivered to the owner, so reads after delivery are
// ordered by the channel receive and need no lock.
type Trace struct {
	stages *Stages
	mark   time.Time
	spans  []Span
}

// StartTrace begins a trace whose step clock starts now.
func (s *Stages) StartTrace() *Trace {
	return &Trace{stages: s, mark: time.Now(), spans: make([]Span, 0, 8)}
}

// Observe records an explicitly measured stage duration into the trace
// and the underlying histogram family. Nil-safe: a nil Trace only skips
// the per-request span, so call sites need no guard when tracing is off
// — they observe the histogram family directly instead.
func (t *Trace) Observe(stage string, d time.Duration) {
	if t == nil {
		return
	}
	t.stages.Observe(stage, d)
	t.spans = append(t.spans, Span{Stage: stage, D: d})
}

// AddSpan appends a span to the trace WITHOUT observing the histogram
// family. It exists for shared work: when a merged batch's stages were
// already observed once (batch-scoped), each rider request copies the
// spans onto its own trace span-only, so the histograms count the batch
// once while every request's trace still shows the full pipeline.
// Nil-safe.
func (t *Trace) AddSpan(stage string, d time.Duration) {
	if t == nil {
		return
	}
	t.spans = append(t.spans, Span{Stage: stage, D: d})
}

// Step records the time since the previous Step (or StartTrace) as the
// given stage and resets the step clock. Nil-safe.
func (t *Trace) Step(stage string) {
	if t == nil {
		return
	}
	now := time.Now()
	t.Observe(stage, now.Sub(t.mark))
	t.mark = now
}

// SkipTo resets the step clock without recording, for gaps that belong
// to no stage. Nil-safe.
func (t *Trace) SkipTo(now time.Time) {
	if t == nil {
		return
	}
	t.mark = now
}

// Spans returns the recorded spans in order. The caller must not retain
// the slice beyond the request.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	return t.spans
}

// traceKeyT is the context key type for WithTrace.
type traceKeyT struct{}

// WithTrace attaches a request trace to the context, letting downstream
// layers (coalescer, engine) stamp their stages onto the request.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKeyT{}, t)
}

// TraceFrom extracts the request trace, or nil — every Trace method is
// nil-safe, so callers use the result unconditionally.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKeyT{}).(*Trace)
	return t
}
