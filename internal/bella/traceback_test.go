package bella

import (
	"context"
	"strings"
	"testing"
)

// TestPipelineTraceback verifies the optional CIGAR post-pass: every
// accepted overlap gains a consistent base-level alignment whose identity
// reflects the pairwise error rate, and the filtering outcome is
// unchanged by the post-pass.
func TestPipelineTraceback(t *testing.T) {
	rs := smallReadSet(t, 11, 50000, 5, 0.10)
	cfg := DefaultConfig(5, 0.10, 50)
	cfg.MinOverlap = 600

	plain, err := Run(context.Background(), rs, cfg, CPUAligner{})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Traceback = true
	traced, err := Run(context.Background(), rs, cfg, CPUAligner{})
	if err != nil {
		t.Fatal(err)
	}
	if len(traced.Overlaps) != len(plain.Overlaps) {
		t.Fatalf("traceback changed overlap count: %d vs %d", len(traced.Overlaps), len(plain.Overlaps))
	}
	if len(traced.Overlaps) == 0 {
		t.Fatal("no overlaps to trace")
	}
	// Pairwise identity for two reads at 10% error each is roughly
	// (1-0.1)^2 ~ 0.81; the alignment should land in a broad band around
	// that, and never below the adaptive-threshold floor.
	for i, ov := range traced.Overlaps {
		p := plain.Overlaps[i]
		if ov.I != p.I || ov.J != p.J || ov.Score != p.Score {
			t.Fatalf("overlap %d differs from plain run", i)
		}
		if ov.CIGAR == "" {
			t.Fatalf("overlap %d missing CIGAR", i)
		}
		if !strings.ContainsAny(ov.CIGAR, "=") {
			t.Fatalf("overlap %d CIGAR %q has no matches", i, ov.CIGAR)
		}
		if ov.Identity < 0.70 || ov.Identity > 1.0 {
			t.Fatalf("overlap %d identity %.3f outside [0.70, 1.0]", i, ov.Identity)
		}
	}
	// The plain run must not carry CIGARs.
	for _, ov := range plain.Overlaps {
		if ov.CIGAR != "" {
			t.Fatal("plain run produced CIGARs")
		}
	}
}
