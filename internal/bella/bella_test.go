package bella

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"logan/internal/genome"
	"logan/internal/loadbal"
	"logan/internal/seq"
)

func smallReadSet(t *testing.T, seed int64, genomeLen int, cov float64, errRate float64) genome.ReadSet {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := genome.Synthetic(rng, "test", genome.SyntheticOptions{Length: genomeLen})
	return genome.Simulate(rng, g, genome.SimOptions{
		Coverage: cov, MinLen: 800, MaxLen: 1600, ErrorRate: errRate,
	})
}

func TestCountKmersMatchesNaive(t *testing.T) {
	rs := smallReadSet(t, 1, 20000, 2, 0.05)
	k := 15
	idx := CountKmers(rs.Reads, k, 4)
	// Naive recount.
	codec := seq.MustKmerCodec(k)
	naive := map[seq.Kmer]int32{}
	for _, r := range rs.Reads {
		for _, p := range codec.Scan(nil, r.Seq, true) {
			naive[p.Kmer]++
		}
	}
	if len(idx.Counts) != len(naive) {
		t.Fatalf("distinct k-mers %d != naive %d", len(idx.Counts), len(naive))
	}
	for km, c := range naive {
		if idx.Counts[km] != c {
			t.Fatalf("k-mer %v count %d != naive %d", km, idx.Counts[km], c)
		}
	}
}

func TestReliableBounds(t *testing.T) {
	lo, hi := ReliableBounds(10, 0.15, 17, 1e-3)
	if lo != 2 {
		t.Fatalf("lo = %d, want 2", lo)
	}
	if hi <= lo {
		t.Fatalf("hi = %d not above lo", hi)
	}
	// Lower error or higher coverage raises the repeat cutoff.
	_, hi2 := ReliableBounds(10, 0.05, 17, 1e-3)
	if hi2 <= hi {
		t.Fatalf("cleaner reads should raise the upper bound: %d vs %d", hi2, hi)
	}
	_, hi3 := ReliableBounds(30, 0.15, 17, 1e-3)
	if hi3 <= hi {
		t.Fatalf("higher coverage should raise the upper bound: %d vs %d", hi3, hi)
	}
}

func TestBinomTail(t *testing.T) {
	// P(X >= 0) = 1, P(X >= n+1) = 0-ish, monotone decreasing in m.
	if got := binomTail(10, 0.3, 0); got != 1 {
		t.Fatalf("tail at 0 = %v", got)
	}
	prev := 1.0
	for m := 1; m <= 10; m++ {
		cur := binomTail(10, 0.3, m)
		if cur > prev+1e-12 {
			t.Fatalf("tail not monotone at m=%d: %v > %v", m, cur, prev)
		}
		prev = cur
	}
	// Sanity: P(X>=1) = 1-(0.7)^10.
	want := 1 - math.Pow(0.7, 10)
	if got := binomTail(10, 0.3, 1); math.Abs(got-want) > 1e-9 {
		t.Fatalf("P(X>=1) = %v, want %v", got, want)
	}
}

func TestReliableFilter(t *testing.T) {
	idx := KmerIndex{K: 5, Counts: map[seq.Kmer]int32{1: 1, 2: 2, 3: 5, 4: 9, 5: 3}}
	rel := idx.Reliable(2, 5)
	if len(rel) != 3 {
		t.Fatalf("reliable = %v", rel)
	}
	for i := 1; i < len(rel); i++ {
		if rel[i] <= rel[i-1] {
			t.Fatal("reliable list not sorted")
		}
	}
}

func TestBuildMatrixAndSpGEMM(t *testing.T) {
	rs := smallReadSet(t, 2, 30000, 4, 0.08)
	idx := CountKmers(rs.Reads, 17, 0)
	lo, hi := ReliableBounds(4, 0.08, 17, 1e-3)
	rel := idx.Reliable(lo, hi)
	if len(rel) == 0 {
		t.Fatal("no reliable k-mers")
	}
	mat := BuildMatrix(rs.Reads, 17, rel)
	if mat.NNZ == 0 {
		t.Fatal("empty matrix")
	}
	// Column occurrence lists must be sorted and within range, and no
	// read may appear twice in one column.
	for c, col := range mat.Cols {
		seen := map[int32]bool{}
		for i, occ := range col {
			if occ.Read < 0 || int(occ.Read) >= len(rs.Reads) {
				t.Fatalf("col %d: read %d out of range", c, occ.Read)
			}
			if seen[occ.Read] {
				t.Fatalf("col %d: read %d duplicated", c, occ.Read)
			}
			seen[occ.Read] = true
			if i > 0 && col[i-1].Read > occ.Read {
				t.Fatalf("col %d not sorted", c)
			}
		}
	}
	cands := mat.SpGEMM(SpGEMMOptions{})
	if len(cands) == 0 {
		t.Fatal("no overlap candidates")
	}
	for _, c := range cands {
		if c.I >= c.J {
			t.Fatalf("candidate not upper-triangular: %d,%d", c.I, c.J)
		}
		if len(c.Seeds) == 0 {
			t.Fatal("candidate without seeds")
		}
	}
	// MinShared=2 must be a subset.
	strict := mat.SpGEMM(SpGEMMOptions{MinShared: 2})
	if len(strict) > len(cands) {
		t.Fatal("stricter MinShared produced more candidates")
	}
}

func TestChooseSeedBinning(t *testing.T) {
	// Three seeds on one diagonal, one stray (repeat-induced): the dense
	// bin must win and the stray be outvoted.
	c := Candidate{I: 0, J: 1, Seeds: []SharedSeed{
		{PosI: 100, PosJ: 90},
		{PosI: 300, PosJ: 290},
		{PosI: 500, PosJ: 490},
		{PosI: 200, PosJ: 2900}, // stray diagonal
	}}
	got := ChooseSeed(c, 1000, 1000, 17, 500)
	if got.BinSupport != 3 {
		t.Fatalf("bin support = %d, want 3", got.BinSupport)
	}
	if got.PosI != 300 {
		t.Fatalf("median seed PosI = %d, want 300", got.PosI)
	}
	if got.Opposite {
		t.Fatal("orientation flipped")
	}
	if got.EstOverlap < 500 || got.EstOverlap > 1000 {
		t.Fatalf("overlap estimate %d out of range", got.EstOverlap)
	}
}

func TestChooseSeedOppositeStrand(t *testing.T) {
	c := Candidate{I: 0, J: 1, Seeds: []SharedSeed{
		{PosI: 100, PosJ: 800, Opposite: true},
		{PosI: 200, PosJ: 700, Opposite: true},
	}}
	got := ChooseSeed(c, 1000, 1000, 17, 500)
	if !got.Opposite {
		t.Fatal("expected opposite-strand seed")
	}
}

func TestAdaptiveThreshold(t *testing.T) {
	// e=0.15: pair error ~0.2775, phi ~0.445; L=1000, delta=0.25 -> ~334.
	th := AdaptiveThreshold(0.15, 0.25, 1000)
	if th < 300 || th > 360 {
		t.Fatalf("threshold = %d, want ~334", th)
	}
	if AdaptiveThreshold(0.15, 0.25, 10) < 1 {
		t.Fatal("threshold floor violated")
	}
	// Threshold grows with overlap length.
	if AdaptiveThreshold(0.15, 0.25, 2000) <= th {
		t.Fatal("threshold not monotone in overlap length")
	}
	// Degenerate error rate keeps a positive slope.
	if AdaptiveThreshold(0.5, 0.25, 1000) < 1 {
		t.Fatal("degenerate error rate broke the threshold")
	}
}

func TestPipelineEndToEndCPU(t *testing.T) {
	rs := smallReadSet(t, 3, 60000, 5, 0.10)
	cfg := DefaultConfig(5, 0.10, 50)
	cfg.MinOverlap = 650
	res, err := Run(context.Background(), rs, cfg, CPUAligner{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Candidates == 0 || len(res.Overlaps) == 0 {
		t.Fatalf("pipeline found %d candidates, %d overlaps", res.Candidates, len(res.Overlaps))
	}
	acc := Evaluate(rs, res.Overlaps, 700)
	if acc.Recall < 0.55 {
		t.Fatalf("recall %.3f below floor (tp=%d, truth=%d)", acc.Recall, acc.TruePositives, acc.TruePairs)
	}
	if acc.Precision < 0.80 {
		t.Fatalf("precision %.3f below floor", acc.Precision)
	}
	if res.Align.Cells == 0 || res.Times.Total() <= 0 {
		t.Fatal("missing stage accounting")
	}
}

func TestPipelineGPUMatchesCPU(t *testing.T) {
	rs := smallReadSet(t, 4, 40000, 4, 0.10)
	cfg := DefaultConfig(4, 0.10, 30)
	cpuRes, err := Run(context.Background(), rs, cfg, CPUAligner{})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := loadbal.NewV100Pool(2)
	if err != nil {
		t.Fatal(err)
	}
	gpuRes, err := Run(context.Background(), rs, cfg, GPUAligner{Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	// The paper: "Our optimized BELLA version with LOGAN integration
	// produces equivalent results as the original version."
	if len(cpuRes.Overlaps) != len(gpuRes.Overlaps) {
		t.Fatalf("overlap counts differ: cpu %d, gpu %d", len(cpuRes.Overlaps), len(gpuRes.Overlaps))
	}
	for i := range cpuRes.Overlaps {
		a, b := cpuRes.Overlaps[i], gpuRes.Overlaps[i]
		if a != b {
			t.Fatalf("overlap %d differs: cpu %+v, gpu %+v", i, a, b)
		}
	}
	if gpuRes.Align.DeviceTime <= 0 {
		t.Fatal("GPU aligner reported no modeled device time")
	}
}

func TestPipelineValidation(t *testing.T) {
	rs := smallReadSet(t, 5, 20000, 2, 0.1)
	cfg := DefaultConfig(2, 0.1, 20)
	cfg.K = 0
	if _, err := Run(context.Background(), rs, cfg, CPUAligner{}); err == nil {
		t.Error("accepted k=0")
	}
	cfg = DefaultConfig(2, 0.1, 20)
	cfg.Scoring.Gap = 1
	if _, err := Run(context.Background(), rs, cfg, CPUAligner{}); err == nil {
		t.Error("accepted invalid scoring")
	}
	empty, err := Run(context.Background(), genome.ReadSet{}, DefaultConfig(2, 0.1, 20), CPUAligner{})
	if err != nil || len(empty.Overlaps) != 0 {
		t.Errorf("empty read set: %+v, %v", empty, err)
	}
}

func TestEvaluateMetrics(t *testing.T) {
	g := genome.Genome{Name: "toy", Seq: seq.MustNew("ACGTACGTACGTACGTACGTACGT")}
	rs := genome.ReadSet{Genome: g, Reads: []genome.Read{
		{ID: 0, Start: 0, End: 10},
		{ID: 1, Start: 2, End: 12},
		{ID: 2, Start: 14, End: 24},
	}}
	// Truth at minOverlap 5: only (0,1) with 8 bases.
	preds := []Overlap{
		{I: 0, J: 1}, // true positive
		{I: 1, J: 2}, // false positive (no overlap)
		{I: 1, J: 0}, // duplicate of (0,1), must be deduped
	}
	acc := Evaluate(rs, preds, 5)
	if acc.TruePairs != 1 || acc.TruePositives != 1 || acc.PredictedPairs != 2 {
		t.Fatalf("accuracy = %+v", acc)
	}
	if acc.Recall != 1 || acc.Precision != 0.5 {
		t.Fatalf("recall/precision = %v/%v", acc.Recall, acc.Precision)
	}
	if acc.F1 <= 0.6 || acc.F1 >= 0.7 {
		t.Fatalf("F1 = %v, want 2/3", acc.F1)
	}
}
