package bella

import "logan/internal/genome"

// Accuracy is the overlap-detection quality against simulator ground
// truth.
type Accuracy struct {
	TruePairs      int
	PredictedPairs int
	TruePositives  int
	Recall         float64
	Precision      float64
	F1             float64
}

// Evaluate compares predicted overlaps to the ground truth at the given
// minimum genomic overlap (BELLA's evaluation uses 2 kb on real data).
func Evaluate(rs genome.ReadSet, overlaps []Overlap, minOverlap int) Accuracy {
	truth := rs.TrueOverlaps(minOverlap)
	truthSet := make(map[[2]int]bool, len(truth))
	for _, t := range truth {
		truthSet[[2]int{t.I, t.J}] = true
	}
	acc := Accuracy{TruePairs: len(truth), PredictedPairs: len(overlaps)}
	seen := make(map[[2]int]bool)
	for _, o := range overlaps {
		i, j := int(o.I), int(o.J)
		if i > j {
			i, j = j, i
		}
		key := [2]int{i, j}
		if seen[key] {
			continue
		}
		seen[key] = true
		if truthSet[key] {
			acc.TruePositives++
		}
	}
	acc.PredictedPairs = len(seen)
	if acc.TruePairs > 0 {
		acc.Recall = float64(acc.TruePositives) / float64(acc.TruePairs)
	}
	if acc.PredictedPairs > 0 {
		acc.Precision = float64(acc.TruePositives) / float64(acc.PredictedPairs)
	}
	if acc.Recall+acc.Precision > 0 {
		acc.F1 = 2 * acc.Recall * acc.Precision / (acc.Recall + acc.Precision)
	}
	return acc
}
