package bella

import (
	"bytes"
	"context"
	"strconv"
	"strings"
	"testing"
)

func TestWritePAF(t *testing.T) {
	rs := smallReadSet(t, 17, 50000, 5, 0.10)
	cfg := DefaultConfig(5, 0.10, 50)
	cfg.MinOverlap = 600
	cfg.Traceback = true
	res, err := Run(context.Background(), rs, cfg, CPUAligner{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Overlaps) == 0 {
		t.Fatal("no overlaps")
	}
	var buf bytes.Buffer
	if err := WritePAF(&buf, rs.Reads, res.Overlaps); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(res.Overlaps) {
		t.Fatalf("%d PAF lines for %d overlaps", len(lines), len(res.Overlaps))
	}
	for ln, line := range lines {
		f := strings.Split(line, "\t")
		if len(f) < 13 {
			t.Fatalf("line %d: %d fields", ln, len(f))
		}
		qlen, _ := strconv.Atoi(f[1])
		qs, _ := strconv.Atoi(f[2])
		qe, _ := strconv.Atoi(f[3])
		if qs < 0 || qe > qlen || qs >= qe {
			t.Fatalf("line %d: query interval [%d,%d) outside [0,%d)", ln, qs, qe, qlen)
		}
		if f[4] != "+" && f[4] != "-" {
			t.Fatalf("line %d: strand %q", ln, f[4])
		}
		tlen, _ := strconv.Atoi(f[6])
		ts, _ := strconv.Atoi(f[7])
		te, _ := strconv.Atoi(f[8])
		if ts < 0 || te > tlen || ts >= te {
			t.Fatalf("line %d: target interval [%d,%d) outside [0,%d)", ln, ts, te, tlen)
		}
		matches, _ := strconv.Atoi(f[9])
		block, _ := strconv.Atoi(f[10])
		if matches < 0 || matches > block {
			t.Fatalf("line %d: matches %d vs block %d", ln, matches, block)
		}
		if !strings.HasPrefix(f[12], "AS:i:") {
			t.Fatalf("line %d: missing score tag", ln)
		}
		if !strings.Contains(line, "cg:Z:") {
			t.Fatalf("line %d: missing CIGAR tag under Traceback", ln)
		}
	}
	// Without traceback, no CIGAR tags but valid PAF.
	cfg.Traceback = false
	res2, err := Run(context.Background(), rs, cfg, CPUAligner{})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WritePAF(&buf, rs.Reads, res2.Overlaps); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "cg:Z:") {
		t.Fatal("CIGAR tag present without traceback")
	}
}
