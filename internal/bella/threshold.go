package bella

import "math"

// AdaptiveThreshold implements BELLA's score cutoff: with per-read error
// rate e, two overlapping reads disagree on a base with probability
// 1-(1-e)^2, so the expected +1/-1/-1 alignment score per overlap base is
//
//	phi = 1 - 2*(1 - (1-e)^2)
//
// and an overlap of estimated length L is accepted when its score reaches
// (1-delta) * phi * L. The cushion delta absorbs the variance of the score
// around its mean; BELLA's default is 0.2-0.3. Pairs whose alignment
// cannot reach the threshold are classified as spurious (repeat-induced)
// overlaps.
func AdaptiveThreshold(errRate, delta float64, estOverlap int) int32 {
	pairErr := 1 - (1-errRate)*(1-errRate)
	phi := 1 - 2*pairErr
	if phi < 0.05 {
		phi = 0.05 // degenerate error rates: keep a positive slope
	}
	th := (1 - delta) * phi * float64(estOverlap)
	if th < 1 {
		th = 1
	}
	return int32(math.Round(th))
}
