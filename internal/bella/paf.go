package bella

import (
	"bufio"
	"fmt"
	"io"

	"logan/internal/genome"
)

// PAFRecord is one accepted overlap in PAF (Pairwise mApping Format)
// coordinates, the minimap2-ecosystem interchange representation: target
// coordinates are on the forward strand regardless of orientation, and
// Matches/BlockLen follow the minimap2 column-10/11 convention. It is the
// single source of truth for PAF serialization — the public overlap API
// (package logan) re-exposes these records, so offline and served outputs
// are byte-identical by construction.
type PAFRecord struct {
	QName        string
	QLen         int
	QStart, QEnd int
	Strand       byte // '+' or '-'
	TName        string
	TLen         int
	TStart, TEnd int
	// Matches approximates PAF column 10 (number of residue matches):
	// recovered exactly from the traceback identity when available,
	// otherwise estimated from the +1/-1/-1 score.
	Matches int
	// BlockLen is PAF column 11: the alignment block length.
	BlockLen int
	// MapQ is PAF column 12; the pipeline does not compute mapping
	// quality, so it is always 255 (missing).
	MapQ int
	// Score is the X-drop alignment score, emitted as the AS:i tag.
	Score int32
	// Divergence and CIGAR fill the de:f and cg:Z tags when the traceback
	// post-pass ran; CIGAR == "" omits both.
	Divergence float64
	CIGAR      string
	// QIndex/TIndex are the input-order read indices behind QName/TName.
	// They are not serialized; evaluation against simulator ground truth
	// keys on them.
	QIndex, TIndex int
}

// PAFRecords converts accepted overlaps into PAF records against the read
// set that produced them.
func PAFRecords(reads []genome.Read, overlaps []Overlap) []PAFRecord {
	recs := make([]PAFRecord, len(overlaps))
	for i, ov := range overlaps {
		q, t := reads[ov.I], reads[ov.J]
		rec := PAFRecord{
			QName: q.Name(), QLen: len(q.Seq), QStart: ov.QBegin, QEnd: ov.QEnd,
			Strand: '+',
			TName:  t.Name(), TLen: len(t.Seq), TStart: ov.TBegin, TEnd: ov.TEnd,
			MapQ: 255, Score: ov.Score,
			QIndex: int(ov.I), TIndex: int(ov.J),
		}
		if ov.Opposite {
			rec.Strand = '-'
			// PAF reports target coordinates on the forward strand.
			rec.TStart = len(t.Seq) - ov.TEnd
			rec.TEnd = len(t.Seq) - ov.TBegin
		}
		rec.BlockLen = max(ov.QEnd-ov.QBegin, ov.TEnd-ov.TBegin)
		// Without traceback, estimate matches from the +1/-1/-1 score:
		// score = matches - errors, block ~ matches + errors.
		rec.Matches = (rec.BlockLen + int(ov.Score)) / 2
		if ov.Identity > 0 {
			rec.Matches = int(float64(rec.BlockLen) * ov.Identity)
		}
		if rec.Matches < 0 {
			rec.Matches = 0
		}
		if rec.Matches > rec.BlockLen {
			rec.Matches = rec.BlockLen
		}
		if ov.CIGAR != "" {
			rec.Divergence = 1 - ov.Identity
			rec.CIGAR = ov.CIGAR
		}
		recs[i] = rec
	}
	return recs
}

// AppendText serializes the record as one PAF line (including the trailing
// newline) appended to buf: the 12 mandatory columns, the AS:i score tag,
// and the de:f/cg:Z tags when a CIGAR is present.
func (r PAFRecord) AppendText(buf []byte) []byte {
	buf = fmt.Appendf(buf, "%s\t%d\t%d\t%d\t%c\t%s\t%d\t%d\t%d\t%d\t%d\t%d\tAS:i:%d",
		r.QName, r.QLen, r.QStart, r.QEnd,
		r.Strand,
		r.TName, r.TLen, r.TStart, r.TEnd,
		r.Matches, r.BlockLen, r.MapQ, r.Score)
	if r.CIGAR != "" {
		buf = fmt.Appendf(buf, "\tde:f:%.4f\tcg:Z:%s", r.Divergence, r.CIGAR)
	}
	return append(buf, '\n')
}

// WriteRecords emits PAF records to w, one line each.
func WriteRecords(w io.Writer, recs []PAFRecord) error {
	bw := bufio.NewWriter(w)
	var line []byte
	for _, rec := range recs {
		line = rec.AppendText(line[:0])
		if _, err := bw.Write(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WritePAF emits the accepted overlaps in PAF, so downstream assemblers
// and viewers can consume BELLA-Go's output directly.
//
// Columns: qname qlen qstart qend strand tname tlen tstart tend matches
// block mapq, plus the AS:i (score) tag and, when traceback ran, de:f
// (gap-compressed divergence proxy) and cg:Z (CIGAR) tags.
func WritePAF(w io.Writer, reads []genome.Read, overlaps []Overlap) error {
	return WriteRecords(w, PAFRecords(reads, overlaps))
}
