package bella

import (
	"bufio"
	"fmt"
	"io"

	"logan/internal/genome"
)

// WritePAF emits the accepted overlaps in PAF (Pairwise mApping Format),
// the minimap2-ecosystem interchange format, so downstream assemblers and
// viewers can consume BELLA-Go's output directly.
//
// Columns: qname qlen qstart qend strand tname tlen tstart tend matches
// block mapq, plus the AS:i (score) tag and, when traceback ran, de:f
// (gap-compressed divergence proxy) and cg:Z (CIGAR) tags.
func WritePAF(w io.Writer, reads []genome.Read, overlaps []Overlap) error {
	bw := bufio.NewWriter(w)
	for _, ov := range overlaps {
		q, t := reads[ov.I], reads[ov.J]
		strand := "+"
		tStart, tEnd := ov.TBegin, ov.TEnd
		if ov.Opposite {
			strand = "-"
			// PAF reports target coordinates on the forward strand.
			tStart = len(t.Seq) - ov.TEnd
			tEnd = len(t.Seq) - ov.TBegin
		}
		block := max(ov.QEnd-ov.QBegin, ov.TEnd-ov.TBegin)
		// Without traceback, estimate matches from the +1/-1/-1 score:
		// score = matches - errors, block ~ matches + errors.
		matches := (block + int(ov.Score)) / 2
		if ov.Identity > 0 {
			matches = int(float64(block) * ov.Identity)
		}
		if matches < 0 {
			matches = 0
		}
		if matches > block {
			matches = block
		}
		if _, err := fmt.Fprintf(bw, "%s\t%d\t%d\t%d\t%s\t%s\t%d\t%d\t%d\t%d\t%d\t%d\tAS:i:%d",
			q.Name(), len(q.Seq), ov.QBegin, ov.QEnd,
			strand,
			t.Name(), len(t.Seq), tStart, tEnd,
			matches, block, 255, ov.Score); err != nil {
			return err
		}
		if ov.CIGAR != "" {
			if _, err := fmt.Fprintf(bw, "\tde:f:%.4f\tcg:Z:%s", 1-ov.Identity, ov.CIGAR); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}
