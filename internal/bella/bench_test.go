package bella

import (
	"context"
	"math/rand"
	"testing"

	"logan/internal/genome"
)

func benchReadSet(b *testing.B) genome.ReadSet {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	g := genome.Synthetic(rng, "bench", genome.SyntheticOptions{Length: 60000})
	return genome.Simulate(rng, g, genome.SimOptions{
		Coverage: 4, MinLen: 800, MaxLen: 1600, ErrorRate: 0.12,
	})
}

// BenchmarkKmerCount measures the counting stage.
func BenchmarkKmerCount(b *testing.B) {
	rs := benchReadSet(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CountKmers(rs.Reads, 17, 0)
	}
}

// BenchmarkSpGEMM measures overlap detection (matrix build + multiply).
func BenchmarkSpGEMM(b *testing.B) {
	rs := benchReadSet(b)
	idx := CountKmers(rs.Reads, 17, 0)
	lo, hi := ReliableBounds(4, 0.12, 17, 1e-3)
	rel := idx.Reliable(lo, hi)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mat := BuildMatrix(rs.Reads, 17, rel)
		cands := mat.SpGEMM(SpGEMMOptions{})
		if len(cands) == 0 {
			b.Fatal("no candidates")
		}
	}
}

// BenchmarkPipelineCPU measures the whole pipeline with the SeqAn-style
// aligner — BELLA's 90%-alignment-time profile shows up here.
func BenchmarkPipelineCPU(b *testing.B) {
	rs := benchReadSet(b)
	cfg := DefaultConfig(4, 0.12, 25)
	b.ResetTimer()
	var alignFrac float64
	for i := 0; i < b.N; i++ {
		res, err := Run(context.Background(), rs, cfg, CPUAligner{})
		if err != nil {
			b.Fatal(err)
		}
		alignFrac = res.Times.Alignment.Seconds() / res.Times.Total().Seconds()
	}
	b.ReportMetric(alignFrac, "align-frac")
}
