// Package bella rebuilds BELLA (Guidi et al.), the long-read many-to-many
// overlapper and aligner that the paper integrates LOGAN into (§V): k-mer
// counting over the read set, reliable-k-mer pruning with a binomial
// occurrence model, sparse-matrix (SpGEMM) overlap detection, k-mer binning
// to pick the seed each pair extends from, a pluggable pairwise-alignment
// stage (SeqAn-style CPU threads or batched LOGAN on simulated GPUs), and
// the adaptive score threshold that separates true overlaps from spurious
// ones.
package bella

import (
	"math"
	"runtime"
	"sort"
	"sync"

	"logan/internal/genome"
	"logan/internal/seq"
)

// Occurrence is one k-mer hit inside a read. Strand records whether the
// canonical form equals the forward k-mer at this position (true = the
// k-mer was seen reverse-complemented).
type Occurrence struct {
	Read   int32
	Pos    int32
	RevCmp bool
}

// KmerIndex is the outcome of counting: per-k-mer occurrence lists over
// the read set, canonical-form keyed.
type KmerIndex struct {
	K      int
	Counts map[seq.Kmer]int32
}

// countShard is one lock-striped slice of the global k-mer count table.
type countShard struct {
	mu sync.Mutex
	m  map[seq.Kmer]int32
}

// CountKmers tallies canonical k-mer multiplicities across all reads,
// sharded across workers. This is BELLA's first pass.
func CountKmers(reads []genome.Read, k, workers int) KmerIndex {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	codec := seq.MustKmerCodec(k)
	const shards = 16
	var sh [shards]countShard
	for i := range sh {
		sh[i].m = make(map[seq.Kmer]int32)
	}
	var wg sync.WaitGroup
	ch := make(chan int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf []seq.Positioned
			local := make(map[seq.Kmer]int32)
			for idx := range ch {
				buf = codec.Scan(buf[:0], reads[idx].Seq, true)
				for _, p := range buf {
					local[p.Kmer]++
				}
				if len(local) > 1<<16 {
					flushCounts(local, &sh)
				}
			}
			flushCounts(local, &sh)
		}()
	}
	for i := range reads {
		ch <- i
	}
	close(ch)
	wg.Wait()
	total := make(map[seq.Kmer]int32)
	for i := range sh {
		for km, c := range sh[i].m {
			total[km] += c
		}
	}
	return KmerIndex{K: k, Counts: total}
}

func flushCounts(local map[seq.Kmer]int32, sh *[16]countShard) {
	for km, c := range local {
		s := &sh[int(km&15)]
		s.mu.Lock()
		s.m[km] += c
		s.mu.Unlock()
	}
	clear(local)
}

// ReliableBounds computes BELLA's reliable-k-mer multiplicity window for a
// data set with mean coverage c and per-base error rate e. A k-mer that
// survives sequencing error-free does so with probability p = (1-e)^k; a
// unique genomic k-mer therefore appears ~Bin(c, p) times in the reads.
//
// The lower bound is fixed at 2 (singletons are overwhelmingly sequencing
// errors), and the upper bound is the smallest m whose probability under a
// two-copy (repeat) genomic k-mer, Bin(2c, p), falls below tail: k-mers
// more frequent than that are repeat-induced and would generate spurious
// overlap candidates (BELLA's pruning argument).
func ReliableBounds(coverage, errRate float64, k int, tail float64) (lo, hi int32) {
	if tail <= 0 {
		tail = 1e-3
	}
	p := math.Pow(1-errRate, float64(k))
	n := int(math.Round(2 * coverage))
	if n < 2 {
		n = 2
	}
	lo = 2
	// Upper bound: smallest m with P(Bin(n,p) >= m) < tail.
	for m := 1; m <= n; m++ {
		if binomTail(n, p, m) < tail {
			hi = int32(m)
			break
		}
	}
	if hi < lo {
		hi = lo + 2
	}
	return lo, hi
}

// binomTail returns P(X >= m) for X ~ Bin(n, p).
func binomTail(n int, p float64, m int) float64 {
	if m <= 0 {
		return 1
	}
	var tailP float64
	for x := m; x <= n; x++ {
		tailP += math.Exp(logChoose(n, x) + float64(x)*math.Log(p) + float64(n-x)*math.Log1p(-p))
	}
	if tailP > 1 {
		tailP = 1
	}
	return tailP
}

func logChoose(n, k int) float64 {
	lg, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return lg - lk - lnk
}

// Reliable filters the index down to k-mers whose multiplicity falls in
// [lo, hi] and returns them in deterministic order.
func (idx KmerIndex) Reliable(lo, hi int32) []seq.Kmer {
	var out []seq.Kmer
	for km, c := range idx.Counts {
		if c >= lo && c <= hi {
			out = append(out, km)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}
