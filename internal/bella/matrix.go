package bella

import (
	"sort"

	"logan/internal/genome"
	"logan/internal/seq"
)

// SparseMatrix is the reads-by-reliable-k-mers sparse matrix A of BELLA's
// formulation, stored CSR by k-mer column id with per-entry positions —
// the layout the SpGEMM (A * A^T) consumes. Column ids index the reliable
// k-mer list.
type SparseMatrix struct {
	K        int
	Kmers    []seq.Kmer         // column id -> canonical k-mer
	ColIndex map[seq.Kmer]int32 // canonical k-mer -> column id
	// Cols[c] lists the occurrences of k-mer c across all reads, sorted
	// by read id. This is the transpose view (A^T rows), which is what
	// the multiply iterates.
	Cols [][]Occurrence
	// NNZ is the number of stored entries.
	NNZ int64
}

// BuildMatrix scans every read for reliable k-mers and assembles the
// sparse matrix. Each read records at most one occurrence per k-mer per
// strand direction (duplicates within a read are skipped, as BELLA does to
// suppress simple tandem repeats).
func BuildMatrix(reads []genome.Read, k int, reliable []seq.Kmer) *SparseMatrix {
	m := &SparseMatrix{
		K:        k,
		Kmers:    reliable,
		ColIndex: make(map[seq.Kmer]int32, len(reliable)),
		Cols:     make([][]Occurrence, len(reliable)),
	}
	for i, km := range reliable {
		m.ColIndex[km] = int32(i)
	}
	codec := seq.MustKmerCodec(k)
	var buf []seq.Positioned
	seen := make(map[int32]bool)
	for ri := range reads {
		buf = codec.Scan(buf[:0], reads[ri].Seq, false)
		clear(seen)
		for _, occ := range buf {
			canon := codec.Canonical(occ.Kmer)
			col, ok := m.ColIndex[canon]
			if !ok || seen[col] {
				continue
			}
			seen[col] = true
			m.Cols[col] = append(m.Cols[col], Occurrence{
				Read:   int32(ri),
				Pos:    int32(occ.Pos),
				RevCmp: canon != occ.Kmer,
			})
			m.NNZ++
		}
	}
	for c := range m.Cols {
		sort.Slice(m.Cols[c], func(a, b int) bool { return m.Cols[c][a].Read < m.Cols[c][b].Read })
	}
	return m
}

// SharedSeed is one k-mer shared by a candidate read pair: positions of
// the k-mer in both reads and whether the reads see it on opposite
// strands (in which case read J must be reverse-complemented to align).
type SharedSeed struct {
	PosI, PosJ int32
	Opposite   bool
}

// Candidate is an overlap candidate produced by the SpGEMM: a read pair
// with the seeds they share.
type Candidate struct {
	I, J  int32 // read indices, I < J
	Seeds []SharedSeed
}

// SpGEMMOptions bounds the multiply.
type SpGEMMOptions struct {
	MaxSeedsPerPair int // cap stored seeds per pair (BELLA keeps a handful)
	MinShared       int // minimum shared k-mers to emit a candidate
}

// SpGEMM computes the overlap candidates: the nonzero pattern of A * A^T
// restricted to the strict upper triangle, with the shared k-mer position
// pairs as values. The multiply walks each k-mer column and emits every
// read pair in it (outer-product/column formulation of Gustavson's
// algorithm; identical output to BELLA's row-wise hash SpGEMM). Reliable
// k-mer pruning bounds the column lengths, which is what keeps this near
// linear — the point of BELLA's pruning stage.
func (m *SparseMatrix) SpGEMM(opt SpGEMMOptions) []Candidate {
	if opt.MaxSeedsPerPair <= 0 {
		opt.MaxSeedsPerPair = 16
	}
	if opt.MinShared <= 0 {
		opt.MinShared = 1
	}
	type key struct{ i, j int32 }
	acc := make(map[key]*Candidate)
	for _, col := range m.Cols {
		for a := 0; a < len(col); a++ {
			for b := a + 1; b < len(col); b++ {
				oi, oj := col[a], col[b]
				if oi.Read == oj.Read {
					continue
				}
				k := key{oi.Read, oj.Read}
				c, ok := acc[k]
				if !ok {
					c = &Candidate{I: k.i, J: k.j}
					acc[k] = c
				}
				if len(c.Seeds) < opt.MaxSeedsPerPair {
					c.Seeds = append(c.Seeds, SharedSeed{
						PosI:     oi.Pos,
						PosJ:     oj.Pos,
						Opposite: oi.RevCmp != oj.RevCmp,
					})
				}
			}
		}
	}
	out := make([]Candidate, 0, len(acc))
	for _, c := range acc {
		if len(c.Seeds) >= opt.MinShared {
			out = append(out, *c)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].I != out[b].I {
			return out[a].I < out[b].I
		}
		return out[a].J < out[b].J
	})
	return out
}
