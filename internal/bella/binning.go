package bella

import "sort"

// ChosenSeed is the binning outcome for one candidate pair: the seed the
// extension starts from, the orientation, and the overlap-length estimate
// used by the adaptive threshold.
type ChosenSeed struct {
	PosI, PosJ int32
	Opposite   bool
	EstOverlap int // estimated overlap length in bases
	BinSupport int // k-mers in the winning bin
}

// ChooseSeed implements BELLA's binning mechanism (paper §V): shared
// k-mers are grouped by the diagonal they lie on (posI - posJ) within a
// bin width, separately per orientation; the densest bin wins (a repeat
// k-mer lands on a stray diagonal and is outvoted), and its median seed is
// the one the aligner extends. The overlap length is estimated from the
// winning diagonal and the read lengths.
func ChooseSeed(c Candidate, lenI, lenJ, k, binWidth int) ChosenSeed {
	if binWidth <= 0 {
		binWidth = 500
	}
	type bin struct {
		count int
		seeds []SharedSeed
	}
	bins := make(map[int64]*bin)
	keyOf := func(s SharedSeed) int64 {
		pj := int64(s.PosJ)
		if s.Opposite {
			// Map the J position onto the reverse strand so the diagonal
			// is stable for opposite-strand seeds.
			pj = int64(lenJ-k) - int64(s.PosJ)
		}
		diag := int64(s.PosI) - pj
		b := diag / int64(binWidth)
		if s.Opposite {
			b = b*2 + 1
		} else {
			b = b * 2
		}
		return b
	}
	for _, s := range c.Seeds {
		kb := keyOf(s)
		if bins[kb] == nil {
			bins[kb] = &bin{}
		}
		bins[kb].count++
		bins[kb].seeds = append(bins[kb].seeds, s)
	}
	// Densest bin, ties broken by key for determinism.
	var bestKey int64
	var best *bin
	for kb, b := range bins {
		if best == nil || b.count > best.count || (b.count == best.count && kb < bestKey) {
			best, bestKey = b, kb
		}
	}
	sort.Slice(best.seeds, func(a, b int) bool { return best.seeds[a].PosI < best.seeds[b].PosI })
	sel := best.seeds[len(best.seeds)/2]

	out := ChosenSeed{PosI: sel.PosI, PosJ: sel.PosJ, Opposite: sel.Opposite, BinSupport: best.count}
	// Overlap estimate: with the seed at (pi, pj) the overlap extends
	// min(pi, pj) to the left and min(lenI-pi, lenJ-pj) to the right
	// (using the orientation-corrected J position).
	pj := int(sel.PosJ)
	if sel.Opposite {
		pj = lenJ - k - pj
	}
	left := min(int(sel.PosI), pj)
	right := min(lenI-int(sel.PosI), lenJ-pj)
	out.EstOverlap = left + right
	if out.EstOverlap < k {
		out.EstOverlap = k
	}
	return out
}
