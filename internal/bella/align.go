package bella

import (
	"context"
	"fmt"
	"time"

	"logan/internal/core"
	"logan/internal/genome"
	"logan/internal/loadbal"
	"logan/internal/seq"
	"logan/internal/xdrop"
)

// AlignerStats summarizes the alignment stage for the time models.
type AlignerStats struct {
	Pairs      int
	Cells      int64
	MaxBand    int
	MeanBand   float64
	WallTime   time.Duration // measured Go wall time
	DeviceTime time.Duration // modeled GPU time (GPU aligner only)
}

// Aligner is the pluggable pairwise-alignment stage: BELLA ships with
// SeqAn on CPU threads; the paper's contribution swaps in LOGAN batches on
// GPUs (§V), and package logan injects its public engine (shared with the
// serve path) through this interface. Implementations must return results
// positionally aligned with the input pairs and bit-identical scores
// (every substrate implements the same X-drop semantics), and should
// observe ctx cancellation at their natural granularity.
type Aligner interface {
	Name() string
	AlignPairs(ctx context.Context, pairs []seq.Pair, sc xdrop.Scoring, x int32) ([]xdrop.SeedResult, AlignerStats, error)
}

// CPUAligner is the SeqAn-style baseline: independent pairwise alignments
// across worker threads (OpenMP in the original).
type CPUAligner struct {
	Workers int
}

// Name identifies the aligner in reports.
func (a CPUAligner) Name() string { return "seqan-cpu" }

// AlignPairs runs the serial X-drop kernel across the worker pool.
// Cancellation is observed per pair by the pool's workers.
func (a CPUAligner) AlignPairs(ctx context.Context, pairs []seq.Pair, sc xdrop.Scoring, x int32) ([]xdrop.SeedResult, AlignerStats, error) {
	start := time.Now()
	res, stats, err := xdrop.ExtendBatchContext(ctx, pairs, sc, x, a.Workers)
	if err != nil {
		return nil, AlignerStats{}, err
	}
	return res, AlignerStats{
		Pairs:    stats.Pairs,
		Cells:    stats.Cells,
		MaxBand:  stats.MaxBand,
		MeanBand: stats.MeanBand(),
		WallTime: time.Since(start),
	}, nil
}

// GPUAligner batches the whole alignment set onto the simulated GPU pool —
// the modification the paper makes to BELLA (§V): instead of aligning
// pair-by-pair per CPU thread, the entire set is shipped to the devices.
type GPUAligner struct {
	Pool *loadbal.Pool
}

// Name identifies the aligner in reports.
func (a GPUAligner) Name() string { return fmt.Sprintf("logan-gpu-x%d", len(a.Pool.Devices)) }

// AlignPairs dispatches the batch through the load balancer. Cancellation
// is observed at device memory-chunk boundaries.
func (a GPUAligner) AlignPairs(ctx context.Context, pairs []seq.Pair, sc xdrop.Scoring, x int32) ([]xdrop.SeedResult, AlignerStats, error) {
	start := time.Now()
	cfg := core.Config{Scoring: sc, X: x}
	res, err := a.Pool.AlignIntoContext(ctx, nil, pairs, cfg, loadbal.ByLength)
	if err != nil {
		return nil, AlignerStats{}, err
	}
	st := AlignerStats{
		Pairs:      len(pairs),
		Cells:      res.Cells,
		WallTime:   time.Since(start),
		DeviceTime: res.TotalTime,
	}
	for i := range res.Results {
		if b := res.Results[i].Left.MaxBand; b > st.MaxBand {
			st.MaxBand = b
		}
		if b := res.Results[i].Right.MaxBand; b > st.MaxBand {
			st.MaxBand = b
		}
	}
	return res.Results, st, nil
}

// BuildAlignmentPairs materializes the candidate pairs plus chosen seeds
// into the flat pair list the aligners consume. Opposite-strand candidates
// get a reverse-complemented target with the seed position remapped.
func BuildAlignmentPairs(reads []genome.Read, cands []Candidate, seeds []ChosenSeed, k int) []seq.Pair {
	pairs := make([]seq.Pair, len(cands))
	for i, c := range cands {
		ri, rj := reads[c.I], reads[c.J]
		target := rj.Seq
		pj := int(seeds[i].PosJ)
		if seeds[i].Opposite {
			target = rj.Seq.RevComp()
			pj = len(rj.Seq) - k - pj
		}
		pairs[i] = seq.Pair{
			Query:    ri.Seq,
			Target:   target,
			SeedQPos: int(seeds[i].PosI),
			SeedTPos: pj,
			SeedLen:  k,
			ID:       i,
		}
	}
	return pairs
}
