package bella

import (
	"context"
	"fmt"
	"time"

	"logan/internal/genome"
	"logan/internal/seq"
	"logan/internal/sw"
	"logan/internal/xdrop"
)

// Stage names one pipeline phase in Progress updates.
type Stage string

// Pipeline stages in execution order. StageDone is emitted once after the
// filter stage with the final counters.
const (
	StageCount   Stage = "count"
	StagePrune   Stage = "prune"
	StageMatrix  Stage = "matrix"
	StageSpGEMM  Stage = "spgemm"
	StageBinning Stage = "binning"
	StageAlign   Stage = "align"
	StageFilter  Stage = "filter"
	StageDone    Stage = "done"
)

// Progress is one pipeline progress update, emitted via Config.OnProgress
// when a stage completes and, during the alignment stage, after every
// aligned chunk (see Config.AlignBatch). Counter fields are cumulative and
// only ever grow; fields a stage has not reached yet are zero.
type Progress struct {
	Stage         Stage
	ReliableKmers int // after StagePrune
	Candidates    int // after StageSpGEMM
	// PairsAligned/PairsTotal track the alignment stage; PairsTotal is set
	// from StageBinning on (the candidate pairs the aligner will extend).
	PairsAligned, PairsTotal int
	Overlaps                 int // accepted overlaps, after StageFilter
}

// Config parameterizes the pipeline.
type Config struct {
	K          int     // k-mer length (BELLA default 17)
	Coverage   float64 // data set coverage, for the reliable-k-mer model
	ErrorRate  float64 // per-read error rate
	X          int32   // X-drop threshold for the alignment stage
	Scoring    xdrop.Scoring
	BinWidth   int     // binning diagonal width (default 500)
	MinShared  int     // min shared reliable k-mers per candidate
	MaxSeeds   int     // seeds retained per pair
	Delta      float64 // adaptive-threshold cushion (default 0.25)
	Workers    int     // CPU workers for counting
	ReliableLo int32   // override reliable bounds when > 0
	ReliableHi int32
	// MinOverlap drops accepted overlaps whose aligned query extent is
	// shorter than this many bases (BELLA reports >= 2 kb on real data).
	MinOverlap int
	// Traceback recovers base-level alignments (CIGAR) for the accepted
	// overlaps in a CPU post-pass. LOGAN itself is score-only (paper
	// §IV-A); real pipelines recompute alignments only for survivors,
	// which is what this does.
	Traceback bool
	// AlignBatch chunks the alignment stage: candidate pairs are handed to
	// the Aligner at most AlignBatch at a time, with a context check and a
	// Progress update between chunks, so long alignment stages cancel
	// promptly and report incremental progress. 0 aligns everything in one
	// batch (the original behavior).
	AlignBatch int
	// OnProgress, when non-nil, receives pipeline progress updates. It is
	// called synchronously from Run's goroutine and must be fast; results
	// are deterministic regardless of whether it is set.
	OnProgress func(Progress)
}

// progress emits one update when a hook is installed.
func (c *Config) progress(p Progress) {
	if c.OnProgress != nil {
		c.OnProgress(p)
	}
}

// DefaultConfig mirrors BELLA's defaults for a long-read set.
func DefaultConfig(coverage, errRate float64, x int32) Config {
	return Config{
		K: 17, Coverage: coverage, ErrorRate: errRate, X: x,
		Scoring: xdrop.DefaultScoring(), BinWidth: 500,
		MinShared: 1, MaxSeeds: 16, Delta: 0.25,
	}
}

// Overlap is one accepted read overlap.
type Overlap struct {
	I, J     int32
	Score    int32
	Opposite bool
	// Extents of the alignment on both reads.
	QBegin, QEnd, TBegin, TEnd int
	EstOverlap                 int
	// CIGAR and Identity are filled when Config.Traceback is set.
	CIGAR    string
	Identity float64
}

// StageTimes records measured wall time per pipeline stage.
type StageTimes struct {
	Count     time.Duration
	Prune     time.Duration
	Matrix    time.Duration
	SpGEMM    time.Duration
	Binning   time.Duration
	Alignment time.Duration
	Filter    time.Duration
}

// Total sums all stages.
func (s StageTimes) Total() time.Duration {
	return s.Count + s.Prune + s.Matrix + s.SpGEMM + s.Binning + s.Alignment + s.Filter
}

// Result is the pipeline outcome with full stage accounting.
type Result struct {
	Overlaps   []Overlap
	Candidates int
	Reliable   int
	NNZ        int64
	Times      StageTimes
	Align      AlignerStats
	Bounds     [2]int32
}

// Prepared is the outcome of the overlap-detection phase (stages 1-5):
// everything before the pairwise-alignment stage that LOGAN accelerates.
// The experiment harness reuses one Prepared across an X sweep, since X
// only affects alignment.
type Prepared struct {
	Cands      []Candidate
	Seeds      []ChosenSeed
	Pairs      []seq.Pair
	Candidates int
	Reliable   int
	NNZ        int64
	Bounds     [2]int32
	Times      StageTimes // alignment/filter left zero
}

// Prepare runs k-mer counting, pruning, matrix construction, SpGEMM and
// binning — BELLA's overlap-detection phase. The context is checked
// between stages, so a cancelled preparation stops at the next stage
// boundary and returns the context's error.
func Prepare(ctx context.Context, rs genome.ReadSet, cfg Config) (Prepared, error) {
	var out Prepared
	if cfg.K <= 0 || cfg.K > seq.MaxK {
		return out, fmt.Errorf("bella: k=%d outside (0,%d]", cfg.K, seq.MaxK)
	}
	if err := cfg.Scoring.Validate(); err != nil {
		return out, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if len(rs.Reads) == 0 {
		return out, nil
	}

	// Stage 1: k-mer counting.
	t0 := time.Now()
	idx := CountKmers(rs.Reads, cfg.K, cfg.Workers)
	out.Times.Count = time.Since(t0)
	cfg.progress(Progress{Stage: StageCount})
	if err := ctx.Err(); err != nil {
		return out, err
	}

	// Stage 2: reliable-k-mer pruning.
	t0 = time.Now()
	lo, hi := cfg.ReliableLo, cfg.ReliableHi
	if lo <= 0 || hi <= 0 {
		lo, hi = ReliableBounds(cfg.Coverage, cfg.ErrorRate, cfg.K, 1e-3)
	}
	out.Bounds = [2]int32{lo, hi}
	reliable := idx.Reliable(lo, hi)
	out.Reliable = len(reliable)
	out.Times.Prune = time.Since(t0)
	cfg.progress(Progress{Stage: StagePrune, ReliableKmers: out.Reliable})
	if err := ctx.Err(); err != nil {
		return out, err
	}

	// Stage 3: sparse matrix construction.
	t0 = time.Now()
	mat := BuildMatrix(rs.Reads, cfg.K, reliable)
	out.NNZ = mat.NNZ
	out.Times.Matrix = time.Since(t0)
	cfg.progress(Progress{Stage: StageMatrix, ReliableKmers: out.Reliable})
	if err := ctx.Err(); err != nil {
		return out, err
	}

	// Stage 4: SpGEMM overlap detection.
	t0 = time.Now()
	out.Cands = mat.SpGEMM(SpGEMMOptions{MaxSeedsPerPair: cfg.MaxSeeds, MinShared: cfg.MinShared})
	out.Candidates = len(out.Cands)
	out.Times.SpGEMM = time.Since(t0)
	cfg.progress(Progress{Stage: StageSpGEMM, ReliableKmers: out.Reliable, Candidates: out.Candidates})
	if err := ctx.Err(); err != nil {
		return out, err
	}

	// Stage 5: binning and seed choice.
	t0 = time.Now()
	out.Seeds = make([]ChosenSeed, len(out.Cands))
	for i, c := range out.Cands {
		out.Seeds[i] = ChooseSeed(c, len(rs.Reads[c.I].Seq), len(rs.Reads[c.J].Seq), cfg.K, cfg.BinWidth)
	}
	out.Pairs = BuildAlignmentPairs(rs.Reads, out.Cands, out.Seeds, cfg.K)
	out.Times.Binning = time.Since(t0)
	cfg.progress(Progress{
		Stage: StageBinning, ReliableKmers: out.Reliable,
		Candidates: out.Candidates, PairsTotal: len(out.Pairs),
	})
	return out, ctx.Err()
}

// Run executes the full BELLA pipeline over the read set with the given
// alignment backend. Cancelling ctx stops the pipeline at the next stage
// boundary — or, with Config.AlignBatch set, at the next alignment chunk —
// and returns the context's error.
func Run(ctx context.Context, rs genome.ReadSet, cfg Config, aligner Aligner) (Result, error) {
	var out Result
	if ctx == nil {
		ctx = context.Background()
	}
	prep, err := Prepare(ctx, rs, cfg)
	if err != nil {
		return out, err
	}
	if len(rs.Reads) == 0 {
		return out, nil
	}
	out.Candidates = prep.Candidates
	out.Reliable = prep.Reliable
	out.NNZ = prep.NNZ
	out.Bounds = prep.Bounds
	out.Times = prep.Times
	cands, seeds, pairs := prep.Cands, prep.Seeds, prep.Pairs

	// Stage 6: pairwise alignment (the 90%-of-runtime stage LOGAN moves
	// to the GPU), chunked by AlignBatch so cancellation is observed and
	// progress reported mid-stage.
	t0 := time.Now()
	aligned, astats, err := alignChunked(ctx, pairs, cfg, aligner, prep)
	if err != nil {
		return out, fmt.Errorf("bella: alignment stage: %w", err)
	}
	out.Align = astats
	out.Times.Alignment = time.Since(t0)

	// Stage 7: adaptive-threshold filtering, plus the optional traceback
	// post-pass on survivors.
	t0 = time.Now()
	for i, c := range cands {
		th := AdaptiveThreshold(cfg.ErrorRate, cfg.Delta, seeds[i].EstOverlap)
		if aligned[i].QEnd-aligned[i].QBegin < cfg.MinOverlap {
			continue
		}
		if aligned[i].Score < th {
			continue
		}
		ov := Overlap{
			I: c.I, J: c.J,
			Score:    aligned[i].Score,
			Opposite: seeds[i].Opposite,
			QBegin:   aligned[i].QBegin, QEnd: aligned[i].QEnd,
			TBegin: aligned[i].TBegin, TEnd: aligned[i].TEnd,
			EstOverlap: seeds[i].EstOverlap,
		}
		if cfg.Traceback {
			p := pairs[i]
			band := max(64, (aligned[i].Left.MaxBand+aligned[i].Right.MaxBand)/2+16)
			ga, err := sw.GlobalAlignBanded(
				p.Query[ov.QBegin:ov.QEnd], p.Target[ov.TBegin:ov.TEnd], cfg.Scoring, band)
			if err != nil {
				return out, fmt.Errorf("bella: traceback for pair (%d,%d): %w", c.I, c.J, err)
			}
			ov.CIGAR = ga.CIGAR()
			ov.Identity = ga.Identity()
		}
		out.Overlaps = append(out.Overlaps, ov)
	}
	out.Times.Filter = time.Since(t0)
	done := Progress{
		Stage: StageFilter, ReliableKmers: out.Reliable, Candidates: out.Candidates,
		PairsAligned: len(pairs), PairsTotal: len(pairs), Overlaps: len(out.Overlaps),
	}
	cfg.progress(done)
	done.Stage = StageDone
	cfg.progress(done)
	return out, nil
}

// alignChunked feeds the candidate pairs to the aligner in AlignBatch-sized
// chunks (one batch when AlignBatch <= 0), checking ctx and emitting a
// Progress update between chunks, and merges the per-chunk stats.
func alignChunked(ctx context.Context, pairs []seq.Pair, cfg Config, aligner Aligner, prep Prepared) ([]xdrop.SeedResult, AlignerStats, error) {
	chunk := cfg.AlignBatch
	if chunk <= 0 || chunk > len(pairs) {
		chunk = len(pairs)
	}
	var stats AlignerStats
	aligned := make([]xdrop.SeedResult, 0, len(pairs))
	for lo := 0; lo < len(pairs); lo += chunk {
		if err := ctx.Err(); err != nil {
			return nil, AlignerStats{}, err
		}
		hi := min(lo+chunk, len(pairs))
		res, st, err := aligner.AlignPairs(ctx, pairs[lo:hi], cfg.Scoring, cfg.X)
		if err != nil {
			return nil, AlignerStats{}, err
		}
		if len(res) != hi-lo {
			return nil, AlignerStats{}, fmt.Errorf("bella: aligner returned %d results for %d pairs", len(res), hi-lo)
		}
		aligned = append(aligned, res...)
		// Merge stats; MeanBand is re-weighted by per-chunk pair counts (an
		// approximation of the exact anti-diagonal weighting, which the
		// chunk boundary discards).
		if st.MaxBand > stats.MaxBand {
			stats.MaxBand = st.MaxBand
		}
		if stats.Pairs+st.Pairs > 0 {
			stats.MeanBand = (stats.MeanBand*float64(stats.Pairs) + st.MeanBand*float64(st.Pairs)) / float64(stats.Pairs+st.Pairs)
		}
		stats.Pairs += st.Pairs
		stats.Cells += st.Cells
		stats.WallTime += st.WallTime
		stats.DeviceTime += st.DeviceTime
		cfg.progress(Progress{
			Stage: StageAlign, ReliableKmers: prep.Reliable, Candidates: prep.Candidates,
			PairsAligned: hi, PairsTotal: len(pairs),
		})
	}
	return aligned, stats, nil
}
