package bench

import (
	"context"
	"fmt"
	"math/rand"

	"logan/internal/bella"
	"logan/internal/core"
	"logan/internal/cuda"
	"logan/internal/genome"
	"logan/internal/stats"
	"logan/internal/xdrop"
)

// BellaResult is the outcome of a Table IV or V reproduction, with the
// companion speed-up figure (Fig. 10 / Fig. 11).
type BellaResult struct {
	Rows       []Timing3
	Table      stats.Table
	Fig        stats.Chart
	Accuracy   bella.Accuracy // overlap quality of the scaled run (CPU backend)
	CrossoverX int32          // first X where the GPU pipeline wins (paper: ~10-20)
}

// RunBella reproduces one BELLA integration table: the preset stands in
// for the paper's data set, the overlap-detection phase runs once, the
// alignment stage runs (really) for every X on both backends, and the
// paper-scale times are modeled. The CPU column is an anchor fit on the
// first and last X; the GPU columns fit only their constant overhead (the
// overlap phase plus BELLA's batching) on the first X, with the entire
// X-dependence coming from the GPU time model.
func RunBella(scale Scale, preset genome.Preset, paper map[int32]PaperRow3, title, figTitle string, gpus int) (BellaResult, error) {
	var out BellaResult
	rng := rand.New(rand.NewSource(scale.Seed))
	rs := preset.Build(rng)
	cfg := bella.DefaultConfig(preset.Coverage, preset.ErrorRate, 0)
	prep, err := bella.Prepare(context.Background(), rs, cfg)
	if err != nil {
		return out, err
	}
	if len(prep.Pairs) == 0 {
		return out, fmt.Errorf("bench: preset %s produced no overlap candidates", preset.Name)
	}
	factor := float64(preset.PaperAlignments) / float64(len(prep.Pairs))
	platform := POWER9Node()

	// Measure the alignment stage per X on both backends.
	type point struct {
		x        int32
		cpuCells int64
		gpuStats cuda.KernelStats
		gpuCells int64
		transfer int64
	}
	var pts []point
	dev := cuda.MustV100()
	for _, x := range scale.BellaXValues {
		_, cpuStats, err := xdrop.ExtendBatch(prep.Pairs, cfg.Scoring, x, 0)
		if err != nil {
			return out, err
		}
		gres, err := core.AlignBatch(dev, prep.Pairs, core.DefaultConfig(x))
		if err != nil {
			return out, err
		}
		pts = append(pts, point{
			x: x, cpuCells: cpuStats.Cells,
			gpuStats: gres.Stats, gpuCells: gres.Cells, transfer: gres.TransferBytes,
		})
	}

	// CPU column: power-law anchor fit, both ends pinned to the paper
	// (see FitPower for why the BELLA tables need the exponent).
	lo, hi := pts[0], pts[len(pts)-1]
	cpuFit := FitPower(
		float64(lo.cpuCells)*factor, float64(hi.cpuCells)*factor,
		paper[lo.x].Base, paper[hi.x].Base)

	// GPU columns: the physical model provides the LOGAN-stage seconds;
	// a two-anchor linear fit over that stage absorbs the constant
	// overlap-phase cost and the per-cell composition gap between the
	// synthetic preset and the paper's data.
	platform.Host = BellaHostModel()
	imb, err := MeasureImbalance(scale, 25, gpus)
	if err != nil {
		return out, err
	}
	loganStage := func(p point, g int, im float64) float64 {
		scaled := ScaleStats(p.gpuStats, factor)
		tr := int64(float64(p.transfer) * factor)
		return platform.LoganTime(scaled, tr, int(preset.PaperAlignments), g, im).Seconds()
	}
	fit1 := FitAnchorsAffine(loganStage(lo, 1, 1), loganStage(hi, 1, 1), paper[lo.x].GPU1, paper[hi.x].GPU1)
	fitAll := FitAnchorsAffine(loganStage(lo, gpus, imb), loganStage(hi, gpus, imb), paper[lo.x].GPUAll, paper[hi.x].GPUAll)

	t := stats.Table{
		Title: title,
		Headers: []string{"X", "BELLA", "LOGAN-1GPU", fmt.Sprintf("LOGAN-%dGPU", gpus),
			"spd1", fmt.Sprintf("spd%d", gpus),
			"paperB", "paper1", fmt.Sprintf("paper%d", gpus)},
	}
	var xs, sp1, spAll []float64
	for _, p := range pts {
		cpu := cpuFit.Predict(float64(p.cpuCells) * factor)
		g1 := fit1.Predict(loganStage(p, 1, 1))
		gAll := fitAll.Predict(loganStage(p, gpus, imb))
		out.Rows = append(out.Rows, Timing3{X: p.x, Base: cpu, GPU1: g1, GPUAll: gAll})
		if out.CrossoverX == 0 && cpu > g1 {
			out.CrossoverX = p.x
		}
		ref := paper[p.x]
		t.AddRow(p.x, cpu, g1, gAll, cpu/g1, cpu/gAll, ref.Base, ref.GPU1, ref.GPUAll)
		xs = append(xs, float64(p.x))
		sp1 = append(sp1, cpu/g1)
		spAll = append(spAll, cpu/gAll)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("preset %s: %d reads, %d candidate pairs standing in for %d paper alignments (scale %.0fx)",
			preset.Name, len(rs.Reads), len(prep.Pairs), preset.PaperAlignments, factor),
		fmt.Sprintf("all columns anchored at X=%d and X=%d; middle rows predicted from measured work", lo.x, hi.x))
	out.Table = t
	out.Fig = stats.Chart{
		Title: figTitle, XLabel: "X-drop", YLabel: "BELLA speed-up", LogX: true, LogY: true,
		Series: []stats.Series{
			{Name: "1 GPU", Marker: 'o', X: xs, Y: sp1},
			{Name: fmt.Sprintf("%d GPUs", gpus), Marker: '*', X: xs, Y: spAll},
		},
	}

	// Accuracy of the real (scaled) pipeline at a mid X, CPU backend.
	midX := scale.BellaXValues[len(scale.BellaXValues)/2]
	acfg := bella.DefaultConfig(preset.Coverage, preset.ErrorRate, midX)
	acfg.MinOverlap = preset.MinLen / 2
	res, err := bella.Run(context.Background(), rs, acfg, bella.CPUAligner{})
	if err != nil {
		return out, err
	}
	out.Accuracy = bella.Evaluate(rs, res.Overlaps, preset.MinLen/2)
	return out, nil
}

// RunTableIV reproduces Table IV / Fig. 10 (E. coli, 6 GPUs).
func RunTableIV(scale Scale) (BellaResult, error) {
	return RunBella(scale, scale.EColi, TableIVPaper,
		"Table IV: BELLA E. coli, 1.82M alignments (POWER9 + 6x V100)",
		"Fig. 10: BELLA speed-up, E. coli (log-log)", 6)
}

// RunTableV reproduces Table V / Fig. 11 (C. elegans, 6 GPUs).
func RunTableV(scale Scale) (BellaResult, error) {
	return RunBella(scale, scale.CElegans, TableVPaper,
		"Table V: BELLA C. elegans, 235M alignments (POWER9 + 6x V100)",
		"Fig. 11: BELLA speed-up, C. elegans (log-log)", 6)
}
