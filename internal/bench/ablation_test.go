package bench

import (
	"strings"
	"testing"
)

// TestAblations verifies that every §IV design choice pays off in the
// model: the variant must be slower than LOGAN's design (factor > 1).
func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations skipped in -short mode")
	}
	abls, err := RunAblations(QuickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(abls) != 5 {
		t.Fatalf("expected 5 ablations, got %d", len(abls))
	}
	for _, a := range abls {
		if a.Factor <= 1.0 {
			t.Errorf("%s: variant factor %.3f <= 1 — design choice shows no benefit", a.Name, a.Factor)
		}
		if a.Baseline <= 0 || a.Variant <= 0 {
			t.Errorf("%s: missing times %v/%v", a.Name, a.Baseline, a.Variant)
		}
	}
	// The shared-memory occupancy collapse must be the most damaging
	// design regression (the paper's §IV-B argument).
	var shared, coalesce float64
	for _, a := range abls {
		if strings.Contains(a.Name, "shared memory") {
			shared = a.Factor
		}
		if strings.Contains(a.Name, "uncoalesced") {
			coalesce = a.Factor
		}
	}
	if shared < 2 {
		t.Errorf("shared-memory variant only %.2fx slower; expected a heavy occupancy penalty", shared)
	}
	if coalesce <= 1 {
		t.Errorf("uncoalesced variant %.2fx; expected a traffic penalty", coalesce)
	}
	tbl := AblationTable(abls)
	if !strings.Contains(tbl.Render(), "LPT") {
		t.Error("ablation table missing rows")
	}
}

func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		abls, err := RunAblations(QuickScale())
		if err != nil {
			b.Fatal(err)
		}
		for _, a := range abls {
			switch {
			case strings.Contains(a.Name, "threads-for-X"):
				b.ReportMetric(a.Factor, "threads-factor")
			case strings.Contains(a.Name, "shared memory"):
				b.ReportMetric(a.Factor, "shared-factor")
			case strings.Contains(a.Name, "uncoalesced"):
				b.ReportMetric(a.Factor, "coalesce-factor")
			}
		}
	}
}
