package bench

import (
	"time"

	"logan/internal/cuda"
	"logan/internal/perfmodel"
)

// ScaleStats multiplies every extensive quantity of a kernel accounting by
// f: the sample batch's counts become the full-workload counts. Per-block
// maxima (critical path) and occupancy are intensive and stay fixed.
func ScaleStats(s cuda.KernelStats, f float64) cuda.KernelStats {
	out := s
	out.Grid = int(float64(s.Grid) * f)
	if out.Grid < 1 {
		out.Grid = 1
	}
	out.WarpInstrs = int64(float64(s.WarpInstrs) * f)
	out.LaneOps = int64(float64(s.LaneOps) * f)
	out.Iterations = int64(float64(s.Iterations) * f)
	out.Barriers = int64(float64(s.Barriers) * f)
	out.Reductions = int64(float64(s.Reductions) * f)
	out.AccessEvents = int64(float64(s.AccessEvents) * f)
	out.StreamReadBytes = int64(float64(s.StreamReadBytes) * f)
	out.StreamWriteBytes = int64(float64(s.StreamWriteBytes) * f)
	out.ReuseReadBytes = int64(float64(s.ReuseReadBytes) * f)
	out.ReuseWriteBytes = int64(float64(s.ReuseWriteBytes) * f)
	out.DRAMReadBytes = int64(float64(s.DRAMReadBytes) * f)
	out.DRAMWriteBytes = int64(float64(s.DRAMWriteBytes) * f)
	out.Iter.SumNop *= f
	out.Iter.SumNopFill *= f
	out.Iter.SumNopAct *= f
	out.Iter.Count = int64(float64(s.Iter.Count) * f)
	out.PerBlock = nil
	return out
}

// GPUPlatform bundles the device spec, timer and host model for one of
// the paper's nodes.
type GPUPlatform struct {
	Spec  cuda.DeviceSpec
	Timer *perfmodel.GPUTimer
	Host  perfmodel.HostModel
}

// POWER9Node is the Table II/IV/V platform: V100s on NVLink2.
func POWER9Node() GPUPlatform {
	return GPUPlatform{Spec: cuda.TeslaV100(), Timer: perfmodel.NewV100Timer(), Host: perfmodel.DefaultHostModel()}
}

// SkylakeNode is the Table III / Fig. 12 platform: V100s on PCIe 3.0 x16.
func SkylakeNode() GPUPlatform {
	spec := cuda.TeslaV100()
	spec.LinkBW = 13e9 // PCIe 3.0 x16 sustained
	return GPUPlatform{Spec: spec, Timer: perfmodel.NewV100Timer(), Host: perfmodel.DefaultHostModel()}
}

// LoganTime composes the modeled end-to-end LOGAN batch time at paper
// scale: serial host preparation, per-GPU setup, transfers and the kernel
// on the slowest device (work split evenly across GPUs scaled by the
// measured load imbalance), and result collection.
func (p GPUPlatform) LoganTime(stats cuda.KernelStats, transferBytes int64, nPairs, gpus int, imbalance float64) time.Duration {
	if imbalance < 1 {
		imbalance = 1
	}
	perGPU := ScaleStats(stats, imbalance/float64(gpus))
	// Re-evaluate L2 residency at the scaled grid size: the sample batch
	// fits in cache trivially, the full workload's resident set may not.
	cuda.ApplyCacheModel(p.Spec, &perGPU)
	kernel := p.Timer.KernelTime(p.Spec, perGPU)
	copyT := p.Timer.CopyTime(p.Spec, int64(float64(transferBytes)*imbalance/float64(gpus)))
	return p.Host.PrepTime(nPairs) + p.Host.SetupTime(gpus) + kernel + copyT + p.Host.CollectTime(nPairs)
}

// AnchorFit is a two-point linear calibration t = Overhead + Cells/Rate
// fitted on the first and last row of a paper table. The anchor rows then
// match the paper exactly (by construction) and every other row is a
// prediction from measured cell counts.
type AnchorFit struct {
	Overhead float64 // seconds
	Rate     float64 // cells per second
}

// FitAnchors solves the two-point system from (cellsLo, tLo) and
// (cellsHi, tHi). The overhead is clamped at zero: a physical host
// overhead cannot be negative, and the clamp only engages when the
// measured work ratio already exceeds the paper's time ratio.
func FitAnchors(cellsLo, cellsHi float64, tLo, tHi float64) AnchorFit {
	f := FitAnchorsAffine(cellsLo, cellsHi, tLo, tHi)
	if f.Overhead < 0 {
		f.Overhead = 0
	}
	return f
}

// FitAnchorsAffine is FitAnchors without the non-negativity clamp: a pure
// affine calibration from modeled seconds to paper seconds, used where
// the intercept is a fit parameter rather than a physical overhead (the
// BELLA GPU columns, whose stage model already contains the physical
// overheads).
func FitAnchorsAffine(cellsLo, cellsHi float64, tLo, tHi float64) AnchorFit {
	rate := (cellsHi - cellsLo) / (tHi - tLo)
	if rate <= 0 {
		rate = 1
	}
	return AnchorFit{Overhead: tLo - cellsLo/rate, Rate: rate}
}

// Predict returns the modeled time for a cell count.
func (f AnchorFit) Predict(cells float64) float64 {
	return f.Overhead + cells/f.Rate
}

// PowerFit is a two-anchor power-law calibration t = A * cells^Beta, used
// for the BELLA tables where the synthetic preset's work distribution
// differs from the real data set's by a cells-per-alignment composition
// factor that a linear fit cannot absorb (the paper data's spurious
// repeat-induced candidates grow much faster with X than a clean
// synthetic genome's). Both anchors reproduce the paper exactly; middle
// rows are predictions.
type PowerFit struct {
	A    float64
	Beta float64
}

// FitPower solves the two-point power law through (cellsLo, tLo) and
// (cellsHi, tHi).
func FitPower(cellsLo, cellsHi, tLo, tHi float64) PowerFit {
	if cellsLo <= 0 || cellsHi <= cellsLo || tLo <= 0 || tHi <= tLo {
		return PowerFit{A: tLo, Beta: 0}
	}
	beta := logOf(tHi/tLo) / logOf(cellsHi/cellsLo)
	return PowerFit{A: tLo / expOf(beta*logOf(cellsLo)), Beta: beta}
}

// Predict returns the modeled time for a cell count.
func (f PowerFit) Predict(cells float64) float64 {
	if f.Beta == 0 || cells <= 0 {
		return f.A
	}
	return f.A * expOf(f.Beta*logOf(cells))
}

// BellaHostModel returns the host model for the BELLA integration runs:
// the batch is built from in-memory pipeline structures, so the per-pair
// preparation is far cheaper than the standalone benchmark's file-fed
// path (Table IV/V totals imply single-digit microseconds per alignment).
func BellaHostModel() perfmodel.HostModel {
	return perfmodel.HostModel{
		PerPairPrep:    2 * time.Microsecond,
		PerGPUSetup:    25 * time.Millisecond,
		PerPairCollect: 500 * time.Nanosecond,
	}
}

// CachedAnchorFit extends the two-point fit with a cache-pressure curve
// for ksw2 (Table III): a mid anchor pins the in-cache rate, the top
// anchor pins the collapsed rate, and the penalty interpolates
// log-linearly in the per-pair working set between the two regimes.
type CachedAnchorFit struct {
	Overhead float64
	BaseRate float64 // cells/s when the working set fits cache
	WsLo     float64 // working set at the in-cache anchor (bytes)
	WsHi     float64 // working set at the collapsed anchor (bytes)
	Penalty  float64 // rate divisor at WsHi
}

// Predict returns modeled seconds for a cell count at a per-pair working
// set.
func (f CachedAnchorFit) Predict(cells, ws float64) float64 {
	pen := 1.0
	switch {
	case ws <= f.WsLo || f.WsHi <= f.WsLo:
		pen = 1
	case ws >= f.WsHi:
		pen = f.Penalty
	default:
		frac := (logOf(ws) - logOf(f.WsLo)) / (logOf(f.WsHi) - logOf(f.WsLo))
		pen = expOf(logOf(f.Penalty) * frac)
	}
	return f.Overhead + cells*pen/f.BaseRate
}
