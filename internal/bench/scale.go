// Package bench is the experiment harness: one runner per table and
// figure of the paper's evaluation (§VI, §VII). Each runner executes the
// real implementations on a scaled sample of the paper's workload, counts
// the work exactly, scales the counts to the paper's full workload size,
// and converts them into modeled platform times with the hardware models
// of internal/perfmodel. Output tables carry the paper's reference values
// side by side so the reproduction quality is visible in place.
//
// Two kinds of calibration are used and clearly separated:
//   - global hardware constants (internal/perfmodel), set once from the
//     architecture and from single anchor rows, and
//   - per-table two-point anchor fits (first/last row of the paper
//     table), which pin the axis so that every row in between is a
//     genuine prediction from measured work. EXPERIMENTS.md records which
//     rows are anchors.
package bench

import (
	"math/rand"
	"os"
	"strconv"

	"logan/internal/genome"
	"logan/internal/seq"
)

// Scale configures how much of the paper's workload the harness actually
// executes. The paper's sizes (100K pairs, 1.8M / 235M alignments) are
// retained as modeling targets; Pairs and the BELLA preset control the
// measured sample.
type Scale struct {
	// Pairs is the sample size standing in for the 100K-pair set of
	// Tables II/III. Lengths and error rate follow §VI-A.
	Pairs      int
	PaperPairs int
	MinLen     int
	MaxLen     int
	ErrorRate  float64
	SeedLen    int
	Seed       int64

	// XValues is the Table II/III sweep.
	XValues []int32
	// BellaXValues is the Table IV/V sweep.
	BellaXValues []int32

	// EColi / CElegans are the scaled stand-ins for the BELLA data sets.
	EColi    genome.Preset
	CElegans genome.Preset

	// GPUCounts for Fig. 12.
	GPUCounts []int
}

// DefaultScale is the configuration cmd/logan-bench runs: the paper's
// read lengths and X sweeps on a sample small enough for a laptop.
// Environment variables LOGAN_BENCH_PAIRS and LOGAN_BENCH_SEED override
// the sample size and RNG seed.
func DefaultScale() Scale {
	s := Scale{
		Pairs:      16,
		PaperPairs: 100000,
		MinLen:     2500,
		MaxLen:     7500,
		ErrorRate:  0.15,
		SeedLen:    17,
		Seed:       42,
		XValues:    []int32{10, 20, 50, 100, 500, 1000, 2500, 5000},
		BellaXValues: []int32{
			5, 10, 15, 20, 25, 30, 35, 40, 50, 80, 100,
		},
		EColi:     genome.EColiSim(),
		CElegans:  genome.CElegansSim(),
		GPUCounts: []int{1, 2, 3, 4, 5, 6, 7, 8},
	}
	if v, err := strconv.Atoi(os.Getenv("LOGAN_BENCH_PAIRS")); err == nil && v > 0 {
		s.Pairs = v
	}
	if v, err := strconv.ParseInt(os.Getenv("LOGAN_BENCH_SEED"), 10, 64); err == nil {
		s.Seed = v
	}
	return s
}

// QuickScale is the configuration the Go test/benchmark suite uses:
// shorter reads, sparser sweeps, tiny BELLA presets — enough to verify
// every shape criterion in seconds.
func QuickScale() Scale {
	s := DefaultScale()
	s.Pairs = 6
	s.MinLen = 2000
	s.MaxLen = 5000
	s.XValues = []int32{10, 100, 1000, 2500}
	s.BellaXValues = []int32{5, 20, 100}
	s.EColi = genome.Preset{
		Name: "ecoli-quick", GenomeLen: 60_000, Coverage: 5,
		MinLen: 800, MaxLen: 1800, ErrorRate: 0.15, RepeatFrac: 0.02,
		PaperAlignments: 1_820_000,
	}
	s.CElegans = genome.Preset{
		Name: "celegans-quick", GenomeLen: 90_000, Coverage: 6,
		MinLen: 800, MaxLen: 1800, ErrorRate: 0.15, RepeatFrac: 0.05,
		PaperAlignments: 235_000_000,
	}
	s.GPUCounts = []int{1, 2, 4, 8}
	return s
}

// PairSet builds (deterministically) the sample standing in for the
// 100K-pair evaluation set. Seeds are planted near the read starts, the
// geometry BELLA-style overlap detection feeds to the aligner (and the
// one under which per-pair DP volumes reproduce the paper's GCUPS
// accounting).
func (s Scale) PairSet() []seq.Pair {
	rng := rand.New(rand.NewSource(s.Seed))
	return seq.RandPairSet(rng, seq.PairSetOptions{
		N: s.Pairs, MinLen: s.MinLen, MaxLen: s.MaxLen,
		ErrorRate: s.ErrorRate, SeedLen: s.SeedLen, SeedPosFrac: 0.05,
	})
}

// Factor is the count scale-up from the sample to the paper workload.
func (s Scale) Factor() float64 { return float64(s.PaperPairs) / float64(s.Pairs) }
