package bench

import (
	"strings"
	"testing"

	"logan/internal/cuda"
)

// The tests here assert the DESIGN.md shape criteria on the quick scale:
// who wins, by roughly what factor, and where crossovers fall. Absolute
// magnitudes are checked loosely (the anchors pin them by construction).

func testScale(t *testing.T) Scale {
	t.Helper()
	if testing.Short() {
		t.Skip("bench harness skipped in -short mode")
	}
	return QuickScale()
}

func TestScaleStats(t *testing.T) {
	s := cuda.KernelStats{Grid: 10, WarpInstrs: 100, LaneOps: 50, StreamReadBytes: 30,
		MaxBlockWarpInstrs: 7}
	s.Iter.SumNop = 4
	d := ScaleStats(s, 2.5)
	if d.Grid != 25 || d.WarpInstrs != 250 || d.LaneOps != 125 || d.StreamReadBytes != 75 {
		t.Fatalf("scaled: %+v", d)
	}
	if d.MaxBlockWarpInstrs != 7 {
		t.Fatal("per-block maximum must not scale")
	}
	if d.Iter.SumNop != 10 {
		t.Fatal("iteration aggregate not scaled")
	}
}

func TestFitAnchors(t *testing.T) {
	fit := FitAnchors(1e9, 9e9, 2, 10)
	if fit.Rate != 1e9 {
		t.Fatalf("rate = %v", fit.Rate)
	}
	if fit.Overhead != 1 {
		t.Fatalf("overhead = %v", fit.Overhead)
	}
	// Anchors are exactly reproduced.
	if got := fit.Predict(1e9); got != 2 {
		t.Fatalf("predict(lo) = %v", got)
	}
	if got := fit.Predict(9e9); got != 10 {
		t.Fatalf("predict(hi) = %v", got)
	}
	// Degenerate fit stays positive.
	d := FitAnchors(5, 5, 3, 2)
	if d.Rate <= 0 {
		t.Fatal("degenerate rate")
	}
}

func TestCachedAnchorFit(t *testing.T) {
	f := CachedAnchorFit{Overhead: 1, BaseRate: 1e9, WsLo: 1e4, WsHi: 1e6, Penalty: 10}
	inCache := f.Predict(1e9, 1e3)
	atHi := f.Predict(1e9, 1e6)
	beyond := f.Predict(1e9, 1e8)
	if inCache != 2 {
		t.Fatalf("in-cache = %v", inCache)
	}
	if atHi != 11 {
		t.Fatalf("at collapse = %v", atHi)
	}
	if beyond != atHi {
		t.Fatalf("beyond collapse should be flat: %v vs %v", beyond, atHi)
	}
	mid := f.Predict(1e9, 1e5)
	if mid <= inCache || mid >= atHi {
		t.Fatalf("mid penalty %v not between regimes", mid)
	}
}

func TestTableIShape(t *testing.T) {
	scale := testScale(t)
	res, err := RunTableI(scale)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 9.3x intra; ours must land in the single-to-low-double
	// digits, far from both 1x and the thread count 128x.
	if res.SpeedupIntra < 2 || res.SpeedupIntra > 64 {
		t.Fatalf("intra speed-up %.1f outside plausible band (paper 9.3)", res.SpeedupIntra)
	}
	// Paper: 22000x inter; ours must be >= three orders of magnitude.
	if res.SpeedupInter < 1000 {
		t.Fatalf("inter speed-up %.0f under 1000x (paper 22000)", res.SpeedupInter)
	}
	if !strings.Contains(res.Table.Render(), "Intra+inter") {
		t.Fatal("table missing rows")
	}
}

func TestTableIIShape(t *testing.T) {
	scale := testScale(t)
	res, err := RunTableII(scale)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows
	for i, r := range rows {
		if !r.ScoreEq {
			t.Fatalf("X=%d: GPU scores not equal to SeqAn", r.X)
		}
		// LOGAN always wins on this table (paper: 2.3-6.6x single GPU).
		if r.GPU1 >= r.Base {
			t.Fatalf("X=%d: LOGAN 1GPU %.2fs not faster than SeqAn %.2fs", r.X, r.GPU1, r.Base)
		}
		if r.GPUAll >= r.Base {
			t.Fatalf("X=%d: LOGAN 6GPU not faster than SeqAn", r.X)
		}
		// Times grow with X for both.
		if i > 0 && (r.Base <= rows[i-1].Base || r.GPU1 < rows[i-1].GPU1) {
			t.Fatalf("X=%d: times not monotone in X", r.X)
		}
	}
	// Speed-up grows with X (paper: 2.3x -> 6.6x).
	first := rows[0].Base / rows[0].GPU1
	last := rows[len(rows)-1].Base / rows[len(rows)-1].GPU1
	if last <= first {
		t.Fatalf("single-GPU speed-up did not grow with X: %.2f -> %.2f", first, last)
	}
	// Multi-GPU beats single GPU at large X.
	if rows[len(rows)-1].GPUAll >= rows[len(rows)-1].GPU1 {
		t.Fatal("6 GPUs not faster than 1 at large X")
	}
}

func TestTableIIIShape(t *testing.T) {
	scale := testScale(t)
	res, err := RunTableIII(scale)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows
	// ksw2 collapses at large X: the last/first baseline ratio must be
	// far larger than LOGAN's (paper: 465x vs 11x).
	baseGrowth := rows[len(rows)-1].Base / rows[0].Base
	gpuGrowth := rows[len(rows)-1].GPU1 / rows[0].GPU1
	if baseGrowth < 5*gpuGrowth {
		t.Fatalf("ksw2 growth %.1fx vs LOGAN %.1fx: collapse shape missing", baseGrowth, gpuGrowth)
	}
	for _, r := range rows {
		if r.GPU1 >= r.Base {
			t.Fatalf("X=%d: LOGAN not faster than ksw2 (%.2f vs %.2f)", r.X, r.GPU1, r.Base)
		}
	}
	// LOGAN's GCUPS beat the paper's ksw2 peak (paper: 181.4 vs 77.6; at
	// quick scale LOGAN's fixed host cost weighs more, so the margin is
	// checked at 1.2x — DefaultScale reproduces the full gap, see
	// EXPERIMENTS.md).
	if res.PeakGCUPS < 1.2*PaperGCUPS.Ksw2X100 {
		t.Fatalf("LOGAN peak GCUPS %.1f not above ksw2's %.1f", res.PeakGCUPS, PaperGCUPS.Ksw2X100)
	}
}

func TestTableIVShape(t *testing.T) {
	scale := testScale(t)
	res, err := RunTableIV(scale)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows
	// The GPU loses at the smallest X (paper: 53.2 vs 110.4) ...
	if rows[0].GPU1 <= rows[0].Base {
		t.Fatalf("X=%d: GPU should lose at small X (%.1f vs %.1f)", rows[0].X, rows[0].GPU1, rows[0].Base)
	}
	// ... and wins by several-fold at the largest X (paper: 4.5x at 100).
	last := rows[len(rows)-1]
	if last.Base/last.GPU1 < 2 {
		t.Fatalf("X=%d: speed-up %.2f under 2x", last.X, last.Base/last.GPU1)
	}
	if res.CrossoverX == 0 {
		t.Fatal("no crossover found")
	}
	// Accuracy of the real scaled pipeline.
	if res.Accuracy.Recall < 0.5 || res.Accuracy.Precision < 0.6 {
		t.Fatalf("accuracy too low: %+v", res.Accuracy)
	}
}

func TestTableVShape(t *testing.T) {
	scale := testScale(t)
	res, err := RunTableV(scale)
	if err != nil {
		t.Fatal(err)
	}
	last := res.Rows[len(res.Rows)-1]
	// Paper: ~4.2x at X=100 on 1 GPU, ~6.8x on 6.
	if last.Base/last.GPU1 < 2 {
		t.Fatalf("C. elegans large-X speed-up %.2f under 2x", last.Base/last.GPU1)
	}
	if last.GPUAll >= last.GPU1 {
		t.Fatal("6 GPUs not faster than 1 on the large data set")
	}
}

func TestFig12Shape(t *testing.T) {
	scale := testScale(t)
	res, err := RunFig12(scale)
	if err != nil {
		t.Fatal(err)
	}
	// LOGAN beats both comparators at every GPU count.
	for i, g := range res.GPUCounts {
		if res.Logan[i] <= res.CUDASW[i] {
			t.Fatalf("%d GPUs: LOGAN %.1f <= CUDASW++ %.1f GCUPS", g, res.Logan[i], res.CUDASW[i])
		}
	}
	if res.Logan[0] <= res.Manymap {
		t.Fatalf("1 GPU: LOGAN %.1f <= manymap %.1f GCUPS", res.Logan[0], res.Manymap)
	}
	// GCUPS grow with GPU count, sub-linearly.
	n := len(res.GPUCounts)
	if res.Logan[n-1] <= res.Logan[0] {
		t.Fatal("LOGAN GCUPS did not scale with GPUs")
	}
	perfect := res.Logan[0] * float64(res.GPUCounts[n-1])
	if res.Logan[n-1] >= perfect {
		t.Fatal("multi-GPU scaling should be sub-linear (load balancer overhead)")
	}
	// Paper: 8-GPU LOGAN ~3.2x GPU-only CUDASW++. At quick scale LOGAN's
	// host share compresses the gap; require dominance plus a sane band
	// (DefaultScale lands near 2x, see EXPERIMENTS.md).
	ratio := res.Logan[n-1] / res.CUDASW[n-1]
	if ratio < 1.0 || ratio > 8 {
		t.Fatalf("LOGAN/CUDASW++ ratio %.2f outside [1, 8] (paper 3.2)", ratio)
	}
	// Paper ordering at one GPU: LOGAN > manymap > CUDASW++ GPU-only.
	if res.Manymap <= res.CUDASW[0] {
		t.Fatalf("manymap %.1f should beat single-GPU CUDASW++ %.1f (paper: 96 vs 70)", res.Manymap, res.CUDASW[0])
	}
}

func TestFig13Shape(t *testing.T) {
	scale := testScale(t)
	res, err := RunFig13(scale)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	// Paper: the kernel is compute-bound and near the adapted ceiling.
	if !rep.ComputeBound {
		t.Fatalf("kernel memory-bound: OI %.3f < ridge %.3f", rep.OI, rep.Ridge)
	}
	if rep.CeilingFraction < 0.5 || rep.CeilingFraction > 1.1 {
		t.Fatalf("achieved/adapted ceiling = %.2f, want near 1", rep.CeilingFraction)
	}
	if rep.AdaptedCeiling > rep.Model.INT32GIPS {
		t.Fatal("adapted ceiling above the INT32 roof")
	}
	if !strings.Contains(res.Plot, "K") {
		t.Fatal("plot missing kernel point")
	}
}
