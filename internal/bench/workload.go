package bench

import (
	"fmt"
	"math"
	"math/rand"

	"logan/internal/core"
	"logan/internal/cuda"
	"logan/internal/ksw2"
	"logan/internal/loadbal"
	"logan/internal/seq"
	"logan/internal/xdrop"
)

func logOf(x float64) float64 { return math.Log(x) }
func expOf(x float64) float64 { return math.Exp(x) }

// SweepPoint is the measured work at one X value on the sample pair set:
// everything the models need, from all three implementations run on the
// identical input.
type SweepPoint struct {
	X int32

	// SeqAn-style CPU X-drop.
	SeqAnCells    int64
	SeqAnMeanBand float64
	SeqAnMaxBand  int

	// ksw2 Z-drop (affine).
	Ksw2Cells    int64
	Ksw2MeanBand float64
	Ksw2MaxBand  int

	// LOGAN on the simulated GPU.
	LoganStats    cuda.KernelStats
	LoganCells    int64
	LoganTransfer int64
	LoganScoreEq  bool // GPU scores identical to the CPU X-drop
}

// MeasureSweep runs SeqAn-style X-drop, ksw2 and LOGAN over the sample
// pairs for every X in the scale and returns the per-X work measurements.
// The LOGAN scores are verified against the CPU scores pair-by-pair; the
// equality result is carried in the point (and asserted by tests) because
// the paper's comparison is only fair at equivalent accuracy.
func MeasureSweep(scale Scale, withKsw2 bool) ([]SweepPoint, error) {
	pairs := scale.PairSet()
	dev := cuda.MustV100()
	points := make([]SweepPoint, 0, len(scale.XValues))
	for _, x := range scale.XValues {
		p := SweepPoint{X: x}

		cpuRes, cpuStats, err := xdrop.ExtendBatch(pairs, xdrop.DefaultScoring(), x, 0)
		if err != nil {
			return nil, fmt.Errorf("bench: seqan sweep X=%d: %w", x, err)
		}
		p.SeqAnCells = cpuStats.Cells
		p.SeqAnMeanBand = cpuStats.MeanBand()
		p.SeqAnMaxBand = cpuStats.MaxBand

		if withKsw2 {
			_, kstats := ksw2.ExtendBatch(pairs, ksw2.MinimapParams(x), 0)
			p.Ksw2Cells = kstats.Cells
			p.Ksw2MeanBand = kstats.MeanBand()
			p.Ksw2MaxBand = kstats.MaxBand
		}

		gpuRes, err := core.AlignBatch(dev, pairs, core.DefaultConfig(x))
		if err != nil {
			return nil, fmt.Errorf("bench: logan sweep X=%d: %w", x, err)
		}
		p.LoganStats = gpuRes.Stats
		p.LoganCells = gpuRes.Cells
		p.LoganTransfer = gpuRes.TransferBytes
		p.LoganScoreEq = true
		for i := range pairs {
			if gpuRes.Results[i].Score != cpuRes[i].Score {
				p.LoganScoreEq = false
				break
			}
		}
		points = append(points, p)
	}
	return points, nil
}

// MeasureImbalance evaluates the load balancer's partition quality at the
// full paper workload size: pair weights are drawn from the scale's
// length distribution (no sequences materialized) and the LPT partition's
// max/mean bucket ratio is returned. Kept as a function of x for
// interface stability (the partition is length-based, not X-based).
func MeasureImbalance(scale Scale, x int32, gpus int) (float64, error) {
	_ = x
	if gpus <= 1 {
		return 1, nil
	}
	rng := rand.New(rand.NewSource(scale.Seed + int64(gpus)))
	weights := make([]int64, scale.PaperPairs)
	for i := range weights {
		ln := scale.MinLen
		if scale.MaxLen > scale.MinLen {
			ln += rng.Intn(scale.MaxLen - scale.MinLen + 1)
		}
		weights[i] = 2 * int64(ln)
	}
	buckets := loadbal.PartitionWeights(weights, gpus, loadbal.ByLength)
	imb := loadbal.ImbalanceOf(weights, buckets)
	if imb < 1 {
		return 1, nil
	}
	return imb, nil
}

// workingSetSeqAn is the per-pair cache working set of the anti-diagonal
// X-drop code: three int32 rolling buffers at the mean band width.
func workingSetSeqAn(meanBand float64) int { return int(meanBand) * 12 }

// workingSetKsw2 is ksw2's per-pair working set: H/E int16 row arrays plus
// the query profile at the maximum band (the row arrays are full-width).
func workingSetKsw2(maxBand int) int { return maxBand * 6 }

// totalBases sums sequence lengths for GCUPS-style normalization.
func totalBases(pairs []seq.Pair) int64 {
	var t int64
	for i := range pairs {
		t += int64(len(pairs[i].Query) + len(pairs[i].Target))
	}
	return t
}
