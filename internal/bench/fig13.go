package bench

import (
	"fmt"
	"logan/internal/core"
	"logan/internal/cuda"
	"logan/internal/roofline"
	"logan/internal/stats"
)

// Fig13Result is the Roofline analysis of the LOGAN kernel (paper
// Fig. 13: 100K alignments, X=100).
type Fig13Result struct {
	Report roofline.Report
	Table  stats.Table
	Plot   string
}

// RunFig13 runs the kernel at X=100 (the paper's Fig. 13 operating
// point), scales the accounting to the paper's 100K-alignment launch, and
// evaluates the instruction Roofline with the Eq. (1) adapted ceiling.
func RunFig13(scale Scale) (Fig13Result, error) { return RunFig13At(scale, 100) }

// RunFig13At is RunFig13 at an arbitrary X, for exploring how the kernel
// moves along the Roofline as the band grows.
func RunFig13At(scale Scale, x int32) (Fig13Result, error) {
	var out Fig13Result
	pairs := scale.PairSet()
	dev := cuda.MustV100()
	res, err := core.AlignBatch(dev, pairs, core.DefaultConfig(x))
	if err != nil {
		return out, err
	}
	platform := POWER9Node()
	scaled := ScaleStats(res.Stats, scale.Factor())
	cuda.ApplyCacheModel(platform.Spec, &scaled)
	kernelTime := platform.Timer.KernelTime(platform.Spec, scaled)
	model := roofline.ForDevice(platform.Spec)
	out.Report = roofline.Analyze(model, scaled, kernelTime)
	out.Plot = out.Report.Render(64, 18)

	t := stats.Table{
		Title:   fmt.Sprintf("Fig. 13: Roofline analysis, LOGAN kernel, %d alignments, X=%d", scale.PaperPairs, x),
		Headers: []string{"metric", "value", "paper"},
	}
	t.AddRow("operational intensity (warpinstr/B)", out.Report.OI, ">= ridge")
	t.AddRow("ridge point", out.Report.Ridge, "0.245")
	t.AddRow("achieved warp GIPS", out.Report.AchievedGIPS, "near ceiling")
	t.AddRow("adapted ceiling (Eq. 1)", out.Report.AdaptedCeiling, "-")
	t.AddRow("INT32 ceiling", model.INT32GIPS, "220.8")
	t.AddRow("compute bound", out.Report.ComputeBound, "true")
	t.AddRow("fraction of adapted ceiling", out.Report.CeilingFraction, "~1")
	out.Table = t
	return out, nil
}
