package bench

import (
	"fmt"

	"logan/internal/stats"
)

// Timing3 is one modeled row of a LOGAN-vs-baseline table.
type Timing3 struct {
	X       int32
	Base    float64 // baseline seconds (modeled)
	GPU1    float64 // LOGAN 1 GPU seconds (modeled)
	GPUAll  float64 // LOGAN all-GPU seconds (modeled)
	GCUPS1  float64 // LOGAN 1-GPU GCUPS
	ScoreEq bool
}

// SweepResult is the outcome of a Table II or III reproduction.
type SweepResult struct {
	Rows  []Timing3
	Table stats.Table
	Fig   stats.Chart // the companion speed-up figure (Fig. 8 / Fig. 9)
	// PeakGCUPS is LOGAN's best single-GPU GCUPS across the sweep
	// (paper: 181.4 at X=5000).
	PeakGCUPS float64
}

// RunTableII reproduces Table II and Fig. 8: LOGAN vs the SeqAn X-drop on
// the POWER9 node, 100K alignments, 6 GPUs. The SeqAn column is an
// anchor fit (first and last X pinned to the paper, middle rows predicted
// from measured cells); the LOGAN columns come entirely from the GPU time
// model.
func RunTableII(scale Scale) (SweepResult, error) {
	points, err := MeasureSweep(scale, false)
	if err != nil {
		return SweepResult{}, err
	}
	return buildSweep(scale, points, sweepSpec{
		title:     "Table II: LOGAN vs SeqAn, 100K alignments (POWER9 + 6x V100)",
		baseName:  "SeqAn-168t",
		gpus:      6,
		platform:  POWER9Node(),
		paper:     TableIIPaper,
		figTitle:  "Fig. 8: LOGAN speed-up over SeqAn (log-log)",
		baseCells: func(p SweepPoint) int64 { return p.SeqAnCells },
		baseFit: func(rows []SweepPoint, f float64) func(SweepPoint) float64 {
			lo, hi := rows[0], rows[len(rows)-1]
			fit := FitAnchors(
				float64(lo.SeqAnCells)*f, float64(hi.SeqAnCells)*f,
				TableIIPaper[lo.X].Base, TableIIPaper[hi.X].Base)
			return func(p SweepPoint) float64 { return fit.Predict(float64(p.SeqAnCells) * f) }
		},
	})
}

// RunTableIII reproduces Table III and Fig. 9: LOGAN vs ksw2 on the
// Skylake node, 100K alignments, 8 GPUs. The ksw2 column uses the
// three-anchor cached fit: per-pair overhead from the smallest X, the
// in-cache rate from X=100, and the cache-collapse penalty from the
// largest X; middle rows are predictions.
func RunTableIII(scale Scale) (SweepResult, error) {
	points, err := MeasureSweep(scale, true)
	if err != nil {
		return SweepResult{}, err
	}
	return buildSweep(scale, points, sweepSpec{
		title:     "Table III: LOGAN vs ksw2, 100K alignments (Skylake + 8x V100)",
		baseName:  "ksw2-80t",
		gpus:      8,
		platform:  SkylakeNode(),
		paper:     TableIIIPaper,
		figTitle:  "Fig. 9: LOGAN speed-up over ksw2 (log-log)",
		baseCells: func(p SweepPoint) int64 { return p.Ksw2Cells },
		baseFit: func(rows []SweepPoint, f float64) func(SweepPoint) float64 {
			lo := rows[0]
			mid := rows[0]
			for _, p := range rows {
				if p.X == 100 {
					mid = p
				}
			}
			if mid.X == lo.X && len(rows) > 2 {
				mid = rows[1]
			}
			hi := rows[len(rows)-1]
			two := FitAnchors(
				float64(lo.Ksw2Cells)*f, float64(mid.Ksw2Cells)*f,
				TableIIIPaper[lo.X].Base, TableIIIPaper[mid.X].Base)
			fit := CachedAnchorFit{
				Overhead: two.Overhead,
				BaseRate: two.Rate,
				WsLo:     float64(workingSetKsw2(mid.Ksw2MaxBand)),
				WsHi:     float64(workingSetKsw2(hi.Ksw2MaxBand)),
			}
			// Solve the collapse penalty so the top anchor is exact.
			tHi := TableIIIPaper[hi.X].Base
			cHi := float64(hi.Ksw2Cells) * f
			fit.Penalty = (tHi - fit.Overhead) * fit.BaseRate / cHi
			if fit.Penalty < 1 {
				fit.Penalty = 1
			}
			return func(p SweepPoint) float64 {
				return fit.Predict(float64(p.Ksw2Cells)*f, float64(workingSetKsw2(p.Ksw2MaxBand)))
			}
		},
	})
}

type sweepSpec struct {
	title     string
	baseName  string
	gpus      int
	platform  GPUPlatform
	paper     map[int32]PaperRow3
	figTitle  string
	baseCells func(SweepPoint) int64
	baseFit   func([]SweepPoint, float64) func(SweepPoint) float64
}

func buildSweep(scale Scale, points []SweepPoint, spec sweepSpec) (SweepResult, error) {
	out := SweepResult{}
	f := scale.Factor()
	predict := spec.baseFit(points, f)
	imb, err := MeasureImbalance(scale, points[len(points)/2].X, spec.gpus)
	if err != nil {
		return out, err
	}

	t := stats.Table{
		Title: spec.title,
		Headers: []string{"X", spec.baseName, "LOGAN-1GPU", fmt.Sprintf("LOGAN-%dGPU", spec.gpus),
			"spd1", fmt.Sprintf("spd%d", spec.gpus), "GCUPS1",
			"paperBase", "paper1", fmt.Sprintf("paper%d", spec.gpus)},
	}
	var sp1, spAll []float64
	var xs []float64
	for _, p := range points {
		base := predict(p)
		scaled := ScaleStats(p.LoganStats, f)
		transfer := int64(float64(p.LoganTransfer) * f)
		g1 := spec.platform.LoganTime(scaled, transfer, scale.PaperPairs, 1, 1).Seconds()
		gAll := spec.platform.LoganTime(scaled, transfer, scale.PaperPairs, spec.gpus, imb).Seconds()
		gc := float64(p.LoganCells) * f / g1 / 1e9
		row := Timing3{X: p.X, Base: base, GPU1: g1, GPUAll: gAll, GCUPS1: gc, ScoreEq: p.LoganScoreEq}
		out.Rows = append(out.Rows, row)
		if gc > out.PeakGCUPS {
			out.PeakGCUPS = gc
		}
		ref := spec.paper[p.X]
		t.AddRow(p.X, base, g1, gAll, base/g1, base/gAll, gc, ref.Base, ref.GPU1, ref.GPUAll)
		xs = append(xs, float64(p.X))
		sp1 = append(sp1, base/g1)
		spAll = append(spAll, base/gAll)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("anchor rows: X=%d and X=%d pinned to paper; others predicted from measured cells (sample %d pairs, scale %.0fx)",
			points[0].X, points[len(points)-1].X, scale.Pairs, f),
		fmt.Sprintf("multi-GPU imbalance measured at %.3f", imb))
	out.Table = t
	out.Fig = stats.Chart{
		Title: spec.figTitle, XLabel: "X-drop", YLabel: "speed-up", LogX: true, LogY: true,
		Series: []stats.Series{
			{Name: "1 GPU", Marker: 'o', X: xs, Y: sp1},
			{Name: fmt.Sprintf("%d GPUs", spec.gpus), Marker: '*', X: xs, Y: spAll},
		},
	}
	return out, nil
}
