package bench

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"logan/internal/cuda"
)

func TestFitPowerAnchorsExact(t *testing.T) {
	f := FitPower(1e9, 2e10, 53.2, 1507.1)
	if got := f.Predict(1e9); math.Abs(got-53.2) > 1e-6 {
		t.Fatalf("lo anchor = %v", got)
	}
	if got := f.Predict(2e10); math.Abs(got-1507.1) > 1e-6 {
		t.Fatalf("hi anchor = %v", got)
	}
	// Monotone between anchors.
	prev := 0.0
	for c := 1e9; c <= 2e10; c *= 1.5 {
		v := f.Predict(c)
		if v < prev {
			t.Fatalf("power fit not monotone at %g", c)
		}
		prev = v
	}
	// Degenerate inputs fall back to a constant.
	d := FitPower(5, 5, 3, 2)
	if d.Predict(100) != 3 {
		t.Fatalf("degenerate fit = %v", d.Predict(100))
	}
}

func TestFitPowerProperty(t *testing.T) {
	f := func(c1Raw, c2Raw, t1Raw, t2Raw uint32) bool {
		// Anchor ratios at least 2x apart, as real tables have: extreme
		// exponents (near-equal cells, huge time gap) are numerically
		// meaningless fits.
		c1 := float64(c1Raw%1000) + 1
		c2 := c1 * (2 + float64(c2Raw%1000))
		t1 := float64(t1Raw%100) + 1
		t2 := t1 + float64(t2Raw%10000) + 1
		fit := FitPower(c1, c2, t1, t2)
		return math.Abs(fit.Predict(c1)-t1) < 1e-6*t1 &&
			math.Abs(fit.Predict(c2)-t2) < 1e-6*t2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestGPUPlatformLoganTimeMonotone(t *testing.T) {
	p := POWER9Node()
	s := cuda.KernelStats{
		Grid: 100000, Block: 128, WarpInstrs: 1e12,
		MaxBlockWarpInstrs: 1e7, MaxBlockIters: 1e4, Barriers: 1e9,
		Occupancy: cuda.TeslaV100().OccupancyFor(128, 0),
	}
	s.Iter.SumNop = 1e6
	s.Iter.SumNopAct = 1e8
	t1 := p.LoganTime(s, 1e9, 100000, 1, 1)
	t2 := p.LoganTime(s, 1e9, 100000, 2, 1)
	t6 := p.LoganTime(s, 1e9, 100000, 6, 1)
	if !(t1 > t2 && t2 > t6) {
		t.Fatalf("GPU scaling not monotone: %v, %v, %v", t1, t2, t6)
	}
	// Imbalance makes things slower.
	tImb := p.LoganTime(s, 1e9, 100000, 6, 1.5)
	if tImb <= t6 {
		t.Fatalf("imbalance 1.5 did not slow the batch: %v vs %v", tImb, t6)
	}
	// Sub-linear: 6 GPUs cannot be a full 6x faster end to end.
	if t1 >= 6*t6 {
		t.Fatalf("scaling super-linear: %v vs 6x %v", t1, t6)
	}
	_ = time.Second
}

func TestMeasureImbalanceProperties(t *testing.T) {
	scale := QuickScale()
	if imb, err := MeasureImbalance(scale, 100, 1); err != nil || imb != 1 {
		t.Fatalf("single GPU imbalance = %v, %v", imb, err)
	}
	for _, g := range []int{2, 6, 8} {
		imb, err := MeasureImbalance(scale, 100, g)
		if err != nil {
			t.Fatal(err)
		}
		if imb < 1 || imb > 1.05 {
			t.Fatalf("LPT imbalance at %d GPUs over 100K pairs = %v, want ~1", g, imb)
		}
	}
}
