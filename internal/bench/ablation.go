package bench

import (
	"fmt"
	"math/rand"
	"time"

	"logan/internal/core"
	"logan/internal/cuda"
	"logan/internal/loadbal"
	"logan/internal/seq"
	"logan/internal/stats"
)

// Ablation is one design-choice comparison: LOGAN's choice vs the
// alternative, on identical inputs, with modeled paper-scale times.
type Ablation struct {
	Name     string
	Baseline time.Duration // LOGAN's design
	Variant  time.Duration // the alternative
	Factor   float64       // Variant / Baseline (>1 = LOGAN's choice wins)
	Note     string
}

// RunAblations evaluates the §IV design points DESIGN.md calls out:
// X-proportional thread scheduling, HBM vs shared-memory anti-diagonals,
// query reversal for coalescing, dual extension streams, and length-aware
// multi-GPU partitioning. Every variant computes bit-identical scores;
// only the execution shape changes.
func RunAblations(scale Scale) ([]Ablation, error) {
	// Mid-read seeds: both extensions carry comparable work, so the
	// left-extension design points (reversal) are fully exercised.
	rng := rand.New(rand.NewSource(scale.Seed))
	pairs := seq.RandPairSet(rng, seq.PairSetOptions{
		N: scale.Pairs, MinLen: scale.MinLen, MaxLen: scale.MaxLen,
		ErrorRate: scale.ErrorRate, SeedLen: scale.SeedLen, SeedPosFrac: 0.5,
	})
	f := scale.Factor()
	platform := POWER9Node()
	var out []Ablation

	// Ablations compare modeled kernel time (the design points are about
	// device efficiency; host costs are identical across variants).
	modeled := func(cfg core.Config) (time.Duration, int64, error) {
		dev := cuda.MustV100()
		res, err := core.AlignBatch(dev, pairs, cfg)
		if err != nil {
			return 0, 0, err
		}
		scaled := ScaleStats(res.Stats, f)
		cuda.ApplyCacheModel(platform.Spec, &scaled)
		return platform.Timer.KernelTime(platform.Spec, scaled), res.Cells, nil
	}

	// 1. Thread scheduling proportional to X (§IV-B) vs a fixed maximal
	// block. Evaluated at small X, where oversized blocks stall lanes.
	const smallX = 20
	base, _, err := modeled(core.DefaultConfig(smallX))
	if err != nil {
		return nil, err
	}
	big := core.DefaultConfig(smallX)
	big.ThreadsPerBlock = 1024
	variant, _, err := modeled(big)
	if err != nil {
		return nil, err
	}
	out = append(out, ablation("threads-for-X vs fixed 1024 (X=20)", base, variant,
		"oversized blocks waste issue slots on stalled lanes"))

	// 2. Anti-diagonals in HBM vs shared memory (§IV-B). Shared memory
	// reserves a worst-case block footprint and caps SM residency at one
	// block, strangling inter-sequence parallelism.
	const midX = 100
	base, _, err = modeled(core.DefaultConfig(midX))
	if err != nil {
		return nil, err
	}
	sharedCfg := core.DefaultConfig(midX)
	sharedCfg.SharedMemAntidiags = true
	variant, _, err = modeled(sharedCfg)
	if err != nil {
		return nil, err
	}
	out = append(out, ablation("HBM anti-diagonals vs shared memory (X=100)", base, variant,
		"60KB/block reservation -> 1 resident block/SM"))

	// 3. Query reversal for coalescing (Fig. 6) vs backward reads.
	noRev := core.DefaultConfig(midX)
	noRev.NoQueryReversal = true
	variant, _, err = modeled(noRev)
	if err != nil {
		return nil, err
	}
	out = append(out, ablation("query reversal vs uncoalesced reads (X=100)", base, variant,
		fmt.Sprintf("uncoalesced sector traffic is %dx", cuda.UncoalescedFactor)))

	// 4. Two extension streams (Fig. 5) vs one. With dual streams the
	// host-to-device copies overlap the other stream's kernel; with a
	// single stream every copy sits on the critical path.
	dev := cuda.MustV100()
	res, err := core.AlignBatch(dev, pairs, core.DefaultConfig(midX))
	if err != nil {
		return nil, err
	}
	copyT := platform.Timer.CopyTime(platform.Spec, int64(float64(res.TransferBytes)*f))
	out = append(out, ablation("dual extension streams vs serialized (X=100)", base, base+copyT,
		"copy/compute overlap across the left/right streams"))

	// 5. Length-aware (LPT) vs round-robin partitioning across 6 GPUs at
	// full workload size, with a heavy-tailed length mix.
	weights := heavyTailWeights(scale)
	lpt := loadbal.ImbalanceOf(weights, loadbal.PartitionWeights(weights, 6, loadbal.ByLength))
	rr := loadbal.ImbalanceOf(weights, loadbal.PartitionWeights(weights, 6, loadbal.RoundRobin))
	lptT := time.Duration(float64(base) * lpt / 6)
	rrT := time.Duration(float64(base) * rr / 6)
	out = append(out, ablation("LPT partition vs round-robin (6 GPUs)", lptT, rrT,
		fmt.Sprintf("imbalance %.3f vs %.3f on a heavy-tailed length mix", lpt, rr)))

	return out, nil
}

func ablation(name string, base, variant time.Duration, note string) Ablation {
	a := Ablation{Name: name, Baseline: base, Variant: variant, Note: note}
	if base > 0 {
		a.Factor = float64(variant) / float64(base)
	}
	return a
}

// heavyTailWeights draws a 2%-giants length mix at paper workload size.
func heavyTailWeights(scale Scale) []int64 {
	weights := make([]int64, scale.PaperPairs)
	for i := range weights {
		ln := scale.MinLen + (i*2654435761)%(scale.MaxLen-scale.MinLen+1)
		if i%50 == 0 {
			ln *= 4
		}
		weights[i] = int64(2 * ln)
	}
	return weights
}

// AblationTable renders the ablation results.
func AblationTable(abls []Ablation) stats.Table {
	t := stats.Table{
		Title:   "Design ablations: LOGAN's choice vs the alternative (modeled, 100K pairs)",
		Headers: []string{"design point", "LOGAN", "variant", "factor"},
	}
	for _, a := range abls {
		t.AddRow(a.Name, fmtDur(a.Baseline), fmtDur(a.Variant), a.Factor)
		t.Notes = append(t.Notes, a.Name+": "+a.Note)
	}
	return t
}
