package bench

import (
	"fmt"

	"logan/internal/core"
	"logan/internal/cuda"
	"logan/internal/stats"
	"logan/internal/sw"
	"logan/internal/xdrop"
)

// HybridBoost is the extra throughput CUDASW++ gains in its default
// hybrid GPU+CPU-SIMD mode over GPU-only execution (its papers report the
// CPU SIMD path contributing roughly a third on balanced systems).
const HybridBoost = 1.35

// Fig12Result is the GPU-comparator GCUPS scaling data (paper Fig. 12).
type Fig12Result struct {
	GPUCounts []int
	Logan     []float64 // GCUPS per GPU count
	CUDASW    []float64 // GPU-only
	CUDASWHyb []float64 // hybrid GPU+SIMD
	Manymap   float64   // single-GPU (flat line)
	Table     stats.Table
	Fig       stats.Chart
}

// RunFig12 measures all three kernels on the same pair sample, scales to
// the 100K-pair workload, and models GCUPS across GPU counts. manymap is
// single-GPU software and plots flat, as in the paper.
func RunFig12(scale Scale) (Fig12Result, error) {
	var out Fig12Result
	pairs := scale.PairSet()
	f := scale.Factor()
	platform := SkylakeNode()
	sc := xdrop.DefaultScoring()

	// LOGAN at its GCUPS peak (X=5000, paper §VI-B).
	dev := cuda.MustV100()
	logan, err := core.AlignBatch(dev, pairs, core.DefaultConfig(5000))
	if err != nil {
		return out, err
	}
	// CUDASW++-like full SW and manymap-like banded kernels.
	cudaswDev := cuda.MustV100()
	cudasw, err := sw.CUDASWBatch(cudaswDev, pairs, sc, 128)
	if err != nil {
		return out, err
	}
	manyDev := cuda.MustV100()
	many, err := sw.ManymapBatch(manyDev, pairs, sc, 500, 128)
	if err != nil {
		return out, err
	}

	gcups := func(stats cuda.KernelStats, cells int64, transfer int64, g int, imb float64) float64 {
		t := platform.LoganTime(ScaleStats(stats, f), int64(float64(transfer)*f), scale.PaperPairs, g, imb)
		return float64(cells) * f / t.Seconds() / 1e9
	}

	tb := stats.Table{
		Title:   "Fig. 12 data: GPU pairwise-alignment comparison (GCUPS, Skylake + V100s)",
		Headers: []string{"GPUs", "LOGAN", "CUDASW++(GPU)", "CUDASW++(hybrid)", "manymap"},
	}
	transferSW := int64(totalBases(pairs))
	var gx []float64
	for _, g := range scale.GPUCounts {
		imb, err := MeasureImbalance(scale, 5000, g)
		if err != nil {
			return out, err
		}
		lg := gcups(logan.Stats, logan.Cells, logan.TransferBytes, g, imb)
		cw := gcups(cudasw.Stats, cudasw.Cells, transferSW, g, imb)
		out.GPUCounts = append(out.GPUCounts, g)
		out.Logan = append(out.Logan, lg)
		out.CUDASW = append(out.CUDASW, cw)
		out.CUDASWHyb = append(out.CUDASWHyb, cw*HybridBoost)
		gx = append(gx, float64(g))
		if g == 1 {
			out.Manymap = gcups(many.Stats, many.Cells, transferSW, 1, 1)
		}
		tb.AddRow(g, lg, cw, cw*HybridBoost, out.Manymap)
	}
	tb.Notes = append(tb.Notes,
		fmt.Sprintf("paper levels: LOGAN ~%.0f GCUPS/GPU, CUDASW++ <=%.0f (GPU-only), manymap <=%.0f (1 GPU)",
			Fig12Paper.LoganGPU1, Fig12Paper.CUDASWMax, Fig12Paper.ManymapMax),
		"manymap is single-GPU software; its line is flat by construction")
	out.Table = tb

	flat := make([]float64, len(gx))
	for i := range flat {
		flat[i] = out.Manymap
	}
	hyb := append([]float64(nil), out.CUDASWHyb...)
	out.Fig = stats.Chart{
		Title: "Fig. 12: GCUPS vs GPU count", XLabel: "GPUs", YLabel: "GCUPS",
		Series: []stats.Series{
			{Name: "LOGAN", Marker: 'L', X: gx, Y: out.Logan},
			{Name: "CUDASW++ GPU-only", Marker: 'c', X: gx, Y: out.CUDASW},
			{Name: "CUDASW++ hybrid", Marker: 'C', X: gx, Y: hyb},
			{Name: "manymap (1 GPU)", Marker: 'm', X: gx, Y: flat},
		},
	}
	return out, nil
}
