package bench

// Paper reference values, transcribed from the evaluation section. Keys
// are X; values are seconds.

// PaperRow3 is one row of a three-column timing table.
type PaperRow3 struct {
	Base   float64 // CPU baseline (SeqAn / ksw2 / BELLA)
	GPU1   float64 // LOGAN, 1 GPU
	GPUAll float64 // LOGAN, all GPUs (6 or 8)
}

// TableIIPaper: SeqAn vs LOGAN, 100K alignments, POWER9 + 6x V100
// (paper Table II).
var TableIIPaper = map[int32]PaperRow3{
	10:   {5.1, 2.2, 1.9},
	20:   {12.7, 3.1, 2.1},
	50:   {29.6, 5.0, 2.2},
	100:  {45.7, 7.2, 2.7},
	500:  {102.6, 14.9, 4.0},
	1000: {133.3, 20.2, 4.9},
	2500: {168.0, 25.3, 5.6},
	5000: {176.6, 26.7, 5.8},
}

// TableIIIPaper: ksw2 vs LOGAN, 100K alignments, Skylake + 8x V100
// (paper Table III).
var TableIIIPaper = map[int32]PaperRow3{
	10:   {6.9, 2.5, 1.7},
	20:   {7.0, 3.8, 1.8},
	50:   {7.7, 5.8, 2.1},
	100:  {10.4, 7.3, 2.4},
	500:  {113.0, 15.2, 3.4},
	1000: {209.5, 20.4, 4.3},
	2500: {1235.8, 25.9, 5.2},
	5000: {3213.1, 27.2, 5.2},
}

// TableIVPaper: BELLA E. coli, 1.82M alignments (paper Table IV).
var TableIVPaper = map[int32]PaperRow3{
	5:   {53.2, 110.4, 114.3},
	10:  {108.6, 146.4, 115.3},
	15:  {139.0, 152.9, 114.8},
	20:  {226.7, 162.7, 118.4},
	25:  {275.3, 173.5, 125.3},
	30:  {558.0, 185.3, 130.6},
	35:  {654.1, 198.4, 136.8},
	40:  {750.1, 212.7, 138.4},
	50:  {913.1, 248.5, 141.4},
	80:  {1303.7, 295.8, 142.4},
	100: {1507.1, 336.3, 144.5},
}

// TableVPaper: BELLA C. elegans, 235M alignments (paper Table V).
var TableVPaper = map[int32]PaperRow3{
	5:   {131.7, 577.1, 213.1},
	10:  {723.3, 750.2, 579.7},
	15:  {1467.7, 865.6, 749.8},
	20:  {1954.8, 908.9, 777.0},
	25:  {2518.8, 1015.5, 838.9},
	30:  {3047.1, 1125.0, 888.0},
	35:  {3492.5, 1226.5, 927.0},
	40:  {3887.0, 1329.0, 955.9},
	50:  {4607.7, 1449.0, 983.7},
	80:  {6367.7, 1593.9, 1046.1},
	100: {7385.3, 1753.3, 1080.9},
}

// TableIPaper: parallelism ablation (paper Table I), X=100.
var TableIPaper = []struct {
	Parallelism string
	Pairs       int
	Threads     int
	Blocks      int
	Seconds     float64
}{
	{"None", 1, 1, 1, 1.50},
	{"Intra-sequence", 1, 128, 1, 0.16},
	{"Intra-sequence", 100000, 128, 1, 45 * 3600},
	{"Intra- and inter-sequence", 100000, 128, 100000, 7.35},
}

// Fig12Paper: headline GCUPS levels (paper §VI-B / Fig. 12).
var Fig12Paper = struct {
	LoganGPU1  float64 // LOGAN single GPU
	CUDASWMax  float64 // CUDASW++ best
	ManymapMax float64 // manymap best (single GPU)
	Logan8xVs  float64 // LOGAN 8-GPU GCUPS over GPU-only CUDASW++ 8-GPU
}{181.0, 70.0, 96.0, 3.2}

// PaperGCUPS headline numbers (paper §VI-B).
var PaperGCUPS = struct {
	LoganX5000 float64 // 181.4 GCUPS at X=5000, 1 GPU
	Ksw2X100   float64 // ksw2 peak, 77.6 GCUPS at X=100
}{181.4, 77.6}
