package bench

import (
	"fmt"
	"time"

	"logan/internal/core"
	"logan/internal/cuda"
	"logan/internal/perfmodel"
	"logan/internal/seq"
	"logan/internal/stats"
)

// TableIResult reproduces the parallelism ablation of paper Table I:
// no parallelism, intra-sequence only (one block), and intra+inter
// (block per alignment), all at X=100.
type TableIResult struct {
	Table stats.Table
	// SpeedupIntra is row2 vs row1 (paper: 9.3x).
	SpeedupIntra float64
	// SpeedupInter is row4 vs row3 (paper: ~22,000x).
	SpeedupInter float64
}

// RunTableI executes the three configurations on the simulated device and
// models their times. Row 3 (100K pairs through a single block) is modeled
// as the single-pair intra-sequence time multiplied by the batch size —
// nobody waits 45 hours for the real run. Read lengths follow the paper
// (2.5-7.5 kb) regardless of the sweep scale: Table I's absolute seconds
// are length-sensitive and a single pair is cheap.
func RunTableI(scale Scale) (TableIResult, error) {
	var out TableIResult
	paperLen := scale
	paperLen.MinLen, paperLen.MaxLen = 2500, 7500
	if paperLen.Pairs > 16 {
		paperLen.Pairs = 16
	}
	pairs := paperLen.PairSet()
	one := pairs[:1]
	scale = paperLen
	const x = 100

	platform := POWER9Node()
	// The intra-only configurations follow Algorithm 1 literally: the
	// while loop runs on the host and ComputeAntiDiag is one kernel
	// launch per anti-diagonal, so each iteration pays the launch
	// latency. The intra+inter kernel fuses the loop on the device.
	run := func(threads int, ps []seq.Pair) (time.Duration, error) {
		dev := cuda.MustV100()
		dev.Timer = perfmodel.NewV100Timer()
		cfg := core.DefaultConfig(x)
		cfg.ThreadsPerBlock = threads
		res, err := core.AlignBatch(dev, ps, cfg)
		if err != nil {
			return 0, err
		}
		var launches int64
		for _, r := range res.Results {
			launches += int64(r.Left.AntiDiags + r.Right.AntiDiags)
		}
		return res.DeviceTime + time.Duration(launches)*platform.Timer.LaunchOverhead, nil
	}

	serial, err := run(1, one)
	if err != nil {
		return out, err
	}
	intra, err := run(128, one)
	if err != nil {
		return out, err
	}
	// Row 3: 100K pairs, still one block at a time.
	intraBatch := time.Duration(float64(intra) * float64(scale.PaperPairs))

	// Row 4: full inter+intra batch, modeled at paper scale.
	dev := cuda.MustV100()
	cfg := core.DefaultConfig(x)
	cfg.ThreadsPerBlock = 128
	res, err := core.AlignBatch(dev, pairs, cfg)
	if err != nil {
		return out, err
	}
	full := platform.LoganTime(ScaleStats(res.Stats, scale.Factor()), int64(float64(res.TransferBytes)*scale.Factor()), scale.PaperPairs, 1, 1)

	out.SpeedupIntra = serial.Seconds() / intra.Seconds()
	out.SpeedupInter = intraBatch.Seconds() / full.Seconds()

	t := stats.Table{
		Title:   "Table I: X-drop execution on GPU, X=100, by parallelism level",
		Headers: []string{"Parallelism", "Pairs", "Threads", "Blocks", "Modeled", "Paper"},
	}
	t.AddRow("None", 1, 1, 1, fmtDur(serial), "1.50s")
	t.AddRow("Intra-sequence", 1, 128, 1, fmtDur(intra), "0.16s")
	t.AddRow("Intra-sequence", scale.PaperPairs, 128, 1, fmtDur(intraBatch), "45h")
	t.AddRow("Intra+inter", scale.PaperPairs, 128, scale.PaperPairs, fmtDur(full), "7.35s")
	t.Notes = append(t.Notes,
		fmt.Sprintf("intra speed-up %.1fx (paper 9.3x); inter speed-up %.0fx (paper 22000x)",
			out.SpeedupIntra, out.SpeedupInter),
		"rows 1-3 model Alg. 1 run host-side with one ComputeAntiDiag launch per anti-diagonal;",
		"row 4 is the fused LOGAN kernel (paper row 3 is internally ~10x off row 2 x 100K)")
	out.Table = t
	return out, nil
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Hour:
		return fmt.Sprintf("%.1fh", d.Hours())
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	default:
		return fmt.Sprintf("%.1fms", float64(d)/1e6)
	}
}
