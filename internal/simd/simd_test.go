package simd

import (
	"testing"
	"testing/quick"
)

// scalarRef applies op lane-wise as the reference implementation.
func scalarRef(a, b I16x8, op func(x, y int16) int16) I16x8 {
	var out I16x8
	for i := range out {
		out[i] = op(a[i], b[i])
	}
	return out
}

func TestLaneOpsMatchScalar(t *testing.T) {
	cases := []struct {
		name string
		vec  func(a, b I16x8) I16x8
		ref  func(x, y int16) int16
	}{
		{"Add", Add, func(x, y int16) int16 { return x + y }},
		{"Sub", Sub, func(x, y int16) int16 { return x - y }},
		{"Max", Max, func(x, y int16) int16 {
			if x > y {
				return x
			}
			return y
		}},
		{"Min", Min, func(x, y int16) int16 {
			if x < y {
				return x
			}
			return y
		}},
		{"And", And, func(x, y int16) int16 { return x & y }},
		{"Or", Or, func(x, y int16) int16 { return x | y }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			f := func(a, b I16x8) bool {
				return tc.vec(a, b) == scalarRef(a, b, tc.ref)
			}
			if err := quick.Check(f, nil); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestSaturatingOps(t *testing.T) {
	big := Splat(30000)
	if got := AddSat(big, big); got != Splat(32767) {
		t.Errorf("AddSat overflow = %v, want saturation at 32767", got)
	}
	small := Splat(-30000)
	if got := SubSat(small, big); got != Splat(-32768) {
		t.Errorf("SubSat underflow = %v, want saturation at -32768", got)
	}
	f := func(a, b I16x8) bool {
		s := AddSat(a, b)
		for i := range s {
			want := int32(a[i]) + int32(b[i])
			if want > 32767 {
				want = 32767
			}
			if want < -32768 {
				want = -32768
			}
			if int32(s[i]) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareAndBlend(t *testing.T) {
	a := I16x8{1, 5, 3, 3, -2, 9, 0, 7}
	b := I16x8{2, 4, 3, 1, -3, 9, 0, 8}
	gt := CmpGT(a, b)
	want := I16x8{0, -1, 0, -1, -1, 0, 0, 0}
	if gt != want {
		t.Fatalf("CmpGT = %v, want %v", gt, want)
	}
	eq := CmpEQ(a, b)
	wantEq := I16x8{0, 0, -1, 0, 0, -1, -1, 0}
	if eq != wantEq {
		t.Fatalf("CmpEQ = %v, want %v", eq, wantEq)
	}
	bl := Blend(gt, a, b)
	for i := range bl {
		wantLane := b[i]
		if a[i] > b[i] {
			wantLane = a[i]
		}
		if bl[i] != wantLane {
			t.Fatalf("Blend lane %d = %d, want %d", i, bl[i], wantLane)
		}
	}
}

func TestShifts(t *testing.T) {
	a := I16x8{1, 2, 3, 4, 5, 6, 7, 8}
	if got := ShiftLanesLeft(a, 1, -9); got != (I16x8{-9, 1, 2, 3, 4, 5, 6, 7}) {
		t.Fatalf("ShiftLanesLeft = %v", got)
	}
	if got := ShiftLanesRight(a, 2, -9); got != (I16x8{3, 4, 5, 6, 7, 8, -9, -9}) {
		t.Fatalf("ShiftLanesRight = %v", got)
	}
	if got := ShiftLanesLeft(a, 0, 0); got != a {
		t.Fatalf("ShiftLanesLeft(0) = %v, want identity", got)
	}
	if got := ShiftLanesLeft(a, Lanes, 0); got != Splat(0) {
		t.Fatalf("ShiftLanesLeft(full) = %v, want all fill", got)
	}
}

func TestHMaxAndMoveMask(t *testing.T) {
	a := I16x8{-5, 2, 9, -1, 9, 0, 3, 4}
	if got := HMax(a); got != 9 {
		t.Fatalf("HMax = %d, want 9", got)
	}
	if got := MoveMask(a); got != 0b00001001 {
		t.Fatalf("MoveMask = %08b", got)
	}
	f := func(a I16x8) bool {
		m := HMax(a)
		for _, v := range a {
			if v > m {
				return false
			}
		}
		found := false
		for _, v := range a {
			if v == m {
				found = true
			}
		}
		return found
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLoadStore(t *testing.T) {
	s := []int16{1, 2, 3}
	v := Load(s, -7)
	if v != (I16x8{1, 2, 3, -7, -7, -7, -7, -7}) {
		t.Fatalf("Load short = %v", v)
	}
	long := []int16{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	v = Load(long, 0)
	if v != (I16x8{1, 2, 3, 4, 5, 6, 7, 8}) {
		t.Fatalf("Load long = %v", v)
	}
	d := make([]int16, 4)
	Store(d, v)
	if d[0] != 1 || d[3] != 4 {
		t.Fatalf("Store short = %v", d)
	}
	d2 := make([]int16, 10)
	Store(d2, v)
	if d2[7] != 8 || d2[8] != 0 {
		t.Fatalf("Store long = %v", d2)
	}
}

func TestOpCounter(t *testing.T) {
	var c OpCounter
	c.Add(OpCounter{VecOps: 3, ScalarOps: 2, LoadBytes: 16, StoreBytes: 8})
	c.Add(OpCounter{VecOps: 1})
	if c.VecOps != 4 || c.ScalarOps != 2 || c.LoadBytes != 16 || c.StoreBytes != 8 {
		t.Fatalf("counter = %+v", c)
	}
}
