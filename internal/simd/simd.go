// Package simd emulates the fixed-width integer SIMD operations that ksw2's
// SSE2 kernel uses: 128-bit vectors of eight int16 lanes. The emulation is
// functional (plain Go loops over lanes) but preserves the structural
// properties that matter for the reproduction — fixed lane count, saturating
// arithmetic, lane-wise max/compare/blend — so the ksw2 baseline in
// internal/ksw2 exhibits the same vector-granularity behaviour as the SSE2
// original, and its operation counts can be fed to the CPU time model.
//
// Only the subset of SSE2 intrinsics ksw2's extension kernel needs is
// provided. Names follow the _mm_* intrinsics they stand in for.
package simd

// Lanes is the number of int16 lanes per vector (128-bit SSE2 register).
const Lanes = 8

// I16x8 is a 128-bit vector of eight int16 lanes.
type I16x8 [Lanes]int16

// Splat returns a vector with every lane set to v (_mm_set1_epi16).
func Splat(v int16) I16x8 {
	var out I16x8
	for i := range out {
		out[i] = v
	}
	return out
}

// Load gathers the first 8 elements of s into a vector (_mm_load_si128).
// Missing elements (len(s) < 8) are filled with pad.
func Load(s []int16, pad int16) I16x8 {
	out := Splat(pad)
	n := len(s)
	if n > Lanes {
		n = Lanes
	}
	copy(out[:n], s[:n])
	return out
}

// Store scatters v into the first min(8, len(d)) elements of d.
func Store(d []int16, v I16x8) {
	n := len(d)
	if n > Lanes {
		n = Lanes
	}
	copy(d[:n], v[:n])
}

// Add returns lane-wise a+b with int16 wraparound (_mm_add_epi16).
func Add(a, b I16x8) I16x8 {
	var out I16x8
	for i := range out {
		out[i] = a[i] + b[i]
	}
	return out
}

// AddSat returns lane-wise saturating a+b (_mm_adds_epi16).
func AddSat(a, b I16x8) I16x8 {
	var out I16x8
	for i := range out {
		s := int32(a[i]) + int32(b[i])
		out[i] = clamp16(s)
	}
	return out
}

// Sub returns lane-wise a-b with wraparound (_mm_sub_epi16).
func Sub(a, b I16x8) I16x8 {
	var out I16x8
	for i := range out {
		out[i] = a[i] - b[i]
	}
	return out
}

// SubSat returns lane-wise saturating a-b (_mm_subs_epi16).
func SubSat(a, b I16x8) I16x8 {
	var out I16x8
	for i := range out {
		out[i] = clamp16(int32(a[i]) - int32(b[i]))
	}
	return out
}

// Max returns the lane-wise maximum (_mm_max_epi16).
func Max(a, b I16x8) I16x8 {
	var out I16x8
	for i := range out {
		if a[i] > b[i] {
			out[i] = a[i]
		} else {
			out[i] = b[i]
		}
	}
	return out
}

// Min returns the lane-wise minimum (_mm_min_epi16).
func Min(a, b I16x8) I16x8 {
	var out I16x8
	for i := range out {
		if a[i] < b[i] {
			out[i] = a[i]
		} else {
			out[i] = b[i]
		}
	}
	return out
}

// CmpGT returns all-ones lanes where a>b, zero lanes elsewhere
// (_mm_cmpgt_epi16).
func CmpGT(a, b I16x8) I16x8 {
	var out I16x8
	for i := range out {
		if a[i] > b[i] {
			out[i] = -1
		}
	}
	return out
}

// CmpEQ returns all-ones lanes where a==b (_mm_cmpeq_epi16).
func CmpEQ(a, b I16x8) I16x8 {
	var out I16x8
	for i := range out {
		if a[i] == b[i] {
			out[i] = -1
		}
	}
	return out
}

// Blend selects t lanes where mask is non-zero, f lanes elsewhere
// (_mm_blendv style; mask lanes must be 0 or -1).
func Blend(mask, t, f I16x8) I16x8 {
	var out I16x8
	for i := range out {
		if mask[i] != 0 {
			out[i] = t[i]
		} else {
			out[i] = f[i]
		}
	}
	return out
}

// And returns the bit-wise conjunction (_mm_and_si128).
func And(a, b I16x8) I16x8 {
	var out I16x8
	for i := range out {
		out[i] = a[i] & b[i]
	}
	return out
}

// Or returns the bit-wise disjunction (_mm_or_si128).
func Or(a, b I16x8) I16x8 {
	var out I16x8
	for i := range out {
		out[i] = a[i] | b[i]
	}
	return out
}

// ShiftLanesLeft shifts lanes toward higher indices by n, filling vacated
// low lanes with fill (_mm_slli_si128 by 2n bytes, plus fill).
func ShiftLanesLeft(a I16x8, n int, fill int16) I16x8 {
	out := Splat(fill)
	for i := Lanes - 1; i >= n; i-- {
		out[i] = a[i-n]
	}
	return out
}

// ShiftLanesRight shifts lanes toward lower indices by n, filling vacated
// high lanes with fill (_mm_srli_si128 by 2n bytes, plus fill).
func ShiftLanesRight(a I16x8, n int, fill int16) I16x8 {
	out := Splat(fill)
	for i := 0; i+n < Lanes; i++ {
		out[i] = a[i+n]
	}
	return out
}

// HMax returns the horizontal maximum across lanes.
func HMax(a I16x8) int16 {
	m := a[0]
	for _, v := range a[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// MoveMask returns a bit per lane, set when the lane is negative
// (_mm_movemask_epi8 folded to lane granularity).
func MoveMask(a I16x8) uint8 {
	var m uint8
	for i, v := range a {
		if v < 0 {
			m |= 1 << uint(i)
		}
	}
	return m
}

func clamp16(v int32) int16 {
	if v > 32767 {
		return 32767
	}
	if v < -32768 {
		return -32768
	}
	return int16(v)
}

// OpCounter tallies emulated vector instructions so the CPU time model can
// convert a vectorised kernel's work into Skylake cycles. Counting is the
// caller's responsibility (the emulation functions are pure); ksw2's kernel
// increments the counter once per intrinsic it would have issued.
type OpCounter struct {
	VecOps     int64 // 128-bit ALU operations
	ScalarOps  int64 // scalar bookkeeping operations
	LoadBytes  int64 // bytes loaded
	StoreBytes int64 // bytes stored
}

// Add accumulates other into c.
func (c *OpCounter) Add(other OpCounter) {
	c.VecOps += other.VecOps
	c.ScalarOps += other.ScalarOps
	c.LoadBytes += other.LoadBytes
	c.StoreBytes += other.StoreBytes
}
