// Package simd emulates the fixed-width integer SIMD operations that ksw2's
// SSE2 kernel uses: 128-bit vectors of eight int16 lanes. The emulation is
// functional (plain Go loops over lanes) but preserves the structural
// properties that matter for the reproduction — fixed lane count, saturating
// arithmetic, lane-wise max/compare/blend — so the ksw2 baseline in
// internal/ksw2 exhibits the same vector-granularity behaviour as the SSE2
// original, and its operation counts can be fed to the CPU time model.
//
// Only the subset of SSE2 intrinsics ksw2's extension kernel needs is
// provided. Names follow the _mm_* intrinsics they stand in for.
package simd

// Lanes is the number of int16 lanes per vector (128-bit SSE2 register).
const Lanes = 8

// I16x8 is a 128-bit vector of eight int16 lanes.
type I16x8 [Lanes]int16

// Splat returns a vector with every lane set to v (_mm_set1_epi16).
func Splat(v int16) I16x8 {
	var out I16x8
	for i := range out {
		out[i] = v
	}
	return out
}

// Load gathers the first 8 elements of s into a vector (_mm_load_si128).
// Missing elements (len(s) < 8) are filled with pad.
func Load(s []int16, pad int16) I16x8 {
	out := Splat(pad)
	n := len(s)
	if n > Lanes {
		n = Lanes
	}
	copy(out[:n], s[:n])
	return out
}

// Store scatters v into the first min(8, len(d)) elements of d.
func Store(d []int16, v I16x8) {
	n := len(d)
	if n > Lanes {
		n = Lanes
	}
	copy(d[:n], v[:n])
}

// Add returns lane-wise a+b with int16 wraparound (_mm_add_epi16).
func Add(a, b I16x8) I16x8 {
	var out I16x8
	for i := range out {
		out[i] = a[i] + b[i]
	}
	return out
}

// AddSat returns lane-wise saturating a+b (_mm_adds_epi16).
func AddSat(a, b I16x8) I16x8 {
	var out I16x8
	for i := range out {
		s := int32(a[i]) + int32(b[i])
		out[i] = clamp16(s)
	}
	return out
}

// Sub returns lane-wise a-b with wraparound (_mm_sub_epi16).
func Sub(a, b I16x8) I16x8 {
	var out I16x8
	for i := range out {
		out[i] = a[i] - b[i]
	}
	return out
}

// SubSat returns lane-wise saturating a-b (_mm_subs_epi16).
func SubSat(a, b I16x8) I16x8 {
	var out I16x8
	for i := range out {
		out[i] = clamp16(int32(a[i]) - int32(b[i]))
	}
	return out
}

// Max returns the lane-wise maximum (_mm_max_epi16).
func Max(a, b I16x8) I16x8 {
	var out I16x8
	for i := range out {
		if a[i] > b[i] {
			out[i] = a[i]
		} else {
			out[i] = b[i]
		}
	}
	return out
}

// Min returns the lane-wise minimum (_mm_min_epi16).
func Min(a, b I16x8) I16x8 {
	var out I16x8
	for i := range out {
		if a[i] < b[i] {
			out[i] = a[i]
		} else {
			out[i] = b[i]
		}
	}
	return out
}

// CmpGT returns all-ones lanes where a>b, zero lanes elsewhere
// (_mm_cmpgt_epi16).
func CmpGT(a, b I16x8) I16x8 {
	var out I16x8
	for i := range out {
		if a[i] > b[i] {
			out[i] = -1
		}
	}
	return out
}

// CmpEQ returns all-ones lanes where a==b (_mm_cmpeq_epi16).
func CmpEQ(a, b I16x8) I16x8 {
	var out I16x8
	for i := range out {
		if a[i] == b[i] {
			out[i] = -1
		}
	}
	return out
}

// Blend selects t lanes where mask is non-zero, f lanes elsewhere
// (_mm_blendv style; mask lanes must be 0 or -1).
func Blend(mask, t, f I16x8) I16x8 {
	var out I16x8
	for i := range out {
		if mask[i] != 0 {
			out[i] = t[i]
		} else {
			out[i] = f[i]
		}
	}
	return out
}

// And returns the bit-wise conjunction (_mm_and_si128).
func And(a, b I16x8) I16x8 {
	var out I16x8
	for i := range out {
		out[i] = a[i] & b[i]
	}
	return out
}

// Or returns the bit-wise disjunction (_mm_or_si128).
func Or(a, b I16x8) I16x8 {
	var out I16x8
	for i := range out {
		out[i] = a[i] | b[i]
	}
	return out
}

// ShiftLanesLeft shifts lanes toward higher indices by n, filling vacated
// low lanes with fill (_mm_slli_si128 by 2n bytes, plus fill).
func ShiftLanesLeft(a I16x8, n int, fill int16) I16x8 {
	out := Splat(fill)
	for i := Lanes - 1; i >= n; i-- {
		out[i] = a[i-n]
	}
	return out
}

// ShiftLanesRight shifts lanes toward lower indices by n, filling vacated
// high lanes with fill (_mm_srli_si128 by 2n bytes, plus fill).
func ShiftLanesRight(a I16x8, n int, fill int16) I16x8 {
	out := Splat(fill)
	for i := 0; i+n < Lanes; i++ {
		out[i] = a[i+n]
	}
	return out
}

// HMax returns the horizontal maximum across lanes.
func HMax(a I16x8) int16 {
	m := a[0]
	for _, v := range a[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// MoveMask returns a bit per lane, set when the lane is negative
// (_mm_movemask_epi8 folded to lane granularity).
func MoveMask(a I16x8) uint8 {
	var m uint8
	for i, v := range a {
		if v < 0 {
			m |= 1 << uint(i)
		}
	}
	return m
}

// SWAR constants for the byte-granularity operations below: per-byte low
// bits, per-byte high bits, the 0x7F mask, and the movemask gather
// multiplier that collects the eight per-byte high bits into the top byte
// of a 64-bit product.
const (
	swarLow7   uint64 = 0x7f7f7f7f7f7f7f7f
	swarHigh   uint64 = 0x8080808080808080
	swarGather uint64 = 0x0002040810204081
)

// EqMask8 compares the first 8 bytes of a and b lane-wise and returns a
// bit per lane, set where the bytes are equal (bit l for a[l] == b[l]).
// Both slices must hold at least 8 bytes. Hot loops that already have the
// two 64-bit words loaded should call EqMask64 directly — it inlines.
func EqMask8(a, b []byte) uint8 {
	_, _ = a[7], b[7]
	return EqMask64(
		uint64(a[0])|uint64(a[1])<<8|uint64(a[2])<<16|uint64(a[3])<<24|
			uint64(a[4])<<32|uint64(a[5])<<40|uint64(a[6])<<48|uint64(a[7])<<56,
		uint64(b[0])|uint64(b[1])<<8|uint64(b[2])<<16|uint64(b[3])<<24|
			uint64(b[4])<<32|uint64(b[5])<<40|uint64(b[6])<<48|uint64(b[7])<<56)
}

// EqMask64 is the word form of EqMask8: a and b each pack 8 byte lanes
// little-endian, and the result has bit l set where lane l is equal — the
// _mm_cmpeq_epi8 + _mm_movemask_epi8 pair of the SSE2 kernel, emulated as
// one SWAR pass over a 64-bit word instead of eight byte compares.
//
// The zero-byte detection is exact for arbitrary byte values: after
// x = a XOR b, a byte of x is non-zero iff its low 7 bits carry into 0x80
// under +0x7F or its own high bit is set, and neither term can carry
// across byte lanes.
func EqMask64(a, b uint64) uint8 {
	x := a ^ b
	nz := ((x & swarLow7) + swarLow7) | x // 0x80 bit set per non-zero byte
	return uint8(((^nz & swarHigh) * swarGather) >> 56)
}

// BlendTable is a compare-blend specialized at batch-prep time: entry m is
// the I16x8 whose lane l holds `on` when bit l of m is set and `off`
// otherwise. Indexing it with an EqMask8 result replaces the per-lane
// CmpEQ + Blend pair of the generic emulation with one 16-byte table load,
// the partial-evaluation trick (AnySeq-style) the vector X-drop kernel
// uses to turn match/mismatch scoring into data.
type BlendTable [256]I16x8

// NewBlendTable builds the 4 KiB blend table for one (on, off) pair.
func NewBlendTable(on, off int16) *BlendTable {
	var t BlendTable
	for m := range t {
		for l := 0; l < Lanes; l++ {
			if m>>uint(l)&1 != 0 {
				t[m][l] = on
			} else {
				t[m][l] = off
			}
		}
	}
	return &t
}

func clamp16(v int32) int16 {
	if v > 32767 {
		return 32767
	}
	if v < -32768 {
		return -32768
	}
	return int16(v)
}

// OpCounter tallies emulated vector instructions so the CPU time model can
// convert a vectorised kernel's work into Skylake cycles. Counting is the
// caller's responsibility (the emulation functions are pure); ksw2's kernel
// increments the counter once per intrinsic it would have issued.
type OpCounter struct {
	VecOps     int64 // 128-bit ALU operations
	ScalarOps  int64 // scalar bookkeeping operations
	LoadBytes  int64 // bytes loaded
	StoreBytes int64 // bytes stored
}

// Add accumulates other into c.
func (c *OpCounter) Add(other OpCounter) {
	c.VecOps += other.VecOps
	c.ScalarOps += other.ScalarOps
	c.LoadBytes += other.LoadBytes
	c.StoreBytes += other.StoreBytes
}
