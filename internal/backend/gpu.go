package backend

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"logan/internal/core"
	"logan/internal/cuda"
	"logan/internal/loadbal"
	"logan/internal/perfmodel"
	"logan/internal/seq"
	"logan/internal/xdrop"
)

// GPU executes batches on one simulated device via the LOGAN kernel
// pipeline of internal/core. The device's batch timeline is single-use,
// so concurrent batches serialize on this one device — per-device
// ownership, not an engine-wide lock (a second GPU backend over a second
// device proceeds independently).
type GPU struct {
	dev    *cuda.Device
	name   string
	mu     sync.Mutex
	rate   *rate
	closed atomic.Bool
}

// NewGPU wraps a single device. name distinguishes devices in per-shard
// stats ("gpu0", "gpu1", ...). The throughput seed is the wall-clock
// estimate of the simulator on this host (perfmodel.LocalSimGPUThroughput),
// not the modeled-device ceiling core.PeakCellRate: the scheduler's
// currency is host wall time, and a modeled-seconds seed would be ~1000x
// off in the wrong unit.
func NewGPU(dev *cuda.Device, name string) *GPU {
	if name == "" {
		name = "gpu"
	}
	return &GPU{dev: dev, name: name, rate: newRate(perfmodel.LocalSimGPUThroughput())}
}

// NewV100 builds a GPU backend over a fresh Tesla V100 with the
// calibrated timer installed.
func NewV100(name string) (*GPU, error) {
	dev, err := cuda.NewDevice(cuda.TeslaV100())
	if err != nil {
		return nil, err
	}
	dev.Timer = perfmodel.NewV100Timer()
	return NewGPU(dev, name), nil
}

// Name implements Backend.
func (g *GPU) Name() string { return g.name }

// Supports implements Backend: the kernel is linear-DNA only, as in the
// paper (§VIII names protein support as future work).
func (g *GPU) Supports(kind xdrop.SchemeKind) bool { return kind == xdrop.SchemeLinear }

// Device exposes the wrapped device.
func (g *GPU) Device() *cuda.Device { return g.dev }

// ExtendBatch implements Backend. GCUPS accounting: the shard time is the
// modeled device completion time of the batch, matching the paper's
// device-side throughput metric. Non-linear scoring modes fail with
// core.ErrUnsupportedScheme (see Supports).
func (g *GPU) ExtendBatch(ctx context.Context, pairs []seq.Pair, out []xdrop.SeedResult, cfg core.Config) (BatchStats, error) {
	if len(out) != len(pairs) {
		return BatchStats{}, fmt.Errorf("backend: %s: out length %d != pairs %d", g.name, len(out), len(pairs))
	}
	if cfg.Mode != xdrop.SchemeLinear {
		return BatchStats{}, fmt.Errorf("backend: %s: %w", g.name, core.ErrUnsupportedScheme)
	}
	if g.closed.Load() {
		return BatchStats{}, ErrClosed
	}
	if len(pairs) == 0 {
		return BatchStats{}, nil
	}
	start := time.Now()
	g.mu.Lock()
	res, err := core.AlignBatchContext(ctx, g.dev, pairs, cfg)
	g.mu.Unlock()
	if err != nil {
		return BatchStats{}, err
	}
	copy(out, res.Results)
	// The scheduling estimate observes wall time — the currency shared
	// with the CPU backend — not the modeled device time reported below.
	g.rate.observe(res.Cells, time.Since(start))
	return BatchStats{
		Pairs:      len(pairs),
		Cells:      res.Cells,
		DeviceTime: res.DeviceTime,
		Shards:     []ShardStats{{Backend: g.name, Pairs: len(pairs), Cells: res.Cells, Time: res.DeviceTime, Kernel: "gpu"}},
	}, nil
}

// Throughput implements Backend.
func (g *GPU) Throughput() float64 { return g.rate.estimate() }

// Close implements Backend. Simulated devices hold no host resources
// beyond their ledgers, so Close only bars further use.
func (g *GPU) Close() error {
	g.closed.Store(true)
	return nil
}

// MultiGPU executes batches across a loadbal.Pool, LOGAN's §IV-C
// multi-GPU node: each batch is length-weight partitioned across the
// devices and the per-device shards run concurrently, serialized only on
// their own device's lock. Two concurrent batches therefore interleave
// across devices instead of queueing behind the backend.
type MultiGPU struct {
	pool   *loadbal.Pool
	strat  loadbal.Strategy
	rate   *rate
	closed atomic.Bool
}

// NewMultiGPU wraps an existing pool with the given partition strategy.
func NewMultiGPU(pool *loadbal.Pool, strat loadbal.Strategy) *MultiGPU {
	seed := float64(len(pool.Devices)) * perfmodel.LocalSimGPUThroughput()
	return &MultiGPU{pool: pool, strat: strat, rate: newRate(seed)}
}

// NewV100MultiGPU builds a MultiGPU backend over n fresh Tesla V100s with
// LOGAN's by-length partitioning.
func NewV100MultiGPU(n int) (*MultiGPU, error) {
	pool, err := loadbal.NewV100Pool(n)
	if err != nil {
		return nil, err
	}
	return NewMultiGPU(pool, loadbal.ByLength), nil
}

// Name implements Backend.
func (m *MultiGPU) Name() string { return fmt.Sprintf("gpu[%d]", len(m.pool.Devices)) }

// Supports implements Backend: linear-DNA only, like every device kernel
// in the repository.
func (m *MultiGPU) Supports(kind xdrop.SchemeKind) bool { return kind == xdrop.SchemeLinear }

// ExtendBatch implements Backend. GCUPS accounting: DeviceTime is the
// slowest device shard, the multi-GPU completion time of §IV-C.
// Non-linear scoring modes fail with core.ErrUnsupportedScheme.
func (m *MultiGPU) ExtendBatch(ctx context.Context, pairs []seq.Pair, out []xdrop.SeedResult, cfg core.Config) (BatchStats, error) {
	if len(out) != len(pairs) {
		return BatchStats{}, fmt.Errorf("backend: %s: out length %d != pairs %d", m.Name(), len(out), len(pairs))
	}
	if cfg.Mode != xdrop.SchemeLinear {
		return BatchStats{}, fmt.Errorf("backend: %s: %w", m.Name(), core.ErrUnsupportedScheme)
	}
	if m.closed.Load() {
		return BatchStats{}, ErrClosed
	}
	if len(pairs) == 0 {
		return BatchStats{}, nil
	}
	start := time.Now()
	res, err := m.pool.AlignIntoContext(ctx, out, pairs, cfg, m.strat)
	if err != nil {
		return BatchStats{}, err
	}
	st := BatchStats{
		Pairs:         len(pairs),
		Cells:         res.Cells,
		DeviceTime:    res.DeviceTime,
		PartitionTime: res.PartitionTime,
	}
	for d := range res.PerDevice {
		pd := &res.PerDevice[d]
		if len(pd.Results) == 0 && pd.Cells == 0 {
			continue
		}
		st.Shards = append(st.Shards, ShardStats{
			Backend: fmt.Sprintf("gpu%d", d),
			Pairs:   len(pd.Results),
			Cells:   pd.Cells,
			Time:    pd.DeviceTime,
			Kernel:  "gpu",
		})
	}
	m.rate.observe(res.Cells, time.Since(start))
	return st, nil
}

// Throughput implements Backend.
func (m *MultiGPU) Throughput() float64 { return m.rate.estimate() }

// Close implements Backend.
func (m *MultiGPU) Close() error {
	m.closed.Store(true)
	return nil
}
