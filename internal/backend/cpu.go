package backend

import (
	"context"
	"fmt"
	"time"

	"logan/internal/core"
	"logan/internal/perfmodel"
	"logan/internal/seq"
	"logan/internal/xdrop"
)

// CPU executes batches on a persistent internal/xdrop worker pool, the
// SeqAn-style multi-threaded baseline. Concurrent batches interleave
// across the shared workers.
type CPU struct {
	pool *xdrop.Pool
	rate *rate
}

// NewCPU builds a CPU backend with the given worker count (0 =
// GOMAXPROCS).
func NewCPU(threads int) *CPU {
	p := xdrop.NewPool(threads)
	return &CPU{
		pool: p,
		rate: newRate(perfmodel.LocalCPUThroughput(p.Workers())),
	}
}

// Name implements Backend.
func (c *CPU) Name() string { return "cpu" }

// Supports implements Backend: the CPU pool executes every scoring
// family — linear, affine and substitution-matrix.
func (c *CPU) Supports(xdrop.SchemeKind) bool { return true }

// ExtendBatch implements Backend. GCUPS accounting: the shard time is
// measured host wall time, the only meaningful denominator for real CPU
// execution.
func (c *CPU) ExtendBatch(ctx context.Context, pairs []seq.Pair, out []xdrop.SeedResult, cfg core.Config) (BatchStats, error) {
	if len(out) != len(pairs) {
		return BatchStats{}, fmt.Errorf("backend: cpu: out length %d != pairs %d", len(out), len(pairs))
	}
	if len(pairs) == 0 {
		return BatchStats{}, nil
	}
	start := time.Now()
	st, err := c.pool.ExtendBatchScheme(ctx, pairs, out, cfg.Scheme(), cfg.X)
	if err != nil {
		return BatchStats{}, err
	}
	wall := time.Since(start)
	// Only linear batches feed the throughput estimate: it is the weight
	// the hybrid scheduler uses to split *linear* batches against the
	// GPUs (non-linear batches go to the CPU shard alone, where the
	// weight is moot), and the affine/matrix kernels run at a very
	// different cells/second — folding them in would skew the linear
	// split under mixed traffic.
	if cfg.Mode == xdrop.SchemeLinear {
		c.rate.observe(st.Cells, wall)
	}
	return BatchStats{
		Pairs: len(pairs),
		Cells: st.Cells,
		Shards: []ShardStats{{
			Backend: c.Name(), Pairs: len(pairs), Cells: st.Cells, Time: wall,
			Kernel: st.Kernel.String(),
		}},
	}, nil
}

// Throughput implements Backend.
func (c *CPU) Throughput() float64 { return c.rate.estimate() }

// Close implements Backend. The pool's own Close is idempotent and
// race-safe; ExtendBatch after Close fails with xdrop.ErrPoolClosed.
func (c *CPU) Close() error {
	c.pool.Close()
	return nil
}
