package backend

import (
	"fmt"
	"time"

	"logan/internal/core"
	"logan/internal/perfmodel"
	"logan/internal/seq"
	"logan/internal/xdrop"
)

// CPU executes batches on a persistent internal/xdrop worker pool, the
// SeqAn-style multi-threaded baseline. Concurrent batches interleave
// across the shared workers.
type CPU struct {
	pool *xdrop.Pool
	rate *rate
}

// NewCPU builds a CPU backend with the given worker count (0 =
// GOMAXPROCS).
func NewCPU(threads int) *CPU {
	p := xdrop.NewPool(threads)
	return &CPU{
		pool: p,
		rate: newRate(perfmodel.LocalCPUThroughput(p.Workers())),
	}
}

// Name implements Backend.
func (c *CPU) Name() string { return "cpu" }

// ExtendBatch implements Backend. GCUPS accounting: the shard time is
// measured host wall time, the only meaningful denominator for real CPU
// execution.
func (c *CPU) ExtendBatch(pairs []seq.Pair, out []xdrop.SeedResult, cfg core.Config) (BatchStats, error) {
	if len(out) != len(pairs) {
		return BatchStats{}, fmt.Errorf("backend: cpu: out length %d != pairs %d", len(out), len(pairs))
	}
	if len(pairs) == 0 {
		return BatchStats{}, nil
	}
	start := time.Now()
	st, err := c.pool.ExtendBatch(pairs, out, cfg.Scoring, cfg.X)
	if err != nil {
		return BatchStats{}, err
	}
	wall := time.Since(start)
	c.rate.observe(st.Cells, wall)
	return BatchStats{
		Pairs:  len(pairs),
		Cells:  st.Cells,
		Shards: []ShardStats{{Backend: c.Name(), Pairs: len(pairs), Cells: st.Cells, Time: wall}},
	}, nil
}

// Throughput implements Backend.
func (c *CPU) Throughput() float64 { return c.rate.estimate() }

// Close implements Backend. The pool's own Close is idempotent and
// race-safe; ExtendBatch after Close fails with xdrop.ErrPoolClosed.
func (c *CPU) Close() error {
	c.pool.Close()
	return nil
}
