// Package backend defines the pluggable execution layer of the alignment
// engine: a Backend turns a validated batch of seeded pairs into seed
// extension results, and the engine (package logan) dispatches over the
// interface instead of hard-coding the execution substrates. Adapters wrap
// the existing substrates — the CPU worker pool (internal/xdrop.Pool), a
// single simulated GPU (internal/cuda.Device via internal/core), and the
// multi-GPU load-balancing pool (internal/loadbal.Pool) — and Hybrid
// composes a CPU pool with every GPU as one heterogeneous worker set,
// split by the capacity-weighted LPT scheduler of internal/loadbal.
//
// Contract shared by all implementations:
//
//   - ExtendBatch writes exactly len(pairs) results into out (which must
//     have the same length), positionally aligned with the input, and the
//     scores are bit-identical across every Backend — the reproduction's
//     "equivalent accuracy" guarantee extended to scheduling.
//   - Input pairs are aliased, not copied; the caller must not mutate the
//     sequences until ExtendBatch returns.
//   - Every Backend is safe for concurrent ExtendBatch calls. Concurrency
//     is per resource, not per backend: CPU batches interleave across the
//     shared worker pool, GPU batches serialize per device (never on the
//     backend as a whole), so independent batches proceed on independent
//     devices.
//   - Throughput is a scheduling hint, not a measurement guarantee: it
//     starts from a perfmodel-derived estimate and is corrected online
//     from observed batches.
//   - Batches are request-scoped: every ExtendBatch call carries its own
//     core.Config (X and scoring family) and context, so one backend
//     serves mixed configurations concurrently. Backends advertise the
//     scoring families they implement via Supports; the GPU backends are
//     linear-DNA only (the paper's kernel), and non-linear batches on
//     them fail with core.ErrUnsupportedScheme.
package backend

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"time"

	"logan/internal/core"
	"logan/internal/seq"
	"logan/internal/xdrop"
)

// ErrClosed reports an ExtendBatch on a closed Backend.
var ErrClosed = errors.New("backend: closed")

// ShardStats is the per-worker breakdown of one batch: which backend
// worker ran how much of it, and for how long. Time is the modeled device
// time for GPU shards and measured wall time for CPU shards (see the GCUPS
// contract in package logan).
type ShardStats struct {
	Backend string
	Pairs   int
	Cells   int64
	Time    time.Duration
	// Kernel names the extension kernel the shard ran on: "scalar" or
	// "vector" for CPU shards (chosen per batch by xdrop.SelectKernel),
	// "gpu" for device shards.
	Kernel string
}

// BatchStats summarizes one ExtendBatch call.
type BatchStats struct {
	Pairs int
	Cells int64
	// DeviceTime is the modeled GPU completion time of the batch: the
	// slowest device shard. Zero for pure-CPU execution.
	DeviceTime time.Duration
	// PartitionTime is the measured host time the backend spent deciding
	// and staging the split of this batch across workers (capacity
	// estimation, LPT assignment) before any kernel work started. Zero
	// for single-worker backends, which have nothing to partition. The
	// engine subtracts it from the batch wall time to separate the
	// "partition" and "kernel" stages in the telemetry spine.
	PartitionTime time.Duration
	// Shards is the per-worker breakdown in worker order. Single-worker
	// backends report one shard; Hybrid reports the CPU pool plus every
	// device that received pairs.
	Shards []ShardStats
}

// Backend executes batches of seed extensions.
type Backend interface {
	// Name identifies the backend ("cpu", "gpu0", "gpu[2]", "hybrid"...).
	Name() string
	// ExtendBatch aligns pairs into out (len(out) must equal len(pairs))
	// under ctx: cancellation stops the batch at the backend's natural
	// granularity (per pair on the CPU pool, per memory chunk on a
	// device) and returns the context's error. Batches whose cfg selects
	// a scoring mode the backend does not Support fail with an error
	// wrapping core.ErrUnsupportedScheme.
	ExtendBatch(ctx context.Context, pairs []seq.Pair, out []xdrop.SeedResult, cfg core.Config) (BatchStats, error)
	// Supports reports whether the backend can execute batches under the
	// given scoring family. The CPU pool supports every family; the GPU
	// backends support only xdrop.SchemeLinear, reproducing the paper's
	// kernel (protein support is its §VIII future work). The hybrid
	// scheduler uses this to route non-linear batches to CPU shards.
	Supports(kind xdrop.SchemeKind) bool
	// Throughput returns the backend's current DP-cell rate estimate in
	// cells per wall-second of this process, the weight the hybrid
	// scheduler partitions on. All backends report the same currency —
	// host wall time, even for simulated devices — so the estimates are
	// directly comparable.
	Throughput() float64
	// Close releases the backend's resources. Further ExtendBatch calls
	// fail; Close is idempotent.
	Close() error
}

// rate is a concurrency-safe exponentially-weighted throughput estimate:
// seeded from a model-derived prior, corrected by observed (cells, time)
// samples. Observations always use host wall time — the one clock every
// backend shares — so CPU and (simulated) GPU estimates stay in the same
// unit and the hybrid split converges to this machine's real balance;
// the priors only shape the first batches. The EWMA keeps the split
// adaptive without letting one anomalous batch (e.g. a cold cache) swing
// the schedule.
type rate struct {
	bits atomic.Uint64
}

const rateAlpha = 0.3

func newRate(seed float64) *rate {
	r := &rate{}
	r.bits.Store(math.Float64bits(seed))
	return r
}

// estimate returns the current cells/second estimate.
func (r *rate) estimate() float64 { return math.Float64frombits(r.bits.Load()) }

// observe folds one batch sample into the estimate. Samples too small to
// time reliably are ignored.
func (r *rate) observe(cells int64, d time.Duration) {
	if cells <= 0 || d <= 0 {
		return
	}
	sample := float64(cells) / d.Seconds()
	for {
		old := r.bits.Load()
		cur := math.Float64frombits(old)
		next := cur + rateAlpha*(sample-cur)
		if r.bits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}
