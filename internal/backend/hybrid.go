package backend

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"logan/internal/core"
	"logan/internal/loadbal"
	"logan/internal/seq"
	"logan/internal/xdrop"
)

// Hybrid schedules each batch across a heterogeneous worker set — by
// construction the CPU worker pool plus one single-device GPU backend per
// simulated V100, though any Backend mix composes. It generalizes LOGAN's
// length-weighted LPT split (paper §IV-C) via
// loadbal.PartitionCapacities, weighting each worker by its current
// Throughput estimate, runs all shards concurrently through the workers'
// own ExtendBatch (the CPU shard interleaves on the shared pool, each GPU
// shard serializes on its own device), and merges the results in input
// order. Scores are bit-identical to single-backend execution because
// partitioning never changes per-pair results.
//
// Concurrent ExtendBatch calls are safe and do not serialize on the
// Hybrid: every worker's own concurrency contract applies shard-wise.
type Hybrid struct {
	workers []Backend
	closed  atomic.Bool
	scratch sync.Pool // *hybridScratch
}

// hybridScratch recycles the per-batch staging of one ExtendBatch call:
// the capacity and weight vectors, the per-shard outcomes, and each
// shard's gathered pairs and results.
type hybridScratch struct {
	caps    []float64
	weights []int64
	outs    []shardOut
	subs    []shardScratch
}

type shardScratch struct {
	pairs []seq.Pair
	res   []xdrop.SeedResult
}

// shardOut is one worker's outcome within a hybrid batch.
type shardOut struct {
	stats BatchStats
	err   error
}

// NewHybrid builds a hybrid backend over a fresh CPU pool of the given
// width (0 = GOMAXPROCS) and gpus simulated V100s (minimum 1).
func NewHybrid(threads, gpus int) (*Hybrid, error) {
	if gpus <= 0 {
		gpus = 1
	}
	workers := []Backend{NewCPU(threads)}
	for d := 0; d < gpus; d++ {
		g, err := NewV100(fmt.Sprintf("gpu%d", d))
		if err != nil {
			return nil, err
		}
		workers = append(workers, g)
	}
	return NewHybridOver(workers...)
}

// NewHybridOver composes existing backends into one scheduled worker set.
// The Hybrid takes ownership: its Close closes every worker.
func NewHybridOver(workers ...Backend) (*Hybrid, error) {
	if len(workers) == 0 {
		return nil, fmt.Errorf("backend: hybrid needs at least one worker")
	}
	h := &Hybrid{workers: workers}
	h.scratch.New = func() any {
		return &hybridScratch{
			caps: make([]float64, len(workers)),
			outs: make([]shardOut, len(workers)),
			subs: make([]shardScratch, len(workers)),
		}
	}
	return h, nil
}

// Name implements Backend.
func (h *Hybrid) Name() string { return "hybrid" }

// Supports implements Backend: the hybrid can run any family at least one
// of its workers supports. By construction that is every family — the CPU
// pool is always part of the worker set — so affine and matrix batches
// simply route to the CPU shard (see ExtendBatch).
func (h *Hybrid) Supports(kind xdrop.SchemeKind) bool {
	for _, w := range h.workers {
		if w.Supports(kind) {
			return true
		}
	}
	return false
}

// ExtendBatch implements Backend. GCUPS accounting: shard times mix
// denominators (measured wall for the CPU shard, modeled device time for
// GPU shards), so batch-level throughput must be taken over wall time —
// see the Stats.GCUPS contract in package logan. DeviceTime reports the
// slowest GPU shard.
//
// Scoring-mode routing: workers that do not Support cfg.Mode receive a
// zero capacity, so the partition sends non-linear (affine, matrix)
// batches entirely to the CPU shards — the GPU kernel stays linear-DNA,
// as in the paper — and mixed traffic on one engine still schedules
// linear batches across every worker. A mode no worker supports fails
// with core.ErrUnsupportedScheme.
func (h *Hybrid) ExtendBatch(ctx context.Context, pairs []seq.Pair, out []xdrop.SeedResult, cfg core.Config) (BatchStats, error) {
	if len(out) != len(pairs) {
		return BatchStats{}, fmt.Errorf("backend: hybrid: out length %d != pairs %d", len(out), len(pairs))
	}
	if h.closed.Load() {
		return BatchStats{}, ErrClosed
	}
	st := BatchStats{Pairs: len(pairs)}
	if len(pairs) == 0 {
		return st, nil
	}

	sc := h.scratch.Get().(*hybridScratch)
	defer func() {
		for i := range sc.subs {
			clear(sc.subs[i].pairs[:cap(sc.subs[i].pairs)])
		}
		h.scratch.Put(sc)
	}()
	partStart := time.Now()
	eligible := 0
	for w, worker := range h.workers {
		if !worker.Supports(cfg.Mode) {
			// Negative capacity is loadbal's exclusion signal: the bucket
			// never receives items, even if every estimate degrades to
			// zero — a non-linear pair must not reach a GPU kernel.
			sc.caps[w] = -1
			continue
		}
		eligible++
		// Clamp to the "no estimate" zero rather than exclusion, should a
		// throughput estimate ever go non-positive.
		sc.caps[w] = max(worker.Throughput(), 0)
	}
	if eligible == 0 {
		return BatchStats{}, fmt.Errorf("backend: hybrid: %w", core.ErrUnsupportedScheme)
	}
	sc.weights = loadbal.PairWeights(pairs, sc.weights)
	buckets := loadbal.PartitionCapacities(sc.weights, sc.caps, loadbal.ByLength)
	st.PartitionTime = time.Since(partStart)

	outs := sc.outs
	clear(outs)
	var wg sync.WaitGroup
	for w, bucket := range buckets {
		if len(bucket) == 0 {
			continue
		}
		wg.Add(1)
		go func(w int, bucket []int) {
			defer wg.Done()
			sub := &sc.subs[w]
			if cap(sub.pairs) < len(bucket) {
				sub.pairs = make([]seq.Pair, len(bucket))
			}
			sub.pairs = sub.pairs[:len(bucket)]
			for k, idx := range bucket {
				sub.pairs[k] = pairs[idx]
			}
			if cap(sub.res) < len(bucket) {
				sub.res = make([]xdrop.SeedResult, len(bucket))
			}
			sub.res = sub.res[:len(bucket)]
			bst, err := h.workers[w].ExtendBatch(ctx, sub.pairs, sub.res, cfg)
			if err != nil {
				outs[w].err = fmt.Errorf("backend: hybrid %s shard: %w", h.workers[w].Name(), err)
				return
			}
			for k, idx := range bucket {
				out[idx] = sub.res[k]
			}
			outs[w].stats = bst
		}(w, bucket)
	}
	wg.Wait()

	for w := range outs {
		if outs[w].err != nil {
			return BatchStats{}, outs[w].err
		}
		sh := &outs[w].stats
		if sh.Pairs == 0 {
			continue
		}
		st.Cells += sh.Cells
		if sh.DeviceTime > st.DeviceTime {
			st.DeviceTime = sh.DeviceTime
		}
		st.Shards = append(st.Shards, sh.Shards...)
	}
	return st, nil
}

// Throughput implements Backend: the worker set's aggregate estimate.
func (h *Hybrid) Throughput() float64 {
	var t float64
	for _, w := range h.workers {
		t += w.Throughput()
	}
	return t
}

// Close implements Backend.
func (h *Hybrid) Close() error {
	if h.closed.Swap(true) {
		return nil
	}
	var firstErr error
	for _, w := range h.workers {
		if err := w.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
