package backend

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"logan/internal/core"
	"logan/internal/seq"
	"logan/internal/xdrop"
)

func testPairs(t *testing.T, n int) []seq.Pair {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	return seq.RandPairSet(rng, seq.PairSetOptions{
		N: n, MinLen: 150, MaxLen: 400, ErrorRate: 0.15, SeedLen: 17, FracRelated: 0.8,
	})
}

// equalizeHybridRates resets every worker estimate to the same value so
// tests can force a genuinely heterogeneous split on small batches.
func equalizeHybridRates(h *Hybrid) {
	for _, w := range h.workers {
		switch be := w.(type) {
		case *CPU:
			be.rate = newRate(1e8)
		case *GPU:
			be.rate = newRate(1e8)
		}
	}
}

func runBackend(t *testing.T, be Backend, pairs []seq.Pair, cfg core.Config) ([]xdrop.SeedResult, BatchStats) {
	t.Helper()
	out := make([]xdrop.SeedResult, len(pairs))
	st, err := be.ExtendBatch(context.Background(), pairs, out, cfg)
	if err != nil {
		t.Fatalf("%s: %v", be.Name(), err)
	}
	return out, st
}

// TestBackendsBitIdentical is the differential acceptance test of the
// backend layer: every implementation — CPU pool, single GPU, multi-GPU
// pool, and the hybrid scheduler — must produce bit-identical results on
// the same batch.
func TestBackendsBitIdentical(t *testing.T) {
	pairs := testPairs(t, 48)
	cfg := core.DefaultConfig(60)

	cpu := NewCPU(2)
	defer cpu.Close()
	gpu, err := NewV100("gpu0")
	if err != nil {
		t.Fatal(err)
	}
	defer gpu.Close()
	multi, err := NewV100MultiGPU(2)
	if err != nil {
		t.Fatal(err)
	}
	defer multi.Close()
	hybrid, err := NewHybrid(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer hybrid.Close()

	ref, refStats := runBackend(t, cpu, pairs, cfg)
	for _, be := range []Backend{gpu, multi, hybrid} {
		got, st := runBackend(t, be, pairs, cfg)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("%s: pair %d: %+v != cpu %+v", be.Name(), i, got[i], ref[i])
			}
		}
		if st.Cells != refStats.Cells {
			t.Fatalf("%s: cells %d != cpu %d", be.Name(), st.Cells, refStats.Cells)
		}
	}
}

// TestHybridShardBreakdown checks the scheduler's accounting: the shard
// breakdown must cover every pair and cell exactly once, and DeviceTime
// must be the slowest GPU shard.
func TestHybridShardBreakdown(t *testing.T) {
	pairs := testPairs(t, 40)
	cfg := core.DefaultConfig(50)
	h, err := NewHybrid(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	// Equalize the worker estimates so the LPT split actually spreads
	// this small batch across the CPU pool and both devices (with the
	// realistic priors the V100s would swallow everything).
	equalizeHybridRates(h)

	_, st := runBackend(t, h, pairs, cfg)
	if st.Pairs != len(pairs) {
		t.Fatalf("Pairs %d != %d", st.Pairs, len(pairs))
	}
	if len(st.Shards) < 2 {
		t.Fatalf("expected a heterogeneous split, got shards %+v", st.Shards)
	}
	var pairsSum int
	var cellsSum int64
	var maxGPU time.Duration
	seen := map[string]bool{}
	for _, sh := range st.Shards {
		if seen[sh.Backend] {
			t.Fatalf("shard %q reported twice", sh.Backend)
		}
		seen[sh.Backend] = true
		if sh.Pairs <= 0 {
			t.Fatalf("empty shard reported: %+v", sh)
		}
		pairsSum += sh.Pairs
		cellsSum += sh.Cells
		if sh.Backend != "cpu" && sh.Time > maxGPU {
			maxGPU = sh.Time
		}
	}
	if pairsSum != len(pairs) {
		t.Fatalf("shards cover %d pairs, want %d", pairsSum, len(pairs))
	}
	if cellsSum != st.Cells {
		t.Fatalf("shards cover %d cells, batch says %d", cellsSum, st.Cells)
	}
	if st.DeviceTime != maxGPU {
		t.Fatalf("DeviceTime %v != slowest GPU shard %v", st.DeviceTime, maxGPU)
	}
}

// TestHybridAdaptiveThroughput: observed batches must move the worker
// estimates, so the split adapts to measured rates rather than staying on
// the perfmodel priors forever.
func TestHybridAdaptiveThroughput(t *testing.T) {
	h, err := NewHybrid(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	equalizeHybridRates(h)
	cpu := h.workers[0].(*CPU)
	before := cpu.Throughput()
	pairs := testPairs(t, 24)
	out := make([]xdrop.SeedResult, len(pairs))
	if _, err := h.ExtendBatch(context.Background(), pairs, out, core.DefaultConfig(40)); err != nil {
		t.Fatal(err)
	}
	// The CPU shard ran for real, so the EWMA must have folded in at
	// least one observation (the prior is a round constant; any real
	// sample perturbs it).
	if cpu.Throughput() == before {
		t.Fatalf("CPU throughput estimate did not adapt from prior %v", before)
	}
	if h.Throughput() <= 0 {
		t.Fatalf("aggregate throughput %v", h.Throughput())
	}
}

func TestBackendThroughputHintsPositive(t *testing.T) {
	cpu := NewCPU(1)
	defer cpu.Close()
	gpu, err := NewV100("gpu0")
	if err != nil {
		t.Fatal(err)
	}
	multi, err := NewV100MultiGPU(3)
	if err != nil {
		t.Fatal(err)
	}
	if cpu.Throughput() <= 0 || gpu.Throughput() <= 0 || multi.Throughput() <= 0 {
		t.Fatalf("non-positive throughput hint: cpu %v gpu %v multi %v",
			cpu.Throughput(), gpu.Throughput(), multi.Throughput())
	}
	// A 3-GPU pool's prior must exceed a single device's.
	if multi.Throughput() <= gpu.Throughput() {
		t.Fatalf("multi-GPU prior %v not above single-GPU %v", multi.Throughput(), gpu.Throughput())
	}
	// The scheduler seeds are host-wall estimates, deliberately far below
	// the modeled-device ceiling (a different clock entirely): seeding
	// with PeakCellRate would starve the CPU worker of the hybrid split.
	if peak := core.PeakCellRate(gpu.Device().Spec); peak <= 100*gpu.Throughput() {
		t.Fatalf("modeled ceiling %v suspiciously close to wall seed %v", peak, gpu.Throughput())
	}
}

func TestBackendEmptyBatch(t *testing.T) {
	h, err := NewHybrid(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	for _, be := range []Backend{NewCPU(1), h} {
		st, err := be.ExtendBatch(context.Background(), nil, nil, core.DefaultConfig(20))
		if err != nil {
			t.Fatalf("%s: %v", be.Name(), err)
		}
		if st.Pairs != 0 || st.Cells != 0 || len(st.Shards) != 0 {
			t.Fatalf("%s: empty batch stats %+v", be.Name(), st)
		}
	}
}

func TestBackendLengthMismatch(t *testing.T) {
	gpu, err := NewV100("gpu0")
	if err != nil {
		t.Fatal(err)
	}
	pairs := testPairs(t, 3)
	if _, err := gpu.ExtendBatch(context.Background(), pairs, make([]xdrop.SeedResult, 2), core.DefaultConfig(20)); err == nil {
		t.Fatal("accepted mismatched out length")
	}
	h, err := NewHybrid(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if _, err := h.ExtendBatch(context.Background(), pairs, make([]xdrop.SeedResult, 2), core.DefaultConfig(20)); err == nil {
		t.Fatal("hybrid accepted mismatched out length")
	}
}

// TestBackendsClosed: after Close, every implementation must reject
// further batches — the shared interface contract.
func TestBackendsClosed(t *testing.T) {
	gpu, err := NewV100("gpu0")
	if err != nil {
		t.Fatal(err)
	}
	multi, err := NewV100MultiGPU(2)
	if err != nil {
		t.Fatal(err)
	}
	hyb, err := NewHybrid(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	pairs := testPairs(t, 2)
	for _, be := range []Backend{NewCPU(1), gpu, multi, hyb} {
		be.Close()
		be.Close() // idempotent
		if _, err := be.ExtendBatch(context.Background(), pairs, make([]xdrop.SeedResult, 2), core.DefaultConfig(20)); err == nil {
			t.Fatalf("closed %s backend accepted a batch", be.Name())
		}
	}
}

func TestRateEWMA(t *testing.T) {
	r := newRate(100)
	r.observe(0, time.Second) // ignored: no cells
	r.observe(10, 0)          // ignored: no duration
	if got := r.estimate(); got != 100 {
		t.Fatalf("degenerate samples moved the estimate to %v", got)
	}
	r.observe(200, time.Second) // sample rate 200
	got := r.estimate()
	if got <= 100 || got >= 200 {
		t.Fatalf("EWMA estimate %v not between prior and sample", got)
	}
}

// TestSupportsContract pins the scoring-family capability matrix: the GPU
// backends are linear-DNA only (the paper's kernel), the CPU pool runs
// every family, and the hybrid inherits the union of its workers.
func TestSupportsContract(t *testing.T) {
	cpu := NewCPU(1)
	defer cpu.Close()
	gpu, err := NewV100("gpu0")
	if err != nil {
		t.Fatal(err)
	}
	defer gpu.Close()
	multi, err := NewV100MultiGPU(2)
	if err != nil {
		t.Fatal(err)
	}
	defer multi.Close()
	hyb, err := NewHybrid(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer hyb.Close()
	for _, kind := range []xdrop.SchemeKind{xdrop.SchemeLinear, xdrop.SchemeAffine, xdrop.SchemeMatrix} {
		if !cpu.Supports(kind) {
			t.Errorf("cpu must support %v", kind)
		}
		if !hyb.Supports(kind) {
			t.Errorf("hybrid must support %v", kind)
		}
		wantGPU := kind == xdrop.SchemeLinear
		if gpu.Supports(kind) != wantGPU || multi.Supports(kind) != wantGPU {
			t.Errorf("%v: gpu support %v / multi %v, want %v",
				kind, gpu.Supports(kind), multi.Supports(kind), wantGPU)
		}
	}
}

// TestGPUUnsupportedScheme: non-linear batches on the pure-GPU backends
// must fail with core.ErrUnsupportedScheme — the documented restriction,
// not a crash or a silent linear fallback.
func TestGPUUnsupportedScheme(t *testing.T) {
	pairs := testPairs(t, 2)
	out := make([]xdrop.SeedResult, len(pairs))
	gpu, err := NewV100("gpu0")
	if err != nil {
		t.Fatal(err)
	}
	defer gpu.Close()
	multi, err := NewV100MultiGPU(2)
	if err != nil {
		t.Fatal(err)
	}
	defer multi.Close()
	affine := core.Config{
		Mode:   xdrop.SchemeAffine,
		Affine: xdrop.AffineScoring{Match: 1, Mismatch: -1, GapOpen: -2, GapExtend: -1},
		X:      30,
	}
	matrix := core.Config{Mode: xdrop.SchemeMatrix, Matrix: xdrop.Blosum62(-6), X: 30}
	for _, be := range []Backend{gpu, multi} {
		for _, cfg := range []core.Config{affine, matrix} {
			_, err := be.ExtendBatch(context.Background(), pairs, out, cfg)
			if !errors.Is(err, core.ErrUnsupportedScheme) {
				t.Errorf("%s mode %v: err %v, want ErrUnsupportedScheme", be.Name(), cfg.Mode, err)
			}
		}
	}
}

// TestHybridRoutesNonLinearToCPU: the hybrid must execute affine and
// matrix batches by routing every pair to CPU shards, bit-identical to
// the pure-CPU backend, with no GPU shard in the breakdown.
func TestHybridRoutesNonLinearToCPU(t *testing.T) {
	pairs := testPairs(t, 24)
	cpu := NewCPU(2)
	defer cpu.Close()
	h, err := NewHybrid(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	equalizeHybridRates(h) // GPUs would win the whole batch otherwise

	cfg := core.Config{
		Mode:   xdrop.SchemeAffine,
		Affine: xdrop.AffineScoring{Match: 1, Mismatch: -1, GapOpen: -3, GapExtend: -1},
		X:      40,
	}
	ref, refStats := runBackend(t, cpu, pairs, cfg)
	got, st := runBackend(t, h, pairs, cfg)
	for i := range ref {
		if got[i] != ref[i] {
			t.Fatalf("pair %d: hybrid %+v != cpu %+v", i, got[i], ref[i])
		}
	}
	if st.Cells != refStats.Cells {
		t.Fatalf("cells %d != cpu %d", st.Cells, refStats.Cells)
	}
	for _, sh := range st.Shards {
		if sh.Backend != "cpu" {
			t.Fatalf("affine batch landed on %q: %+v", sh.Backend, st.Shards)
		}
	}
	if st.DeviceTime != 0 {
		t.Fatalf("affine batch reported device time %v", st.DeviceTime)
	}
	// A linear batch on the same engine still uses the whole worker set.
	lin, linStats := runBackend(t, h, pairs, core.DefaultConfig(40))
	cpuLin, _ := runBackend(t, cpu, pairs, core.DefaultConfig(40))
	for i := range lin {
		if lin[i] != cpuLin[i] {
			t.Fatalf("linear pair %d diverged after non-linear batch", i)
		}
	}
	gpuShards := 0
	for _, sh := range linStats.Shards {
		if sh.Backend != "cpu" {
			gpuShards++
		}
	}
	if gpuShards == 0 {
		t.Fatalf("linear batch used no GPU shard: %+v", linStats.Shards)
	}
}

// TestBackendContextCanceled: an already-canceled context must fail the
// batch with the context's error on every backend.
func TestBackendContextCanceled(t *testing.T) {
	pairs := testPairs(t, 4)
	cpu := NewCPU(1)
	defer cpu.Close()
	gpu, err := NewV100("gpu0")
	if err != nil {
		t.Fatal(err)
	}
	defer gpu.Close()
	hyb, err := NewHybrid(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer hyb.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, be := range []Backend{cpu, gpu, hyb} {
		out := make([]xdrop.SeedResult, len(pairs))
		if _, err := be.ExtendBatch(ctx, pairs, out, core.DefaultConfig(30)); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err %v, want context.Canceled", be.Name(), err)
		}
	}
}
