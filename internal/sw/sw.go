// Package sw provides the exact quadratic alignment baselines the paper
// compares against: Smith-Waterman local alignment and Needleman-Wunsch
// global alignment (§I), a fixed-band Smith-Waterman (the "banded" search
// space of Fig. 2), an anti-diagonal SIMD variant, and the two GPU
// comparators of Fig. 12 — a CUDASW++-like full-matrix kernel and a
// manymap-like fixed-band seed-extension kernel — implemented on the
// simulated device.
package sw

import (
	"math"

	"logan/internal/seq"
	"logan/internal/xdrop"
)

// NegInf mirrors the xdrop sentinel for banded variants.
const NegInf int32 = math.MinInt32 / 2

// Result is a score-only alignment outcome with work accounting.
type Result struct {
	Score     int32
	QueryEnd  int // local/global end positions (prefix lengths)
	TargetEnd int
	Cells     int64
}

// Local computes the Smith-Waterman local alignment score of q and t with
// linear gaps, in O(min memory) two-row form.
func Local(q, t seq.Seq, sc xdrop.Scoring) Result {
	m, n := len(q), len(t)
	if m == 0 || n == 0 {
		return Result{}
	}
	prev := make([]int32, n+1)
	cur := make([]int32, n+1)
	var best int32
	bi, bj := 0, 0
	for i := 1; i <= m; i++ {
		for j := 1; j <= n; j++ {
			s := prev[j-1]
			if q[i-1] == t[j-1] {
				s += sc.Match
			} else {
				s += sc.Mismatch
			}
			if v := prev[j] + sc.Gap; v > s {
				s = v
			}
			if v := cur[j-1] + sc.Gap; v > s {
				s = v
			}
			if s < 0 {
				s = 0
			}
			cur[j] = s
			if s > best {
				best, bi, bj = s, i, j
			}
		}
		prev, cur = cur, prev
		cur[0] = 0
	}
	return Result{Score: best, QueryEnd: bi, TargetEnd: bj, Cells: int64(m) * int64(n)}
}

// Global computes the Needleman-Wunsch global alignment score of q and t.
func Global(q, t seq.Seq, sc xdrop.Scoring) Result {
	m, n := len(q), len(t)
	prev := make([]int32, n+1)
	cur := make([]int32, n+1)
	for j := 0; j <= n; j++ {
		prev[j] = int32(j) * sc.Gap
	}
	if m == 0 {
		return Result{Score: prev[n], QueryEnd: 0, TargetEnd: n}
	}
	for i := 1; i <= m; i++ {
		cur[0] = int32(i) * sc.Gap
		for j := 1; j <= n; j++ {
			s := prev[j-1]
			if q[i-1] == t[j-1] {
				s += sc.Match
			} else {
				s += sc.Mismatch
			}
			if v := prev[j] + sc.Gap; v > s {
				s = v
			}
			if v := cur[j-1] + sc.Gap; v > s {
				s = v
			}
			cur[j] = s
		}
		prev, cur = cur, prev
	}
	return Result{Score: prev[n], QueryEnd: m, TargetEnd: n, Cells: int64(m) * int64(n)}
}

// Banded computes Smith-Waterman restricted to a fixed band of half-width w
// around the main diagonal — the classic banded search space the paper
// contrasts with X-drop's adaptive band (Fig. 2). Cells outside the band
// are treated as unreachable.
func Banded(q, t seq.Seq, sc xdrop.Scoring, w int) Result {
	m, n := len(q), len(t)
	if m == 0 || n == 0 || w < 0 {
		return Result{}
	}
	// Row 0 and column 0 of the Smith-Waterman matrix are all zeros
	// (alignments may start anywhere); cells outside the band are
	// unreachable.
	prev := make([]int32, n+1)
	cur := make([]int32, n+1)
	var best int32
	bi, bj := 0, 0
	var cells int64
	for i := 1; i <= m; i++ {
		lo, hi := i-w, i+w
		if lo < 1 {
			lo = 1
		}
		if hi > n {
			hi = n
		}
		for j := range cur {
			cur[j] = NegInf
		}
		cur[0] = 0
		for j := lo; j <= hi; j++ {
			s := prev[j-1]
			if s > NegInf {
				if q[i-1] == t[j-1] {
					s += sc.Match
				} else {
					s += sc.Mismatch
				}
			}
			if v := prev[j]; v > NegInf && v+sc.Gap > s {
				s = v + sc.Gap
			}
			if v := cur[j-1]; v > NegInf && v+sc.Gap > s {
				s = v + sc.Gap
			}
			if s < 0 {
				s = 0
			}
			cur[j] = s
			if s > best {
				best, bi, bj = s, i, j
			}
			cells++
		}
		prev, cur = cur, prev
	}
	return Result{Score: best, QueryEnd: bi, TargetEnd: bj, Cells: cells}
}
