package sw

import (
	"fmt"

	"logan/internal/cuda"
	"logan/internal/seq"
	"logan/internal/xdrop"
)

// Per-cell INT32 lane-op costs of the two GPU comparators, relative to
// LOGAN's ~26 (internal/core). CUDASW++ is a protein-oriented SW kernel:
// substitution-profile gathers, the local zero clamp and per-cell best
// tracking roughly two-and-a-half-fold its per-cell instruction count
// (its published GCUPS on V100-class parts sit near 70 vs LOGAN's 181,
// Fig. 12). manymap's fixed-band DNA kernel is leaner but still carries
// chaining bookkeeping.
const (
	CUDASWCellOps  = 96
	ManymapCellOps = 48
)

// GPUBatchResult is the outcome of a comparator kernel over a batch.
type GPUBatchResult struct {
	Scores []int32
	Cells  int64
	Stats  cuda.KernelStats
}

// CUDASWBatch runs a CUDASW++-like full Smith-Waterman kernel: one block
// per pair, anti-diagonal wavefront over the entire m x n matrix, no
// pruning. Scores are exact SW scores (verified against Local in tests);
// the work is quadratic, which is exactly why its GCUPS ceiling in Fig. 12
// does not translate into end-to-end wins on long reads.
func CUDASWBatch(dev *cuda.Device, pairs []seq.Pair, sc xdrop.Scoring, threads int) (GPUBatchResult, error) {
	if len(pairs) == 0 {
		return GPUBatchResult{}, nil
	}
	if threads <= 0 {
		threads = 128
	}
	scores := make([]int32, len(pairs))
	cells := make([]int64, len(pairs))
	kernel := func(b *cuda.BlockCtx) {
		p := &pairs[b.BlockIdx]
		m, n := len(p.Query), len(p.Target)
		if m == 0 || n == 0 {
			return
		}
		r := Local(p.Query, p.Target, sc)
		scores[b.BlockIdx] = r.Score
		cells[b.BlockIdx] = r.Cells
		// Account the wavefront: anti-diagonal d has width w(d); each
		// segment of `threads` lanes is one step.
		b.GlobalRead(cuda.TrafficStream, int64(m+n), true) // sequences
		rowBytes := int64(4)
		for d := 2; d <= m+n; d++ {
			w := min(d-1, m) - max(1, d-n) + 1
			if w <= 0 {
				continue
			}
			for off := 0; off < w; off += threads {
				active := min(threads, w-off)
				b.Step(active, CUDASWCellOps)
			}
			b.GlobalRead(cuda.TrafficReuse, 2*rowBytes*int64(w), true)
			b.GlobalWrite(cuda.TrafficReuse, rowBytes*int64(w), true)
			b.ReduceMax32(nil)
			b.Sync()
		}
		b.DeclareReuseFootprint(3 * rowBytes * int64(min(m, n)+1))
	}
	stats, err := dev.Launch(cuda.LaunchConfig{
		Name: "cudasw", Grid: len(pairs), Block: threads,
	}, kernel)
	if err != nil {
		return GPUBatchResult{}, fmt.Errorf("sw: cudasw launch: %w", err)
	}
	var total int64
	for _, c := range cells {
		total += c
	}
	return GPUBatchResult{Scores: scores, Cells: total, Stats: stats}, nil
}

// ManymapBatch runs a manymap-like kernel (Feng et al., the GPU-accelerated
// minimap2 of the paper's related work): fixed-band alignment of half-width
// w around the seed diagonal, one block per pair. manymap is single-GPU
// software; the Fig. 12 harness plots it as a flat line.
func ManymapBatch(dev *cuda.Device, pairs []seq.Pair, sc xdrop.Scoring, w, threads int) (GPUBatchResult, error) {
	if len(pairs) == 0 {
		return GPUBatchResult{}, nil
	}
	if w <= 0 {
		w = 500
	}
	if threads <= 0 {
		threads = 128
	}
	scores := make([]int32, len(pairs))
	cells := make([]int64, len(pairs))
	kernel := func(b *cuda.BlockCtx) {
		p := &pairs[b.BlockIdx]
		if len(p.Query) == 0 || len(p.Target) == 0 {
			return
		}
		r := Banded(p.Query, p.Target, sc, w)
		scores[b.BlockIdx] = r.Score
		cells[b.BlockIdx] = r.Cells
		b.GlobalRead(cuda.TrafficStream, int64(len(p.Query)+len(p.Target)), true)
		band := min(2*w+1, len(p.Target))
		rowBytes := int64(4)
		for i := 1; i <= len(p.Query); i++ {
			for off := 0; off < band; off += threads {
				active := min(threads, band-off)
				b.Step(active, ManymapCellOps)
			}
			b.GlobalRead(cuda.TrafficReuse, 2*rowBytes*int64(band), true)
			b.GlobalWrite(cuda.TrafficReuse, rowBytes*int64(band), true)
			b.Sync()
		}
		b.DeclareReuseFootprint(2 * rowBytes * int64(band))
	}
	stats, err := dev.Launch(cuda.LaunchConfig{
		Name: "manymap", Grid: len(pairs), Block: threads,
	}, kernel)
	if err != nil {
		return GPUBatchResult{}, fmt.Errorf("sw: manymap launch: %w", err)
	}
	var total int64
	for _, c := range cells {
		total += c
	}
	return GPUBatchResult{Scores: scores, Cells: total, Stats: stats}, nil
}
