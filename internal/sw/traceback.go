package sw

import (
	"fmt"
	"strings"

	"logan/internal/seq"
	"logan/internal/xdrop"
)

// Op is one alignment operation in a traceback.
type Op byte

const (
	OpMatch    Op = '='
	OpMismatch Op = 'X'
	OpInsert   Op = 'I' // gap in target (consumes query)
	OpDelete   Op = 'D' // gap in query (consumes target)
)

// Alignment is a full local alignment with traceback, produced by
// LocalAlign for inspection, examples and accuracy checks. LOGAN itself is
// score-only (paper §IV-A: no traceback on device), so this lives with the
// CPU baselines.
type Alignment struct {
	Result
	QBegin, TBegin int  // alignment start (0-based)
	Ops            []Op // operations from (QBegin,TBegin) to (QueryEnd,TargetEnd)
}

// CIGAR renders the operations run-length encoded, extended CIGAR style.
func (a Alignment) CIGAR() string {
	var b strings.Builder
	i := 0
	for i < len(a.Ops) {
		j := i
		for j < len(a.Ops) && a.Ops[j] == a.Ops[i] {
			j++
		}
		fmt.Fprintf(&b, "%d%c", j-i, a.Ops[i])
		i = j
	}
	return b.String()
}

// Identity returns matches / alignment columns.
func (a Alignment) Identity() float64 {
	if len(a.Ops) == 0 {
		return 0
	}
	m := 0
	for _, op := range a.Ops {
		if op == OpMatch {
			m++
		}
	}
	return float64(m) / float64(len(a.Ops))
}

// LocalAlign computes the Smith-Waterman alignment with a full traceback.
// It keeps the whole O(mn) matrix and is meant for modest inputs.
func LocalAlign(q, t seq.Seq, sc xdrop.Scoring) Alignment {
	m, n := len(q), len(t)
	if m == 0 || n == 0 {
		return Alignment{}
	}
	// h[i*(n+1)+j] holds S(i,j).
	h := make([]int32, (m+1)*(n+1))
	idx := func(i, j int) int { return i*(n+1) + j }
	var best int32
	bi, bj := 0, 0
	for i := 1; i <= m; i++ {
		for j := 1; j <= n; j++ {
			s := h[idx(i-1, j-1)]
			if q[i-1] == t[j-1] {
				s += sc.Match
			} else {
				s += sc.Mismatch
			}
			if v := h[idx(i-1, j)] + sc.Gap; v > s {
				s = v
			}
			if v := h[idx(i, j-1)] + sc.Gap; v > s {
				s = v
			}
			if s < 0 {
				s = 0
			}
			h[idx(i, j)] = s
			if s > best {
				best, bi, bj = s, i, j
			}
		}
	}
	a := Alignment{
		Result: Result{Score: best, QueryEnd: bi, TargetEnd: bj, Cells: int64(m) * int64(n)},
	}
	// Trace back from the best cell to the first zero.
	var rev []Op
	i, j := bi, bj
	for i > 0 && j > 0 && h[idx(i, j)] > 0 {
		s := h[idx(i, j)]
		diag := h[idx(i-1, j-1)]
		var sub int32
		if q[i-1] == t[j-1] {
			sub = sc.Match
		} else {
			sub = sc.Mismatch
		}
		switch {
		case s == diag+sub:
			if sub == sc.Match {
				rev = append(rev, OpMatch)
			} else {
				rev = append(rev, OpMismatch)
			}
			i, j = i-1, j-1
		case s == h[idx(i-1, j)]+sc.Gap:
			rev = append(rev, OpInsert)
			i--
		case s == h[idx(i, j-1)]+sc.Gap:
			rev = append(rev, OpDelete)
			j--
		default:
			// Unreachable if the matrix is consistent.
			panic("sw: inconsistent traceback")
		}
	}
	a.QBegin, a.TBegin = i, j
	for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
		rev[l], rev[r] = rev[r], rev[l]
	}
	a.Ops = rev
	return a
}
