package sw

import (
	"math/rand"
	"testing"

	"logan/internal/seq"
)

func TestGlobalAlignBandedExactWithWideBand(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		q := seq.RandSeq(rng, 1+rng.Intn(60))
		tt := seq.RandSeq(rng, 1+rng.Intn(60))
		a, err := GlobalAlignBanded(q, tt, sc(), len(q)+len(tt))
		if err != nil {
			t.Fatal(err)
		}
		want := Global(q, tt, sc())
		if a.Score != want.Score {
			t.Fatalf("trial %d: banded global %d != exact %d\nq=%s\nt=%s", trial, a.Score, want.Score, q, tt)
		}
	}
}

func TestGlobalAlignOpsRescore(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		base := seq.RandSeq(rng, 100+rng.Intn(200))
		mut := seq.Mutate(rng, base, seq.UniformProfile(0.12))
		a, err := GlobalAlignBanded(base, mut, sc(), 64)
		if err != nil {
			t.Fatal(err)
		}
		var rescore int32
		qi, tj := 0, 0
		for _, op := range a.Ops {
			switch op {
			case OpMatch:
				if base[qi] != mut[tj] {
					t.Fatal("match op on differing bases")
				}
				rescore += sc().Match
				qi, tj = qi+1, tj+1
			case OpMismatch:
				if base[qi] == mut[tj] {
					t.Fatal("mismatch op on equal bases")
				}
				rescore += sc().Mismatch
				qi, tj = qi+1, tj+1
			case OpInsert:
				rescore += sc().Gap
				qi++
			case OpDelete:
				rescore += sc().Gap
				tj++
			}
		}
		if qi != len(base) || tj != len(mut) {
			t.Fatalf("ops consume (%d,%d), want (%d,%d)", qi, tj, len(base), len(mut))
		}
		if rescore != a.Score {
			t.Fatalf("ops rescore %d != score %d", rescore, a.Score)
		}
		// Identity should reflect the ~12% error channel (pairwise).
		if a.Identity() < 0.7 || a.Identity() > 0.98 {
			t.Fatalf("identity %.3f implausible for 12%% errors", a.Identity())
		}
	}
}

func TestGlobalAlignEmptyAndDegenerate(t *testing.T) {
	s := seq.MustNew("ACGT")
	a, err := GlobalAlignBanded(nil, s, sc(), 4)
	if err != nil || a.Score != -4 || len(a.Ops) != 4 {
		t.Fatalf("empty query: %+v, %v", a, err)
	}
	a, err = GlobalAlignBanded(s, nil, sc(), 4)
	if err != nil || a.Score != -4 {
		t.Fatalf("empty target: %+v, %v", a, err)
	}
	if _, err := GlobalAlignBanded(s, s, sc(), -1); err == nil {
		t.Fatal("accepted negative band")
	}
	// Length drift beyond the requested band is automatically covered.
	long := seq.MustNew("ACGTACGTACGTACGTACGT")
	short := seq.MustNew("ACG")
	if _, err := GlobalAlignBanded(long, short, sc(), 1); err != nil {
		t.Fatalf("drift widening failed: %v", err)
	}
}

func TestGlobalAlignBandedMemoryScales(t *testing.T) {
	// A narrow band on long sequences must explore far fewer cells than
	// the full quadratic DP.
	rng := rand.New(rand.NewSource(3))
	base := seq.RandSeq(rng, 3000)
	mut := seq.Mutate(rng, base, seq.UniformProfile(0.1))
	a, err := GlobalAlignBanded(base, mut, sc(), 80)
	if err != nil {
		t.Fatal(err)
	}
	full := int64(len(base)) * int64(len(mut))
	if a.Cells >= full/5 {
		t.Fatalf("banded explored %d cells of %d", a.Cells, full)
	}
	if a.Identity() < 0.75 {
		t.Fatalf("identity %.3f too low", a.Identity())
	}
}
