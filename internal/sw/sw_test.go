package sw

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"logan/internal/cuda"
	"logan/internal/seq"
	"logan/internal/simd"
	"logan/internal/xdrop"
)

func sc() xdrop.Scoring { return xdrop.DefaultScoring() }

func TestLocalBasics(t *testing.T) {
	s := seq.MustNew("ACGTACGT")
	r := Local(s, s, sc())
	if r.Score != 8 {
		t.Fatalf("self score = %d, want 8", r.Score)
	}
	if r.QueryEnd != 8 || r.TargetEnd != 8 {
		t.Fatalf("ends = (%d,%d)", r.QueryEnd, r.TargetEnd)
	}
	// Embedded common substring.
	q := seq.MustNew("TTTTACGTACGTTTTT")
	tt := seq.MustNew("GGGGACGTACGGGGG")
	r = Local(q, tt, sc())
	if r.Score < 7 {
		t.Fatalf("embedded motif score = %d, want >= 7", r.Score)
	}
	if r := Local(nil, s, sc()); r.Score != 0 {
		t.Fatal("empty query must score 0")
	}
}

func TestLocalNonNegativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := seq.RandSeq(rng, 1+rng.Intn(50))
		tt := seq.RandSeq(rng, 1+rng.Intn(50))
		r := Local(q, tt, sc())
		return r.Score >= 0 && r.Score <= int32(min(len(q), len(tt)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestGlobalKnownValues(t *testing.T) {
	// Classic check: identical sequences score len*match; empty vs s
	// scores len*gap.
	s := seq.MustNew("ACGTAC")
	if r := Global(s, s, sc()); r.Score != 6 {
		t.Fatalf("global self = %d, want 6", r.Score)
	}
	if r := Global(nil, s, sc()); r.Score != -6 {
		t.Fatalf("global vs empty = %d, want -6", r.Score)
	}
	a := seq.MustNew("ACGT")
	b := seq.MustNew("AGT")
	// Best: align A-GT with C deleted: 3 matches - 1 gap = 2.
	if r := Global(a, b, sc()); r.Score != 2 {
		t.Fatalf("ACGT vs AGT global = %d, want 2", r.Score)
	}
}

func TestGlobalVsLocalRelation(t *testing.T) {
	// Local >= Global for nonneg... not in general, but local >= 0 and
	// local >= global when global is the best full-length alignment of a
	// substring pair. Check local >= global for equal-length related pairs.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		base := seq.RandSeq(rng, 60)
		mut := seq.Mutate(rng, base, seq.UniformProfile(0.1))
		l := Local(base, mut, sc())
		g := Global(base, mut, sc())
		if l.Score < g.Score {
			t.Fatalf("local %d < global %d", l.Score, g.Score)
		}
	}
}

func TestBandedFullWidthEqualsLocal(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		q := seq.RandSeq(rng, 1+rng.Intn(60))
		tt := seq.RandSeq(rng, 1+rng.Intn(60))
		full := Local(q, tt, sc())
		banded := Banded(q, tt, sc(), len(q)+len(tt))
		if full.Score != banded.Score {
			t.Fatalf("banded(full) %d != local %d\nq=%s\nt=%s", banded.Score, full.Score, q, tt)
		}
	}
}

func TestBandedNarrowIsBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	q := seq.RandSeq(rng, 200)
	tt := seq.Mutate(rng, q, seq.UniformProfile(0.1))
	full := Local(q, tt, sc())
	prev := int32(-1)
	for _, w := range []int{0, 2, 8, 32, 128} {
		b := Banded(q, tt, sc(), w)
		if b.Score > full.Score {
			t.Fatalf("banded(%d) score %d exceeds full %d", w, b.Score, full.Score)
		}
		if b.Score < prev {
			t.Fatalf("banded score not monotone in width at w=%d", w)
		}
		prev = b.Score
	}
}

func TestBandedCellsScaleWithWidth(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	q := seq.RandSeq(rng, 1000)
	tt := seq.RandSeq(rng, 1000)
	narrow := Banded(q, tt, sc(), 10)
	wide := Banded(q, tt, sc(), 100)
	if wide.Cells < 5*narrow.Cells {
		t.Fatalf("banded cells: w=10 %d, w=100 %d — expected ~10x growth", narrow.Cells, wide.Cells)
	}
}

func TestLocalAlignTraceback(t *testing.T) {
	q := seq.MustNew("TTACGTACGTTT")
	tt := seq.MustNew("GGACGTACGAGG")
	a := LocalAlign(q, tt, sc())
	if a.Score != Local(q, tt, sc()).Score {
		t.Fatalf("traceback score %d != score-only %d", a.Score, Local(q, tt, sc()).Score)
	}
	if len(a.Ops) == 0 {
		t.Fatal("no operations in traceback")
	}
	// Re-score the traceback operations: must equal the score.
	var rescore int32
	qi, tj := a.QBegin, a.TBegin
	for _, op := range a.Ops {
		switch op {
		case OpMatch:
			if q[qi] != tt[tj] {
				t.Fatalf("op = at (%d,%d) but bases differ", qi, tj)
			}
			rescore += sc().Match
			qi++
			tj++
		case OpMismatch:
			if q[qi] == tt[tj] {
				t.Fatalf("op X at (%d,%d) but bases equal", qi, tj)
			}
			rescore += sc().Mismatch
			qi++
			tj++
		case OpInsert:
			rescore += sc().Gap
			qi++
		case OpDelete:
			rescore += sc().Gap
			tj++
		}
	}
	if rescore != a.Score {
		t.Fatalf("rescored ops = %d, want %d", rescore, a.Score)
	}
	if qi != a.QueryEnd || tj != a.TargetEnd {
		t.Fatalf("ops end at (%d,%d), reported (%d,%d)", qi, tj, a.QueryEnd, a.TargetEnd)
	}
	if !strings.Contains(a.CIGAR(), "=") {
		t.Fatalf("CIGAR %q has no matches", a.CIGAR())
	}
	if a.Identity() <= 0.5 {
		t.Fatalf("identity %v too low for a match-dominated alignment", a.Identity())
	}
}

func TestLocalAlignPropertyRescore(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := seq.RandSeq(rng, 1+rng.Intn(40))
		tt := seq.RandSeq(rng, 1+rng.Intn(40))
		a := LocalAlign(q, tt, sc())
		return a.Score == Local(q, tt, sc()).Score
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLocalSIMDMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var ops simd.OpCounter
	for trial := 0; trial < 50; trial++ {
		q := seq.RandSeq(rng, 1+rng.Intn(120))
		tt := seq.RandSeq(rng, 1+rng.Intn(120))
		v := LocalSIMD(q, tt, sc(), &ops)
		s := Local(q, tt, sc())
		if v.Score != s.Score {
			t.Fatalf("trial %d: simd %d != scalar %d\nq=%s\nt=%s", trial, v.Score, s.Score, q, tt)
		}
	}
	if ops.VecOps == 0 {
		t.Fatal("no vector ops accounted")
	}
}

func TestLocalSIMDRelatedPair(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := seq.RandSeq(rng, 800)
	mut := seq.Mutate(rng, base, seq.PacBioProfile(0.15))
	v := LocalSIMD(base, mut, sc(), nil)
	s := Local(base, mut, sc())
	if v.Score != s.Score {
		t.Fatalf("simd %d != scalar %d on related pair", v.Score, s.Score)
	}
	if v.Cells != s.Cells {
		t.Fatalf("simd cells %d != scalar %d", v.Cells, s.Cells)
	}
}

func TestCUDASWBatchMatchesLocal(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pairs := seq.RandPairSet(rng, seq.PairSetOptions{N: 12, MinLen: 60, MaxLen: 150, ErrorRate: 0.15, SeedLen: 11})
	dev := cuda.MustV100()
	res, err := CUDASWBatch(dev, pairs, sc(), 128)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pairs {
		want := Local(p.Query, p.Target, sc())
		if res.Scores[i] != want.Score {
			t.Fatalf("pair %d: gpu %d != cpu %d", i, res.Scores[i], want.Score)
		}
	}
	if res.Stats.Grid != 12 || res.Stats.WarpInstrs == 0 {
		t.Fatalf("stats: %+v", res.Stats)
	}
	if res.Cells == 0 {
		t.Fatal("no cells accounted")
	}
	// Full SW is quadratic: cells must equal sum of m*n.
	var want int64
	for _, p := range pairs {
		want += int64(len(p.Query)) * int64(len(p.Target))
	}
	if res.Cells != want {
		t.Fatalf("cells = %d, want %d", res.Cells, want)
	}
}

func TestManymapBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pairs := seq.RandPairSet(rng, seq.PairSetOptions{N: 10, MinLen: 100, MaxLen: 200, ErrorRate: 0.1, SeedLen: 11})
	dev := cuda.MustV100()
	res, err := ManymapBatch(dev, pairs, sc(), 50, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pairs {
		want := Banded(p.Query, p.Target, sc(), 50)
		if res.Scores[i] != want.Score {
			t.Fatalf("pair %d: gpu %d != banded cpu %d", i, res.Scores[i], want.Score)
		}
	}
	// Banded work must be far below quadratic for these shapes... but with
	// w=50 on 100-200bp reads the band covers most of the matrix, so just
	// check consistency and accounting here.
	if res.Stats.LaneOps == 0 || res.Cells == 0 {
		t.Fatal("missing accounting")
	}
	empty, err := ManymapBatch(dev, nil, sc(), 50, 64)
	if err != nil || empty.Scores != nil {
		t.Fatalf("empty batch: %+v, %v", empty, err)
	}
}

func TestGPUComparatorsPerCellCosts(t *testing.T) {
	// The Fig. 12 story requires CUDASW++ to spend more instructions per
	// cell than manymap, and both more than LOGAN's ~26.
	if CUDASWCellOps <= ManymapCellOps {
		t.Error("CUDASW++ per-cell cost should exceed manymap's")
	}
	if ManymapCellOps <= 26 {
		t.Error("manymap per-cell cost should exceed LOGAN's 26")
	}
}

func BenchmarkLocal1K(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	q := seq.RandSeq(rng, 1000)
	tt := seq.RandSeq(rng, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Local(q, tt, sc())
	}
}

func BenchmarkLocalSIMD1K(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	q := seq.RandSeq(rng, 1000)
	tt := seq.RandSeq(rng, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LocalSIMD(q, tt, sc(), nil)
	}
}
