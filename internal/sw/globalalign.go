package sw

import (
	"fmt"

	"logan/internal/seq"
	"logan/internal/xdrop"
)

// GlobalAlignment is a full global alignment with traceback, the
// post-processing pass real pipelines run on *accepted* overlaps: LOGAN
// itself is score-only (paper §IV-A), so base-level alignments are
// recovered afterwards for just the pairs that survived filtering.
type GlobalAlignment struct {
	Score int32
	Ops   []Op
	Cells int64
}

// CIGAR renders the operations run-length encoded.
func (a GlobalAlignment) CIGAR() string {
	return Alignment{Ops: a.Ops}.CIGAR()
}

// Identity returns matches over alignment columns.
func (a GlobalAlignment) Identity() float64 {
	if len(a.Ops) == 0 {
		return 0
	}
	m := 0
	for _, op := range a.Ops {
		if op == OpMatch {
			m++
		}
	}
	return float64(m) / float64(len(a.Ops))
}

// GlobalAlignBanded computes the global (end-to-end) alignment of q and t
// with traceback, restricted to a band of half-width w around the
// length-corrected diagonal. Memory is O(len(q) * min(2w+1, len(t)));
// choose w at least the expected indel drift (X-drop's MaxBand is a sound
// choice). If the optimal path leaves the band the score is a lower
// bound; with w >= len(q)+len(t) the result is exact.
func GlobalAlignBanded(q, t seq.Seq, sc xdrop.Scoring, w int) (GlobalAlignment, error) {
	m, n := len(q), len(t)
	if w < 0 {
		return GlobalAlignment{}, fmt.Errorf("sw: negative band width %d", w)
	}
	// The band must contain the endpoint diagonal |m-n|.
	drift := m - n
	if drift < 0 {
		drift = -drift
	}
	if w < drift+1 {
		w = drift + 1
	}
	if m == 0 {
		ops := make([]Op, n)
		for i := range ops {
			ops[i] = OpDelete
		}
		return GlobalAlignment{Score: int32(n) * sc.Gap, Ops: ops}, nil
	}
	if n == 0 {
		ops := make([]Op, m)
		for i := range ops {
			ops[i] = OpInsert
		}
		return GlobalAlignment{Score: int32(m) * sc.Gap, Ops: ops}, nil
	}

	// Row i stores cells j in [lo(i), hi(i)] with lo(i) = max(0, i-w),
	// hi(i) = min(n, i+w); the backing storage per row is 2w+1 wide.
	width := 2*w + 1
	lo := func(i int) int { return max(0, i-w) }
	hi := func(i int) int { return min(n, i+w) }
	score := make([]int32, (m+1)*width)
	dir := make([]byte, (m+1)*width) // 'D' diag, 'U' up (insert), 'L' left (delete)
	at := func(i, j int) int { return i*width + (j - lo(i)) }
	var cells int64

	for i := 0; i <= m; i++ {
		for j := lo(i); j <= hi(i); j++ {
			cells++
			idx := at(i, j)
			switch {
			case i == 0 && j == 0:
				score[idx] = 0
			case i == 0:
				score[idx] = score[at(0, j-1)] + sc.Gap
				dir[idx] = 'L'
			case j == 0:
				score[idx] = score[at(i-1, 0)] + sc.Gap
				dir[idx] = 'U'
			default:
				best := NegInf
				var d byte
				if j >= lo(i-1) && j-1 <= hi(i-1) && j-1 >= lo(i-1) {
					s := score[at(i-1, j-1)]
					if q[i-1] == t[j-1] {
						s += sc.Match
					} else {
						s += sc.Mismatch
					}
					if s > best {
						best, d = s, 'D'
					}
				}
				if j >= lo(i-1) && j <= hi(i-1) {
					if s := score[at(i-1, j)] + sc.Gap; s > best {
						best, d = s, 'U'
					}
				}
				if j-1 >= lo(i) {
					if s := score[at(i, j-1)] + sc.Gap; s > best {
						best, d = s, 'L'
					}
				}
				score[idx] = best
				dir[idx] = d
			}
		}
	}

	out := GlobalAlignment{Score: score[at(m, n)], Cells: cells}
	// Trace back from (m, n).
	var rev []Op
	i, j := m, n
	for i > 0 || j > 0 {
		switch dir[at(i, j)] {
		case 'D':
			if q[i-1] == t[j-1] {
				rev = append(rev, OpMatch)
			} else {
				rev = append(rev, OpMismatch)
			}
			i, j = i-1, j-1
		case 'U':
			rev = append(rev, OpInsert)
			i--
		case 'L':
			rev = append(rev, OpDelete)
			j--
		default:
			return out, fmt.Errorf("sw: traceback escaped the band at (%d,%d); widen w", i, j)
		}
	}
	for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
		rev[l], rev[r] = rev[r], rev[l]
	}
	out.Ops = rev
	return out, nil
}
