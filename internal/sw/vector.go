package sw

import (
	"logan/internal/seq"
	"logan/internal/simd"
	"logan/internal/xdrop"
)

// LocalSIMD computes the Smith-Waterman score with the anti-diagonal
// vectorization of Wozniak (1997): cells on one anti-diagonal have no
// mutual dependencies, so eight of them are updated per 128-bit vector
// operation. The target is pre-reversed so both sequence streams are read
// forward — the same memory-linearization trick LOGAN uses on the GPU
// (paper Fig. 6). Scores are int16; inputs longer than ~16k bases with the
// default scoring would overflow and are rejected by returning the scalar
// result instead.
//
// If counter is non-nil, emulated vector-instruction counts are
// accumulated into it.
func LocalSIMD(q, t seq.Seq, sc xdrop.Scoring, counter *simd.OpCounter) Result {
	m, n := len(q), len(t)
	if m == 0 || n == 0 {
		return Result{}
	}
	if int64(min(m, n))*int64(sc.Match) > 30000 {
		return Local(q, t, sc)
	}

	// Sequences as int16 lanes; the target reversed for forward streaming.
	qv := make([]int16, m+2)
	for i := 0; i < m; i++ {
		qv[i] = int16(q[i])
	}
	tv := make([]int16, n+2)
	for j := 0; j < n; j++ {
		tv[j] = int16(t[n-1-j])
	}

	// Anti-diagonal buffers indexed by absolute i, boundaries hold zeros.
	a3 := make([]int16, m+2)
	a2 := make([]int16, m+2)
	a1 := make([]int16, m+2)

	match := simd.Splat(int16(sc.Match))
	mismatch := simd.Splat(int16(sc.Mismatch))
	gap := simd.Splat(int16(sc.Gap))
	zero := simd.Splat(0)

	var best int16
	bi, bj := 0, 0
	var cells int64
	var ops simd.OpCounter

	for d := 2; d <= m+n; d++ {
		ilo := max(1, d-n)
		ihi := min(d-1, m)
		if ilo > ihi {
			continue
		}
		for i := ilo; i <= ihi; i += simd.Lanes {
			lanes := min(simd.Lanes, ihi-i+1)
			// Vector loads: diag source, up/left gap sources, sequences.
			diag := simd.Load(a3[i-1:], 0)
			up := simd.Load(a2[i-1:], 0)
			left := simd.Load(a2[i:], 0)
			qc := simd.Load(qv[i-1:], -1)
			// t index: j-1 = d-i-1 reversed -> n-d+i, ascending in i.
			tc := simd.Load(tv[n-d+i:], -2)
			eq := simd.CmpEQ(qc, tc)
			sub := simd.Blend(eq, match, mismatch)
			s := simd.Add(diag, sub)
			g := simd.Add(simd.Max(up, left), gap)
			s = simd.Max(s, g)
			s = simd.Max(s, zero)
			simd.Store(a1[i:i+lanes], s)
			ops.VecOps += 9
			ops.LoadBytes += 5 * 16
			ops.StoreBytes += 16
			// Scalar max scan over the active lanes (the paper's kernel
			// uses a warp reduction here; 8 lanes hardly warrant one).
			for l := 0; l < lanes; l++ {
				if v := s[l]; v > best {
					best = v
					bi, bj = i+l, d-(i+l)
				}
			}
			cells += int64(lanes)
		}
		// Boundary zeros: cells (d,0) and (0,d) of this anti-diagonal.
		if d <= m {
			a1[d] = 0
		}
		a1[0] = 0
		a3, a2, a1 = a2, a1, a3
	}
	if counter != nil {
		counter.Add(ops)
	}
	return Result{Score: int32(best), QueryEnd: bi, TargetEnd: bj, Cells: cells}
}
