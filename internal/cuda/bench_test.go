package cuda

import "testing"

// BenchmarkLaunch measures the simulator's host-side launch cost: the
// fixed overhead every simulated kernel pays (worker pool dispatch and
// stats merging), which bounds how fine-grained experiment sweeps can be.
func BenchmarkLaunch(b *testing.B) {
	d := MustV100()
	kernel := func(ctx *BlockCtx) { ctx.Step(32, 8) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Launch(LaunchConfig{Name: "noop", Grid: 256, Block: 32}, kernel); err != nil {
			b.Fatal(err)
		}
	}
	d.ResetStats()
}

// BenchmarkBlockAccounting measures the per-step accounting cost inside a
// kernel — the simulator tax on every anti-diagonal.
func BenchmarkBlockAccounting(b *testing.B) {
	d := MustV100()
	d.Workers = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := d.Launch(LaunchConfig{Grid: 1, Block: 128}, func(ctx *BlockCtx) {
			for k := 0; k < 1000; k++ {
				ctx.Step(100, 22)
				ctx.GlobalRead(TrafficReuse, 800, true)
				ctx.GlobalWrite(TrafficReuse, 400, true)
				ctx.Sync()
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	d.ResetStats()
}

// BenchmarkReduceMax measures the warp-reduction helper over a band-sized
// slice.
func BenchmarkReduceMax(b *testing.B) {
	d := MustV100()
	d.Workers = 1
	vals := make([]int32, 1024)
	for i := range vals {
		vals[i] = int32(i * 2654435761)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := d.Launch(LaunchConfig{Grid: 1, Block: 1024}, func(ctx *BlockCtx) {
			ctx.ReduceMax32(vals)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	d.ResetStats()
}
