package cuda

import (
	"fmt"
	"math"
	"sync"
)

// LaunchConfig is the kernel launch geometry, the analogue of CUDA's
// <<<grid, block, shared>>> triple.
type LaunchConfig struct {
	Name     string
	Grid     int  // number of blocks
	Block    int  // threads per block
	Shared   int  // shared-memory bytes reserved per block
	PerBlock bool // collect per-block stats (costs Grid * 32 bytes)
}

// KernelFunc is the body of a simulated kernel, invoked once per block.
// Bodies must be pure with respect to block ordering: blocks may run
// concurrently on the host pool and must not communicate (CUDA offers no
// inter-block synchronization within a launch either).
type KernelFunc func(b *BlockCtx)

// BlockCtx is the per-block execution context handed to kernel bodies. It
// carries the block's coordinates and the work-accounting interface.
type BlockCtx struct {
	BlockIdx int // block index within the grid
	GridDim  int // total blocks
	BlockDim int // threads per block

	spec  *DeviceSpec
	stats BlockStats
	iter  IterAgg
	// traffic accumulators (bytes)
	streamRead, streamWrite int64
	reuseRead, reuseWrite   int64
	reuseFootprint          int64
	sharedUsed              int
	sharedLimit             int
}

// Threads returns the number of threads in this block.
func (b *BlockCtx) Threads() int { return b.BlockDim }

// Warps returns the number of (possibly partially filled) warps.
func (b *BlockCtx) Warps() int {
	return (b.BlockDim + b.spec.WarpSize - 1) / b.spec.WarpSize
}

// Step records one synchronized SIMT step of the block in which `active`
// lanes each execute `opsPerLane` INT32 operations — for LOGAN, one
// anti-diagonal segment sweep. Inactive lanes within a warp still consume
// issue slots, which is exactly the warp-fill penalty the accounting keeps.
func (b *BlockCtx) Step(active, opsPerLane int) {
	if active <= 0 || opsPerLane <= 0 {
		return
	}
	ws := b.spec.WarpSize
	warps := (active + ws - 1) / ws
	b.stats.WarpInstrs += int64(warps) * int64(opsPerLane)
	b.stats.LaneOps += int64(active) * int64(opsPerLane)
	b.stats.Iterations++
	fill := float64(active) / float64(warps*ws)
	nop := float64(opsPerLane)
	b.iter.SumNop += nop
	b.iter.SumNopFill += nop * fill
	b.iter.SumNopAct += nop * float64(active)
	b.iter.Count++
}

// Sync models __syncthreads(); the barrier itself is free in counts (its
// cost appears in the time model as per-barrier overhead amortized over
// resident blocks) but is tallied so the model knows the block's
// dependent-step count.
func (b *BlockCtx) Sync() {
	b.stats.Iterations++
	b.stats.Barriers++
}

// ReduceMax32 performs the in-warp parallel max-reduction LOGAN uses to
// find the best score on an anti-diagonal (paper Alg. 2 discussion): values
// are reduced warp-by-warp with shuffle instructions, then across warps via
// shared memory. It returns the true maximum of v (or math.MinInt32 for an
// empty slice) and accounts ceil(n/32)*log2(32) + log2(warps) warp
// instructions.
func (b *BlockCtx) ReduceMax32(v []int32) int32 {
	if len(v) == 0 {
		return math.MinInt32
	}
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	ws := b.spec.WarpSize
	warps := (len(v) + ws - 1) / ws
	logW := bitsLen(ws - 1)
	instr := int64(warps)*int64(logW) + int64(bitsLen(warps-1))
	b.stats.WarpInstrs += instr
	b.stats.LaneOps += instr * int64(ws) / 2 // shuffle halves active lanes per step
	b.stats.Reductions++
	return m
}

// GlobalRead accounts a global-memory read of the given byte count as one
// dependent access event (issued SIMT-wide, so latency is exposed once per
// call, not per lane). Coalesced reads move exactly `bytes`; uncoalesced
// reads are amplified by UncoalescedFactor, modeling per-lane 32-byte
// sectors.
func (b *BlockCtx) GlobalRead(class TrafficClass, bytes int64, coalesced bool) {
	if !coalesced {
		bytes *= UncoalescedFactor
	}
	if class == TrafficStream {
		b.streamRead += bytes
	} else {
		b.reuseRead += bytes
	}
	b.stats.AccessEvents++
}

// GlobalWrite accounts a global-memory write as one access event.
func (b *BlockCtx) GlobalWrite(class TrafficClass, bytes int64, coalesced bool) {
	if !coalesced {
		bytes *= UncoalescedFactor
	}
	if class == TrafficStream {
		b.streamWrite += bytes
	} else {
		b.reuseWrite += bytes
	}
	b.stats.AccessEvents++
}

// DeclareReuseFootprint tells the cache model how many bytes of this
// block's reuse-class traffic are live at once (LOGAN: three anti-diagonal
// buffers). The maximum over blocks, multiplied by device residency, is the
// working set the L2 must hold for reuse traffic to hit.
func (b *BlockCtx) DeclareReuseFootprint(bytes int64) {
	if bytes > b.reuseFootprint {
		b.reuseFootprint = bytes
	}
}

// SharedAlloc reserves n bytes of the block's shared memory and returns nil
// (the simulator does not hand out real storage — kernels use ordinary Go
// locals — but the reservation participates in the occupancy calculation
// and is validated against the per-block limit).
func (b *BlockCtx) SharedAlloc(n int) error {
	if b.sharedUsed+n > b.sharedLimit {
		return fmt.Errorf("cuda: shared memory overflow: %d + %d > %d bytes",
			b.sharedUsed, n, b.sharedLimit)
	}
	b.sharedUsed += n
	return nil
}

func bitsLen(x int) int {
	n := 0
	for x > 0 {
		n++
		x >>= 1
	}
	return n
}

// Launch executes the kernel over the grid on the host worker pool and
// returns its work accounting. The launch is synchronous; use Stream for
// asynchronous composition. Counts are deterministic regardless of pool
// width because per-block statistics are merged with commutative sums.
func (d *Device) Launch(cfg LaunchConfig, kernel KernelFunc) (KernelStats, error) {
	if cfg.Grid <= 0 {
		return KernelStats{}, fmt.Errorf("cuda: launch %q: grid must be positive, got %d", cfg.Name, cfg.Grid)
	}
	if cfg.Block <= 0 || cfg.Block > d.Spec.MaxThreadsPerBlock {
		return KernelStats{}, fmt.Errorf("cuda: launch %q: block size %d outside (0,%d]",
			cfg.Name, cfg.Block, d.Spec.MaxThreadsPerBlock)
	}
	if cfg.Shared > d.Spec.SharedPerBlock {
		return KernelStats{}, fmt.Errorf("cuda: launch %q: shared %d exceeds per-block limit %d",
			cfg.Name, cfg.Shared, d.Spec.SharedPerBlock)
	}

	stats := KernelStats{
		Name:      cfg.Name,
		Grid:      cfg.Grid,
		Block:     cfg.Block,
		Shared:    cfg.Shared,
		Occupancy: d.Spec.OccupancyFor(cfg.Block, cfg.Shared),
	}
	if cfg.PerBlock {
		stats.PerBlock = make([]BlockStats, cfg.Grid)
	}

	workers := d.workerCount()
	if workers > cfg.Grid {
		workers = cfg.Grid
	}
	// Each worker accumulates locally; merge afterwards (sums commute).
	locals := make([]KernelStats, workers)
	var wg sync.WaitGroup
	next := make(chan int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := &locals[w]
			for blk := range next {
				ctx := BlockCtx{
					BlockIdx:    blk,
					GridDim:     cfg.Grid,
					BlockDim:    cfg.Block,
					spec:        &d.Spec,
					sharedLimit: d.Spec.SharedPerBlock,
				}
				if cfg.Shared > 0 {
					ctx.sharedUsed = cfg.Shared
				}
				kernel(&ctx)
				local.WarpInstrs += ctx.stats.WarpInstrs
				local.LaneOps += ctx.stats.LaneOps
				local.Iterations += ctx.stats.Iterations
				local.Barriers += ctx.stats.Barriers
				local.Reductions += ctx.stats.Reductions
				local.AccessEvents += ctx.stats.AccessEvents
				if ctx.stats.WarpInstrs > local.MaxBlockWarpInstrs {
					local.MaxBlockWarpInstrs = ctx.stats.WarpInstrs
				}
				if ctx.stats.Iterations > local.MaxBlockIters {
					local.MaxBlockIters = ctx.stats.Iterations
				}
				if ctx.stats.AccessEvents > local.MaxBlockAccesses {
					local.MaxBlockAccesses = ctx.stats.AccessEvents
				}
				local.StreamReadBytes += ctx.streamRead
				local.StreamWriteBytes += ctx.streamWrite
				local.ReuseReadBytes += ctx.reuseRead
				local.ReuseWriteBytes += ctx.reuseWrite
				if ctx.reuseFootprint > local.ReuseFootprint {
					local.ReuseFootprint = ctx.reuseFootprint
				}
				local.Iter.add(ctx.iter)
				if stats.PerBlock != nil {
					stats.PerBlock[blk] = ctx.stats
				}
			}
		}(w)
	}
	for blk := 0; blk < cfg.Grid; blk++ {
		next <- blk
	}
	close(next)
	wg.Wait()

	for i := range locals {
		l := &locals[i]
		stats.WarpInstrs += l.WarpInstrs
		stats.LaneOps += l.LaneOps
		stats.Iterations += l.Iterations
		stats.Barriers += l.Barriers
		stats.Reductions += l.Reductions
		stats.AccessEvents += l.AccessEvents
		if l.MaxBlockWarpInstrs > stats.MaxBlockWarpInstrs {
			stats.MaxBlockWarpInstrs = l.MaxBlockWarpInstrs
		}
		if l.MaxBlockIters > stats.MaxBlockIters {
			stats.MaxBlockIters = l.MaxBlockIters
		}
		if l.MaxBlockAccesses > stats.MaxBlockAccesses {
			stats.MaxBlockAccesses = l.MaxBlockAccesses
		}
		stats.StreamReadBytes += l.StreamReadBytes
		stats.StreamWriteBytes += l.StreamWriteBytes
		stats.ReuseReadBytes += l.ReuseReadBytes
		stats.ReuseWriteBytes += l.ReuseWriteBytes
		if l.ReuseFootprint > stats.ReuseFootprint {
			stats.ReuseFootprint = l.ReuseFootprint
		}
		stats.Iter.add(l.Iter)
	}

	d.applyCacheModel(&stats)
	d.recordLaunch(stats)
	return stats, nil
}

// L2StreamingFactor discounts the modeled DRAM traffic of L2 misses on
// reuse-class data: the rolling anti-diagonal buffers are streamed
// sequentially with a one-iteration reuse distance, so even when the
// resident working set exceeds L2 capacity roughly half of the would-be
// miss traffic is covered by line-granularity locality and prefetch.
// Calibrated against the paper's sustained X=5000 throughput (Table III:
// 181 GCUPS, which a pure residency model would cap near 150).
const L2StreamingFactor = 0.5

// applyCacheModel converts raw traffic into DRAM traffic. Streaming traffic
// always reaches DRAM. Reuse traffic hits in L2 with probability equal to
// the fraction of the device-resident working set that fits:
//
//	workingSet = residentBlocks x perBlockReuseFootprint
//	hit        = min(1, L2 / workingSet)
//
// with misses discounted by L2StreamingFactor. This captures the effect
// LOGAN's thread-count heuristic produces on real silicon: fewer resident
// blocks at large X keep the rolling anti-diagonal buffers cache-resident
// even as the band grows.
func (d *Device) applyCacheModel(s *KernelStats) { ApplyCacheModel(d.Spec, s) }

// ApplyCacheModel recomputes the DRAM traffic of a launch accounting from
// its raw traffic classes. Exposed so that the experiment harness can
// re-evaluate cache behaviour after scaling a sample launch to the full
// workload's grid size (L2 residency depends on the resident block count,
// which scaling changes).
func ApplyCacheModel(spec DeviceSpec, s *KernelStats) {
	s.DRAMReadBytes = s.StreamReadBytes
	s.DRAMWriteBytes = s.StreamWriteBytes
	reuse := s.ReuseReadBytes + s.ReuseWriteBytes
	if reuse == 0 {
		s.L2HitFraction = 0
		return
	}
	resident := s.Occupancy.BlocksPerSM * spec.SMs
	if resident > s.Grid {
		resident = s.Grid
	}
	if resident < 1 {
		resident = 1
	}
	workingSet := int64(resident) * s.ReuseFootprint
	hit := 1.0
	if workingSet > spec.L2Bytes {
		hit = float64(spec.L2Bytes) / float64(workingSet)
	}
	s.L2HitFraction = hit
	missRead := float64(s.ReuseReadBytes) * (1 - hit) * L2StreamingFactor
	missWrite := float64(s.ReuseWriteBytes) * (1 - hit) * L2StreamingFactor
	s.DRAMReadBytes += int64(missRead)
	s.DRAMWriteBytes += int64(missWrite)
}
