package cuda

import (
	"sync"
	"time"
)

// Stream is an ordered queue of device operations with a modeled timeline,
// the analogue of a CUDA stream. Operations execute immediately (the
// simulator is functional), but their modeled durations are composed with
// discrete-event semantics: a stream's operations serialize among
// themselves; across streams, kernels contend for the compute engine and
// copies for the copy engine, so concurrent streams overlap transfers with
// compute exactly the way LOGAN's two extension streams do (paper §IV-B).
type Stream struct {
	dev *Device
	now time.Duration
}

// engine timelines shared by all streams of a device.
type engines struct {
	mu      sync.Mutex
	compute time.Duration
	copy    time.Duration
}

var deviceEngines sync.Map // *Device -> *engines

func (d *Device) engines() *engines {
	e, _ := deviceEngines.LoadOrStore(d, &engines{})
	return e.(*engines)
}

// NewStream creates a stream whose timeline starts at the device's origin.
func (d *Device) NewStream() *Stream { return &Stream{dev: d} }

// ResetTimeline zeroes the device's engine timelines so that a new batch's
// modeled time starts from zero. Streams created before the reset must not
// be reused afterwards.
func (d *Device) ResetTimeline() {
	e := d.engines()
	e.mu.Lock()
	e.compute, e.copy = 0, 0
	e.mu.Unlock()
}

// Elapsed returns the stream's modeled completion time for all enqueued
// work.
func (s *Stream) Elapsed() time.Duration { return s.now }

// Event marks a point in a stream's modeled timeline.
type Event struct{ At time.Duration }

// Record returns an event capturing the stream's current modeled time.
func (s *Stream) Record() Event { return Event{At: s.now} }

// LaunchAsync executes the kernel (synchronously in host terms) and
// advances the stream's modeled clock by the kernel's modeled duration,
// serialized on the device's compute engine.
func (s *Stream) LaunchAsync(cfg LaunchConfig, kernel KernelFunc) (KernelStats, error) {
	stats, err := s.dev.Launch(cfg, kernel)
	if err != nil {
		return stats, err
	}
	var dur time.Duration
	if s.dev.Timer != nil {
		dur = s.dev.Timer.KernelTime(s.dev.Spec, stats)
	}
	e := s.dev.engines()
	e.mu.Lock()
	start := s.now
	if e.compute > start {
		start = e.compute
	}
	end := start + dur
	e.compute = end
	e.mu.Unlock()
	s.now = end
	return stats, nil
}

// MemcpyHtoD copies src into the device buffer and advances the stream's
// clock by the modeled transfer time on the copy engine.
func MemcpyHtoD[T any](s *Stream, dst *Buffer[T], src []T) {
	copy(dst.data, src)
	s.accountCopy(int64(len(src)) * int64(sizeofAny(*new(T))))
}

// MemcpyDtoH copies the device buffer into dst with the same timing rules.
func MemcpyDtoH[T any](s *Stream, dst []T, src *Buffer[T]) {
	copy(dst, src.data)
	s.accountCopy(int64(min(len(dst), len(src.data))) * int64(sizeofAny(*new(T))))
}

func (s *Stream) accountCopy(bytes int64) {
	var dur time.Duration
	if s.dev.Timer != nil {
		dur = s.dev.Timer.CopyTime(s.dev.Spec, bytes)
	}
	e := s.dev.engines()
	e.mu.Lock()
	start := s.now
	if e.copy > start {
		start = e.copy
	}
	end := start + dur
	e.copy = end
	e.mu.Unlock()
	s.now = end
}

// SyncAll returns the modeled time at which every given stream has drained,
// i.e. the device-level completion time of the composed operation.
func SyncAll(streams ...*Stream) time.Duration {
	var t time.Duration
	for _, s := range streams {
		if s.now > t {
			t = s.now
		}
	}
	return t
}
