package cuda

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func TestSpecV100Figures(t *testing.T) {
	s := TeslaV100()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := s.TheoreticalWarpGIPS(); math.Abs(got-489.6) > 0.1 {
		t.Errorf("theoretical GIPS = %.1f, want 489.6 (paper §VII)", got)
	}
	if got := s.INT32WarpGIPS(); math.Abs(got-220.8) > 0.1 {
		t.Errorf("INT32 GIPS = %.1f, want 220.8 (paper §VII)", got)
	}
	if got := s.INT32Lanes(); got != 5120 {
		t.Errorf("INT32 lanes = %d, want 5120", got)
	}
}

func TestSpecValidation(t *testing.T) {
	bad := TeslaV100()
	bad.SMs = 0
	if err := bad.Validate(); err == nil {
		t.Error("accepted zero SMs")
	}
	bad = TeslaV100()
	bad.HBMBandwidth = 0
	if err := bad.Validate(); err == nil {
		t.Error("accepted zero bandwidth")
	}
	if _, err := NewDevice(bad); err == nil {
		t.Error("NewDevice accepted invalid spec")
	}
}

func TestOccupancyLimits(t *testing.T) {
	s := TeslaV100()
	// 64KB shared per block: only one block fits per SM (96KB capacity),
	// the situation the paper says forces anti-diagonals into HBM.
	occ := s.OccupancyFor(128, 64<<10)
	if occ.BlocksPerSM != 1 || occ.LimitedBy != "shared" {
		t.Errorf("64KB shared: %+v, want 1 block limited by shared", occ)
	}
	// No shared memory, small blocks: the 32-block cap binds.
	occ = s.OccupancyFor(32, 0)
	if occ.BlocksPerSM != 32 || occ.LimitedBy != "blocks" {
		t.Errorf("small blocks: %+v, want 32 blocks", occ)
	}
	// 1024-thread blocks: thread capacity binds at 2 blocks.
	occ = s.OccupancyFor(1024, 0)
	if occ.BlocksPerSM != 2 || occ.LimitedBy != "threads" {
		t.Errorf("1024 threads: %+v, want 2 blocks limited by threads", occ)
	}
	if occ.ActiveThreads != 2048 {
		t.Errorf("active threads = %d, want 2048", occ.ActiveThreads)
	}
}

func TestAllocAccounting(t *testing.T) {
	d := MustV100()
	b1, err := Alloc[int32](d, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if d.Allocated() != 4000 {
		t.Fatalf("allocated = %d, want 4000", d.Allocated())
	}
	b2, err := Alloc[int64](d, 10)
	if err != nil {
		t.Fatal(err)
	}
	if d.Allocated() != 4080 {
		t.Fatalf("allocated = %d, want 4080", d.Allocated())
	}
	b1.Free()
	b1.Free() // double free must be a no-op
	if d.Allocated() != 80 {
		t.Fatalf("after free allocated = %d, want 80", d.Allocated())
	}
	if d.PeakAllocated() != 4080 {
		t.Fatalf("peak = %d, want 4080", d.PeakAllocated())
	}
	b2.Free()
}

func TestAllocOOM(t *testing.T) {
	d := MustV100()
	d.Spec.HBMBytes = 1 << 10
	if _, err := Alloc[int32](d, 1024); err == nil {
		t.Fatal("allocation beyond capacity succeeded")
	} else if _, ok := err.(ErrOutOfMemory); !ok {
		t.Fatalf("error type %T, want ErrOutOfMemory", err)
	}
}

func TestLaunchValidation(t *testing.T) {
	d := MustV100()
	noop := func(b *BlockCtx) {}
	if _, err := d.Launch(LaunchConfig{Grid: 0, Block: 32}, noop); err == nil {
		t.Error("accepted zero grid")
	}
	if _, err := d.Launch(LaunchConfig{Grid: 1, Block: 2048}, noop); err == nil {
		t.Error("accepted oversized block")
	}
	if _, err := d.Launch(LaunchConfig{Grid: 1, Block: 32, Shared: 1 << 20}, noop); err == nil {
		t.Error("accepted oversized shared memory")
	}
}

func TestLaunchCountsDeterministic(t *testing.T) {
	kernel := func(b *BlockCtx) {
		// Simulate a little anti-diagonal loop: width grows 1..50.
		for w := 1; w <= 50; w++ {
			b.Step(w, 10)
			b.GlobalRead(TrafficReuse, int64(8*w), true)
			b.GlobalWrite(TrafficReuse, int64(4*w), true)
		}
		b.GlobalRead(TrafficStream, 1000, true)
		b.DeclareReuseFootprint(600)
	}
	run := func(workers int) KernelStats {
		d := MustV100()
		d.Workers = workers
		s, err := d.Launch(LaunchConfig{Name: "k", Grid: 37, Block: 64}, kernel)
		if err != nil {
			t.Fatal(err)
		}
		s.PerBlock = nil
		return s
	}
	a, b := run(1), run(8)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("stats differ across pool widths:\n1: %+v\n8: %+v", a, b)
	}
	// Hand-checked warp instruction count for one block:
	// sum over w of ceil(w/32)*10 = 10*(32*1 + 18*2) = 680.
	if a.WarpInstrs != 37*680 {
		t.Errorf("warp instrs = %d, want %d", a.WarpInstrs, 37*680)
	}
	// Lane ops: 10 * sum(1..50) = 12750 per block.
	if a.LaneOps != 37*12750 {
		t.Errorf("lane ops = %d, want %d", a.LaneOps, 37*12750)
	}
	if a.Iterations != 37*50 {
		t.Errorf("iterations = %d, want %d", a.Iterations, 37*50)
	}
}

func TestStepWarpFill(t *testing.T) {
	d := MustV100()
	stats, err := d.Launch(LaunchConfig{Grid: 1, Block: 64}, func(b *BlockCtx) {
		b.Step(16, 4) // half a warp active: fill 0.5
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := stats.Iter.MeanWarpFill(); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("warp fill = %v, want 0.5", got)
	}
	if stats.WarpInstrs != 4 {
		t.Errorf("warp instrs = %d, want 4", stats.WarpInstrs)
	}
	if got := stats.Iter.MeanActiveLanes(); math.Abs(got-16) > 1e-9 {
		t.Errorf("mean active lanes = %v, want 16", got)
	}
}

func TestReduceMax32(t *testing.T) {
	d := MustV100()
	var got int32
	stats, err := d.Launch(LaunchConfig{Grid: 1, Block: 128}, func(b *BlockCtx) {
		got = b.ReduceMax32([]int32{3, -7, 42, 0, 41})
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("ReduceMax32 = %d, want 42", got)
	}
	if stats.Reductions != 1 {
		t.Fatalf("reductions = %d, want 1", stats.Reductions)
	}
	if stats.WarpInstrs == 0 {
		t.Fatal("reduction accounted no instructions")
	}
	d2 := MustV100()
	d2.Launch(LaunchConfig{Grid: 1, Block: 32}, func(b *BlockCtx) { //nolint:errcheck
		if r := b.ReduceMax32(nil); r != math.MinInt32 {
			t.Errorf("empty reduction = %d, want MinInt32", r)
		}
	})
}

func TestReduceMaxProperty(t *testing.T) {
	d := MustV100()
	f := func(vals []int32) bool {
		if len(vals) == 0 {
			return true
		}
		var got int32
		_, err := d.Launch(LaunchConfig{Grid: 1, Block: 32}, func(b *BlockCtx) {
			got = b.ReduceMax32(vals)
		})
		if err != nil {
			return false
		}
		m := vals[0]
		for _, v := range vals {
			if v > m {
				m = v
			}
		}
		return got == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUncoalescedPenalty(t *testing.T) {
	d := MustV100()
	stats, err := d.Launch(LaunchConfig{Grid: 1, Block: 32}, func(b *BlockCtx) {
		b.GlobalRead(TrafficStream, 100, false)
		b.GlobalWrite(TrafficStream, 10, true)
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.StreamReadBytes != 100*UncoalescedFactor {
		t.Errorf("uncoalesced read bytes = %d, want %d", stats.StreamReadBytes, 100*UncoalescedFactor)
	}
	if stats.StreamWriteBytes != 10 {
		t.Errorf("coalesced write bytes = %d, want 10", stats.StreamWriteBytes)
	}
}

func TestCacheModelResidency(t *testing.T) {
	// Small footprint: everything hits L2, DRAM sees only streaming bytes.
	d := MustV100()
	small, err := d.Launch(LaunchConfig{Grid: 80, Block: 64}, func(b *BlockCtx) {
		b.GlobalRead(TrafficReuse, 1<<20, true)
		b.GlobalRead(TrafficStream, 1<<10, true)
		b.DeclareReuseFootprint(256) // 80 blocks * 256B = 20KB << 6MB L2
	})
	if err != nil {
		t.Fatal(err)
	}
	if small.L2HitFraction != 1 {
		t.Errorf("small working set hit fraction = %v, want 1", small.L2HitFraction)
	}
	if small.DRAMReadBytes != 80<<10 {
		t.Errorf("DRAM reads = %d, want streaming only %d", small.DRAMReadBytes, 80<<10)
	}

	// Huge footprint: hit fraction collapses toward L2/workingSet.
	big, err := d.Launch(LaunchConfig{Grid: 2560, Block: 64}, func(b *BlockCtx) {
		b.GlobalRead(TrafficReuse, 1<<20, true)
		b.DeclareReuseFootprint(1 << 20) // 2560 resident x 1MB >> 6MB
	})
	if err != nil {
		t.Fatal(err)
	}
	if big.L2HitFraction > 0.01 {
		t.Errorf("big working set hit fraction = %v, want <= 0.01", big.L2HitFraction)
	}
	// Misses are discounted by the streaming factor.
	raw := float64(int64(1<<20) * 2560)
	wantMin := int64(raw * 0.98 * L2StreamingFactor)
	if big.DRAMReadBytes <= wantMin {
		t.Errorf("big working set DRAM reads = %d, want > %d", big.DRAMReadBytes, wantMin)
	}
}

func TestSharedAllocLimit(t *testing.T) {
	d := MustV100()
	_, err := d.Launch(LaunchConfig{Grid: 1, Block: 32, Shared: 60 << 10}, func(b *BlockCtx) {
		if err := b.SharedAlloc(8 << 10); err == nil {
			t.Error("shared overflow not detected")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

type fixedTimer struct{ kernel, copyT time.Duration }

func (f fixedTimer) KernelTime(DeviceSpec, KernelStats) time.Duration { return f.kernel }
func (f fixedTimer) CopyTime(DeviceSpec, int64) time.Duration         { return f.copyT }

func TestStreamTimeline(t *testing.T) {
	d := MustV100()
	d.Timer = fixedTimer{kernel: 10 * time.Millisecond, copyT: 2 * time.Millisecond}
	s1 := d.NewStream()
	s2 := d.NewStream()
	buf, err := Alloc[int32](d, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer buf.Free()

	MemcpyHtoD(s1, buf, []int32{1, 2, 3, 4, 5, 6, 7, 8})
	if buf.Data()[3] != 4 {
		t.Fatal("MemcpyHtoD did not copy data")
	}
	noop := func(b *BlockCtx) { b.Step(32, 1) }
	if _, err := s1.LaunchAsync(LaunchConfig{Grid: 1, Block: 32}, noop); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.LaunchAsync(LaunchConfig{Grid: 1, Block: 32}, noop); err != nil {
		t.Fatal(err)
	}
	// s1: copy (2ms) then kernel (10ms) => 12ms.
	if got := s1.Elapsed(); got != 12*time.Millisecond {
		t.Errorf("s1 elapsed = %v, want 12ms", got)
	}
	// s2's kernel serializes behind s1's on the compute engine: 12+10.
	if got := s2.Elapsed(); got != 22*time.Millisecond {
		t.Errorf("s2 elapsed = %v, want 22ms (compute engine serialization)", got)
	}
	if got := SyncAll(s1, s2); got != 22*time.Millisecond {
		t.Errorf("SyncAll = %v, want 22ms", got)
	}
	out := make([]int32, 8)
	MemcpyDtoH(s2, out, buf)
	if out[7] != 8 {
		t.Fatal("MemcpyDtoH did not copy data")
	}
	ev := s2.Record()
	if ev.At != 24*time.Millisecond {
		t.Errorf("event at %v, want 24ms", ev.At)
	}
}

func TestDeviceLaunchHistory(t *testing.T) {
	d := MustV100()
	noop := func(b *BlockCtx) { b.Step(1, 1) }
	for i := 0; i < 3; i++ {
		if _, err := d.Launch(LaunchConfig{Name: "n", Grid: 2, Block: 32}, noop); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(d.Launches()); got != 3 {
		t.Fatalf("launch history = %d, want 3", got)
	}
	total := d.TotalStats()
	if total.Grid != 6 || total.Iterations != 6 {
		t.Fatalf("total stats = %+v", total)
	}
	d.ResetStats()
	if got := len(d.Launches()); got != 0 {
		t.Fatalf("after reset history = %d, want 0", got)
	}
}

func TestOperationalIntensity(t *testing.T) {
	k := KernelStats{WarpInstrs: 1000, DRAMReadBytes: 1500, DRAMWriteBytes: 500}
	if got := k.OperationalIntensity(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("OI = %v, want 0.5", got)
	}
	var empty KernelStats
	if empty.OperationalIntensity() != 0 {
		t.Error("OI of empty stats should be 0")
	}
}
