package cuda

// TrafficClass distinguishes global-memory accesses by their reuse pattern,
// which decides whether the analytic L2 model may convert them into cache
// hits.
type TrafficClass int

const (
	// TrafficStream marks compulsory streaming traffic (first touch of
	// sequence data, result write-back). It always reaches DRAM.
	TrafficStream TrafficClass = iota
	// TrafficReuse marks iterative re-reads of small per-block working sets
	// (LOGAN's three rolling anti-diagonals). The fraction that fits in L2
	// never reaches DRAM.
	TrafficReuse
)

// UncoalescedFactor is the traffic amplification applied to uncoalesced
// global accesses: a warp touching 32 scattered 4-byte words pulls a 32-byte
// sector per lane instead of four 32-byte sectors, an 8x penalty. LOGAN's
// query-reversal optimization (paper Fig. 6) exists precisely to avoid this.
const UncoalescedFactor = 8

// BlockStats is the per-block work summary the simulator collects while a
// kernel block executes.
type BlockStats struct {
	WarpInstrs   int64 // INT32 warp instructions issued (32-lane granularity)
	LaneOps      int64 // useful lane operations (active lanes only)
	Iterations   int64 // synchronized steps (segments + barriers)
	Barriers     int64 // __syncthreads barriers (one per anti-diagonal)
	Reductions   int64 // parallel max-reductions performed
	AccessEvents int64 // dependent global-memory access events (latency exposure)
}

// IterAgg aggregates per-iteration utilization terms for the paper's
// adapted-ceiling formula (Eq. 1). For iteration i with ops-per-lane Nop_i
// and active lane count a_i it accumulates Nop_i and Nop_i * fill_i where
// fill_i = a_i / (ceil(a_i/32)*32) is the warp fill fraction. The Roofline
// package combines these with grid shape and core counts.
type IterAgg struct {
	SumNop     float64 // sum of ops-per-lane over iterations
	SumNopFill float64 // same, weighted by warp fill
	SumNopAct  float64 // sum of Nop_i * active lanes (for Eq. 1's B*Nop term)
	Count      int64   // iterations observed
}

func (a *IterAgg) add(other IterAgg) {
	a.SumNop += other.SumNop
	a.SumNopFill += other.SumNopFill
	a.SumNopAct += other.SumNopAct
	a.Count += other.Count
}

// MeanWarpFill returns the op-weighted average warp fill fraction in [0,1].
func (a IterAgg) MeanWarpFill() float64 {
	if a.SumNop == 0 {
		return 1
	}
	return a.SumNopFill / a.SumNop
}

// MeanActiveLanes returns the op-weighted average number of active lanes
// per iteration across the grid.
func (a IterAgg) MeanActiveLanes() float64 {
	if a.SumNop == 0 {
		return 0
	}
	return a.SumNopAct / a.SumNop
}

// KernelStats is the complete accounting of one kernel launch.
type KernelStats struct {
	Name   string
	Grid   int // blocks launched
	Block  int // threads per block
	Shared int // shared bytes reserved per block

	WarpInstrs         int64 // total INT32 warp instructions
	LaneOps            int64 // total useful lane ops
	Iterations         int64 // total synchronized steps across blocks
	Barriers           int64 // total __syncthreads barriers
	Reductions         int64 // total parallel reductions
	AccessEvents       int64 // total dependent global access events
	MaxBlockWarpInstrs int64 // critical-path proxy: heaviest block
	MaxBlockIters      int64 // critical-path proxy: most iterations in a block
	MaxBlockAccesses   int64 // critical-path proxy: most access events in a block

	// Global memory traffic in bytes, before cache modeling.
	StreamReadBytes  int64
	StreamWriteBytes int64
	ReuseReadBytes   int64
	ReuseWriteBytes  int64
	// ReuseFootprint is the per-block resident working set (bytes) behind
	// the reuse-class traffic, declared by the kernel.
	ReuseFootprint int64

	// DRAM traffic after the L2 model (filled by FinishLaunch).
	DRAMReadBytes  int64
	DRAMWriteBytes int64
	L2HitFraction  float64

	Iter IterAgg // adapted-ceiling aggregates

	Occupancy Occupancy // residency of this launch's block shape

	PerBlock []BlockStats // optional per-block summaries (see LaunchConfig)
}

// DRAMBytes returns total modeled DRAM traffic.
func (k KernelStats) DRAMBytes() int64 { return k.DRAMReadBytes + k.DRAMWriteBytes }

// OperationalIntensity returns warp instructions per byte of DRAM traffic,
// the x-axis of the paper's instruction Roofline (Fig. 13).
func (k KernelStats) OperationalIntensity() float64 {
	b := k.DRAMBytes()
	if b == 0 {
		return 0
	}
	return float64(k.WarpInstrs) / float64(b)
}

// Accumulate folds another launch's stats into k (used when one logical
// operation issues several launches, e.g. the two extension streams).
func (k *KernelStats) Accumulate(o KernelStats) {
	k.Grid += o.Grid
	k.WarpInstrs += o.WarpInstrs
	k.LaneOps += o.LaneOps
	k.Iterations += o.Iterations
	k.Barriers += o.Barriers
	k.Reductions += o.Reductions
	k.AccessEvents += o.AccessEvents
	if o.MaxBlockWarpInstrs > k.MaxBlockWarpInstrs {
		k.MaxBlockWarpInstrs = o.MaxBlockWarpInstrs
	}
	if o.MaxBlockIters > k.MaxBlockIters {
		k.MaxBlockIters = o.MaxBlockIters
	}
	if o.MaxBlockAccesses > k.MaxBlockAccesses {
		k.MaxBlockAccesses = o.MaxBlockAccesses
	}
	k.StreamReadBytes += o.StreamReadBytes
	k.StreamWriteBytes += o.StreamWriteBytes
	k.ReuseReadBytes += o.ReuseReadBytes
	k.ReuseWriteBytes += o.ReuseWriteBytes
	if o.ReuseFootprint > k.ReuseFootprint {
		k.ReuseFootprint = o.ReuseFootprint
	}
	k.DRAMReadBytes += o.DRAMReadBytes
	k.DRAMWriteBytes += o.DRAMWriteBytes
	k.Iter.add(o.Iter)
	if o.Block > k.Block {
		k.Block = o.Block
		k.Occupancy = o.Occupancy
	}
	if k.WarpInstrs > 0 {
		raw := k.ReuseReadBytes + k.ReuseWriteBytes
		if raw > 0 {
			dram := k.DRAMReadBytes + k.DRAMWriteBytes - k.StreamReadBytes - k.StreamWriteBytes
			k.L2HitFraction = 1 - float64(dram)/float64(raw)
		}
	}
}
