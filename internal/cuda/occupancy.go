package cuda

// Occupancy describes how many blocks of a given shape fit concurrently on
// one SM, and why the limit binds. LOGAN's design discussion (paper §IV-B)
// hinges on this calculation: a block that reserves 64 KB of shared memory
// caps residency at one block per SM, which is why the anti-diagonals live
// in HBM instead.
type Occupancy struct {
	BlocksPerSM   int    // resident blocks per SM
	WarpsPerSM    int    // resident warps per SM
	LimitedBy     string // "threads", "blocks", "shared", or "registers"
	ActiveThreads int    // resident threads per SM
}

// OccupancyFor computes the residency of blocks with the given thread count
// and per-block shared-memory reservation on this device.
func (s DeviceSpec) OccupancyFor(threadsPerBlock, sharedPerBlock int) Occupancy {
	if threadsPerBlock <= 0 {
		threadsPerBlock = 1
	}
	warpsPerBlock := (threadsPerBlock + s.WarpSize - 1) / s.WarpSize
	// Thread-count limit.
	byThreads := s.MaxThreadsPerSM / (warpsPerBlock * s.WarpSize)
	limit, by := byThreads, "threads"
	// Hard block-count limit.
	if s.MaxBlocksPerSM < limit {
		limit, by = s.MaxBlocksPerSM, "blocks"
	}
	// Shared-memory limit.
	if sharedPerBlock > 0 {
		byShared := s.SharedPerSM / sharedPerBlock
		if byShared < limit {
			limit, by = byShared, "shared"
		}
	}
	// Register-file limit.
	if s.RegsPerThread > 0 {
		regsPerBlock := s.RegsPerThread * warpsPerBlock * s.WarpSize
		byRegs := s.RegistersPerSM / regsPerBlock
		if byRegs < limit {
			limit, by = byRegs, "registers"
		}
	}
	if limit < 1 {
		limit = 0
	}
	return Occupancy{
		BlocksPerSM:   limit,
		WarpsPerSM:    limit * warpsPerBlock,
		LimitedBy:     by,
		ActiveThreads: limit * warpsPerBlock * s.WarpSize,
	}
}
