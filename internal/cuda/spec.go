// Package cuda is a SIMT execution-model simulator: the substrate LOGAN-Go
// runs its "GPU" kernels on, standing in for CUDA on an NVIDIA Tesla V100.
//
// Kernels are ordinary Go functions executed once per block on a host worker
// pool. They perform the real computation (the alignment scores produced on
// the simulated device are bit-identical to the serial reference) while the
// simulator counts the work a V100 would do: warp instructions at 32-lane
// granularity, lane occupancy per synchronized step, shared-memory footprint,
// and DRAM/L2 traffic split into streaming and reuse classes. A hardware
// time model (internal/perfmodel) converts those counts into modeled kernel
// time using the same bound-and-bottleneck reasoning as the paper's Roofline
// section; the counts themselves are exact, not sampled.
//
// The package intentionally mirrors the CUDA host API surface LOGAN uses:
// device discovery, memory allocation, asynchronous streams with events, and
// kernel launch with a grid/block geometry.
package cuda

import "fmt"

// DeviceSpec describes the simulated hardware. Defaults model the NVIDIA
// Tesla V100 (Volta, 16 GB HBM2) used throughout the paper's evaluation.
type DeviceSpec struct {
	Name string

	SMs             int     // streaming multiprocessors
	SchedulersPerSM int     // warp schedulers (processing blocks) per SM
	WarpSize        int     // threads per warp
	INT32PerSched   int     // INT32 cores per scheduler
	ClockGHz        float64 // boost clock, for the theoretical instruction rate
	BaseClockGHz    float64 // base clock, used by the paper's INT32 ceiling

	MaxThreadsPerBlock int
	MaxThreadsPerSM    int
	MaxBlocksPerSM     int
	SharedPerBlock     int // bytes of shared memory a block may reserve
	SharedPerSM        int // bytes of shared memory per SM
	RegistersPerSM     int // 32-bit registers per SM
	RegsPerThread      int // compiler register budget estimate per thread

	HBMBytes     int64   // device memory capacity
	HBMBandwidth float64 // bytes/second
	L2Bytes      int64   // L2 cache capacity
	LinkBW       float64 // host link bandwidth, bytes/second (NVLink2/PCIe)
	LinkLatency  float64 // host link latency per transfer, seconds
}

// TeslaV100 returns the specification of a 16 GB SXM2 Tesla V100, with the
// figures the paper quotes in §IV and §VII: 80 SMs x 4 warp schedulers,
// 16 INT32 cores per scheduler, 96 KB shared memory per SM with a 64 KB
// per-block limit, and 900 GB/s of HBM2 bandwidth.
func TeslaV100() DeviceSpec {
	return DeviceSpec{
		Name:            "Tesla V100-SXM2-16GB",
		SMs:             80,
		SchedulersPerSM: 4,
		WarpSize:        32,
		INT32PerSched:   16,
		ClockGHz:        1.53,
		BaseClockGHz:    1.38,

		MaxThreadsPerBlock: 1024,
		MaxThreadsPerSM:    2048,
		MaxBlocksPerSM:     32,
		SharedPerBlock:     64 << 10,
		SharedPerSM:        96 << 10,
		RegistersPerSM:     65536,
		RegsPerThread:      32,

		HBMBytes:     16 << 30,
		HBMBandwidth: 900e9,
		L2Bytes:      6 << 20,
		LinkBW:       32e9, // NVLink2 per-direction sustained on POWER9 hosts
		LinkLatency:  10e-6,
	}
}

// TheoreticalWarpGIPS is the device-wide peak warp-instruction issue rate in
// billions per second: SMs x schedulers x 1 instruction/cycle x boost clock.
// For the V100 this is the paper's 80 x 4 x 1.53 = 489.6 GIPS.
func (s DeviceSpec) TheoreticalWarpGIPS() float64 {
	return float64(s.SMs*s.SchedulersPerSM) * s.ClockGHz
}

// INT32WarpGIPS is the attainable INT32 warp-instruction rate: with 16 INT32
// cores per scheduler only half a warp issues per cycle, so the ceiling is
// half the theoretical rate. The paper evaluates it at the base clock,
// giving 220.8 GIPS for the V100 (§VII).
func (s DeviceSpec) INT32WarpGIPS() float64 {
	frac := float64(s.INT32PerSched) / float64(s.WarpSize)
	return float64(s.SMs*s.SchedulersPerSM) * s.BaseClockGHz * frac
}

// INT32Lanes is the total number of INT32 cores on the device (the paper's
// MAXR in Eq. 1).
func (s DeviceSpec) INT32Lanes() int {
	return s.SMs * s.SchedulersPerSM * s.INT32PerSched
}

// Validate reports an error for non-physical specifications.
func (s DeviceSpec) Validate() error {
	switch {
	case s.SMs <= 0 || s.SchedulersPerSM <= 0 || s.WarpSize <= 0:
		return fmt.Errorf("cuda: spec %q: SM geometry must be positive", s.Name)
	case s.MaxThreadsPerBlock <= 0 || s.MaxThreadsPerSM < s.MaxThreadsPerBlock:
		return fmt.Errorf("cuda: spec %q: inconsistent thread limits", s.Name)
	case s.HBMBytes <= 0 || s.HBMBandwidth <= 0:
		return fmt.Errorf("cuda: spec %q: memory system must be positive", s.Name)
	case s.ClockGHz <= 0 || s.BaseClockGHz <= 0:
		return fmt.Errorf("cuda: spec %q: clocks must be positive", s.Name)
	}
	return nil
}
