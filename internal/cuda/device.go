package cuda

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Timer converts counted work into modeled wall time. The concrete
// implementation lives in internal/perfmodel; cuda only defines the
// interface to avoid an import cycle. A nil Timer leaves all modeled
// durations at zero (counts are still exact).
type Timer interface {
	// KernelTime returns the modeled duration of a kernel launch.
	KernelTime(spec DeviceSpec, stats KernelStats) time.Duration
	// CopyTime returns the modeled duration of a host<->device transfer.
	CopyTime(spec DeviceSpec, bytes int64) time.Duration
}

// Device is one simulated GPU. It owns a memory-allocation ledger, a set of
// streams, and the launch machinery. Devices are safe for concurrent use by
// multiple goroutines only through independent streams; the allocation
// ledger is internally locked.
type Device struct {
	Spec  DeviceSpec
	Timer Timer

	// Workers is the host worker-pool width used to execute blocks. Zero
	// means GOMAXPROCS. It affects only simulation speed, never results
	// or counts.
	Workers int

	mu        sync.Mutex
	allocated int64
	peak      int64
	launches  []KernelStats
	nextID    int
}

// NewDevice constructs a device with the given spec.
func NewDevice(spec DeviceSpec) (*Device, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &Device{Spec: spec}, nil
}

// MustV100 returns a Tesla V100 device, panicking on spec errors (none for
// the builtin spec). Convenience for tests and examples.
func MustV100() *Device {
	d, err := NewDevice(TeslaV100())
	if err != nil {
		panic(err)
	}
	return d
}

// Allocated returns the bytes currently allocated on the device.
func (d *Device) Allocated() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.allocated
}

// PeakAllocated returns the allocation high-water mark.
func (d *Device) PeakAllocated() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.peak
}

// Launches returns the accounting of every kernel launched so far.
func (d *Device) Launches() []KernelStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]KernelStats, len(d.launches))
	copy(out, d.launches)
	return out
}

// ResetStats clears the launch history (allocations are untouched).
func (d *Device) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.launches = nil
}

// TotalStats folds all launch records into one aggregate.
func (d *Device) TotalStats() KernelStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	var total KernelStats
	total.Name = "total"
	for _, l := range d.launches {
		total.Accumulate(l)
	}
	return total
}

func (d *Device) recordLaunch(s KernelStats) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.launches = append(d.launches, s)
}

// ErrOutOfMemory is returned when an allocation exceeds device capacity.
type ErrOutOfMemory struct {
	Requested, Free int64
}

func (e ErrOutOfMemory) Error() string {
	return fmt.Sprintf("cuda: out of device memory: requested %d bytes, %d free", e.Requested, e.Free)
}

// Buffer is a typed device allocation. Data lives in host memory (this is a
// simulator) but its size is charged against the device's HBM capacity, so
// batching code hits the same memory wall the real LOGAN host code manages
// around.
type Buffer[T any] struct {
	dev   *Device
	data  []T
	bytes int64
	freed bool
}

// Alloc reserves a device buffer of n elements of type T.
func Alloc[T any](d *Device, n int) (*Buffer[T], error) {
	var zero T
	elem := int64(sizeofAny(zero))
	bytes := elem * int64(n)
	d.mu.Lock()
	if d.allocated+bytes > d.Spec.HBMBytes {
		free := d.Spec.HBMBytes - d.allocated
		d.mu.Unlock()
		return nil, ErrOutOfMemory{Requested: bytes, Free: free}
	}
	d.allocated += bytes
	if d.allocated > d.peak {
		d.peak = d.allocated
	}
	d.mu.Unlock()
	return &Buffer[T]{dev: d, data: make([]T, n), bytes: bytes}, nil
}

// Free releases the buffer's reservation. Double frees are no-ops.
func (b *Buffer[T]) Free() {
	if b == nil || b.freed {
		return
	}
	b.freed = true
	b.dev.mu.Lock()
	b.dev.allocated -= b.bytes
	b.dev.mu.Unlock()
	b.data = nil
}

// Data exposes the backing slice. Kernels index it directly; the traffic
// they generate is accounted separately via the BlockCtx methods.
func (b *Buffer[T]) Data() []T { return b.data }

// Len returns the element count.
func (b *Buffer[T]) Len() int { return len(b.data) }

// Bytes returns the allocation size in bytes.
func (b *Buffer[T]) Bytes() int64 { return b.bytes }

// sizeofAny returns the size of a value of a small scalar/struct type used
// in device buffers. It intentionally supports only types without Go
// pointers (device memory cannot hold host pointers).
func sizeofAny(v any) int {
	switch v.(type) {
	case int8, uint8, bool:
		return 1
	case int16, uint16:
		return 2
	case int32, uint32, float32:
		return 4
	case int64, uint64, float64, int, uint:
		return 8
	default:
		panic(fmt.Sprintf("cuda: unsupported device element type %T", v))
	}
}

func (d *Device) workerCount() int {
	if d.Workers > 0 {
		return d.Workers
	}
	return runtime.GOMAXPROCS(0)
}
