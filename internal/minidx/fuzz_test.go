package minidx

import (
	"reflect"
	"testing"

	"logan/internal/seq"
)

// fuzzSeq maps arbitrary fuzz bytes onto the ACGTN alphabet so every
// input is a valid sequence and occasionally contains run-breaking Ns.
func fuzzSeq(data []byte) seq.Seq {
	s := make(seq.Seq, len(data))
	for i, b := range data {
		if b >= 250 {
			s[i] = 'N'
		} else {
			s[i] = seq.Alphabet[b&3]
		}
	}
	return s
}

// FuzzMinimizersDifferential cross-checks the O(n) monotonic-queue
// extractor against the quadratic reference on arbitrary inputs and
// parameters, then asserts the two extraction properties the mapper
// relies on: window invariance (no window of w eligible k-mers is left
// without a minimizer) and reverse-complement canonicality (the reverse
// complement selects the same hashes at mirrored positions).
func FuzzMinimizersDifferential(f *testing.F) {
	f.Add([]byte("ACGTACGTACGTACGTACGT"), uint8(5), uint8(4))
	f.Add([]byte("AAAAAAAAAAAAAAAAAAAA"), uint8(3), uint8(3))
	f.Add([]byte{0, 1, 2, 3, 250, 3, 2, 1, 0, 1, 2, 3, 0, 1, 2, 3}, uint8(4), uint8(2))
	f.Add([]byte("ATATATATATATATATAT"), uint8(2), uint8(5))
	f.Fuzz(func(t *testing.T, data []byte, kb, wb uint8) {
		k := int(kb)%seq.MaxK + 1 // 1..31
		w := int(wb)%12 + 1       // 1..12
		if len(data) > 2048 {
			data = data[:2048]
		}
		s := fuzzSeq(data)
		got := Extract(nil, s, k, w)
		want := ExtractNaive(s, k, w)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("k=%d w=%d seq=%s:\nExtract      = %+v\nExtractNaive = %+v", k, w, s, got, want)
		}
		for i := 1; i < len(got); i++ {
			if got[i].Pos <= got[i-1].Pos {
				t.Fatalf("positions not strictly ascending: %+v", got)
			}
		}
		// Window invariance.
		sel := make(map[int32]bool, len(got))
		for _, m := range got {
			sel[m.Pos] = true
		}
		for _, run := range eligibleRuns(s, k) {
			for lo := 0; lo+w <= len(run); lo++ {
				ok := false
				for j := lo; j < lo+w; j++ {
					if sel[run[j]] {
						ok = true
						break
					}
				}
				if !ok {
					t.Fatalf("k=%d w=%d: window at eligible offset %d has no minimizer (seq=%s)", k, w, run[lo], s)
				}
			}
		}
		// Reverse-complement canonicality: same hash multiset at mirrored
		// positions.
		rc := Extract(nil, s.RevComp(), k, w)
		if len(rc) != len(got) {
			t.Fatalf("revcomp selected %d minimizers, forward %d", len(rc), len(got))
		}
		for i, m := range rc {
			fm := got[len(got)-1-i]
			if m.Hash != fm.Hash || m.Pos != int32(len(s)-k)-fm.Pos {
				t.Fatalf("revcomp minimizer %d = %+v, want mirror of %+v", i, m, fm)
			}
		}
	})
}
