package minidx

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"logan/internal/seq"
)

// randomSeq builds a random sequence over ACGT with nFrac chance of N per
// base.
func randomSeq(rng *rand.Rand, n int, nFrac float64) seq.Seq {
	s := make(seq.Seq, n)
	for i := range s {
		if rng.Float64() < nFrac {
			s[i] = 'N'
		} else {
			s[i] = seq.Alphabet[rng.Intn(4)]
		}
	}
	return s
}

// eligibleRuns returns maximal runs of k-mer start positions whose
// windows contain no N, mirroring the eligibility rule of Extract.
func eligibleRuns(s seq.Seq, k int) [][]int32 {
	codec := seq.MustKmerCodec(k)
	var runs [][]int32
	var cur []int32
	for i := 0; i+k <= len(s); i++ {
		if _, ok := codec.Encode(s, i); !ok {
			if len(cur) > 0 {
				runs = append(runs, cur)
				cur = nil
			}
			continue
		}
		cur = append(cur, int32(i))
	}
	if len(cur) > 0 {
		runs = append(runs, cur)
	}
	return runs
}

func checkMinimizers(t *testing.T, s seq.Seq, k, w int) {
	t.Helper()
	got := Extract(nil, s, k, w)
	want := ExtractNaive(s, k, w)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("k=%d w=%d seq=%s:\nExtract      = %+v\nExtractNaive = %+v", k, w, s, got, want)
	}
	// Ascending, unique positions.
	for i := 1; i < len(got); i++ {
		if got[i].Pos <= got[i-1].Pos {
			t.Fatalf("positions not strictly ascending at %d: %+v", i, got)
		}
	}
	// Window invariance: every window of w consecutive eligible k-mer
	// positions contains at least one selected minimizer.
	sel := map[int32]bool{}
	for _, m := range got {
		sel[m.Pos] = true
	}
	for _, run := range eligibleRuns(s, k) {
		for lo := 0; lo+w <= len(run); lo++ {
			ok := false
			for j := lo; j < lo+w; j++ {
				if sel[run[j]] {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("k=%d w=%d: window starting at %d has no minimizer (seq=%s)", k, w, run[lo], s)
			}
		}
	}
	checkRevCompCanonicality(t, s, k, w, got)
}

// checkRevCompCanonicality asserts that extracting the reverse complement
// yields the same hashes at mirrored positions with the strand bit
// flipped (unchanged for palindromic k-mers).
func checkRevCompCanonicality(t *testing.T, s seq.Seq, k, w int, fwd []Minimizer) {
	t.Helper()
	codec := seq.MustKmerCodec(k)
	want := make([]Minimizer, 0, len(fwd))
	for i := len(fwd) - 1; i >= 0; i-- {
		m := fwd[i]
		km, ok := codec.Encode(s, int(m.Pos))
		if !ok {
			t.Fatalf("minimizer at ineligible position %d", m.Pos)
		}
		rev := !m.Rev
		if codec.RevComp(km) == km { // palindromic: canonical on both strands
			rev = false
		}
		want = append(want, Minimizer{Hash: m.Hash, Pos: int32(len(s)-k) - m.Pos, Rev: rev})
	}
	got := Extract(nil, s.RevComp(), k, w)
	if len(got) != len(want) {
		t.Fatalf("k=%d w=%d seq=%s:\nrevcomp Extract = %+v\nmirrored fwd    = %+v", k, w, s, got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("k=%d w=%d seq=%s: revcomp minimizer %d = %+v, want %+v", k, w, s, i, got[i], want[i])
		}
	}
}

func TestExtractMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := []struct{ k, w int }{{3, 1}, {3, 4}, {5, 5}, {15, 10}, {31, 3}, {11, 16}}
	for _, c := range cases {
		for trial := 0; trial < 30; trial++ {
			n := rng.Intn(400)
			nFrac := 0.0
			if trial%3 == 1 {
				nFrac = 0.05
			}
			checkMinimizers(t, randomSeq(rng, n, nFrac), c.k, c.w)
		}
	}
}

func TestExtractLowComplexityTies(t *testing.T) {
	// Homopolymers and dinucleotide repeats force massive hash ties; every
	// tied window position must be selected on both strands.
	for _, str := range []string{
		"AAAAAAAAAAAAAAAAAAAAAAAA",
		"ACACACACACACACACACACACAC",
		"ATATATATATATATATATATATAT", // palindromic 2-mers under revcomp
		"GGGGGGGCCCCCCCGGGGGGG",
	} {
		for _, kw := range []struct{ k, w int }{{4, 3}, {5, 7}, {2, 2}} {
			checkMinimizers(t, seq.MustNew(str), kw.k, kw.w)
		}
	}
}

func TestExtractShortAndEdgeInputs(t *testing.T) {
	if got := Extract(nil, seq.MustNew("ACG"), 5, 3); len(got) != 0 {
		t.Fatalf("sequence shorter than k produced %v", got)
	}
	if got := Extract(nil, seq.MustNew("ACGNACG"), 4, 2); len(got) != 0 {
		t.Fatalf("all windows N-broken still produced %v", got)
	}
	// Exactly one full window.
	s := seq.MustNew("ACGTAC")
	got := Extract(nil, s, 3, 4)
	if len(got) == 0 {
		t.Fatal("single complete window selected nothing")
	}
	checkMinimizers(t, s, 3, 4)
}

func TestValidateKW(t *testing.T) {
	for _, bad := range []struct{ k, w int }{{0, 1}, {32, 1}, {5, 0}, {-1, 3}} {
		if err := ValidateKW(bad.k, bad.w); err == nil {
			t.Errorf("ValidateKW(%d,%d) accepted invalid parameters", bad.k, bad.w)
		}
	}
	if err := ValidateKW(15, 10); err != nil {
		t.Fatalf("ValidateKW(15,10): %v", err)
	}
}

func TestPackPosRoundTrip(t *testing.T) {
	cases := []struct {
		ref, pos int32
		rev      bool
	}{{0, 0, false}, {1, 2, true}, {1<<31 - 1, 1<<31 - 1, true}, {12345, 1 << 30, false}}
	for _, c := range cases {
		r, p, v := UnpackPos(PackPos(c.ref, c.pos, c.rev))
		if r != c.ref || p != c.pos || v != c.rev {
			t.Errorf("round trip (%d,%d,%v) -> (%d,%d,%v)", c.ref, c.pos, c.rev, r, p, v)
		}
	}
}

func buildTestIndex(t *testing.T, rng *rand.Rand, opt Options) (*Index, []Ref) {
	t.Helper()
	refs := []Ref{
		{Name: "chr1", Seq: randomSeq(rng, 5000, 0.002)},
		{Name: "chr2", Seq: randomSeq(rng, 3000, 0)},
	}
	x, err := Build(refs, opt)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return x, refs
}

func TestIndexLookupFindsAllKeptMinimizers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x, refs := buildTestIndex(t, rng, Options{K: 13, W: 8, MaxOccurrence: -1})
	total := 0
	for ri, r := range refs {
		for _, m := range Extract(nil, r.Seq, 13, 8) {
			hits := x.Lookup(m.Hash)
			if len(hits) == 0 {
				t.Fatalf("minimizer %x at %s:%d not found", m.Hash, r.Name, m.Pos)
			}
			found := false
			for _, h := range hits {
				rr, pp, vv := UnpackPos(h)
				if rr == int32(ri) && pp == m.Pos && vv == m.Rev {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("position %s:%d missing from hits %v", r.Name, m.Pos, hits)
			}
			total++
		}
	}
	st := x.Stats()
	if int64(total) != st.Minimizers || st.Kept != st.Minimizers || st.MaskedKmers != 0 {
		t.Fatalf("stats mismatch: extracted %d, stats %+v", total, st)
	}
	if st.Occupancy <= 0 || st.Occupancy > 0.5 {
		t.Fatalf("occupancy %f outside (0,0.5]", st.Occupancy)
	}
	if x.Lookup(0xdeadbeefdeadbeef) != nil && len(x.Lookup(0xdeadbeefdeadbeef)) != 0 {
		// A random absent key may rarely collide with a real one; accept
		// either nil or a genuine hit, but never panic.
		t.Log("absent-key lookup returned hits (hash collision)")
	}
}

func TestIndexMasking(t *testing.T) {
	// A reference that is one k-mer repeated: its minimizer occurs far
	// more than maxOcc times and must be masked.
	rep := bytes.Repeat([]byte("ACGTT"), 400)
	refs := []Ref{{Name: "rep", Seq: seq.Seq(rep)}}
	x, err := Build(refs, Options{K: 5, W: 4, MaxOccurrence: 8})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	st := x.Stats()
	if st.MaskedKmers == 0 || st.MaskedPositions == 0 {
		t.Fatalf("expected masking on repetitive input, stats %+v", st)
	}
	for _, m := range Extract(nil, seq.Seq(rep), 5, 4) {
		if hits := x.Lookup(m.Hash); len(hits) > 8 {
			t.Fatalf("masked key still returns %d hits", len(hits))
		}
	}
}

func TestBuildNormalizesN(t *testing.T) {
	refs := []Ref{{Name: "r", Seq: seq.MustNew("ACGTNNACGT")}}
	x, err := Build(refs, Options{K: 3, W: 2})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if got := x.Refs()[0].Seq.String(); got != "ACGTAAACGT" {
		t.Fatalf("stored ref %q, want N normalized to A", got)
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	if _, err := Build(nil, Options{}); err == nil {
		t.Error("Build accepted empty reference set")
	}
	if _, err := Build([]Ref{{Name: "", Seq: seq.MustNew("ACGT")}}, Options{}); err == nil {
		t.Error("Build accepted empty reference name")
	}
	if _, err := Build([]Ref{{Name: "r", Seq: seq.MustNew("ACGT")}}, Options{K: 40}); err == nil {
		t.Error("Build accepted k > MaxK")
	}
}

func TestSaveLoadRoundTripBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	x, _ := buildTestIndex(t, rng, Options{K: 15, W: 10, MaxOccurrence: 64})
	var buf1 bytes.Buffer
	if err := x.Save(&buf1); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(bytes.NewReader(buf1.Bytes()))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	var buf2 bytes.Buffer
	if err := loaded.Save(&buf2); err != nil {
		t.Fatalf("Save(loaded): %v", err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatalf("save->load->save not bit-identical: %d vs %d bytes", buf1.Len(), buf2.Len())
	}
	if !reflect.DeepEqual(x.Stats(), loaded.Stats()) {
		t.Fatalf("stats drifted: built %+v loaded %+v", x.Stats(), loaded.Stats())
	}
	if loaded.K() != x.K() || loaded.W() != x.W() || loaded.MaxOccurrence() != x.MaxOccurrence() {
		t.Fatal("parameters drifted through serialization")
	}
	// Lookups must behave identically.
	for _, r := range x.Refs() {
		for _, m := range Extract(nil, r.Seq, x.K(), x.W()) {
			a, b := x.Lookup(m.Hash), loaded.Lookup(m.Hash)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("lookup(%x) diverged: %v vs %v", m.Hash, a, b)
			}
		}
	}
}

func TestLoadRejectsCorruptInput(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	x, _ := buildTestIndex(t, rng, Options{K: 11, W: 5})
	var buf bytes.Buffer
	if err := x.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	good := buf.Bytes()

	t.Run("bad magic", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[0] = 'X'
		if _, err := Load(bytes.NewReader(b)); err == nil {
			t.Fatal("accepted bad magic")
		}
	})
	t.Run("bad version", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[4] = 99
		if _, err := Load(bytes.NewReader(b)); err == nil {
			t.Fatal("accepted unknown version")
		}
	})
	t.Run("flipped payload byte", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[len(b)/2] ^= 0xA5
		if _, err := Load(bytes.NewReader(b)); err == nil {
			t.Fatal("accepted CRC mismatch")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		for _, n := range []int{0, 3, 19, len(good) / 2, len(good) - 1} {
			if _, err := Load(bytes.NewReader(good[:n])); err == nil {
				t.Fatalf("accepted truncation to %d bytes", n)
			}
		}
	})
	t.Run("intact", func(t *testing.T) {
		if _, err := Load(bytes.NewReader(good)); err != nil {
			t.Fatalf("rejected intact file: %v", err)
		}
	})
}
