package minidx

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"logan/internal/seq"
)

// On-disk format (little-endian throughout):
//
//	magic   [4]byte  "LGMI"
//	version uint32   formatVersion
//	paylen  uint64   payload length in bytes
//	crc     uint32   CRC-32 (IEEE) of the payload
//	payload:
//	  k, w uint32; maxOcc int32
//	  nRefs uint32, then per ref: nameLen uint32, name, seqLen uint64,
//	    2-bit packed bases (ceil(len/4) bytes)
//	  stats: minimizers, distinct, maskedKmers, maskedPositions uint64
//	  nPos uint64, packed positions
//	  nSlots uint64, then per slot: key uint64, off uint32, cnt uint32
//
// The whole probe table is serialized (empty slots included) so Load
// performs no rehash and Save∘Load∘Save is bit-identical by
// construction — the property the round-trip tests pin.
const (
	indexMagic    = "LGMI"
	formatVersion = 1
	// maxPayload bounds the allocation a corrupt or adversarial header
	// can demand before the CRC is ever checked.
	maxPayload = 1 << 34
)

// Serialization errors. ErrCorrupt wraps CRC mismatches and truncated or
// inconsistent payloads; ErrBadMagic and ErrBadVersion identify files
// that are not minimizer indexes or were written by a newer format.
var (
	ErrBadMagic   = errors.New("minidx: not a minimizer index file")
	ErrBadVersion = errors.New("minidx: unsupported index format version")
	ErrCorrupt    = errors.New("minidx: corrupt index file")
)

// Save writes the index to w in the versioned binary format.
func (x *Index) Save(w io.Writer) error {
	var payload bytes.Buffer
	le := binary.LittleEndian
	var u32 [4]byte
	var u64 [8]byte
	put32 := func(v uint32) {
		le.PutUint32(u32[:], v)
		payload.Write(u32[:])
	}
	put64 := func(v uint64) {
		le.PutUint64(u64[:], v)
		payload.Write(u64[:])
	}
	put32(uint32(x.k))
	put32(uint32(x.w))
	put32(uint32(int32(x.maxOcc)))
	put32(uint32(len(x.refs)))
	for _, r := range x.refs {
		put32(uint32(len(r.Name)))
		payload.WriteString(r.Name)
		put64(uint64(len(r.Seq)))
		payload.Write(seq.PackLossy(r.Seq).Bytes())
	}
	put64(uint64(x.stats.Minimizers))
	put64(uint64(x.stats.Distinct))
	put64(uint64(x.stats.MaskedKmers))
	put64(uint64(x.stats.MaskedPositions))
	put64(uint64(len(x.pos)))
	for _, p := range x.pos {
		put64(p)
	}
	put64(uint64(len(x.slots)))
	for _, s := range x.slots {
		put64(s.key)
		put32(s.off)
		put32(s.cnt)
	}

	var hdr [20]byte
	copy(hdr[:4], indexMagic)
	le.PutUint32(hdr[4:8], formatVersion)
	le.PutUint64(hdr[8:16], uint64(payload.Len()))
	le.PutUint32(hdr[16:20], crc32.ChecksumIEEE(payload.Bytes()))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload.Bytes())
	return err
}

// Load reads an index previously written by Save, verifying the CRC
// before parsing.
func Load(r io.Reader) (*Index, error) {
	var hdr [20]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
		}
		return nil, err
	}
	if string(hdr[:4]) != indexMagic {
		return nil, ErrBadMagic
	}
	le := binary.LittleEndian
	if v := le.Uint32(hdr[4:8]); v != formatVersion {
		return nil, fmt.Errorf("%w: got version %d, support version %d", ErrBadVersion, v, formatVersion)
	}
	paylen := le.Uint64(hdr[8:16])
	if paylen > maxPayload {
		return nil, fmt.Errorf("%w: payload length %d exceeds limit", ErrCorrupt, paylen)
	}
	payload := make([]byte, paylen)
	if _, err := io.ReadFull(r, payload); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, fmt.Errorf("%w: truncated payload", ErrCorrupt)
		}
		return nil, err
	}
	if got := crc32.ChecksumIEEE(payload); got != le.Uint32(hdr[16:20]) {
		return nil, fmt.Errorf("%w: CRC mismatch", ErrCorrupt)
	}
	return parsePayload(payload)
}

// cursor is a bounds-checked little-endian reader over the payload. The
// CRC already vouches for integrity; the cursor turns any residual
// inconsistency (a buggy writer, a hand-crafted file with a valid CRC)
// into ErrCorrupt instead of a panic.
type cursor struct {
	b   []byte
	off int
	err error
}

func (c *cursor) take(n int) []byte {
	if c.err != nil {
		return nil
	}
	if n < 0 || c.off+n > len(c.b) || c.off+n < c.off {
		c.err = fmt.Errorf("%w: truncated field at offset %d", ErrCorrupt, c.off)
		return nil
	}
	out := c.b[c.off : c.off+n]
	c.off += n
	return out
}

func (c *cursor) u32() uint32 {
	b := c.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (c *cursor) u64() uint64 {
	b := c.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func parsePayload(payload []byte) (*Index, error) {
	c := &cursor{b: payload}
	x := &Index{}
	x.k = int(c.u32())
	x.w = int(c.u32())
	x.maxOcc = int(int32(c.u32()))
	if c.err == nil {
		if err := ValidateKW(x.k, x.w); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
	}
	nRefs := int(c.u32())
	if c.err == nil && (nRefs < 1 || nRefs > math.MaxInt32) {
		return nil, fmt.Errorf("%w: implausible reference count %d", ErrCorrupt, nRefs)
	}
	for i := 0; i < nRefs && c.err == nil; i++ {
		nameLen := int(c.u32())
		name := string(c.take(nameLen))
		seqLen := c.u64()
		if c.err == nil && seqLen > 1<<31 {
			return nil, fmt.Errorf("%w: reference length %d overflows position space", ErrCorrupt, seqLen)
		}
		words := c.take(int((seqLen + 3) / 4))
		if c.err != nil {
			break
		}
		s := make(seq.Seq, seqLen)
		for j := range s {
			s[j] = seq.Alphabet[(words[j/4]>>uint(2*(j%4)))&3]
		}
		x.refs = append(x.refs, Ref{Name: name, Seq: s})
		x.stats.Bases += int64(seqLen)
	}
	x.stats.Refs = len(x.refs)
	x.stats.Minimizers = int64(c.u64())
	x.stats.Distinct = int64(c.u64())
	x.stats.MaskedKmers = int64(c.u64())
	x.stats.MaskedPositions = int64(c.u64())
	nPos := c.u64()
	if c.err == nil && nPos*8 > uint64(len(payload)) {
		return nil, fmt.Errorf("%w: position count %d exceeds payload", ErrCorrupt, nPos)
	}
	x.pos = make([]uint64, 0, int(nPos))
	for i := uint64(0); i < nPos && c.err == nil; i++ {
		x.pos = append(x.pos, c.u64())
	}
	x.stats.Kept = int64(len(x.pos))
	nSlots := c.u64()
	if c.err == nil {
		if nSlots == 0 || nSlots*16 > uint64(len(payload)) || nSlots&(nSlots-1) != 0 {
			return nil, fmt.Errorf("%w: bad table size %d", ErrCorrupt, nSlots)
		}
	}
	occupied := 0
	x.slots = make([]slot, 0, int(nSlots))
	for i := uint64(0); i < nSlots && c.err == nil; i++ {
		s := slot{key: c.u64(), off: c.u32(), cnt: c.u32()}
		if s.cnt != 0 {
			occupied++
			if uint64(s.off)+uint64(s.cnt) > uint64(len(x.pos)) {
				return nil, fmt.Errorf("%w: slot %d range [%d,+%d) outside positions", ErrCorrupt, i, s.off, s.cnt)
			}
		}
		x.slots = append(x.slots, s)
	}
	if c.err != nil {
		return nil, c.err
	}
	if c.off != len(payload) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(payload)-c.off)
	}
	x.mask = nSlots - 1
	x.stats.TableSize = int(nSlots)
	if nSlots > 0 {
		x.stats.Occupancy = float64(occupied) / float64(nSlots)
	}
	return x, nil
}
