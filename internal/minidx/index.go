package minidx

import (
	"fmt"
	"math/bits"
	"sort"

	"logan/internal/seq"
)

// Default index parameters: k=15/w=10 is the minimap2 short-to-long sweet
// spot (≈2/(w+1) sampling density), and masking k-mers above 256
// occurrences drops centromeric/satellite noise without hurting unique
// placement.
const (
	DefaultK             = 15
	DefaultW             = 10
	DefaultMaxOccurrence = 256
)

// Ref is one reference sequence held by the index. Seq is normalized to
// the unambiguous alphabet (N→A, matching the engine's 2-bit packing) so
// a built index and a reloaded one extend against identical bases.
type Ref struct {
	Name string
	Seq  seq.Seq
}

// Options configures index construction.
type Options struct {
	// K and W are the minimizer k-mer length and window size.
	K, W int
	// MaxOccurrence masks k-mers occurring more often than this across
	// the whole reference set; 0 means DefaultMaxOccurrence, negative
	// disables masking.
	MaxOccurrence int
}

func (o Options) withDefaults() Options {
	if o.K == 0 {
		o.K = DefaultK
	}
	if o.W == 0 {
		o.W = DefaultW
	}
	if o.MaxOccurrence == 0 {
		o.MaxOccurrence = DefaultMaxOccurrence
	}
	return o
}

// Stats summarizes the shape of a built index; it feeds the
// logan_map_index_* telemetry gauges and /statz.
type Stats struct {
	Refs            int     `json:"refs"`
	Bases           int64   `json:"bases"`
	Minimizers      int64   `json:"minimizers"`      // extracted occurrences
	Distinct        int64   `json:"distinct"`        // distinct keys before masking
	Kept            int64   `json:"kept"`            // stored positions after masking
	MaskedKmers     int64   `json:"maskedKmers"`     // distinct keys masked as high-occurrence
	MaskedPositions int64   `json:"maskedPositions"` // occurrences dropped by masking
	TableSize       int     `json:"tableSize"`
	Occupancy       float64 `json:"occupancy"` // occupied slots / table size
}

// slot is one open-addressing table entry; cnt==0 marks an empty slot
// (stored runs are never empty, masking removes keys instead of zeroing
// their counts).
type slot struct {
	key uint64
	off uint32
	cnt uint32
}

// Index is a minimizer index over a set of reference sequences: a flat,
// hash-grouped positions array addressed by an open-addressing table.
// It is immutable after Build/Load and safe for concurrent lookups.
type Index struct {
	k, w   int
	maxOcc int
	refs   []Ref
	pos    []uint64 // packed (ref,pos,rev), grouped by key
	slots  []slot
	mask   uint64
	stats  Stats
}

// K returns the k-mer length the index was built with.
func (x *Index) K() int { return x.k }

// W returns the minimizer window size the index was built with.
func (x *Index) W() int { return x.w }

// MaxOccurrence returns the masking threshold the index was built with
// (<0 when masking was disabled).
func (x *Index) MaxOccurrence() int { return x.maxOcc }

// Refs returns the reference sequences; callers must not mutate them.
func (x *Index) Refs() []Ref { return x.refs }

// Stats returns build statistics.
func (x *Index) Stats() Stats { return x.stats }

// PackPos packs a reference hit into the uint64 position encoding used
// by the index: reference ordinal, forward-strand k-mer start, and the
// canonical-strand bit.
func PackPos(ref, pos int32, rev bool) uint64 {
	v := uint64(uint32(ref))<<33 | uint64(uint32(pos))<<1
	if rev {
		v |= 1
	}
	return v
}

// UnpackPos reverses PackPos.
func UnpackPos(v uint64) (ref, pos int32, rev bool) {
	return int32(v >> 33), int32(uint32(v>>1) & 0x7fffffff), v&1 == 1
}

// Build constructs an index over refs. Reference sequences are
// normalized in place of the returned index (N→A via 2-bit packing)
// after minimizer extraction, so extraction still skips ambiguous
// windows but extension targets match a saved-then-loaded index exactly.
func Build(refs []Ref, opt Options) (*Index, error) {
	opt = opt.withDefaults()
	if err := ValidateKW(opt.K, opt.W); err != nil {
		return nil, err
	}
	if len(refs) == 0 {
		return nil, fmt.Errorf("minidx: no reference sequences")
	}
	if len(refs) >= 1<<31 {
		return nil, fmt.Errorf("minidx: %d references exceed the 31-bit ordinal space", len(refs))
	}
	x := &Index{k: opt.K, w: opt.W, maxOcc: opt.MaxOccurrence}
	x.refs = make([]Ref, len(refs))
	type rec struct {
		hash uint64
		val  uint64
	}
	var recs []rec
	var scratch []Minimizer
	for i, r := range refs {
		if r.Name == "" {
			return nil, fmt.Errorf("minidx: reference %d has an empty name", i)
		}
		if len(r.Seq) >= 1<<31 {
			return nil, fmt.Errorf("minidx: reference %q length %d exceeds the 31-bit position space", r.Name, len(r.Seq))
		}
		scratch = Extract(scratch[:0], r.Seq, opt.K, opt.W)
		for _, m := range scratch {
			recs = append(recs, rec{hash: m.Hash, val: PackPos(int32(i), m.Pos, m.Rev)})
		}
		x.stats.Bases += int64(len(r.Seq))
		// Normalize the stored copy: PackLossy maps N→A, the same lossy
		// view the X-drop backends see, making built and reloaded
		// indexes extend against identical bases.
		x.refs[i] = Ref{Name: r.Name, Seq: seq.PackLossy(r.Seq).Unpack()}
	}
	x.stats.Refs = len(refs)
	x.stats.Minimizers = int64(len(recs))
	sort.Slice(recs, func(a, b int) bool {
		if recs[a].hash != recs[b].hash {
			return recs[a].hash < recs[b].hash
		}
		return recs[a].val < recs[b].val
	})
	type run struct {
		key uint64
		off uint32
		cnt uint32
	}
	var runs []run
	for i := 0; i < len(recs); {
		j := i
		for j < len(recs) && recs[j].hash == recs[i].hash {
			j++
		}
		x.stats.Distinct++
		n := j - i
		if opt.MaxOccurrence >= 0 && n > opt.MaxOccurrence {
			x.stats.MaskedKmers++
			x.stats.MaskedPositions += int64(n)
			i = j
			continue
		}
		runs = append(runs, run{key: recs[i].hash, off: uint32(len(x.pos)), cnt: uint32(n)})
		for ; i < j; i++ {
			x.pos = append(x.pos, recs[i].val)
		}
	}
	x.stats.Kept = int64(len(x.pos))
	size := nextPow2(2 * len(runs))
	x.slots = make([]slot, size)
	x.mask = uint64(size - 1)
	for _, r := range runs {
		p := r.key & x.mask
		for x.slots[p].cnt != 0 {
			p = (p + 1) & x.mask
		}
		x.slots[p] = slot{key: r.key, off: r.off, cnt: r.cnt}
	}
	x.stats.TableSize = size
	x.stats.Occupancy = float64(len(runs)) / float64(size)
	return x, nil
}

func nextPow2(n int) int {
	if n < 1 {
		n = 1
	}
	return 1 << uint(bits.Len(uint(n-1)))
}

// Lookup returns the packed positions stored for a minimizer hash, or
// nil when the key is absent or was masked. The returned slice aliases
// index memory and must not be mutated.
func (x *Index) Lookup(hash uint64) []uint64 {
	p := hash & x.mask
	for {
		s := x.slots[p]
		if s.cnt == 0 {
			return nil
		}
		if s.key == hash {
			return x.pos[s.off : s.off+s.cnt : s.off+s.cnt]
		}
		p = (p + 1) & x.mask
	}
}
