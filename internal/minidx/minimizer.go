// Package minidx implements the reference side of the mapping pipeline:
// windowed minimizer extraction over DNA sequences and a persistent
// minimizer index — an open-addressing k-mer → positions table over a
// reference FASTA with high-occurrence masking and a versioned,
// CRC-guarded binary serialization. It is the seeding stage of the
// minimap2-style pipeline (minimize → chain → extend) whose extension
// stage is the repository's batched X-drop engine.
package minidx

import (
	"fmt"

	"logan/internal/seq"
)

// Minimizer is one selected k-mer occurrence: the mixed hash of its
// canonical (strand-independent) form, the start position of the k-mer
// on the forward strand, and whether the canonical form is the reverse
// complement of the forward k-mer at that position.
type Minimizer struct {
	Hash uint64
	Pos  int32
	// Rev marks occurrences whose canonical k-mer is the reverse
	// complement of the forward-strand window (strand-symmetric
	// palindromic k-mers count as forward).
	Rev bool
}

// mix64 is the splitmix64 finalizer: it decorrelates the 2-bit k-mer code
// from its lexicographic value so low-complexity k-mers (poly-A runs)
// stop being systematically minimal, which would cluster minimizers on
// repeats. The full 64-bit image keys the index table; distinct k-mers
// colliding is negligible at 2^-64 per pair and harmless anyway — a
// false anchor scores nothing in chaining/extension.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// winEntry is one eligible k-mer inside the sliding window.
type winEntry struct {
	hash    uint64
	pos     int32
	rev     bool
	emitted bool
}

// ValidateKW rejects parameter combinations extraction cannot honor.
func ValidateKW(k, w int) error {
	if k < 1 || k > seq.MaxK {
		return fmt.Errorf("minidx: k=%d outside [1,%d]", k, seq.MaxK)
	}
	if w < 1 {
		return fmt.Errorf("minidx: window w=%d must be >= 1", w)
	}
	return nil
}

// Extract appends the (k,w)-minimizers of s to dst and returns the
// extended slice, in strictly ascending position order.
//
// The scheme is the standard winnowing one: every window of w consecutive
// eligible k-mer start positions selects all positions attaining the
// minimum mixed hash of the window (keeping ties makes the selected set
// strand-symmetric: extracting the reverse complement yields the same
// hashes at mirrored positions with Rev flipped). K-mers overlapping an N
// are ineligible and break the run — windows never span them, matching
// the k-mer scanner in internal/seq.
//
// The implementation is the O(n) monotonic-queue sweep; ExtractNaive is
// the O(n·w) reference the differential tests and fuzzers compare
// against.
func Extract(dst []Minimizer, s seq.Seq, k, w int) []Minimizer {
	if err := ValidateKW(k, w); err != nil {
		panic(err)
	}
	if len(s) < k {
		return dst
	}
	mask := uint64(1)<<(2*k) - 1
	var fwd, rc uint64
	run := 0 // consecutive eligible bases ending at i
	// deque holds window entries with non-decreasing hash from the front;
	// head indexes the live front inside the backing slice.
	deque := make([]winEntry, 0, w+1)
	head := 0
	for i := 0; i < len(s); i++ {
		if s.IsN(i) {
			run = 0
			fwd, rc = 0, 0
			deque = deque[:0]
			head = 0
			continue
		}
		c := uint64(s.Code(i))
		fwd = (fwd<<2 | c) & mask
		rc = (rc >> 2) | (3^c)<<uint(2*(k-1))
		if run < k+w-1 {
			run++
		}
		if run < k {
			continue
		}
		start := int32(i - k + 1)
		canon, rev := fwd, false
		if rc < fwd {
			canon, rev = rc, true
		}
		e := winEntry{hash: mix64(canon), pos: start, rev: rev}
		// Strictly-greater pops keep equal hashes: ties stay in the queue
		// so every position attaining the window minimum can be emitted.
		for len(deque) > head && deque[len(deque)-1].hash > e.hash {
			deque = deque[:len(deque)-1]
		}
		if head > 0 && len(deque) == head {
			// Queue drained to its head offset: reclaim the dead prefix.
			deque = deque[:0]
			head = 0
		}
		deque = append(deque, e)
		for deque[head].pos < start-int32(w-1) {
			head++
		}
		if run < k+w-1 {
			continue // first window not complete yet
		}
		// All entries tied with the front are this window's minimizers.
		for j := head; j < len(deque) && deque[j].hash == deque[head].hash; j++ {
			if !deque[j].emitted {
				deque[j].emitted = true
				dst = append(dst, Minimizer{Hash: deque[j].hash, Pos: deque[j].pos, Rev: deque[j].rev})
			}
		}
	}
	return dst
}

// ExtractNaive is the quadratic reference implementation of Extract: it
// materializes every eligible k-mer, then scans each window of w
// consecutive eligible positions and marks all positions attaining the
// window minimum. It exists as the oracle for the differential property
// tests and fuzz targets; production callers use Extract.
func ExtractNaive(s seq.Seq, k, w int) []Minimizer {
	if err := ValidateKW(k, w); err != nil {
		panic(err)
	}
	codec := seq.MustKmerCodec(k)
	// runs of consecutive eligible k-mer start positions.
	type cand struct {
		hash uint64
		pos  int32
		rev  bool
	}
	var out []Minimizer
	var runs [][]cand
	var cur []cand
	for i := 0; i+k <= len(s); i++ {
		f, ok := codec.Encode(s, i)
		if !ok {
			if len(cur) > 0 {
				runs = append(runs, cur)
				cur = nil
			}
			continue
		}
		r := codec.RevComp(f)
		canon, rev := f, false
		if r < f {
			canon, rev = r, true
		}
		cur = append(cur, cand{hash: mix64(uint64(canon)), pos: int32(i), rev: rev})
	}
	if len(cur) > 0 {
		runs = append(runs, cur)
	}
	for _, run := range runs {
		picked := make([]bool, len(run))
		for lo := 0; lo+w <= len(run); lo++ {
			m := run[lo].hash
			for j := lo + 1; j < lo+w; j++ {
				if run[j].hash < m {
					m = run[j].hash
				}
			}
			for j := lo; j < lo+w; j++ {
				if run[j].hash == m {
					picked[j] = true
				}
			}
		}
		for j, p := range picked {
			if p {
				out = append(out, Minimizer{Hash: run[j].hash, Pos: run[j].pos, Rev: run[j].rev})
			}
		}
	}
	return out
}
