package ksw2

import (
	"math/rand"
	"testing"

	"logan/internal/seq"
)

// affineExhaustive is the quadratic affine-gap oracle: the exact maximum
// extension score over all prefix pairs (Gotoh's algorithm, no pruning).
func affineExhaustive(q, t seq.Seq, p Params) (int32, int, int) {
	m, n := len(q), len(t)
	if m == 0 || n == 0 {
		return 0, 0, 0
	}
	hPrev := make([]int32, m+1)
	ePrev := make([]int32, m+1)
	hCur := make([]int32, m+1)
	eCur := make([]int32, m+1)
	best, bi, bj := int32(0), 0, 0
	hPrev[0] = 0
	ePrev[0] = NegInf
	for j := 1; j <= m; j++ {
		hPrev[j] = -(p.GapOpen + int32(j)*p.GapExt)
		ePrev[j] = NegInf
	}
	for i := 1; i <= n; i++ {
		hCur[0] = -(p.GapOpen + int32(i)*p.GapExt)
		eCur[0] = NegInf
		f := NegInf
		for j := 1; j <= m; j++ {
			diag := hPrev[j-1]
			if q[j-1] == t[i-1] {
				diag += p.Match
			} else {
				diag -= p.Mismatch
			}
			ev := hPrev[j] - p.GapOpen - p.GapExt
			if v := ePrev[j] - p.GapExt; v > ev {
				ev = v
			}
			fv := hCur[j-1] - p.GapOpen - p.GapExt
			if v := f - p.GapExt; v > fv {
				fv = v
			}
			s := diag
			if ev > s {
				s = ev
			}
			if fv > s {
				s = fv
			}
			hCur[j] = s
			eCur[j] = ev
			f = fv
			if s > best {
				best, bi, bj = s, i, j
			}
		}
		hPrev, hCur = hCur, hPrev
		ePrev, eCur = eCur, ePrev
	}
	return best, bj, bi
}

func TestExtendZIdentical(t *testing.T) {
	p := MinimapParams(100)
	s := seq.MustNew("ACGTACGTACGTACGTACGT")
	r := ExtendZ(s, s, p)
	if r.Score != int32(len(s))*p.Match {
		t.Fatalf("identical score = %d, want %d", r.Score, int32(len(s))*p.Match)
	}
	if r.QueryEnd != len(s) || r.TargetEnd != len(s) {
		t.Fatalf("ends (%d,%d), want (%d,%d)", r.QueryEnd, r.TargetEnd, len(s), len(s))
	}
	if r.ZDropped {
		t.Fatal("identical pair z-dropped")
	}
}

func TestExtendZEmpty(t *testing.T) {
	p := MinimapParams(100)
	s := seq.MustNew("ACGT")
	if r := ExtendZ(nil, s, p); r.Score != 0 || r.Cells != 0 {
		t.Fatalf("empty query: %+v", r)
	}
	if r := ExtendZ(s, nil, p); r.Score != 0 || r.Cells != 0 {
		t.Fatalf("empty target: %+v", r)
	}
}

func TestExtendZMatchesExhaustiveNoZdrop(t *testing.T) {
	// With Z-drop disabled the banded code must agree exactly with the
	// full Gotoh DP.
	rng := rand.New(rand.NewSource(1))
	p := MinimapParams(0)
	for trial := 0; trial < 60; trial++ {
		q := seq.RandSeq(rng, 1+rng.Intn(40))
		tt := seq.RandSeq(rng, 1+rng.Intn(40))
		got := ExtendZ(q, tt, p)
		want, _, _ := affineExhaustive(q, tt, p)
		if got.Score != want {
			t.Fatalf("trial %d: banded=%d exhaustive=%d\nq=%s\nt=%s", trial, got.Score, want, q, tt)
		}
	}
}

func TestExtendZMatchesExhaustiveLargeZ(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 40; trial++ {
		base := seq.RandSeq(rng, 50+rng.Intn(100))
		mut := seq.Mutate(rng, base, seq.UniformProfile(0.15))
		p := MinimapParams(1 << 24)
		got := ExtendZ(base, mut, p)
		want, _, _ := affineExhaustive(base, mut, p)
		if got.Score != want {
			t.Fatalf("trial %d: large-Z banded=%d exhaustive=%d", trial, got.Score, want)
		}
	}
}

func TestExtendZScoreBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		q := seq.RandSeq(rng, 1+rng.Intn(80))
		tt := seq.RandSeq(rng, 1+rng.Intn(80))
		p := MinimapParams(int32(10 + rng.Intn(200)))
		got := ExtendZ(q, tt, p)
		exact, _, _ := affineExhaustive(q, tt, p)
		if got.Score > exact {
			t.Fatalf("banded score %d exceeds exhaustive %d", got.Score, exact)
		}
		if got.Score < 0 {
			t.Fatalf("negative extension score %d (origin scores 0)", got.Score)
		}
	}
}

func TestExtendZBandGrowsWithZ(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	base := seq.RandSeq(rng, 3000)
	mut := seq.Mutate(rng, base, seq.PacBioProfile(0.15))
	var prevBand int
	var prevCells int64
	for _, z := range []int32{10, 100, 1000} {
		r := ExtendZ(base, mut, MinimapParams(z))
		if r.MaxBand < prevBand || r.Cells < prevCells {
			t.Fatalf("band/cells shrank when Z grew: z=%d band=%d cells=%d", z, r.MaxBand, r.Cells)
		}
		prevBand, prevCells = r.MaxBand, r.Cells
	}
	// The growth must be substantial: Z=1000 explores an order of
	// magnitude more than Z=10. This is Table III's cost driver.
	small := ExtendZ(base, mut, MinimapParams(10))
	large := ExtendZ(base, mut, MinimapParams(1000))
	if large.Cells < 10*small.Cells {
		t.Fatalf("cells grew only %dx with 100x Z", large.Cells/max64(small.Cells, 1))
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func TestExtendZDivergentDrops(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	q := seq.RandSeq(rng, 3000)
	tt := seq.RandSeq(rng, 3000)
	r := ExtendZ(q, tt, MinimapParams(50))
	if !r.ZDropped {
		t.Fatal("divergent pair did not z-drop")
	}
	if r.Rows > 500 {
		t.Fatalf("divergent pair processed %d rows before dropping", r.Rows)
	}
}

func TestExtendZVecOpsAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	base := seq.RandSeq(rng, 500)
	mut := seq.Mutate(rng, base, seq.UniformProfile(0.1))
	r := ExtendZ(base, mut, MinimapParams(100))
	if r.VecOps <= 0 {
		t.Fatal("no vector ops accounted")
	}
	// Vector ops must be consistent with cells: at most one vector chunk
	// per 1 cell, at least one per 8.
	if r.VecOps < r.Cells/8*RowVectorOps/2 || r.VecOps > (r.Cells+int64(r.Rows)*8)*RowVectorOps {
		t.Fatalf("vec ops %d inconsistent with cells %d", r.VecOps, r.Cells)
	}
	if r.WorkingSetBytes() != r.MaxBand*6 {
		t.Fatalf("working set = %d, want %d", r.WorkingSetBytes(), r.MaxBand*6)
	}
}

func TestExtendSeedPair(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pairs := seq.RandPairSet(rng, seq.PairSetOptions{N: 10, MinLen: 300, MaxLen: 500, ErrorRate: 0.1, SeedLen: 17})
	p := MinimapParams(200)
	for _, pr := range pairs {
		l, r, score := ExtendSeed(pr, p)
		if score != l.Score+r.Score+17*p.Match {
			t.Fatalf("combined score %d mismatch", score)
		}
		if score < 17*p.Match {
			t.Fatalf("score %d below seed-only score", score)
		}
	}
}

func TestExtendBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pairs := seq.RandPairSet(rng, seq.PairSetOptions{N: 32, MinLen: 200, MaxLen: 400, ErrorRate: 0.15, SeedLen: 17})
	p := MinimapParams(100)
	par, stats := ExtendBatch(pairs, p, 4)
	ser, _ := ExtendBatch(pairs, p, 1)
	for i := range pairs {
		if par[i].Score != ser[i].Score {
			t.Fatalf("pair %d: parallel %d != serial %d", i, par[i].Score, ser[i].Score)
		}
	}
	if stats.Pairs != 32 || stats.Cells == 0 || stats.MeanBand() <= 0 {
		t.Fatalf("stats: %+v", stats)
	}
	if _, empty := ExtendBatch(nil, p, 4); empty.Pairs != 0 {
		t.Fatal("empty batch produced stats")
	}
}

func BenchmarkExtendZ(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	base := seq.RandSeq(rng, 5000)
	mut := seq.Mutate(rng, base, seq.PacBioProfile(0.15))
	p := MinimapParams(100)
	b.ResetTimer()
	var cells int64
	for i := 0; i < b.N; i++ {
		r := ExtendZ(base, mut, p)
		cells += r.Cells
	}
	b.ReportMetric(float64(cells)/b.Elapsed().Seconds()/1e9, "GCUPS")
}
