// Package ksw2 reimplements the Z-drop extension alignment of Suzuki &
// Kasahara as shipped in ksw2, minimap2's alignment kernel — the CPU
// baseline of the paper's Table III / Fig. 9. The recurrence follows the
// ksw_extz reference implementation: affine gaps, row-wise dynamic
// programming over the target with an adaptive band, and the Z-drop
// termination rule that penalizes divergence from the best cell's diagonal.
//
// The SSE2 vectorization of the original is represented in two ways: the
// inner loop's operation counts are reported per row at 128-bit vector
// granularity (see RowVectorOps), and the Skylake CPU model in
// internal/perfmodel converts them into time with the cache-pressure curve
// that collapses ksw2's throughput once the band outgrows L1 — the effect
// behind Table III's 3213-second X=5000 row.
package ksw2

import (
	"math"

	"logan/internal/seq"
	"logan/internal/simd"
)

// NegInf is the dead-cell sentinel, kept far from the int32 edge.
const NegInf int32 = math.MinInt32 / 2

// Params is the ksw2 scoring configuration. Gap penalties are positive
// magnitudes, as in ksw2's API: a gap of length l costs GapOpen + l*GapExt.
type Params struct {
	Match    int32 // match score (ksw2 'a', positive)
	Mismatch int32 // mismatch penalty (ksw2 'b', positive magnitude)
	GapOpen  int32 // gap open penalty (positive)
	GapExt   int32 // gap extend penalty (positive)
	ZDrop    int32 // Z-drop threshold; <= 0 disables
}

// MinimapParams returns minimap2's default DNA scoring (a=2, b=4, q=4,
// e=2) with the given Z-drop threshold, the configuration the paper
// benchmarks against.
func MinimapParams(zdrop int32) Params {
	return Params{Match: 2, Mismatch: 4, GapOpen: 4, GapExt: 2, ZDrop: zdrop}
}

// Result reports one Z-drop extension.
type Result struct {
	Score     int32 // best extension score (>= 0, score at origin)
	QueryEnd  int   // query prefix length of the best cell
	TargetEnd int   // target prefix length of the best cell
	ZDropped  bool  // true if the Z-drop rule ended the extension
	Cells     int64 // DP cells updated
	Rows      int   // target rows processed
	MaxBand   int   // widest row band
	SumBand   int64 // total band width over rows
	VecOps    int64 // 128-bit vector operations the SSE2 kernel would issue
}

// WorkingSetBytes returns the per-pair cache working set of the row
// arrays (H and E as int16 in the SSE2 kernel, plus the query profile),
// the quantity the Skylake cache model keys on.
func (r Result) WorkingSetBytes() int { return r.MaxBand * (2 + 2 + 2) }

// RowVectorOps is the number of 128-bit operations per DP cell chunk the
// SSE2 kernel issues per 8 cells: loads, shifts, compare/blend for the
// score, adds and maxes for H/E/F, and the store.
const RowVectorOps = 10

// ExtendZ extends the alignment of q and t from their origins, maximizing
// the affine-gap score over all prefix pairs, with ksw2's Z-drop rule: let
// (i*, j*) be the best cell so far; a cell (i, j) is dead when
//
//	H(i,j) < H(i*,j*) - zdrop - |(i-i*) - (j-j*)| * GapExt
//
// and the extension stops when a whole row dies or the row maximum
// triggers the rule. Dead cells at the row edges shrink the band, so the
// explored area grows with ZDrop — linearly for related sequences — which
// is the cost behaviour Table III exhibits.
func ExtendZ(q, t seq.Seq, p Params) Result {
	m, n := len(q), len(t)
	res := Result{}
	if m == 0 || n == 0 {
		return res
	}

	// H[j], E[j] for the previous row; j indexes query prefix length.
	h := make([]int32, m+1)
	e := make([]int32, m+1)
	hNew := make([]int32, m+1)
	eNew := make([]int32, m+1)

	// Row 0: leading query gaps.
	h[0] = 0
	e[0] = NegInf
	best := int32(0)
	bi, bj := 0, 0
	st, en := 0, m
	for j := 1; j <= m; j++ {
		h[j] = -(p.GapOpen + int32(j)*p.GapExt)
		e[j] = NegInf
		if p.ZDrop > 0 && h[j] < -p.ZDrop {
			en = j
			break
		}
	}
	for j := en + 1; j <= m; j++ {
		h[j] = NegInf
		e[j] = NegInf
	}
	res.Rows = 1
	res.Cells = int64(en + 1)
	res.SumBand = int64(en + 1)
	res.MaxBand = en + 1

	for i := 1; i <= n; i++ {
		// Row i: H(i, j) over the band [st, en].
		ti := t[i-1]
		// First cell of the band.
		rowBest := NegInf
		rowBestJ := st
		f := NegInf // F(i, st-1) is unreachable inside the band
		for j := st; j <= en; j++ {
			var diag int32 = NegInf
			if j >= 1 {
				diag = h[j-1]
				if diag > NegInf {
					if q[j-1] == ti {
						diag += p.Match
					} else {
						diag -= p.Mismatch
					}
				}
			} else {
				// j == 0: leading target gaps.
				diag = NegInf
			}
			// E: gap in the query direction (from the row above).
			ev := NegInf
			if hv := h[j]; hv > NegInf {
				ev = hv - p.GapOpen - p.GapExt
			}
			if e[j] > NegInf && e[j]-p.GapExt > ev {
				ev = e[j] - p.GapExt
			}
			// F: gap in the target direction (left neighbor, this row).
			score := diag
			if ev > score {
				score = ev
			}
			if f > score {
				score = f
			}
			if j == 0 {
				// H(i, 0) = leading target gap.
				score = -(p.GapOpen + int32(i)*p.GapExt)
				ev = NegInf
			}
			hNew[j] = score
			eNew[j] = ev
			if score > NegInf {
				nf := score - p.GapOpen - p.GapExt
				if f > NegInf && f-p.GapExt > nf {
					nf = f - p.GapExt
				}
				f = nf
			} else if f > NegInf {
				f -= p.GapExt
			}
			if score > rowBest {
				rowBest = score
				rowBestJ = j
			}
		}
		width := en - st + 1
		res.Cells += int64(width)
		res.SumBand += int64(width)
		res.Rows++
		if width > res.MaxBand {
			res.MaxBand = width
		}
		res.VecOps += int64((width+simd.Lanes-1)/simd.Lanes) * RowVectorOps

		if rowBest > best {
			best = rowBest
			bi, bj = i, rowBestJ
		} else if p.ZDrop > 0 {
			// Z-drop test on the row maximum (ksw2's early exit).
			diagDiff := (i - bi) - (rowBestJ - bj)
			if diagDiff < 0 {
				diagDiff = -diagDiff
			}
			if rowBest < best-p.ZDrop-int32(diagDiff)*p.GapExt {
				res.ZDropped = true
				break
			}
		}

		// Trim dead cells from the band edges for the next row. A cell is
		// dead when it can no longer climb back above best - zdrop.
		if p.ZDrop > 0 {
			dead := best - p.ZDrop
			for st <= en && hNew[st] < dead && eNew[st] < dead {
				st++
			}
			for en >= st && hNew[en] < dead && eNew[en] < dead {
				en--
			}
			if st > en {
				res.ZDropped = true
				break
			}
		}
		// The band can extend one cell right as the row advances.
		if en < m {
			en++
			hNew[en] = NegInf
			eNew[en] = NegInf
		}
		// Cells left of st in the new row arrays are stale: mark the
		// boundary cell dead so the diagonal read at st is correct.
		if st > 0 {
			hNew[st-1] = NegInf
			eNew[st-1] = NegInf
		}
		h, hNew = hNew, h
		e, eNew = eNew, e
	}

	res.Score = best
	res.QueryEnd = bj
	res.TargetEnd = bi
	return res
}

// ExtendSeed performs ksw2-style seed-and-extend on a pair: left extension
// on reversed prefixes, right extension on suffixes, combined with the
// exact seed (the same protocol the paper uses to benchmark ksw2 against
// LOGAN on identical inputs).
func ExtendSeed(pair seq.Pair, p Params) (left, right Result, score int32) {
	q, t := pair.Query, pair.Target
	left = ExtendZ(q.Sub(0, pair.SeedQPos).Reverse(), t.Sub(0, pair.SeedTPos).Reverse(), p)
	right = ExtendZ(q.Sub(pair.SeedQPos+pair.SeedLen, len(q)), t.Sub(pair.SeedTPos+pair.SeedLen, len(t)), p)
	score = left.Score + right.Score + int32(pair.SeedLen)*p.Match
	return left, right, score
}
