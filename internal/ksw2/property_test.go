package ksw2

import (
	"math/rand"
	"testing"
	"testing/quick"

	"logan/internal/seq"
)

// TestExtendZRandomParamsProperty: with Z-drop disabled, the banded code
// must equal the exhaustive Gotoh DP for arbitrary valid affine
// parameters; with Z-drop enabled it must never exceed it.
func TestExtendZRandomParamsProperty(t *testing.T) {
	f := func(seed int64, aRaw, bRaw, qRaw, eRaw, zRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		p := Params{
			Match:    int32(aRaw%4) + 1,
			Mismatch: int32(bRaw%6) + 1,
			GapOpen:  int32(qRaw % 8),
			GapExt:   int32(eRaw%4) + 1,
		}
		q := seq.RandSeq(rng, 1+rng.Intn(50))
		tt := seq.RandSeq(rng, 1+rng.Intn(50))

		p.ZDrop = 0
		exact := ExtendZ(q, tt, p)
		want, _, _ := affineExhaustive(q, tt, p)
		if exact.Score != want {
			return false
		}
		p.ZDrop = int32(zRaw%200) + 1
		pruned := ExtendZ(q, tt, p)
		return pruned.Score <= want && pruned.Score >= 0 && pruned.Cells <= exact.Cells
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestExtendZSymmetry: swapping query and target transposes the DP.
func TestExtendZSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := MinimapParams(0)
	for trial := 0; trial < 30; trial++ {
		q := seq.RandSeq(rng, 1+rng.Intn(60))
		tt := seq.RandSeq(rng, 1+rng.Intn(60))
		a := ExtendZ(q, tt, p)
		b := ExtendZ(tt, q, p)
		if a.Score != b.Score {
			t.Fatalf("asymmetric: %d vs %d\nq=%s\nt=%s", a.Score, b.Score, q, tt)
		}
	}
}

// TestExtendZMonotoneInZ: more Z never lowers the score.
func TestExtendZMonotoneInZ(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	base := seq.RandSeq(rng, 400)
	mut := seq.Mutate(rng, base, seq.PacBioProfile(0.15))
	prev := int32(-1)
	for _, z := range []int32{1, 5, 20, 80, 300, 1200, 1 << 22} {
		r := ExtendZ(base, mut, MinimapParams(z))
		if r.Score < prev {
			t.Fatalf("score decreased at z=%d: %d < %d", z, r.Score, prev)
		}
		prev = r.Score
	}
}
