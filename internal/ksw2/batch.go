package ksw2

import (
	"runtime"
	"sync"

	"logan/internal/seq"
)

// PairResult is the seed-and-extend outcome for one pair.
type PairResult struct {
	Left, Right Result
	Score       int32
}

// BatchStats aggregates the work of a batch, feeding the Skylake model.
type BatchStats struct {
	Pairs    int
	Cells    int64
	Rows     int64
	MaxBand  int
	SumBand  int64
	VecOps   int64
	ZDropped int
}

// MeanBand returns the mean row-band width over the batch.
func (s BatchStats) MeanBand() float64 {
	if s.Rows == 0 {
		return 0
	}
	return float64(s.SumBand) / float64(s.Rows)
}

// ExtendBatch runs ksw2 seed-and-extend over all pairs on `workers`
// goroutines (0 = GOMAXPROCS), the multi-threaded harness the paper's
// Skylake runs use.
func ExtendBatch(pairs []seq.Pair, p Params, workers int) ([]PairResult, BatchStats) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pairs) && len(pairs) > 0 {
		workers = len(pairs)
	}
	results := make([]PairResult, len(pairs))
	var wg sync.WaitGroup
	idxCh := make(chan int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range idxCh {
				l, r, score := ExtendSeed(pairs[idx], p)
				results[idx] = PairResult{Left: l, Right: r, Score: score}
			}
		}()
	}
	for i := range pairs {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()

	var stats BatchStats
	stats.Pairs = len(pairs)
	for i := range results {
		for _, r := range []Result{results[i].Left, results[i].Right} {
			stats.Cells += r.Cells
			stats.Rows += int64(r.Rows)
			stats.SumBand += r.SumBand
			stats.VecOps += r.VecOps
			if r.MaxBand > stats.MaxBand {
				stats.MaxBand = r.MaxBand
			}
			if r.ZDropped {
				stats.ZDropped++
			}
		}
	}
	return results, stats
}
