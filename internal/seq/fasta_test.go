package seq

import (
	"errors"
	"io"
	"strings"
	"testing"
	"testing/iotest"
)

func TestFastaReaderStreams(t *testing.T) {
	in := ">r1 extra tokens\nacgt\nACGT\n\n>r2\nNNNN\n>r3\nTTTT"
	fr := NewFastaReader(strings.NewReader(in))
	want := []Record{
		{Name: "r1", Seq: MustNew("ACGTACGT")},
		{Name: "r2", Seq: MustNew("NNNN")},
		{Name: "r3", Seq: MustNew("TTTT")},
	}
	for i, w := range want {
		rec, err := fr.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if rec.Name != w.Name || rec.Seq.String() != w.Seq.String() {
			t.Fatalf("record %d: got %q/%q, want %q/%q", i, rec.Name, rec.Seq, w.Name, w.Seq)
		}
	}
	if _, err := fr.Next(); err != io.EOF {
		t.Fatalf("after last record: err = %v, want io.EOF", err)
	}
	// EOF is sticky.
	if _, err := fr.Next(); err != io.EOF {
		t.Fatalf("repeated Next: err = %v, want io.EOF", err)
	}
}

func TestFastaReaderCRLFAndLongLines(t *testing.T) {
	// One sequence line far beyond bufio.Scanner's default token size
	// would break a Scanner-based parser; the streaming reader must not
	// care.
	long := strings.Repeat("ACGT", 1<<18) // 1 MiB line
	in := ">a\r\n" + long + "\r\n>b\r\nACGT\r\n"
	fr := NewFastaReader(strings.NewReader(in))
	rec, err := fr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if rec.Name != "a" || len(rec.Seq) != len(long) {
		t.Fatalf("got %q len %d, want a len %d", rec.Name, len(rec.Seq), len(long))
	}
	rec, err = fr.Next()
	if err != nil || rec.Name != "b" || rec.Seq.String() != "ACGT" {
		t.Fatalf("second record %q/%q err %v", rec.Name, rec.Seq, err)
	}
}

func TestFastaReaderErrors(t *testing.T) {
	if _, err := NewFastaReader(strings.NewReader("ACGT\n")).Next(); err == nil || err == io.EOF {
		t.Error("data before header not rejected")
	}
	fr := NewFastaReader(strings.NewReader(">r\nAC!T\n"))
	if _, err := fr.Next(); err == nil || !errors.Is(err, ErrBadBase) {
		t.Errorf("invalid base: err = %v, want ErrBadBase", err)
	}
	if _, err := fr.Next(); err != io.EOF {
		t.Error("reader not terminal after a parse error")
	}

	// A mid-record transport error must surface, not silently truncate
	// the record.
	broken := io.MultiReader(strings.NewReader(">r\nACGT\n"), iotest.ErrReader(errors.New("boom")))
	fr = NewFastaReader(broken)
	if _, err := fr.Next(); err == nil || err == io.EOF {
		t.Errorf("transport error: err = %v, want boom", err)
	}
}

func TestFastaReaderBaseNormalization(t *testing.T) {
	// The overlap and mapping paths both ingest through FastaReader; this
	// table pins the shared acceptance rules: case-insensitive ACGT, U→T,
	// N and IUPAC ambiguity codes →N, everything else ErrBadBase.
	cases := []struct {
		name string
		in   string
		want string // "" with bad=true means ErrBadBase
		bad  bool
	}{
		{"upper", "ACGT", "ACGT", false},
		{"lower", "acgt", "ACGT", false},
		{"mixed case", "AcGtNn", "ACGTNN", false},
		{"uracil", "ACGU", "ACGT", false},
		{"uracil lower", "acgu", "ACGT", false},
		{"iupac upper", "RYSWKMBDHV", "NNNNNNNNNN", false},
		{"iupac lower", "ryswkmbdhv", "NNNNNNNNNN", false},
		{"iupac embedded", "ACGTRACGTY", "ACGTNACGTN", false},
		{"digit", "ACG1T", "", true},
		{"gap dash", "ACG-T", "", true},
		{"asterisk", "ACGT*", "", true},
		{"interior space rejected", "AC GT", "", true},
		{"punctuation", "AC.GT", "", true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			fr := NewFastaReader(strings.NewReader(">r\n" + c.in + "\n"))
			rec, err := fr.Next()
			if c.bad {
				if err == nil || !errors.Is(err, ErrBadBase) {
					t.Fatalf("input %q: err = %v, want ErrBadBase", c.in, err)
				}
				return
			}
			if err != nil {
				t.Fatalf("input %q: %v", c.in, err)
			}
			if rec.Seq.String() != c.want {
				t.Fatalf("input %q normalized to %q, want %q", c.in, rec.Seq, c.want)
			}
			// The normalized output must be canonical for every downstream
			// consumer (zero-copy FromBytes, k-mer scan, packing).
			if _, err := FromBytes(rec.Seq); err != nil {
				t.Fatalf("normalized output %q not canonical: %v", rec.Seq, err)
			}
		})
	}
}

func TestFastqBaseNormalization(t *testing.T) {
	// FASTQ rides the same table so both ingestion formats agree.
	in := "@r\nacgurY\n+\n!!!!!!\n"
	recs, err := ReadFastq(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := recs[0].Seq.String(); got != "ACGTNN" {
		t.Fatalf("FASTQ normalized to %q, want ACGTNN", got)
	}
	if _, err := ReadFastq(strings.NewReader("@r\nAC-T\n+\n!!!!\n")); err == nil {
		t.Fatal("FASTQ accepted a gap character")
	}
}

func TestFastaReaderEmptyInput(t *testing.T) {
	if _, err := NewFastaReader(strings.NewReader("")).Next(); err != io.EOF {
		t.Errorf("empty input: err = %v, want io.EOF", err)
	}
	// Header-only record parses as an empty sequence.
	fr := NewFastaReader(strings.NewReader(">only\n"))
	rec, err := fr.Next()
	if err != nil || rec.Name != "only" || len(rec.Seq) != 0 {
		t.Errorf("header-only: %q/%q err %v", rec.Name, rec.Seq, err)
	}
}
