// Package seq provides the DNA sequence toolkit used throughout LOGAN-Go:
// byte and 2-bit packed sequence representations, reverse and
// reverse-complement transforms, k-mer encoding, FASTA/FASTQ I/O, random
// sequence generation and sequencing-error channels.
//
// The alphabet is the DNA alphabet {A, C, G, T} plus the ambiguity
// character N. Internally bases are stored either as ASCII bytes (Seq) or
// packed two bits per base (Packed); the packed form is what the simulated
// GPU kernels consume, mirroring LOGAN's device-side layout.
package seq

import (
	"errors"
	"fmt"
	"strings"
)

// Base codes in the 2-bit alphabet.
const (
	BaseA = 0
	BaseC = 1
	BaseG = 2
	BaseT = 3
)

// Alphabet is the canonical DNA alphabet in code order.
const Alphabet = "ACGT"

// ErrBadBase reports a character outside the {A,C,G,T,N} alphabet.
var ErrBadBase = errors.New("seq: invalid base character")

// Seq is a DNA sequence stored as upper-case ASCII bytes.
type Seq []byte

// encode maps ASCII to 2-bit code; 0xFF marks invalid, 0xFE marks N.
var encode [256]byte

// complementTab maps an ASCII base to its complement.
var complementTab [256]byte

// canonical marks the bytes a normalized Seq may contain (upper-case
// ACGTN), the fast path of FromBytes.
var canonical [256]bool

func init() {
	for i := range encode {
		encode[i] = 0xFF
	}
	set := func(b byte, code byte) {
		encode[b] = code
		encode[b|0x20] = code // lower case
	}
	set('A', BaseA)
	set('C', BaseC)
	set('G', BaseG)
	set('T', BaseT)
	encode['N'] = 0xFE
	encode['n'] = 0xFE
	for _, c := range []byte("ACGTN") {
		canonical[c] = true
	}

	for i := range complementTab {
		complementTab[i] = 'N'
	}
	complementTab['A'], complementTab['a'] = 'T', 'T'
	complementTab['C'], complementTab['c'] = 'G', 'G'
	complementTab['G'], complementTab['g'] = 'C', 'C'
	complementTab['T'], complementTab['t'] = 'A', 'A'
}

// New validates and normalizes s into a Seq (upper-case, ACGTN only).
func New(s string) (Seq, error) {
	out := make(Seq, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		code := encode[c]
		if code == 0xFF {
			return nil, fmt.Errorf("%w: %q at offset %d", ErrBadBase, c, i)
		}
		if code == 0xFE {
			out[i] = 'N'
		} else {
			out[i] = Alphabet[code]
		}
	}
	return out, nil
}

// FromBytes validates b and returns it as a Seq without copying when every
// base is already canonical (upper-case ACGTN): the returned Seq aliases b,
// and the caller must not mutate b while the Seq is in use. Inputs holding
// lower-case bases are normalized into a fresh copy, so FromBytes never
// mutates b. This is the zero-copy ingestion path of the batch engine,
// which would otherwise copy every sequence twice per call.
func FromBytes(b []byte) (Seq, error) {
	for i := 0; i < len(b); i++ {
		c := b[i]
		if canonical[c] {
			continue
		}
		code := encode[c]
		if code == 0xFF {
			return nil, fmt.Errorf("%w: %q at offset %d", ErrBadBase, c, i)
		}
		// Lower-case tail: fall back to the normalizing copy. The prefix
		// b[:i] is already canonical.
		out := make(Seq, len(b))
		copy(out, b[:i])
		for ; i < len(b); i++ {
			code := encode[b[i]]
			switch {
			case code == 0xFF:
				return nil, fmt.Errorf("%w: %q at offset %d", ErrBadBase, b[i], i)
			case code == 0xFE:
				out[i] = 'N'
			default:
				out[i] = Alphabet[code]
			}
		}
		return out, nil
	}
	return Seq(b), nil
}

// MustNew is New that panics on invalid input; for tests and literals.
func MustNew(s string) Seq {
	q, err := New(s)
	if err != nil {
		panic(err)
	}
	return q
}

// Len returns the number of bases.
func (s Seq) Len() int { return len(s) }

// String returns the sequence as a plain string.
func (s Seq) String() string { return string(s) }

// Clone returns a deep copy of s.
func (s Seq) Clone() Seq {
	out := make(Seq, len(s))
	copy(out, s)
	return out
}

// Code returns the 2-bit code of the base at position i.
// N maps to BaseA; callers that must distinguish N should test IsN first.
func (s Seq) Code(i int) byte {
	c := encode[s[i]]
	if c >= 4 {
		return BaseA
	}
	return c
}

// IsN reports whether position i holds the ambiguity character.
func (s Seq) IsN(i int) bool { return encode[s[i]] == 0xFE }

// Reverse returns the sequence with base order reversed (no complement).
// LOGAN reverses the query of the left extension so that both extensions
// stream memory in the forward direction (paper Fig. 6).
func (s Seq) Reverse() Seq {
	out := make(Seq, len(s))
	for i, c := range s {
		out[len(s)-1-i] = c
	}
	return out
}

// Complement returns the base-wise complement without reversing.
func (s Seq) Complement() Seq {
	out := make(Seq, len(s))
	for i, c := range s {
		out[i] = complementTab[c]
	}
	return out
}

// RevComp returns the reverse complement of s.
func (s Seq) RevComp() Seq {
	out := make(Seq, len(s))
	for i, c := range s {
		out[len(s)-1-i] = complementTab[c]
	}
	return out
}

// Sub returns the subsequence [lo, hi). It panics if the range is invalid,
// matching Go slice semantics.
func (s Seq) Sub(lo, hi int) Seq { return s[lo:hi:hi] }

// AppendReverse appends s to dst in reverse base order (no complement):
// the Fig. 6 staging reversal, shared by the CPU workspace and the GPU
// host pipeline so neither allocates an intermediate sequence.
func AppendReverse(dst, s []byte) []byte {
	for i := len(s) - 1; i >= 0; i-- {
		dst = append(dst, s[i])
	}
	return dst
}

// Identity returns the fraction of equal bases at equal offsets of a and b
// over the shorter length. It is a cheap similarity proxy used by tests.
func Identity(a, b Seq) float64 {
	n := min(len(a), len(b))
	if n == 0 {
		return 0
	}
	same := 0
	for i := 0; i < n; i++ {
		if a[i] == b[i] {
			same++
		}
	}
	return float64(same) / float64(n)
}

// GC returns the GC fraction of s (N counts as neither).
func GC(s Seq) float64 {
	if len(s) == 0 {
		return 0
	}
	gc := 0
	for _, c := range s {
		if c == 'G' || c == 'C' {
			gc++
		}
	}
	return float64(gc) / float64(len(s))
}

// Valid reports whether every character of s is in the ACGTN alphabet.
func Valid(s []byte) bool {
	for _, c := range s {
		if encode[c] == 0xFF {
			return false
		}
	}
	return true
}

// Format wraps s into lines of the given width, FASTA style.
func Format(s Seq, width int) string {
	if width <= 0 {
		return string(s)
	}
	var b strings.Builder
	for i := 0; i < len(s); i += width {
		end := min(i+width, len(s))
		b.Write(s[i:end])
		b.WriteByte('\n')
	}
	return b.String()
}
