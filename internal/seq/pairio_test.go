package seq

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestPairIORoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in := RandPairSet(rng, PairSetOptions{N: 15, MinLen: 50, MaxLen: 120, ErrorRate: 0.1, SeedLen: 11})
	var buf bytes.Buffer
	if err := WritePairs(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadPairs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip count %d != %d", len(out), len(in))
	}
	for i := range in {
		if string(out[i].Query) != string(in[i].Query) ||
			string(out[i].Target) != string(in[i].Target) ||
			out[i].SeedQPos != in[i].SeedQPos ||
			out[i].SeedTPos != in[i].SeedTPos ||
			out[i].SeedLen != in[i].SeedLen {
			t.Fatalf("pair %d differs after round trip", i)
		}
	}
}

func TestReadPairsErrors(t *testing.T) {
	cases := map[string]string{
		"field count":  "ACGT\tACGT\t0\t0\n",
		"bad base":     "ACXT\tACGT\t0\t0\t2\n",
		"bad number":   "ACGT\tACGT\tzero\t0\t2\n",
		"seed range":   "ACGT\tACGT\t3\t0\t4\n",
		"zero seed":    "ACGT\tACGT\t0\t0\t0\n",
		"negative pos": "ACGT\tACGT\t-1\t0\t2\n",
	}
	for name, in := range cases {
		if _, err := ReadPairs(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted %q", name, in)
		}
	}
	// Comments and blank lines are fine.
	ok := "# header\n\nACGT\tACGT\t0\t0\t4\n"
	pairs, err := ReadPairs(strings.NewReader(ok))
	if err != nil || len(pairs) != 1 {
		t.Fatalf("comment handling: %v, %d pairs", err, len(pairs))
	}
}
