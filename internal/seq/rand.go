package seq

import "math/rand"

// RandSeq returns a uniformly random ACGT sequence of length n drawn
// from rng. The generator is deterministic for a seeded rng, which the
// experiment harness relies on for reproducibility.
func RandSeq(rng *rand.Rand, n int) Seq {
	out := make(Seq, n)
	for i := range out {
		out[i] = Alphabet[rng.Intn(4)]
	}
	return out
}

// ErrorProfile describes a sequencing-error channel. Rates are per-base
// probabilities; they partition the total error rate into substitutions,
// insertions and deletions. Long-read (PacBio CLR) error profiles are
// indel-heavy; the paper's synthetic 100K-pair set uses a ~15% total rate.
type ErrorProfile struct {
	Sub float64 // substitution probability per base
	Ins float64 // insertion probability per base
	Del float64 // deletion probability per base
}

// Total returns the combined per-base error rate.
func (p ErrorProfile) Total() float64 { return p.Sub + p.Ins + p.Del }

// PacBioProfile returns an indel-heavy profile with the given total error
// rate split 1:4:4 among substitutions, insertions and deletions, the
// commonly cited CLR decomposition BELLA's model assumes.
func PacBioProfile(total float64) ErrorProfile {
	return ErrorProfile{Sub: total * 1.0 / 9.0, Ins: total * 4.0 / 9.0, Del: total * 4.0 / 9.0}
}

// UniformProfile splits the total error rate evenly across the three kinds.
func UniformProfile(total float64) ErrorProfile {
	return ErrorProfile{Sub: total / 3, Ins: total / 3, Del: total / 3}
}

// Mutate passes s through the error channel and returns the corrupted copy.
// Each position independently suffers a substitution (to a different base),
// an insertion of a random base before it, or a deletion.
func Mutate(rng *rand.Rand, s Seq, p ErrorProfile) Seq {
	out := make(Seq, 0, len(s)+len(s)/8)
	for i := 0; i < len(s); i++ {
		r := rng.Float64()
		switch {
		case r < p.Del:
			continue // base dropped
		case r < p.Del+p.Ins:
			out = append(out, Alphabet[rng.Intn(4)])
			out = append(out, s[i])
		case r < p.Del+p.Ins+p.Sub:
			c := s[i]
			nc := Alphabet[rng.Intn(4)]
			for nc == c {
				nc = Alphabet[rng.Intn(4)]
			}
			out = append(out, nc)
		default:
			out = append(out, s[i])
		}
	}
	return out
}

// Pair is one alignment work item: a query/target pair with a seed match
// (position in each sequence plus length), the unit LOGAN's host code
// batches onto the GPU.
type Pair struct {
	Query, Target      Seq
	SeedQPos, SeedTPos int
	SeedLen            int
	ID                 int
}

// PairSetOptions parameterizes RandPairSet.
type PairSetOptions struct {
	N           int           // number of pairs
	MinLen      int           // minimum read length
	MaxLen      int           // maximum read length
	ErrorRate   float64       // total per-base error rate between pair members
	SeedLen     int           // length of the exact seed planted at the seed position
	FracRelated float64       // fraction of pairs that truly overlap (rest are random)
	Profile     *ErrorProfile // optional explicit profile; defaults to PacBio split
	// SeedPosFrac places the seed at this fraction of the read length
	// (0 = default 0.5, mid-read). Overlap workloads put seeds near the
	// read starts, which makes the extensions sweep most of the matrix.
	SeedPosFrac float64
}

// RandPairSet generates the synthetic alignment workload the paper's
// evaluation uses: N read pairs with lengths in [MinLen, MaxLen] and the
// given error rate between the two members of each pair (paper §VI-A:
// 100K pairs, 2,500-7,500 bases, ~15% error). A FracRelated < 1 mixes in
// unrelated pairs, exercising X-drop's early-termination path.
func RandPairSet(rng *rand.Rand, opt PairSetOptions) []Pair {
	if opt.MinLen <= 0 || opt.MaxLen < opt.MinLen {
		panic("seq: invalid length range")
	}
	if opt.SeedLen <= 0 {
		opt.SeedLen = 17
	}
	prof := PacBioProfile(opt.ErrorRate)
	if opt.Profile != nil {
		prof = *opt.Profile
	}
	if opt.FracRelated == 0 {
		opt.FracRelated = 1
	}
	if opt.SeedPosFrac == 0 {
		opt.SeedPosFrac = 0.5
	}
	if opt.SeedPosFrac < 0 {
		opt.SeedPosFrac = 0
	}
	if opt.SeedPosFrac > 1 {
		opt.SeedPosFrac = 1
	}
	pairs := make([]Pair, 0, opt.N)
	for i := 0; i < opt.N; i++ {
		ln := opt.MinLen
		if opt.MaxLen > opt.MinLen {
			ln = opt.MinLen + rng.Intn(opt.MaxLen-opt.MinLen+1)
		}
		related := rng.Float64() < opt.FracRelated
		var q, t Seq
		var sq, st int
		if related {
			base := RandSeq(rng, ln)
			q = base
			t = Mutate(rng, base, prof)
			if len(t) < opt.SeedLen {
				t = RandSeq(rng, opt.SeedLen)
			}
			// Plant an exact seed at the configured position, as
			// BELLA's binning would produce.
			sq = int(float64(len(q)) * opt.SeedPosFrac)
			if sq+opt.SeedLen > len(q) {
				sq = max(0, len(q)-opt.SeedLen)
			}
			st = min(sq, len(t)-opt.SeedLen)
			if st < 0 {
				st = 0
			}
			copy(t[st:st+opt.SeedLen], q[sq:sq+opt.SeedLen])
		} else {
			q = RandSeq(rng, ln)
			t = RandSeq(rng, ln)
			sq = int(float64(len(q)) * opt.SeedPosFrac)
			st = int(float64(len(t)) * opt.SeedPosFrac)
			if sq+opt.SeedLen > len(q) {
				sq = max(0, len(q)-opt.SeedLen)
			}
			if st+opt.SeedLen > len(t) {
				st = max(0, len(t)-opt.SeedLen)
			}
			copy(t[st:st+opt.SeedLen], q[sq:sq+opt.SeedLen])
		}
		pairs = append(pairs, Pair{Query: q, Target: t, SeedQPos: sq, SeedTPos: st, SeedLen: opt.SeedLen, ID: i})
	}
	return pairs
}

// TotalBases returns the summed length of all sequences in the pair set,
// used by the GCUPS accounting.
func TotalBases(pairs []Pair) int {
	total := 0
	for _, p := range pairs {
		total += len(p.Query) + len(p.Target)
	}
	return total
}
