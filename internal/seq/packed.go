package seq

import "fmt"

// Packed is a 2-bit-per-base DNA sequence, the device-side representation
// consumed by the simulated GPU kernels. Four bases pack into one byte,
// little-endian within the byte: base i occupies bits (2*(i%4)) of word[i/4].
//
// N bases are not representable; PackLossy maps them to A (the same policy
// LOGAN's device buffers apply when the host uploads reads).
type Packed struct {
	words []byte
	n     int
}

// Pack converts s into a Packed sequence. It returns an error if s contains
// an N, since packing would silently change the sequence.
func Pack(s Seq) (Packed, error) {
	for i := range s {
		if s.IsN(i) {
			return Packed{}, fmt.Errorf("seq: cannot pack N at position %d", i)
		}
	}
	return PackLossy(s), nil
}

// PackLossy converts s into a Packed sequence mapping N to A.
func PackLossy(s Seq) Packed {
	p := Packed{words: make([]byte, (len(s)+3)/4), n: len(s)}
	for i := 0; i < len(s); i++ {
		p.words[i/4] |= s.Code(i) << uint(2*(i%4))
	}
	return p
}

// Len returns the number of bases.
func (p Packed) Len() int { return p.n }

// Bytes returns the backing byte slice (len = ceil(n/4)). The slice is the
// live storage; callers must not mutate it unless they own p.
func (p Packed) Bytes() []byte { return p.words }

// Code returns the 2-bit code of base i.
func (p Packed) Code(i int) byte {
	if i < 0 || i >= p.n {
		panic(fmt.Sprintf("seq: packed index %d out of range [0,%d)", i, p.n))
	}
	return (p.words[i/4] >> uint(2*(i%4))) & 3
}

// Unpack converts back into an ASCII Seq.
func (p Packed) Unpack() Seq {
	out := make(Seq, p.n)
	for i := 0; i < p.n; i++ {
		out[i] = Alphabet[p.Code(i)]
	}
	return out
}

// Reverse returns a new Packed with base order reversed.
func (p Packed) Reverse() Packed {
	out := Packed{words: make([]byte, len(p.words)), n: p.n}
	for i := 0; i < p.n; i++ {
		out.words[(p.n-1-i)/4] |= p.Code(i) << uint(2*((p.n-1-i)%4))
	}
	return out
}

// SizeBytes returns the storage footprint in bytes, the quantity the GPU
// memory accounting charges for a device-resident sequence.
func (p Packed) SizeBytes() int { return len(p.words) }
