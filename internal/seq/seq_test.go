package seq

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	s, err := New("acgtNACGT")
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if s.String() != "ACGTNACGT" {
		t.Fatalf("normalized = %q, want ACGTNACGT", s)
	}
	if _, err := New("ACGX"); err == nil {
		t.Fatal("New accepted invalid base X")
	}
}

func TestReverseComplement(t *testing.T) {
	s := MustNew("AACGTT")
	if got := s.Reverse().String(); got != "TTGCAA" {
		t.Errorf("Reverse = %q, want TTGCAA", got)
	}
	if got := s.Complement().String(); got != "TTGCAA" {
		t.Errorf("Complement = %q, want TTGCAA", got)
	}
	if got := s.RevComp().String(); got != "AACGTT" {
		t.Errorf("RevComp = %q, want AACGTT (palindrome)", got)
	}
	if got := MustNew("ACGTN").RevComp().String(); got != "NACGT" {
		t.Errorf("RevComp with N = %q, want NACGT", got)
	}
}

func TestReverseInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(n uint8) bool {
		s := RandSeq(rng, int(n))
		return bytes.Equal(s.Reverse().Reverse(), s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRevCompInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(n uint8) bool {
		s := RandSeq(rng, int(n))
		return bytes.Equal(s.RevComp().RevComp(), s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCodeRoundTrip(t *testing.T) {
	s := MustNew("ACGT")
	for i := 0; i < 4; i++ {
		if got := s.Code(i); got != byte(i) {
			t.Errorf("Code(%d) = %d, want %d", i, got, i)
		}
	}
	n := MustNew("N")
	if !n.IsN(0) {
		t.Error("IsN(N) = false")
	}
	if n.Code(0) != BaseA {
		t.Error("Code(N) should fall back to BaseA")
	}
}

func TestPackRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 3, 4, 5, 63, 64, 65, 1000} {
		s := RandSeq(rng, n)
		p, err := Pack(s)
		if err != nil {
			t.Fatalf("Pack(len=%d): %v", n, err)
		}
		if p.Len() != n {
			t.Fatalf("packed len = %d, want %d", p.Len(), n)
		}
		if got := p.Unpack(); !bytes.Equal(got, s) {
			t.Fatalf("round trip mismatch at n=%d", n)
		}
	}
}

func TestPackRejectsN(t *testing.T) {
	if _, err := Pack(MustNew("ACGNT")); err == nil {
		t.Fatal("Pack accepted N")
	}
	p := PackLossy(MustNew("ANA"))
	if got := p.Unpack().String(); got != "AAA" {
		t.Fatalf("PackLossy N mapping = %q, want AAA", got)
	}
}

func TestPackedReverse(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{1, 2, 7, 8, 9, 100} {
		s := RandSeq(rng, n)
		p, _ := Pack(s)
		if got := p.Reverse().Unpack(); !bytes.Equal(got, s.Reverse()) {
			t.Fatalf("Packed.Reverse mismatch at n=%d: %q vs %q", n, got, s.Reverse())
		}
	}
}

func TestPackedCodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Code out of range did not panic")
		}
	}()
	p := PackLossy(MustNew("ACG"))
	p.Code(3)
}

func TestKmerCodecEncodeDecode(t *testing.T) {
	c := MustKmerCodec(5)
	s := MustNew("ACGTACGTA")
	km, ok := c.Encode(s, 0)
	if !ok {
		t.Fatal("Encode failed on clean window")
	}
	if got := c.Decode(km).String(); got != "ACGTA" {
		t.Fatalf("Decode = %q, want ACGTA", got)
	}
	if _, ok := c.Encode(s, 4); !ok {
		t.Fatal("Encode failed at valid offset 4")
	}
	if _, ok := c.Encode(s, 5); ok {
		t.Fatal("Encode accepted out-of-range window")
	}
	if _, ok := c.Encode(MustNew("ACGNT"), 0); ok {
		t.Fatal("Encode accepted window containing N")
	}
}

func TestKmerCodecBounds(t *testing.T) {
	if _, err := NewKmerCodec(0); err == nil {
		t.Error("NewKmerCodec(0) accepted")
	}
	if _, err := NewKmerCodec(MaxK + 1); err == nil {
		t.Error("NewKmerCodec(32) accepted")
	}
	if _, err := NewKmerCodec(MaxK); err != nil {
		t.Errorf("NewKmerCodec(31): %v", err)
	}
}

func TestKmerRevCompInvolution(t *testing.T) {
	c := MustKmerCodec(11)
	f := func(raw uint64) bool {
		km := Kmer(raw) & ((1 << 22) - 1)
		return c.RevComp(c.RevComp(km)) == km
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKmerCanonicalStrandInvariance(t *testing.T) {
	c := MustKmerCodec(9)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		s := RandSeq(rng, 9)
		km, _ := c.Encode(s, 0)
		rc, _ := c.Encode(s.RevComp(), 0)
		if c.Canonical(km) != c.Canonical(rc) {
			t.Fatalf("canonical differs between strands for %s", s)
		}
	}
}

func TestKmerScanMatchesNaive(t *testing.T) {
	c := MustKmerCodec(7)
	rng := rand.New(rand.NewSource(6))
	s := RandSeq(rng, 300)
	s[40] = 'N' // force a restart
	s[41] = 'N'
	got := c.Scan(nil, s, false)
	var want []Positioned
	for i := 0; i+c.K <= len(s); i++ {
		if km, ok := c.Encode(s, i); ok {
			want = append(want, Positioned{Kmer: km, Pos: i})
		}
	}
	if len(got) != len(want) {
		t.Fatalf("Scan produced %d k-mers, naive %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Scan[%d] = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestKmerScanShortSeq(t *testing.T) {
	c := MustKmerCodec(9)
	if out := c.Scan(nil, MustNew("ACGT"), true); len(out) != 0 {
		t.Fatalf("Scan on short sequence returned %d k-mers", len(out))
	}
}

func TestMutateRate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := RandSeq(rng, 200000)
	m := Mutate(rng, s, UniformProfile(0.15))
	id := Identity(s, m)
	// With 15% errors including indels, prefix identity collapses, but
	// length should stay within a few percent (ins and del balance).
	ratio := float64(len(m)) / float64(len(s))
	if ratio < 0.93 || ratio > 1.07 {
		t.Fatalf("mutated length ratio %.3f outside [0.93,1.07]", ratio)
	}
	if id > 0.9 {
		t.Fatalf("identity %.3f too high for 15%% error channel", id)
	}
	if got := Mutate(rng, s, ErrorProfile{}); !bytes.Equal(got, s) {
		t.Fatal("zero-rate Mutate altered the sequence")
	}
}

func TestRandPairSet(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pairs := RandPairSet(rng, PairSetOptions{N: 50, MinLen: 100, MaxLen: 200, ErrorRate: 0.15, SeedLen: 17})
	if len(pairs) != 50 {
		t.Fatalf("got %d pairs, want 50", len(pairs))
	}
	for _, p := range pairs {
		if len(p.Query) < 100 || len(p.Query) > 200 {
			t.Fatalf("query length %d outside range", len(p.Query))
		}
		if p.SeedQPos+17 > len(p.Query) || p.SeedTPos+17 > len(p.Target) {
			t.Fatalf("seed outside sequence: %+v", p)
		}
		if !bytes.Equal(p.Query[p.SeedQPos:p.SeedQPos+17], p.Target[p.SeedTPos:p.SeedTPos+17]) {
			t.Fatal("planted seed does not match between pair members")
		}
	}
	if TotalBases(pairs) <= 0 {
		t.Fatal("TotalBases must be positive")
	}
}

func TestFastaRoundTrip(t *testing.T) {
	recs := []Record{
		{Name: "read1", Seq: MustNew("ACGTACGTACGT")},
		{Name: "read2", Seq: MustNew("GGGGCCCCNNNA")},
	}
	var buf bytes.Buffer
	if err := WriteFasta(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFasta(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "read1" || !bytes.Equal(got[1].Seq, recs[1].Seq) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestFastaErrors(t *testing.T) {
	if _, err := ReadFasta(strings.NewReader("ACGT\n")); err == nil {
		t.Error("ReadFasta accepted data before header")
	}
	if _, err := ReadFasta(strings.NewReader(">r\nAC!T\n")); err == nil {
		t.Error("ReadFasta accepted invalid base")
	}
}

func TestFastqParse(t *testing.T) {
	in := "@r1 extra\nACGT\n+\nIIII\n@r2\nGGTT\n+\nJJJJ\n"
	recs, err := ReadFastq(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Name != "r1" || recs[1].Seq.String() != "GGTT" {
		t.Fatalf("parse mismatch: %+v", recs)
	}
	if string(recs[0].Qual) != "IIII" {
		t.Fatalf("qual = %q", recs[0].Qual)
	}
	if _, err := ReadFastq(strings.NewReader("@r\nACGT\n+\nII\n")); err == nil {
		t.Error("accepted length-mismatched quality")
	}
	if _, err := ReadFastq(strings.NewReader("r\nACGT\n+\nIIII\n")); err == nil {
		t.Error("accepted missing @")
	}
}

func TestIdentityAndGC(t *testing.T) {
	a, b := MustNew("AAAA"), MustNew("AATT")
	if got := Identity(a, b); got != 0.5 {
		t.Errorf("Identity = %v, want 0.5", got)
	}
	if got := Identity(nil, nil); got != 0 {
		t.Errorf("Identity(nil) = %v, want 0", got)
	}
	if got := GC(MustNew("GCGC")); got != 1 {
		t.Errorf("GC = %v, want 1", got)
	}
	if got := GC(MustNew("ATAT")); got != 0 {
		t.Errorf("GC = %v, want 0", got)
	}
}

func TestFormatWrap(t *testing.T) {
	s := MustNew("ACGTACGTAC")
	if got := Format(s, 4); got != "ACGT\nACGT\nAC\n" {
		t.Fatalf("Format = %q", got)
	}
	if got := Format(s, 0); got != s.String() {
		t.Fatalf("Format(width=0) = %q", got)
	}
}

func TestFromBytesZeroCopy(t *testing.T) {
	b := []byte("ACGTNACGT")
	s, err := FromBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	if &s[0] != &b[0] {
		t.Fatal("canonical input was copied")
	}
	if s.String() != "ACGTNACGT" {
		t.Fatalf("FromBytes = %q", s)
	}
}

func TestFromBytesNormalizesCopy(t *testing.T) {
	b := []byte("ACgtnACGT")
	s, err := FromBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	if s.String() != "ACGTNACGT" {
		t.Fatalf("FromBytes = %q", s)
	}
	if &s[0] == &b[0] {
		t.Fatal("normalized result aliases the input")
	}
	if string(b) != "ACgtnACGT" {
		t.Fatalf("input mutated to %q", b)
	}
}

func TestFromBytesRejectsBadBase(t *testing.T) {
	for _, in := range []string{"ACGX", "acg!", "AC GT"} {
		if _, err := FromBytes([]byte(in)); err == nil {
			t.Errorf("FromBytes(%q) accepted invalid base", in)
		}
	}
}

func TestFromBytesMatchesNew(t *testing.T) {
	for _, in := range []string{"", "A", "acgtn", "ACGTacgtNn"} {
		want, werr := New(in)
		got, gerr := FromBytes([]byte(in))
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("FromBytes(%q) err = %v, New err = %v", in, gerr, werr)
		}
		if werr == nil && got.String() != want.String() {
			t.Fatalf("FromBytes(%q) = %q, New = %q", in, got, want)
		}
	}
}
