package seq

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Pair files are the interchange format of the standalone aligner (the
// original LOGAN demo reads an equivalent format): one alignment work item
// per line, tab-separated:
//
//	query-sequence  target-sequence  seedQ  seedT  seedLen
//
// Lines starting with '#' and blank lines are ignored.

// WritePairs emits the pair set in the interchange format.
func WritePairs(w io.Writer, pairs []Pair) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# query\ttarget\tseedQ\tseedT\tseedLen")
	for _, p := range pairs {
		if _, err := fmt.Fprintf(bw, "%s\t%s\t%d\t%d\t%d\n",
			p.Query, p.Target, p.SeedQPos, p.SeedTPos, p.SeedLen); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadPairs parses the interchange format, validating sequences against
// the DNA alphabet and checking seed geometry.
func ReadPairs(r io.Reader) ([]Pair, error) {
	return readPairs(r, true)
}

// ReadPairsAnyAlphabet is ReadPairs without the DNA-alphabet check, for
// workloads scored under a substitution matrix (protein residues are not
// ACGTN): sequences are taken verbatim and validated downstream against
// the matrix alphabet. Seed geometry is still checked.
func ReadPairsAnyAlphabet(r io.Reader) ([]Pair, error) {
	return readPairs(r, false)
}

func readPairs(r io.Reader, dna bool) ([]Pair, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	var pairs []Pair
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, "\t")
		if len(fields) != 5 {
			return nil, fmt.Errorf("seq: line %d: %d fields, want 5", line, len(fields))
		}
		var q, t Seq
		if dna {
			var err error
			q, err = New(fields[0])
			if err != nil {
				return nil, fmt.Errorf("seq: line %d query: %w", line, err)
			}
			t, err = New(fields[1])
			if err != nil {
				return nil, fmt.Errorf("seq: line %d target: %w", line, err)
			}
		} else {
			q, t = Seq(fields[0]), Seq(fields[1])
		}
		nums := make([]int, 3)
		for i, f := range fields[2:] {
			v, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("seq: line %d field %d: %w", line, i+3, err)
			}
			nums[i] = v
		}
		p := Pair{Query: q, Target: t, SeedQPos: nums[0], SeedTPos: nums[1], SeedLen: nums[2], ID: len(pairs)}
		// Overflow-safe form: the sum of two parsed ints can wrap.
		if p.SeedQPos < 0 || p.SeedTPos < 0 || p.SeedLen <= 0 ||
			p.SeedQPos > len(q)-p.SeedLen || p.SeedTPos > len(t)-p.SeedLen {
			return nil, fmt.Errorf("seq: line %d: seed (%d,%d,%d) outside sequences (%d,%d)",
				line, p.SeedQPos, p.SeedTPos, p.SeedLen, len(q), len(t))
		}
		pairs = append(pairs, p)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return pairs, nil
}
