package seq

import "fmt"

// MaxK is the largest k-mer length representable in a uint64 (2 bits/base).
const MaxK = 31

// Kmer is a 2-bit-encoded k-mer. The base at offset 0 occupies the most
// significant used bits, so lexicographic order of the string equals numeric
// order of the code for a fixed k.
type Kmer uint64

// KmerCodec encodes and decodes k-mers of a fixed length.
type KmerCodec struct {
	K    int
	mask Kmer
}

// NewKmerCodec returns a codec for k-mers of length k, 1 <= k <= MaxK.
func NewKmerCodec(k int) (KmerCodec, error) {
	if k < 1 || k > MaxK {
		return KmerCodec{}, fmt.Errorf("seq: k-mer length %d outside [1,%d]", k, MaxK)
	}
	return KmerCodec{K: k, mask: (1 << uint(2*k)) - 1}, nil
}

// MustKmerCodec is NewKmerCodec that panics on error.
func MustKmerCodec(k int) KmerCodec {
	c, err := NewKmerCodec(k)
	if err != nil {
		panic(err)
	}
	return c
}

// Encode packs s[pos:pos+K] into a Kmer. The second return is false if the
// window contains an N or overruns the sequence.
func (c KmerCodec) Encode(s Seq, pos int) (Kmer, bool) {
	if pos < 0 || pos+c.K > len(s) {
		return 0, false
	}
	var km Kmer
	for i := 0; i < c.K; i++ {
		if s.IsN(pos + i) {
			return 0, false
		}
		km = km<<2 | Kmer(s.Code(pos+i))
	}
	return km, true
}

// Decode expands km into its string form.
func (c KmerCodec) Decode(km Kmer) Seq {
	out := make(Seq, c.K)
	for i := c.K - 1; i >= 0; i-- {
		out[i] = Alphabet[km&3]
		km >>= 2
	}
	return out
}

// RevComp returns the reverse complement of km under this codec.
func (c KmerCodec) RevComp(km Kmer) Kmer {
	var rc Kmer
	for i := 0; i < c.K; i++ {
		rc = rc<<2 | ((km & 3) ^ 3) // complement of 2-bit code is XOR 3
		km >>= 2
	}
	return rc & c.mask
}

// Canonical returns min(km, revcomp(km)), the strand-independent form used
// by BELLA's k-mer counting.
func (c KmerCodec) Canonical(km Kmer) Kmer {
	rc := c.RevComp(km)
	if rc < km {
		return rc
	}
	return km
}

// Positioned is a k-mer occurrence within a read.
type Positioned struct {
	Kmer Kmer
	Pos  int
}

// Scan appends to dst every valid k-mer of s with its position, using the
// canonical form if canonical is true, and returns the extended slice.
// Windows containing N are skipped, matching BELLA's parser.
func (c KmerCodec) Scan(dst []Positioned, s Seq, canonical bool) []Positioned {
	if len(s) < c.K {
		return dst
	}
	// Rolling encoding: shift in one base at a time, restart after an N.
	var km Kmer
	run := 0 // valid bases accumulated in the current window
	for i := 0; i < len(s); i++ {
		if s.IsN(i) {
			run = 0
			km = 0
			continue
		}
		km = (km<<2 | Kmer(s.Code(i))) & c.mask
		if run < c.K {
			run++
		}
		if run == c.K {
			v := km
			if canonical {
				v = c.Canonical(km)
			}
			dst = append(dst, Positioned{Kmer: v, Pos: i - c.K + 1})
		}
	}
	return dst
}
