package seq

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strings"
)

// Record is a named sequence, as parsed from FASTA/FASTQ input.
type Record struct {
	Name string
	Seq  Seq
	Qual []byte // nil for FASTA
}

// FastaReader streams FASTA records from an io.Reader one at a time, so a
// data set never needs to be fully resident in the parser: each Next call
// returns one complete record and releases the internal line buffer back
// to the next record. Unlike a bufio.Scanner-based parser it has no
// maximum line length — sequence lines of any length are handled — and it
// accepts CRLF line endings. Obtain one with NewFastaReader.
type FastaReader struct {
	br *bufio.Reader
	// nextName holds the header of the record after the one being
	// assembled ("" plus nextHeader=false before the first header).
	nextName   string
	nextHeader bool
	line       int
	done       bool
}

// NewFastaReader returns a streaming FASTA parser over r.
func NewFastaReader(r io.Reader) *FastaReader {
	return &FastaReader{br: bufio.NewReaderSize(r, 1<<16)}
}

// Line returns the 1-based input line number the reader has consumed up
// to, for error reporting by callers that impose their own record limits.
func (fr *FastaReader) Line() int { return fr.line }

// readLine returns the next input line with the trailing newline (and any
// surrounding space) trimmed. io.EOF reports end of input; a final line
// without a newline is returned first. A transport error always surfaces,
// even when it arrived alongside partial data — bufio clears its stored
// error once returned, so deferring it to the next call could silently
// truncate the input instead.
func (fr *FastaReader) readLine() ([]byte, error) {
	b, err := fr.br.ReadBytes('\n')
	if err != nil && err != io.EOF {
		return nil, err
	}
	if len(b) == 0 {
		return nil, io.EOF
	}
	fr.line++
	return bytes.TrimSpace(b), nil
}

// Next returns the next record. It returns io.EOF after the last record;
// any other error reports malformed input with its line number. The
// returned record's buffers are freshly allocated and remain valid across
// subsequent Next calls.
func (fr *FastaReader) Next() (Record, error) {
	if fr.done {
		return Record{}, io.EOF
	}
	// Seek the record's header: either carried over from the previous
	// Next, or the first '>' line of the stream.
	for !fr.nextHeader {
		b, err := fr.readLine()
		if err != nil {
			fr.done = true
			return Record{}, err
		}
		if len(b) == 0 {
			continue
		}
		if b[0] != '>' {
			fr.done = true
			return Record{}, fmt.Errorf("seq: line %d: sequence data before first FASTA header", fr.line)
		}
		fr.setHeader(b)
	}
	rec := Record{Name: fr.nextName}
	fr.nextHeader = false
	for {
		b, err := fr.readLine()
		if err == io.EOF {
			fr.done = true
			return rec, nil // final record; EOF surfaces on the next call
		}
		if err != nil {
			fr.done = true
			return Record{}, err
		}
		if len(b) == 0 {
			continue
		}
		if b[0] == '>' {
			fr.setHeader(b)
			return rec, nil
		}
		n := len(rec.Seq)
		rec.Seq = append(rec.Seq, b...)
		if err := normalizeFasta(rec.Seq[n:]); err != nil {
			fr.done = true
			return Record{}, fmt.Errorf("seq: line %d: %w", fr.line, err)
		}
	}
}

// setHeader records the upcoming record's name: the first
// whitespace-delimited token after '>'.
func (fr *FastaReader) setHeader(b []byte) {
	fr.nextHeader = true
	fr.nextName = ""
	if name := strings.Fields(string(b[1:])); len(name) > 0 {
		fr.nextName = name[0]
	}
}

// fastaBase maps an input FASTA base to its normalized form: upper-case
// ACGT pass through (lower-case is upcased), U becomes T, N and every
// IUPAC ambiguity code collapse to N, and 0 marks an invalid character.
// The table is shared by the FASTA and FASTQ ingestion paths so the
// overlap and mapping pipelines accept the same inputs.
var fastaBase [256]byte

func init() {
	set := func(in, out byte) {
		fastaBase[in] = out
		fastaBase[in|0x20] = out // lower case
	}
	set('A', 'A')
	set('C', 'C')
	set('G', 'G')
	set('T', 'T')
	set('U', 'T') // RNA input: uracil reads as thymine
	set('N', 'N')
	// IUPAC ambiguity codes: any multi-base possibility degrades to N,
	// which the k-mer and seeding layers already treat as a wildcard gap.
	for _, c := range []byte("RYSWKMBDHV") {
		set(c, 'N')
	}
}

// normalizeFasta rewrites b in place to the canonical upper-case ACGTN
// alphabet, accepting lower-case bases, U, and IUPAC ambiguity codes.
// It reports ErrBadBase for anything else.
func normalizeFasta(b []byte) error {
	for i, c := range b {
		out := fastaBase[c]
		if out == 0 {
			return fmt.Errorf("%w: %q at offset %d", ErrBadBase, c, i)
		}
		b[i] = out
	}
	return nil
}

// ReadFasta parses FASTA records from r. Header lines start with '>'; the
// name is the first whitespace-delimited token. Sequence lines are
// concatenated and normalized to the upper-case ACGTN alphabet:
// lower-case bases are upcased, U reads as T, and IUPAC ambiguity codes
// collapse to N (anything else is ErrBadBase). It is a
// collecting wrapper over FastaReader; callers that should not hold the
// whole data set in flight stream records with FastaReader.Next instead.
func ReadFasta(r io.Reader) ([]Record, error) {
	fr := NewFastaReader(r)
	var recs []Record
	for {
		rec, err := fr.Next()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return nil, err
		}
		recs = append(recs, rec)
	}
}

// WriteFasta emits the records to w, wrapping sequence lines at 80 columns.
func WriteFasta(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	for _, rec := range recs {
		if _, err := fmt.Fprintf(bw, ">%s\n", rec.Name); err != nil {
			return err
		}
		if _, err := bw.WriteString(Format(rec.Seq, 80)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadFastq parses FASTQ records (4-line layout) from r.
func ReadFastq(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	var recs []Record
	line := 0
	next := func() ([]byte, bool) {
		for sc.Scan() {
			line++
			b := bytes.TrimSpace(sc.Bytes())
			if len(b) > 0 {
				out := make([]byte, len(b))
				copy(out, b)
				return out, true
			}
		}
		return nil, false
	}
	for {
		hdr, ok := next()
		if !ok {
			break
		}
		if hdr[0] != '@' {
			return nil, fmt.Errorf("seq: line %d: FASTQ header must start with '@'", line)
		}
		sq, ok := next()
		if !ok {
			return nil, fmt.Errorf("seq: line %d: truncated FASTQ record", line)
		}
		if err := normalizeFasta(sq); err != nil {
			return nil, fmt.Errorf("seq: line %d: %v", line, err)
		}
		plus, ok := next()
		if !ok || plus[0] != '+' {
			return nil, fmt.Errorf("seq: line %d: missing FASTQ separator", line)
		}
		qual, ok := next()
		if !ok {
			return nil, fmt.Errorf("seq: line %d: missing FASTQ quality", line)
		}
		if len(qual) != len(sq) {
			return nil, fmt.Errorf("seq: line %d: quality length %d != sequence length %d", line, len(qual), len(sq))
		}
		name := strings.Fields(string(hdr[1:]))
		rec := Record{Qual: qual}
		if len(name) > 0 {
			rec.Name = name[0]
		}
		rec.Seq, _ = New(string(sq))
		recs = append(recs, rec)
	}
	return recs, nil
}
