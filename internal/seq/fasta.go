package seq

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strings"
)

// Record is a named sequence, as parsed from FASTA/FASTQ input.
type Record struct {
	Name string
	Seq  Seq
	Qual []byte // nil for FASTA
}

// ReadFasta parses FASTA records from r. Header lines start with '>'; the
// name is the first whitespace-delimited token. Sequence lines are
// concatenated and validated against the ACGTN alphabet.
func ReadFasta(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	var recs []Record
	var cur *Record
	line := 0
	for sc.Scan() {
		line++
		b := bytes.TrimSpace(sc.Bytes())
		if len(b) == 0 {
			continue
		}
		if b[0] == '>' {
			name := strings.Fields(string(b[1:]))
			recs = append(recs, Record{})
			cur = &recs[len(recs)-1]
			if len(name) > 0 {
				cur.Name = name[0]
			}
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("seq: line %d: sequence data before first FASTA header", line)
		}
		if !Valid(b) {
			return nil, fmt.Errorf("seq: line %d: %v", line, ErrBadBase)
		}
		up := make([]byte, len(b))
		for i, c := range b {
			code := encode[c]
			if code == 0xFE {
				up[i] = 'N'
			} else {
				up[i] = Alphabet[code]
			}
		}
		cur.Seq = append(cur.Seq, up...)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

// WriteFasta emits the records to w, wrapping sequence lines at 80 columns.
func WriteFasta(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	for _, rec := range recs {
		if _, err := fmt.Fprintf(bw, ">%s\n", rec.Name); err != nil {
			return err
		}
		if _, err := bw.WriteString(Format(rec.Seq, 80)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadFastq parses FASTQ records (4-line layout) from r.
func ReadFastq(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	var recs []Record
	line := 0
	next := func() ([]byte, bool) {
		for sc.Scan() {
			line++
			b := bytes.TrimSpace(sc.Bytes())
			if len(b) > 0 {
				out := make([]byte, len(b))
				copy(out, b)
				return out, true
			}
		}
		return nil, false
	}
	for {
		hdr, ok := next()
		if !ok {
			break
		}
		if hdr[0] != '@' {
			return nil, fmt.Errorf("seq: line %d: FASTQ header must start with '@'", line)
		}
		sq, ok := next()
		if !ok {
			return nil, fmt.Errorf("seq: line %d: truncated FASTQ record", line)
		}
		if !Valid(sq) {
			return nil, fmt.Errorf("seq: line %d: %v", line, ErrBadBase)
		}
		plus, ok := next()
		if !ok || plus[0] != '+' {
			return nil, fmt.Errorf("seq: line %d: missing FASTQ separator", line)
		}
		qual, ok := next()
		if !ok {
			return nil, fmt.Errorf("seq: line %d: missing FASTQ quality", line)
		}
		if len(qual) != len(sq) {
			return nil, fmt.Errorf("seq: line %d: quality length %d != sequence length %d", line, len(qual), len(sq))
		}
		name := strings.Fields(string(hdr[1:]))
		rec := Record{Qual: qual}
		if len(name) > 0 {
			rec.Name = name[0]
		}
		rec.Seq, _ = New(string(sq))
		recs = append(recs, rec)
	}
	return recs, nil
}
