package seq

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadFasta: the parser must never panic and must round-trip whatever
// it accepts.
func FuzzReadFasta(f *testing.F) {
	f.Add(">r1\nACGT\n>r2\nGGTT\n")
	f.Add(">\n\n")
	f.Add("no header")
	f.Add(">r\nACGTN\nacgtn\n")
	f.Fuzz(func(t *testing.T, in string) {
		recs, err := ReadFasta(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteFasta(&buf, recs); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		again, err := ReadFasta(&buf)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip %d != %d records", len(again), len(recs))
		}
		for i := range recs {
			if !bytes.Equal(again[i].Seq, recs[i].Seq) {
				t.Fatalf("record %d sequence changed", i)
			}
		}
	})
}

// FuzzReadPairs: the pair-file parser must never panic, and accepted
// pairs must have valid seed geometry.
func FuzzReadPairs(f *testing.F) {
	f.Add("ACGT\tACGT\t0\t0\t4\n")
	f.Add("# comment\nACGT\tTTTT\t1\t1\t2\n")
	f.Add("A\tB\tC\n")
	f.Fuzz(func(t *testing.T, in string) {
		pairs, err := ReadPairs(strings.NewReader(in))
		if err != nil {
			return
		}
		for _, p := range pairs {
			if p.SeedQPos < 0 || p.SeedQPos+p.SeedLen > len(p.Query) {
				t.Fatalf("accepted invalid query seed: %+v", p)
			}
			if p.SeedTPos < 0 || p.SeedTPos+p.SeedLen > len(p.Target) {
				t.Fatalf("accepted invalid target seed: %+v", p)
			}
		}
	})
}

// FuzzKmerScan: scanning must agree with per-position encoding for any
// byte input that validates.
func FuzzKmerScan(f *testing.F) {
	f.Add([]byte("ACGTACGTNNACGT"), 5)
	f.Add([]byte("AAAA"), 2)
	f.Fuzz(func(t *testing.T, raw []byte, k int) {
		if k < 1 || k > MaxK || len(raw) > 500 {
			return
		}
		if !Valid(raw) {
			return
		}
		s, err := New(string(raw))
		if err != nil {
			return
		}
		c := MustKmerCodec(k)
		scan := c.Scan(nil, s, false)
		var naive []Positioned
		for i := 0; i+k <= len(s); i++ {
			if km, ok := c.Encode(s, i); ok {
				naive = append(naive, Positioned{Kmer: km, Pos: i})
			}
		}
		if len(scan) != len(naive) {
			t.Fatalf("scan %d k-mers, naive %d", len(scan), len(naive))
		}
		for i := range scan {
			if scan[i] != naive[i] {
				t.Fatalf("k-mer %d differs", i)
			}
		}
	})
}
