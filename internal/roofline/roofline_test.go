package roofline

import (
	"math"
	"strings"
	"testing"
	"time"

	"logan/internal/cuda"
)

func model() Model { return ForDevice(cuda.TeslaV100()) }

func TestModelFigures(t *testing.T) {
	m := model()
	if math.Abs(m.INT32GIPS-220.8) > 0.1 {
		t.Errorf("INT32 ceiling %.1f, want 220.8", m.INT32GIPS)
	}
	if math.Abs(m.PeakGIPS-489.6) > 0.1 {
		t.Errorf("peak %.1f, want 489.6", m.PeakGIPS)
	}
	// Ridge: 220.8e9 / 900e9 = 0.245 warp instr per byte.
	if r := m.Ridge(); math.Abs(r-0.2453) > 0.001 {
		t.Errorf("ridge = %v, want ~0.245", r)
	}
}

func TestAttainable(t *testing.T) {
	m := model()
	// Left of the ridge: memory slope.
	if got := m.Attainable(0.1); math.Abs(got-90) > 0.5 {
		t.Errorf("attainable(0.1) = %v, want 90", got)
	}
	// Right of the ridge: flat INT32 ceiling.
	if got := m.Attainable(10); got != m.INT32GIPS {
		t.Errorf("attainable(10) = %v, want ceiling", got)
	}
	// Continuity at the ridge.
	if got := m.Attainable(m.Ridge()); math.Abs(got-m.INT32GIPS) > 0.5 {
		t.Errorf("attainable(ridge) = %v", got)
	}
}

func saturatedStats(grid, block int, activeLanes float64) cuda.KernelStats {
	s := cuda.KernelStats{
		Grid: grid, Block: block,
		WarpInstrs: 1e9,
		Occupancy:  cuda.TeslaV100().OccupancyFor(block, 0),
	}
	s.Iter.SumNop = 1000
	s.Iter.SumNopAct = 1000 * activeLanes
	s.Iter.SumNopFill = 900
	s.Iter.Count = 100
	return s
}

func TestAdaptedCeilingSaturated(t *testing.T) {
	m := model()
	// Full blocks everywhere: active lanes per block = 128, resident
	// blocks = 16*80 = 1280 -> x = 163840 >> 5120 lanes: utilization is
	// x/(5120*ceil(x/5120)) = 1 (x is a multiple of 5120 here).
	got := AdaptedCeiling(m, saturatedStats(100000, 128, 128))
	if got < 0.95*m.INT32GIPS {
		t.Errorf("saturated adapted ceiling %v << INT32 ceiling %v", got, m.INT32GIPS)
	}
}

func TestAdaptedCeilingUnderutilized(t *testing.T) {
	m := model()
	// One block with 32 active lanes: x=32 << 5120 -> ceiling collapses.
	got := AdaptedCeiling(m, saturatedStats(1, 32, 32))
	want := m.INT32GIPS * 32 / 5120
	if math.Abs(got-want) > 0.1 {
		t.Errorf("underutilized ceiling %v, want %v", got, want)
	}
}

func TestAdaptedCeilingMonotoneInParallelism(t *testing.T) {
	m := model()
	prev := 0.0
	for _, grid := range []int{1, 10, 100, 1000, 100000} {
		c := AdaptedCeiling(m, saturatedStats(grid, 128, 100))
		if c < prev-1e-9 {
			t.Fatalf("adapted ceiling decreased at grid=%d: %v < %v", grid, c, prev)
		}
		prev = c
	}
}

func TestAnalyzeReport(t *testing.T) {
	m := model()
	s := saturatedStats(100000, 128, 120)
	s.DRAMReadBytes = 1e9 // OI = 1.0
	rep := Analyze(m, s, 10*time.Millisecond)
	if !rep.ComputeBound {
		t.Error("OI=1.0 should be compute-bound (ridge ~0.245)")
	}
	// Achieved: 1e9 instr / 10ms = 100 GIPS.
	if math.Abs(rep.AchievedGIPS-100) > 0.5 {
		t.Errorf("achieved = %v, want 100", rep.AchievedGIPS)
	}
	if rep.CeilingFraction <= 0 || rep.CeilingFraction > 1.2 {
		t.Errorf("ceiling fraction = %v", rep.CeilingFraction)
	}
	if rep.OI != 1.0 {
		t.Errorf("OI = %v", rep.OI)
	}
}

func TestAnalyzeMemoryBoundKernel(t *testing.T) {
	m := model()
	s := saturatedStats(100000, 128, 120)
	s.DRAMReadBytes = 1e11 // OI = 0.01 << ridge
	rep := Analyze(m, s, 10*time.Millisecond)
	if rep.ComputeBound {
		t.Error("OI=0.01 must be memory-bound")
	}
}

func TestRender(t *testing.T) {
	m := model()
	s := saturatedStats(100000, 128, 120)
	s.DRAMReadBytes = 1e9
	rep := Analyze(m, s, 10*time.Millisecond)
	out := rep.Render(60, 16)
	if !strings.Contains(out, "K") {
		t.Error("render missing kernel point")
	}
	if !strings.Contains(out, "compute-bound=true") {
		t.Error("render missing verdict")
	}
	if len(strings.Split(out, "\n")) < 16 {
		t.Error("render too short")
	}
}

func TestZeroWorkDefaults(t *testing.T) {
	m := model()
	var s cuda.KernelStats
	if got := AdaptedCeiling(m, s); got != m.INT32GIPS {
		t.Errorf("empty stats ceiling = %v, want INT32 ceiling", got)
	}
	rep := Analyze(m, s, 0)
	if rep.AchievedGIPS != 0 {
		t.Errorf("zero-time achieved = %v", rep.AchievedGIPS)
	}
}
