// Package roofline implements the instruction Roofline analysis of the
// paper's §VII: warp-instruction throughput (Warp GIPS) against
// operational intensity (warp instructions per DRAM byte), with the
// device ceilings and the paper's Eq. (1) adapted ceiling that accounts
// for how many INT32 cores the X-drop kernel can actually keep busy per
// anti-diagonal iteration.
package roofline

import (
	"fmt"
	"math"
	"strings"
	"time"

	"logan/internal/cuda"
)

// Model holds the device ceilings for the Roofline plot.
type Model struct {
	Name       string
	PeakGIPS   float64 // theoretical warp GIPS (all pipes)
	INT32GIPS  float64 // attainable INT32 warp GIPS (paper: 220.8)
	MemBW      float64 // bytes/second
	INT32Lanes int     // MAXR in Eq. (1)
}

// ForDevice extracts the model from a device spec.
func ForDevice(spec cuda.DeviceSpec) Model {
	return Model{
		Name:       spec.Name,
		PeakGIPS:   spec.TheoreticalWarpGIPS(),
		INT32GIPS:  spec.INT32WarpGIPS(),
		MemBW:      spec.HBMBandwidth,
		INT32Lanes: spec.INT32Lanes(),
	}
}

// Ridge returns the operational intensity (warp instr/byte) where the
// memory slope meets the INT32 ceiling. Kernels to the right are
// compute-bound.
func (m Model) Ridge() float64 { return m.INT32GIPS * 1e9 / m.MemBW }

// Attainable returns the roofline value at operational intensity oi: the
// lower of the INT32 ceiling and the memory slope.
func (m Model) Attainable(oi float64) float64 {
	mem := oi * m.MemBW / 1e9
	if mem < m.INT32GIPS {
		return mem
	}
	return m.INT32GIPS
}

// AdaptedCeiling evaluates the paper's Eq. (1) for a kernel launch: the
// INT32 ceiling scaled by the fraction of core rounds the kernel's
// iterations can fill. For iteration i with Nop_i operations and x_i
// concurrently active lanes across the resident grid, the utilization is
//
//	u_i = x_i / (MAXR * ceil(x_i / MAXR))
//
// and the ceiling is f * sum(Nop_i * u_i) / sum(Nop_i). The kernel's
// iteration aggregates provide the op-weighted mean active-lane count per
// block; the resident block count comes from the launch occupancy. (The
// exact per-iteration sum is replaced by its op-weighted mean-field value,
// which is what the aggregate counters support; for LOGAN's near-constant
// band widths within a launch the two agree closely.)
func AdaptedCeiling(m Model, s cuda.KernelStats) float64 {
	if s.Iter.SumNop == 0 {
		return m.INT32GIPS
	}
	resident := s.Occupancy.BlocksPerSM
	if resident < 1 {
		resident = 1
	}
	concBlocks := resident * residentSMs(m, s)
	if concBlocks > s.Grid {
		concBlocks = s.Grid
	}
	x := s.Iter.MeanActiveLanes() * float64(concBlocks)
	if x <= 0 {
		return 0
	}
	rounds := math.Ceil(x / float64(m.INT32Lanes))
	u := x / (float64(m.INT32Lanes) * rounds)
	return m.INT32GIPS * u
}

func residentSMs(m Model, s cuda.KernelStats) int {
	// The model does not carry the SM count separately; recover it from
	// lanes per SM (INT32Lanes / lanes-per-SM is not available either),
	// so approximate via grid clamping: every device this package models
	// has INT32Lanes/64 SMs (64 INT32 cores per SM on Volta).
	sms := m.INT32Lanes / 64
	if sms < 1 {
		sms = 1
	}
	return sms
}

// Report is the Fig. 13 data for one kernel.
type Report struct {
	Model          Model
	OI             float64 // warp instructions per DRAM byte
	AchievedGIPS   float64
	AdaptedCeiling float64
	Ridge          float64
	ComputeBound   bool
	// CeilingFraction is achieved / adapted ceiling: the paper's
	// "near-optimal" claim is this fraction approaching 1.
	CeilingFraction float64
}

// Analyze builds the Roofline report for a kernel given its modeled
// execution time.
func Analyze(m Model, s cuda.KernelStats, kernelTime time.Duration) Report {
	r := Report{Model: m, Ridge: m.Ridge()}
	r.OI = s.OperationalIntensity()
	if kernelTime > 0 {
		r.AchievedGIPS = float64(s.WarpInstrs) / kernelTime.Seconds() / 1e9
	}
	r.AdaptedCeiling = AdaptedCeiling(m, s)
	r.ComputeBound = r.OI >= r.Ridge
	if r.AdaptedCeiling > 0 {
		r.CeilingFraction = r.AchievedGIPS / r.AdaptedCeiling
	}
	return r
}

// Render draws the classic log-log Roofline as ASCII art with the kernel
// point marked 'K', for terminal reports and EXPERIMENTS.md.
func (r Report) Render(width, height int) string {
	if width < 20 {
		width = 60
	}
	if height < 8 {
		height = 16
	}
	// x: OI in [0.01, 100]; y: GIPS in [1, PeakGIPS*2].
	xMin, xMax := math.Log10(0.01), math.Log10(100)
	yMin, yMax := 0.0, math.Log10(r.Model.PeakGIPS*2)
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	put := func(oi, gips float64, c byte) {
		if oi <= 0 || gips <= 0 {
			return
		}
		x := int((math.Log10(oi) - xMin) / (xMax - xMin) * float64(width-1))
		y := int((math.Log10(gips) - yMin) / (yMax - yMin) * float64(height-1))
		if x < 0 || x >= width || y < 0 || y >= height {
			return
		}
		grid[height-1-y][x] = c
	}
	for px := 0; px < width*2; px++ {
		oi := math.Pow(10, xMin+(xMax-xMin)*float64(px)/float64(width*2-1))
		put(oi, r.Model.Attainable(oi), '-')
		if r.AdaptedCeiling > 0 && oi >= r.Ridge/4 {
			put(oi, r.AdaptedCeiling, '~')
		}
	}
	put(r.Ridge, r.Model.INT32GIPS, '+')
	put(r.OI, r.AchievedGIPS, 'K')
	var b strings.Builder
	fmt.Fprintf(&b, "Roofline %s (K = kernel, - = roof, ~ = adapted ceiling Eq.1)\n", r.Model.Name)
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("\n")
	}
	b.WriteString("+" + strings.Repeat("-", width) + "\n")
	fmt.Fprintf(&b, "OI=%.3f warpinstr/B  achieved=%.1f GIPS  adapted ceiling=%.1f GIPS  ridge=%.3f  compute-bound=%v\n",
		r.OI, r.AchievedGIPS, r.AdaptedCeiling, r.Ridge, r.ComputeBound)
	return b.String()
}
