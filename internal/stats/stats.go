// Package stats provides the small reporting toolkit the experiment
// harness uses: aligned text tables with optional paper-reference columns,
// CSV export, log-log ASCII charts for the figures, and summary
// statistics.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders a float compactly: 3 significant decimals for small
// magnitudes, 1 for large.
func FormatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Render draws the table with aligned columns.
func (t *Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV exports the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cells := make([]string, len(t.Headers))
	for i, h := range t.Headers {
		cells[i] = esc(h)
	}
	b.WriteString(strings.Join(cells, ",") + "\n")
	for _, r := range t.Rows {
		cells = cells[:0]
		for _, c := range r {
			cells = append(cells, esc(c))
		}
		b.WriteString(strings.Join(cells, ",") + "\n")
	}
	return b.String()
}

// Series is one named line on a chart.
type Series struct {
	Name   string
	Marker byte
	X, Y   []float64
}

// Chart is a log-log ASCII scatter chart, the stand-in for the paper's
// figures.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	LogX   bool
	LogY   bool
}

// Render draws the chart into a width x height character grid.
func (c *Chart) Render(width, height int) string {
	if width < 20 {
		width = 64
	}
	if height < 6 {
		height = 18
	}
	xMin, xMax := math.Inf(1), math.Inf(-1)
	yMin, yMax := math.Inf(1), math.Inf(-1)
	tx := func(v float64) float64 {
		if c.LogX {
			return math.Log10(v)
		}
		return v
	}
	ty := func(v float64) float64 {
		if c.LogY {
			return math.Log10(v)
		}
		return v
	}
	for _, s := range c.Series {
		for i := range s.X {
			if s.X[i] <= 0 && c.LogX || s.Y[i] <= 0 && c.LogY {
				continue
			}
			xMin = math.Min(xMin, tx(s.X[i]))
			xMax = math.Max(xMax, tx(s.X[i]))
			yMin = math.Min(yMin, ty(s.Y[i]))
			yMax = math.Max(yMax, ty(s.Y[i]))
		}
	}
	if math.IsInf(xMin, 1) {
		return c.Title + " (no data)\n"
	}
	if xMax == xMin {
		xMax = xMin + 1
	}
	if yMax == yMin {
		yMax = yMin + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for _, s := range c.Series {
		for i := range s.X {
			if (s.X[i] <= 0 && c.LogX) || (s.Y[i] <= 0 && c.LogY) {
				continue
			}
			x := int((tx(s.X[i]) - xMin) / (xMax - xMin) * float64(width-1))
			y := int((ty(s.Y[i]) - yMin) / (yMax - yMin) * float64(height-1))
			grid[height-1-y][x] = s.Marker
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", c.Title)
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("\n")
	}
	b.WriteString("+" + strings.Repeat("-", width) + "> " + c.XLabel + "\n")
	for _, s := range c.Series {
		fmt.Fprintf(&b, "  %c = %s\n", s.Marker, s.Name)
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, "  y: %s\n", c.YLabel)
	}
	return b.String()
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Median returns the middle value (0 for empty input).
func Median(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// GeoMean returns the geometric mean of positive values (0 otherwise).
func GeoMean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(v)))
}
