package stats

import (
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := Table{Title: "T", Headers: []string{"X", "time"}}
	tb.AddRow(10, 1.5)
	tb.AddRow(5000, 176.6)
	tb.Notes = append(tb.Notes, "hello")
	out := tb.Render()
	if !strings.Contains(out, "5000") || !strings.Contains(out, "176.6") {
		t.Fatalf("render missing data:\n%s", out)
	}
	if !strings.Contains(out, "note: hello") {
		t.Fatal("missing note")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 {
		t.Fatalf("expected 6 lines, got %d:\n%s", len(lines), out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := Table{Headers: []string{"a", "b,c"}}
	tb.AddRow("x\"y", 1)
	csv := tb.CSV()
	if !strings.Contains(csv, `"b,c"`) {
		t.Fatalf("comma not escaped: %s", csv)
	}
	if !strings.Contains(csv, `"x""y"`) {
		t.Fatalf("quote not escaped: %s", csv)
	}
	if len(strings.Split(strings.TrimSpace(csv), "\n")) != 2 {
		t.Fatal("csv line count")
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{0: "0", 0.1234: "0.123", 1.234: "1.23", 123.456: "123.5"}
	for v, want := range cases {
		if got := FormatFloat(v); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestChartRender(t *testing.T) {
	ch := Chart{
		Title: "speedup", XLabel: "X", YLabel: "x faster",
		LogX: true, LogY: true,
		Series: []Series{
			{Name: "1 GPU", Marker: 'o', X: []float64{10, 100, 1000}, Y: []float64{2, 5, 7}},
			{Name: "6 GPU", Marker: '*', X: []float64{10, 100, 1000}, Y: []float64{3, 12, 30}},
		},
	}
	out := ch.Render(60, 15)
	if !strings.Contains(out, "o = 1 GPU") || !strings.Contains(out, "* = 6 GPU") {
		t.Fatalf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatal("markers missing")
	}
	empty := Chart{Title: "none"}
	if got := empty.Render(40, 10); !strings.Contains(got, "no data") {
		t.Fatalf("empty chart: %q", got)
	}
}

func TestSummaries(t *testing.T) {
	v := []float64{1, 2, 3, 4}
	if Mean(v) != 2.5 {
		t.Errorf("mean = %v", Mean(v))
	}
	if Median(v) != 2.5 {
		t.Errorf("median = %v", Median(v))
	}
	if Median([]float64{3, 1, 2}) != 2 {
		t.Error("odd median")
	}
	if g := GeoMean([]float64{1, 100}); math.Abs(g-10) > 1e-9 {
		t.Errorf("geomean = %v", g)
	}
	if GeoMean([]float64{1, -1}) != 0 || GeoMean(nil) != 0 || Mean(nil) != 0 || Median(nil) != 0 {
		t.Error("degenerate summaries")
	}
}
