// Package perfmodel converts the work counted by the simulated substrates
// into modeled wall time on the paper's hardware: kernel time on an NVIDIA
// Tesla V100 from internal/cuda launch statistics, and batch-alignment time
// on the POWER9 and Xeon Gold ("Skylake") host platforms from DP-cell
// counts. The GPU model is the same bound-and-bottleneck reasoning the
// paper's Roofline section applies (compute ceiling vs HBM bandwidth), with
// a latency term that matters only at low occupancy — exactly the regime
// Table I's single-alignment rows probe.
//
// All calibration constants are declared here with their provenance. They
// scale the axes; every shape in the reproduced tables (who wins, where the
// crossovers sit) comes out of counted work, not out of these constants.
package perfmodel

import (
	"math"
	"time"

	"logan/internal/cuda"
)

// GPUTimer models kernel and transfer durations for a cuda.DeviceSpec. It
// implements cuda.Timer.
type GPUTimer struct {
	// DepLatency is the average issue-to-issue latency in cycles between
	// dependent INT32 instructions of one warp (V100 ALU ~4 cycles plus
	// scheduling).
	DepLatency float64
	// ILP is the average number of independent instructions a thread
	// exposes between dependences (anti-diagonal cells are independent,
	// so the X-drop inner loop has some).
	ILP float64
	// WarpsToHide is the resident-warp count per SM at which memory and
	// pipeline latency is considered fully hidden.
	WarpsToHide float64
	// MemLatency is the DRAM access latency in cycles exposed when
	// occupancy is too low to hide it (V100 HBM2 ~400-500 cycles).
	MemLatency float64
	// SyncCycles is the per-iteration critical-path cost of
	// __syncthreads plus the block-level bookkeeping between
	// anti-diagonals (barrier, band trim, shared-memory max exchange).
	SyncCycles float64
	// LaunchOverhead is the fixed host-side cost of one kernel launch.
	LaunchOverhead time.Duration
}

// NewV100Timer returns the timer tuned for the Tesla V100. DepLatency, ILP
// and MemLatency are architecture figures; SyncCycles is calibrated once so
// that the Table I intra-sequence ablation reproduces the paper's 9.3x
// single-pair speed-up (see EXPERIMENTS.md).
func NewV100Timer() *GPUTimer {
	return &GPUTimer{
		DepLatency:     4,
		ILP:            2,
		WarpsToHide:    8,
		MemLatency:     450,
		SyncCycles:     110,
		LaunchOverhead: 6 * time.Microsecond,
	}
}

// KernelTime models the duration of one kernel launch.
//
// Throughput term: total INT32 warp instructions divided by the device-wide
// issue rate, where each SM issues at most schedulers*INT32/warpSize
// instructions per cycle and needs WarpsToHide resident warps to get there.
//
// Critical-path term: the heaviest block's instructions at its block-local
// issue rate, plus one SyncCycles charge per synchronized iteration, plus
// exposed memory latency when residency cannot hide it.
//
// Memory term: modeled DRAM traffic at HBM bandwidth.
//
// The kernel time is max(throughput, critical path, memory) + launch cost:
// whichever bound binds. For full grids (inter-sequence parallelism) the
// throughput or memory term wins; for Table I's single-block launches the
// critical path dominates.
func (t *GPUTimer) KernelTime(spec cuda.DeviceSpec, s cuda.KernelStats) time.Duration {
	if s.Grid <= 0 {
		return 0
	}
	clockHz := spec.BaseClockGHz * 1e9
	warpsPerBlock := float64((s.Block + spec.WarpSize - 1) / spec.WarpSize)
	maxIssuePerSM := float64(spec.SchedulersPerSM) * float64(spec.INT32PerSched) / float64(spec.WarpSize)
	perWarpIssue := t.ILP / t.DepLatency

	// Device-wide throughput.
	smsUsed := float64(min(s.Grid, spec.SMs))
	blocksPerSM := float64(s.Occupancy.BlocksPerSM)
	if need := float64(s.Grid) / float64(spec.SMs); need < blocksPerSM {
		blocksPerSM = need
	}
	if blocksPerSM < 1 {
		blocksPerSM = 1
	}
	residentWarps := blocksPerSM * warpsPerBlock
	issuePerSM := residentWarps * perWarpIssue
	if issuePerSM > maxIssuePerSM {
		issuePerSM = maxIssuePerSM
	}
	// Utilization of the INT32 core rounds, the same term as the paper's
	// Eq. (1) adapted ceiling (see internal/roofline): active lanes that
	// are not a multiple of the device's INT32 width leave partially
	// empty rounds.
	if u := coreRoundUtil(spec, s); u > 0 && u < 1 {
		issuePerSM *= u
	}
	throughputCycles := float64(s.WarpInstrs) / (smsUsed * issuePerSM)

	// Per-barrier overheads (__syncthreads plus exposed memory latency
	// between anti-diagonals) serialize within a block but amortize over
	// the blocks resident on each SM — the quantitative form of the
	// paper's occupancy argument (§IV-B): a kernel shape that caps
	// residency pays its barrier latency almost bare.
	activeWarps := warpsPerBlock
	if m := s.Iter.MeanActiveLanes(); m > 0 {
		if aw := math.Ceil(m / float64(spec.WarpSize)); aw < activeWarps {
			activeWarps = aw
		}
	}
	residentActive := blocksPerSM * activeWarps
	barrierHide := 1 - residentActive/t.WarpsToHide
	if barrierHide < 0 {
		barrierHide = 0
	}
	if s.Barriers > 0 {
		accessesPerBarrier := float64(s.AccessEvents) / float64(s.Barriers)
		perBarrier := t.SyncCycles + barrierHide*t.MemLatency*accessesPerBarrier
		throughputCycles += perBarrier * float64(s.Barriers) / (smsUsed * blocksPerSM)
	}

	// Per-block critical path.
	blockIssue := warpsPerBlock * perWarpIssue
	if blockIssue > maxIssuePerSM {
		blockIssue = maxIssuePerSM
	}
	criticalCycles := float64(s.MaxBlockWarpInstrs)/blockIssue +
		float64(s.MaxBlockIters)*t.SyncCycles
	// Exposed memory latency: scales down as resident warps approach the
	// hiding threshold.
	hide := 1 - residentWarps/t.WarpsToHide
	if hide > 0 {
		criticalCycles += float64(s.MaxBlockAccesses) * t.MemLatency * hide
	}

	computeCycles := throughputCycles
	if criticalCycles > computeCycles {
		computeCycles = criticalCycles
	}
	computeSec := computeCycles / clockHz
	memSec := float64(s.DRAMBytes()) / spec.HBMBandwidth
	sec := computeSec
	if memSec > sec {
		sec = memSec
	}
	return time.Duration(sec*1e9)*time.Nanosecond + t.LaunchOverhead
}

// coreRoundUtil mirrors roofline.AdaptedCeiling's utilization term:
// x / (MAXR * ceil(x/MAXR)) for x = mean active lanes per iteration times
// the concurrently resident block count.
func coreRoundUtil(spec cuda.DeviceSpec, s cuda.KernelStats) float64 {
	if s.Iter.SumNop == 0 {
		return 1
	}
	resident := s.Occupancy.BlocksPerSM
	if resident < 1 {
		resident = 1
	}
	conc := resident * spec.SMs
	if conc > s.Grid {
		conc = s.Grid
	}
	x := s.Iter.MeanActiveLanes() * float64(conc)
	maxr := float64(spec.INT32Lanes())
	if x < maxr {
		// Unsaturated device: the throughput term's SM/warp scaling and
		// the critical-path term already model underutilization; the
		// round-rounding penalty applies only past saturation.
		return 1
	}
	rounds := math.Ceil(x / maxr)
	return x / (maxr * rounds)
}

// CopyTime models a host<->device transfer at link bandwidth plus latency.
func (t *GPUTimer) CopyTime(spec cuda.DeviceSpec, bytes int64) time.Duration {
	sec := spec.LinkLatency + float64(bytes)/spec.LinkBW
	return time.Duration(sec * 1e9)
}

// GCUPS returns billions of DP-cell updates per second for the given cell
// count and duration, the paper's headline throughput metric.
func GCUPS(cells int64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(cells) / d.Seconds() / 1e9
}
