package perfmodel

import (
	"testing"
	"time"

	"logan/internal/cuda"
)

func TestCoreRoundUtilRegimes(t *testing.T) {
	spec := cuda.TeslaV100()
	// No iteration data: neutral.
	var empty cuda.KernelStats
	if got := coreRoundUtil(spec, empty); got != 1 {
		t.Fatalf("empty util = %v, want 1", got)
	}
	// Unsaturated device: neutral (handled by other terms).
	s := cuda.KernelStats{Grid: 2, Block: 32, Occupancy: spec.OccupancyFor(32, 0)}
	s.Iter.SumNop = 10
	s.Iter.SumNopAct = 10 * 16 // 16 active lanes
	if got := coreRoundUtil(spec, s); got != 1 {
		t.Fatalf("unsaturated util = %v, want 1", got)
	}
	// Saturated with exact multiples: utilization 1.
	s = cuda.KernelStats{Grid: 100000, Block: 128, Occupancy: spec.OccupancyFor(128, 0)}
	s.Iter.SumNop = 10
	s.Iter.SumNopAct = 10 * 128
	got := coreRoundUtil(spec, s)
	if got <= 0 || got > 1 {
		t.Fatalf("saturated util = %v outside (0,1]", got)
	}
	// Just past a round boundary: utilization near 0.5.
	s.Iter.SumNopAct = 10 * 128.1
	if got := coreRoundUtil(spec, s); got > 1 {
		t.Fatalf("past-boundary util = %v", got)
	}
}

func TestKernelTimeBarrierOverheadAmortizes(t *testing.T) {
	tm := NewV100Timer()
	spec := cuda.TeslaV100()
	// Same total work and barriers; the low-occupancy shape (1024-thread
	// blocks, 2 resident) must pay more barrier overhead than the
	// high-occupancy one (128-thread, 16 resident).
	mk := func(block int) cuda.KernelStats {
		s := cuda.KernelStats{
			Grid: 100000, Block: block,
			WarpInstrs: 1e10, Barriers: 1e8, AccessEvents: 3e8,
			MaxBlockWarpInstrs: 1e5, MaxBlockIters: 1e3,
			Occupancy: spec.OccupancyFor(block, 0),
		}
		s.Iter.SumNop = 1e3
		s.Iter.SumNopAct = 1e3 * 64 // 64 active lanes per iteration
		return s
	}
	low := tm.KernelTime(spec, mk(1024))
	high := tm.KernelTime(spec, mk(128))
	if low <= high {
		t.Fatalf("low-occupancy shape %v not slower than high-occupancy %v", low, high)
	}
	_ = time.Second
}
