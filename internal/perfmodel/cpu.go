package perfmodel

import (
	"math"
	"runtime"
	"time"
)

// CPUPlatform models one of the paper's host machines for batch pairwise
// alignment: aggregate DP-cell throughput with a working-set (cache
// pressure) penalty, plus per-pair and fixed overheads. The per-pair
// overhead is what makes both SeqAn and ksw2 spend several seconds on 100K
// alignments even at tiny X (Tables II/III first rows); the cache penalty
// is what collapses ksw2 at large band widths (Table III last rows).
type CPUPlatform struct {
	Name    string
	Threads int

	// CellRatePerThread is the DP-cell throughput of one thread when the
	// working set fits in L1 (cells/second).
	CellRatePerThread float64
	// ParallelEff is the scaling efficiency across all threads (SMT
	// sharing, NUMA, OpenMP overhead).
	ParallelEff float64

	// L1Bytes/L2Bytes are per-core cache capacities; CachePenaltyL2 and
	// CachePenaltyDRAM are the rate divisors applied when a pair's DP
	// working set spills past L1 into L2 or past L2 entirely. Penalties
	// interpolate on a log scale between the three regimes.
	L1Bytes          int
	L2Bytes          int
	CachePenaltyL2   float64
	CachePenaltyDRAM float64

	// PerPairOverhead is the host-side cost per alignment (object setup,
	// scheduling, result handling). Startup is the fixed batch cost
	// (thread pool spin-up, memory arenas).
	PerPairOverhead time.Duration
	Startup         time.Duration
}

// POWER9x2 models the paper's SeqAn platform: a dual-socket IBM POWER9
// server, 2 x 22 SMT4 cores, 168 worker threads (paper §VI-A). The cell
// rate is calibrated against Table II's X=5000 row (SeqAn 176.6 s for the
// measured X-drop cell volume); overheads against the X=10 row.
func POWER9x2() CPUPlatform {
	return CPUPlatform{
		Name:              "2x IBM POWER9 (168 threads)",
		Threads:           168,
		CellRatePerThread: 1.5e8,
		ParallelEff:       0.9,
		L1Bytes:           32 << 10,
		L2Bytes:           512 << 10,
		CachePenaltyL2:    1.6,
		CachePenaltyDRAM:  4.0,
		PerPairOverhead:   45 * time.Microsecond,
		Startup:           400 * time.Millisecond,
	}
}

// SkylakeGold models the paper's ksw2 platform: dual Intel Xeon Gold 6148,
// 2 x 20 cores, 80 threads (paper §VI-A). The vectorised cell rate is
// calibrated against Table III's X=100 row; the cache penalties against
// the X=2500/5000 rows, where ksw2's ~60 KB-per-row band arrays thrash L1
// and collapse throughput by an order of magnitude.
func SkylakeGold() CPUPlatform {
	return CPUPlatform{
		Name:              "2x Intel Xeon Gold 6148 (80 threads)",
		Threads:           80,
		CellRatePerThread: 1.35e8,
		ParallelEff:       0.92,
		L1Bytes:           32 << 10,
		L2Bytes:           1 << 20,
		CachePenaltyL2:    3.0,
		CachePenaltyDRAM:  14.0,
		PerPairOverhead:   55 * time.Microsecond,
		Startup:           400 * time.Millisecond,
	}
}

// cachePenalty returns the throughput divisor for a per-pair DP working set
// of the given size. Below L1 the penalty is 1; it ramps log-linearly to
// CachePenaltyL2 at the L2 boundary and on to CachePenaltyDRAM at 8x L2,
// beyond which it is flat (streaming from DRAM).
func (p CPUPlatform) cachePenalty(workingSetBytes int) float64 {
	ws := float64(workingSetBytes)
	l1, l2 := float64(p.L1Bytes), float64(p.L2Bytes)
	switch {
	case ws <= l1 || l1 <= 0:
		return 1
	case ws <= l2:
		f := math.Log(ws/l1) / math.Log(l2/l1)
		return math.Exp(math.Log(1)*(1-f) + math.Log(p.CachePenaltyL2)*f)
	default:
		hi := 8 * l2
		if ws >= hi {
			return p.CachePenaltyDRAM
		}
		f := math.Log(ws/l2) / math.Log(hi/l2)
		return math.Exp(math.Log(p.CachePenaltyL2)*(1-f) + math.Log(p.CachePenaltyDRAM)*f)
	}
}

// AggregateRate returns the platform's DP-cell throughput in cells/second
// for a per-pair working set of the given size.
func (p CPUPlatform) AggregateRate(workingSetBytes int) float64 {
	base := p.CellRatePerThread * float64(p.Threads) * p.ParallelEff
	return base / p.cachePenalty(workingSetBytes)
}

// LocalCellRatePerWorker is a conservative prior for the DP-cell
// throughput of one worker of this repository's own Go X-drop pool
// (internal/xdrop.Pool) on a contemporary core. It seeds the hybrid
// scheduler's CPU throughput estimate before the first batch has been
// observed; the estimate is then corrected online from measured batch
// rates, so this constant only shapes the very first split.
const LocalCellRatePerWorker = 5e7

// LocalCPUThroughput returns the seed throughput estimate (cells/second)
// for a local Go worker pool of the given width.
func LocalCPUThroughput(workers int) float64 {
	if workers < 1 {
		workers = 1
	}
	return LocalCellRatePerWorker * float64(workers)
}

// LocalSimGPUThroughput returns the seed wall-clock throughput estimate
// for one simulated device executing on this host. The scheduler compares
// workers in one currency — host wall time — and a simulated GPU's blocks
// run on a GOMAXPROCS-wide host pool through the counting simulator,
// whose accounting roughly halves the plain kernel rate. Deliberately in
// the same unit (and order of magnitude) as LocalCPUThroughput, unlike
// the modeled-device ceiling core.PeakCellRate: seeding the scheduler
// with modeled device seconds would starve the CPU pool for the dozens of
// batches the EWMA needs to unwind a ~1000x unit mismatch.
func LocalSimGPUThroughput() float64 {
	return LocalCPUThroughput(runtime.GOMAXPROCS(0)) / 2
}

// BatchTime models aligning nPairs with the given total DP-cell count and
// per-pair working set. The per-pair overhead is charged serially: it is
// the non-parallelizable host work (object construction, result handling)
// that Amdahl's law leaves exposed even on 168 threads, and it is why the
// small-X rows of Tables II/III cost seconds on the CPU platforms.
func (p CPUPlatform) BatchTime(nPairs int, cells int64, workingSetBytes int) time.Duration {
	compute := float64(cells) / p.AggregateRate(workingSetBytes)
	overhead := float64(nPairs) * p.PerPairOverhead.Seconds()
	sec := p.Startup.Seconds() + overhead + compute
	return time.Duration(sec * 1e9)
}
