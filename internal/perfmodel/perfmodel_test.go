package perfmodel

import (
	"testing"
	"time"

	"logan/internal/cuda"
)

func v100() cuda.DeviceSpec { return cuda.TeslaV100() }

// fullGridStats fabricates a launch that saturates the device: many blocks,
// full warps, no memory pressure.
func fullGridStats(grid, block int, warpInstrs int64) cuda.KernelStats {
	s := cuda.KernelStats{
		Grid:               grid,
		Block:              block,
		WarpInstrs:         warpInstrs,
		MaxBlockWarpInstrs: warpInstrs / int64(grid),
		MaxBlockIters:      10,
		Occupancy:          cuda.TeslaV100().OccupancyFor(block, 0),
	}
	return s
}

func TestKernelTimeThroughputRegime(t *testing.T) {
	tm := NewV100Timer()
	// 1e9 warp instructions on a saturated grid should take about
	// 1e9 / 220.8e9 s = ~4.5 ms: the INT32 ceiling.
	s := fullGridStats(100000, 128, 1e9)
	got := tm.KernelTime(v100(), s)
	wantSec := 1e9 / 220.8e9
	want := time.Duration(wantSec * float64(time.Second))
	lo, hi := want*9/10, want*3/2
	if got < lo || got > hi {
		t.Errorf("throughput kernel time = %v, want within [%v, %v]", got, lo, hi)
	}
}

func TestKernelTimeScalesWithWork(t *testing.T) {
	tm := NewV100Timer()
	t1 := tm.KernelTime(v100(), fullGridStats(100000, 128, 1e9))
	t2 := tm.KernelTime(v100(), fullGridStats(100000, 128, 2e9))
	ratio := float64(t2) / float64(t1)
	if ratio < 1.8 || ratio > 2.2 {
		t.Errorf("doubling work changed time by %.2fx, want ~2x", ratio)
	}
}

func TestKernelTimeMemoryBound(t *testing.T) {
	tm := NewV100Timer()
	s := fullGridStats(100000, 128, 1000) // trivial compute
	s.DRAMReadBytes = 9e9                 // 9 GB at 900 GB/s = 10 ms
	got := tm.KernelTime(v100(), s)
	if got < 9*time.Millisecond || got > 12*time.Millisecond {
		t.Errorf("memory-bound kernel time = %v, want ~10ms", got)
	}
}

func TestKernelTimeCriticalPathSingleBlock(t *testing.T) {
	tm := NewV100Timer()
	// One block cannot use more than one SM: same work on 1 block must be
	// far slower than spread over 1000 blocks.
	one := cuda.KernelStats{
		Grid: 1, Block: 128, WarpInstrs: 1e8,
		MaxBlockWarpInstrs: 1e8, MaxBlockIters: 1e4,
		Occupancy: v100().OccupancyFor(128, 0),
	}
	many := fullGridStats(1000, 128, 1e8)
	tOne := tm.KernelTime(v100(), one)
	tMany := tm.KernelTime(v100(), many)
	if tOne < 50*tMany {
		t.Errorf("single block %v vs grid %v: expected >=50x critical-path penalty", tOne, tMany)
	}
}

func TestKernelTimeLatencyExposure(t *testing.T) {
	tm := NewV100Timer()
	// A single-thread block with per-cell DRAM accesses pays exposed
	// latency (Table I "None" row mechanism).
	serial := cuda.KernelStats{
		Grid: 1, Block: 1, WarpInstrs: 1e6,
		MaxBlockWarpInstrs: 1e6, MaxBlockIters: 1e4, MaxBlockAccesses: 3e6,
		AccessEvents: 3e6,
		Occupancy:    v100().OccupancyFor(1, 0),
	}
	noMem := serial
	noMem.MaxBlockAccesses = 0
	withLat := tm.KernelTime(v100(), serial)
	without := tm.KernelTime(v100(), noMem)
	if withLat < 2*without {
		t.Errorf("latency exposure %v vs %v: expected >=2x from unhidden DRAM latency", withLat, without)
	}
}

func TestCopyTime(t *testing.T) {
	tm := NewV100Timer()
	spec := v100()
	got := tm.CopyTime(spec, 32e9) // 32 GB at 32 GB/s = ~1s
	if got < 990*time.Millisecond || got > 1100*time.Millisecond {
		t.Errorf("copy time = %v, want ~1s", got)
	}
	if zero := tm.CopyTime(spec, 0); zero > time.Millisecond {
		t.Errorf("zero-byte copy = %v, want only link latency", zero)
	}
}

func TestGCUPS(t *testing.T) {
	if got := GCUPS(2e9, time.Second); got != 2.0 {
		t.Errorf("GCUPS = %v, want 2", got)
	}
	if got := GCUPS(100, 0); got != 0 {
		t.Errorf("GCUPS at zero duration = %v, want 0", got)
	}
}

func TestCPUCachePenaltyMonotonic(t *testing.T) {
	p := SkylakeGold()
	prev := 0.0
	for _, ws := range []int{1 << 10, 16 << 10, 32 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20, 64 << 20} {
		pen := p.cachePenalty(ws)
		if pen < prev-1e-9 {
			t.Fatalf("cache penalty decreased at ws=%d: %v < %v", ws, pen, prev)
		}
		prev = pen
	}
	if got := p.cachePenalty(1 << 10); got != 1 {
		t.Errorf("penalty under L1 = %v, want 1", got)
	}
	if got := p.cachePenalty(1 << 30); got != p.CachePenaltyDRAM {
		t.Errorf("penalty far past L2 = %v, want %v", got, p.CachePenaltyDRAM)
	}
}

func TestCPUBatchTimeComposition(t *testing.T) {
	p := POWER9x2()
	small := p.BatchTime(100000, 0, 1<<10)
	// Pure overhead: 100K * 45us + 0.4s startup = 4.9s.
	if small < 4*time.Second || small > 6*time.Second {
		t.Errorf("overhead-only batch = %v, want ~4.9s", small)
	}
	withWork := p.BatchTime(100000, 4e12, 1<<10)
	if withWork <= small {
		t.Error("adding cells did not increase batch time")
	}
	// 4e12 cells at ~2.3e10 cells/s aggregate is ~177s.
	if withWork < 100*time.Second || withWork > 400*time.Second {
		t.Errorf("batch with 4e12 cells = %v, want O(200s)", withWork)
	}
}

func TestCPUPlatformsDiffer(t *testing.T) {
	p9, sk := POWER9x2(), SkylakeGold()
	if p9.Threads != 168 {
		t.Errorf("POWER9 threads = %d, want 168 (paper)", p9.Threads)
	}
	if sk.Threads != 80 {
		t.Errorf("Skylake threads = %d, want 80 (paper)", sk.Threads)
	}
	// ksw2's platform must show a much deeper cache collapse than the
	// anti-diagonal SeqAn code path: that asymmetry is Table III's story.
	if sk.CachePenaltyDRAM <= p9.CachePenaltyDRAM {
		t.Error("Skylake ksw2 cache collapse should exceed POWER9 SeqAn penalty")
	}
}

func TestHostModel(t *testing.T) {
	h := DefaultHostModel()
	if got := h.PrepTime(100000); got < time.Second || got > 3*time.Second {
		t.Errorf("prep time for 100K pairs = %v, want ~2s (Table II X=10 row)", got)
	}
	if got := h.SetupTime(6); got != 150*time.Millisecond {
		t.Errorf("setup time 6 GPUs = %v, want 150ms", got)
	}
	if h.CollectTime(1000) != time.Millisecond {
		t.Error("collect time mismatch")
	}
}

func TestGPUTimerImplementsCudaTimer(t *testing.T) {
	var _ cuda.Timer = NewV100Timer()
}
