package perfmodel

import "time"

// HostModel captures the CPU-side costs of driving the GPU: per-pair batch
// preparation (sequence staging, seed splitting, reversal — paper §IV-B),
// per-device setup (context switching, allocations — the load-balancer
// overhead of §IV-C), and per-pair result collection. These costs are what
// keep LOGAN's small-X rows at ~2 s in Table II and what make the multi-GPU
// speed-up sub-linear.
type HostModel struct {
	PerPairPrep    time.Duration // serial host work per alignment before launch
	PerGPUSetup    time.Duration // context/alloc cost per device per batch
	PerPairCollect time.Duration // result retrieval and post-processing per pair
}

// DefaultHostModel returns the host-cost model calibrated against the
// X=10 rows of Tables II and III (where kernel time is negligible and the
// measured 2.2 s / 2.5 s are essentially all host work).
func DefaultHostModel() HostModel {
	return HostModel{
		PerPairPrep:    19 * time.Microsecond,
		PerGPUSetup:    25 * time.Millisecond,
		PerPairCollect: 1 * time.Microsecond,
	}
}

// PrepTime is the serial host preparation time for a batch.
func (h HostModel) PrepTime(nPairs int) time.Duration {
	return time.Duration(nPairs) * h.PerPairPrep
}

// SetupTime is the device setup time for a batch spread over nGPUs.
func (h HostModel) SetupTime(nGPUs int) time.Duration {
	return time.Duration(nGPUs) * h.PerGPUSetup
}

// CollectTime is the result-collection time for a batch.
func (h HostModel) CollectTime(nPairs int) time.Duration {
	return time.Duration(nPairs) * h.PerPairCollect
}
