package chain

import (
	"math/bits"
	"math/rand"
	"testing"
)

// oracleLink mirrors linkScore independently for the brute-force oracle.
func oracleLink(prev, next Anchor, maxGap int32) (int32, bool) {
	qd, td := next.QPos-prev.QPos, next.TPos-prev.TPos
	if qd <= 0 || td <= 0 || qd > maxGap || td > maxGap {
		return 0, false
	}
	dd := qd - td
	if dd < 0 {
		dd = -dd
	}
	if dd > maxGap {
		return 0, false
	}
	gain := min(min(qd, td), next.Len)
	gap := int32(0)
	if dd > 0 {
		gap = dd*next.Len/100 + int32(bits.Len32(uint32(dd)))
	}
	return gain - gap, true
}

// oracleBest exhaustively enumerates every colinear chain (all increasing
// subsequences under the chainability predicate) and returns the best
// total score. Exponential — callers keep len(anchors) small.
func oracleBest(anchors []Anchor, maxGap int32) int32 {
	best := int32(-1 << 30)
	var dfs func(last int, score int32)
	dfs = func(last int, score int32) {
		if score > best {
			best = score
		}
		for i := 0; i < len(anchors); i++ {
			if i == last {
				continue
			}
			gain, ok := oracleLink(anchors[last], anchors[i], maxGap)
			if !ok {
				continue
			}
			dfs(i, score+gain)
		}
	}
	for i := range anchors {
		dfs(i, anchors[i].Len)
	}
	return best
}

// checkChainConsistency validates the structural invariants of every
// returned chain and recomputes its score from the links.
func checkChainConsistency(t *testing.T, chains []Chain, opt Options) {
	t.Helper()
	opt = opt.withDefaults()
	for ci, ch := range chains {
		if len(ch.Anchors) == 0 {
			t.Fatalf("chain %d has no anchors", ci)
		}
		score := ch.Anchors[0].Len
		for i := 1; i < len(ch.Anchors); i++ {
			gain, ok := linkScore(ch.Anchors[i-1], ch.Anchors[i], opt.MaxGap)
			if !ok {
				t.Fatalf("chain %d link %d not chainable: %+v -> %+v", ci, i, ch.Anchors[i-1], ch.Anchors[i])
			}
			score += gain
		}
		if score < ch.Score {
			// A chain truncated at a consumed anchor reports the suffix
			// score, which never exceeds the full recomputed score.
			t.Fatalf("chain %d reported score %d exceeds recomputed %d", ci, ch.Score, score)
		}
		first, last := ch.Anchors[0], ch.Anchors[len(ch.Anchors)-1]
		if ch.QStart != first.QPos || ch.QEnd != last.QPos+last.Len ||
			ch.TStart != first.TPos || ch.TEnd != last.TPos+last.Len {
			t.Fatalf("chain %d bounds %+v disagree with anchors", ci, ch)
		}
		if ci > 0 && ch.Score > chains[ci-1].Score {
			t.Fatalf("chains not in descending score order at %d", ci)
		}
	}
}

func TestFindMatchesOracleOnSmallSets(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	opt := Options{MaxGap: 100, Lookback: 64, MinScore: -1, MinAnchors: -1}
	for trial := 0; trial < 400; trial++ {
		n := 1 + rng.Intn(8)
		anchors := make([]Anchor, n)
		for i := range anchors {
			anchors[i] = Anchor{
				QPos: int32(rng.Intn(120)),
				TPos: int32(rng.Intn(120)),
				Len:  int32(5 + rng.Intn(15)),
			}
		}
		chains := Find(anchors, opt)
		if len(chains) == 0 {
			t.Fatalf("trial %d: no chains from %d anchors with filters disabled", trial, n)
		}
		checkChainConsistency(t, chains, opt)
		want := oracleBest(anchors, opt.MaxGap)
		if got := chains[0].Score; got != want {
			t.Fatalf("trial %d anchors %+v: best chain score %d, oracle %d", trial, anchors, got, want)
		}
	}
}

func TestFindPerfectDiagonal(t *testing.T) {
	// 20 colinear k-mers on one diagonal chain into a single chain whose
	// score is the covered query span (gapless: gain = qd each link).
	var anchors []Anchor
	for i := 0; i < 20; i++ {
		anchors = append(anchors, Anchor{QPos: int32(i * 10), TPos: int32(1000 + i*10), Len: 15})
	}
	chains := Find(anchors, Options{})
	if len(chains) != 1 {
		t.Fatalf("got %d chains, want 1: %+v", len(chains), chains)
	}
	ch := chains[0]
	if len(ch.Anchors) != 20 {
		t.Fatalf("chain kept %d anchors, want 20", len(ch.Anchors))
	}
	if ch.QStart != 0 || ch.QEnd != 205 || ch.TStart != 1000 || ch.TEnd != 1205 {
		t.Fatalf("bounds %+v", ch)
	}
	want := int32(15 + 19*10)
	if ch.Score != want {
		t.Fatalf("score %d, want %d", ch.Score, want)
	}
}

func TestFindSplitsDistantLoci(t *testing.T) {
	// Two diagonal runs separated by far more than MaxGap on the target
	// must come back as two chains.
	var anchors []Anchor
	for i := 0; i < 5; i++ {
		anchors = append(anchors, Anchor{QPos: int32(i * 20), TPos: int32(i * 20), Len: 15})
		anchors = append(anchors, Anchor{QPos: int32(i * 20), TPos: int32(50000 + i*20), Len: 15})
	}
	chains := Find(anchors, Options{MinAnchors: 2, MinScore: 1})
	if len(chains) != 2 {
		t.Fatalf("got %d chains, want 2: %+v", len(chains), chains)
	}
	if chains[0].Score != chains[1].Score {
		t.Fatalf("symmetric loci scored differently: %d vs %d", chains[0].Score, chains[1].Score)
	}
}

func TestFindFilters(t *testing.T) {
	anchors := []Anchor{{QPos: 0, TPos: 0, Len: 15}, {QPos: 30, TPos: 30, Len: 15}}
	if got := Find(anchors, Options{MinAnchors: 3}); len(got) != 0 {
		t.Fatalf("MinAnchors=3 kept a 2-anchor chain: %+v", got)
	}
	if got := Find(anchors, Options{MinAnchors: -1, MinScore: 1000}); len(got) != 0 {
		t.Fatalf("MinScore=1000 kept a low-scoring chain: %+v", got)
	}
	if got := Find(nil, Options{}); got != nil {
		t.Fatalf("empty input produced %+v", got)
	}
}

func TestFindDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	anchors := make([]Anchor, 300)
	for i := range anchors {
		anchors[i] = Anchor{QPos: int32(rng.Intn(2000)), TPos: int32(rng.Intn(2000)), Len: 15}
	}
	a := Find(anchors, Options{})
	// Shuffle the input: output must not depend on arrival order.
	shuffled := make([]Anchor, len(anchors))
	copy(shuffled, anchors)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	b := Find(shuffled, Options{})
	if len(a) != len(b) {
		t.Fatalf("chain count depends on input order: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Score != b[i].Score || a[i].QStart != b[i].QStart || a[i].TStart != b[i].TStart {
			t.Fatalf("chain %d differs across input orders: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSelectPrimarySecondary(t *testing.T) {
	cands := []Candidate{
		{Group: 0, Ordinal: 0, Score: 100, QStart: 0, QEnd: 100, Anchors: 10}, // primary locus A
		{Group: 1, Ordinal: 0, Score: 80, QStart: 10, QEnd: 90, Anchors: 8},   // secondary of A
		{Group: 2, Ordinal: 0, Score: 70, QStart: 200, QEnd: 300, Anchors: 7}, // primary locus B
		{Group: 3, Ordinal: 0, Score: 20, QStart: 5, QEnd: 95, Anchors: 2},    // secondary of A
	}
	got := Select(cands, 5)
	if len(got) != 4 {
		t.Fatalf("got %d placements, want 4: %+v", len(got), got)
	}
	if !got[0].Primary || got[0].Score != 100 {
		t.Fatalf("placement 0 = %+v, want primary score 100", got[0])
	}
	if got[1].Primary || got[1].Score != 80 || got[2].Primary || got[2].Score != 20 {
		t.Fatalf("secondaries of locus A wrong: %+v %+v", got[1], got[2])
	}
	if !got[3].Primary || got[3].Score != 70 {
		t.Fatalf("placement 3 = %+v, want primary score 70", got[3])
	}
	// MapQ of locus A reflects the 100-vs-80 contest; unique locus B
	// should be maximal for its anchor support.
	if got[0].MapQ != MapQ(100, 80, 10) || got[3].MapQ != MapQ(70, 0, 7) {
		t.Fatalf("MapQ wiring wrong: %+v %+v", got[0], got[3])
	}

	if got := Select(cands, 0); len(got) != 2 {
		t.Fatalf("maxSecondary=0 kept %d placements, want 2 primaries", len(got))
	}
	if got := Select(nil, 5); got != nil {
		t.Fatalf("empty candidates produced %+v", got)
	}
}

func TestMapQ(t *testing.T) {
	cases := []struct {
		f1, f2  int32
		anchors int
		want    int
	}{
		{100, 0, 10, 40},  // unique, well-supported: full scale
		{100, 100, 10, 0}, // exact tie: ambiguous
		{100, 50, 10, 20},
		{100, 0, 5, 20}, // thin anchor support halves confidence
		{0, 0, 10, 0},
		{-5, 0, 10, 0},
		{100, 200, 10, 0}, // f2 clamped to f1
		{100, -7, 10, 40}, // negative runner-up treated as absent
	}
	for _, c := range cases {
		if got := MapQ(c.f1, c.f2, c.anchors); got != c.want {
			t.Errorf("MapQ(%d,%d,%d) = %d, want %d", c.f1, c.f2, c.anchors, got, c.want)
		}
	}
	for f1 := int32(1); f1 < 200; f1 += 7 {
		for f2 := int32(0); f2 <= f1; f2 += 11 {
			q := MapQ(f1, f2, 10)
			if q < 0 || q > 60 {
				t.Fatalf("MapQ(%d,%d,10) = %d outside [0,60]", f1, f2, q)
			}
		}
	}
}
