// Package chain implements colinear chaining of exact-match anchors, the
// middle stage of the minimap2-style mapping pipeline (minimize → chain →
// extend). Anchors — k-mer matches between a read and a reference — are
// sorted and scored with a gap-cost dynamic program whose lookback is
// bounded (O(n log n) for the sort, O(n·lookback) for the DP), then
// backtracked into disjoint chains. The package also classifies the
// chains of a read into primary and secondary loci and estimates mapping
// quality from the score gap between them.
package chain

import (
	"math/bits"
	"sort"
)

// Anchor is one exact k-mer match: start positions on the read (QPos)
// and the reference (TPos), both in the coordinates of the strand being
// chained, and the match length.
type Anchor struct {
	QPos, TPos int32
	Len        int32
}

// Options tunes the chaining DP.
type Options struct {
	// MaxGap bounds the query gap, target gap, and diagonal drift between
	// consecutive chained anchors. Default 5000.
	MaxGap int32
	// Lookback bounds how many sorted predecessors each anchor examines,
	// the minimap2 heuristic that keeps the DP near-linear. Default 64.
	Lookback int
	// MinScore drops chains scoring below it. Default 2×k-ish; zero means
	// DefaultMinScore, negative disables the floor.
	MinScore int32
	// MinAnchors drops chains with fewer anchors. Default 3; negative
	// disables the floor.
	MinAnchors int
}

// Chaining defaults: gaps beyond 5 kbp read better as two loci, 64
// predecessors is the minimap2 lookback, and three colinear 15-mers
// (score ≈ 30+) separate signal from stray repeat hits.
const (
	DefaultMaxGap     = 5000
	DefaultLookback   = 64
	DefaultMinScore   = 30
	DefaultMinAnchors = 3
)

func (o Options) withDefaults() Options {
	if o.MaxGap == 0 {
		o.MaxGap = DefaultMaxGap
	}
	if o.Lookback == 0 {
		o.Lookback = DefaultLookback
	}
	if o.MinScore == 0 {
		o.MinScore = DefaultMinScore
	}
	if o.MinAnchors == 0 {
		o.MinAnchors = DefaultMinAnchors
	}
	return o
}

// Chain is one colinear run of anchors, ascending in both coordinates.
// Bounds are half-open: the chain spans [QStart,QEnd) × [TStart,TEnd).
type Chain struct {
	Score        int32
	Anchors      []Anchor
	QStart, QEnd int32
	TStart, TEnd int32
}

// linkScore returns the DP gain of extending a chain ending at prev with
// next (both on the same diagonal band), or ok=false when the pair is
// not chainable. The gain is the newly matched length minus a gap cost
// affine in the diagonal drift — an integer rendering of minimap2's
// 0.01·k̄·|dd| + 0.5·log2|dd| so the oracle test can reproduce it
// exactly.
func linkScore(prev, next Anchor, maxGap int32) (int32, bool) {
	qd := next.QPos - prev.QPos
	td := next.TPos - prev.TPos
	if qd <= 0 || td <= 0 || qd > maxGap || td > maxGap {
		return 0, false
	}
	dd := qd - td
	if dd < 0 {
		dd = -dd
	}
	if dd > maxGap {
		return 0, false
	}
	gain := qd
	if td < gain {
		gain = td
	}
	if next.Len < gain {
		gain = next.Len
	}
	var gap int32
	if dd > 0 {
		gap = dd*next.Len/100 + int32(bits.Len32(uint32(dd)))
	}
	return gain - gap, true
}

// Find chains anchors and returns disjoint chains in descending score
// order. Anchors may arrive in any order; ties at every stage break
// deterministically so repeated runs (and the serve tier vs the offline
// path) produce identical chains.
func Find(anchors []Anchor, opt Options) []Chain {
	opt = opt.withDefaults()
	n := len(anchors)
	if n == 0 {
		return nil
	}
	srt := make([]Anchor, n)
	copy(srt, anchors)
	sort.Slice(srt, func(a, b int) bool {
		if srt[a].TPos != srt[b].TPos {
			return srt[a].TPos < srt[b].TPos
		}
		if srt[a].QPos != srt[b].QPos {
			return srt[a].QPos < srt[b].QPos
		}
		return srt[a].Len < srt[b].Len
	})
	f := make([]int32, n)   // best chain score ending at i
	pre := make([]int32, n) // predecessor index, -1 for chain start
	for i := 0; i < n; i++ {
		f[i] = srt[i].Len
		pre[i] = -1
		lo := i - opt.Lookback
		if lo < 0 {
			lo = 0
		}
		for j := i - 1; j >= lo; j-- {
			gain, ok := linkScore(srt[j], srt[i], opt.MaxGap)
			if !ok {
				continue
			}
			if s := f[j] + gain; s > f[i] {
				f[i] = s
				pre[i] = int32(j)
			}
		}
	}
	// Backtrack from chain ends in descending score order; anchors join
	// at most one chain, and a walk stopping at a consumed anchor keeps
	// only its own suffix (scored relative to the shared prefix).
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if f[ia] != f[ib] {
			return f[ia] > f[ib]
		}
		return ia < ib
	})
	used := make([]bool, n)
	var chains []Chain
	for _, end := range order {
		if used[end] {
			continue
		}
		var idx []int32
		score := f[end]
		for i := end; i >= 0; {
			if used[i] {
				score -= f[i] // suffix only: the prefix belongs to a better chain
				break
			}
			used[i] = true
			idx = append(idx, i)
			i = pre[i]
		}
		if opt.MinScore >= 0 && score < opt.MinScore {
			continue
		}
		if opt.MinAnchors >= 0 && len(idx) < opt.MinAnchors {
			continue
		}
		ch := Chain{Score: score, Anchors: make([]Anchor, len(idx))}
		for k, i := range idx {
			ch.Anchors[len(idx)-1-k] = srt[i]
		}
		first, last := ch.Anchors[0], ch.Anchors[len(ch.Anchors)-1]
		ch.QStart, ch.QEnd = first.QPos, last.QPos+last.Len
		ch.TStart, ch.TEnd = first.TPos, last.TPos+last.Len
		chains = append(chains, ch)
	}
	sort.SliceStable(chains, func(a, b int) bool {
		if chains[a].Score != chains[b].Score {
			return chains[a].Score > chains[b].Score
		}
		if chains[a].TStart != chains[b].TStart {
			return chains[a].TStart < chains[b].TStart
		}
		return chains[a].QStart < chains[b].QStart
	})
	return chains
}

// Candidate is one chained locus of a read offered to Select. Group and
// Ordinal are opaque caller tags (the mapper uses reference×strand and
// the chain's index within that group) used only for deterministic
// tie-breaking and for mapping placements back to chains.
type Candidate struct {
	Group   int
	Ordinal int
	Score   int32
	QStart  int32
	QEnd    int32
	Anchors int
}

// Placement is Select's classification of one candidate.
type Placement struct {
	Candidate
	// Primary marks the best chain of a distinct read locus; secondaries
	// are chains whose read interval substantially overlaps a better
	// primary (a repeat copy or alternative placement).
	Primary bool
	// MapQ is the 0–60 mapping-quality estimate for primaries (0 for
	// secondaries): high when the best chain dominates its runner-up.
	MapQ int
}

// secondaryOverlapFrac: a chain is secondary to a primary when their
// read intervals overlap by at least half of the shorter interval,
// minimap2's mask level.
const secondaryOverlapFrac = 0.5

// Select classifies a read's candidate loci into primaries and up to
// maxSecondary secondaries per primary, ordered primary-first in
// descending score order with each primary's secondaries following it.
func Select(cands []Candidate, maxSecondary int) []Placement {
	if len(cands) == 0 {
		return nil
	}
	order := make([]Candidate, len(cands))
	copy(order, cands)
	sort.Slice(order, func(a, b int) bool {
		if order[a].Score != order[b].Score {
			return order[a].Score > order[b].Score
		}
		if order[a].QStart != order[b].QStart {
			return order[a].QStart < order[b].QStart
		}
		if order[a].Group != order[b].Group {
			return order[a].Group < order[b].Group
		}
		return order[a].Ordinal < order[b].Ordinal
	})
	type locus struct {
		primary Placement
		subs    []Placement
		subBest int32 // best secondary score, for MapQ
		nsubs   int   // all overlapping chains, kept or not
	}
	var loci []locus
	for _, c := range order {
		attached := false
		for li := range loci {
			p := &loci[li]
			if overlapFrac(c.QStart, c.QEnd, p.primary.QStart, p.primary.QEnd) >= secondaryOverlapFrac {
				if p.nsubs == 0 {
					p.subBest = c.Score
				}
				p.nsubs++
				if len(p.subs) < maxSecondary {
					p.subs = append(p.subs, Placement{Candidate: c})
				}
				attached = true
				break
			}
		}
		if !attached {
			loci = append(loci, locus{primary: Placement{Candidate: c, Primary: true}})
		}
	}
	out := make([]Placement, 0, len(cands))
	for i := range loci {
		l := &loci[i]
		l.primary.MapQ = MapQ(l.primary.Score, l.subBest, l.primary.Anchors)
		out = append(out, l.primary)
		out = append(out, l.subs...)
	}
	return out
}

func overlapFrac(aLo, aHi, bLo, bHi int32) float64 {
	lo, hi := aLo, aHi
	if bLo > lo {
		lo = bLo
	}
	if bHi < hi {
		hi = bHi
	}
	if hi <= lo {
		return 0
	}
	shorter := aHi - aLo
	if bHi-bLo < shorter {
		shorter = bHi - bLo
	}
	if shorter <= 0 {
		return 0
	}
	return float64(hi-lo) / float64(shorter)
}

// MapQ estimates mapping quality for a primary chain: 40·(1−f2/f1)
// scaled by anchor support and clamped to [0,60], evaluated in integer
// arithmetic so every platform and path computes the identical value.
// f2 is the best secondary score (0 when the locus is unique).
func MapQ(f1, f2 int32, anchors int) int {
	if f1 <= 0 {
		return 0
	}
	if f2 < 0 {
		f2 = 0
	}
	if f2 > f1 {
		f2 = f1
	}
	n := anchors
	if n > 10 {
		n = 10
	}
	if n < 0 {
		n = 0
	}
	q := int(int64(40) * int64(f1-f2) * int64(n) / (int64(f1) * 10))
	if q > 60 {
		q = 60
	}
	if q < 0 {
		q = 0
	}
	return q
}
