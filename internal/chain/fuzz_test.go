package chain

import (
	"encoding/binary"
	"testing"
)

// FuzzChainOracle decodes arbitrary bytes into a small anchor set and
// cross-checks Find's best chain against the exhaustive brute-force
// enumeration, plus the structural invariants of every returned chain.
// Anchor sets are capped at 8 so the exponential oracle stays fast.
func FuzzChainOracle(f *testing.F) {
	f.Add([]byte{0, 0, 10, 10, 20, 20, 30, 30})
	f.Add([]byte{5, 100, 5, 100, 5, 100, 60, 60})
	f.Add([]byte{0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		maxGap := int32(20 + int(data[0]))
		data = data[1:]
		var anchors []Anchor
		for len(data) >= 4 && len(anchors) < 8 {
			v := binary.LittleEndian.Uint32(data)
			data = data[4:]
			anchors = append(anchors, Anchor{
				QPos: int32(v & 0x3ff),
				TPos: int32((v >> 10) & 0x3ff),
				Len:  int32((v>>20)&0x1f) + 1,
			})
		}
		if len(anchors) == 0 {
			return
		}
		opt := Options{MaxGap: maxGap, Lookback: 64, MinScore: -1, MinAnchors: -1}
		chains := Find(anchors, opt)
		if len(chains) == 0 {
			t.Fatalf("no chains from %d anchors with filters disabled", len(anchors))
		}
		checkChainConsistency(t, chains, opt)
		want := oracleBest(anchors, maxGap)
		if got := chains[0].Score; got != want {
			t.Fatalf("anchors %+v maxGap %d: best chain %d, oracle %d", anchors, maxGap, got, want)
		}
		// Every anchor lands in at most one chain.
		total := 0
		for _, ch := range chains {
			total += len(ch.Anchors)
		}
		if total > len(anchors) {
			t.Fatalf("chains reuse anchors: %d placed from %d", total, len(anchors))
		}
	})
}
