package logan

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"logan/internal/bella"
	"logan/internal/core"
	"logan/internal/genome"
	"logan/internal/seq"
	"logan/internal/telemetry"
	"logan/internal/xdrop"
)

// ErrTracebackUnavailable reports an OverlapConfig requesting the CIGAR
// traceback post-pass on an Overlapper whose extensions are routed through
// a Coalescer: the coalescer's public result type carries scores and
// extents but not the per-direction band widths the banded traceback
// needs. Run traceback overlaps on an engine-direct Overlapper instead.
var ErrTracebackUnavailable = errors.New("logan: traceback requires an engine-direct Overlapper (not a coalescer-routed one)")

// Read is one input sequence of an overlap run: a record name (reported in
// the PAF output) and its bases in the upper- or lower-case ACGTN
// alphabet. Sequence bytes are aliased during the run, not copied; do not
// mutate them until Run returns.
type Read struct {
	Name string
	Seq  []byte
}

// OverlapStage names a phase of the overlap pipeline in progress updates,
// in execution order: "count" (k-mer counting), "prune" (reliable-k-mer
// pruning), "matrix", "spgemm" (candidate detection), "binning" (seed
// choice), "align" (batched X-drop extension, the stage LOGAN
// accelerates), "filter" (adaptive threshold) and "done".
type OverlapStage string

// Overlap pipeline stages, plus the ingestion pseudo-stage reported while
// RunFasta is still parsing records.
const (
	StageIngest  OverlapStage = "ingest"
	StageCount   OverlapStage = OverlapStage(bella.StageCount)
	StagePrune   OverlapStage = OverlapStage(bella.StagePrune)
	StageMatrix  OverlapStage = OverlapStage(bella.StageMatrix)
	StageSpGEMM  OverlapStage = OverlapStage(bella.StageSpGEMM)
	StageBinning OverlapStage = OverlapStage(bella.StageBinning)
	StageAlign   OverlapStage = OverlapStage(bella.StageAlign)
	StageFilter  OverlapStage = OverlapStage(bella.StageFilter)
	StageDone    OverlapStage = OverlapStage(bella.StageDone)
)

// OverlapProgress is one progress snapshot of an overlap run, delivered
// via OverlapConfig.OnProgress. Counters are cumulative; fields whose
// stage has not run yet are zero.
type OverlapProgress struct {
	// Stage is the phase the pipeline is in (just finished, for stage
	// boundaries; mid-stage for "ingest" and "align" updates).
	Stage OverlapStage
	// ReadsParsed counts input records ingested so far (grows during
	// "ingest" for RunFasta; set once up front for Run).
	ReadsParsed int
	// ReliableKmers is the size of the pruned k-mer set.
	ReliableKmers int
	// CandidatePairs is the number of read pairs the SpGEMM detected.
	CandidatePairs int
	// ExtensionsDone/ExtensionsTotal track the batched X-drop extension
	// stage pair by pair (updated after every extension chunk).
	ExtensionsDone, ExtensionsTotal int
	// Overlaps is the accepted overlap count, set by the filter stage.
	Overlaps int
	// Shed counts extension chunks the engine's admission control
	// rejected (coalescer-routed Overlappers only); Retries counts the
	// re-submissions that followed. A completed run has re-submitted
	// every shed chunk successfully.
	Shed, Retries int64
}

// OverlapConfig parameterizes one overlap run: the BELLA pipeline's
// detection parameters plus the X-drop extension configuration. The zero
// value is not valid; start from DefaultOverlapConfig.
type OverlapConfig struct {
	// K is the k-mer length shared by counting, candidate detection and
	// seeding (BELLA's default is 17; must be in (0, 32]).
	K int
	// Coverage and ErrorRate describe the data set for the reliable-k-mer
	// model: mean sequencing depth and per-base error rate.
	Coverage, ErrorRate float64
	// X is the X-drop termination threshold of the extension stage.
	X int32
	// Scoring is the extension scheme. The overlap pipeline's adaptive
	// threshold is calibrated for linear DNA scoring (the paper's
	// +1/-1/-1 family); only LinearScoring configurations validate.
	Scoring Scoring
	// BinWidth is the diagonal width of seed binning (default 500).
	BinWidth int
	// MinShared is the minimum shared reliable k-mers per candidate pair
	// (default 1).
	MinShared int
	// MaxSeeds caps the seeds retained per candidate pair (default 16).
	MaxSeeds int
	// Delta is the adaptive-threshold cushion (default 0.25).
	Delta float64
	// MinOverlap drops overlaps whose aligned query extent is shorter
	// than this many bases.
	MinOverlap int
	// Traceback recovers base-level CIGAR strings for accepted overlaps
	// in a CPU post-pass (engine-direct Overlappers only).
	Traceback bool
	// BatchPairs chunks the extension stage: at most this many pairs are
	// submitted to the engine per batch, with cancellation checks and
	// progress updates between chunks (0 selects 2048).
	BatchPairs int
	// Workers bounds the CPU workers of the k-mer counting stage
	// (0 selects GOMAXPROCS).
	Workers int
	// OnProgress, when non-nil, receives progress snapshots. It is called
	// synchronously from the run's goroutines and must return quickly.
	OnProgress func(OverlapProgress)
}

// DefaultOverlapConfig mirrors BELLA's defaults for a long-read set with
// the given coverage and per-base error rate, extending with the paper's
// +1/-1/-1 scoring at the given X.
func DefaultOverlapConfig(coverage, errRate float64, x int32) OverlapConfig {
	return OverlapConfig{
		K: 17, Coverage: coverage, ErrorRate: errRate, X: x,
		Scoring:  LinearScoring(1, -1, -1),
		BinWidth: 500, MinShared: 1, MaxSeeds: 16, Delta: 0.25,
	}
}

// Validate rejects configurations the pipeline cannot honor: k outside
// (0,32], a non-linear scoring scheme, or scheme/X values the engine
// itself rejects.
func (c OverlapConfig) Validate() error {
	if c.K <= 0 || c.K > seq.MaxK {
		return fmt.Errorf("logan: overlap k=%d outside (0,%d]", c.K, seq.MaxK)
	}
	if c.Scoring.mode != scoringLinear {
		return fmt.Errorf("logan: overlap scoring must be linear (got %q): the adaptive threshold is calibrated for the paper's match/mismatch/gap family", c.Scoring.Mode())
	}
	return Config{X: c.X, Scoring: c.Scoring}.Validate()
}

// bellaConfig lowers the public configuration onto the internal pipeline.
func (c OverlapConfig) bellaConfig() bella.Config {
	batch := c.BatchPairs
	if batch <= 0 {
		batch = defaultOverlapBatch
	}
	return bella.Config{
		K: c.K, Coverage: c.Coverage, ErrorRate: c.ErrorRate,
		X: c.X, Scoring: c.Scoring.linear,
		BinWidth: c.BinWidth, MinShared: c.MinShared, MaxSeeds: c.MaxSeeds,
		Delta: c.Delta, Workers: c.Workers,
		MinOverlap: c.MinOverlap, Traceback: c.Traceback,
		AlignBatch: batch,
	}
}

// defaultOverlapBatch is the extension chunk size when BatchPairs is
// unset: big enough to amortize per-batch scheduling, small enough that
// cancellation and progress land promptly and that coalescer-routed
// chunks stay below typical merge targets.
const defaultOverlapBatch = 2048

// OverlapRecord is one accepted overlap in PAF (Pairwise mApping Format)
// coordinates — the minimap2-ecosystem interchange representation emitted
// by WritePAF. Target coordinates are always on the forward strand;
// Strand records which strand of the target the query aligns to.
type OverlapRecord struct {
	QName        string
	QLen         int
	QStart, QEnd int
	Strand       byte // '+' or '-'
	TName        string
	TLen         int
	TStart, TEnd int
	// Matches approximates PAF column 10 (residue matches): exact when
	// the traceback post-pass ran, estimated from the linear score
	// otherwise.
	Matches int
	// BlockLen is PAF column 11, the alignment block length.
	BlockLen int
	// MapQ is PAF column 12; the pipeline does not compute mapping
	// quality, so it is always 255 (missing).
	MapQ int
	// Score is the X-drop alignment score, emitted as the AS:i tag.
	Score int32
	// Divergence and CIGAR fill the de:f and cg:Z tags when
	// OverlapConfig.Traceback ran; CIGAR == "" omits both.
	Divergence float64
	CIGAR      string
	// QIndex/TIndex are the input-order indices of the two reads, for
	// callers that key on positions rather than names (they are not part
	// of the PAF serialization).
	QIndex, TIndex int
}

// AppendText appends the record's PAF line (including the trailing
// newline) to buf: the 12 mandatory columns, the AS:i score tag, and the
// de:f/cg:Z tags when a CIGAR is present. The struct conversion onto the
// internal serializer is the single source of truth for PAF bytes.
func (r OverlapRecord) AppendText(buf []byte) []byte {
	return bella.PAFRecord(r).AppendText(buf)
}

// WritePAF serializes the records to w in PAF, buffered. The bytes are
// identical to the offline cmd/bella pipeline's output for the same run —
// both paths share one serializer.
func WritePAF(w io.Writer, recs []OverlapRecord) error {
	bw := bufio.NewWriter(w)
	var line []byte
	for _, rec := range recs {
		line = rec.AppendText(line[:0])
		if _, err := bw.Write(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// OverlapStageTimes records measured wall time per pipeline stage.
type OverlapStageTimes struct {
	Count     time.Duration
	Prune     time.Duration
	Matrix    time.Duration
	SpGEMM    time.Duration
	Binning   time.Duration
	Alignment time.Duration
	Filter    time.Duration
}

// OverlapStats summarizes one overlap run.
type OverlapStats struct {
	// Reads is the ingested record count.
	Reads int
	// ReliableKmers and CandidatePairs are the detection-phase outcomes;
	// MatrixNNZ is the stored-entry count of the reads-by-k-mers sparse
	// matrix the SpGEMM multiplied.
	ReliableKmers  int
	CandidatePairs int
	MatrixNNZ      int64
	// Cells is the DP work of the extension stage; DeviceTime its modeled
	// GPU share (zero on pure-CPU engines).
	Cells      int64
	DeviceTime time.Duration
	// Times is the per-stage wall-time breakdown; WallTime the run total
	// including ingestion.
	Times    OverlapStageTimes
	WallTime time.Duration
	// Shed/Retries mirror the final OverlapProgress counters.
	Shed, Retries int64
}

// OverlapResult is the outcome of one overlap run: accepted overlaps in
// input order (by query index, then target index) plus run statistics.
type OverlapResult struct {
	Records []OverlapRecord
	Stats   OverlapStats
}

// OverlapperOptions tunes how an Overlapper submits extension work.
type OverlapperOptions struct {
	// Coalescer, when non-nil, routes extension chunks through the given
	// request coalescer instead of straight onto the engine's backend, so
	// overlap traffic merges with concurrent Align traffic of the same
	// configuration. Shed chunks (ErrOverloaded) are re-submitted with
	// backoff and counted in the run's Shed/Retries. The coalescer must
	// belong to the same engine.
	Coalescer *Coalescer
}

// Overlapper is the public overlap subsystem: the BELLA pipeline (k-mer
// seeding, candidate detection, binning) over a shared Aligner engine's
// batched X-drop extension, producing PAF records. It is the workload the
// paper integrates LOGAN into (§V) — many-to-many long-read overlap — as
// a first-class API.
//
// An Overlapper is a thin stateless front end over its engine: it is safe
// for concurrent Run calls, and the engine keeps serving Align traffic
// concurrently (extension batches interleave with request batches on the
// same worker pools and devices). Closing the engine fails in-flight runs
// with ErrClosed; the Overlapper itself has nothing to close.
type Overlapper struct {
	eng  *Aligner
	coal *Coalescer
}

// NewOverlapper builds an overlap front end over the engine.
func NewOverlapper(eng *Aligner, opt OverlapperOptions) (*Overlapper, error) {
	if eng == nil {
		return nil, errors.New("logan: NewOverlapper requires an engine")
	}
	return &Overlapper{eng: eng, coal: opt.Coalescer}, nil
}

// Engine returns the engine the Overlapper extends on.
func (o *Overlapper) Engine() *Aligner { return o.eng }

// Run detects and aligns overlaps among the given reads. Records are
// returned in deterministic order; cancelling ctx abandons the run at the
// next stage boundary or extension chunk and returns the context's error.
func (o *Overlapper) Run(ctx context.Context, reads []Read, cfg OverlapConfig) (*OverlapResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Traceback && o.coal != nil {
		return nil, ErrTracebackUnavailable
	}
	start := time.Now()
	rs := genome.ReadSet{}
	rs.Reads = make([]genome.Read, len(reads))
	for i, r := range reads {
		s, err := seq.FromBytes(r.Seq)
		if err != nil {
			return nil, fmt.Errorf("logan: read %d (%s): %w", i, r.Name, err)
		}
		rs.Reads[i] = genome.Read{ID: i, Seq: s, Label: r.Name}
	}
	return o.run(ctx, rs, cfg, start)
}

// RunFasta is Run over streamed FASTA input: records are parsed
// incrementally (reporting "ingest" progress per read) and handed to the
// pipeline once the stream ends. The parse enforces no line or record
// size limits; callers admitting untrusted input should wrap r with an
// io.LimitReader.
func (o *Overlapper) RunFasta(ctx context.Context, r io.Reader, cfg OverlapConfig) (*OverlapResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Traceback && o.coal != nil {
		return nil, ErrTracebackUnavailable
	}
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	fr := seq.NewFastaReader(r)
	rs := genome.ReadSet{}
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rec, err := fr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("logan: fasta: %w", err)
		}
		rs.Reads = append(rs.Reads, genome.Read{ID: len(rs.Reads), Seq: rec.Seq, Label: rec.Name})
		if cfg.OnProgress != nil {
			cfg.OnProgress(OverlapProgress{Stage: StageIngest, ReadsParsed: len(rs.Reads)})
		}
	}
	return o.run(ctx, rs, cfg, start)
}

// run executes the pipeline over an ingested read set.
func (o *Overlapper) run(ctx context.Context, rs genome.ReadSet, cfg OverlapConfig, start time.Time) (*OverlapResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var counters overlapCounters
	bcfg := cfg.bellaConfig()
	if cfg.OnProgress != nil {
		nReads := len(rs.Reads)
		bcfg.OnProgress = func(p bella.Progress) {
			cfg.OnProgress(OverlapProgress{
				Stage:           OverlapStage(p.Stage),
				ReadsParsed:     nReads,
				ReliableKmers:   p.ReliableKmers,
				CandidatePairs:  p.Candidates,
				ExtensionsDone:  p.PairsAligned,
				ExtensionsTotal: p.PairsTotal,
				Overlaps:        p.Overlaps,
				Shed:            counters.shed.Load(),
				Retries:         counters.retries.Load(),
			})
		}
	}
	var al bella.Aligner
	if o.coal != nil {
		al = &coalescedExtender{
			coal:     o.coal,
			counters: &counters,
			// Mirror the run-local counters into the engine registry so the
			// /metrics view sees overlap back-pressure across all runs.
			shedTotal:  o.eng.tele.Counter("logan_overlap_shed_total", "Overlap extension chunks shed by coalescer admission control."),
			retryTotal: o.eng.tele.Counter("logan_overlap_retries_total", "Re-submissions of shed overlap extension chunks."),
		}
	} else {
		al = &engineExtender{eng: o.eng}
	}
	res, err := bella.Run(ctx, rs, bcfg, al)
	if err != nil {
		return nil, err
	}
	recs := bella.PAFRecords(rs.Reads, res.Overlaps)
	out := &OverlapResult{
		Records: make([]OverlapRecord, len(recs)),
		Stats: OverlapStats{
			Reads:          len(rs.Reads),
			ReliableKmers:  res.Reliable,
			CandidatePairs: res.Candidates,
			MatrixNNZ:      res.NNZ,
			Cells:          res.Align.Cells,
			DeviceTime:     res.Align.DeviceTime,
			Times: OverlapStageTimes{
				Count: res.Times.Count, Prune: res.Times.Prune,
				Matrix: res.Times.Matrix, SpGEMM: res.Times.SpGEMM,
				Binning: res.Times.Binning, Alignment: res.Times.Alignment,
				Filter: res.Times.Filter,
			},
			Shed:    counters.shed.Load(),
			Retries: counters.retries.Load(),
		},
	}
	for i, r := range recs {
		// Structural conversion: OverlapRecord mirrors bella.PAFRecord
		// field for field, so a drifting field is a compile error, not a
		// silently dropped value.
		out.Records[i] = OverlapRecord(r)
	}
	out.Stats.WallTime = time.Since(start)
	return out, nil
}

// engineExtender feeds extension chunks straight onto the shared engine's
// backend (worker pools, devices, hybrid scheduler) and keeps the raw
// per-direction results, so the traceback post-pass can band itself.
type engineExtender struct {
	eng *Aligner
}

// Name identifies the aligner in reports.
func (e *engineExtender) Name() string { return "logan-engine" }

// AlignPairs dispatches one chunk through the engine's backend.
func (e *engineExtender) AlignPairs(ctx context.Context, pairs []seq.Pair, sc xdrop.Scoring, x int32) ([]xdrop.SeedResult, bella.AlignerStats, error) {
	start := time.Now()
	out := make([]xdrop.SeedResult, len(pairs))
	bst, err := e.eng.extendPrepared(ctx, pairs, out, core.Config{Scoring: sc, X: x})
	if err != nil {
		return nil, bella.AlignerStats{}, err
	}
	st := bella.AlignerStats{
		Pairs: len(pairs), Cells: bst.Cells,
		WallTime: time.Since(start), DeviceTime: bst.DeviceTime,
	}
	for i := range out {
		st.MaxBand = max(st.MaxBand, out[i].Left.MaxBand, out[i].Right.MaxBand)
	}
	return out, st, nil
}

// coalescedExtender routes extension chunks through a request Coalescer,
// merging overlap traffic with same-config Align requests. Chunks the
// admission control sheds are re-submitted with exponential backoff;
// every shed and retry is counted.
type coalescedExtender struct {
	coal     *Coalescer
	counters *overlapCounters
	// Registry mirrors of the run-local counters (lifetime totals).
	shedTotal, retryTotal *telemetry.Counter
}

// overlapCounters aggregates a run's shed/retry accounting across the
// extension goroutine and concurrent progress snapshots.
type overlapCounters struct {
	shed, retries atomic.Int64
}

// Name identifies the aligner in reports.
func (e *coalescedExtender) Name() string { return "logan-coalesced" }

// overlapMaxRetries bounds re-submissions of one shed chunk before the
// run fails with ErrOverloaded: sustained overload should fail the job,
// not wedge it.
const overlapMaxRetries = 10

// AlignPairs submits one chunk via the coalescer, retrying shed chunks.
func (e *coalescedExtender) AlignPairs(ctx context.Context, pairs []seq.Pair, sc xdrop.Scoring, x int32) ([]xdrop.SeedResult, bella.AlignerStats, error) {
	start := time.Now()
	// Extension chunks ride the bulk priority class: they tolerate the
	// longer BulkMaxWait merge window, and interactive /align lanes drain
	// ahead of them under contention.
	ctx = withPriority(ctx, classBulk)
	lp := make([]Pair, len(pairs))
	for i := range pairs {
		lp[i] = Pair{
			Query: pairs[i].Query, Target: pairs[i].Target,
			SeedQ: pairs[i].SeedQPos, SeedT: pairs[i].SeedTPos, SeedLen: pairs[i].SeedLen,
		}
	}
	cfg := Config{X: x, Scoring: Scoring{mode: scoringLinear, linear: sc}}
	var (
		out []Alignment
		st  Stats
		err error
	)
	backoff := time.Millisecond
	for attempt := 0; ; attempt++ {
		out, st, err = e.coal.Align(ctx, lp, cfg)
		if !errors.Is(err, ErrOverloaded) {
			break
		}
		e.counters.shed.Add(1)
		e.shedTotal.Inc()
		if attempt == overlapMaxRetries {
			return nil, bella.AlignerStats{}, fmt.Errorf("logan: overlap extension chunk shed %d times: %w", attempt+1, err)
		}
		select {
		case <-ctx.Done():
			return nil, bella.AlignerStats{}, ctx.Err()
		case <-time.After(backoff):
		}
		backoff = min(2*backoff, 100*time.Millisecond)
		e.counters.retries.Add(1)
		e.retryTotal.Inc()
	}
	if err != nil {
		return nil, bella.AlignerStats{}, err
	}
	res := make([]xdrop.SeedResult, len(out))
	for i, a := range out {
		res[i] = xdrop.SeedResult{
			Score:  a.Score,
			QBegin: a.QBegin, QEnd: a.QEnd,
			TBegin: a.TBegin, TEnd: a.TEnd,
		}
		// The public Alignment compresses the per-direction split away;
		// park the cell total on one side so SeedResult.Cells stays right.
		res[i].Left.Cells = a.Cells
	}
	ast := bella.AlignerStats{
		Pairs: st.Pairs, Cells: st.Cells,
		WallTime: time.Since(start), DeviceTime: st.DeviceTime,
	}
	return res, ast, nil
}
