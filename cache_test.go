package logan

import (
	"testing"
	"time"
)

// TestResultCacheLRU pins the bounded-LRU mechanics: capacity, recency
// refresh on get, eviction of the least recently used entry, and the
// nil-cache (disabled) behavior.
func TestResultCacheLRU(t *testing.T) {
	if NewResultCache(0) != nil || NewResultCache(-1) != nil {
		t.Fatal("non-positive capacity must disable caching")
	}
	var off *ResultCache
	if off.Len() != 0 {
		t.Fatal("nil cache Len")
	}
	if _, ok := off.get(cacheKey{}); ok {
		t.Fatal("nil cache hit")
	}
	if off.put(cacheKey{}, Alignment{}) != 0 {
		t.Fatal("nil cache eviction")
	}

	c := NewResultCache(2)
	k := func(b byte) cacheKey {
		var key cacheKey
		key.digest[0] = b
		return key
	}
	if ev := c.put(k(1), Alignment{Score: 1}); ev != 0 {
		t.Fatalf("put 1 evicted %d", ev)
	}
	if ev := c.put(k(2), Alignment{Score: 2}); ev != 0 {
		t.Fatalf("put 2 evicted %d", ev)
	}
	// Touch 1 so 2 becomes the LRU victim.
	if r, ok := c.get(k(1)); !ok || r.Score != 1 {
		t.Fatalf("get 1: %+v ok %v", r, ok)
	}
	if ev := c.put(k(3), Alignment{Score: 3}); ev != 1 {
		t.Fatalf("put 3 evicted %d, want 1", ev)
	}
	if _, ok := c.get(k(2)); ok {
		t.Fatal("LRU entry 2 not evicted")
	}
	if _, ok := c.get(k(1)); !ok {
		t.Fatal("recently used entry 1 evicted")
	}
	if c.Len() != 2 {
		t.Fatalf("Len %d, want 2", c.Len())
	}
	// Overwrite is not an eviction.
	if ev := c.put(k(1), Alignment{Score: 10}); ev != 0 {
		t.Fatalf("overwrite evicted %d", ev)
	}
	if r, _ := c.get(k(1)); r.Score != 10 {
		t.Fatalf("overwrite lost: %+v", r)
	}
}

// TestPairDigestCanonical: the content address must separate everything
// an X-drop result depends on — sequence bytes, their split, and the
// seed placement — and nothing else (same content, same digest).
func TestPairDigestCanonical(t *testing.T) {
	base := func() Pair {
		return Pair{Query: []byte("ACGTACGTACGT"), Target: []byte("ACGTACGTACGT"), SeedQ: 2, SeedT: 2, SeedLen: 4}
	}
	prep := func(p Pair) [32]byte {
		in, err := preparePairs([]Pair{p}, cfgT)
		if err != nil {
			t.Fatal(err)
		}
		return pairDigest(in[0])
	}
	d0 := prep(base())
	if d0 != prep(base()) {
		t.Fatal("identical pairs digest differently")
	}
	mut := base()
	mut.SeedQ = 3
	if d0 == prep(mut) {
		t.Fatal("seed placement not part of the digest")
	}
	mut = base()
	mut.Query = []byte("ACGTACGTACGA")
	if d0 == prep(mut) {
		t.Fatal("query bytes not part of the digest")
	}
	// Length-header check: moving a byte across the query/target boundary
	// must change the address even though the concatenation is equal.
	a := Pair{Query: []byte("ACGTA"), Target: []byte("CGT"), SeedQ: 0, SeedT: 0, SeedLen: 2}
	b := Pair{Query: []byte("ACGT"), Target: []byte("ACGT"), SeedQ: 0, SeedT: 0, SeedLen: 2}
	if prep(a) == prep(b) {
		t.Fatal("query/target split not part of the digest")
	}
}

// TestCoalescerCacheBitIdentical is the differential acceptance test of
// the result cache: for linear, affine and BLOSUM62 configurations, a
// repeated request must be served from the cache (no second engine
// batch) with results byte-identical to both the first coalesced run and
// a direct engine computation.
func TestCoalescerCacheBitIdentical(t *testing.T) {
	eng, err := NewAligner(EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	coal := eng.NewCoalescer(CoalescerOptions{
		MaxBatchPairs: 64, MaxWait: time.Millisecond,
		Cache: NewResultCache(1024),
	})
	defer coal.Close()

	cases := []struct {
		name  string
		cfg   Config
		pairs []Pair
	}{
		{"linear", DefaultConfig(50), makePairsSeed(6, 21)},
		{"affine", Config{X: 50, Scoring: AffineScoring(1, -1, -2, -1)}, makePairsSeed(6, 22)},
		{"blosum62", Config{X: 40, Scoring: MatrixScoring(Blosum62(-6))}, makeProteinPairs(6, 23)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			direct, _, err := eng.Align(ctxb, tc.pairs, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			before := coal.Metrics()
			first, _, err := coal.Align(ctxb, tc.pairs, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			mid := coal.Metrics()
			if misses := mid.CacheMisses - before.CacheMisses; misses != int64(len(tc.pairs)) {
				t.Fatalf("first run: %d cache misses, want %d", misses, len(tc.pairs))
			}
			second, st, err := coal.Align(ctxb, tc.pairs, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			after := coal.Metrics()
			if hits := after.CacheHits - mid.CacheHits; hits != int64(len(tc.pairs)) {
				t.Fatalf("second run: %d cache hits, want %d", hits, len(tc.pairs))
			}
			if after.MergedPairs != mid.MergedPairs {
				t.Fatalf("second run reached the engine: merged pairs %d -> %d", mid.MergedPairs, after.MergedPairs)
			}
			if st.Pairs != len(tc.pairs) {
				t.Fatalf("cached stats %+v, want %d pairs", st, len(tc.pairs))
			}
			for i := range direct {
				if first[i] != direct[i] {
					t.Fatalf("pair %d: coalesced %+v != direct %+v", i, first[i], direct[i])
				}
				if second[i] != direct[i] {
					t.Fatalf("pair %d: cached %+v != direct %+v (bit-identity broken)", i, second[i], direct[i])
				}
			}
		})
	}
}

// TestCoalescerCachePartialHit: a request overlapping a cached one is
// answered with its hits pre-filled and only the misses computed, and
// the merged result is position-exact.
func TestCoalescerCachePartialHit(t *testing.T) {
	eng, err := NewAligner(EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	coal := eng.NewCoalescer(CoalescerOptions{
		MaxBatchPairs: 64, MaxWait: time.Millisecond,
		Cache: NewResultCache(1024),
	})
	defer coal.Close()

	pairs := makePairsSeed(6, 31)
	direct, _, err := eng.Align(ctxb, pairs, cfgT)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := coal.Align(ctxb, pairs[0:4], cfgT); err != nil {
		t.Fatal(err)
	}
	before := coal.Metrics()
	// pairs[2:6]: two cached, two fresh — and reversed order inside the
	// request must not matter for addressing, so flip them.
	req := []Pair{pairs[5], pairs[2], pairs[3], pairs[4]}
	want := []Alignment{direct[5], direct[2], direct[3], direct[4]}
	got, st, err := coal.Align(ctxb, req, cfgT)
	if err != nil {
		t.Fatal(err)
	}
	after := coal.Metrics()
	if hits := after.CacheHits - before.CacheHits; hits != 2 {
		t.Fatalf("partial request: %d hits, want 2", hits)
	}
	if misses := after.CacheMisses - before.CacheMisses; misses != 2 {
		t.Fatalf("partial request: %d misses, want 2", misses)
	}
	if st.Pairs != 4 {
		t.Fatalf("stats %+v, want 4 pairs", st)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pair %d: %+v != %+v", i, got[i], want[i])
		}
	}
	// The two fresh pairs are now cached too: repeating the request is
	// all hits.
	if _, _, err := coal.Align(ctxb, req, cfgT); err != nil {
		t.Fatal(err)
	}
	final := coal.Metrics()
	if hits := final.CacheHits - after.CacheHits; hits != 4 {
		t.Fatalf("repeat: %d hits, want 4", hits)
	}
}

// TestCoalescerCacheEviction: a cache smaller than the working set
// counts LRU evictions in the coalescer metrics.
func TestCoalescerCacheEviction(t *testing.T) {
	eng, err := NewAligner(EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	coal := eng.NewCoalescer(CoalescerOptions{
		MaxBatchPairs: 64, MaxWait: time.Millisecond,
		Cache: NewResultCache(3),
	})
	defer coal.Close()
	if _, _, err := coal.Align(ctxb, makePairsSeed(8, 41), cfgT); err != nil {
		t.Fatal(err)
	}
	m := coal.Metrics()
	if m.CacheEvictions != 5 {
		t.Fatalf("metrics %+v: want 5 evictions from an 8-pair fill of a 3-entry cache", m)
	}
}

// BenchmarkCacheServe compares the cache hit path against recomputation
// of the same request: "hit" serves a warm repeated request entirely
// from the result cache, "recompute" runs the identical pairs straight
// on the engine. The ratio is the cache_speedup figure bench-smoke.sh
// records in BENCH_cache.json.
func BenchmarkCacheServe(b *testing.B) {
	eng, err := NewAligner(EngineOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	coal := eng.NewCoalescer(CoalescerOptions{
		MaxBatchPairs: 64, MaxWait: time.Millisecond,
		Cache: NewResultCache(1 << 12),
	})
	defer coal.Close()
	pairs := makePairsSeed(32, 51)
	if _, _, err := coal.Align(ctxb, pairs, cfgT); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.Run("hit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := coal.Align(ctxb, pairs, cfgT); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("recompute", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := eng.Align(ctxb, pairs, cfgT); err != nil {
				b.Fatal(err)
			}
		}
	})
}
