package logan

import (
	"context"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"logan/internal/seq"
)

// benchCoalescer compares the two ways 64 concurrent 16-pair requests can
// reach the engine: each request as its own batch (the pre-coalescer serve
// path), or merged into engine-sized batches by a Coalescer. The hybrid
// backend makes the per-batch cost visible: every independent batch pays
// its own partition, staging and shard dispatch, which a 16-pair batch
// cannot amortize.
func benchCoalescer(b *testing.B, coalesce bool) {
	cfg := DefaultConfig(50)
	eng, err := NewAligner(EngineOptions{Backend: Hybrid, GPUs: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()

	const clients, pairsPer = 64, 16
	var coal *Coalescer
	if coalesce {
		coal = eng.NewCoalescer(CoalescerOptions{
			MaxBatchPairs: 512, MaxWait: time.Millisecond,
		})
		defer coal.Close()
	}
	// Short pairs: the request shape where per-batch overhead, not DP
	// work, bounds serve throughput — the regime coalescing targets.
	rng := rand.New(rand.NewSource(11))
	raw := seq.RandPairSet(rng, seq.PairSetOptions{
		N: pairsPer, MinLen: 40, MaxLen: 80, ErrorRate: 0.15, SeedLen: 17,
	})
	pairs := make([]Pair, pairsPer)
	for i, p := range raw {
		pairs[i] = Pair{Query: []byte(p.Query), Target: []byte(p.Target),
			SeedQ: p.SeedQPos, SeedT: p.SeedTPos, SeedLen: p.SeedLen}
	}

	// Warm the engine before timing: the hybrid scheduler's throughput
	// estimates converge over the first batches, and the staging pools
	// grow to steady-state size.
	warm := make([]Pair, 0, 512+pairsPer)
	for len(warm) < 512 {
		warm = append(warm, pairs...)
	}
	warm = warm[:512]
	for i := 0; i < 8; i++ {
		if _, _, err := eng.Align(context.Background(), warm, cfg); err != nil {
			b.Fatal(err)
		}
	}

	b.SetParallelism((clients + runtime.GOMAXPROCS(0) - 1) / runtime.GOMAXPROCS(0))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			var err error
			if coalesce {
				_, _, err = coal.Align(context.Background(), pairs, cfg)
			} else {
				_, _, err = eng.Align(context.Background(), pairs, cfg)
			}
			if err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N*pairsPer)/b.Elapsed().Seconds(), "pairs/s")
}

// BenchmarkCoalescerOff: 64 concurrent 16-pair engine batches.
func BenchmarkCoalescerOff(b *testing.B) { benchCoalescer(b, false) }

// BenchmarkCoalescerOn: the same traffic merged by a Coalescer.
func BenchmarkCoalescerOn(b *testing.B) { benchCoalescer(b, true) }
