package logan

import (
	"context"
	"math/rand"
	"strings"
	"testing"

	"logan/internal/genome"
)

// BenchmarkMap is the mapping throughput acceptance benchmark: a
// simulated long-read set placed against a 1 Mbp synthetic reference
// through the full minimize -> chain -> extend pipeline. The custom
// metrics are the headline numbers for BENCH_map.json: reads/sec for
// throughput and anchors/read for seeding density (a collapse in
// anchors/read means the index or the minimizer extraction regressed,
// even if throughput looks fine).
func BenchmarkMap(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	g := genome.Synthetic(rng, "bench", genome.SyntheticOptions{Length: 1_000_000, RepeatFrac: 0.01})
	rs := genome.Simulate(rng, g, genome.SimOptions{
		Coverage: 0.5, MinLen: 1000, MaxLen: 5000, ErrorRate: 0.05,
	})
	reads := make([]Read, len(rs.Reads))
	for i, r := range rs.Reads {
		reads[i] = Read{Name: r.Name(), Seq: r.Seq}
	}
	eng, err := NewAligner(EngineOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	m, err := NewMapper(eng, MapperOptions{})
	if err != nil {
		b.Fatal(err)
	}
	refFasta := ">" + g.Name + "\n" + g.Seq.String() + "\n"
	if _, err := m.Build(context.Background(), strings.NewReader(refFasta), IndexOptions{}); err != nil {
		b.Fatal(err)
	}
	cfg := DefaultMapConfig(100)
	var anchors, nreads int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := m.Map(context.Background(), reads, cfg)
		if err != nil {
			b.Fatal(err)
		}
		anchors += int64(res.Stats.Anchors)
		nreads += int64(res.Stats.Reads)
	}
	b.StopTimer()
	if nreads == 0 {
		b.Fatal("benchmark mapped no reads")
	}
	b.ReportMetric(float64(nreads)/b.Elapsed().Seconds(), "reads/sec")
	b.ReportMetric(float64(anchors)/float64(nreads), "anchors/read")
}
