package logan

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"logan/internal/core"
	"logan/internal/seq"
	"logan/internal/xdrop"
)

// ErrUnsupportedConfig reports a Config whose scoring mode the selected
// backend cannot execute: the simulated GPU kernel is linear-DNA only,
// exactly like the paper's device code (§VIII names protein support as
// future work). Affine and substitution-matrix configs run on the CPU
// backend, and on Hybrid engines they are routed to the CPU shards
// automatically; only the pure-GPU backend rejects them.
var ErrUnsupportedConfig = errors.New("logan: scoring mode not supported by this backend (the GPU kernel is linear-DNA only; use the CPU or Hybrid backend for affine and matrix scoring)")

// Config is the per-request alignment configuration of the v2 API: the
// X-drop threshold plus a scoring scheme. It is deliberately separate
// from EngineOptions — engine shape (backend, devices, threads) is fixed
// at NewAligner, while every Align call carries its own Config, so one
// long-lived engine serves many scoring configurations concurrently
// (each request picking its own X, gap model and alphabet, the
// multi-tenant serve model).
type Config struct {
	// X is the X-drop threshold: extension stops when the score falls
	// more than X below the best seen (paper §III-A). Must be >= 0.
	X int32
	// Scoring selects the scheme; construct it with LinearScoring,
	// AffineScoring or MatrixScoring. The zero value is invalid — a
	// Config must state its scheme explicitly, which closes the v1
	// footgun where an explicitly all-zero Options scheme silently
	// became +1/-1/-1.
	Scoring Scoring
}

// DefaultConfig returns the paper's configuration for a given X: linear
// +1/-1/-1 DNA scoring.
func DefaultConfig(x int32) Config {
	return Config{X: x, Scoring: LinearScoring(1, -1, -1)}
}

// Validate rejects nonsensical configurations: a negative X, an unset
// Scoring, or a scheme whose parameters break the algorithm's
// assumptions (non-positive match reward, non-negative penalties). No
// silent defaults are substituted.
func (c Config) Validate() error {
	if c.X < 0 {
		return fmt.Errorf("logan: negative X %d", c.X)
	}
	return c.Scoring.Validate()
}

// scoringMode tags the live payload of a Scoring. The zero value is
// deliberately "unset", so a zero Config fails validation instead of
// silently selecting a default scheme.
type scoringMode uint8

const (
	scoringUnset scoringMode = iota
	scoringLinear
	scoringAffine
	scoringMatrix
)

// Scoring is the scheme of a Config: linear match/mismatch/gap (the
// paper's family, GPU-capable), Gotoh affine gaps, or a residue
// substitution matrix such as BLOSUM62 (both CPU-engine families).
// Construct values with LinearScoring, AffineScoring or MatrixScoring;
// the zero value is invalid.
type Scoring struct {
	mode   scoringMode
	linear xdrop.Scoring
	affine xdrop.AffineScoring
	matrix *Matrix
}

// LinearScoring selects the linear scheme: match > 0, mismatch < 0,
// gap < 0. This is the only scheme the GPU backend executes.
func LinearScoring(match, mismatch, gap int32) Scoring {
	return Scoring{mode: scoringLinear, linear: xdrop.Scoring{Match: match, Mismatch: mismatch, Gap: gap}}
}

// AffineScoring selects Gotoh affine-gap scoring: a gap of length l
// costs gapOpen + l*gapExtend (both negative). CPU-engine only; on a
// Hybrid engine these batches route to the CPU shards.
func AffineScoring(match, mismatch, gapOpen, gapExtend int32) Scoring {
	return Scoring{mode: scoringAffine, affine: xdrop.AffineScoring{
		Match: match, Mismatch: mismatch, GapOpen: gapOpen, GapExtend: gapExtend,
	}}
}

// MatrixScoring selects substitution-matrix scoring (e.g. Blosum62) with
// the matrix's linear gap penalty. Sequences are validated against the
// matrix alphabet instead of the DNA alphabet. CPU-engine only; on a
// Hybrid engine these batches route to the CPU shards.
func MatrixScoring(m *Matrix) Scoring {
	return Scoring{mode: scoringMatrix, matrix: m}
}

// Mode names the selected scheme: "linear", "affine" or "matrix" ("" for
// the invalid zero value).
func (s Scoring) Mode() string {
	switch s.mode {
	case scoringLinear:
		return "linear"
	case scoringAffine:
		return "affine"
	case scoringMatrix:
		return "matrix"
	default:
		return ""
	}
}

// MaxAbsParam returns the largest magnitude among the scheme's score
// parameters (matrix schemes report the int8 entry bound against the gap
// penalty) — the quantity a front end needs to budget against int32
// score overflow: a score accumulates at most MaxAbsParam per base, so
// MaxAbsParam * (len(query)+len(target)) must stay below MaxInt32.
func (s Scoring) MaxAbsParam() int32 {
	abs := func(v int32) int32 {
		if v < 0 {
			return -v
		}
		return v
	}
	switch s.mode {
	case scoringLinear:
		return max(abs(s.linear.Match), abs(s.linear.Mismatch), abs(s.linear.Gap))
	case scoringAffine:
		return max(abs(s.affine.Match), abs(s.affine.Mismatch),
			abs(s.affine.GapOpen)+abs(s.affine.GapExtend))
	case scoringMatrix:
		if s.matrix == nil || s.matrix.m == nil {
			return 0
		}
		// The matrix's real extreme entry (11 for BLOSUM62), not the int8
		// type bound: an over-conservative figure would make front ends
		// reject valid long-sequence requests.
		return max(s.matrix.m.MaxAbsScore(), abs(s.matrix.m.Gap))
	default:
		return 0
	}
}

// Validate rejects unset and nonsensical schemes.
func (s Scoring) Validate() error {
	switch s.mode {
	case scoringLinear:
		return s.linear.Validate()
	case scoringAffine:
		return s.affine.Validate()
	case scoringMatrix:
		if s.matrix == nil || s.matrix.m == nil {
			return fmt.Errorf("logan: matrix scoring with nil matrix")
		}
		return nil
	default:
		return fmt.Errorf("logan: Config.Scoring is unset: construct it with LinearScoring, AffineScoring or MatrixScoring")
	}
}

// Matrix is a residue substitution matrix plus a linear gap penalty —
// the scoring table of MatrixScoring. Obtain one from Blosum62 or
// NewMatrix. Two Configs group into the same coalescer batch only when
// they reference the same *Matrix, so reuse one value per table rather
// than rebuilding it per request.
type Matrix struct {
	m *xdrop.Matrix
}

// Name returns the matrix name (e.g. "BLOSUM62"), or "" for the invalid
// zero value (which MatrixScoring+Validate reject).
func (m *Matrix) Name() string {
	if m == nil || m.m == nil {
		return ""
	}
	return m.m.Name
}

// Alphabet returns the residue order of the matrix ("" for the invalid
// zero value).
func (m *Matrix) Alphabet() string {
	if m == nil || m.m == nil {
		return ""
	}
	return m.m.Alphabet()
}

// Gap returns the matrix's linear gap penalty (0 for the invalid zero
// value).
func (m *Matrix) Gap() int32 {
	if m == nil || m.m == nil {
		return 0
	}
	return m.m.Gap
}

// NewMatrix builds a substitution matrix over the given alphabet (up to
// 24 symbols) from a dense score table in alphabet order, with a negative
// linear gap penalty.
func NewMatrix(name, alphabet string, scores [][]int8, gap int32) (*Matrix, error) {
	xm, err := xdrop.NewMatrix(name, alphabet, scores, gap)
	if err != nil {
		return nil, err
	}
	return &Matrix{m: xm}, nil
}

// blosumCache interns one Matrix per gap penalty, so every caller asking
// for BLOSUM62 with the same gap shares one identity — which is what lets
// the coalescer merge their requests into one batch. The cache is capped:
// gap values are attacker-controlled on serve paths (logan-serve forwards
// the request's "gap" field), and an unbounded map would let a client
// cycling gap values grow process memory forever. Beyond the cap, calls
// return fresh uncached matrices — still correct, just not merged.
const maxBlosumCache = 64

var (
	blosumMu    sync.Mutex
	blosumCache = map[int32]*Matrix{}
)

// Blosum62 returns the standard NCBI BLOSUM62 matrix with the given
// linear gap penalty (a common choice is -6). The result is cached per
// gap value (up to a fixed cap), so repeated calls return the same
// *Matrix and their Configs compare equal. It panics if gap is not
// negative; use NewMatrix for an error-returning constructor.
func Blosum62(gap int32) *Matrix {
	blosumMu.Lock()
	defer blosumMu.Unlock()
	if m, ok := blosumCache[gap]; ok {
		return m
	}
	m := &Matrix{m: xdrop.Blosum62(gap)}
	if len(blosumCache) < maxBlosumCache {
		blosumCache[gap] = m
	}
	return m
}

// configKey is the comparable identity of a Config — the coalescer's
// grouping key. Two requests merge into one engine batch exactly when
// their keys are equal; matrix configs compare by matrix identity, which
// the Blosum62 cache makes work across independent callers.
type configKey struct {
	x      int32
	mode   scoringMode
	linear xdrop.Scoring
	affine xdrop.AffineScoring
	matrix *xdrop.Matrix
}

func (c Config) key() configKey {
	k := configKey{x: c.X, mode: c.Scoring.mode}
	switch c.Scoring.mode {
	case scoringLinear:
		k.linear = c.Scoring.linear
	case scoringAffine:
		k.affine = c.Scoring.affine
	case scoringMatrix:
		if c.Scoring.matrix != nil {
			k.matrix = c.Scoring.matrix.m
		}
	}
	return k
}

// schemeKind maps the Scoring mode onto the execution layer's family
// enum (unset maps to linear; it never reaches execution because
// Validate rejects it first).
func (c Config) schemeKind() xdrop.SchemeKind {
	switch c.Scoring.mode {
	case scoringAffine:
		return xdrop.SchemeAffine
	case scoringMatrix:
		return xdrop.SchemeMatrix
	default:
		return xdrop.SchemeLinear
	}
}

// coreConfig lowers the Config onto the execution layer's carrier.
func (c Config) coreConfig() core.Config {
	cc := core.Config{X: c.X}
	switch c.Scoring.mode {
	case scoringAffine:
		cc.Mode = xdrop.SchemeAffine
		cc.Affine = c.Scoring.affine
	case scoringMatrix:
		cc.Mode = xdrop.SchemeMatrix
		if c.Scoring.matrix != nil {
			cc.Matrix = c.Scoring.matrix.m
		}
	default:
		cc.Scoring = c.Scoring.linear
	}
	return cc
}

// ingestPair validates one Pair under the Config's alphabet and converts
// it to the engine's representation. Linear and affine configs speak DNA
// (upper-case ACGTN, zero-copy when already canonical); matrix configs
// validate against the matrix alphabet and always alias the raw bytes.
func (c Config) ingestPair(p *Pair, i int) (seq.Pair, error) {
	var q, t seq.Seq
	if c.Scoring.mode == scoringMatrix {
		m := c.Scoring.matrix.m
		if !m.ValidSeq(p.Query) {
			return seq.Pair{}, fmt.Errorf("logan: pair %d query: residues outside the %s alphabet", i, m.Name)
		}
		if !m.ValidSeq(p.Target) {
			return seq.Pair{}, fmt.Errorf("logan: pair %d target: residues outside the %s alphabet", i, m.Name)
		}
		q, t = seq.Seq(p.Query), seq.Seq(p.Target)
	} else {
		var err error
		q, err = seq.FromBytes(p.Query)
		if err != nil {
			return seq.Pair{}, fmt.Errorf("logan: pair %d query: %w", i, err)
		}
		t, err = seq.FromBytes(p.Target)
		if err != nil {
			return seq.Pair{}, fmt.Errorf("logan: pair %d target: %w", i, err)
		}
	}
	// Overflow budget, enforced here so every entry point (engine,
	// coalescer, serve, CLI) shares it: a score accumulates at most
	// MaxAbsParam per base, so the scheme's extreme parameter times the
	// pair's combined length must stay below MaxInt32 or the int32 score
	// could wrap and be returned as garbage with a nil error.
	if int64(c.Scoring.MaxAbsParam())*int64(len(q)+len(t)) >= math.MaxInt32 {
		return seq.Pair{}, fmt.Errorf(
			"logan: pair %d: score parameters (max |%d|) times sequence length (%d) could overflow the int32 score",
			i, c.Scoring.MaxAbsParam(), len(q)+len(t))
	}
	// ID is deliberately left zero: Aligner.run owns batch IDs and
	// renumbers every pair (admission-time indices are request-relative
	// inside the coalescer's merged batches).
	return seq.Pair{
		Query: q, Target: t,
		SeedQPos: p.SeedQ, SeedTPos: p.SeedT, SeedLen: p.SeedLen,
	}, nil
}
