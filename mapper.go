package logan

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"logan/internal/bella"
	"logan/internal/chain"
	"logan/internal/minidx"
	"logan/internal/seq"
	"logan/internal/telemetry"
	"logan/internal/xdrop"
)

// ErrNoIndex reports a Map call on a Mapper that has neither built nor
// loaded a reference index yet.
var ErrNoIndex = errors.New("logan: mapper has no reference index (call Build or Load first)")

// IndexOptions parameterizes reference index construction, mirroring the
// minimizer sampling scheme: (w,k)-minimizers over the reference with
// high-occurrence masking. Zero fields select the package defaults
// (k=15, w=10, mask above 256 occurrences); a negative MaxOccurrence
// disables masking.
type IndexOptions struct {
	K             int
	W             int
	MaxOccurrence int
}

// IndexStats describes a built or loaded reference index: its sampling
// parameters and the shape of the minimizer table, including the
// open-addressing occupancy exported as the logan_map_index_occupancy
// gauge.
type IndexStats struct {
	K             int     `json:"k"`
	W             int     `json:"w"`
	MaxOccurrence int     `json:"maxOccurrence"`
	Refs          int     `json:"refs"`
	Bases         int64   `json:"bases"`
	Minimizers    int64   `json:"minimizers"`
	Distinct      int64   `json:"distinct"`
	Kept          int64   `json:"kept"`
	MaskedKmers   int64   `json:"maskedKmers"`
	TableSize     int     `json:"tableSize"`
	Occupancy     float64 `json:"occupancy"`
}

// MapStage names a phase of the mapping pipeline in progress updates:
// "ingest" (MapFasta parsing), "seed" (minimizer lookup + chaining),
// "extend" (batched X-drop extension of selected chains) and "done".
type MapStage string

// Mapping pipeline stages.
const (
	MapStageIngest MapStage = "ingest"
	MapStageSeed   MapStage = "seed"
	MapStageExtend MapStage = "extend"
	MapStageDone   MapStage = "done"
)

// MapProgress is one progress snapshot of a mapping run, delivered via
// MapConfig.OnProgress. Counters are cumulative over the run; reads are
// processed in batches, so Seeded/ExtensionsTotal grow as the run
// streams through its input.
type MapProgress struct {
	// Stage is the phase that just produced this update.
	Stage MapStage
	// ReadsParsed counts input records ingested (grows during "ingest"
	// for MapFasta; set once up front for Map).
	ReadsParsed int
	// ReadsSeeded counts reads through minimizer lookup and chaining.
	ReadsSeeded int
	// Anchors and Chains are cumulative seeding outcomes.
	Anchors, Chains int64
	// ExtensionsDone/ExtensionsTotal track X-drop extensions of selected
	// chains; the total grows batch by batch as reads are seeded.
	ExtensionsDone, ExtensionsTotal int
	// Mapped counts reads with at least one accepted placement so far.
	Mapped int
	// Shed/Retries count coalescer admission rejections of extension
	// batches and their re-submissions (coalescer-routed Mappers only).
	Shed, Retries int64
}

// MapConfig parameterizes one mapping run: chaining bounds, placement
// selection, and the X-drop extension configuration. The zero value is
// not valid; start from DefaultMapConfig.
type MapConfig struct {
	// X is the X-drop termination threshold of the extension stage.
	X int32
	// Scoring is the extension scheme; mapping-quality estimation and the
	// match-count estimate are calibrated for linear DNA scoring, so only
	// LinearScoring configurations validate.
	Scoring Scoring
	// MaxGap bounds the query/target gap and diagonal drift between
	// chained anchors (0 selects the chaining default of 5000).
	MaxGap int32
	// MinChainScore drops chains scoring below it (0 selects the default
	// of 30; negative disables the floor).
	MinChainScore int32
	// MinChainAnchors drops chains with fewer anchors (0 selects the
	// default of 3; negative disables the floor).
	MinChainAnchors int
	// MaxSecondary caps reported secondary placements per primary locus
	// (0 reports primaries only; negative selects the default of 5).
	MaxSecondary int
	// BatchReads processes reads in batches of this size, with
	// cancellation checks, progress updates, and one batched extension
	// submission per batch (0 selects 512).
	BatchReads int
	// OnProgress, when non-nil, receives progress snapshots. It is called
	// synchronously and must return quickly.
	OnProgress func(MapProgress)
}

// DefaultMapConfig returns the default mapping configuration with the
// paper's +1/-1/-1 scoring at the given X-drop threshold.
func DefaultMapConfig(x int32) MapConfig {
	return MapConfig{X: x, Scoring: LinearScoring(1, -1, -1), MaxSecondary: -1}
}

// defaultMapBatch is the read batch size when BatchReads is unset.
const defaultMapBatch = 512

// defaultMapSecondaries is the per-primary secondary placement cap when
// MaxSecondary is negative (the "use defaults" value).
const defaultMapSecondaries = 5

// Validate rejects configurations the mapping pipeline cannot honor.
func (c MapConfig) Validate() error {
	if c.Scoring.mode != scoringLinear {
		return fmt.Errorf("logan: mapping scoring must be linear (got %q): mapping quality and match estimates are calibrated for the match/mismatch/gap family", c.Scoring.Mode())
	}
	if c.MaxGap < 0 {
		return fmt.Errorf("logan: mapping MaxGap %d must be >= 0", c.MaxGap)
	}
	return Config{X: c.X, Scoring: c.Scoring}.Validate()
}

// MapStageTimes records measured wall time per mapping stage.
type MapStageTimes struct {
	Seed   time.Duration
	Extend time.Duration
}

// MapStats summarizes one mapping run.
type MapStats struct {
	// Reads is the ingested record count; Mapped of them produced at
	// least one placement.
	Reads, Mapped int
	// Anchors, Chains and Extensions count seeding hits, chained loci,
	// and X-drop extensions across the run.
	Anchors, Chains, Extensions int64
	// Cells is the DP work of the extension stage; DeviceTime its
	// modeled GPU share (zero on pure-CPU engines).
	Cells      int64
	DeviceTime time.Duration
	// Times is the per-stage breakdown; WallTime the run total including
	// ingestion.
	Times    MapStageTimes
	WallTime time.Duration
	// Shed/Retries mirror the final MapProgress counters.
	Shed, Retries int64
}

// MapResult is the outcome of one mapping run: PAF records grouped by
// read in input order (each read's primary placement first, secondaries
// after it in descending chain score) plus run statistics.
type MapResult struct {
	Records []OverlapRecord
	Stats   MapStats
}

// MapperOptions tunes how a Mapper submits extension work.
type MapperOptions struct {
	// Coalescer, when non-nil, routes extension batches through the given
	// request coalescer instead of straight onto the engine's backend, so
	// mapping traffic shares QoS lanes with /align and /jobs work of the
	// same configuration. The coalescer must belong to the same engine.
	Coalescer *Coalescer
}

// Mapper is the public reference mapping subsystem: a minimizer index
// over a reference set (Build/Load/Save) and a minimap2-style
// minimize → chain → extend pipeline (Map) whose extension stage is the
// shared Aligner engine's batched X-drop. The index is swapped
// atomically, so Map calls may run concurrently with Build/Load; each
// run uses the index installed when it started.
type Mapper struct {
	eng  *Aligner
	coal *Coalescer

	mu  sync.RWMutex
	idx *minidx.Index

	// Run counters (lifetime totals, exported via the engine registry).
	mReads      *telemetry.Counter
	mMapped     *telemetry.Counter
	mAnchors    *telemetry.Counter
	mChains     *telemetry.Counter
	mExtensions *telemetry.Counter
	mRecords    *telemetry.Counter
	// Index shape gauges, refreshed on every Build/Load.
	gRefs, gBases, gKept, gOccupancy *telemetry.Gauge
}

// NewMapper builds a mapping front end over the engine, registering the
// logan_map_* instruments on the engine's telemetry registry.
func NewMapper(eng *Aligner, opt MapperOptions) (*Mapper, error) {
	if eng == nil {
		return nil, errors.New("logan: NewMapper requires an engine")
	}
	t := eng.tele
	return &Mapper{
		eng:  eng,
		coal: opt.Coalescer,

		mReads:      t.Counter("logan_map_reads_total", "Reads processed by the mapping pipeline."),
		mMapped:     t.Counter("logan_map_reads_mapped_total", "Reads that produced at least one placement."),
		mAnchors:    t.Counter("logan_map_anchors_total", "Minimizer anchors collected across mapped reads."),
		mChains:     t.Counter("logan_map_chains_total", "Colinear chains surviving score/anchor floors."),
		mExtensions: t.Counter("logan_map_extensions_total", "X-drop extensions of selected chains."),
		mRecords:    t.Counter("logan_map_records_total", "PAF records emitted by the mapping pipeline."),
		gRefs:       t.Gauge("logan_map_index_refs", "Reference sequences in the loaded minimizer index."),
		gBases:      t.Gauge("logan_map_index_bases", "Reference bases in the loaded minimizer index."),
		gKept:       t.Gauge("logan_map_index_minimizers", "Minimizer positions stored in the loaded index (after masking)."),
		gOccupancy:  t.Gauge("logan_map_index_occupancy", "Open-addressing table occupancy of the loaded index."),
	}, nil
}

// Engine returns the engine the Mapper extends on.
func (m *Mapper) Engine() *Aligner { return m.eng }

// indexStats lowers internal index statistics onto the public view.
func indexStats(x *minidx.Index) IndexStats {
	st := x.Stats()
	return IndexStats{
		K: x.K(), W: x.W(), MaxOccurrence: x.MaxOccurrence(),
		Refs: st.Refs, Bases: st.Bases, Minimizers: st.Minimizers,
		Distinct: st.Distinct, Kept: st.Kept, MaskedKmers: st.MaskedKmers,
		TableSize: st.TableSize, Occupancy: st.Occupancy,
	}
}

// setIndex installs a new index and refreshes the index gauges.
func (m *Mapper) setIndex(x *minidx.Index) IndexStats {
	m.mu.Lock()
	m.idx = x
	m.mu.Unlock()
	st := indexStats(x)
	m.gRefs.Set(float64(st.Refs))
	m.gBases.Set(float64(st.Bases))
	m.gKept.Set(float64(st.Kept))
	m.gOccupancy.Set(st.Occupancy)
	return st
}

// index returns the installed index, or nil.
func (m *Mapper) index() *minidx.Index {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.idx
}

// Ready reports whether an index is installed.
func (m *Mapper) Ready() bool { return m.index() != nil }

// IndexStats returns the installed index's statistics; ok is false when
// no index is installed yet.
func (m *Mapper) IndexStats() (st IndexStats, ok bool) {
	x := m.index()
	if x == nil {
		return IndexStats{}, false
	}
	return indexStats(x), true
}

// Build constructs a reference index from streamed FASTA input and
// installs it as the Mapper's index. Reference bases are normalized the
// same way the FASTA ingestion path normalizes reads (lower-case and
// IUPAC codes accepted); N bases never seed anchors and are stored as A,
// matching the engine's 2-bit packing. Cancelling ctx abandons the build
// between records.
func (m *Mapper) Build(ctx context.Context, r io.Reader, opt IndexOptions) (IndexStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	fr := seq.NewFastaReader(r)
	var refs []minidx.Ref
	for {
		if err := ctx.Err(); err != nil {
			return IndexStats{}, err
		}
		rec, err := fr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return IndexStats{}, fmt.Errorf("logan: index fasta: %w", err)
		}
		refs = append(refs, minidx.Ref{Name: rec.Name, Seq: rec.Seq})
	}
	x, err := minidx.Build(refs, minidx.Options{K: opt.K, W: opt.W, MaxOccurrence: opt.MaxOccurrence})
	if err != nil {
		return IndexStats{}, fmt.Errorf("logan: index build: %w", err)
	}
	return m.setIndex(x), nil
}

// Load installs an index previously written by Save, verifying its CRC.
func (m *Mapper) Load(r io.Reader) (IndexStats, error) {
	x, err := minidx.Load(r)
	if err != nil {
		return IndexStats{}, fmt.Errorf("logan: index load: %w", err)
	}
	return m.setIndex(x), nil
}

// Save writes the installed index in the versioned binary format;
// Load(Save(x)) is bit-identical to x.
func (m *Mapper) Save(w io.Writer) error {
	x := m.index()
	if x == nil {
		return ErrNoIndex
	}
	return x.Save(w)
}

// mapJob is one selected chain queued for X-drop extension.
type mapJob struct {
	readIdx int
	refID   int32
	rev     bool
	primary bool
	mapq    int
	pair    seq.Pair
	tOff    int // target window offset into the reference
}

// Map places reads against the installed index. Records come back
// grouped by read in input order, each read's primary placement first.
// Sequence bytes are aliased during the run, not copied; do not mutate
// them until Map returns. Cancelling ctx abandons the run at the next
// batch boundary.
func (m *Mapper) Map(ctx context.Context, reads []Read, cfg MapConfig) (*MapResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	rs := make([]seq.Seq, len(reads))
	for i, r := range reads {
		s, err := seq.FromBytes(r.Seq)
		if err != nil {
			return nil, fmt.Errorf("logan: read %d (%s): %w", i, r.Name, err)
		}
		rs[i] = s
	}
	return m.run(ctx, reads, rs, cfg, start)
}

// MapFasta is Map over streamed FASTA input, reporting "ingest" progress
// per read. The parse enforces no size limits; callers admitting
// untrusted input should wrap r with an io.LimitReader.
func (m *Mapper) MapFasta(ctx context.Context, r io.Reader, cfg MapConfig) (*MapResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	fr := seq.NewFastaReader(r)
	var reads []Read
	var rs []seq.Seq
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rec, err := fr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("logan: fasta: %w", err)
		}
		reads = append(reads, Read{Name: rec.Name, Seq: rec.Seq})
		rs = append(rs, rec.Seq)
		if cfg.OnProgress != nil {
			cfg.OnProgress(MapProgress{Stage: MapStageIngest, ReadsParsed: len(reads)})
		}
	}
	return m.run(ctx, reads, rs, cfg, start)
}

// run executes the mapping pipeline over ingested reads.
func (m *Mapper) run(ctx context.Context, reads []Read, rs []seq.Seq, cfg MapConfig, start time.Time) (*MapResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	idx := m.index()
	if idx == nil {
		return nil, ErrNoIndex
	}
	batch := cfg.BatchReads
	if batch <= 0 {
		batch = defaultMapBatch
	}
	maxSec := cfg.MaxSecondary
	if maxSec < 0 {
		maxSec = defaultMapSecondaries
	}
	chOpt := chain.Options{
		MaxGap:     cfg.MaxGap,
		MinScore:   cfg.MinChainScore,
		MinAnchors: cfg.MinChainAnchors,
	}

	var counters overlapCounters
	var al bella.Aligner
	if m.coal != nil {
		al = &coalescedExtender{
			coal:       m.coal,
			counters:   &counters,
			shedTotal:  m.eng.tele.Counter("logan_map_shed_total", "Mapping extension batches shed by coalescer admission control."),
			retryTotal: m.eng.tele.Counter("logan_map_retries_total", "Re-submissions of shed mapping extension batches."),
		}
	} else {
		al = &engineExtender{eng: m.eng}
	}

	res := &MapResult{}
	st := &res.Stats
	st.Reads = len(reads)
	seeder := mapSeeder{idx: idx, opt: chOpt, x: cfg.X, maxSec: maxSec}
	progress := func(stage MapStage, extDone, extTotal int) {
		if cfg.OnProgress == nil {
			return
		}
		cfg.OnProgress(MapProgress{
			Stage:       stage,
			ReadsParsed: len(reads), ReadsSeeded: seeder.seeded,
			Anchors: st.Anchors, Chains: st.Chains,
			ExtensionsDone: extDone, ExtensionsTotal: extTotal,
			Mapped: st.Mapped,
			Shed:   counters.shed.Load(), Retries: counters.retries.Load(),
		})
	}
	extDone := 0
	for lo := 0; lo < len(reads); lo += batch {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		hi := min(lo+batch, len(reads))
		seedStart := time.Now()
		var jobs []mapJob
		for i := lo; i < hi; i++ {
			jobs = seeder.seedRead(jobs, i, rs[i])
		}
		st.Times.Seed += time.Since(seedStart)
		st.Anchors, st.Chains = seeder.anchors, seeder.chains
		progress(MapStageSeed, extDone, extDone+len(jobs))

		if len(jobs) == 0 {
			continue
		}
		extStart := time.Now()
		pairs := make([]seq.Pair, len(jobs))
		for i, j := range jobs {
			pairs[i] = j.pair
		}
		out, ast, err := al.AlignPairs(ctx, pairs, cfg.Scoring.linear, cfg.X)
		if err != nil {
			return nil, err
		}
		st.Times.Extend += time.Since(extStart)
		st.Extensions += int64(len(jobs))
		st.Cells += ast.Cells
		st.DeviceTime += ast.DeviceTime
		extDone += len(jobs)

		mappedRead := -1
		for i, j := range jobs {
			rec, ok := mapRecord(reads, rs, idx, j, out[i])
			if !ok {
				continue
			}
			res.Records = append(res.Records, rec)
			if j.readIdx != mappedRead {
				mappedRead = j.readIdx
				st.Mapped++
			}
		}
		progress(MapStageExtend, extDone, extDone)
	}
	st.Shed = counters.shed.Load()
	st.Retries = counters.retries.Load()
	st.WallTime = time.Since(start)

	m.mReads.Add(float64(st.Reads))
	m.mMapped.Add(float64(st.Mapped))
	m.mAnchors.Add(float64(st.Anchors))
	m.mChains.Add(float64(st.Chains))
	m.mExtensions.Add(float64(st.Extensions))
	m.mRecords.Add(float64(len(res.Records)))
	progress(MapStageDone, extDone, extDone)
	return res, nil
}

// mapSeeder carries the per-run seeding state: minimizer extraction,
// index lookup, per-(reference,strand) chaining, and placement
// selection, emitting extension jobs.
type mapSeeder struct {
	idx    *minidx.Index
	opt    chain.Options
	x      int32
	maxSec int

	seeded  int
	anchors int64
	chains  int64

	mins []minidx.Minimizer // reused scratch
}

// seedRead appends the extension jobs of one read to jobs.
func (s *mapSeeder) seedRead(jobs []mapJob, readIdx int, rd seq.Seq) []mapJob {
	s.seeded++
	k := s.idx.K()
	qlen := len(rd)
	if qlen < k {
		return jobs
	}
	s.mins = minidx.Extract(s.mins[:0], rd, k, s.idx.W())
	// Group anchors by (reference, relative strand). Group keys are
	// iterated in sorted order below so chaining and selection stay
	// deterministic.
	groups := map[uint64][]chain.Anchor{}
	for _, mm := range s.mins {
		for _, hit := range s.idx.Lookup(mm.Hash) {
			ref, tpos, trev := minidx.UnpackPos(hit)
			rev := mm.Rev != trev // relative strand
			qpos := mm.Pos
			if rev {
				// Anchor coordinates on the reverse-complemented read, so
				// chained anchors ascend in both coordinates.
				qpos = int32(qlen-k) - mm.Pos
			}
			key := uint64(uint32(ref)) << 1
			if rev {
				key |= 1
			}
			groups[key] = append(groups[key], chain.Anchor{QPos: qpos, TPos: tpos, Len: int32(k)})
		}
	}
	keys := make([]uint64, 0, len(groups))
	for key, anchors := range groups {
		s.anchors += int64(len(anchors))
		keys = append(keys, key)
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })

	var cands []chain.Candidate
	found := make(map[uint64][]chain.Chain, len(groups))
	for _, key := range keys {
		chains := chain.Find(groups[key], s.opt)
		if len(chains) == 0 {
			continue
		}
		found[key] = chains
		s.chains += int64(len(chains))
		rev := key&1 == 1
		for i, ch := range chains {
			qs, qe := ch.QStart, ch.QEnd
			if rev {
				// Compare loci in forward-read coordinates.
				qs, qe = int32(qlen)-ch.QEnd, int32(qlen)-ch.QStart
			}
			cands = append(cands, chain.Candidate{
				Group: int(key), Ordinal: i,
				Score: ch.Score, QStart: qs, QEnd: qe,
				Anchors: len(ch.Anchors),
			})
		}
	}
	if len(cands) == 0 {
		return jobs
	}
	var rc seq.Seq // lazily computed reverse complement
	for _, pl := range chain.Select(cands, s.maxSec) {
		key := uint64(pl.Group)
		ch := found[key][pl.Ordinal]
		ref := s.idx.Refs()[key>>1]
		rev := key&1 == 1
		query := rd
		if rev {
			if rc == nil {
				rc = rd.RevComp()
			}
			query = rc
		}
		an, ok := seedAnchor(ch, query, ref.Seq, k)
		if !ok {
			continue // every anchor was a hash collision; drop the chain
		}
		// Window the target around the chain so extension never copies the
		// whole reference: X-drop can move at most X bases past the
		// query's reach under linear scoring, plus slack.
		leftNeed := int(an.QPos) + int(s.x) + 64
		rightNeed := qlen - int(an.QPos) + int(s.x) + 64
		t0 := max(int(an.TPos)-leftNeed, 0)
		t1 := min(int(an.TPos)+k+rightNeed, len(ref.Seq))
		jobs = append(jobs, mapJob{
			readIdx: readIdx,
			refID:   int32(key >> 1),
			rev:     rev,
			primary: pl.Primary,
			mapq:    pl.MapQ,
			tOff:    t0,
			pair: seq.Pair{
				Query: query, Target: ref.Seq[t0:t1:t1],
				SeedQPos: int(an.QPos), SeedTPos: int(an.TPos) - t0,
				SeedLen: k, ID: readIdx,
			},
		})
	}
	return jobs
}

// seedAnchor picks the extension seed from a chain: the median anchor,
// falling back outward when the k-mer bytes disagree (a minimizer hash
// collision or an N normalized away at build time).
func seedAnchor(ch chain.Chain, query, target seq.Seq, k int) (chain.Anchor, bool) {
	n := len(ch.Anchors)
	mid := n / 2
	for d := 0; d < n; d++ {
		var i int
		if d%2 == 0 {
			i = mid + d/2
		} else {
			i = mid - (d+1)/2
		}
		if i < 0 || i >= n {
			continue
		}
		an := ch.Anchors[i]
		q, t := int(an.QPos), int(an.TPos)
		if q < 0 || t < 0 || q+k > len(query) || t+k > len(target) {
			continue
		}
		if string(query[q:q+k]) == string(target[t:t+k]) {
			return an, true
		}
	}
	return chain.Anchor{}, false
}

// mapRecord converts one extension result into its PAF record; ok is
// false for empty alignments (the extension never cleared the seed).
func mapRecord(reads []Read, rs []seq.Seq, idx *minidx.Index, j mapJob, a xdrop.SeedResult) (OverlapRecord, bool) {
	if a.QEnd <= a.QBegin || a.TEnd <= a.TBegin {
		return OverlapRecord{}, false
	}
	qlen := len(rs[j.readIdx])
	ref := idx.Refs()[j.refID]
	rec := OverlapRecord{
		QName: reads[j.readIdx].Name, QLen: qlen,
		QStart: a.QBegin, QEnd: a.QEnd,
		Strand: '+',
		TName:  ref.Name, TLen: len(ref.Seq),
		TStart: j.tOff + a.TBegin, TEnd: j.tOff + a.TEnd,
		Score:  a.Score,
		QIndex: j.readIdx, TIndex: int(j.refID),
	}
	if j.rev {
		rec.Strand = '-'
		// The query was reverse-complemented; report read coordinates on
		// the forward strand (target coordinates are forward already).
		rec.QStart = qlen - a.QEnd
		rec.QEnd = qlen - a.QBegin
	}
	rec.BlockLen = max(rec.QEnd-rec.QStart, rec.TEnd-rec.TStart)
	// Estimate matches from the +1/-1/-1 score, as the overlap path does:
	// score = matches - errors, block ~ matches + errors.
	rec.Matches = (rec.BlockLen + int(a.Score)) / 2
	if rec.Matches < 0 {
		rec.Matches = 0
	}
	if rec.Matches > rec.BlockLen {
		rec.Matches = rec.BlockLen
	}
	if j.primary {
		rec.MapQ = j.mapq
	} else {
		rec.MapQ = 0
	}
	return rec, true
}
