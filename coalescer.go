package logan

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"logan/internal/seq"
)

// ErrOverloaded reports a Coalescer submission rejected by admission
// control: the pending-pair budget (CoalescerOptions.MaxPending) is
// exhausted. The request was not queued and did no alignment work; callers
// should retry after roughly MaxWait (an HTTP front end translates this to
// 429 with a Retry-After header, as cmd/logan-serve does).
var ErrOverloaded = errors.New("logan: coalescer overloaded: pending pair budget exhausted")

// CoalescerOptions tunes a Coalescer. The zero value selects the defaults
// documented on each field.
type CoalescerOptions struct {
	// MaxBatchPairs is the merged-batch target: the flusher submits as
	// soon as at least this many pairs of one configuration are queued,
	// taking whole requests until the target is reached (a merged batch
	// can exceed it by at most one request). Requests carrying
	// MaxBatchPairs or more pairs bypass the queue entirely — they are
	// already engine-sized. Default 4096.
	MaxBatchPairs int

	// MaxWait bounds the queueing latency: a merged batch is flushed no
	// later than MaxWait after its oldest request enqueued, full or not.
	// Smaller values favor latency, larger values favor merged-batch size
	// and therefore throughput. Default 2ms.
	MaxWait time.Duration

	// MaxPending is the admission budget in pairs, summed across every
	// configuration's queue: a request whose pairs would push the queued
	// total beyond it is rejected with ErrOverloaded instead of queueing
	// unboundedly. Default 4*MaxBatchPairs.
	MaxPending int

	// OnFlush, when non-nil, observes every engine batch the Coalescer
	// submits — merged flushes and large-request bypasses alike — with the
	// batch-level Stats (including Stats.PerBackend, which per-request
	// results omit) and the number of requests it served. It is called
	// synchronously from the flusher (or, for bypasses, the caller)
	// goroutine; keep it fast.
	OnFlush func(st Stats, requests int)
}

// Coalescer merges concurrent small Align requests into engine-sized
// batches. LOGAN's kernel only saturates the hardware when thousands of
// alignments are in flight at once, but service traffic arrives as many
// small independent requests; the Coalescer is the traffic-shaping layer
// between the two. Concurrent callers enqueue their pairs into a shared
// accumulator; a single flusher goroutine submits one merged engine batch
// when either MaxBatchPairs pairs are waiting or the oldest request has
// waited MaxWait (deadline-bounded flush), then scatters the results and
// per-request stats back to each caller in submission order.
//
// Requests are request-scoped: every Align carries its own Config, and
// the accumulator groups pending requests by configuration key (X plus
// scheme; matrix configs compare by matrix identity). Only same-config
// requests merge into one engine batch — batch composition therefore
// never changes per-pair parameters, and results stay bit-identical to a
// dedicated engine per configuration. Mixed-config traffic still
// coalesces: each configuration's stream merges within its own group.
//
// The tradeoff is explicit: each request may wait up to MaxWait for the
// batch to fill, buying aggregate throughput (one partition/staging round
// and one backend dispatch for the whole batch) at the cost of bounded
// per-request latency.
//
// Admission control bounds the queue: when MaxPending pairs are already
// waiting (across all configurations), further requests fail fast with
// ErrOverloaded instead of growing the queue unboundedly (shed load is
// visible to callers, queued load is not).
//
// A Coalescer is safe for concurrent use. Close flushes the remaining
// queue and stops the flusher; it does not close the underlying Aligner.
type Coalescer struct {
	eng *Aligner
	opt CoalescerOptions

	mu      sync.Mutex
	groups  map[configKey]*coalesceGroup
	order   []*coalesceGroup // non-empty groups, in order of first enqueue
	pending int              // pairs queued across all groups (MaxPending budget)
	closed  bool

	kick chan struct{} // nudges the flusher after an enqueue
	done chan struct{} // closed by Close; flusher drains and exits
	wg   sync.WaitGroup

	m coalescerCounters

	// flusher-goroutine scratch: the merged input batch (pairs already
	// converted at admission). Only the flusher touches it. (Results are
	// not pooled: each flush allocates one exact-size slice whose
	// subranges are handed to the waiters, so the scatter is copy-free.)
	mergeBuf []seq.Pair
}

// coalesceGroup is the pending queue of one configuration: its waiters in
// FIFO order and their pair count. Groups exist only while non-empty.
type coalesceGroup struct {
	key     configKey
	cfg     Config
	waiters []*coalesceWaiter
	pending int
}

// coalesceWaiter is one queued request: its pairs — validated and
// converted at admission, so the flush never re-scans them — the enqueue
// time, and the buffered channel its result is delivered on (buffered so
// the flusher never blocks on an abandoned caller).
type coalesceWaiter struct {
	in  []seq.Pair
	enq time.Time
	ch  chan coalesceResult
}

type coalesceResult struct {
	out []Alignment
	st  Stats
	err error
}

// coalescerCounters are the Coalescer's lifetime counters (atomics; the
// gauges in CoalescerMetrics are read under c.mu instead).
type coalescerCounters struct {
	enqueued        atomic.Int64
	shed            atomic.Int64
	direct          atomic.Int64
	mergedBatches   atomic.Int64
	sizeFlushes     atomic.Int64
	deadlineFlushes atomic.Int64
	drainFlushes    atomic.Int64
	mergedPairs     atomic.Int64
	mergedRequests  atomic.Int64
	maxMergedPairs  atomic.Int64 // written only by the flusher
	waitNS          atomic.Int64
}

// CoalescerMetrics is a snapshot of a Coalescer's lifetime counters and
// current queue gauges, the observability surface behind logan-serve's
// /statz "coalescer" block.
type CoalescerMetrics struct {
	// Enqueued counts requests admitted to the queue; Shed counts requests
	// rejected with ErrOverloaded; Direct counts large requests that
	// bypassed the queue (>= MaxBatchPairs pairs).
	Enqueued, Shed, Direct int64

	// MergedBatches counts engine batches submitted by the flusher,
	// broken down by trigger: SizeFlushes reached MaxBatchPairs,
	// DeadlineFlushes hit the oldest request's MaxWait deadline, and
	// DrainFlushes happened during Close.
	MergedBatches, SizeFlushes, DeadlineFlushes, DrainFlushes int64

	// MergedPairs and MergedRequests total the pairs and requests across
	// all merged batches; MaxMergedPairs is the largest single merged
	// batch. MergedPairs/MergedBatches is the realized batching factor.
	MergedPairs, MergedRequests, MaxMergedPairs int64

	// WaitNS totals the enqueue-to-flush wait across admitted requests;
	// WaitNS/Enqueued approximates the mean coalescing latency.
	WaitNS int64

	// QueuedRequests and QueuedPairs are current-depth gauges;
	// QueuedConfigs counts the distinct configurations currently queued
	// (each flushes as its own merged batch).
	QueuedRequests, QueuedPairs, QueuedConfigs int
}

// NewCoalescer starts a coalescing layer over the engine. Zero fields of
// opt select the defaults documented on CoalescerOptions. Close the
// Coalescer to flush the residual queue and stop its flusher goroutine.
func (a *Aligner) NewCoalescer(opt CoalescerOptions) *Coalescer {
	if opt.MaxBatchPairs <= 0 {
		opt.MaxBatchPairs = 4096
	}
	if opt.MaxWait <= 0 {
		opt.MaxWait = 2 * time.Millisecond
	}
	if opt.MaxPending <= 0 {
		opt.MaxPending = 4 * opt.MaxBatchPairs
	}
	c := &Coalescer{
		eng:    a,
		opt:    opt,
		groups: make(map[configKey]*coalesceGroup),
		kick:   make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	c.wg.Add(1)
	go c.run()
	return c
}

// Options returns the Coalescer's resolved configuration (zero fields
// replaced by their defaults).
func (c *Coalescer) Options() CoalescerOptions { return c.opt }

// Align submits pairs under cfg and blocks until their merged batch has
// run or ctx is done. Results are positionally aligned with pairs and
// bit-identical to a direct Aligner.Align of the same pairs under the
// same cfg; only requests with an equal configuration (same X, same
// scheme — matrices by identity) share a merged batch.
//
// The returned Stats describe this request's share of the merged batch:
// Pairs and Cells are the request's own, while WallTime and DeviceTime
// cover the whole merged batch the request rode in (the request's pairs
// were not separately timed). Stats.PerBackend is batch-scoped and
// therefore omitted here; observe it via CoalescerOptions.OnFlush.
//
// Error contract: cfg and pairs are validated at admission, so an invalid
// configuration or pair fails only its own request and never the batch it
// would have merged into. ErrOverloaded reports admission-control
// shedding (retry later), ErrClosed reports a closed Coalescer or engine,
// ErrUnsupportedConfig a scheme the engine's backend cannot run. A ctx
// error on a queued request removes it from the queue and returns the
// ctx error — its buffers are free for reuse the moment Align returns,
// preserving Pair's zero-copy aliasing contract. If the request's merged
// batch is already executing when ctx fires, Align instead waits for
// that batch (bounded by one engine batch) and returns its result.
// Engine-sized requests that bypass the queue run alone, so there ctx is
// forwarded into the engine and cancellation aborts the work itself.
func (c *Coalescer) Align(ctx context.Context, pairs []Pair, cfg Config) ([]Alignment, Stats, error) {
	// Validate cfg before the empty-batch fast path, mirroring
	// Aligner.Align: an invalid configuration fails even with no pairs.
	if err := cfg.Validate(); err != nil {
		return nil, Stats{}, err
	}
	if ctx == nil {
		// Tolerate nil like every other entry point: the queued path
		// selects on ctx.Done(), which would panic on a nil interface.
		ctx = context.Background()
	}
	// Shed configs the engine's backend cannot run at admission: letting
	// them queue would burn MaxPending budget and a flush cycle only to
	// fan the same error out at execute time (and starve valid traffic
	// into 429s under sustained unsupported spam).
	if !c.eng.Supports(cfg) {
		return nil, Stats{}, ErrUnsupportedConfig
	}
	if len(pairs) == 0 {
		return []Alignment{}, Stats{}, nil
	}
	// Engine-sized requests gain nothing from merging: run them directly,
	// keeping the queue (and its MaxPending budget) for the small requests
	// coalescing exists to serve.
	if len(pairs) >= c.opt.MaxBatchPairs {
		if c.isClosed() {
			return nil, Stats{}, ErrClosed
		}
		c.m.direct.Add(1)
		out, st, err := c.eng.Align(ctx, pairs, cfg)
		if err == nil && c.opt.OnFlush != nil {
			c.opt.OnFlush(st, 1)
		}
		return out, st, err
	}
	in, err := preparePairs(pairs, cfg)
	if err != nil {
		return nil, Stats{}, err
	}

	w := &coalesceWaiter{in: in, ch: make(chan coalesceResult, 1)}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, Stats{}, ErrClosed
	}
	if c.pending+len(pairs) > c.opt.MaxPending {
		c.mu.Unlock()
		c.m.shed.Add(1)
		return nil, Stats{}, ErrOverloaded
	}
	w.enq = time.Now()
	key := cfg.key()
	g := c.groups[key]
	if g == nil {
		g = &coalesceGroup{key: key, cfg: cfg}
		c.groups[key] = g
		c.order = append(c.order, g)
	}
	g.waiters = append(g.waiters, w)
	g.pending += len(pairs)
	c.pending += len(pairs)
	c.mu.Unlock()
	c.m.enqueued.Add(1)

	// Nudge the flusher: it re-reads queue state on every wake, so a
	// dropped send (buffer already full) is never a lost update.
	select {
	case c.kick <- struct{}{}:
	default:
	}

	select {
	case r := <-w.ch:
		return r.out, r.st, r.err
	case <-ctx.Done():
		if c.abandon(key, w) {
			// Still queued: removed before any flush touched it, so the
			// caller may reuse its buffers immediately (the zero-copy
			// aliasing contract of Pair).
			return nil, Stats{}, ctx.Err()
		}
		// The flusher already took the request: its merged batch is
		// reading the caller's buffers right now, so honor the aliasing
		// contract by waiting out that batch (bounded by one engine
		// batch) and return its result.
		r := <-w.ch
		return r.out, r.st, r.err
	}
}

// abandon removes a still-queued waiter after its caller's context fired,
// releasing its buffers and budget. It reports false when the flusher has
// already taken the waiter (its batch is executing).
func (c *Coalescer) abandon(key configKey, w *coalesceWaiter) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	g := c.groups[key]
	if g == nil {
		return false
	}
	for i, cand := range g.waiters {
		if cand == w {
			copy(g.waiters[i:], g.waiters[i+1:])
			g.waiters[len(g.waiters)-1] = nil
			g.waiters = g.waiters[:len(g.waiters)-1]
			g.pending -= len(w.in)
			c.pending -= len(w.in)
			if len(g.waiters) == 0 {
				c.dropGroupLocked(g)
			}
			return true
		}
	}
	return false
}

// Metrics snapshots the Coalescer's counters and queue gauges.
func (c *Coalescer) Metrics() CoalescerMetrics {
	c.mu.Lock()
	qr := 0
	for _, g := range c.order {
		qr += len(g.waiters)
	}
	qp, qc := c.pending, len(c.order)
	c.mu.Unlock()
	return CoalescerMetrics{
		Enqueued:        c.m.enqueued.Load(),
		Shed:            c.m.shed.Load(),
		Direct:          c.m.direct.Load(),
		MergedBatches:   c.m.mergedBatches.Load(),
		SizeFlushes:     c.m.sizeFlushes.Load(),
		DeadlineFlushes: c.m.deadlineFlushes.Load(),
		DrainFlushes:    c.m.drainFlushes.Load(),
		MergedPairs:     c.m.mergedPairs.Load(),
		MergedRequests:  c.m.mergedRequests.Load(),
		MaxMergedPairs:  c.m.maxMergedPairs.Load(),
		WaitNS:          c.m.waitNS.Load(),
		QueuedRequests:  qr,
		QueuedPairs:     qp,
		QueuedConfigs:   qc,
	}
}

// Close stops admission, flushes every queued request, and waits for the
// flusher goroutine to exit. Idempotent. The underlying Aligner stays
// open — the Coalescer is a layer over it, not an owner.
func (c *Coalescer) Close() error {
	c.mu.Lock()
	already := c.closed
	c.closed = true
	c.mu.Unlock()
	if !already {
		close(c.done)
	}
	c.wg.Wait()
	return nil
}

func (c *Coalescer) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// flushReason tags what triggered a merged batch, for the metrics split.
type flushReason int

const (
	flushSize flushReason = iota
	flushDeadline
	flushDrain
)

// run is the flusher goroutine: it sleeps until kicked by an enqueue, the
// oldest request's deadline fires, or Close drains it; on every wake it
// submits merged batches while some group is flushable and re-arms the
// deadline timer for whatever remains.
func (c *Coalescer) run() {
	defer c.wg.Done()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for {
		select {
		case <-c.kick:
		case <-timer.C:
		case <-c.done:
			for {
				cfg, ws, npairs, reason, ok := c.take(true)
				if !ok {
					return
				}
				c.execute(cfg, ws, npairs, reason)
			}
		}
		for {
			cfg, ws, npairs, reason, ok := c.take(false)
			if ok {
				c.execute(cfg, ws, npairs, reason)
				continue
			}
			if delay := c.nextDeadline(); delay > 0 {
				// Stop-then-reset is safe on Go 1.23+ timers even if the
				// timer already fired; a stale wake just re-reads state.
				timer.Stop()
				timer.Reset(delay)
			}
			break
		}
	}
}

// oldestLocked returns the group holding the globally oldest queued
// request. Callers hold c.mu; the order slice is non-empty.
func (c *Coalescer) oldestLocked() *coalesceGroup {
	oldest := c.order[0]
	for _, g := range c.order[1:] {
		if g.waiters[0].enq.Before(oldest.waiters[0].enq) {
			oldest = g
		}
	}
	return oldest
}

// dropGroupLocked removes an emptied group from the map and order slice.
func (c *Coalescer) dropGroupLocked(g *coalesceGroup) {
	delete(c.groups, g.key)
	for i, cand := range c.order {
		if cand == g {
			copy(c.order[i:], c.order[i+1:])
			// Clear the vacated tail slot so the order array does not pin
			// the dropped group (and its config/matrix) until overwritten.
			c.order[len(c.order)-1] = nil
			c.order = c.order[:len(c.order)-1]
			break
		}
	}
}

// take pops the next merged batch under the lock: whole requests of ONE
// configuration group in FIFO order until MaxBatchPairs is covered.
// Without force it only pops when a flush trigger holds — some group
// reached the size target, or the globally oldest request has waited
// MaxWait (that request's group flushes).
func (c *Coalescer) take(force bool) (Config, []*coalesceWaiter, int, flushReason, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.order) == 0 {
		return Config{}, nil, 0, 0, false
	}
	now := time.Now()
	reason := flushDrain
	var g *coalesceGroup
	if force {
		g = c.oldestLocked()
	} else {
		// The deadline trigger is checked first: the MaxWait bound is a
		// per-request guarantee, and a config group saturating the size
		// target must not starve another group's overdue request (the
		// take loop flushes the size-ready group right after anyway).
		if oldest := c.oldestLocked(); now.Sub(oldest.waiters[0].enq) >= c.opt.MaxWait {
			g, reason = oldest, flushDeadline
			if g.pending >= c.opt.MaxBatchPairs {
				reason = flushSize
			}
		}
		if g == nil {
			for _, cand := range c.order {
				if cand.pending >= c.opt.MaxBatchPairs {
					g, reason = cand, flushSize
					break
				}
			}
		}
		if g == nil {
			return Config{}, nil, 0, 0, false
		}
	}
	n, npairs := 0, 0
	for n < len(g.waiters) && npairs < c.opt.MaxBatchPairs {
		npairs += len(g.waiters[n].in)
		n++
	}
	ws := make([]*coalesceWaiter, n)
	copy(ws, g.waiters)
	rest := copy(g.waiters, g.waiters[n:])
	clear(g.waiters[rest:]) // drop waiter refs so the group array doesn't pin them
	g.waiters = g.waiters[:rest]
	g.pending -= npairs
	c.pending -= npairs
	if len(g.waiters) == 0 {
		c.dropGroupLocked(g)
	}

	var wait int64
	for _, w := range ws {
		wait += now.Sub(w.enq).Nanoseconds()
	}
	c.m.waitNS.Add(wait)
	return g.cfg, ws, npairs, reason, true
}

// execute runs one merged same-config batch on the engine and scatters
// the results back to each waiting request in submission order. Engine
// errors at this point are systemic (e.g. ErrClosed) — per-pair and
// per-config problems were rejected at admission — so they fan out to
// every request in the batch.
func (c *Coalescer) execute(cfg Config, ws []*coalesceWaiter, npairs int, reason flushReason) {
	merged := c.mergeBuf[:0]
	for _, w := range ws {
		merged = append(merged, w.in...)
	}
	// One exact-size result allocation per flush: alignPrepared fills it,
	// and the scatter below hands each waiter its capped subrange instead
	// of copying. The array is shared but the ranges are disjoint, and the
	// Coalescer never touches it again after the scatter. The pairs were
	// validated and converted at admission, so the engine runs them
	// without a second ingest pass.
	out, st, err := c.eng.alignPrepared(context.Background(), make([]Alignment, 0, npairs), merged, cfg)
	clear(merged) // drop sequence refs so the scratch doesn't pin callers
	c.mergeBuf = merged[:0]

	c.m.mergedBatches.Add(1)
	switch reason {
	case flushSize:
		c.m.sizeFlushes.Add(1)
	case flushDeadline:
		c.m.deadlineFlushes.Add(1)
	default:
		c.m.drainFlushes.Add(1)
	}
	c.m.mergedPairs.Add(int64(npairs))
	c.m.mergedRequests.Add(int64(len(ws)))
	if int64(npairs) > c.m.maxMergedPairs.Load() { // flusher is the only writer
		c.m.maxMergedPairs.Store(int64(npairs))
	}

	// Report the batch before scattering results: a caller must not be
	// able to see its response while the flush is still unaccounted.
	if err == nil && c.opt.OnFlush != nil {
		c.opt.OnFlush(st, len(ws))
	}
	off := 0
	for _, w := range ws {
		n := len(w.in)
		if err != nil {
			w.ch <- coalesceResult{err: err}
			continue
		}
		res := out[off : off+n : off+n]
		off += n
		var cells int64
		for i := range res {
			cells += res[i].Cells
		}
		rst := Stats{
			Pairs: n, Cells: cells,
			WallTime: st.WallTime, DeviceTime: st.DeviceTime,
		}
		rst.GCUPS = rst.gcups(c.eng.opt.Backend)
		w.ch <- coalesceResult{out: res, st: rst}
	}
}

// nextDeadline returns how long until the globally oldest queued request's
// MaxWait deadline, or 0 when the queue is empty.
func (c *Coalescer) nextDeadline() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.order) == 0 {
		return 0
	}
	oldest := c.oldestLocked()
	return max(c.opt.MaxWait-time.Since(oldest.waiters[0].enq), time.Nanosecond)
}

// preparePairs applies the engine's per-pair checks (sequence alphabet
// under the config's scheme, seed bounds) and conversion before a request
// may merge with others, so one bad pair fails its own request instead of
// the whole merged batch — and the flush reuses the converted pairs
// instead of re-ingesting every byte. The messages mirror Aligner.Align's,
// with request-relative pair indices.
func preparePairs(pairs []Pair, cfg Config) ([]seq.Pair, error) {
	in := make([]seq.Pair, len(pairs))
	for i := range pairs {
		p := &pairs[i]
		sp, err := cfg.ingestPair(p, i)
		if err != nil {
			return nil, err
		}
		// Overflow-safe bounds: SeedQ+SeedLen can wrap for adversarial
		// inputs, and a pair that slips through here would panic in the
		// flusher goroutine, not the caller's.
		if p.SeedQ < 0 || p.SeedT < 0 || p.SeedLen <= 0 ||
			p.SeedQ > len(sp.Query)-p.SeedLen || p.SeedT > len(sp.Target)-p.SeedLen {
			return nil, fmt.Errorf("logan: pair %d: seed (%d,%d,len %d) outside sequences (%d, %d)",
				i, p.SeedQ, p.SeedT, p.SeedLen, len(sp.Query), len(sp.Target))
		}
		in[i] = sp
	}
	return in, nil
}
