package logan

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"logan/internal/seq"
	"logan/internal/telemetry"
)

// ErrOverloaded reports a Coalescer submission rejected by admission
// control: the tenant's pairs/sec quota is exhausted (ErrQuotaExceeded),
// the projected queue delay exceeds the adaptive target
// (CoalescerOptions.TargetDelay), or the tenant's share of the fixed
// pending-pair budget (CoalescerOptions.MaxPending, when set) is
// exhausted. The request was not queued and did no alignment work;
// callers should retry after roughly Coalescer.RetryAfter (an HTTP front
// end translates this to 429 with a Retry-After header, as
// cmd/logan-serve does).
var ErrOverloaded = errors.New("logan: coalescer overloaded")

// ErrDeadlineInfeasible reports a submission shed because its context
// deadline cannot be met: the queue ahead of it is projected to drain
// later than the deadline, so queueing it would only burn engine time on
// a result nobody can receive. It wraps ErrOverloaded, so callers (and
// HTTP front ends) that already test errors.Is(err, ErrOverloaded)
// handle it with no change.
var ErrDeadlineInfeasible = fmt.Errorf("%w: request deadline infeasible under projected queue delay", ErrOverloaded)

// CoalescerOptions tunes a Coalescer. The zero value selects the defaults
// documented on each field.
type CoalescerOptions struct {
	// MaxBatchPairs is the merged-batch target: the flusher submits as
	// soon as at least this many pairs of one lane are queued, taking
	// whole requests until the target is reached (a merged batch can
	// exceed it by at most one request). It is also the DRR quantum: each
	// size-ready lane earns one MaxBatchPairs of service credit per
	// scheduler rotation. Requests carrying MaxBatchPairs or more pairs
	// bypass the queue entirely — they are already engine-sized. Default
	// 4096.
	MaxBatchPairs int

	// MaxWait bounds the queueing latency of interactive requests: a
	// merged batch is flushed no later than MaxWait after its oldest
	// request enqueued, full or not. Smaller values favor latency, larger
	// values favor merged-batch size and therefore throughput. Default
	// 2ms.
	MaxWait time.Duration

	// BulkMaxWait is MaxWait for the bulk priority class (the /jobs
	// overlap extension chunks): bulk lanes tolerate a longer merge
	// window in exchange for fuller batches, and their deadline never
	// preempts an interactive lane's size flush. Default 4*MaxWait.
	BulkMaxWait time.Duration

	// MaxPending, when positive, is a fixed admission budget in pairs.
	// The budget is shared fairly rather than first-come-first-served:
	// each tenant with queued work may hold up to
	// MaxPending*weight/total-active-weight pairs, so a tenant flooding
	// its own share is shed (ErrOverloaded) without consuming the
	// headroom of well-behaved tenants. With a single (anonymous) tenant
	// this degrades to the plain global budget. Zero (the default)
	// selects adaptive admission instead: the controller bounds each
	// tenant's projected share-weighted queue delay by TargetDelay using
	// the backend layer's live throughput estimate.
	MaxPending int

	// TargetDelay is the adaptive admission bound (used when MaxPending
	// is zero): a request is shed with ErrOverloaded when the tenant's
	// queue, including the request itself, is projected to take longer
	// than TargetDelay to drain at the tenant's fair share of the
	// measured rate (backend throughput in cells/s divided by the EWMA
	// cells-per-pair of recent batches, weighted by tenant share).
	// Requests whose context deadline falls inside the projected delay
	// are shed early with ErrDeadlineInfeasible regardless of
	// TargetDelay. One engine batch (MaxBatchPairs) per tenant is always
	// admissible, and so is everything until the first batch has
	// calibrated the estimates. Default 10*MaxWait.
	TargetDelay time.Duration

	// Cache, when non-nil, is the content-addressed result cache
	// consulted at admission and filled at scatter: pairs whose
	// (digest, config) is cached are answered without queueing, quota
	// charge or engine work, byte-identical to recomputation. Share one
	// cache across every Coalescer of a process so /align and /jobs
	// traffic deduplicate against each other.
	Cache *ResultCache

	// OnFlush, when non-nil, observes every engine batch the Coalescer
	// submits — merged flushes and large-request bypasses alike — with the
	// batch-level Stats (including Stats.PerBackend, which per-request
	// results omit) and the number of requests it served. It is called
	// synchronously from the flusher (or, for bypasses, the caller)
	// goroutine; keep it fast.
	OnFlush func(st Stats, requests int)
}

// Coalescer merges concurrent small Align requests into engine-sized
// batches. LOGAN's kernel only saturates the hardware when thousands of
// alignments are in flight at once, but service traffic arrives as many
// small independent requests; the Coalescer is the traffic-shaping layer
// between the two. Concurrent callers enqueue their pairs into per-lane
// queues; a single flusher goroutine submits one merged engine batch
// when either MaxBatchPairs pairs are waiting in some lane or the lane's
// oldest request has waited out its class's merge window
// (deadline-bounded flush), then scatters the results and per-request
// stats back to each caller in submission order.
//
// Queued work is organized into lanes keyed by (tenant, priority class,
// configuration): only same-config requests merge into one engine batch
// — batch composition never changes per-pair parameters, so results
// stay bit-identical to a dedicated engine per configuration — and the
// tenant/class split is the scheduling fabric. Size-ready lanes are
// served deficit-round-robin (quantum MaxBatchPairs), so a tenant
// flooding one lane cannot monopolize the flusher; interactive lanes
// (the /align path) always drain ahead of bulk lanes (the /jobs overlap
// extension chunks, which ride a longer BulkMaxWait window); and each
// lane's deadline flush is tracked in a min-heap, so wake-ups stay cheap
// with many live lanes. Admission is tenant-aware: each tenant owns a
// pairs/sec token-bucket quota and a fair share of the pending budget,
// so the flooder is shed, not the victim.
//
// When CoalescerOptions.Cache is set, admission first consults the
// content-addressed result cache: pairs already computed under the same
// configuration are answered immediately (byte-identical by
// construction — an alignment is a pure function of pair bytes, seed
// placement and configuration) and only the misses queue, are metered
// against the tenant quota, and reach the engine; the scatter fills the
// cache with what the batch computed.
//
// A Coalescer is safe for concurrent use. Close flushes the remaining
// queue and stops the flusher; it does not close the underlying Aligner.
type Coalescer struct {
	eng *Aligner
	opt CoalescerOptions

	cache *ResultCache // nil: caching disabled

	mu         sync.Mutex
	lanes      map[laneKey]*lane   // every non-empty lane
	rings      [numClasses][]*lane // DRR rings per class, in lane-creation order
	cursor     [numClasses]int     // DRR rotation position per class
	heap       []*lane             // min-heap on lane.dl: the deadline index
	tenPending map[*Tenant]int     // queued pairs per tenant (fair-share admission)
	pending    int                 // pairs queued across all lanes
	closed     bool

	kick chan struct{} // nudges the flusher after an enqueue
	done chan struct{} // closed by Close; flusher drains and exits
	wg   sync.WaitGroup

	t coalescerTelemetry

	// Per-tenant instrument bundles, registered lazily on a tenant's
	// first submission. Guarded by its own mutex: registration takes the
	// registry lock, which must never nest inside c.mu (snapshot-time
	// gauge functions take c.mu while holding the registry lock).
	tmu   sync.Mutex
	ttele map[*Tenant]*tenantTele

	// flusher-goroutine scratch: the merged input batch (pairs already
	// converted at admission). Only the flusher touches it. (Results are
	// not pooled: each flush allocates one exact-size slice whose
	// subranges are handed to the waiters, so the scatter is copy-free.)
	mergeBuf []seq.Pair
}

// laneKey identifies one scheduling lane: a tenant's stream of
// same-config requests in one priority class. Tenants compare by
// identity, configurations by configKey (matrices by interned pointer).
type laneKey struct {
	ten   *Tenant
	class priorityClass
	cfg   configKey
}

// lane is the pending queue of one (tenant, class, config): its waiters
// in FIFO order, their pair count, the DRR deficit credit, and the
// cached flush deadline of its head waiter. Lanes exist only while
// non-empty; a live lane is always in its class ring and in the
// deadline heap.
type lane struct {
	key     laneKey
	cfg     Config
	waiters []*coalesceWaiter
	pending int
	// deficit is the DRR service credit in pairs: each scheduler
	// rotation grants a size-ready lane one MaxBatchPairs quantum, and
	// every flush debits what the batch actually took, so a lane whose
	// flush overshot the quantum (batches take whole requests) sits out
	// a turn while its debt amortizes.
	deficit int
	dl      time.Time // head waiter's enqueue time + its class's merge window
	heapIdx int       // position in Coalescer.heap; -1 when not enqueued
}

// coalesceWaiter is one queued request: its cache-miss pairs — validated
// and converted at admission, so the flush never re-scans them — the
// enqueue time, and the buffered channel its result is delivered on
// (buffered so the flusher never blocks on an abandoned caller).
type coalesceWaiter struct {
	in []seq.Pair // pairs the engine must compute (cache misses)
	// Partial-hit layout (nil on a cache-off or all-miss request): full
	// is the request-sized result slice with cache hits pre-filled, and
	// full[missIdx[j]] receives the computed result of in[j].
	full    []Alignment
	missIdx []int
	digests [][32]byte // content digests of in, for the scatter-side cache fill (nil: cache off)
	npairs  int        // total request size including cache hits
	tt      *tenantTele
	enq     time.Time
	ch      chan coalesceResult
	// tr is the request's trace (nil when the caller attached none): the
	// flusher stamps the queue wait and copies the merged batch's stage
	// spans onto it before delivering the result, so the channel receive
	// orders those writes for the owner.
	tr *telemetry.Trace
}

type coalesceResult struct {
	out []Alignment
	st  Stats
	err error
}

// coalescerTelemetry is the Coalescer's instrument bundle, registered in
// the engine's registry at construction so /metrics, /statz and
// CoalescerMetrics all read the same cells. Counters and gauges are
// lock-free; the queue-depth gauges are GaugeFuncs taking c.mu at
// snapshot time.
type coalescerTelemetry struct {
	enqueued, direct                     *telemetry.Counter
	shedBudget, shedDelay, shedDeadline  *telemetry.Counter
	shedQuota                            *telemetry.Counter
	flushSize, flushDeadline, flushDrain *telemetry.Counter
	mergedPairs, mergedRequests          *telemetry.Counter
	cacheHits, cacheMisses, cacheEvict   *telemetry.Counter
	queueWait                            *telemetry.Counter // seconds
	maxMergedPairs                       *telemetry.Gauge   // written only by the flusher
	cellsPerPair                         *telemetry.Gauge   // EWMA, the drain-rate divisor
}

// tenantTele is one tenant's attribution bundle: who was served, who was
// shed, who hit the cache. Registered lazily on the tenant's first
// submission through this Coalescer.
type tenantTele struct {
	requests, pairs, shed, cacheHits *telemetry.Counter
}

// CoalescerMetrics is a snapshot of a Coalescer's lifetime counters and
// current queue gauges, the observability surface behind logan-serve's
// /statz "coalescer" block.
type CoalescerMetrics struct {
	// Enqueued counts requests admitted to the queue; Shed counts requests
	// rejected with ErrOverloaded (the sum of the per-reason counters
	// below); Direct counts large requests that bypassed the queue
	// (>= MaxBatchPairs pairs).
	Enqueued, Shed, Direct int64

	// The shed breakdown: ShedBudget hit the tenant's share of the fixed
	// MaxPending budget, ShedDelay the adaptive TargetDelay bound,
	// ShedDeadline an infeasible request deadline (ErrDeadlineInfeasible),
	// ShedQuota the tenant's pairs/sec token bucket (ErrQuotaExceeded).
	ShedBudget, ShedDelay, ShedDeadline, ShedQuota int64

	// MergedBatches counts engine batches submitted by the flusher,
	// broken down by trigger: SizeFlushes reached MaxBatchPairs,
	// DeadlineFlushes hit the oldest request's merge-window deadline, and
	// DrainFlushes happened during Close.
	MergedBatches, SizeFlushes, DeadlineFlushes, DrainFlushes int64

	// MergedPairs and MergedRequests total the pairs and requests across
	// all merged batches; MaxMergedPairs is the largest single merged
	// batch. MergedPairs/MergedBatches is the realized batching factor.
	MergedPairs, MergedRequests, MaxMergedPairs int64

	// CacheHits and CacheMisses count result-cache probes by outcome
	// (pairs, not requests); CacheEvictions counts LRU evictions. All
	// zero when no cache is attached.
	CacheHits, CacheMisses, CacheEvictions int64

	// WaitNS totals the enqueue-to-flush wait across admitted requests;
	// WaitNS/Enqueued approximates the mean coalescing latency.
	WaitNS int64

	// QueuedRequests and QueuedPairs are current-depth gauges;
	// QueuedLanes counts the distinct (tenant, class, config) lanes
	// currently queued (each flushes as its own merged batch).
	QueuedRequests, QueuedPairs, QueuedLanes int
}

// NewCoalescer starts a coalescing layer over the engine. Zero fields of
// opt select the defaults documented on CoalescerOptions. Close the
// Coalescer to flush the residual queue and stop its flusher goroutine.
func (a *Aligner) NewCoalescer(opt CoalescerOptions) *Coalescer {
	c := a.newCoalescer(opt)
	c.wg.Add(1)
	go c.run()
	return c
}

// newCoalescer builds a fully-instrumented Coalescer without starting
// its flusher goroutine (tests drive take/execute directly).
func (a *Aligner) newCoalescer(opt CoalescerOptions) *Coalescer {
	if opt.MaxBatchPairs <= 0 {
		opt.MaxBatchPairs = 4096
	}
	if opt.MaxWait <= 0 {
		opt.MaxWait = 2 * time.Millisecond
	}
	if opt.BulkMaxWait <= 0 {
		opt.BulkMaxWait = 4 * opt.MaxWait
	}
	if opt.MaxPending < 0 {
		opt.MaxPending = 0
	}
	if opt.TargetDelay <= 0 {
		opt.TargetDelay = 10 * opt.MaxWait
	}
	c := &Coalescer{
		eng:        a,
		opt:        opt,
		cache:      opt.Cache,
		lanes:      make(map[laneKey]*lane),
		tenPending: make(map[*Tenant]int),
		ttele:      make(map[*Tenant]*tenantTele),
		kick:       make(chan struct{}, 1),
		done:       make(chan struct{}),
	}
	reg := a.tele
	c.t = coalescerTelemetry{
		enqueued:       reg.Counter("logan_coalescer_enqueued_total", "Requests admitted to the coalescing queue."),
		direct:         reg.Counter("logan_coalescer_direct_total", "Engine-sized requests that bypassed the queue."),
		shedBudget:     reg.Counter("logan_coalescer_shed_total", "Requests rejected by admission control, by reason.", telemetry.L("reason", "budget")),
		shedDelay:      reg.Counter("logan_coalescer_shed_total", "Requests rejected by admission control, by reason.", telemetry.L("reason", "delay")),
		shedDeadline:   reg.Counter("logan_coalescer_shed_total", "Requests rejected by admission control, by reason.", telemetry.L("reason", "deadline")),
		shedQuota:      reg.Counter("logan_coalescer_shed_total", "Requests rejected by admission control, by reason.", telemetry.L("reason", "quota")),
		flushSize:      reg.Counter("logan_coalescer_merged_batches_total", "Merged batches submitted to the engine, by flush trigger.", telemetry.L("trigger", "size")),
		flushDeadline:  reg.Counter("logan_coalescer_merged_batches_total", "Merged batches submitted to the engine, by flush trigger.", telemetry.L("trigger", "deadline")),
		flushDrain:     reg.Counter("logan_coalescer_merged_batches_total", "Merged batches submitted to the engine, by flush trigger.", telemetry.L("trigger", "drain")),
		mergedPairs:    reg.Counter("logan_coalescer_merged_pairs_total", "Pairs across all merged batches."),
		mergedRequests: reg.Counter("logan_coalescer_merged_requests_total", "Requests across all merged batches."),
		cacheHits:      reg.Counter("logan_cache_hits_total", "Pairs answered from the content-addressed result cache."),
		cacheMisses:    reg.Counter("logan_cache_misses_total", "Pairs that missed the result cache and reached the engine."),
		cacheEvict:     reg.Counter("logan_cache_evictions_total", "Result-cache entries evicted by the LRU bound."),
		queueWait:      reg.Counter("logan_coalescer_queue_wait_seconds_total", "Total enqueue-to-flush wait across admitted requests."),
		maxMergedPairs: reg.Gauge("logan_coalescer_max_merged_pairs", "Largest single merged batch in pairs."),
		cellsPerPair:   reg.Gauge("logan_coalescer_cells_per_pair", "EWMA DP cells per pair of recent merged batches (the admission controller's work estimate)."),
	}
	reg.GaugeFunc("logan_cache_entries", "Result-cache entries currently resident.", func() float64 {
		return float64(c.cache.Len())
	})
	reg.GaugeFunc("logan_coalescer_queued_pairs", "Pairs currently queued across all lanes.", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(c.pending)
	})
	reg.GaugeFunc("logan_coalescer_queued_requests", "Requests currently queued across all lanes.", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		n := 0
		for _, l := range c.lanes {
			n += len(l.waiters)
		}
		return float64(n)
	})
	reg.GaugeFunc("logan_coalescer_queued_configs", "Distinct (tenant, class, config) lanes currently queued.", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(len(c.lanes))
	})
	reg.GaugeFunc("logan_coalescer_drain_pairs_per_second", "Measured queue drain rate: backend throughput over cells-per-pair (0 until calibrated).", c.drainPairsPerSec)
	reg.GaugeFunc("logan_coalescer_projected_delay_seconds", "Projected time to drain the current queue at the measured rate (the adaptive admission signal).", func() float64 {
		c.mu.Lock()
		pending := c.pending
		c.mu.Unlock()
		rate := c.drainPairsPerSec()
		if rate <= 0 {
			return 0
		}
		return float64(pending) / rate
	})
	return c
}

// tenantTele returns ten's attribution bundle, registering its series
// (labelled tenant=<name>) on first use. Never call while holding c.mu:
// registration takes the registry lock, which snapshot-time gauge
// functions hold while taking c.mu.
func (c *Coalescer) tenantTele(ten *Tenant) *tenantTele {
	c.tmu.Lock()
	defer c.tmu.Unlock()
	if tt, ok := c.ttele[ten]; ok {
		return tt
	}
	reg := c.eng.tele
	lab := telemetry.L("tenant", ten.name)
	tt := &tenantTele{
		requests:  reg.Counter("logan_tenant_requests_total", "Requests completed per tenant (direct, coalesced and cache-only).", lab),
		pairs:     reg.Counter("logan_tenant_pairs_total", "Pairs served per tenant.", lab),
		shed:      reg.Counter("logan_tenant_shed_total", "Requests shed per tenant (quota, budget, delay and deadline).", lab),
		cacheHits: reg.Counter("logan_tenant_cache_hits_total", "Pairs served from the result cache per tenant.", lab),
	}
	reg.GaugeFunc("logan_tenant_queued_pairs", "Pairs currently queued per tenant.", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(c.tenPending[ten])
	}, lab)
	c.ttele[ten] = tt
	return tt
}

// classWait is the merge window of a priority class: MaxWait for
// interactive lanes, BulkMaxWait for bulk lanes.
func (c *Coalescer) classWait(cl priorityClass) time.Duration {
	if cl == classBulk {
		return c.opt.BulkMaxWait
	}
	return c.opt.MaxWait
}

// drainPairsPerSec is the measured queue drain rate: the backend layer's
// live throughput estimate (cells/s) divided by the EWMA cells-per-pair
// of recent merged batches. Zero until the first batch calibrates the
// cells-per-pair estimate.
func (c *Coalescer) drainPairsPerSec() float64 {
	cpp := c.t.cellsPerPair.Value()
	if cpp <= 0 {
		return 0
	}
	thr := c.eng.be.Throughput()
	if thr <= 0 {
		return 0
	}
	return thr / cpp
}

// RetryAfter estimates how long a shed caller should wait before
// retrying: the projected time to drain the current queue at the
// measured rate, floored at MaxWait (the minimum useful retry interval)
// and capped at 30s. HTTP front ends render it as the Retry-After header
// on 429 responses.
func (c *Coalescer) RetryAfter() time.Duration {
	c.mu.Lock()
	pending := c.pending
	c.mu.Unlock()
	d := c.opt.MaxWait
	if rate := c.drainPairsPerSec(); rate > 0 {
		if proj := time.Duration(float64(pending) / rate * float64(time.Second)); proj > d {
			d = proj
		}
	}
	return min(d, 30*time.Second)
}

// shedReason tags why admission control rejected a request.
type shedReason int

const (
	shedBudget shedReason = iota
	shedDelay
	shedDeadline
	shedQuota
)

// activeWeightLocked sums the fair-share weights of tenants with queued
// pairs, always counting the requester (who is about to have some).
// Callers hold c.mu.
func (c *Coalescer) activeWeightLocked(ten *Tenant) int {
	w := ten.weight
	for t2, p := range c.tenPending {
		if p > 0 && t2 != ten {
			w += t2.weight
		}
	}
	return w
}

// admitLocked decides whether ten may queue n more pairs under ctx.
// Callers hold c.mu. Admission is per-tenant share based — the budget a
// tenant competes for is its weight's fraction of the whole, so a
// flooding tenant exhausts its own share and is shed while a
// well-behaved tenant's share stays open. The global total may
// transiently overshoot a static budget while shares rebalance (a new
// tenant's arrival halves the incumbent's cap only for subsequent
// requests); the overshoot is bounded by the pre-arrival share split and
// drains within one flush cycle.
//
// In fixed mode (MaxPending > 0) only the share of the pair budget
// applies. In adaptive mode one engine batch per tenant is always
// admissible (coalescing must keep working at low load and before
// calibration); beyond that floor the controller sheds when the
// projected drain time of the tenant's queue at its share of the
// measured rate exceeds TargetDelay, or — even under the target — when
// the request's own deadline cannot survive the projected wait plus its
// class's merge window.
func (c *Coalescer) admitLocked(ctx context.Context, ten *Tenant, class priorityClass, n int) (shedReason, bool) {
	tp := c.tenPending[ten]
	w, totalW := ten.weight, c.activeWeightLocked(ten)
	if c.opt.MaxPending > 0 {
		share := c.opt.MaxPending * w / totalW
		if share < 1 {
			share = 1
		}
		if tp+n > share {
			return shedBudget, false
		}
		return 0, true
	}
	if tp+n <= c.opt.MaxBatchPairs {
		return 0, true
	}
	rate := c.drainPairsPerSec()
	if rate <= 0 {
		return 0, true // uncalibrated: admit and let the first flushes measure
	}
	shareRate := rate * float64(w) / float64(totalW)
	projected := time.Duration(float64(tp+n) / shareRate * float64(time.Second))
	if projected > c.opt.TargetDelay {
		return shedDelay, false
	}
	if dl, ok := ctx.Deadline(); ok && time.Until(dl) < projected+c.classWait(class) {
		return shedDeadline, false
	}
	return 0, true
}

// Options returns the Coalescer's resolved configuration (zero fields
// replaced by their defaults).
func (c *Coalescer) Options() CoalescerOptions { return c.opt }

// Align submits pairs under cfg and blocks until their merged batch has
// run or ctx is done. Results are positionally aligned with pairs and
// bit-identical to a direct Aligner.Align of the same pairs under the
// same cfg; only requests with an equal configuration (same X, same
// scheme — matrices by identity) share a merged batch, and cached pairs
// are served from the result cache without reaching the engine.
//
// The request's tenant (WithTenant; anonymous when absent) selects its
// scheduling lane, pairs/sec quota and share of the admission budget;
// its priority class is interactive unless the overlap subsystem tagged
// it bulk.
//
// The returned Stats describe this request's share of the merged batch:
// Pairs and Cells are the request's own, while WallTime and DeviceTime
// cover the whole merged batch the request rode in (the request's pairs
// were not separately timed; a fully cache-served request reports zero
// time). Stats.PerBackend is batch-scoped and therefore omitted here;
// observe it via CoalescerOptions.OnFlush.
//
// Error contract: cfg and pairs are validated at admission, so an invalid
// configuration or pair fails only its own request and never the batch it
// would have merged into. ErrOverloaded reports admission-control
// shedding (retry later; ErrQuotaExceeded is its tenant-quota variant),
// ErrClosed reports a closed Coalescer or engine, ErrUnsupportedConfig a
// scheme the engine's backend cannot run. A ctx error on a queued request
// removes it from the queue and returns the ctx error — its buffers are
// free for reuse the moment Align returns, preserving Pair's zero-copy
// aliasing contract. If the request's merged batch is already executing
// when ctx fires, Align instead waits for that batch (bounded by one
// engine batch) and returns its result. Engine-sized requests that bypass
// the queue run alone, so there ctx is forwarded into the engine and
// cancellation aborts the work itself.
func (c *Coalescer) Align(ctx context.Context, pairs []Pair, cfg Config) ([]Alignment, Stats, error) {
	// Validate cfg before the empty-batch fast path, mirroring
	// Aligner.Align: an invalid configuration fails even with no pairs.
	if err := cfg.Validate(); err != nil {
		return nil, Stats{}, err
	}
	if ctx == nil {
		// Tolerate nil like every other entry point: the queued path
		// selects on ctx.Done(), which would panic on a nil interface.
		ctx = context.Background()
	}
	// Shed configs the engine's backend cannot run at admission: letting
	// them queue would burn budget and a flush cycle only to fan the same
	// error out at execute time (and starve valid traffic into 429s under
	// sustained unsupported spam).
	if !c.eng.Supports(cfg) {
		return nil, Stats{}, ErrUnsupportedConfig
	}
	if len(pairs) == 0 {
		return []Alignment{}, Stats{}, nil
	}
	ten := TenantFrom(ctx)
	if ten == nil {
		ten = anonymousTenant
	}
	tt := c.tenantTele(ten)
	// Engine-sized requests gain nothing from merging: run them directly,
	// keeping the queue (and its pending budget) for the small requests
	// coalescing exists to serve. The engine meters the tenant quota
	// itself from ctx.
	if len(pairs) >= c.opt.MaxBatchPairs {
		if c.isClosed() {
			return nil, Stats{}, ErrClosed
		}
		c.t.direct.Inc()
		out, st, err := c.eng.Align(ctx, pairs, cfg)
		if err == nil {
			tt.requests.Inc()
			tt.pairs.Add(float64(len(pairs)))
			if c.opt.OnFlush != nil {
				c.opt.OnFlush(st, 1)
			}
		} else if errors.Is(err, ErrOverloaded) {
			c.t.shedQuota.Inc()
			tt.shed.Inc()
		}
		return out, st, err
	}
	in, err := preparePairs(pairs, cfg)
	if err != nil {
		return nil, Stats{}, err
	}

	// Result-cache probe: hits are answered without queueing, quota
	// charge or engine work; only the misses continue to admission.
	total := len(in)
	var (
		full    []Alignment
		missIdx []int
		digests [][32]byte
	)
	if c.cache != nil {
		ck := cfg.key()
		allD := make([][32]byte, total)
		hit := make([]bool, total)
		res := make([]Alignment, total)
		nhit := 0
		for i := range in {
			allD[i] = pairDigest(in[i])
			if r, ok := c.cache.get(cacheKey{digest: allD[i], cfg: ck}); ok {
				hit[i], res[i] = true, r
				nhit++
			}
		}
		c.t.cacheHits.Add(float64(nhit))
		c.t.cacheMisses.Add(float64(total - nhit))
		if nhit > 0 {
			tt.cacheHits.Add(float64(nhit))
		}
		if nhit == total {
			var cells int64
			for i := range res {
				cells += res[i].Cells
			}
			tt.requests.Inc()
			tt.pairs.Add(float64(total))
			return res, Stats{Pairs: total, Cells: cells}, nil
		}
		if nhit > 0 {
			full = res
			miss := make([]seq.Pair, 0, total-nhit)
			missIdx = make([]int, 0, total-nhit)
			digests = make([][32]byte, 0, total-nhit)
			for i := range in {
				if hit[i] {
					continue
				}
				miss = append(miss, in[i])
				missIdx = append(missIdx, i)
				digests = append(digests, allD[i])
			}
			in = miss
		} else {
			digests = allD
		}
	}
	nmiss := len(in)

	class := priorityFrom(ctx)
	w := &coalesceWaiter{
		in: in, full: full, missIdx: missIdx, digests: digests,
		npairs: total, tt: tt,
		ch: make(chan coalesceResult, 1), tr: telemetry.TraceFrom(ctx),
	}
	key := laneKey{ten: ten, class: class, cfg: cfg.key()}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, Stats{}, ErrClosed
	}
	// The pairs/sec quota meters work that would reach the engine:
	// misses only, probed before the share-based queue admission so a
	// quota-starved tenant is attributed precisely.
	if ok, _ := ten.takePairs(nmiss); !ok {
		c.mu.Unlock()
		c.t.shedQuota.Inc()
		tt.shed.Inc()
		return nil, Stats{}, ErrQuotaExceeded
	}
	if reason, ok := c.admitLocked(ctx, ten, class, nmiss); !ok {
		c.mu.Unlock()
		tt.shed.Inc()
		switch reason {
		case shedDelay:
			c.t.shedDelay.Inc()
			return nil, Stats{}, ErrOverloaded
		case shedDeadline:
			c.t.shedDeadline.Inc()
			return nil, Stats{}, ErrDeadlineInfeasible
		default:
			c.t.shedBudget.Inc()
			return nil, Stats{}, ErrOverloaded
		}
	}
	w.enq = time.Now()
	c.enqueueLocked(key, cfg, w)
	c.mu.Unlock()
	c.t.enqueued.Inc()

	// Nudge the flusher: it re-reads queue state on every wake, so a
	// dropped send (buffer already full) is never a lost update.
	select {
	case c.kick <- struct{}{}:
	default:
	}

	select {
	case r := <-w.ch:
		return r.out, r.st, r.err
	case <-ctx.Done():
		if c.abandon(key, w) {
			// Still queued: removed before any flush touched it, so the
			// caller may reuse its buffers immediately (the zero-copy
			// aliasing contract of Pair).
			return nil, Stats{}, ctx.Err()
		}
		// The flusher already took the request: its merged batch is
		// reading the caller's buffers right now, so honor the aliasing
		// contract by waiting out that batch (bounded by one engine
		// batch) and return its result.
		r := <-w.ch
		return r.out, r.st, r.err
	}
}

// enqueueLocked appends w to its lane, creating the lane (ring + heap
// membership) on first use, and charges the pending gauges. Callers hold
// c.mu and have stamped w.enq.
func (c *Coalescer) enqueueLocked(key laneKey, cfg Config, w *coalesceWaiter) {
	l := c.lanes[key]
	if l == nil {
		l = &lane{key: key, cfg: cfg, heapIdx: -1}
		c.lanes[key] = l
		c.rings[key.class] = append(c.rings[key.class], l)
	}
	l.waiters = append(l.waiters, w)
	n := len(w.in)
	l.pending += n
	c.pending += n
	c.tenPending[key.ten] += n
	if len(l.waiters) == 1 {
		l.dl = w.enq.Add(c.classWait(key.class))
		c.heapPush(l)
	}
}

// abandon removes a still-queued waiter after its caller's context fired,
// releasing its buffers and budget. It reports false when the flusher has
// already taken the waiter (its batch is executing).
func (c *Coalescer) abandon(key laneKey, w *coalesceWaiter) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	l := c.lanes[key]
	if l == nil {
		return false
	}
	for i, cand := range l.waiters {
		if cand == w {
			copy(l.waiters[i:], l.waiters[i+1:])
			l.waiters[len(l.waiters)-1] = nil
			l.waiters = l.waiters[:len(l.waiters)-1]
			n := len(w.in)
			l.pending -= n
			c.pending -= n
			c.chargeTenantLocked(key.ten, -n)
			if len(l.waiters) == 0 {
				c.dropLaneLocked(l)
			} else if i == 0 {
				// New head, new deadline.
				l.dl = l.waiters[0].enq.Add(c.classWait(key.class))
				c.heapFix(l)
			}
			return true
		}
	}
	return false
}

// chargeTenantLocked adjusts a tenant's queued-pair count, dropping the
// entry at zero so the active-weight scan only visits tenants with work.
// Callers hold c.mu.
func (c *Coalescer) chargeTenantLocked(ten *Tenant, delta int) {
	v := c.tenPending[ten] + delta
	if v <= 0 {
		delete(c.tenPending, ten)
		return
	}
	c.tenPending[ten] = v
}

// Metrics snapshots the Coalescer's counters and queue gauges.
func (c *Coalescer) Metrics() CoalescerMetrics {
	c.mu.Lock()
	qr := 0
	for _, l := range c.lanes {
		qr += len(l.waiters)
	}
	qp, ql := c.pending, len(c.lanes)
	c.mu.Unlock()
	sb, sd, sdl, sq := int64(c.t.shedBudget.Value()), int64(c.t.shedDelay.Value()), int64(c.t.shedDeadline.Value()), int64(c.t.shedQuota.Value())
	fs, fd, fdr := int64(c.t.flushSize.Value()), int64(c.t.flushDeadline.Value()), int64(c.t.flushDrain.Value())
	return CoalescerMetrics{
		Enqueued:        int64(c.t.enqueued.Value()),
		Shed:            sb + sd + sdl + sq,
		ShedBudget:      sb,
		ShedDelay:       sd,
		ShedDeadline:    sdl,
		ShedQuota:       sq,
		Direct:          int64(c.t.direct.Value()),
		MergedBatches:   fs + fd + fdr,
		SizeFlushes:     fs,
		DeadlineFlushes: fd,
		DrainFlushes:    fdr,
		MergedPairs:     int64(c.t.mergedPairs.Value()),
		MergedRequests:  int64(c.t.mergedRequests.Value()),
		MaxMergedPairs:  int64(c.t.maxMergedPairs.Value()),
		CacheHits:       int64(c.t.cacheHits.Value()),
		CacheMisses:     int64(c.t.cacheMisses.Value()),
		CacheEvictions:  int64(c.t.cacheEvict.Value()),
		WaitNS:          int64(c.t.queueWait.Value() * 1e9),
		QueuedRequests:  qr,
		QueuedPairs:     qp,
		QueuedLanes:     ql,
	}
}

// Close stops admission, flushes every queued request, and waits for the
// flusher goroutine to exit. Idempotent. The underlying Aligner stays
// open — the Coalescer is a layer over it, not an owner.
func (c *Coalescer) Close() error {
	c.mu.Lock()
	already := c.closed
	c.closed = true
	c.mu.Unlock()
	if !already {
		close(c.done)
	}
	c.wg.Wait()
	return nil
}

func (c *Coalescer) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// flushReason tags what triggered a merged batch, for the metrics split.
type flushReason int

const (
	flushSize flushReason = iota
	flushDeadline
	flushDrain
)

// run is the flusher goroutine: it sleeps until kicked by an enqueue, the
// earliest lane deadline fires, or Close drains it; on every wake it
// submits merged batches while some lane is flushable and re-arms the
// deadline timer for whatever remains.
func (c *Coalescer) run() {
	defer c.wg.Done()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for {
		select {
		case <-c.kick:
		case <-timer.C:
		case <-c.done:
			for {
				cfg, ws, npairs, reason, ok := c.take(true)
				if !ok {
					return
				}
				c.execute(cfg, ws, npairs, reason)
			}
		}
		for {
			cfg, ws, npairs, reason, ok := c.take(false)
			if ok {
				c.execute(cfg, ws, npairs, reason)
				continue
			}
			if delay := c.nextDeadline(); delay > 0 {
				// Stop-then-reset is safe on Go 1.23+ timers even if the
				// timer already fired; a stale wake just re-reads state.
				timer.Stop()
				timer.Reset(delay)
			}
			break
		}
	}
}

// Deadline min-heap over lanes (keyed by lane.dl, the head waiter's
// flush deadline): the flusher's wake-up schedule reads the earliest
// deadline in O(1) instead of scanning every lane. All heap operations
// are called under c.mu.

// heapPush adds l to the deadline heap. Callers hold c.mu.
func (c *Coalescer) heapPush(l *lane) {
	l.heapIdx = len(c.heap)
	c.heap = append(c.heap, l)
	c.heapUp(l.heapIdx)
}

// heapRemove deletes l from the deadline heap. Callers hold c.mu.
func (c *Coalescer) heapRemove(l *lane) {
	i := l.heapIdx
	last := len(c.heap) - 1
	c.heapSwap(i, last)
	c.heap[last] = nil
	c.heap = c.heap[:last]
	l.heapIdx = -1
	if i < last {
		c.heapDown(i)
		c.heapUp(i)
	}
}

// heapFix restores heap order after l.dl changed. Callers hold c.mu.
func (c *Coalescer) heapFix(l *lane) {
	c.heapDown(l.heapIdx)
	c.heapUp(l.heapIdx)
}

func (c *Coalescer) heapSwap(i, j int) {
	c.heap[i], c.heap[j] = c.heap[j], c.heap[i]
	c.heap[i].heapIdx = i
	c.heap[j].heapIdx = j
}

func (c *Coalescer) heapUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !c.heap[i].dl.Before(c.heap[p].dl) {
			return
		}
		c.heapSwap(i, p)
		i = p
	}
}

func (c *Coalescer) heapDown(i int) {
	n := len(c.heap)
	for {
		s := i
		if l := 2*i + 1; l < n && c.heap[l].dl.Before(c.heap[s].dl) {
			s = l
		}
		if r := 2*i + 2; r < n && c.heap[r].dl.Before(c.heap[s].dl) {
			s = r
		}
		if s == i {
			return
		}
		c.heapSwap(i, s)
		i = s
	}
}

// dropLaneLocked removes an emptied lane from the lane map, its class
// ring (keeping the DRR cursor on the same neighbor) and the deadline
// heap. Callers hold c.mu.
func (c *Coalescer) dropLaneLocked(l *lane) {
	delete(c.lanes, l.key)
	cl := l.key.class
	ring := c.rings[cl]
	for i, cand := range ring {
		if cand == l {
			copy(ring[i:], ring[i+1:])
			// Clear the vacated tail slot so the ring array does not pin
			// the dropped lane (and its config/matrix) until overwritten.
			ring[len(ring)-1] = nil
			c.rings[cl] = ring[:len(ring)-1]
			if c.cursor[cl] > i {
				c.cursor[cl]--
			}
			break
		}
	}
	if n := len(c.rings[cl]); n == 0 {
		c.cursor[cl] = 0
	} else if c.cursor[cl] >= n {
		c.cursor[cl] %= n
	}
	if l.heapIdx >= 0 {
		c.heapRemove(l)
	}
}

// drrPickLocked selects the next size-ready lane by deficit round-robin:
// the interactive ring is scanned one full rotation before the bulk ring
// is considered at all (strict priority between the two classes), each
// size-ready lane earns one quantum (MaxBatchPairs) of credit per visit,
// and the first lane whose credit covers a full batch wins. Flushes
// debit actual pairs served (see take), so a lane whose previous batch
// overshot the quantum — batches take whole requests — sits out a
// rotation while the debt amortizes: that is what keeps many same-size
// lanes within one batch of equal service. Callers hold c.mu; returns
// nil when no lane is size-ready.
func (c *Coalescer) drrPickLocked() *lane {
	quantum := c.opt.MaxBatchPairs
	for class := range c.rings {
		ring := c.rings[class]
		for i := range ring {
			idx := (c.cursor[class] + i) % len(ring)
			l := ring[idx]
			if l.pending < quantum {
				continue
			}
			l.deficit = min(l.deficit+quantum, 2*quantum)
			if l.deficit >= quantum {
				c.cursor[class] = (idx + 1) % len(ring)
				return l
			}
		}
	}
	return nil
}

// take pops the next merged batch under the lock: whole requests of ONE
// lane in FIFO order until MaxBatchPairs is covered. Without force it
// only pops when a flush trigger holds — the earliest lane deadline has
// passed (the heap top; per-request latency is a guarantee, so deadlines
// preempt size flushes), or the DRR scheduler found a size-ready lane.
func (c *Coalescer) take(force bool) (Config, []*coalesceWaiter, int, flushReason, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.heap) == 0 {
		return Config{}, nil, 0, 0, false
	}
	now := time.Now()
	reason := flushDrain
	var l *lane
	if force {
		l = c.heap[0]
	} else {
		// The deadline trigger is checked first: the merge-window bound is
		// a per-request guarantee, and a lane saturating the size target
		// must not starve another lane's overdue request (the take loop
		// flushes the size-ready lane right after anyway).
		if top := c.heap[0]; !now.Before(top.dl) {
			l, reason = top, flushDeadline
			if l.pending >= c.opt.MaxBatchPairs {
				reason = flushSize
			}
		} else if l = c.drrPickLocked(); l != nil {
			reason = flushSize
		} else {
			return Config{}, nil, 0, 0, false
		}
	}
	n, npairs := 0, 0
	for n < len(l.waiters) && npairs < c.opt.MaxBatchPairs {
		npairs += len(l.waiters[n].in)
		n++
	}
	ws := make([]*coalesceWaiter, n)
	copy(ws, l.waiters)
	rest := copy(l.waiters, l.waiters[n:])
	clear(l.waiters[rest:]) // drop waiter refs so the lane array doesn't pin them
	l.waiters = l.waiters[:rest]
	l.pending -= npairs
	c.pending -= npairs
	c.chargeTenantLocked(l.key.ten, -npairs)
	// DRR service accounting: debit what the batch actually took. A
	// deadline flush counts too — it is service — and since a
	// deadline-flushed lane is under the size target its debt stays
	// within one quantum.
	l.deficit -= npairs
	if len(l.waiters) == 0 {
		c.dropLaneLocked(l)
	} else {
		l.dl = l.waiters[0].enq.Add(c.classWait(l.key.class))
		c.heapFix(l)
	}

	var wait time.Duration
	for _, w := range ws {
		d := now.Sub(w.enq)
		wait += d
		// The queue wait is a per-request stage: observe it onto the
		// request's trace when it carries one (which also feeds the shared
		// histogram), else straight into the engine's stage family.
		if w.tr != nil {
			w.tr.Observe(telemetry.StageCoalesceWait, d)
		} else {
			c.eng.stages.Observe(telemetry.StageCoalesceWait, d)
		}
	}
	c.t.queueWait.Add(wait.Seconds())
	return l.cfg, ws, npairs, reason, true
}

// execute runs one merged same-config batch on the engine and scatters
// the results back to each waiting request in submission order, filling
// the result cache with what the batch computed. Engine errors at this
// point are systemic (e.g. ErrClosed) — per-pair and per-config problems
// were rejected at admission — so they fan out to every request in the
// batch.
func (c *Coalescer) execute(cfg Config, ws []*coalesceWaiter, npairs int, reason flushReason) {
	merged := c.mergeBuf[:0]
	traced := false
	for _, w := range ws {
		merged = append(merged, w.in...)
		traced = traced || w.tr != nil
	}
	// When any rider carries a trace, run the batch under a batch-level
	// trace: the engine observes the partition/kernel/scatter stages onto
	// it exactly once (batch-scoped, same as the untraced path), and the
	// scatter below copies its spans span-only onto every rider's trace.
	ctx := context.Background()
	var btr *telemetry.Trace
	if traced {
		btr = c.eng.stages.StartTrace()
		ctx = telemetry.WithTrace(ctx, btr)
	}
	// One exact-size result allocation per flush: alignPrepared fills it,
	// and the scatter below hands each waiter its capped subrange instead
	// of copying. The array is shared but the ranges are disjoint, and the
	// Coalescer never touches it again after the scatter. The pairs were
	// validated and converted at admission, so the engine runs them
	// without a second ingest pass.
	out, st, err := c.eng.alignPrepared(ctx, make([]Alignment, 0, npairs), merged, cfg)
	clear(merged) // drop sequence refs so the scratch doesn't pin callers
	c.mergeBuf = merged[:0]

	switch reason {
	case flushSize:
		c.t.flushSize.Inc()
	case flushDeadline:
		c.t.flushDeadline.Inc()
	default:
		c.t.flushDrain.Inc()
	}
	c.t.mergedPairs.Add(float64(npairs))
	c.t.mergedRequests.Add(float64(len(ws)))
	if float64(npairs) > c.t.maxMergedPairs.Value() { // flusher is the only writer
		c.t.maxMergedPairs.Set(float64(npairs))
	}
	if err == nil && npairs > 0 {
		// Calibrate the admission controller's work estimate from what the
		// batch actually cost.
		c.t.cellsPerPair.ObserveEWMA(float64(st.Cells)/float64(npairs), telemetryAlpha)
	}

	var ck configKey
	if c.cache != nil {
		ck = cfg.key()
	}
	// Report the batch before scattering results: a caller must not be
	// able to see its response while the flush is still unaccounted.
	if err == nil && c.opt.OnFlush != nil {
		c.opt.OnFlush(st, len(ws))
	}
	off := 0
	for _, w := range ws {
		n := len(w.in)
		if err != nil {
			w.ch <- coalesceResult{err: err}
			continue
		}
		res := out[off : off+n : off+n]
		off += n
		if c.cache != nil && w.digests != nil {
			evicted := 0
			for j := range res {
				evicted += c.cache.put(cacheKey{digest: w.digests[j], cfg: ck}, res[j])
			}
			if evicted > 0 {
				c.t.cacheEvict.Add(float64(evicted))
			}
		}
		final := res
		if w.full != nil {
			// Partial cache hit: merge the computed misses into the
			// request-sized slice whose hit slots were filled at admission.
			for j, idx := range w.missIdx {
				w.full[idx] = res[j]
			}
			final = w.full
		}
		var cells int64
		for i := range final {
			cells += final[i].Cells
		}
		rst := Stats{
			Pairs: w.npairs, Cells: cells,
			WallTime: st.WallTime, DeviceTime: st.DeviceTime,
		}
		rst.GCUPS = rst.gcups(c.eng.opt.Backend)
		w.tt.requests.Inc()
		w.tt.pairs.Add(float64(w.npairs))
		if w.tr != nil && btr != nil {
			// Span-only copy: the histograms counted the batch once above.
			for _, sp := range btr.Spans() {
				w.tr.AddSpan(sp.Stage, sp.D)
			}
		}
		w.ch <- coalesceResult{out: final, st: rst}
	}
}

// nextDeadline returns how long until the earliest lane's flush
// deadline (the heap top), or 0 when the queue is empty.
func (c *Coalescer) nextDeadline() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.heap) == 0 {
		return 0
	}
	return max(time.Until(c.heap[0].dl), time.Nanosecond)
}

// preparePairs applies the engine's per-pair checks (sequence alphabet
// under the config's scheme, seed bounds) and conversion before a request
// may merge with others, so one bad pair fails its own request instead of
// the whole merged batch — and the flush reuses the converted pairs
// instead of re-ingesting every byte. The messages mirror Aligner.Align's,
// with request-relative pair indices.
func preparePairs(pairs []Pair, cfg Config) ([]seq.Pair, error) {
	in := make([]seq.Pair, len(pairs))
	for i := range pairs {
		p := &pairs[i]
		sp, err := cfg.ingestPair(p, i)
		if err != nil {
			return nil, err
		}
		// Overflow-safe bounds: SeedQ+SeedLen can wrap for adversarial
		// inputs, and a pair that slips through here would panic in the
		// flusher goroutine, not the caller's.
		if p.SeedQ < 0 || p.SeedT < 0 || p.SeedLen <= 0 ||
			p.SeedQ > len(sp.Query)-p.SeedLen || p.SeedT > len(sp.Target)-p.SeedLen {
			return nil, fmt.Errorf("logan: pair %d: seed (%d,%d,len %d) outside sequences (%d, %d)",
				i, p.SeedQ, p.SeedT, p.SeedLen, len(sp.Query), len(sp.Target))
		}
		in[i] = sp
	}
	return in, nil
}
