package logan

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"logan/internal/seq"
	"logan/internal/telemetry"
)

// ErrOverloaded reports a Coalescer submission rejected by admission
// control: the projected queue delay exceeds the adaptive target
// (CoalescerOptions.TargetDelay), or the fixed pending-pair budget
// (CoalescerOptions.MaxPending, when set) is exhausted. The request was
// not queued and did no alignment work; callers should retry after
// roughly Coalescer.RetryAfter (an HTTP front end translates this to 429
// with a Retry-After header, as cmd/logan-serve does).
var ErrOverloaded = errors.New("logan: coalescer overloaded")

// ErrDeadlineInfeasible reports a submission shed because its context
// deadline cannot be met: the queue ahead of it is projected to drain
// later than the deadline, so queueing it would only burn engine time on
// a result nobody can receive. It wraps ErrOverloaded, so callers (and
// HTTP front ends) that already test errors.Is(err, ErrOverloaded)
// handle it with no change.
var ErrDeadlineInfeasible = fmt.Errorf("%w: request deadline infeasible under projected queue delay", ErrOverloaded)

// CoalescerOptions tunes a Coalescer. The zero value selects the defaults
// documented on each field.
type CoalescerOptions struct {
	// MaxBatchPairs is the merged-batch target: the flusher submits as
	// soon as at least this many pairs of one configuration are queued,
	// taking whole requests until the target is reached (a merged batch
	// can exceed it by at most one request). Requests carrying
	// MaxBatchPairs or more pairs bypass the queue entirely — they are
	// already engine-sized. Default 4096.
	MaxBatchPairs int

	// MaxWait bounds the queueing latency: a merged batch is flushed no
	// later than MaxWait after its oldest request enqueued, full or not.
	// Smaller values favor latency, larger values favor merged-batch size
	// and therefore throughput. Default 2ms.
	MaxWait time.Duration

	// MaxPending, when positive, is a fixed admission budget in pairs,
	// summed across every configuration's queue: a request whose pairs
	// would push the queued total beyond it is rejected with
	// ErrOverloaded. Zero (the default) selects adaptive admission
	// instead: the controller bounds the projected queue delay by
	// TargetDelay using the backend layer's live throughput estimate, so
	// the effective queue depth tracks what the hardware can actually
	// drain rather than a static pair count.
	MaxPending int

	// TargetDelay is the adaptive admission bound (used when MaxPending
	// is zero): a request is shed with ErrOverloaded when the queue,
	// including the request itself, is projected to take longer than
	// TargetDelay to drain at the measured rate (backend throughput in
	// cells/s divided by the EWMA cells-per-pair of recent batches).
	// Requests whose context deadline falls inside the projected delay
	// are shed early with ErrDeadlineInfeasible regardless of TargetDelay.
	// One engine batch (MaxBatchPairs) is always admissible, and so is
	// everything until the first batch has calibrated the estimates.
	// Default 10*MaxWait.
	TargetDelay time.Duration

	// OnFlush, when non-nil, observes every engine batch the Coalescer
	// submits — merged flushes and large-request bypasses alike — with the
	// batch-level Stats (including Stats.PerBackend, which per-request
	// results omit) and the number of requests it served. It is called
	// synchronously from the flusher (or, for bypasses, the caller)
	// goroutine; keep it fast.
	OnFlush func(st Stats, requests int)
}

// Coalescer merges concurrent small Align requests into engine-sized
// batches. LOGAN's kernel only saturates the hardware when thousands of
// alignments are in flight at once, but service traffic arrives as many
// small independent requests; the Coalescer is the traffic-shaping layer
// between the two. Concurrent callers enqueue their pairs into a shared
// accumulator; a single flusher goroutine submits one merged engine batch
// when either MaxBatchPairs pairs are waiting or the oldest request has
// waited MaxWait (deadline-bounded flush), then scatters the results and
// per-request stats back to each caller in submission order.
//
// Requests are request-scoped: every Align carries its own Config, and
// the accumulator groups pending requests by configuration key (X plus
// scheme; matrix configs compare by matrix identity). Only same-config
// requests merge into one engine batch — batch composition therefore
// never changes per-pair parameters, and results stay bit-identical to a
// dedicated engine per configuration. Mixed-config traffic still
// coalesces: each configuration's stream merges within its own group.
//
// The tradeoff is explicit: each request may wait up to MaxWait for the
// batch to fill, buying aggregate throughput (one partition/staging round
// and one backend dispatch for the whole batch) at the cost of bounded
// per-request latency.
//
// Admission control bounds the queue adaptively: a request is shed with
// ErrOverloaded when the queue it would join is projected — at the
// backend layer's live throughput estimate — to take longer than
// TargetDelay to drain, and with ErrDeadlineInfeasible when its own
// context deadline falls inside that projection (shed load is visible to
// callers, queued load is not). Setting MaxPending instead restores the
// fixed pending-pair budget.
//
// A Coalescer is safe for concurrent use. Close flushes the remaining
// queue and stops the flusher; it does not close the underlying Aligner.
type Coalescer struct {
	eng *Aligner
	opt CoalescerOptions

	mu      sync.Mutex
	groups  map[configKey]*coalesceGroup
	order   []*coalesceGroup // non-empty groups, in order of first enqueue
	pending int              // pairs queued across all groups (MaxPending budget)
	closed  bool

	kick chan struct{} // nudges the flusher after an enqueue
	done chan struct{} // closed by Close; flusher drains and exits
	wg   sync.WaitGroup

	t coalescerTelemetry

	// flusher-goroutine scratch: the merged input batch (pairs already
	// converted at admission). Only the flusher touches it. (Results are
	// not pooled: each flush allocates one exact-size slice whose
	// subranges are handed to the waiters, so the scatter is copy-free.)
	mergeBuf []seq.Pair
}

// coalesceGroup is the pending queue of one configuration: its waiters in
// FIFO order and their pair count. Groups exist only while non-empty.
type coalesceGroup struct {
	key     configKey
	cfg     Config
	waiters []*coalesceWaiter
	pending int
}

// coalesceWaiter is one queued request: its pairs — validated and
// converted at admission, so the flush never re-scans them — the enqueue
// time, and the buffered channel its result is delivered on (buffered so
// the flusher never blocks on an abandoned caller).
type coalesceWaiter struct {
	in  []seq.Pair
	enq time.Time
	ch  chan coalesceResult
	// tr is the request's trace (nil when the caller attached none): the
	// flusher stamps the queue wait and copies the merged batch's stage
	// spans onto it before delivering the result, so the channel receive
	// orders those writes for the owner.
	tr *telemetry.Trace
}

type coalesceResult struct {
	out []Alignment
	st  Stats
	err error
}

// coalescerTelemetry is the Coalescer's instrument bundle, registered in
// the engine's registry at construction so /metrics, /statz and
// CoalescerMetrics all read the same cells. Counters and gauges are
// lock-free; the queue-depth gauges are GaugeFuncs taking c.mu at
// snapshot time.
type coalescerTelemetry struct {
	enqueued, direct                     *telemetry.Counter
	shedBudget, shedDelay, shedDeadline  *telemetry.Counter
	flushSize, flushDeadline, flushDrain *telemetry.Counter
	mergedPairs, mergedRequests          *telemetry.Counter
	queueWait                            *telemetry.Counter // seconds
	maxMergedPairs                       *telemetry.Gauge   // written only by the flusher
	cellsPerPair                         *telemetry.Gauge   // EWMA, the drain-rate divisor
}

// CoalescerMetrics is a snapshot of a Coalescer's lifetime counters and
// current queue gauges, the observability surface behind logan-serve's
// /statz "coalescer" block.
type CoalescerMetrics struct {
	// Enqueued counts requests admitted to the queue; Shed counts requests
	// rejected with ErrOverloaded (the sum of the per-reason counters
	// below); Direct counts large requests that bypassed the queue
	// (>= MaxBatchPairs pairs).
	Enqueued, Shed, Direct int64

	// The shed breakdown: ShedBudget hit the fixed MaxPending cap,
	// ShedDelay the adaptive TargetDelay bound, ShedDeadline an
	// infeasible request deadline (ErrDeadlineInfeasible).
	ShedBudget, ShedDelay, ShedDeadline int64

	// MergedBatches counts engine batches submitted by the flusher,
	// broken down by trigger: SizeFlushes reached MaxBatchPairs,
	// DeadlineFlushes hit the oldest request's MaxWait deadline, and
	// DrainFlushes happened during Close.
	MergedBatches, SizeFlushes, DeadlineFlushes, DrainFlushes int64

	// MergedPairs and MergedRequests total the pairs and requests across
	// all merged batches; MaxMergedPairs is the largest single merged
	// batch. MergedPairs/MergedBatches is the realized batching factor.
	MergedPairs, MergedRequests, MaxMergedPairs int64

	// WaitNS totals the enqueue-to-flush wait across admitted requests;
	// WaitNS/Enqueued approximates the mean coalescing latency.
	WaitNS int64

	// QueuedRequests and QueuedPairs are current-depth gauges;
	// QueuedConfigs counts the distinct configurations currently queued
	// (each flushes as its own merged batch).
	QueuedRequests, QueuedPairs, QueuedConfigs int
}

// NewCoalescer starts a coalescing layer over the engine. Zero fields of
// opt select the defaults documented on CoalescerOptions. Close the
// Coalescer to flush the residual queue and stop its flusher goroutine.
func (a *Aligner) NewCoalescer(opt CoalescerOptions) *Coalescer {
	c := a.newCoalescer(opt)
	c.wg.Add(1)
	go c.run()
	return c
}

// newCoalescer builds a fully-instrumented Coalescer without starting
// its flusher goroutine (tests drive take/execute directly).
func (a *Aligner) newCoalescer(opt CoalescerOptions) *Coalescer {
	if opt.MaxBatchPairs <= 0 {
		opt.MaxBatchPairs = 4096
	}
	if opt.MaxWait <= 0 {
		opt.MaxWait = 2 * time.Millisecond
	}
	if opt.MaxPending < 0 {
		opt.MaxPending = 0
	}
	if opt.TargetDelay <= 0 {
		opt.TargetDelay = 10 * opt.MaxWait
	}
	c := &Coalescer{
		eng:    a,
		opt:    opt,
		groups: make(map[configKey]*coalesceGroup),
		kick:   make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	reg := a.tele
	c.t = coalescerTelemetry{
		enqueued:       reg.Counter("logan_coalescer_enqueued_total", "Requests admitted to the coalescing queue."),
		direct:         reg.Counter("logan_coalescer_direct_total", "Engine-sized requests that bypassed the queue."),
		shedBudget:     reg.Counter("logan_coalescer_shed_total", "Requests rejected by admission control, by reason.", telemetry.L("reason", "budget")),
		shedDelay:      reg.Counter("logan_coalescer_shed_total", "Requests rejected by admission control, by reason.", telemetry.L("reason", "delay")),
		shedDeadline:   reg.Counter("logan_coalescer_shed_total", "Requests rejected by admission control, by reason.", telemetry.L("reason", "deadline")),
		flushSize:      reg.Counter("logan_coalescer_merged_batches_total", "Merged batches submitted to the engine, by flush trigger.", telemetry.L("trigger", "size")),
		flushDeadline:  reg.Counter("logan_coalescer_merged_batches_total", "Merged batches submitted to the engine, by flush trigger.", telemetry.L("trigger", "deadline")),
		flushDrain:     reg.Counter("logan_coalescer_merged_batches_total", "Merged batches submitted to the engine, by flush trigger.", telemetry.L("trigger", "drain")),
		mergedPairs:    reg.Counter("logan_coalescer_merged_pairs_total", "Pairs across all merged batches."),
		mergedRequests: reg.Counter("logan_coalescer_merged_requests_total", "Requests across all merged batches."),
		queueWait:      reg.Counter("logan_coalescer_queue_wait_seconds_total", "Total enqueue-to-flush wait across admitted requests."),
		maxMergedPairs: reg.Gauge("logan_coalescer_max_merged_pairs", "Largest single merged batch in pairs."),
		cellsPerPair:   reg.Gauge("logan_coalescer_cells_per_pair", "EWMA DP cells per pair of recent merged batches (the admission controller's work estimate)."),
	}
	reg.GaugeFunc("logan_coalescer_queued_pairs", "Pairs currently queued across all configurations.", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(c.pending)
	})
	reg.GaugeFunc("logan_coalescer_queued_requests", "Requests currently queued across all configurations.", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		n := 0
		for _, g := range c.order {
			n += len(g.waiters)
		}
		return float64(n)
	})
	reg.GaugeFunc("logan_coalescer_queued_configs", "Distinct configurations currently queued.", func() float64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return float64(len(c.order))
	})
	reg.GaugeFunc("logan_coalescer_drain_pairs_per_second", "Measured queue drain rate: backend throughput over cells-per-pair (0 until calibrated).", c.drainPairsPerSec)
	reg.GaugeFunc("logan_coalescer_projected_delay_seconds", "Projected time to drain the current queue at the measured rate (the adaptive admission signal).", func() float64 {
		c.mu.Lock()
		pending := c.pending
		c.mu.Unlock()
		rate := c.drainPairsPerSec()
		if rate <= 0 {
			return 0
		}
		return float64(pending) / rate
	})
	return c
}

// drainPairsPerSec is the measured queue drain rate: the backend layer's
// live throughput estimate (cells/s) divided by the EWMA cells-per-pair
// of recent merged batches. Zero until the first batch calibrates the
// cells-per-pair estimate.
func (c *Coalescer) drainPairsPerSec() float64 {
	cpp := c.t.cellsPerPair.Value()
	if cpp <= 0 {
		return 0
	}
	thr := c.eng.be.Throughput()
	if thr <= 0 {
		return 0
	}
	return thr / cpp
}

// RetryAfter estimates how long a shed caller should wait before
// retrying: the projected time to drain the current queue at the
// measured rate, floored at MaxWait (the minimum useful retry interval)
// and capped at 30s. HTTP front ends render it as the Retry-After header
// on 429 responses.
func (c *Coalescer) RetryAfter() time.Duration {
	c.mu.Lock()
	pending := c.pending
	c.mu.Unlock()
	d := c.opt.MaxWait
	if rate := c.drainPairsPerSec(); rate > 0 {
		if proj := time.Duration(float64(pending) / rate * float64(time.Second)); proj > d {
			d = proj
		}
	}
	return min(d, 30*time.Second)
}

// shedReason tags why admission control rejected a request.
type shedReason int

const (
	shedBudget shedReason = iota
	shedDelay
	shedDeadline
)

// admitLocked decides whether n more pairs may queue under ctx. Callers
// hold c.mu. In fixed mode (MaxPending > 0) only the pair budget
// applies. In adaptive mode one engine batch is always admissible
// (coalescing must keep working at low load and before calibration);
// beyond that floor the controller sheds when the projected drain time
// of the queue including this request exceeds TargetDelay, or — even
// under the target — when the request's own deadline cannot survive the
// projected wait plus a flush interval.
func (c *Coalescer) admitLocked(ctx context.Context, n int) (shedReason, bool) {
	if c.opt.MaxPending > 0 {
		if c.pending+n > c.opt.MaxPending {
			return shedBudget, false
		}
		return 0, true
	}
	if c.pending+n <= c.opt.MaxBatchPairs {
		return 0, true
	}
	rate := c.drainPairsPerSec()
	if rate <= 0 {
		return 0, true // uncalibrated: admit and let the first flushes measure
	}
	projected := time.Duration(float64(c.pending+n) / rate * float64(time.Second))
	if projected > c.opt.TargetDelay {
		return shedDelay, false
	}
	if dl, ok := ctx.Deadline(); ok && time.Until(dl) < projected+c.opt.MaxWait {
		return shedDeadline, false
	}
	return 0, true
}

// Options returns the Coalescer's resolved configuration (zero fields
// replaced by their defaults).
func (c *Coalescer) Options() CoalescerOptions { return c.opt }

// Align submits pairs under cfg and blocks until their merged batch has
// run or ctx is done. Results are positionally aligned with pairs and
// bit-identical to a direct Aligner.Align of the same pairs under the
// same cfg; only requests with an equal configuration (same X, same
// scheme — matrices by identity) share a merged batch.
//
// The returned Stats describe this request's share of the merged batch:
// Pairs and Cells are the request's own, while WallTime and DeviceTime
// cover the whole merged batch the request rode in (the request's pairs
// were not separately timed). Stats.PerBackend is batch-scoped and
// therefore omitted here; observe it via CoalescerOptions.OnFlush.
//
// Error contract: cfg and pairs are validated at admission, so an invalid
// configuration or pair fails only its own request and never the batch it
// would have merged into. ErrOverloaded reports admission-control
// shedding (retry later), ErrClosed reports a closed Coalescer or engine,
// ErrUnsupportedConfig a scheme the engine's backend cannot run. A ctx
// error on a queued request removes it from the queue and returns the
// ctx error — its buffers are free for reuse the moment Align returns,
// preserving Pair's zero-copy aliasing contract. If the request's merged
// batch is already executing when ctx fires, Align instead waits for
// that batch (bounded by one engine batch) and returns its result.
// Engine-sized requests that bypass the queue run alone, so there ctx is
// forwarded into the engine and cancellation aborts the work itself.
func (c *Coalescer) Align(ctx context.Context, pairs []Pair, cfg Config) ([]Alignment, Stats, error) {
	// Validate cfg before the empty-batch fast path, mirroring
	// Aligner.Align: an invalid configuration fails even with no pairs.
	if err := cfg.Validate(); err != nil {
		return nil, Stats{}, err
	}
	if ctx == nil {
		// Tolerate nil like every other entry point: the queued path
		// selects on ctx.Done(), which would panic on a nil interface.
		ctx = context.Background()
	}
	// Shed configs the engine's backend cannot run at admission: letting
	// them queue would burn MaxPending budget and a flush cycle only to
	// fan the same error out at execute time (and starve valid traffic
	// into 429s under sustained unsupported spam).
	if !c.eng.Supports(cfg) {
		return nil, Stats{}, ErrUnsupportedConfig
	}
	if len(pairs) == 0 {
		return []Alignment{}, Stats{}, nil
	}
	// Engine-sized requests gain nothing from merging: run them directly,
	// keeping the queue (and its MaxPending budget) for the small requests
	// coalescing exists to serve.
	if len(pairs) >= c.opt.MaxBatchPairs {
		if c.isClosed() {
			return nil, Stats{}, ErrClosed
		}
		c.t.direct.Inc()
		out, st, err := c.eng.Align(ctx, pairs, cfg)
		if err == nil && c.opt.OnFlush != nil {
			c.opt.OnFlush(st, 1)
		}
		return out, st, err
	}
	in, err := preparePairs(pairs, cfg)
	if err != nil {
		return nil, Stats{}, err
	}

	w := &coalesceWaiter{in: in, ch: make(chan coalesceResult, 1), tr: telemetry.TraceFrom(ctx)}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, Stats{}, ErrClosed
	}
	if reason, ok := c.admitLocked(ctx, len(pairs)); !ok {
		c.mu.Unlock()
		switch reason {
		case shedDelay:
			c.t.shedDelay.Inc()
			return nil, Stats{}, ErrOverloaded
		case shedDeadline:
			c.t.shedDeadline.Inc()
			return nil, Stats{}, ErrDeadlineInfeasible
		default:
			c.t.shedBudget.Inc()
			return nil, Stats{}, ErrOverloaded
		}
	}
	w.enq = time.Now()
	key := cfg.key()
	g := c.groups[key]
	if g == nil {
		g = &coalesceGroup{key: key, cfg: cfg}
		c.groups[key] = g
		c.order = append(c.order, g)
	}
	g.waiters = append(g.waiters, w)
	g.pending += len(pairs)
	c.pending += len(pairs)
	c.mu.Unlock()
	c.t.enqueued.Inc()

	// Nudge the flusher: it re-reads queue state on every wake, so a
	// dropped send (buffer already full) is never a lost update.
	select {
	case c.kick <- struct{}{}:
	default:
	}

	select {
	case r := <-w.ch:
		return r.out, r.st, r.err
	case <-ctx.Done():
		if c.abandon(key, w) {
			// Still queued: removed before any flush touched it, so the
			// caller may reuse its buffers immediately (the zero-copy
			// aliasing contract of Pair).
			return nil, Stats{}, ctx.Err()
		}
		// The flusher already took the request: its merged batch is
		// reading the caller's buffers right now, so honor the aliasing
		// contract by waiting out that batch (bounded by one engine
		// batch) and return its result.
		r := <-w.ch
		return r.out, r.st, r.err
	}
}

// abandon removes a still-queued waiter after its caller's context fired,
// releasing its buffers and budget. It reports false when the flusher has
// already taken the waiter (its batch is executing).
func (c *Coalescer) abandon(key configKey, w *coalesceWaiter) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	g := c.groups[key]
	if g == nil {
		return false
	}
	for i, cand := range g.waiters {
		if cand == w {
			copy(g.waiters[i:], g.waiters[i+1:])
			g.waiters[len(g.waiters)-1] = nil
			g.waiters = g.waiters[:len(g.waiters)-1]
			g.pending -= len(w.in)
			c.pending -= len(w.in)
			if len(g.waiters) == 0 {
				c.dropGroupLocked(g)
			}
			return true
		}
	}
	return false
}

// Metrics snapshots the Coalescer's counters and queue gauges.
func (c *Coalescer) Metrics() CoalescerMetrics {
	c.mu.Lock()
	qr := 0
	for _, g := range c.order {
		qr += len(g.waiters)
	}
	qp, qc := c.pending, len(c.order)
	c.mu.Unlock()
	sb, sd, sdl := int64(c.t.shedBudget.Value()), int64(c.t.shedDelay.Value()), int64(c.t.shedDeadline.Value())
	fs, fd, fdr := int64(c.t.flushSize.Value()), int64(c.t.flushDeadline.Value()), int64(c.t.flushDrain.Value())
	return CoalescerMetrics{
		Enqueued:        int64(c.t.enqueued.Value()),
		Shed:            sb + sd + sdl,
		ShedBudget:      sb,
		ShedDelay:       sd,
		ShedDeadline:    sdl,
		Direct:          int64(c.t.direct.Value()),
		MergedBatches:   fs + fd + fdr,
		SizeFlushes:     fs,
		DeadlineFlushes: fd,
		DrainFlushes:    fdr,
		MergedPairs:     int64(c.t.mergedPairs.Value()),
		MergedRequests:  int64(c.t.mergedRequests.Value()),
		MaxMergedPairs:  int64(c.t.maxMergedPairs.Value()),
		WaitNS:          int64(c.t.queueWait.Value() * 1e9),
		QueuedRequests:  qr,
		QueuedPairs:     qp,
		QueuedConfigs:   qc,
	}
}

// Close stops admission, flushes every queued request, and waits for the
// flusher goroutine to exit. Idempotent. The underlying Aligner stays
// open — the Coalescer is a layer over it, not an owner.
func (c *Coalescer) Close() error {
	c.mu.Lock()
	already := c.closed
	c.closed = true
	c.mu.Unlock()
	if !already {
		close(c.done)
	}
	c.wg.Wait()
	return nil
}

func (c *Coalescer) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// flushReason tags what triggered a merged batch, for the metrics split.
type flushReason int

const (
	flushSize flushReason = iota
	flushDeadline
	flushDrain
)

// run is the flusher goroutine: it sleeps until kicked by an enqueue, the
// oldest request's deadline fires, or Close drains it; on every wake it
// submits merged batches while some group is flushable and re-arms the
// deadline timer for whatever remains.
func (c *Coalescer) run() {
	defer c.wg.Done()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	for {
		select {
		case <-c.kick:
		case <-timer.C:
		case <-c.done:
			for {
				cfg, ws, npairs, reason, ok := c.take(true)
				if !ok {
					return
				}
				c.execute(cfg, ws, npairs, reason)
			}
		}
		for {
			cfg, ws, npairs, reason, ok := c.take(false)
			if ok {
				c.execute(cfg, ws, npairs, reason)
				continue
			}
			if delay := c.nextDeadline(); delay > 0 {
				// Stop-then-reset is safe on Go 1.23+ timers even if the
				// timer already fired; a stale wake just re-reads state.
				timer.Stop()
				timer.Reset(delay)
			}
			break
		}
	}
}

// oldestLocked returns the group holding the globally oldest queued
// request. Callers hold c.mu; the order slice is non-empty.
func (c *Coalescer) oldestLocked() *coalesceGroup {
	oldest := c.order[0]
	for _, g := range c.order[1:] {
		if g.waiters[0].enq.Before(oldest.waiters[0].enq) {
			oldest = g
		}
	}
	return oldest
}

// dropGroupLocked removes an emptied group from the map and order slice.
func (c *Coalescer) dropGroupLocked(g *coalesceGroup) {
	delete(c.groups, g.key)
	for i, cand := range c.order {
		if cand == g {
			copy(c.order[i:], c.order[i+1:])
			// Clear the vacated tail slot so the order array does not pin
			// the dropped group (and its config/matrix) until overwritten.
			c.order[len(c.order)-1] = nil
			c.order = c.order[:len(c.order)-1]
			break
		}
	}
}

// take pops the next merged batch under the lock: whole requests of ONE
// configuration group in FIFO order until MaxBatchPairs is covered.
// Without force it only pops when a flush trigger holds — some group
// reached the size target, or the globally oldest request has waited
// MaxWait (that request's group flushes).
func (c *Coalescer) take(force bool) (Config, []*coalesceWaiter, int, flushReason, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.order) == 0 {
		return Config{}, nil, 0, 0, false
	}
	now := time.Now()
	reason := flushDrain
	var g *coalesceGroup
	if force {
		g = c.oldestLocked()
	} else {
		// The deadline trigger is checked first: the MaxWait bound is a
		// per-request guarantee, and a config group saturating the size
		// target must not starve another group's overdue request (the
		// take loop flushes the size-ready group right after anyway).
		if oldest := c.oldestLocked(); now.Sub(oldest.waiters[0].enq) >= c.opt.MaxWait {
			g, reason = oldest, flushDeadline
			if g.pending >= c.opt.MaxBatchPairs {
				reason = flushSize
			}
		}
		if g == nil {
			for _, cand := range c.order {
				if cand.pending >= c.opt.MaxBatchPairs {
					g, reason = cand, flushSize
					break
				}
			}
		}
		if g == nil {
			return Config{}, nil, 0, 0, false
		}
	}
	n, npairs := 0, 0
	for n < len(g.waiters) && npairs < c.opt.MaxBatchPairs {
		npairs += len(g.waiters[n].in)
		n++
	}
	ws := make([]*coalesceWaiter, n)
	copy(ws, g.waiters)
	rest := copy(g.waiters, g.waiters[n:])
	clear(g.waiters[rest:]) // drop waiter refs so the group array doesn't pin them
	g.waiters = g.waiters[:rest]
	g.pending -= npairs
	c.pending -= npairs
	if len(g.waiters) == 0 {
		c.dropGroupLocked(g)
	}

	var wait time.Duration
	for _, w := range ws {
		d := now.Sub(w.enq)
		wait += d
		// The queue wait is a per-request stage: observe it onto the
		// request's trace when it carries one (which also feeds the shared
		// histogram), else straight into the engine's stage family.
		if w.tr != nil {
			w.tr.Observe(telemetry.StageCoalesceWait, d)
		} else {
			c.eng.stages.Observe(telemetry.StageCoalesceWait, d)
		}
	}
	c.t.queueWait.Add(wait.Seconds())
	return g.cfg, ws, npairs, reason, true
}

// execute runs one merged same-config batch on the engine and scatters
// the results back to each waiting request in submission order. Engine
// errors at this point are systemic (e.g. ErrClosed) — per-pair and
// per-config problems were rejected at admission — so they fan out to
// every request in the batch.
func (c *Coalescer) execute(cfg Config, ws []*coalesceWaiter, npairs int, reason flushReason) {
	merged := c.mergeBuf[:0]
	traced := false
	for _, w := range ws {
		merged = append(merged, w.in...)
		traced = traced || w.tr != nil
	}
	// When any rider carries a trace, run the batch under a batch-level
	// trace: the engine observes the partition/kernel/scatter stages onto
	// it exactly once (batch-scoped, same as the untraced path), and the
	// scatter below copies its spans span-only onto every rider's trace.
	ctx := context.Background()
	var btr *telemetry.Trace
	if traced {
		btr = c.eng.stages.StartTrace()
		ctx = telemetry.WithTrace(ctx, btr)
	}
	// One exact-size result allocation per flush: alignPrepared fills it,
	// and the scatter below hands each waiter its capped subrange instead
	// of copying. The array is shared but the ranges are disjoint, and the
	// Coalescer never touches it again after the scatter. The pairs were
	// validated and converted at admission, so the engine runs them
	// without a second ingest pass.
	out, st, err := c.eng.alignPrepared(ctx, make([]Alignment, 0, npairs), merged, cfg)
	clear(merged) // drop sequence refs so the scratch doesn't pin callers
	c.mergeBuf = merged[:0]

	switch reason {
	case flushSize:
		c.t.flushSize.Inc()
	case flushDeadline:
		c.t.flushDeadline.Inc()
	default:
		c.t.flushDrain.Inc()
	}
	c.t.mergedPairs.Add(float64(npairs))
	c.t.mergedRequests.Add(float64(len(ws)))
	if float64(npairs) > c.t.maxMergedPairs.Value() { // flusher is the only writer
		c.t.maxMergedPairs.Set(float64(npairs))
	}
	if err == nil && npairs > 0 {
		// Calibrate the admission controller's work estimate from what the
		// batch actually cost.
		c.t.cellsPerPair.ObserveEWMA(float64(st.Cells)/float64(npairs), telemetryAlpha)
	}

	// Report the batch before scattering results: a caller must not be
	// able to see its response while the flush is still unaccounted.
	if err == nil && c.opt.OnFlush != nil {
		c.opt.OnFlush(st, len(ws))
	}
	off := 0
	for _, w := range ws {
		n := len(w.in)
		if err != nil {
			w.ch <- coalesceResult{err: err}
			continue
		}
		res := out[off : off+n : off+n]
		off += n
		var cells int64
		for i := range res {
			cells += res[i].Cells
		}
		rst := Stats{
			Pairs: n, Cells: cells,
			WallTime: st.WallTime, DeviceTime: st.DeviceTime,
		}
		rst.GCUPS = rst.gcups(c.eng.opt.Backend)
		if w.tr != nil && btr != nil {
			// Span-only copy: the histograms counted the batch once above.
			for _, sp := range btr.Spans() {
				w.tr.AddSpan(sp.Stage, sp.D)
			}
		}
		w.ch <- coalesceResult{out: res, st: rst}
	}
}

// nextDeadline returns how long until the globally oldest queued request's
// MaxWait deadline, or 0 when the queue is empty.
func (c *Coalescer) nextDeadline() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.order) == 0 {
		return 0
	}
	oldest := c.oldestLocked()
	return max(c.opt.MaxWait-time.Since(oldest.waiters[0].enq), time.Nanosecond)
}

// preparePairs applies the engine's per-pair checks (sequence alphabet
// under the config's scheme, seed bounds) and conversion before a request
// may merge with others, so one bad pair fails its own request instead of
// the whole merged batch — and the flush reuses the converted pairs
// instead of re-ingesting every byte. The messages mirror Aligner.Align's,
// with request-relative pair indices.
func preparePairs(pairs []Pair, cfg Config) ([]seq.Pair, error) {
	in := make([]seq.Pair, len(pairs))
	for i := range pairs {
		p := &pairs[i]
		sp, err := cfg.ingestPair(p, i)
		if err != nil {
			return nil, err
		}
		// Overflow-safe bounds: SeedQ+SeedLen can wrap for adversarial
		// inputs, and a pair that slips through here would panic in the
		// flusher goroutine, not the caller's.
		if p.SeedQ < 0 || p.SeedT < 0 || p.SeedLen <= 0 ||
			p.SeedQ > len(sp.Query)-p.SeedLen || p.SeedT > len(sp.Target)-p.SeedLen {
			return nil, fmt.Errorf("logan: pair %d: seed (%d,%d,len %d) outside sequences (%d, %d)",
				i, p.SeedQ, p.SeedT, p.SeedLen, len(sp.Query), len(sp.Target))
		}
		in[i] = sp
	}
	return in, nil
}
