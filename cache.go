package logan

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"sync"

	"logan/internal/seq"
)

// ResultCache is a bounded content-addressed cache of alignment
// results, keyed by (canonical pair digest, config key). An X-drop
// alignment is a pure function of the pair bytes, the seed placement
// and the scoring configuration, so a hit returns a result
// byte-identical to recomputation by construction — the coalescer
// consults it at admission (hits never enter the queue or the tenant
// quota) and fills it at scatter. Safe for concurrent use; share one
// cache across every path of a process so /align and /jobs traffic
// deduplicate against each other.
type ResultCache struct {
	mu      sync.Mutex
	max     int
	entries map[cacheKey]*list.Element
	lru     *list.List // front = most recently used
}

// cacheKey addresses one cached alignment: the sha256 digest of the
// canonical pair encoding plus the comparable scoring-config key.
// BLOSUM62 matrices are interned (config.go), so the matrix pointer
// inside configKey is identity-stable across requests.
type cacheKey struct {
	digest [32]byte
	cfg    configKey
}

// cacheEntry is one LRU node.
type cacheEntry struct {
	key cacheKey
	res Alignment
}

// NewResultCache builds a cache bounded to maxEntries alignments
// (least-recently-used eviction). maxEntries <= 0 returns nil, which
// every consumer treats as "caching disabled".
func NewResultCache(maxEntries int) *ResultCache {
	if maxEntries <= 0 {
		return nil
	}
	return &ResultCache{
		max:     maxEntries,
		entries: make(map[cacheKey]*list.Element),
		lru:     list.New(),
	}
}

// Len reports the current number of cached alignments.
func (c *ResultCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// get returns the cached alignment for k, marking it most recently
// used. The second result reports whether it was present.
func (c *ResultCache) get(k cacheKey) (Alignment, bool) {
	if c == nil {
		return Alignment{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		return Alignment{}, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// put stores res under k and returns how many entries were evicted to
// make room (0 or 1; 0 also covers overwriting an existing entry).
func (c *ResultCache) put(k cacheKey, res Alignment) int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		el.Value.(*cacheEntry).res = res
		c.lru.MoveToFront(el)
		return 0
	}
	c.entries[k] = c.lru.PushFront(&cacheEntry{key: k, res: res})
	if c.lru.Len() <= c.max {
		return 0
	}
	oldest := c.lru.Back()
	c.lru.Remove(oldest)
	delete(c.entries, oldest.Value.(*cacheEntry).key)
	return 1
}

// pairDigest computes the canonical content address of a prepared pair:
// sha256 over a fixed-width little-endian header (query length, target
// length, seed coordinates, seed length) followed by the raw query and
// target bytes. Lengths are part of the header so no concatenation of
// differing splits can collide, and seed placement is included because
// X-drop extension results depend on where the extension starts.
func pairDigest(p seq.Pair) [32]byte {
	var hdr [40]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(len(p.Query)))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(p.Target)))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(p.SeedQPos))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(p.SeedTPos))
	binary.LittleEndian.PutUint64(hdr[32:], uint64(p.SeedLen))
	h := sha256.New()
	h.Write(hdr[:])
	h.Write(p.Query)
	h.Write(p.Target)
	var d [32]byte
	h.Sum(d[:0])
	return d
}
