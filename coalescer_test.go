package logan

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"logan/internal/seq"
)

// makePairsSeed is makePairs with a caller-chosen seed, so concurrent
// clients in the coalescer tests carry distinct workloads.
func makePairsSeed(n int, seed int64) []Pair {
	rng := rand.New(rand.NewSource(seed))
	raw := seq.RandPairSet(rng, seq.PairSetOptions{
		N: n, MinLen: 100, MaxLen: 300, ErrorRate: 0.15, SeedLen: 17,
	})
	out := make([]Pair, n)
	for i, p := range raw {
		out[i] = Pair{
			Query: []byte(p.Query), Target: []byte(p.Target),
			SeedQ: p.SeedQPos, SeedT: p.SeedTPos, SeedLen: p.SeedLen,
		}
	}
	return out
}

// TestCoalescerBitIdentical is the scatter-correctness acceptance test:
// N concurrent clients with distinct pair sets must each get exactly
// their own alignments back, bit-identical to a direct engine call of the
// same pairs, on every backend. Run with -race this also exercises the
// enqueue/flush/scatter paths for data races.
func TestCoalescerBitIdentical(t *testing.T) {
	for _, bk := range []struct {
		name string
		opt  Options
	}{
		{"CPU", DefaultOptions(50)},
		{"GPU", func() Options { o := DefaultOptions(50); o.Backend = GPU; o.GPUs = 2; return o }()},
		{"Hybrid", func() Options { o := DefaultOptions(50); o.Backend = Hybrid; o.GPUs = 2; return o }()},
	} {
		t.Run(bk.name, func(t *testing.T) {
			eng, err := NewAligner(bk.opt)
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Close()

			const clients = 12
			inputs := make([][]Pair, clients)
			want := make([][]Alignment, clients)
			for c := range inputs {
				inputs[c] = makePairsSeed(3+c%5, int64(1000+c))
				w, _, err := eng.Align(inputs[c])
				if err != nil {
					t.Fatal(err)
				}
				want[c] = w
			}

			coal := eng.NewCoalescer(CoalescerOptions{
				MaxBatchPairs: 16, MaxWait: time.Millisecond,
			})
			defer coal.Close()

			var wg sync.WaitGroup
			errs := make(chan error, clients)
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for round := 0; round < 4; round++ {
						got, st, err := coal.Align(inputs[c])
						if err != nil {
							errs <- err
							return
						}
						if len(got) != len(want[c]) {
							t.Errorf("client %d: %d alignments, want %d", c, len(got), len(want[c]))
							return
						}
						var cells int64
						for i := range got {
							if got[i] != want[c][i] {
								t.Errorf("client %d pair %d: coalesced %+v != direct %+v",
									c, i, got[i], want[c][i])
								return
							}
							cells += got[i].Cells
						}
						if st.Pairs != len(inputs[c]) || st.Cells != cells {
							t.Errorf("client %d: stats %+v, want pairs %d cells %d",
								c, st, len(inputs[c]), cells)
							return
						}
					}
				}(c)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}

			m := coal.Metrics()
			if m.MergedBatches == 0 || m.MergedRequests != clients*4 {
				t.Fatalf("metrics %+v: want %d requests over >0 merged batches", m, clients*4)
			}
			if m.QueuedRequests != 0 || m.QueuedPairs != 0 {
				t.Fatalf("queue not drained: %+v", m)
			}
		})
	}
}

// TestCoalescerSizeFlush checks the size trigger: two 4-pair requests
// against an 8-pair target must merge into one batch and return long
// before the (deliberately huge) deadline.
func TestCoalescerSizeFlush(t *testing.T) {
	eng, err := NewAligner(DefaultOptions(50))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	coal := eng.NewCoalescer(CoalescerOptions{MaxBatchPairs: 8, MaxWait: time.Hour})
	defer coal.Close()

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			if _, _, err := coal.Align(makePairsSeed(4, int64(c))); err != nil {
				t.Error(err)
			}
		}(c)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("size-triggered flush took %v; deadline flush must not be the trigger", elapsed)
	}
	m := coal.Metrics()
	if m.SizeFlushes == 0 || m.DeadlineFlushes != 0 {
		t.Fatalf("metrics %+v: want a size flush and no deadline flush", m)
	}
	if m.MaxMergedPairs != 8 || m.MergedRequests != 2 {
		t.Fatalf("metrics %+v: want one 8-pair merge of 2 requests", m)
	}
}

// TestCoalescerDeadlineFlush checks the deadline trigger: a lone request
// far below the size target must still flush about MaxWait after enqueue.
func TestCoalescerDeadlineFlush(t *testing.T) {
	eng, err := NewAligner(DefaultOptions(50))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	const wait = 50 * time.Millisecond
	coal := eng.NewCoalescer(CoalescerOptions{MaxBatchPairs: 1 << 20, MaxWait: wait})
	defer coal.Close()

	start := time.Now()
	if _, _, err := coal.Align(makePairsSeed(2, 42)); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// Allow generous scheduler skew on both sides, but the request must
	// have waited for the deadline, not returned immediately.
	if elapsed < wait/2 {
		t.Fatalf("flushed after %v, before the %v deadline", elapsed, wait)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("deadline flush took %v", elapsed)
	}
	m := coal.Metrics()
	if m.DeadlineFlushes != 1 || m.MergedBatches != 1 {
		t.Fatalf("metrics %+v: want exactly one deadline flush", m)
	}
	if m.WaitNS < (wait / 2).Nanoseconds() {
		t.Fatalf("metrics %+v: wait latency not recorded", m)
	}
}

// TestCoalescerShed checks admission control: once MaxPending pairs are
// queued, further requests fail fast with ErrOverloaded, and Close still
// drains the queued ones.
func TestCoalescerShed(t *testing.T) {
	eng, err := NewAligner(DefaultOptions(50))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	coal := eng.NewCoalescer(CoalescerOptions{
		MaxBatchPairs: 100, MaxWait: time.Hour, MaxPending: 4,
	})

	queued := make(chan error, 1)
	go func() {
		_, _, err := coal.Align(makePairsSeed(3, 1))
		queued <- err
	}()
	waitFor(t, func() bool { return coal.Metrics().QueuedPairs == 3 })

	if _, _, err := coal.Align(makePairsSeed(2, 2)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-budget request: err %v, want ErrOverloaded", err)
	}
	// A request that still fits the budget is admitted; it rides the
	// drain flush below.
	fits := make(chan error, 1)
	go func() {
		_, _, err := coal.Align(makePairsSeed(1, 3))
		fits <- err
	}()
	waitFor(t, func() bool { return coal.Metrics().QueuedPairs == 4 })

	coal.Close()
	if err := <-queued; err != nil {
		t.Fatalf("queued request not drained on Close: %v", err)
	}
	if err := <-fits; err != nil {
		t.Fatalf("fitting request not drained on Close: %v", err)
	}
	m := coal.Metrics()
	if m.Shed != 1 || m.DrainFlushes == 0 {
		t.Fatalf("metrics %+v: want 1 shed and a drain flush", m)
	}
	if _, _, err := coal.Align(makePairsSeed(1, 4)); !errors.Is(err, ErrClosed) {
		t.Fatalf("align after Close: err %v, want ErrClosed", err)
	}
}

// TestCoalescerValidation checks that admission-time validation confines a
// bad pair to its own request: a concurrent valid request in the same
// flush window still succeeds.
func TestCoalescerValidation(t *testing.T) {
	eng, err := NewAligner(DefaultOptions(50))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	coal := eng.NewCoalescer(CoalescerOptions{MaxBatchPairs: 1 << 20, MaxWait: 20 * time.Millisecond})
	defer coal.Close()

	good := make(chan error, 1)
	go func() {
		_, _, err := coal.Align(makePairsSeed(2, 9))
		good <- err
	}()

	bad := []Pair{{Query: []byte("AXGT"), Target: []byte("ACGT"), SeedLen: 2}}
	if _, _, err := coal.Align(bad); err == nil || !strings.Contains(err.Error(), "pair 0 query") {
		t.Fatalf("invalid base: err %v", err)
	}
	badSeed := []Pair{{Query: []byte("ACGT"), Target: []byte("ACGT"), SeedQ: 3, SeedLen: 4}}
	if _, _, err := coal.Align(badSeed); err == nil || !strings.Contains(err.Error(), "seed") {
		t.Fatalf("out-of-range seed: err %v", err)
	}
	// SeedQ+SeedLen overflows int: must be rejected at admission, not
	// panic the flusher.
	overflow := []Pair{{Query: []byte("ACGT"), Target: []byte("ACGT"),
		SeedQ: math.MaxInt - 1, SeedLen: 4}}
	if _, _, err := coal.Align(overflow); err == nil || !strings.Contains(err.Error(), "seed") {
		t.Fatalf("overflowing seed: err %v", err)
	}
	if err := <-good; err != nil {
		t.Fatalf("valid request failed alongside invalid ones: %v", err)
	}
}

// TestCoalescerDirectBypass checks that engine-sized requests skip the
// queue: they must return promptly despite an hour-long deadline, and be
// counted as direct.
func TestCoalescerDirectBypass(t *testing.T) {
	eng, err := NewAligner(DefaultOptions(50))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	coal := eng.NewCoalescer(CoalescerOptions{MaxBatchPairs: 4, MaxWait: time.Hour})
	defer coal.Close()

	pairs := makePairsSeed(4, 5)
	want, _, err := eng.Align(pairs)
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := coal.Align(pairs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pair %d: %+v != %+v", i, got[i], want[i])
		}
	}
	if st.Pairs != 4 {
		t.Fatalf("stats %+v", st)
	}
	m := coal.Metrics()
	if m.Direct != 1 || m.Enqueued != 0 {
		t.Fatalf("metrics %+v: want a direct bypass, no enqueue", m)
	}
}

// TestCoalescerContextCancel checks that a caller can abandon the wait: a
// canceled context returns immediately even though the pairs are queued
// behind an hour-long deadline.
func TestCoalescerContextCancel(t *testing.T) {
	eng, err := NewAligner(DefaultOptions(50))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	coal := eng.NewCoalescer(CoalescerOptions{MaxBatchPairs: 1 << 20, MaxWait: time.Hour})
	defer coal.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		// Cancel once the request is visibly queued (or after a long
		// fallback so the test can't hang).
		deadline := time.Now().Add(10 * time.Second)
		for coal.Metrics().QueuedPairs == 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	if _, _, err := coal.AlignContext(ctx, makePairsSeed(1, 6)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v, want context.Canceled", err)
	}
}

// TestCoalescerEmptyRequest checks the zero-pair fast path.
func TestCoalescerEmptyRequest(t *testing.T) {
	eng, err := NewAligner(DefaultOptions(50))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	coal := eng.NewCoalescer(CoalescerOptions{})
	defer coal.Close()
	out, st, err := coal.Align(nil)
	if err != nil || len(out) != 0 || st.Pairs != 0 {
		t.Fatalf("empty request: out %v, st %+v, err %v", out, st, err)
	}
}

// waitFor polls cond until it holds or a long deadline expires.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}
