package logan

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"logan/internal/seq"
)

// cfgT is the default per-request configuration of the coalescer tests.
var cfgT = DefaultConfig(50)

// makePairsSeed is makePairs with a caller-chosen seed, so concurrent
// clients in the coalescer tests carry distinct workloads.
func makePairsSeed(n int, seed int64) []Pair {
	rng := rand.New(rand.NewSource(seed))
	raw := seq.RandPairSet(rng, seq.PairSetOptions{
		N: n, MinLen: 100, MaxLen: 300, ErrorRate: 0.15, SeedLen: 17,
	})
	out := make([]Pair, n)
	for i, p := range raw {
		out[i] = Pair{
			Query: []byte(p.Query), Target: []byte(p.Target),
			SeedQ: p.SeedQPos, SeedT: p.SeedTPos, SeedLen: p.SeedLen,
		}
	}
	return out
}

// TestCoalescerBitIdentical is the scatter-correctness acceptance test:
// N concurrent clients with distinct pair sets must each get exactly
// their own alignments back, bit-identical to a direct engine call of the
// same pairs, on every backend. Run with -race this also exercises the
// enqueue/flush/scatter paths for data races.
func TestCoalescerBitIdentical(t *testing.T) {
	for _, bk := range []struct {
		name string
		opt  EngineOptions
	}{
		{"CPU", EngineOptions{}},
		{"GPU", EngineOptions{Backend: GPU, GPUs: 2}},
		{"Hybrid", EngineOptions{Backend: Hybrid, GPUs: 2}},
	} {
		t.Run(bk.name, func(t *testing.T) {
			eng, err := NewAligner(bk.opt)
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Close()

			const clients = 12
			inputs := make([][]Pair, clients)
			want := make([][]Alignment, clients)
			for c := range inputs {
				inputs[c] = makePairsSeed(3+c%5, int64(1000+c))
				w, _, err := eng.Align(ctxb, inputs[c], cfgT)
				if err != nil {
					t.Fatal(err)
				}
				want[c] = w
			}

			coal := eng.NewCoalescer(CoalescerOptions{
				MaxBatchPairs: 16, MaxWait: time.Millisecond,
				// This test pins bit-identity, not admission: the tiny batch
				// target makes the adaptive one-batch floor smaller than the
				// concurrent load, so give the controller unlimited delay.
				TargetDelay: time.Hour,
			})
			defer coal.Close()

			var wg sync.WaitGroup
			errs := make(chan error, clients)
			for c := 0; c < clients; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for round := 0; round < 4; round++ {
						got, st, err := coal.Align(ctxb, inputs[c], cfgT)
						if err != nil {
							errs <- err
							return
						}
						if len(got) != len(want[c]) {
							t.Errorf("client %d: %d alignments, want %d", c, len(got), len(want[c]))
							return
						}
						var cells int64
						for i := range got {
							if got[i] != want[c][i] {
								t.Errorf("client %d pair %d: coalesced %+v != direct %+v",
									c, i, got[i], want[c][i])
								return
							}
							cells += got[i].Cells
						}
						if st.Pairs != len(inputs[c]) || st.Cells != cells {
							t.Errorf("client %d: stats %+v, want pairs %d cells %d",
								c, st, len(inputs[c]), cells)
							return
						}
					}
				}(c)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}

			m := coal.Metrics()
			if m.MergedBatches == 0 || m.MergedRequests != clients*4 {
				t.Fatalf("metrics %+v: want %d requests over >0 merged batches", m, clients*4)
			}
			if m.QueuedRequests != 0 || m.QueuedPairs != 0 || m.QueuedLanes != 0 {
				t.Fatalf("queue not drained: %+v", m)
			}
		})
	}
}

// TestCoalescerMixedConfigs is the request-scoping acceptance test for
// the coalescing layer (run with -race in CI): concurrent clients with
// interleaved linear, per-request-X, affine and BLOSUM62 configurations
// share one engine and one coalescer, every result must be bit-identical
// to a dedicated engine running that client's config, and same-config
// traffic must still merge (mergedBatches < requests).
func TestCoalescerMixedConfigs(t *testing.T) {
	eng, err := NewAligner(EngineOptions{Backend: Hybrid, GPUs: 2, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	type client struct {
		pairs []Pair
		cfg   Config
		want  []Alignment
	}
	configs := []Config{
		DefaultConfig(50),
		DefaultConfig(120), // same scheme, different X: distinct group
		{X: 50, Scoring: AffineScoring(1, -1, -2, -1)},
		{X: 40, Scoring: MatrixScoring(Blosum62(-6))},
	}
	const clients = 16
	cl := make([]client, clients)
	for c := range cl {
		cfg := configs[c%len(configs)]
		var pairs []Pair
		if cfg.Scoring.Mode() == "matrix" {
			pairs = makeProteinPairs(3+c%3, int64(300+c))
		} else {
			pairs = makePairsSeed(3+c%3, int64(300+c))
		}
		// Dedicated engine per config: the bit-identity reference.
		ded, err := NewAligner(eng.Engine())
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := ded.Align(ctxb, pairs, cfg)
		ded.Close()
		if err != nil {
			t.Fatal(err)
		}
		cl[c] = client{pairs: pairs, cfg: cfg, want: want}
	}

	coal := eng.NewCoalescer(CoalescerOptions{
		MaxBatchPairs: 12, MaxWait: 2 * time.Millisecond,
		// All clients may be queued at once across four config groups:
		// give admission control room so nothing sheds.
		MaxPending: 1 << 20,
	})
	defer coal.Close()

	const rounds = 4
	var wg sync.WaitGroup
	for c := range cl {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				got, _, err := coal.Align(ctxb, cl[c].pairs, cl[c].cfg)
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				for i := range got {
					if got[i] != cl[c].want[i] {
						t.Errorf("client %d pair %d (%s/X=%d): coalesced %+v != dedicated %+v",
							c, i, cl[c].cfg.Scoring.Mode(), cl[c].cfg.X, got[i], cl[c].want[i])
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()

	m := coal.Metrics()
	if m.MergedRequests != clients*rounds {
		t.Fatalf("metrics %+v: want %d merged requests", m, clients*rounds)
	}
	if m.MergedBatches == 0 || m.MergedBatches >= int64(clients*rounds) {
		t.Fatalf("mixed-config traffic did not merge: %d batches for %d requests",
			m.MergedBatches, clients*rounds)
	}
	if m.QueuedLanes != 0 || m.QueuedPairs != 0 {
		t.Fatalf("queue not drained: %+v", m)
	}
}

// TestCoalescerSizeFlush checks the size trigger: two 4-pair requests
// against an 8-pair target must merge into one batch and return long
// before the (deliberately huge) deadline.
func TestCoalescerSizeFlush(t *testing.T) {
	eng, err := NewAligner(EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	coal := eng.NewCoalescer(CoalescerOptions{MaxBatchPairs: 8, MaxWait: time.Hour})
	defer coal.Close()

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			if _, _, err := coal.Align(ctxb, makePairsSeed(4, int64(c)), cfgT); err != nil {
				t.Error(err)
			}
		}(c)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("size-triggered flush took %v; deadline flush must not be the trigger", elapsed)
	}
	m := coal.Metrics()
	if m.SizeFlushes == 0 || m.DeadlineFlushes != 0 {
		t.Fatalf("metrics %+v: want a size flush and no deadline flush", m)
	}
	if m.MaxMergedPairs != 8 || m.MergedRequests != 2 {
		t.Fatalf("metrics %+v: want one 8-pair merge of 2 requests", m)
	}
}

// TestCoalescerSizeFlushPerConfig: the size trigger counts pairs per
// configuration group, so two configs at half the target each must not
// flush on size — only the deadline releases them, in two batches.
func TestCoalescerSizeFlushPerConfig(t *testing.T) {
	eng, err := NewAligner(EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	const wait = 50 * time.Millisecond
	coal := eng.NewCoalescer(CoalescerOptions{MaxBatchPairs: 8, MaxWait: wait})
	defer coal.Close()

	other := DefaultConfig(77)
	var wg sync.WaitGroup
	for c := 0; c < 2; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cfg := cfgT
			if c == 1 {
				cfg = other
			}
			if _, _, err := coal.Align(ctxb, makePairsSeed(4, int64(c)), cfg); err != nil {
				t.Error(err)
			}
		}(c)
	}
	wg.Wait()
	m := coal.Metrics()
	if m.SizeFlushes != 0 {
		t.Fatalf("metrics %+v: cross-config pairs must not satisfy the size target", m)
	}
	if m.MergedBatches != 2 || m.DeadlineFlushes != 2 {
		t.Fatalf("metrics %+v: want two deadline-flushed single-config batches", m)
	}
}

// TestCoalescerDeadlineFlush checks the deadline trigger: a lone request
// far below the size target must still flush about MaxWait after enqueue.
func TestCoalescerDeadlineFlush(t *testing.T) {
	eng, err := NewAligner(EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	const wait = 50 * time.Millisecond
	coal := eng.NewCoalescer(CoalescerOptions{MaxBatchPairs: 1 << 20, MaxWait: wait})
	defer coal.Close()

	start := time.Now()
	if _, _, err := coal.Align(ctxb, makePairsSeed(2, 42), cfgT); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// Allow generous scheduler skew on both sides, but the request must
	// have waited for the deadline, not returned immediately.
	if elapsed < wait/2 {
		t.Fatalf("flushed after %v, before the %v deadline", elapsed, wait)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("deadline flush took %v", elapsed)
	}
	m := coal.Metrics()
	if m.DeadlineFlushes != 1 || m.MergedBatches != 1 {
		t.Fatalf("metrics %+v: want exactly one deadline flush", m)
	}
	if m.WaitNS < (wait / 2).Nanoseconds() {
		t.Fatalf("metrics %+v: wait latency not recorded", m)
	}
}

// TestCoalescerShed checks admission control: once MaxPending pairs are
// queued (across all configs), further requests fail fast with
// ErrOverloaded, and Close still drains the queued ones.
func TestCoalescerShed(t *testing.T) {
	eng, err := NewAligner(EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	coal := eng.NewCoalescer(CoalescerOptions{
		MaxBatchPairs: 100, MaxWait: time.Hour, MaxPending: 4,
	})

	queued := make(chan error, 1)
	go func() {
		_, _, err := coal.Align(ctxb, makePairsSeed(3, 1), cfgT)
		queued <- err
	}()
	waitFor(t, func() bool { return coal.Metrics().QueuedPairs == 3 })

	// The budget is global: a different config cannot squeeze past it.
	if _, _, err := coal.Align(ctxb, makePairsSeed(2, 2), DefaultConfig(99)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-budget request: err %v, want ErrOverloaded", err)
	}
	// A request that still fits the budget is admitted; it rides the
	// drain flush below.
	fits := make(chan error, 1)
	go func() {
		_, _, err := coal.Align(ctxb, makePairsSeed(1, 3), cfgT)
		fits <- err
	}()
	waitFor(t, func() bool { return coal.Metrics().QueuedPairs == 4 })

	coal.Close()
	if err := <-queued; err != nil {
		t.Fatalf("queued request not drained on Close: %v", err)
	}
	if err := <-fits; err != nil {
		t.Fatalf("fitting request not drained on Close: %v", err)
	}
	m := coal.Metrics()
	if m.Shed != 1 || m.DrainFlushes == 0 {
		t.Fatalf("metrics %+v: want 1 shed and a drain flush", m)
	}
	if _, _, err := coal.Align(ctxb, makePairsSeed(1, 4), cfgT); !errors.Is(err, ErrClosed) {
		t.Fatalf("align after Close: err %v, want ErrClosed", err)
	}
}

// TestCoalescerValidation checks that admission-time validation confines a
// bad pair or config to its own request: a concurrent valid request in
// the same flush window still succeeds.
func TestCoalescerValidation(t *testing.T) {
	eng, err := NewAligner(EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	coal := eng.NewCoalescer(CoalescerOptions{MaxBatchPairs: 1 << 20, MaxWait: 20 * time.Millisecond})
	defer coal.Close()

	good := make(chan error, 1)
	go func() {
		_, _, err := coal.Align(ctxb, makePairsSeed(2, 9), cfgT)
		good <- err
	}()

	bad := []Pair{{Query: []byte("AXGT"), Target: []byte("ACGT"), SeedLen: 2}}
	if _, _, err := coal.Align(ctxb, bad, cfgT); err == nil || !strings.Contains(err.Error(), "pair 0 query") {
		t.Fatalf("invalid base: err %v", err)
	}
	badSeed := []Pair{{Query: []byte("ACGT"), Target: []byte("ACGT"), SeedQ: 3, SeedLen: 4}}
	if _, _, err := coal.Align(ctxb, badSeed, cfgT); err == nil || !strings.Contains(err.Error(), "seed") {
		t.Fatalf("out-of-range seed: err %v", err)
	}
	// SeedQ+SeedLen overflows int: must be rejected at admission, not
	// panic the flusher.
	overflow := []Pair{{Query: []byte("ACGT"), Target: []byte("ACGT"),
		SeedQ: math.MaxInt - 1, SeedLen: 4}}
	if _, _, err := coal.Align(ctxb, overflow, cfgT); err == nil || !strings.Contains(err.Error(), "seed") {
		t.Fatalf("overflowing seed: err %v", err)
	}
	// An invalid configuration is rejected at admission, too.
	if _, _, err := coal.Align(ctxb, makePairsSeed(1, 10), Config{X: 10}); err == nil {
		t.Fatal("unset scoring accepted")
	}
	if err := <-good; err != nil {
		t.Fatalf("valid request failed alongside invalid ones: %v", err)
	}
}

// TestCoalescerDirectBypass checks that engine-sized requests skip the
// queue: they must return promptly despite an hour-long deadline, and be
// counted as direct.
func TestCoalescerDirectBypass(t *testing.T) {
	eng, err := NewAligner(EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	coal := eng.NewCoalescer(CoalescerOptions{MaxBatchPairs: 4, MaxWait: time.Hour})
	defer coal.Close()

	pairs := makePairsSeed(4, 5)
	want, _, err := eng.Align(ctxb, pairs, cfgT)
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := coal.Align(ctxb, pairs, cfgT)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pair %d: %+v != %+v", i, got[i], want[i])
		}
	}
	if st.Pairs != 4 {
		t.Fatalf("stats %+v", st)
	}
	m := coal.Metrics()
	if m.Direct != 1 || m.Enqueued != 0 {
		t.Fatalf("metrics %+v: want a direct bypass, no enqueue", m)
	}
}

// TestCoalescerContextCancel checks that a caller can abandon the wait: a
// canceled context returns immediately even though the pairs are queued
// behind an hour-long deadline.
func TestCoalescerContextCancel(t *testing.T) {
	eng, err := NewAligner(EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	coal := eng.NewCoalescer(CoalescerOptions{MaxBatchPairs: 1 << 20, MaxWait: time.Hour})
	defer coal.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		// Cancel once the request is visibly queued (or after a long
		// fallback so the test can't hang).
		deadline := time.Now().Add(10 * time.Second)
		for coal.Metrics().QueuedPairs == 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	if _, _, err := coal.Align(ctx, makePairsSeed(1, 6), cfgT); !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v, want context.Canceled", err)
	}
}

// TestCoalescerEmptyRequest checks the zero-pair fast path.
func TestCoalescerEmptyRequest(t *testing.T) {
	eng, err := NewAligner(EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	coal := eng.NewCoalescer(CoalescerOptions{})
	defer coal.Close()
	out, st, err := coal.Align(ctxb, nil, cfgT)
	if err != nil || len(out) != 0 || st.Pairs != 0 {
		t.Fatalf("empty request: out %v, st %+v, err %v", out, st, err)
	}
}

// waitFor polls cond until it holds or a long deadline expires.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCoalescerDeadlineBeatsSizeStarvation pins the take() trigger order:
// when one config group is size-ready but another group's request is
// overdue, the overdue group must flush first — a saturated config must
// not starve another config past its MaxWait bound.
func TestCoalescerDeadlineBeatsSizeStarvation(t *testing.T) {
	eng, err := NewAligner(EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	// newCoalescer: fully instrumented but no flusher goroutine, so the
	// test owns take() and the hand-built queue state below cannot race.
	c := eng.newCoalescer(CoalescerOptions{MaxBatchPairs: 4, MaxWait: 10 * time.Millisecond})
	mk := func(cfg Config, npairs int, enq time.Time) {
		w := &coalesceWaiter{
			in: make([]seq.Pair, npairs), npairs: npairs, enq: enq,
			tt: c.tenantTele(anonymousTenant), ch: make(chan coalesceResult, 1),
		}
		c.mu.Lock()
		c.enqueueLocked(laneKey{ten: anonymousTenant, class: classInteractive, cfg: cfg.key()}, cfg, w)
		c.mu.Unlock()
	}
	full := DefaultConfig(50)
	starved := DefaultConfig(99)
	mk(full, 8, time.Now())                      // size-ready, fresh
	mk(starved, 1, time.Now().Add(-time.Minute)) // tiny, long overdue

	cfg, ws, npairs, reason, ok := c.take(false)
	if !ok || cfg.key() != starved.key() || reason != flushDeadline || npairs != 1 {
		t.Fatalf("first take: cfg X=%d reason %v npairs %d ok %v; want the overdue group via deadline",
			cfg.X, reason, npairs, ok)
	}
	_ = ws
	// The size-ready group flushes immediately after.
	cfg, _, npairs, reason, ok = c.take(false)
	if !ok || cfg.key() != full.key() || reason != flushSize || npairs != 8 {
		t.Fatalf("second take: cfg X=%d reason %v npairs %d ok %v; want the size-ready group",
			cfg.X, reason, npairs, ok)
	}
}

// TestCoalescerUnsupportedConfigShedsAtAdmission: a config the engine's
// backend cannot run must fail immediately with ErrUnsupportedConfig —
// never queueing, never consuming the MaxPending budget.
func TestCoalescerUnsupportedConfigShedsAtAdmission(t *testing.T) {
	eng, err := NewAligner(EngineOptions{Backend: GPU})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if eng.Supports(Config{X: 1, Scoring: AffineScoring(1, -1, -2, -1)}) {
		t.Fatal("GPU engine claims affine support")
	}
	if !eng.Supports(DefaultConfig(1)) {
		t.Fatal("GPU engine denies linear support")
	}
	coal := eng.NewCoalescer(CoalescerOptions{MaxBatchPairs: 1 << 20, MaxWait: time.Hour})
	defer coal.Close()

	start := time.Now()
	_, _, err = coal.Align(ctxb, makePairsSeed(2, 1), Config{X: 30, Scoring: AffineScoring(1, -1, -2, -1)})
	if !errors.Is(err, ErrUnsupportedConfig) {
		t.Fatalf("err %v, want ErrUnsupportedConfig", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("unsupported config waited for a flush instead of failing at admission")
	}
	m := coal.Metrics()
	if m.Enqueued != 0 || m.QueuedPairs != 0 {
		t.Fatalf("unsupported config consumed queue budget: %+v", m)
	}
}

// TestCoalescerAbandonReleasesQueue: a ctx-canceled queued request must
// leave the queue entirely — gauges drop to zero and its budget is
// returned — so the caller may immediately reuse its buffers and later
// requests see the freed MaxPending budget.
func TestCoalescerAbandonReleasesQueue(t *testing.T) {
	eng, err := NewAligner(EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	coal := eng.NewCoalescer(CoalescerOptions{
		MaxBatchPairs: 1 << 20, MaxWait: time.Hour, MaxPending: 4,
	})
	defer coal.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := coal.Align(ctx, makePairsSeed(4, 11), cfgT)
		done <- err
	}()
	waitFor(t, func() bool { return coal.Metrics().QueuedPairs == 4 })
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v, want context.Canceled", err)
	}
	m := coal.Metrics()
	if m.QueuedPairs != 0 || m.QueuedRequests != 0 || m.QueuedLanes != 0 {
		t.Fatalf("abandoned request still queued: %+v", m)
	}
	// The full budget is available again: a 4-pair request is admitted
	// (not shed) and rides the drain flush.
	ok := make(chan error, 1)
	go func() {
		_, _, err := coal.Align(ctxb, makePairsSeed(4, 12), cfgT)
		ok <- err
	}()
	waitFor(t, func() bool { return coal.Metrics().QueuedPairs == 4 })
	coal.Close()
	if err := <-ok; err != nil {
		t.Fatalf("budget not released: %v", err)
	}
}
