module logan

go 1.24
