package logan

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"logan/internal/backend"
	"logan/internal/core"
	"logan/internal/seq"
	"logan/internal/xdrop"
)

// ErrClosed reports use of an Aligner after Close.
var ErrClosed = errors.New("logan: aligner is closed")

// ErrStreamClosed reports a submission to a Stream after its Close.
var ErrStreamClosed = errors.New("logan: stream is closed")

// Aligner is a long-lived alignment engine: create it once, feed it batch
// after batch. It holds the resources that the one-shot Align function
// would otherwise rebuild per call — a persistent CPU worker pool with
// per-worker DP workspaces, a persistent simulated V100 pool, or both for
// the Hybrid scheduler — plus pooled staging buffers, so steady-state
// batches are allocation-lean on the hot path. This is the host-side
// discipline of LOGAN's own pipeline, which keeps device pools and buffers
// alive across the many batches of a real assembly workload.
//
// Execution is delegated to an internal backend chosen by Options.Backend;
// the engine itself only validates, stages and converts. An Aligner is
// safe for concurrent use, and concurrency is per resource, not per
// engine: CPU batches interleave across the shared worker pool, GPU
// batches serialize per device (two concurrent batches on a multi-GPU
// engine proceed on different devices), and Hybrid batches do both.
type Aligner struct {
	opt    Options
	be     backend.Backend
	closed atomic.Bool
	// scratch pools the per-batch conversion and result staging.
	scratch sync.Pool
}

// batchScratch is the reusable per-batch staging: the validated sequence
// pairs handed to the backend and the raw seed-extension results.
type batchScratch struct {
	in  []seq.Pair
	res []xdrop.SeedResult
}

// NewAligner builds an engine for the given options. X, Match/Mismatch/Gap
// are the engine defaults used by Align; Backend, GPUs and Threads choose
// the resources the engine keeps alive.
func NewAligner(opt Options) (*Aligner, error) {
	be, err := newBackend(opt)
	if err != nil {
		return nil, err
	}
	a := &Aligner{opt: opt, be: be}
	a.scratch.New = func() any { return new(batchScratch) }
	return a, nil
}

// newBackend maps Options onto the execution layer: the pluggable
// dispatch that replaced the hard-coded CPU/GPU switch in align.
func newBackend(opt Options) (backend.Backend, error) {
	gpus := opt.GPUs
	if gpus <= 0 {
		gpus = 1
	}
	switch opt.Backend {
	case CPU:
		return backend.NewCPU(opt.Threads), nil
	case GPU:
		if gpus == 1 {
			return backend.NewV100("gpu0")
		}
		return backend.NewV100MultiGPU(gpus)
	case Hybrid:
		return backend.NewHybrid(opt.Threads, gpus)
	default:
		return nil, fmt.Errorf("logan: unknown backend %d", opt.Backend)
	}
}

// Options returns the engine's configured defaults.
func (a *Aligner) Options() Options { return a.opt }

// Close releases the engine's workers. In-flight batches finish; further
// calls fail with ErrClosed.
func (a *Aligner) Close() error {
	if a.closed.Swap(true) {
		return nil
	}
	return a.be.Close()
}

// Align aligns one batch on the engine, like the package-level Align but
// with every per-call setup cost already paid.
func (a *Aligner) Align(pairs []Pair) ([]Alignment, Stats, error) {
	return a.align(nil, pairs, a.opt)
}

// AlignInto is Align reusing dst for the results when it has capacity;
// callers looping over batches can hand the previous slice back and keep
// the steady state allocation-lean.
func (a *Aligner) AlignInto(dst []Alignment, pairs []Pair) ([]Alignment, Stats, error) {
	return a.align(dst, pairs, a.opt)
}

// align runs one batch using the engine's resources and opt's scoring
// parameters (the legacy entry points pass per-call options).
func (a *Aligner) align(dst []Alignment, pairs []Pair, opt Options) ([]Alignment, Stats, error) {
	if a.closed.Load() {
		return nil, Stats{}, ErrClosed
	}
	start := time.Now()

	sc := a.scratch.Get().(*batchScratch)
	defer func() {
		// Drop sequence references so pooled scratch does not pin caller
		// buffers between batches.
		clear(sc.in[:cap(sc.in)])
		a.scratch.Put(sc)
	}()
	if cap(sc.in) < len(pairs) {
		sc.in = make([]seq.Pair, len(pairs))
	}
	in := sc.in[:len(pairs)]
	sc.in = in
	for i := range pairs {
		p := &pairs[i]
		q, err := seq.FromBytes(p.Query)
		if err != nil {
			return nil, Stats{}, fmt.Errorf("logan: pair %d query: %w", i, err)
		}
		t, err := seq.FromBytes(p.Target)
		if err != nil {
			return nil, Stats{}, fmt.Errorf("logan: pair %d target: %w", i, err)
		}
		in[i] = seq.Pair{
			Query: q, Target: t,
			SeedQPos: p.SeedQ, SeedTPos: p.SeedT, SeedLen: p.SeedLen, ID: i,
		}
	}

	if cap(sc.res) < len(pairs) {
		sc.res = make([]xdrop.SeedResult, len(pairs))
	}
	results := sc.res[:len(pairs)]
	sc.res = results
	bst, err := a.be.ExtendBatch(in, results, core.Config{Scoring: opt.scoring(), X: opt.X})
	if err != nil {
		if errors.Is(err, xdrop.ErrPoolClosed) || errors.Is(err, backend.ErrClosed) {
			err = ErrClosed
		}
		return nil, Stats{}, err
	}

	st := Stats{Pairs: len(pairs), Cells: bst.Cells, DeviceTime: bst.DeviceTime}
	for _, sh := range bst.Shards {
		st.PerBackend = append(st.PerBackend, BackendStats{
			Name: sh.Backend, Pairs: sh.Pairs, Cells: sh.Cells, Time: sh.Time,
		})
	}

	if cap(dst) < len(results) {
		dst = make([]Alignment, len(results))
	}
	dst = dst[:len(results)]
	for i := range results {
		dst[i] = toAlignment(results[i])
	}
	st.WallTime = time.Since(start)
	st.GCUPS = st.gcups(opt.Backend)
	return dst, st, nil
}

// gcups applies the per-backend denominator contract documented on
// Stats.GCUPS: device time for GPU, wall time for CPU and Hybrid, 0 when
// the denominator is zero (never NaN or Inf).
func (s *Stats) gcups(b Backend) float64 {
	denom := s.WallTime
	if b == GPU {
		denom = s.DeviceTime
	}
	if denom <= 0 {
		return 0
	}
	return float64(s.Cells) / denom.Seconds() / 1e9
}

// Batch is one unit of streaming work: a caller-chosen ID and its pairs.
type Batch struct {
	ID    int64
	Pairs []Pair
}

// BatchResult is the outcome of one streamed batch, delivered in
// submission order.
type BatchResult struct {
	ID         int64
	Alignments []Alignment
	Stats      Stats
	Err        error
}

// Stream pipelines batches through an Aligner: Submit enqueues (ingest),
// a dedicated goroutine aligns, and Results delivers outcomes in
// submission order (emit). At most `inflight` batches buffer at each end,
// so a fast producer cannot outrun the engine unboundedly.
type Stream struct {
	jobs chan Batch
	out  chan BatchResult
	// mu guards closed and the job-channel sends the same way xdrop.Pool
	// guards its submissions: Submit holds the read side for the send,
	// Close takes the write side, so a close can never race a blocked
	// send and a post-Close Submit fails cleanly instead of panicking.
	mu     sync.RWMutex
	closed bool
}

// NewStream starts a stream over the engine with the given in-flight bound
// (0 selects 2). Close the stream to flush; Results closes once drained.
func (a *Aligner) NewStream(inflight int) *Stream {
	if inflight <= 0 {
		inflight = 2
	}
	s := &Stream{
		jobs: make(chan Batch, inflight),
		out:  make(chan BatchResult, inflight),
	}
	go func() {
		for b := range s.jobs {
			al, st, err := a.Align(b.Pairs)
			s.out <- BatchResult{ID: b.ID, Alignments: al, Stats: st, Err: err}
		}
		close(s.out)
	}()
	return s
}

// Submit enqueues a batch, blocking while the in-flight bound is reached.
// Safe for concurrent use; submissions after Close return ErrStreamClosed.
// The batch's sequence buffers are aliased, not copied (see Pair): do not
// overwrite them until the batch's BatchResult arrives.
func (s *Stream) Submit(b Batch) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrStreamClosed
	}
	s.jobs <- b
	return nil
}

// TrySubmit is the non-blocking Submit: it reports false when the
// in-flight bound is reached, letting producers shed load instead of
// stalling, and returns ErrStreamClosed after Close. Unlike Submit it
// never waits, not even for the close lock: if a Close is in progress
// (which would make any later submission fail anyway), it fails fast
// with ErrStreamClosed.
func (s *Stream) TrySubmit(b Batch) (bool, error) {
	if !s.mu.TryRLock() {
		// The only writer is Close, so a held write lock (or a pending
		// writer blocking new readers) means the stream is closing.
		return false, ErrStreamClosed
	}
	defer s.mu.RUnlock()
	if s.closed {
		return false, ErrStreamClosed
	}
	select {
	case s.jobs <- b:
		return true, nil
	default:
		return false, nil
	}
}

// Results returns the ordered result channel. It closes after Close once
// every submitted batch has been delivered.
func (s *Stream) Results() <-chan BatchResult { return s.out }

// Close ends submission; it is idempotent. Pending batches still flow to
// Results. Close waits for concurrently blocked Submits to enqueue first,
// so a producer stalled on a full stream must be unblocked (keep draining
// Results) before Close returns.
func (s *Stream) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.closed = true
		close(s.jobs)
	}
}

// engineKey identifies the resources a default engine holds; scoring and X
// are per-call parameters, not part of the key.
type engineKey struct {
	backend Backend
	gpus    int
	threads int
}

// defaultEngines caches one engine per distinct resource shape for the
// package-level Align/AlignPair, so legacy callers also stop paying pool
// construction per call. The cache is capped: callers that sweep Threads
// or GPUs per call get a transient engine beyond the cap instead of
// leaking worker pools for the process lifetime.
var (
	defaultEnginesMu sync.Mutex
	defaultEngines   = map[engineKey]*Aligner{}
)

const maxDefaultEngines = 8

// defaultEngine returns an engine for opt's resource shape and a release
// function the caller must invoke when the batch is done (a no-op for
// cached engines, Close for transient overflow engines).
func defaultEngine(opt Options) (*Aligner, func(), error) {
	key := engineKey{backend: opt.Backend}
	switch opt.Backend {
	case GPU:
		key.gpus = max(opt.GPUs, 1)
	case Hybrid:
		key.gpus = max(opt.GPUs, 1)
		key.threads = opt.Threads
	default:
		key.threads = opt.Threads
	}
	defaultEnginesMu.Lock()
	if a, ok := defaultEngines[key]; ok {
		defaultEnginesMu.Unlock()
		return a, func() {}, nil
	}
	cache := len(defaultEngines) < maxDefaultEngines
	defaultEnginesMu.Unlock()

	a, err := NewAligner(opt)
	if err != nil {
		return nil, nil, err
	}
	if !cache {
		return a, func() { a.Close() }, nil
	}
	defaultEnginesMu.Lock()
	defer defaultEnginesMu.Unlock()
	if prior, ok := defaultEngines[key]; ok {
		// Lost a construction race: keep the cached one.
		go a.Close()
		return prior, func() {}, nil
	}
	defaultEngines[key] = a
	return a, func() {}, nil
}

// CloseDefaultEngines closes and discards every engine cached behind the
// package-level Align, releasing their worker pools. Long-running
// processes that used the package-level entry points (or hosted code that
// did) call this at shutdown; the next Align after it simply rebuilds its
// engine.
func CloseDefaultEngines() {
	defaultEnginesMu.Lock()
	engines := defaultEngines
	defaultEngines = map[engineKey]*Aligner{}
	defaultEnginesMu.Unlock()
	for _, a := range engines {
		a.Close()
	}
}
