package logan

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"logan/internal/backend"
	"logan/internal/core"
	"logan/internal/seq"
	"logan/internal/telemetry"
	"logan/internal/xdrop"
)

// ErrClosed reports use of an Aligner after Close.
var ErrClosed = errors.New("logan: aligner is closed")

// ErrStreamClosed reports a submission to a Stream after its Close.
var ErrStreamClosed = errors.New("logan: stream is closed")

// EngineOptions configures the resources an Aligner keeps alive — the
// engine's shape, fixed for its lifetime. Per-request parameters (X and
// the scoring scheme) live in Config instead and are chosen per Align
// call, so one engine of a given shape serves arbitrarily many scoring
// configurations concurrently.
type EngineOptions struct {
	// Backend selects CPU, GPU or Hybrid execution (default CPU).
	Backend Backend
	// GPUs is the simulated device count for the GPU and Hybrid backends
	// (default 1).
	GPUs int
	// Threads is the CPU worker count for the CPU and Hybrid backends
	// (default GOMAXPROCS).
	Threads int
}

// Aligner is a long-lived alignment engine: create it once, feed it batch
// after batch. It holds the resources that the one-shot Align function
// would otherwise rebuild per call — a persistent CPU worker pool with
// per-worker DP workspaces, a persistent simulated V100 pool, or both for
// the Hybrid scheduler — plus pooled staging buffers, so steady-state
// batches are allocation-lean on the hot path. This is the host-side
// discipline of LOGAN's own pipeline, which keeps device pools and buffers
// alive across the many batches of a real assembly workload.
//
// The engine is request-scoped: every Align call carries its own Config
// (X, scoring scheme) and context, and concurrent calls may use different
// configs — linear, affine and substitution-matrix batches interleave on
// one engine with results bit-identical to dedicated engines. Affine and
// matrix configs are CPU-engine families: a Hybrid engine routes them to
// its CPU shards, a pure-GPU engine rejects them with
// ErrUnsupportedConfig (the kernel is linear-DNA, as in the paper).
//
// Execution is delegated to an internal backend chosen by
// EngineOptions.Backend; the engine itself only validates, stages and
// converts. An Aligner is safe for concurrent use, and concurrency is per
// resource, not per engine: CPU batches interleave across the shared
// worker pool, GPU batches serialize per device (two concurrent batches
// on a multi-GPU engine proceed on different devices), and Hybrid batches
// do both.
type Aligner struct {
	opt    EngineOptions
	be     backend.Backend
	closed atomic.Bool
	// scratch pools the per-batch conversion and result staging.
	scratch sync.Pool

	// tele is the engine's metric registry — the single source every view
	// (library callers, /metrics, /statz) reads. stages is the pipeline
	// stage-latency histogram family within it; the engine observes the
	// partition/kernel/scatter stages itself and upstream layers (the
	// coalescer, the HTTP server) observe admit and coalesce_wait into the
	// same family.
	tele   *telemetry.Registry
	stages *telemetry.Stages
	// Per-batch totals, updated once per backend dispatch (never per pair).
	mBatches, mPairs, mCells *telemetry.Counter
	// binst caches the per-backend instrument bundle by shard name so the
	// steady-state batch path updates counters through a read-locked map
	// hit instead of registry lookups (which build label keys).
	bmu   sync.RWMutex
	binst map[string]*backendTelemetry
	// kinst caches the per-kernel-variant instrument bundle ("scalar",
	// "vector", "gpu") the same way: each batch records which extension
	// kernel its shards ran on (chosen once per batch by the config-keyed
	// selection in internal/xdrop).
	kmu   sync.RWMutex
	kinst map[string]*kernelTelemetry
}

// backendTelemetry is the cached instrument bundle of one backend shard
// name ("cpu", "gpu0", ...): lifetime totals plus EWMA-smoothed gauges.
type backendTelemetry struct {
	pairs, cells, busy *telemetry.Counter
	gcups, occupancy   *telemetry.Gauge
}

// kernelTelemetry is the cached instrument pair of one extension-kernel
// variant: lifetime pair and DP-cell totals.
type kernelTelemetry struct {
	pairs, cells *telemetry.Counter
}

// telemetryAlpha smooths the per-backend GCUPS and occupancy gauges with
// the same weight the backend layer uses for its throughput estimates.
const telemetryAlpha = 0.3

// batchScratch is the reusable per-batch staging: the validated sequence
// pairs handed to the backend and the raw seed-extension results.
type batchScratch struct {
	in  []seq.Pair
	res []xdrop.SeedResult
}

// NewAligner builds an engine of the given shape. The options carry only
// resources (Backend, GPUs, Threads); alignment parameters are supplied
// per call via Config.
func NewAligner(opt EngineOptions) (*Aligner, error) {
	be, err := newBackend(opt)
	if err != nil {
		return nil, err
	}
	a := &Aligner{opt: opt, be: be, tele: telemetry.NewRegistry(),
		binst: map[string]*backendTelemetry{}, kinst: map[string]*kernelTelemetry{}}
	a.scratch.New = func() any { return new(batchScratch) }
	a.stages = telemetry.NewStages(a.tele, "logan_stage_duration_seconds",
		"Per-stage request latency through the pipeline (admit, coalesce_wait, partition, kernel, scatter).")
	a.mBatches = a.tele.Counter("logan_engine_batches_total", "Batches dispatched to the execution backend.")
	a.mPairs = a.tele.Counter("logan_engine_pairs_total", "Sequence pairs aligned by the engine.")
	a.mCells = a.tele.Counter("logan_engine_cells_total", "DP cells computed by the engine.")
	a.tele.GaugeFunc("logan_engine_throughput_cells_per_second",
		"The backend layer's live EWMA throughput estimate (the hybrid scheduler's partitioning weight).",
		a.be.Throughput)
	return a, nil
}

// Telemetry returns the engine's metric registry. Every layer stacked on
// this engine (coalescer, overlap subsystem, logan-serve) registers its
// instruments here, so one registry — and one atomic Snapshot of it —
// describes the whole pipeline.
func (a *Aligner) Telemetry() *telemetry.Registry { return a.tele }

// observeStage records one stage duration: onto the request's trace when
// the caller attached one to the context (which also feeds the shared
// histogram family), otherwise straight into the family.
func (a *Aligner) observeStage(tr *telemetry.Trace, stage string, d time.Duration) {
	if tr != nil {
		tr.Observe(stage, d)
		return
	}
	a.stages.Observe(stage, d)
}

// backendTele returns the cached instrument bundle for one backend shard
// name, registering it on first sight.
func (a *Aligner) backendTele(name string) *backendTelemetry {
	a.bmu.RLock()
	bt := a.binst[name]
	a.bmu.RUnlock()
	if bt != nil {
		return bt
	}
	a.bmu.Lock()
	defer a.bmu.Unlock()
	if bt := a.binst[name]; bt != nil {
		return bt
	}
	l := telemetry.L("backend", name)
	bt = &backendTelemetry{
		pairs:     a.tele.Counter("logan_backend_pairs_total", "Pairs executed per backend shard.", l),
		cells:     a.tele.Counter("logan_backend_cells_total", "DP cells computed per backend shard.", l),
		busy:      a.tele.Counter("logan_backend_busy_seconds_total", "Shard busy time per backend (modeled device time for GPUs, measured wall for CPU).", l),
		gcups:     a.tele.Gauge("logan_backend_gcups", "EWMA-smoothed per-shard throughput in GCUPS (giga cell updates per second).", l),
		occupancy: a.tele.Gauge("logan_backend_occupancy", "EWMA-smoothed fraction of the batch wall time this shard was busy.", l),
	}
	a.binst[name] = bt
	return bt
}

// kernelTele returns the cached instrument bundle for one kernel
// variant, registering it on first sight.
func (a *Aligner) kernelTele(variant string) *kernelTelemetry {
	a.kmu.RLock()
	kt := a.kinst[variant]
	a.kmu.RUnlock()
	if kt != nil {
		return kt
	}
	a.kmu.Lock()
	defer a.kmu.Unlock()
	if kt := a.kinst[variant]; kt != nil {
		return kt
	}
	l := telemetry.L("variant", variant)
	kt = &kernelTelemetry{
		pairs: a.tele.Counter("logan_kernel_pairs_total", "Pairs executed per extension-kernel variant (scalar, vector, gpu).", l),
		cells: a.tele.Counter("logan_kernel_cells_total", "DP cells computed per extension-kernel variant.", l),
	}
	a.kinst[variant] = kt
	return kt
}

// recordBatch folds one completed backend dispatch into the engine totals
// and the per-shard instruments. wall is the host wall time of the
// dispatch, the occupancy denominator.
func (a *Aligner) recordBatch(bst *backend.BatchStats, wall time.Duration) {
	a.mBatches.Inc()
	a.mPairs.Add(float64(bst.Pairs))
	a.mCells.Add(float64(bst.Cells))
	for _, sh := range bst.Shards {
		bt := a.backendTele(sh.Backend)
		bt.pairs.Add(float64(sh.Pairs))
		bt.cells.Add(float64(sh.Cells))
		bt.busy.Add(sh.Time.Seconds())
		if sh.Time > 0 {
			bt.gcups.ObserveEWMA(float64(sh.Cells)/sh.Time.Seconds()/1e9, telemetryAlpha)
		}
		if wall > 0 {
			occ := min(sh.Time.Seconds()/wall.Seconds(), 1)
			bt.occupancy.ObserveEWMA(occ, telemetryAlpha)
		}
		if sh.Kernel != "" {
			kt := a.kernelTele(sh.Kernel)
			kt.pairs.Add(float64(sh.Pairs))
			kt.cells.Add(float64(sh.Cells))
		}
	}
}

// newBackend maps EngineOptions onto the execution layer: the pluggable
// dispatch that replaced the hard-coded CPU/GPU switch in align.
func newBackend(opt EngineOptions) (backend.Backend, error) {
	gpus := opt.GPUs
	if gpus <= 0 {
		gpus = 1
	}
	switch opt.Backend {
	case CPU:
		return backend.NewCPU(opt.Threads), nil
	case GPU:
		if gpus == 1 {
			return backend.NewV100("gpu0")
		}
		return backend.NewV100MultiGPU(gpus)
	case Hybrid:
		return backend.NewHybrid(opt.Threads, gpus)
	default:
		return nil, fmt.Errorf("logan: unknown backend %d", opt.Backend)
	}
}

// Engine returns the engine's configured shape.
func (a *Aligner) Engine() EngineOptions { return a.opt }

// Supports reports whether this engine's backend can execute cfg's
// scoring mode: always true on CPU and Hybrid engines, false for affine
// and matrix configs on a pure-GPU engine (which Align rejects with
// ErrUnsupportedConfig). Callers multiplexing mixed traffic can probe
// this to route requests instead of paying a failed call.
func (a *Aligner) Supports(cfg Config) bool {
	return a.be.Supports(cfg.schemeKind())
}

// Close releases the engine's workers. In-flight batches finish; further
// calls fail with ErrClosed.
func (a *Aligner) Close() error {
	if a.closed.Swap(true) {
		return nil
	}
	return a.be.Close()
}

// Align aligns one batch on the engine under the given context and
// per-request configuration. Results are positionally aligned with the
// input. Cancelling ctx abandons the batch promptly (per pair on the CPU
// pool, per memory chunk on a device) and returns the context's error.
func (a *Aligner) Align(ctx context.Context, pairs []Pair, cfg Config) ([]Alignment, Stats, error) {
	return a.align(ctx, nil, pairs, cfg)
}

// AlignInto is Align reusing dst for the results when it has capacity;
// callers looping over batches can hand the previous slice back and keep
// the steady state allocation-lean.
func (a *Aligner) AlignInto(ctx context.Context, dst []Alignment, pairs []Pair, cfg Config) ([]Alignment, Stats, error) {
	return a.align(ctx, dst, pairs, cfg)
}

// align runs one batch using the engine's resources and cfg's parameters.
func (a *Aligner) align(ctx context.Context, dst []Alignment, pairs []Pair, cfg Config) ([]Alignment, Stats, error) {
	if a.closed.Load() {
		return nil, Stats{}, ErrClosed
	}
	if err := cfg.Validate(); err != nil {
		return nil, Stats{}, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, Stats{}, err
	}
	// Direct submissions are metered against the context tenant's
	// pairs/sec quota here; coalesced traffic was metered at coalescer
	// admission (its flushes run under a background context, so the two
	// never double-charge). extendPrepared stays unmetered: overlap
	// extension chunks are internal work the /jobs store already
	// admission-controls at job granularity.
	if ten := TenantFrom(ctx); ten != nil {
		if ok, _ := ten.takePairs(len(pairs)); !ok {
			return nil, Stats{}, ErrQuotaExceeded
		}
	}
	start := time.Now()

	sc := a.scratch.Get().(*batchScratch)
	defer func() {
		// Drop sequence references so pooled scratch does not pin caller
		// buffers between batches.
		clear(sc.in[:cap(sc.in)])
		a.scratch.Put(sc)
	}()
	if cap(sc.in) < len(pairs) {
		sc.in = make([]seq.Pair, len(pairs))
	}
	in := sc.in[:len(pairs)]
	sc.in = in
	for i := range pairs {
		p, err := cfg.ingestPair(&pairs[i], i)
		if err != nil {
			return nil, Stats{}, err
		}
		in[i] = p
	}
	a.observeStage(telemetry.TraceFrom(ctx), telemetry.StageAdmit, time.Since(start))
	return a.run(ctx, dst, sc, in, cfg, start)
}

// alignPrepared runs one batch whose pairs were already validated and
// converted under cfg (the coalescer converts at admission, so the flush
// does not re-scan every sequence byte). cfg must already be validated.
func (a *Aligner) alignPrepared(ctx context.Context, dst []Alignment, in []seq.Pair, cfg Config) ([]Alignment, Stats, error) {
	if a.closed.Load() {
		return nil, Stats{}, ErrClosed
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, Stats{}, err
	}
	start := time.Now()
	sc := a.scratch.Get().(*batchScratch)
	defer a.scratch.Put(sc) // sc.in untouched on this path
	return a.run(ctx, dst, sc, in, cfg, start)
}

// extendPrepared runs one batch of already-validated engine-level pairs
// straight on the engine's backend, exposing the raw seed-extension
// results (scores plus per-direction band/cell accounting) that the
// public Alignment type compresses away. It is the overlap subsystem's
// entry point: bella-pipeline extension chunks share the engine's worker
// pools, device locks and scheduler with the Align/Coalescer traffic, and
// the extra detail (band widths) feeds the traceback post-pass.
func (a *Aligner) extendPrepared(ctx context.Context, in []seq.Pair, out []xdrop.SeedResult, cc core.Config) (backend.BatchStats, error) {
	if a.closed.Load() {
		return backend.BatchStats{}, ErrClosed
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return backend.BatchStats{}, err
	}
	for i := range in {
		in[i].ID = i
	}
	execStart := time.Now()
	bst, err := a.be.ExtendBatch(ctx, in, out, cc)
	if err != nil {
		return backend.BatchStats{}, mapBackendErr(err)
	}
	execWall := time.Since(execStart)
	tr := telemetry.TraceFrom(ctx)
	a.observeStage(tr, telemetry.StagePartition, bst.PartitionTime)
	a.observeStage(tr, telemetry.StageKernel, execWall-bst.PartitionTime)
	a.recordBatch(&bst, execWall)
	return bst, nil
}

// mapBackendErr translates the execution layer's sentinel errors into the
// public ones — shared by every path that dispatches onto the backend, so
// internal sentinels never leak to callers.
func mapBackendErr(err error) error {
	switch {
	case errors.Is(err, xdrop.ErrPoolClosed) || errors.Is(err, backend.ErrClosed):
		return ErrClosed
	case errors.Is(err, core.ErrUnsupportedScheme):
		return ErrUnsupportedConfig
	}
	return err
}

// run is the execution half of a batch: dispatch to the backend using
// sc's pooled result staging, then convert results into dst and assemble
// the stats.
func (a *Aligner) run(ctx context.Context, dst []Alignment, sc *batchScratch, in []seq.Pair, cfg Config, start time.Time) ([]Alignment, Stats, error) {
	for i := range in {
		in[i].ID = i
	}
	if cap(sc.res) < len(in) {
		sc.res = make([]xdrop.SeedResult, len(in))
	}
	results := sc.res[:len(in)]
	sc.res = results
	execStart := time.Now()
	bst, err := a.be.ExtendBatch(ctx, in, results, cfg.coreConfig())
	if err != nil {
		return nil, Stats{}, mapBackendErr(err)
	}
	execWall := time.Since(execStart)
	tr := telemetry.TraceFrom(ctx)
	a.observeStage(tr, telemetry.StagePartition, bst.PartitionTime)
	a.observeStage(tr, telemetry.StageKernel, execWall-bst.PartitionTime)
	a.recordBatch(&bst, execWall)

	scatterStart := time.Now()
	st := Stats{Pairs: len(in), Cells: bst.Cells, DeviceTime: bst.DeviceTime}
	for _, sh := range bst.Shards {
		st.PerBackend = append(st.PerBackend, BackendStats{
			Name: sh.Backend, Pairs: sh.Pairs, Cells: sh.Cells, Time: sh.Time,
		})
	}

	if cap(dst) < len(results) {
		dst = make([]Alignment, len(results))
	}
	dst = dst[:len(results)]
	for i := range results {
		dst[i] = toAlignment(results[i])
	}
	a.observeStage(tr, telemetry.StageScatter, time.Since(scatterStart))
	st.WallTime = time.Since(start)
	st.GCUPS = st.gcups(a.opt.Backend)
	return dst, st, nil
}

// gcups applies the per-backend denominator contract documented on
// Stats.GCUPS: device time for GPU, wall time for CPU and Hybrid, 0 when
// the denominator is zero (never NaN or Inf).
func (s *Stats) gcups(b Backend) float64 {
	denom := s.WallTime
	if b == GPU {
		denom = s.DeviceTime
	}
	if denom <= 0 {
		return 0
	}
	return float64(s.Cells) / denom.Seconds() / 1e9
}

// Batch is one unit of streaming work: a caller-chosen ID, its pairs, and
// the per-batch alignment configuration. Batches on one stream may carry
// different configs. Config is required: a zero Config fails the batch's
// BatchResult with a Scoring-unset validation error — v1 code that still
// constructs Batch{ID, Pairs} compiles (TrySubmit's signature is
// unchanged) but must be updated to set Config.
type Batch struct {
	ID     int64
	Pairs  []Pair
	Config Config
}

// BatchResult is the outcome of one streamed batch, delivered in
// submission order.
type BatchResult struct {
	ID         int64
	Alignments []Alignment
	Stats      Stats
	Err        error
}

// Stream pipelines batches through an Aligner: Submit enqueues (ingest),
// a dedicated goroutine aligns, and Results delivers outcomes in
// submission order (emit). At most `inflight` batches buffer at each end,
// so a fast producer cannot outrun the engine unboundedly.
type Stream struct {
	jobs chan Batch
	out  chan BatchResult
	// mu guards closed and the job-channel sends the same way xdrop.Pool
	// guards its submissions: Submit holds the read side for the send,
	// Close takes the write side, so a close can never race a blocked
	// send and a post-Close Submit fails cleanly instead of panicking.
	mu     sync.RWMutex
	closed bool
}

// NewStream starts a stream over the engine with the given in-flight bound
// (0 selects 2). Close the stream to flush; Results closes once drained.
func (a *Aligner) NewStream(inflight int) *Stream {
	if inflight <= 0 {
		inflight = 2
	}
	s := &Stream{
		jobs: make(chan Batch, inflight),
		out:  make(chan BatchResult, inflight),
	}
	go func() {
		for b := range s.jobs {
			// An accepted batch always runs to completion: the Submit
			// context governed only the enqueue wait.
			al, st, err := a.align(context.Background(), nil, b.Pairs, b.Config)
			s.out <- BatchResult{ID: b.ID, Alignments: al, Stats: st, Err: err}
		}
		close(s.out)
	}()
	return s
}

// Submit enqueues a batch, blocking while the in-flight bound is reached;
// a canceled ctx abandons the enqueue wait and returns the context's
// error. Safe for concurrent use; submissions after Close return
// ErrStreamClosed. The batch's sequence buffers are aliased, not copied
// (see Pair): do not overwrite them until the batch's BatchResult
// arrives.
func (s *Stream) Submit(ctx context.Context, b Batch) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrStreamClosed
	}
	if ctx == nil {
		ctx = context.Background()
	}
	// Check upfront: with both select cases ready (free queue slot and a
	// canceled ctx) Go picks randomly, and an already-canceled submission
	// must never enqueue.
	if err := ctx.Err(); err != nil {
		return err
	}
	select {
	case s.jobs <- b:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// TrySubmit is the non-blocking Submit: it reports false when the
// in-flight bound is reached, letting producers shed load instead of
// stalling, and returns ErrStreamClosed after Close. Unlike Submit it
// never waits, not even for the close lock: if a Close is in progress
// (which would make any later submission fail anyway), it fails fast
// with ErrStreamClosed.
func (s *Stream) TrySubmit(b Batch) (bool, error) {
	if !s.mu.TryRLock() {
		// The only writer is Close, so a held write lock (or a pending
		// writer blocking new readers) means the stream is closing.
		return false, ErrStreamClosed
	}
	defer s.mu.RUnlock()
	if s.closed {
		return false, ErrStreamClosed
	}
	select {
	case s.jobs <- b:
		return true, nil
	default:
		return false, nil
	}
}

// Results returns the ordered result channel. It closes after Close once
// every submitted batch has been delivered.
func (s *Stream) Results() <-chan BatchResult { return s.out }

// Close ends submission; it is idempotent. Pending batches still flow to
// Results. Close waits for concurrently blocked Submits to enqueue first,
// so a producer stalled on a full stream must be unblocked (keep draining
// Results) before Close returns.
func (s *Stream) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.closed = true
		close(s.jobs)
	}
}

// engineKey identifies the resources a default engine holds; the
// per-request Config is never part of the key.
type engineKey struct {
	backend Backend
	gpus    int
	threads int
}

// defaultEngines caches one engine per distinct resource shape for the
// package-level Align/AlignPair, so legacy callers also stop paying pool
// construction per call. The cache is capped: callers that sweep Threads
// or GPUs per call get a transient engine beyond the cap instead of
// leaking worker pools for the process lifetime.
var (
	defaultEnginesMu sync.Mutex
	defaultEngines   = map[engineKey]*Aligner{}
)

const maxDefaultEngines = 8

// defaultEngine returns an engine for opt's resource shape and a release
// function the caller must invoke when the batch is done (a no-op for
// cached engines, Close for transient overflow engines).
func defaultEngine(opt EngineOptions) (*Aligner, func(), error) {
	key := engineKey{backend: opt.Backend}
	switch opt.Backend {
	case GPU:
		key.gpus = max(opt.GPUs, 1)
	case Hybrid:
		key.gpus = max(opt.GPUs, 1)
		key.threads = opt.Threads
	default:
		key.threads = opt.Threads
	}
	defaultEnginesMu.Lock()
	if a, ok := defaultEngines[key]; ok {
		defaultEnginesMu.Unlock()
		return a, func() {}, nil
	}
	cache := len(defaultEngines) < maxDefaultEngines
	defaultEnginesMu.Unlock()

	a, err := NewAligner(opt)
	if err != nil {
		return nil, nil, err
	}
	if !cache {
		return a, func() { a.Close() }, nil
	}
	defaultEnginesMu.Lock()
	defer defaultEnginesMu.Unlock()
	if prior, ok := defaultEngines[key]; ok {
		// Lost a construction race: keep the cached one.
		go a.Close()
		return prior, func() {}, nil
	}
	defaultEngines[key] = a
	return a, func() {}, nil
}

// CloseDefaultEngines closes and discards every engine cached behind the
// package-level Align, releasing their worker pools. Long-running
// processes that used the package-level entry points (or hosted code that
// did) call this at shutdown; the next Align after it simply rebuilds its
// engine.
func CloseDefaultEngines() {
	defaultEnginesMu.Lock()
	engines := defaultEngines
	defaultEngines = map[engineKey]*Aligner{}
	defaultEnginesMu.Unlock()
	for _, a := range engines {
		a.Close()
	}
}
