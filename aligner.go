package logan

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"logan/internal/core"
	"logan/internal/loadbal"
	"logan/internal/seq"
	"logan/internal/xdrop"
)

// ErrClosed reports use of an Aligner after Close.
var ErrClosed = errors.New("logan: aligner is closed")

// Aligner is a long-lived alignment engine: create it once, feed it batch
// after batch. It holds the resources that the one-shot Align function
// would otherwise rebuild per call — a persistent CPU worker pool with
// per-worker DP workspaces, or a persistent simulated V100 pool for the
// GPU backend — plus pooled staging buffers, so steady-state batches are
// allocation-free on the hot path. This is the host-side discipline of
// LOGAN's own pipeline, which keeps device pools and buffers alive across
// the many batches of a real assembly workload.
//
// An Aligner is safe for concurrent use. CPU batches interleave across the
// shared worker pool; GPU batches serialize on the device pool.
type Aligner struct {
	opt    Options
	cpu    *xdrop.Pool
	gpu    *loadbal.Pool
	gpuMu  sync.Mutex
	closed atomic.Bool
	// scratch pools the per-batch conversion and result staging.
	scratch sync.Pool
}

// batchScratch is the reusable per-batch staging: the validated sequence
// pairs handed to the backend and the raw seed-extension results.
type batchScratch struct {
	in  []seq.Pair
	res []xdrop.SeedResult
}

// NewAligner builds an engine for the given options. X, Match/Mismatch/Gap
// are the engine defaults used by Align; Backend, GPUs and Threads choose
// the resources the engine keeps alive.
func NewAligner(opt Options) (*Aligner, error) {
	a := &Aligner{opt: opt}
	a.scratch.New = func() any { return new(batchScratch) }
	switch opt.Backend {
	case GPU:
		gpus := opt.GPUs
		if gpus <= 0 {
			gpus = 1
		}
		pool, err := loadbal.NewV100Pool(gpus)
		if err != nil {
			return nil, err
		}
		a.gpu = pool
	case CPU:
		a.cpu = xdrop.NewPool(opt.Threads)
	default:
		return nil, fmt.Errorf("logan: unknown backend %d", opt.Backend)
	}
	return a, nil
}

// Options returns the engine's configured defaults.
func (a *Aligner) Options() Options { return a.opt }

// Close releases the engine's workers. In-flight batches finish; further
// calls fail with ErrClosed.
func (a *Aligner) Close() error {
	if a.closed.Swap(true) {
		return nil
	}
	if a.cpu != nil {
		a.cpu.Close()
	}
	return nil
}

// Align aligns one batch on the engine, like the package-level Align but
// with every per-call setup cost already paid.
func (a *Aligner) Align(pairs []Pair) ([]Alignment, Stats, error) {
	return a.align(nil, pairs, a.opt)
}

// AlignInto is Align reusing dst for the results when it has capacity;
// callers looping over batches can hand the previous slice back and keep
// the steady state allocation-free.
func (a *Aligner) AlignInto(dst []Alignment, pairs []Pair) ([]Alignment, Stats, error) {
	return a.align(dst, pairs, a.opt)
}

// align runs one batch using the engine's resources and opt's scoring
// parameters (the legacy entry points pass per-call options).
func (a *Aligner) align(dst []Alignment, pairs []Pair, opt Options) ([]Alignment, Stats, error) {
	if a.closed.Load() {
		return nil, Stats{}, ErrClosed
	}
	start := time.Now()

	sc := a.scratch.Get().(*batchScratch)
	defer func() {
		// Drop sequence references so pooled scratch does not pin caller
		// buffers between batches.
		clear(sc.in[:cap(sc.in)])
		a.scratch.Put(sc)
	}()
	if cap(sc.in) < len(pairs) {
		sc.in = make([]seq.Pair, len(pairs))
	}
	in := sc.in[:len(pairs)]
	sc.in = in
	for i := range pairs {
		p := &pairs[i]
		q, err := seq.FromBytes(p.Query)
		if err != nil {
			return nil, Stats{}, fmt.Errorf("logan: pair %d query: %w", i, err)
		}
		t, err := seq.FromBytes(p.Target)
		if err != nil {
			return nil, Stats{}, fmt.Errorf("logan: pair %d target: %w", i, err)
		}
		in[i] = seq.Pair{
			Query: q, Target: t,
			SeedQPos: p.SeedQ, SeedTPos: p.SeedT, SeedLen: p.SeedLen, ID: i,
		}
	}

	st := Stats{Pairs: len(pairs)}
	var results []xdrop.SeedResult
	switch opt.Backend {
	case GPU:
		a.gpuMu.Lock()
		res, err := a.gpu.Align(in, core.Config{Scoring: opt.scoring(), X: opt.X}, loadbal.ByLength)
		a.gpuMu.Unlock()
		if err != nil {
			return nil, Stats{}, err
		}
		results = res.Results
		st.DeviceTime = res.DeviceTime
	default:
		if cap(sc.res) < len(pairs) {
			sc.res = make([]xdrop.SeedResult, len(pairs))
		}
		results = sc.res[:len(pairs)]
		sc.res = results
		if _, err := a.cpu.ExtendBatch(in, results, opt.scoring(), opt.X); err != nil {
			if errors.Is(err, xdrop.ErrPoolClosed) {
				err = ErrClosed
			}
			return nil, Stats{}, err
		}
	}

	if cap(dst) < len(results) {
		dst = make([]Alignment, len(results))
	}
	dst = dst[:len(results)]
	for i := range results {
		dst[i] = toAlignment(results[i])
		st.Cells += results[i].Cells()
	}
	st.WallTime = time.Since(start)
	denom := st.WallTime
	if opt.Backend == GPU && st.DeviceTime > 0 {
		denom = st.DeviceTime
	}
	if denom > 0 {
		st.GCUPS = float64(st.Cells) / denom.Seconds() / 1e9
	}
	return dst, st, nil
}

// Batch is one unit of streaming work: a caller-chosen ID and its pairs.
type Batch struct {
	ID    int64
	Pairs []Pair
}

// BatchResult is the outcome of one streamed batch, delivered in
// submission order.
type BatchResult struct {
	ID         int64
	Alignments []Alignment
	Stats      Stats
	Err        error
}

// Stream pipelines batches through an Aligner: Submit enqueues (ingest),
// a dedicated goroutine aligns, and Results delivers outcomes in
// submission order (emit). At most `inflight` batches buffer at each end,
// so a fast producer cannot outrun the engine unboundedly.
type Stream struct {
	jobs chan Batch
	out  chan BatchResult
	once sync.Once
}

// NewStream starts a stream over the engine with the given in-flight bound
// (0 selects 2). Close the stream to flush; Results closes once drained.
func (a *Aligner) NewStream(inflight int) *Stream {
	if inflight <= 0 {
		inflight = 2
	}
	s := &Stream{
		jobs: make(chan Batch, inflight),
		out:  make(chan BatchResult, inflight),
	}
	go func() {
		for b := range s.jobs {
			al, st, err := a.Align(b.Pairs)
			s.out <- BatchResult{ID: b.ID, Alignments: al, Stats: st, Err: err}
		}
		close(s.out)
	}()
	return s
}

// Submit enqueues a batch, blocking while the in-flight bound is reached.
// Safe for concurrent use; submissions after Close panic. The batch's
// sequence buffers are aliased, not copied (see Pair): do not overwrite
// them until the batch's BatchResult arrives.
func (s *Stream) Submit(b Batch) { s.jobs <- b }

// Results returns the ordered result channel. It closes after Close once
// every submitted batch has been delivered.
func (s *Stream) Results() <-chan BatchResult { return s.out }

// Close ends submission. Pending batches still flow to Results.
func (s *Stream) Close() { s.once.Do(func() { close(s.jobs) }) }

// engineKey identifies the resources a default engine holds; scoring and X
// are per-call parameters, not part of the key.
type engineKey struct {
	backend Backend
	gpus    int
	threads int
}

// defaultEngines caches one engine per distinct resource shape for the
// package-level Align/AlignPair, so legacy callers also stop paying pool
// construction per call. The cache is capped: callers that sweep Threads
// or GPUs per call get a transient engine beyond the cap instead of
// leaking worker pools for the process lifetime.
var (
	defaultEnginesMu sync.Mutex
	defaultEngines   = map[engineKey]*Aligner{}
)

const maxDefaultEngines = 8

// defaultEngine returns an engine for opt's resource shape and a release
// function the caller must invoke when the batch is done (a no-op for
// cached engines, Close for transient overflow engines).
func defaultEngine(opt Options) (*Aligner, func(), error) {
	key := engineKey{backend: opt.Backend}
	switch opt.Backend {
	case GPU:
		key.gpus = opt.GPUs
		if key.gpus <= 0 {
			key.gpus = 1
		}
	default:
		key.threads = opt.Threads
	}
	defaultEnginesMu.Lock()
	if a, ok := defaultEngines[key]; ok {
		defaultEnginesMu.Unlock()
		return a, func() {}, nil
	}
	cache := len(defaultEngines) < maxDefaultEngines
	defaultEnginesMu.Unlock()

	a, err := NewAligner(opt)
	if err != nil {
		return nil, nil, err
	}
	if !cache {
		return a, func() { a.Close() }, nil
	}
	defaultEnginesMu.Lock()
	defer defaultEnginesMu.Unlock()
	if prior, ok := defaultEngines[key]; ok {
		// Lost a construction race: keep the cached one.
		go a.Close()
		return prior, func() {}, nil
	}
	defaultEngines[key] = a
	return a, func() {}, nil
}
