package logan

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"logan/internal/seq"
	"logan/internal/xdrop"
)

func TestConfigValidate(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"default", DefaultConfig(100), true},
		{"linear", Config{X: 10, Scoring: LinearScoring(2, -3, -2)}, true},
		{"affine", Config{X: 10, Scoring: AffineScoring(1, -1, -2, -1)}, true},
		{"blosum62", Config{X: 10, Scoring: MatrixScoring(Blosum62(-6))}, true},
		{"zero value", Config{}, false},
		{"unset scoring", Config{X: 10}, false},
		{"explicit zero linear", Config{X: 10, Scoring: LinearScoring(0, 0, 0)}, false},
		{"non-negative mismatch", Config{X: 10, Scoring: LinearScoring(1, 0, -1)}, false},
		{"affine positive open", Config{X: 10, Scoring: AffineScoring(1, -1, 2, -1)}, false},
		{"affine zero extend", Config{X: 10, Scoring: AffineScoring(1, -1, -2, 0)}, false},
		{"nil matrix", Config{X: 10, Scoring: MatrixScoring(nil)}, false},
		{"negative X", Config{X: -5, Scoring: LinearScoring(1, -1, -1)}, false},
	} {
		err := tc.cfg.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestScoringMode(t *testing.T) {
	if m := (Scoring{}).Mode(); m != "" {
		t.Errorf("zero Scoring mode %q", m)
	}
	if m := LinearScoring(1, -1, -1).Mode(); m != "linear" {
		t.Errorf("linear mode %q", m)
	}
	if m := AffineScoring(1, -1, -2, -1).Mode(); m != "affine" {
		t.Errorf("affine mode %q", m)
	}
	if m := MatrixScoring(Blosum62(-6)).Mode(); m != "matrix" {
		t.Errorf("matrix mode %q", m)
	}
}

// TestBlosum62Interned: repeated Blosum62 calls with the same gap must
// return the identical *Matrix, so independent callers' configs compare
// equal and coalesce together; distinct gaps must not.
func TestBlosum62Interned(t *testing.T) {
	a, b := Blosum62(-6), Blosum62(-6)
	if a != b {
		t.Fatal("Blosum62(-6) returned two identities")
	}
	if a.Name() != "BLOSUM62" || a.Gap() != -6 {
		t.Fatalf("matrix %q gap %d", a.Name(), a.Gap())
	}
	if Blosum62(-4) == a {
		t.Fatal("different gap penalties shared one matrix")
	}
	k1 := Config{X: 40, Scoring: MatrixScoring(a)}.key()
	k2 := Config{X: 40, Scoring: MatrixScoring(b)}.key()
	if k1 != k2 {
		t.Fatal("same-matrix configs have different keys")
	}
	k3 := Config{X: 41, Scoring: MatrixScoring(a)}.key()
	if k1 == k3 {
		t.Fatal("different X collapsed into one key")
	}
}

// makeProteinPairs builds seeded protein pairs over the BLOSUM62
// alphabet: diverged copies sharing a conserved (planted) seed region.
func makeProteinPairs(n int, seed int64) []Pair {
	const residues = "ARNDCQEGHILKMFPSTWYV"
	rng := rand.New(rand.NewSource(seed))
	out := make([]Pair, n)
	for i := range out {
		ln := 120 + rng.Intn(200)
		q := make([]byte, ln)
		for j := range q {
			q[j] = residues[rng.Intn(len(residues))]
		}
		tgt := append([]byte(nil), q...)
		for j := range tgt {
			if rng.Float64() < 0.25 {
				tgt[j] = residues[rng.Intn(len(residues))]
			}
		}
		seedLen := 10
		pos := ln / 2
		copy(tgt[pos:pos+seedLen], q[pos:pos+seedLen])
		out[i] = Pair{Query: q, Target: tgt, SeedQ: pos, SeedT: pos, SeedLen: seedLen}
	}
	return out
}

// TestPooledAffineMatchesOracle pins the pooled affine batch path
// bit-identical to the single-pair oracles: xdrop.ExtendSeedAffine and
// its composition from raw ExtendAffine extensions.
func TestPooledAffineMatchesOracle(t *testing.T) {
	pairs := makePairs(24)
	sc := xdrop.AffineScoring{Match: 1, Mismatch: -1, GapOpen: -3, GapExtend: -1}
	const x = 60
	eng, err := NewAligner(EngineOptions{Threads: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	cfg := Config{X: x, Scoring: AffineScoring(sc.Match, sc.Mismatch, sc.GapOpen, sc.GapExtend)}
	got, st, err := eng.Align(ctxb, pairs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var cells int64
	for i, p := range pairs {
		r, err := xdrop.ExtendSeedAffine(p.Query, p.Target, p.SeedQ, p.SeedT, p.SeedLen, sc, x)
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != toAlignment(r) {
			t.Fatalf("pair %d: pooled %+v != ExtendSeedAffine %+v", i, got[i], toAlignment(r))
		}
		// Cross-check the seed-and-extend composition against the raw
		// extension oracle.
		left, err := xdrop.ExtendAffine(
			append([]byte(nil), reverse(p.Query[:p.SeedQ])...),
			reverse(p.Target[:p.SeedT]), sc, x)
		if err != nil {
			t.Fatal(err)
		}
		right, err := xdrop.ExtendAffine(p.Query[p.SeedQ+p.SeedLen:], p.Target[p.SeedT+p.SeedLen:], sc, x)
		if err != nil {
			t.Fatal(err)
		}
		if want := left.Score + right.Score + int32(p.SeedLen)*sc.Match; got[i].Score != want {
			t.Fatalf("pair %d: pooled score %d != ExtendAffine composition %d", i, got[i].Score, want)
		}
		cells += got[i].Cells
	}
	if st.Cells != cells {
		t.Fatalf("batch cells %d != summed %d", st.Cells, cells)
	}
}

func reverse(s []byte) []byte {
	out := make([]byte, len(s))
	for i, c := range s {
		out[len(s)-1-i] = c
	}
	return out
}

// TestPooledMatrixMatchesOracle pins the pooled substitution-matrix batch
// path bit-identical to the single-pair xdrop.ExtendSeedMatrix oracle.
func TestPooledMatrixMatchesOracle(t *testing.T) {
	pairs := makeProteinPairs(24, 77)
	m := Blosum62(-6)
	const x = 40
	eng, err := NewAligner(EngineOptions{Threads: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	got, _, err := eng.Align(ctxb, pairs, Config{X: x, Scoring: MatrixScoring(m)})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pairs {
		r, err := xdrop.ExtendSeedMatrix(p.Query, p.Target, p.SeedQ, p.SeedT, p.SeedLen, m.m, x)
		if err != nil {
			t.Fatal(err)
		}
		if got[i] != toAlignment(r) {
			t.Fatalf("pair %d: pooled %+v != ExtendSeedMatrix %+v", i, got[i], toAlignment(r))
		}
	}
}

// TestHybridNonLinearMatchesCPU: affine and matrix configs on a Hybrid
// engine route to the CPU shards and must stay bit-identical to a
// dedicated CPU engine.
func TestHybridNonLinearMatchesCPU(t *testing.T) {
	cpu, err := NewAligner(EngineOptions{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cpu.Close()
	hyb, err := NewAligner(EngineOptions{Backend: Hybrid, GPUs: 2, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer hyb.Close()

	dna := makePairs(20)
	prot := makeProteinPairs(20, 5)
	for _, tc := range []struct {
		name  string
		pairs []Pair
		cfg   Config
	}{
		{"affine", dna, Config{X: 50, Scoring: AffineScoring(1, -1, -2, -1)}},
		{"matrix", prot, Config{X: 40, Scoring: MatrixScoring(Blosum62(-6))}},
	} {
		want, wantStats, err := cpu.Align(ctxb, tc.pairs, tc.cfg)
		if err != nil {
			t.Fatalf("%s cpu: %v", tc.name, err)
		}
		got, gotStats, err := hyb.Align(ctxb, tc.pairs, tc.cfg)
		if err != nil {
			t.Fatalf("%s hybrid: %v", tc.name, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s pair %d: hybrid %+v != cpu %+v", tc.name, i, got[i], want[i])
			}
		}
		if gotStats.Cells != wantStats.Cells {
			t.Fatalf("%s: cells %d != %d", tc.name, gotStats.Cells, wantStats.Cells)
		}
		for _, sh := range gotStats.PerBackend {
			if sh.Name != "cpu" {
				t.Fatalf("%s: non-linear shard on %q", tc.name, sh.Name)
			}
		}
	}
}

// TestGPURejectsNonLinear pins the documented backend restriction: affine
// and matrix configs on a pure-GPU engine fail with ErrUnsupportedConfig.
func TestGPURejectsNonLinear(t *testing.T) {
	for _, gpus := range []int{1, 2} {
		eng, err := NewAligner(EngineOptions{Backend: GPU, GPUs: gpus})
		if err != nil {
			t.Fatal(err)
		}
		pairs := makePairs(4)
		for _, cfg := range []Config{
			{X: 30, Scoring: AffineScoring(1, -1, -2, -1)},
			{X: 30, Scoring: MatrixScoring(Blosum62(-6))},
		} {
			if _, _, err := eng.Align(ctxb, pairs, cfg); !errors.Is(err, ErrUnsupportedConfig) {
				t.Errorf("gpus=%d mode %s: err %v, want ErrUnsupportedConfig",
					gpus, cfg.Scoring.Mode(), err)
			}
		}
		// The same engine still serves linear traffic.
		if _, _, err := eng.Align(ctxb, pairs, DefaultConfig(30)); err != nil {
			t.Errorf("gpus=%d: linear after rejection: %v", gpus, err)
		}
		eng.Close()
	}
}

// TestMatrixAlphabetValidation: matrix configs validate sequences against
// the matrix alphabet, not the DNA alphabet — protein residues that the
// DNA path rejects are accepted, and out-of-alphabet bytes are not.
func TestMatrixAlphabetValidation(t *testing.T) {
	eng, err := NewAligner(EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	prot := []Pair{{Query: []byte("MKWVTFISLLFLFSSAYS"), Target: []byte("MKWVTFISLLFLFSSAYS"), SeedQ: 4, SeedT: 4, SeedLen: 6}}
	if _, _, err := eng.Align(ctxb, prot, Config{X: 20, Scoring: MatrixScoring(Blosum62(-6))}); err != nil {
		t.Fatalf("protein under matrix config rejected: %v", err)
	}
	if _, _, err := eng.Align(ctxb, prot, DefaultConfig(20)); err == nil {
		t.Fatal("protein residues accepted by the DNA path")
	}
	bad := []Pair{{Query: []byte("MKWV1TFIS"), Target: []byte("MKWVTFIS"), SeedLen: 4}}
	if _, _, err := eng.Align(ctxb, bad, Config{X: 20, Scoring: MatrixScoring(Blosum62(-6))}); err == nil {
		t.Fatal("out-of-alphabet byte accepted under matrix config")
	}
}

// TestAlignContextCanceledMidBatch: cancelling the context of a running
// Align must return promptly (the CPU pool stops claiming pairs) instead
// of draining the whole batch. Self-calibrating: the cancelled run is
// compared against a measured uncancelled run of the same batch. The
// batch is sized so the vector-kernel run still takes long enough that
// the cancel goroutine gets scheduled mid-batch on a GOMAXPROCS=1
// machine (timer wakeups there wait on preemption of the busy worker,
// tens of milliseconds).
func TestAlignContextCanceledMidBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	raw := seq.RandPairSet(rng, seq.PairSetOptions{
		N: 400, MinLen: 1200, MaxLen: 2000, ErrorRate: 0.15, SeedLen: 17,
	})
	rngPairs := make([]Pair, len(raw))
	for i, p := range raw {
		rngPairs[i] = Pair{Query: []byte(p.Query), Target: []byte(p.Target),
			SeedQ: p.SeedQPos, SeedT: p.SeedTPos, SeedLen: p.SeedLen}
	}
	eng, err := NewAligner(EngineOptions{Threads: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	cfg := DefaultConfig(300)

	full := time.Now()
	if _, _, err := eng.Align(ctxb, rngPairs, cfg); err != nil {
		t.Fatal(err)
	}
	fullDur := time.Since(full)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(fullDur / 20)
		cancel()
	}()
	start := time.Now()
	_, _, err = eng.Align(ctx, rngPairs, cfg)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v, want context.Canceled", err)
	}
	// Prompt means well short of the full batch: half is a generous bound
	// (the cancel fires at 5% and only in-flight pairs may finish).
	if elapsed > fullDur/2+50*time.Millisecond {
		t.Fatalf("cancelled Align took %v of an uncancelled %v", elapsed, fullDur)
	}
	// An already-canceled context fails before any work.
	pre, preCancel := context.WithCancel(context.Background())
	preCancel()
	if _, _, err := eng.Align(pre, rngPairs, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled err %v", err)
	}
}

func TestScoringMaxAbsParam(t *testing.T) {
	if got := LinearScoring(2, -3, -5).MaxAbsParam(); got != 5 {
		t.Fatalf("linear MaxAbsParam %d, want 5", got)
	}
	if got := AffineScoring(1, -4, -2, -1).MaxAbsParam(); got != 4 {
		t.Fatalf("affine MaxAbsParam %d, want 4 (mismatch dominates)", got)
	}
	// A gap costs open+extend on its first base: that sum is the per-base
	// worst case when it exceeds the substitution parameters.
	if got := AffineScoring(1, -1, -7, -2).MaxAbsParam(); got != 9 {
		t.Fatalf("affine MaxAbsParam %d, want 9 (open+extend)", got)
	}
	if got := MatrixScoring(Blosum62(-6)).MaxAbsParam(); got != 11 {
		t.Fatalf("matrix MaxAbsParam %d, want 11 (BLOSUM62's extreme entry)", got)
	}
	if got := MatrixScoring(Blosum62(-200)).MaxAbsParam(); got != 200 {
		t.Fatalf("matrix MaxAbsParam %d, want 200 (gap dominates)", got)
	}
	if got := (Scoring{}).MaxAbsParam(); got != 0 {
		t.Fatalf("zero Scoring MaxAbsParam %d, want 0", got)
	}
}

func TestMatrixZeroValueAccessors(t *testing.T) {
	var m Matrix
	if m.Name() != "" || m.Alphabet() != "" || m.Gap() != 0 {
		t.Fatalf("zero Matrix accessors: %q %q %d", m.Name(), m.Alphabet(), m.Gap())
	}
	var p *Matrix
	if p.Name() != "" || p.Alphabet() != "" || p.Gap() != 0 {
		t.Fatal("nil *Matrix accessors panicked or returned non-zero")
	}
	if err := (Config{X: 1, Scoring: MatrixScoring(&m)}).Validate(); err == nil {
		t.Fatal("zero Matrix accepted by Validate")
	}
}

func TestStreamSubmitPreCanceled(t *testing.T) {
	eng, err := NewAligner(EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	s := eng.NewStream(2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// With a free queue slot and a canceled ctx, Submit must refuse —
	// never enqueue on the 50/50 select race.
	for i := 0; i < 50; i++ {
		if err := s.Submit(ctx, Batch{ID: int64(i), Pairs: makePairs(1), Config: DefaultConfig(10)}); !errors.Is(err, context.Canceled) {
			t.Fatalf("pre-canceled Submit: %v", err)
		}
	}
	s.Close()
	for range s.Results() {
		t.Fatal("a pre-canceled submission was enqueued")
	}
}

// TestAlignRejectsOverflowBudget: the engine itself (not just the HTTP
// front end) must refuse a pair whose score could wrap int32 under the
// request's parameters.
func TestAlignRejectsOverflowBudget(t *testing.T) {
	eng, err := NewAligner(EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	long := make([]byte, 4096)
	for i := range long {
		long[i] = "ACGT"[i%4]
	}
	pairs := []Pair{{Query: long, Target: long, SeedLen: 8}}
	cfg := Config{X: 10, Scoring: LinearScoring(1<<20, -1, -1)}
	if _, _, err := eng.Align(ctxb, pairs, cfg); err == nil {
		t.Fatal("engine accepted a pair whose score can overflow int32")
	}
	// Sane parameters on the same pair are fine.
	if _, _, err := eng.Align(ctxb, pairs, DefaultConfig(10)); err != nil {
		t.Fatal(err)
	}
}
