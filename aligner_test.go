package logan

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"logan/internal/loadbal"
)

// ctxb is the background context used throughout the engine tests.
var ctxb = context.Background()

func TestAlignerBackendsAgree(t *testing.T) {
	pairs := makePairs(32)
	cfg := DefaultConfig(60)
	cpuEng, err := NewAligner(EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cpuEng.Close()
	gpuEng, err := NewAligner(EngineOptions{Backend: GPU, GPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer gpuEng.Close()

	cpu, cpuStats, err := cpuEng.Align(ctxb, pairs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gpu, gpuStats, err := gpuEng.Align(ctxb, pairs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pairs {
		if cpu[i] != gpu[i] {
			t.Fatalf("pair %d: cpu %+v != gpu %+v", i, cpu[i], gpu[i])
		}
	}
	if cpuStats.Cells != gpuStats.Cells {
		t.Fatalf("cells: cpu %d, gpu %d", cpuStats.Cells, gpuStats.Cells)
	}
	if gpuStats.DeviceTime <= 0 || gpuStats.GCUPS <= 0 {
		t.Fatalf("gpu stats %+v", gpuStats)
	}
}

func TestAlignerMatchesLegacyAlign(t *testing.T) {
	pairs := makePairs(16)
	opt := DefaultOptions(40)
	want, _, err := Align(pairs, opt)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewAligner(EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	got, _, err := eng.Align(ctxb, pairs, DefaultConfig(40))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("pair %d: legacy %+v != engine %+v", i, want[i], got[i])
		}
	}
}

func TestAlignerRepeatedGPUStatsStable(t *testing.T) {
	// DeviceTime must come from the reusable pool's modeled batch time, so
	// identical batches report identical DeviceTime (and hence stable
	// GCUPS) no matter how often the engine is reused.
	pairs := makePairs(12)
	cfg := DefaultConfig(50)
	eng, err := NewAligner(EngineOptions{Backend: GPU})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	_, first, err := eng.Align(ctxb, pairs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 3; rep++ {
		_, st, err := eng.Align(ctxb, pairs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if st.DeviceTime != first.DeviceTime {
			t.Fatalf("rep %d: DeviceTime %v != first %v", rep, st.DeviceTime, first.DeviceTime)
		}
	}
}

// TestAlignerPerRequestX is the request-scoping acceptance check for X:
// one engine must serve different X values per call, each bit-identical
// to a dedicated engine built for that X.
func TestAlignerPerRequestX(t *testing.T) {
	pairs := makePairs(16)
	eng, err := NewAligner(EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for _, x := range []int32{10, 60, 200} {
		got, _, err := eng.Align(ctxb, pairs, DefaultConfig(x))
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := Align(pairs, DefaultOptions(x))
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("X=%d pair %d: shared-engine %+v != dedicated %+v", x, i, got[i], want[i])
			}
		}
	}
}

func TestAlignerEmptyBatch(t *testing.T) {
	eng, err := NewAligner(EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	out, st, err := eng.Align(ctxb, nil, DefaultConfig(10))
	if err != nil || len(out) != 0 || st.Pairs != 0 {
		t.Fatalf("empty batch: %v %v %v", out, st, err)
	}
}

func TestAlignerEmptySequenceRejected(t *testing.T) {
	eng, err := NewAligner(EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	_, _, err = eng.Align(ctxb, []Pair{{Query: nil, Target: []byte("ACGT"), SeedLen: 2}}, DefaultConfig(10))
	if err == nil {
		t.Fatal("accepted a seed outside an empty query")
	}
}

func TestAlignerSeedAtBoundary(t *testing.T) {
	eng, err := NewAligner(EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	cfg := DefaultConfig(30)
	s := []byte("ACGTACGTACGTACGTACGT")
	// Seed flush with the sequence start: no left extension.
	out, _, err := eng.Align(ctxb, []Pair{{Query: s, Target: s, SeedQ: 0, SeedT: 0, SeedLen: 4}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Score != int32(len(s)) || out[0].QBegin != 0 {
		t.Fatalf("start seed: %+v", out[0])
	}
	// Seed flush with the sequence end: no right extension.
	off := len(s) - 4
	out, _, err = eng.Align(ctxb, []Pair{{Query: s, Target: s, SeedQ: off, SeedT: off, SeedLen: 4}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Score != int32(len(s)) || out[0].QEnd != len(s) {
		t.Fatalf("end seed: %+v", out[0])
	}
}

func TestAlignerAlignIntoReusesDst(t *testing.T) {
	eng, err := NewAligner(EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	cfg := DefaultConfig(20)
	pairs := makePairs(8)
	dst, _, err := eng.AlignInto(ctxb, nil, pairs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dst2, _, err := eng.AlignInto(ctxb, dst, pairs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if &dst[0] != &dst2[0] {
		t.Fatal("AlignInto reallocated despite sufficient capacity")
	}
}

func TestAlignerClosed(t *testing.T) {
	eng, err := NewAligner(EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	eng.Close()
	eng.Close() // idempotent
	if _, _, err := eng.Align(ctxb, makePairs(1), DefaultConfig(10)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Align after Close: %v", err)
	}
}

func TestAlignerInvalidBase(t *testing.T) {
	eng, err := NewAligner(EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	_, _, err = eng.Align(ctxb, []Pair{{Query: []byte("ACGX"), Target: []byte("ACGT"), SeedLen: 2}}, DefaultConfig(10))
	if err == nil {
		t.Fatal("accepted invalid base")
	}
}

// TestAlignerRejectsInvalidConfig pins the zero-value footgun fix: an
// unset or explicitly nonsensical scheme must be rejected, never silently
// replaced with defaults.
func TestAlignerRejectsInvalidConfig(t *testing.T) {
	eng, err := NewAligner(EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	pairs := makePairs(1)
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"zero config", Config{}},
		{"unset scoring", Config{X: 10}},
		{"explicit zero linear", Config{X: 10, Scoring: LinearScoring(0, 0, 0)}},
		{"positive gap", Config{X: 10, Scoring: LinearScoring(1, -1, 1)}},
		{"negative X", Config{X: -1, Scoring: LinearScoring(1, -1, -1)}},
		{"zero affine", Config{X: 10, Scoring: AffineScoring(0, 0, 0, 0)}},
		{"nil matrix", Config{X: 10, Scoring: MatrixScoring(nil)}},
	} {
		if _, _, err := eng.Align(ctxb, pairs, tc.cfg); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestStreamOrderedResults(t *testing.T) {
	eng, err := NewAligner(EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	cfg := DefaultConfig(40)
	s := eng.NewStream(3)
	const batches = 10
	go func() {
		for b := 0; b < batches; b++ {
			if err := s.Submit(ctxb, Batch{ID: int64(b), Pairs: makePairs(4), Config: cfg}); err != nil {
				t.Error(err)
			}
		}
		s.Close()
	}()
	got := 0
	for r := range s.Results() {
		if r.Err != nil {
			t.Errorf("batch %d: %v", r.ID, r.Err)
		}
		if r.ID != int64(got) {
			t.Fatalf("result %d has ID %d: out of order", got, r.ID)
		}
		if len(r.Alignments) != 4 || r.Stats.Pairs != 4 {
			t.Fatalf("batch %d: %d alignments, stats %+v", r.ID, len(r.Alignments), r.Stats)
		}
		got++
	}
	if got != batches {
		t.Fatalf("received %d of %d batches", got, batches)
	}
}

func TestStreamConcurrentSubmit(t *testing.T) {
	// Many producers share one stream; every batch must come back exactly
	// once. Run under -race this also vets the engine's internal pooling.
	eng, err := NewAligner(EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	cfg := DefaultConfig(30)
	s := eng.NewStream(4)
	const producers, perProducer = 4, 5
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for b := 0; b < perProducer; b++ {
				if err := s.Submit(ctxb, Batch{ID: int64(p*perProducer + b), Pairs: makePairs(3), Config: cfg}); err != nil {
					t.Error(err)
				}
			}
		}(p)
	}
	go func() {
		wg.Wait()
		s.Close()
	}()
	seen := make(map[int64]bool)
	for r := range s.Results() {
		if r.Err != nil {
			t.Errorf("batch %d: %v", r.ID, r.Err)
		}
		if seen[r.ID] {
			t.Fatalf("batch %d delivered twice", r.ID)
		}
		seen[r.ID] = true
	}
	if len(seen) != producers*perProducer {
		t.Fatalf("received %d of %d batches", len(seen), producers*perProducer)
	}
}

// TestStreamMixedConfigs: batches on one stream may carry different
// configs, and each result must match a dedicated-engine run of that
// batch's config.
func TestStreamMixedConfigs(t *testing.T) {
	eng, err := NewAligner(EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	pairs := makePairs(6)
	configs := []Config{
		DefaultConfig(30),
		{X: 30, Scoring: AffineScoring(1, -1, -2, -1)},
		{X: 80, Scoring: LinearScoring(2, -3, -2)},
	}
	want := make([][]Alignment, len(configs))
	for i, cfg := range configs {
		w, _, err := eng.Align(ctxb, pairs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = w
	}
	s := eng.NewStream(2)
	go func() {
		for i, cfg := range configs {
			if err := s.Submit(ctxb, Batch{ID: int64(i), Pairs: pairs, Config: cfg}); err != nil {
				t.Error(err)
			}
		}
		s.Close()
	}()
	for r := range s.Results() {
		if r.Err != nil {
			t.Fatalf("batch %d: %v", r.ID, r.Err)
		}
		for i := range r.Alignments {
			if r.Alignments[i] != want[r.ID][i] {
				t.Fatalf("config %d pair %d: stream %+v != dedicated %+v",
					r.ID, i, r.Alignments[i], want[r.ID][i])
			}
		}
	}
}

func TestAlignerConcurrentAlign(t *testing.T) {
	for _, backend := range []Backend{CPU, GPU, Hybrid} {
		eng, err := NewAligner(EngineOptions{Backend: backend})
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig(30)
		pairs := makePairs(10)
		want, _, err := eng.Align(ctxb, pairs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				got, _, err := eng.Align(ctxb, pairs, cfg)
				if err != nil {
					t.Error(err)
					return
				}
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("concurrent result diverged at %d", i)
						return
					}
				}
			}()
		}
		wg.Wait()
		eng.Close()
	}
}

// TestHybridBitIdenticalToCPUAndGPU: the Hybrid scheduler must produce
// bit-identical alignments (and cell counts) to both single-backend
// engines on the same batch.
func TestHybridBitIdenticalToCPUAndGPU(t *testing.T) {
	pairs := makePairs(64)
	cfg := DefaultConfig(60)
	newEng := func(b Backend, gpus int) *Aligner {
		t.Helper()
		eng, err := NewAligner(EngineOptions{Backend: b, GPUs: gpus, Threads: 2})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { eng.Close() })
		return eng
	}
	cpu, cpuStats, err := newEng(CPU, 0).Align(ctxb, pairs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gpu, gpuStats, err := newEng(GPU, 2).Align(ctxb, pairs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hyb, hybStats, err := newEng(Hybrid, 2).Align(ctxb, pairs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pairs {
		if cpu[i] != gpu[i] || cpu[i] != hyb[i] {
			t.Fatalf("pair %d: cpu %+v gpu %+v hybrid %+v", i, cpu[i], gpu[i], hyb[i])
		}
	}
	if cpuStats.Cells != gpuStats.Cells || cpuStats.Cells != hybStats.Cells {
		t.Fatalf("cells diverge: cpu %d gpu %d hybrid %d",
			cpuStats.Cells, gpuStats.Cells, hybStats.Cells)
	}
}

// TestPerBackendStats: every engine must report the per-worker breakdown,
// and it must cover the batch exactly.
func TestPerBackendStats(t *testing.T) {
	for _, tc := range []struct {
		backend Backend
		gpus    int
	}{{CPU, 0}, {GPU, 1}, {GPU, 2}, {Hybrid, 2}} {
		eng, err := NewAligner(EngineOptions{Backend: tc.backend, GPUs: tc.gpus})
		if err != nil {
			t.Fatal(err)
		}
		pairs := makePairs(12)
		_, st, err := eng.Align(ctxb, pairs, DefaultConfig(40))
		eng.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(st.PerBackend) == 0 {
			t.Fatalf("backend %v: no PerBackend breakdown", tc.backend)
		}
		var pairsSum int
		var cellsSum int64
		for _, b := range st.PerBackend {
			if b.Name == "" {
				t.Fatalf("backend %v: unnamed shard %+v", tc.backend, b)
			}
			pairsSum += b.Pairs
			cellsSum += b.Cells
		}
		if pairsSum != st.Pairs || cellsSum != st.Cells {
			t.Fatalf("backend %v: shards cover %d pairs/%d cells, batch has %d/%d",
				tc.backend, pairsSum, cellsSum, st.Pairs, st.Cells)
		}
	}
}

// TestConcurrentAlignNotSerializedAcrossDevices is the scheduler
// acceptance check (run under -race in CI): two concurrent Align calls on
// a 2-GPU engine must both be inside the device pool at the same time —
// impossible under the old engine-wide gpuMu, which admitted one batch at
// a time. The loadbal test hook acts as a 2-party barrier with a timeout:
// if either call held an engine-wide lock across its batch, the other
// could never arrive and the barrier would time out.
func TestConcurrentAlignNotSerializedAcrossDevices(t *testing.T) {
	eng, err := NewAligner(EngineOptions{Backend: GPU, GPUs: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	const callers = 2
	arrived := make(chan struct{}, callers)
	proceed := make(chan struct{})
	var barrierOnce sync.Once
	var timedOut atomic.Bool
	loadbal.TestHookAlignStart = func() {
		arrived <- struct{}{}
		barrierOnce.Do(func() {
			go func() {
				// Release everyone once both calls are in the pool; fail
				// them out (rather than deadlocking the test) if the
				// second never shows up.
				for i := 0; i < callers; i++ {
					select {
					case <-arrived:
					case <-time.After(30 * time.Second):
						timedOut.Store(true)
					}
				}
				close(proceed)
			}()
		})
		<-proceed
	}
	defer func() { loadbal.TestHookAlignStart = nil }()

	pairs := makePairs(8)
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, _, err := eng.Align(ctxb, pairs, DefaultConfig(30)); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if timedOut.Load() {
		t.Fatal("second Align call never entered the device pool: batches serialized on an engine-wide lock")
	}
}

// TestHybridConcurrentAlign exercises the hybrid scheduler under
// concurrent traffic (and -race): results must stay bit-identical.
func TestHybridConcurrentAlign(t *testing.T) {
	eng, err := NewAligner(EngineOptions{Backend: Hybrid, GPUs: 2, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	cfg := DefaultConfig(30)
	pairs := makePairs(16)
	want, _, err := eng.Align(ctxb, pairs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, _, err := eng.Align(ctxb, pairs, cfg)
			if err != nil {
				t.Error(err)
				return
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("hybrid concurrent result diverged at %d", i)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestStreamSubmitAfterClose: submissions after Close must fail with
// ErrStreamClosed instead of panicking on a closed channel, and TrySubmit
// must shed load without blocking.
func TestStreamSubmitAfterClose(t *testing.T) {
	eng, err := NewAligner(EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	cfg := DefaultConfig(20)
	s := eng.NewStream(1)
	if err := s.Submit(ctxb, Batch{ID: 1, Pairs: makePairs(2), Config: cfg}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // idempotent
	if err := s.Submit(ctxb, Batch{ID: 2, Pairs: makePairs(2), Config: cfg}); !errors.Is(err, ErrStreamClosed) {
		t.Fatalf("Submit after Close: %v, want ErrStreamClosed", err)
	}
	if ok, err := s.TrySubmit(Batch{ID: 3}); ok || !errors.Is(err, ErrStreamClosed) {
		t.Fatalf("TrySubmit after Close: ok=%v err=%v", ok, err)
	}
	// The pre-Close batch still flows to Results, which then closes.
	n := 0
	for r := range s.Results() {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		n++
	}
	if n != 1 {
		t.Fatalf("drained %d batches, want 1", n)
	}
}

func TestStreamTrySubmitShedsLoad(t *testing.T) {
	eng, err := NewAligner(EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	cfg := DefaultConfig(20)
	s := eng.NewStream(1)
	defer s.Close()
	// Saturate the in-flight bound: with a 1-deep queue, repeated
	// non-blocking submissions must eventually report a full queue
	// rather than blocking forever.
	shed := false
	for i := 0; i < 1000 && !shed; i++ {
		ok, err := s.TrySubmit(Batch{ID: int64(i), Pairs: makePairs(2), Config: cfg})
		if err != nil {
			t.Fatal(err)
		}
		shed = !ok
	}
	if !shed {
		t.Fatal("TrySubmit never reported a full queue at inflight=1")
	}
	go func() {
		for range s.Results() {
		}
	}()
}

// TestStreamSubmitContextCanceled: a canceled context must abandon the
// enqueue wait on a full stream instead of blocking forever.
func TestStreamSubmitContextCanceled(t *testing.T) {
	eng, err := NewAligner(EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	cfg := DefaultConfig(20)
	s := eng.NewStream(1)
	// Fill the queue without draining results.
	for i := 0; i < 3; i++ {
		if ok, _ := s.TrySubmit(Batch{ID: int64(i), Pairs: makePairs(2), Config: cfg}); !ok {
			break
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	// Keep submitting until one blocks and the cancel releases it.
	for {
		err := s.Submit(ctx, Batch{ID: 99, Pairs: makePairs(2), Config: cfg})
		if err == nil {
			continue
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("blocked Submit returned %v, want context.Canceled", err)
		}
		break
	}
	go func() {
		for range s.Results() {
		}
	}()
	s.Close()
}

// TestStatsGCUPSSemantics pins the per-backend denominator contract
// documented on Stats.GCUPS, including the zero-duration edge: GCUPS must
// be 0 (never NaN or Inf) when the selected denominator is zero.
func TestStatsGCUPSSemantics(t *testing.T) {
	st := Stats{Cells: 1e9, WallTime: time.Second, DeviceTime: 100 * time.Millisecond}
	if got := st.gcups(CPU); got != 1 {
		t.Fatalf("CPU gcups over wall: %v, want 1", got)
	}
	if got := st.gcups(GPU); got != 10 {
		t.Fatalf("GPU gcups over device: %v, want 10", got)
	}
	if got := st.gcups(Hybrid); got != 1 {
		t.Fatalf("Hybrid gcups over wall: %v, want 1", got)
	}
	// Zero-duration edges: no denominator, no GCUPS — and no NaN/Inf.
	zero := Stats{Cells: 1e9}
	for _, b := range []Backend{CPU, GPU, Hybrid} {
		got := zero.gcups(b)
		if got != 0 {
			t.Fatalf("backend %v: zero-duration gcups = %v, want 0", b, got)
		}
	}
	// A GPU batch that launched nothing has DeviceTime 0 even with
	// nonzero wall time: still 0 by the contract.
	gpuZero := Stats{Cells: 5, WallTime: time.Second}
	if got := gpuZero.gcups(GPU); got != 0 {
		t.Fatalf("GPU with zero device time: gcups %v, want 0", got)
	}
}

// TestCloseDefaultEngines: the cached package-level engines must be
// releasable, and the package-level Align must transparently rebuild
// afterwards.
func TestCloseDefaultEngines(t *testing.T) {
	pairs := makePairs(4)
	opt := DefaultOptions(25)
	if _, _, err := Align(pairs, opt); err != nil {
		t.Fatal(err)
	}
	defaultEnginesMu.Lock()
	cached := len(defaultEngines)
	defaultEnginesMu.Unlock()
	if cached == 0 {
		t.Fatal("Align did not cache a default engine")
	}
	CloseDefaultEngines()
	defaultEnginesMu.Lock()
	left := len(defaultEngines)
	defaultEnginesMu.Unlock()
	if left != 0 {
		t.Fatalf("%d engines still cached after CloseDefaultEngines", left)
	}
	// Next call rebuilds and still answers correctly.
	if _, _, err := Align(pairs, opt); err != nil {
		t.Fatal(err)
	}
	CloseDefaultEngines()
}
